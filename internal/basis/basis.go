// Package basis provides the piecewise-linear (hat) basis functions of
// the sparse grid technique (paper Sec. 2.1): the mother hat
// φ(x) = max(1-|x|, 0), its dilated/translated 1d family φ_{l,i}, and the
// d-dimensional tensor products. Levels are 0-based as everywhere in this
// module: the 1d basis on level l has 2^l functions with odd indices
// i ∈ [1, 2^(l+1)-1], centered at i/2^(l+1) with support width 2^(-l).
package basis

// Hat is the standard one-dimensional mother hat function
// φ(x) = max(1 - |x|, 0).
func Hat(x float64) float64 {
	if x < 0 {
		x = -x
	}
	if x >= 1 {
		return 0
	}
	return 1 - x
}

// Eval1D evaluates φ_{l,i}(x) = φ(2^(l+1)·x − i) for the 0-based level l
// and odd index i.
func Eval1D(level, index int32, x float64) float64 {
	scale := float64(int64(1) << uint32(level+1))
	return Hat(scale*x - float64(index))
}

// EvalInterval evaluates the hat spanning [left, right] centered at the
// midpoint, as the iterative GPU evaluation kernel does (paper Alg. 7,
// line 13): the support boundaries are derived from the cell the query
// point falls into, so no index arithmetic is needed.
func EvalInterval(left, right, x float64) float64 {
	mid := 0.5 * (left + right)
	half := 0.5 * (right - left)
	return Hat((x - mid) / half)
}

// EvalTensor evaluates the d-dimensional tensor-product basis function
// φ_{l,i}(x) = Π_t φ_{l_t,i_t}(x_t). It short-circuits to 0 as soon as
// one factor vanishes.
func EvalTensor(l, i []int32, x []float64) float64 {
	p := 1.0
	for t := range l {
		f := Eval1D(l[t], i[t], x[t])
		if f == 0 {
			return 0
		}
		p *= f
	}
	return p
}

// Support1D returns the support interval [lo, hi] of φ_{l,i}.
func Support1D(level, index int32) (lo, hi float64) {
	h := 1.0 / float64(int64(1)<<uint32(level+1))
	c := float64(index) * h
	return c - h, c + h
}

// InSupport reports whether x lies inside the (closed) support of φ_{l,i}.
func InSupport(level, index int32, x float64) bool {
	lo, hi := Support1D(level, index)
	return x >= lo && x <= hi
}

// Boundary basis for the extended (non-zero boundary) context, paper
// Sec. 4.4: level 0 gains the two linear functions attached to the
// domain endpoints.

// EvalBoundaryLeft evaluates φ_{0,0}(x) = 1 - x, the basis function of
// the left boundary point.
func EvalBoundaryLeft(x float64) float64 { return Hat(x) }

// EvalBoundaryRight evaluates φ_{0,1}... the right boundary hat
// φ(x-1) = x on [0,1].
func EvalBoundaryRight(x float64) float64 { return Hat(x - 1) }
