package basis

import (
	"math"
	"testing"
	"testing/quick"

	"compactsg/internal/core"
)

func TestHat(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 1}, {0.5, 0.5}, {-0.5, 0.5}, {1, 0}, {-1, 0}, {2, 0}, {-3, 0}, {0.25, 0.75},
	}
	for _, c := range cases {
		if got := Hat(c.x); got != c.want {
			t.Errorf("Hat(%g)=%g want %g", c.x, got, c.want)
		}
	}
}

func TestEval1DCenterAndSupport(t *testing.T) {
	for level := int32(0); level < 8; level++ {
		for index := int32(1); index < 2<<uint32(level); index += 2 {
			c := core.Coord(level, index)
			if got := Eval1D(level, index, c); got != 1 {
				t.Fatalf("φ_{%d,%d} at its center = %g, want 1", level, index, got)
			}
			lo, hi := Support1D(level, index)
			if Eval1D(level, index, lo) != 0 || Eval1D(level, index, hi) != 0 {
				t.Fatalf("φ_{%d,%d} nonzero at support edge", level, index)
			}
			if !InSupport(level, index, c) || InSupport(level, index, hi+1e-9) {
				t.Fatalf("InSupport inconsistent for (%d,%d)", level, index)
			}
		}
	}
}

func TestEval1DMidpoints(t *testing.T) {
	// Halfway between center and support edge the hat is 1/2.
	if got := Eval1D(1, 3, 0.625); got != 0.5 {
		t.Errorf("φ_{1,3}(0.625)=%g want 0.5", got)
	}
	if got := Eval1D(2, 1, 0.0625); got != 0.5 {
		t.Errorf("φ_{2,1}(0.0625)=%g want 0.5", got)
	}
}

func TestSameLevelDisjointSupports(t *testing.T) {
	// Basis functions of one subspace have pairwise disjoint supports
	// (paper Sec. 2.1): at any x at most one function of a level is
	// nonzero (interior of supports).
	f := func(xr float64) bool {
		if math.IsNaN(xr) || math.IsInf(xr, 0) {
			return true
		}
		x := math.Abs(math.Mod(xr, 1))
		for level := int32(0); level < 7; level++ {
			nonzero := 0
			for index := int32(1); index < 2<<uint32(level); index += 2 {
				if Eval1D(level, index, x) > 0 {
					nonzero++
				}
			}
			if nonzero > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestEvalIntervalMatchesEval1D(t *testing.T) {
	f := func(raw uint16, xr float64) bool {
		if math.IsNaN(xr) || math.IsInf(xr, 0) {
			return true
		}
		level := int32(raw % 9)
		n := int32(1) << uint32(level)
		index := int32(2*(int(raw/16)%int(n)) + 1)
		x := math.Abs(math.Mod(xr, 1))
		lo, hi := Support1D(level, index)
		a := Eval1D(level, index, x)
		b := EvalInterval(lo, hi, x)
		return math.Abs(a-b) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestEvalTensor(t *testing.T) {
	// Paper Fig. 2 (right): φ_{(2,1),(1,1)}(x,y) = φ_{2,1}(x)·φ_{1,1}(y)
	// in the paper's 1-based levels, i.e. 0-based (1,0).
	l := []int32{1, 0}
	i := []int32{1, 1}
	x := []float64{0.25, 0.5}
	if got := EvalTensor(l, i, x); got != 1 {
		t.Errorf("tensor at center = %g want 1", got)
	}
	x = []float64{0.125, 0.25}
	want := Eval1D(1, 1, 0.125) * Eval1D(0, 1, 0.25)
	if got := EvalTensor(l, i, x); math.Abs(got-want) > 1e-15 {
		t.Errorf("tensor = %g want %g", got, want)
	}
	// Zero short-circuit.
	x = []float64{0.75, 0.5} // outside φ_{1,1} support
	if got := EvalTensor(l, i, x); got != 0 {
		t.Errorf("tensor outside support = %g want 0", got)
	}
}

func TestBoundaryBasis(t *testing.T) {
	if EvalBoundaryLeft(0) != 1 || EvalBoundaryLeft(1) != 0 || EvalBoundaryLeft(0.25) != 0.75 {
		t.Error("left boundary basis wrong")
	}
	if EvalBoundaryRight(1) != 1 || EvalBoundaryRight(0) != 0 || EvalBoundaryRight(0.75) != 0.75 {
		t.Error("right boundary basis wrong")
	}
	// Partition of unity on level 0 extended: φ_{0,0} + φ_{0,1} + ... the
	// two boundary hats alone sum to 1 everywhere on [0,1].
	for _, x := range []float64{0, 0.1, 0.5, 0.9, 1} {
		if s := EvalBoundaryLeft(x) + EvalBoundaryRight(x); math.Abs(s-1) > 1e-15 {
			t.Errorf("boundary hats at %g sum to %g", x, s)
		}
	}
}
