package hier

import (
	"math"
	"math/rand"
	"testing"

	"compactsg/internal/core"
)

// Reference implementations of the pre-stride kernels: the per-point
// DecodeIndex1 + two ParentIdx (O(d) GP2Idx walk each) formulation that
// hierarchizeSubspace/dehierarchizeSubspace replaced. The property tests
// pin the bit-arithmetic kernels to these references bit for bit.

func hierarchizeSubspaceRef(g *core.Grid, l, i []int32, start int64, t int) {
	if l[t] == 0 {
		return
	}
	desc := g.Desc()
	n := int64(1) << uint(core.LevelSum(l))
	for p := int64(0); p < n; p++ {
		core.DecodeIndex1(p, l, i)
		var parents float64
		if idx, ok := desc.ParentIdx(l, i, t, core.LeftParent); ok {
			parents += g.Data[idx]
		}
		if idx, ok := desc.ParentIdx(l, i, t, core.RightParent); ok {
			parents += g.Data[idx]
		}
		g.Data[start+p] -= parents / 2
	}
}

func dehierarchizeSubspaceRef(g *core.Grid, l, i []int32, start int64, t int) {
	if l[t] == 0 {
		return
	}
	desc := g.Desc()
	n := int64(1) << uint(core.LevelSum(l))
	for p := int64(0); p < n; p++ {
		core.DecodeIndex1(p, l, i)
		var parents float64
		if idx, ok := desc.ParentIdx(l, i, t, core.LeftParent); ok {
			parents += g.Data[idx]
		}
		if idx, ok := desc.ParentIdx(l, i, t, core.RightParent); ok {
			parents += g.Data[idx]
		}
		g.Data[start+p] += parents / 2
	}
}

func iterativeRef(g *core.Grid) {
	desc := g.Desc()
	d := desc.Dim()
	i := make([]int32, d)
	it := core.NewSubspaceIter(desc)
	for t := 0; t < d; t++ {
		for grp := desc.Groups() - 1; grp >= 0; grp-- {
			it.SeekGroup(grp)
			for it.Valid() && it.Group() == grp {
				hierarchizeSubspaceRef(g, it.Level(), i, it.Start(), t)
				it.Advance()
			}
		}
	}
}

func dehierarchizeRef(g *core.Grid) {
	desc := g.Desc()
	d := desc.Dim()
	i := make([]int32, d)
	it := core.NewSubspaceIter(desc)
	for t := d - 1; t >= 0; t-- {
		for grp := 0; grp < desc.Groups(); grp++ {
			it.SeekGroup(grp)
			for it.Valid() && it.Group() == grp {
				dehierarchizeSubspaceRef(g, it.Level(), i, it.Start(), t)
				it.Advance()
			}
		}
	}
}

func randomGrid(rng *rand.Rand, d, n int) *core.Grid {
	g := core.NewGrid(core.MustDescriptor(d, n))
	for k := range g.Data {
		g.Data[k] = rng.NormFloat64()
	}
	return g
}

func requireBitEqual(t *testing.T, tag string, got, want *core.Grid) {
	t.Helper()
	for k := range want.Data {
		if math.Float64bits(got.Data[k]) != math.Float64bits(want.Data[k]) {
			t.Fatalf("%s: data[%d] = %v, reference %v", tag, k, got.Data[k], want.Data[k])
		}
	}
}

// TestStrideKernelBitIdentical: the stride-based hierarchization and
// dehierarchization (sequential and every worker count) must reproduce
// the ParentIdx-walking reference bit for bit on random surpluses.
func TestStrideKernelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, c := range []struct{ d, n int }{{1, 1}, {1, 7}, {2, 6}, {3, 5}, {5, 5}, {10, 4}} {
		g := randomGrid(rng, c.d, c.n)

		ref := g.Clone()
		iterativeRef(ref)
		got := g.Clone()
		Iterative(got)
		requireBitEqual(t, "Iterative", got, ref)
		for _, workers := range []int{2, 3, 8} {
			got := g.Clone()
			Parallel(got, workers)
			requireBitEqual(t, "Parallel", got, ref)
		}

		deref := g.Clone()
		dehierarchizeRef(deref)
		degot := g.Clone()
		Dehierarchize(degot)
		requireBitEqual(t, "Dehierarchize", degot, deref)
		for _, workers := range []int{2, 3, 8} {
			degot := g.Clone()
			DehierarchizeParallel(degot, workers)
			requireBitEqual(t, "DehierarchizeParallel", degot, deref)
		}
	}
}

// TestHierRoundTripRandom: hierarchize→dehierarchize restores the nodal
// values up to rounding (the updates are exact inverses in real
// arithmetic; floating point leaves at most a few ulps).
func TestHierRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, c := range []struct{ d, n int }{{1, 6}, {2, 5}, {4, 5}, {8, 4}} {
		g := randomGrid(rng, c.d, c.n)
		orig := g.Clone()
		Iterative(g)
		Dehierarchize(g)
		for k := range g.Data {
			tol := 1e-12 * math.Max(1, math.Abs(orig.Data[k]))
			if math.Abs(g.Data[k]-orig.Data[k]) > tol {
				t.Fatalf("d=%d n=%d round-trip data[%d] = %v, want %v", c.d, c.n, k, g.Data[k], orig.Data[k])
			}
		}
	}
}

// FuzzHierStrideIdentity fuzzes a single-subspace update against the
// reference: random shape, random subspace, random dimension.
func FuzzHierStrideIdentity(f *testing.F) {
	f.Add(int64(1), 2, 5, 3, 0, int64(0))
	f.Add(int64(2), 3, 6, 5, 2, int64(4))
	f.Add(int64(3), 1, 7, 6, 0, int64(0))
	f.Fuzz(func(t *testing.T, seed int64, d, n, grp, dim int, sub int64) {
		if d < 1 || d > 4 || n < 1 || n > 7 || grp < 0 || grp >= n || dim < 0 || dim >= d {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		g := randomGrid(rng, d, n)
		desc := g.Desc()
		nsub := desc.Subspaces(grp)
		sub = ((sub % nsub) + nsub) % nsub
		l := make([]int32, d)
		i := make([]int32, d)
		desc.SubspaceFromIndex(grp, sub, l)
		start := desc.GroupStart(grp) + sub<<uint(grp)

		ref := g.Clone()
		hierarchizeSubspaceRef(ref, l, i, start, dim)
		bases := make([]int64, desc.Level())
		hierarchizeSubspace(g.Data, desc, l, start, dim, bases)
		requireBitEqual(t, "hierarchizeSubspace", g, ref)
	})
}
