package hier

import (
	"math"
	"math/rand"
	"testing"

	"compactsg/internal/core"
	"compactsg/internal/grids"
)

func parabola(x []float64) float64 {
	p := 1.0
	for _, v := range x {
		p *= 4 * v * (1 - v)
	}
	return p
}

func mixed(x []float64) float64 {
	s := 0.0
	for t, v := range x {
		s += math.Sin(math.Pi*v) * float64(t+1)
	}
	return s
}

// evalDirect computes fs(x) = Σ α·φ by brute force over all points.
func evalDirect(g *core.Grid, x []float64) float64 {
	res := 0.0
	xs := make([]float64, g.Dim())
	_ = xs
	g.Desc().VisitPoints(func(idx int64, l, i []int32) {
		prod := 1.0
		for t := range l {
			scale := float64(int64(1) << uint32(l[t]+1))
			v := scale*x[t] - float64(i[t])
			if v < 0 {
				v = -v
			}
			if v >= 1 {
				prod = 0
				return
			}
			prod *= 1 - v
		}
		res += prod * g.Data[idx]
	})
	return res
}

func TestIterative1DKnownCoefficients(t *testing.T) {
	// 1d, level 3, f(x) = x on grid points (zero boundary not satisfied
	// by f, but hierarchization only uses nodal values). The identity is
	// linear between hierarchical ancestors, so interior surpluses vanish
	// except along the right edge, where the zero boundary contributes 0
	// instead of f(1)=1:
	//   0.5:   boundary parents            → 0.5
	//   0.75:  parents 0.5, boundary       → 0.75 − 0.25 = 0.5
	//   0.875: parents 0.75, boundary      → 0.875 − 0.375 = 0.5
	desc := core.MustDescriptor(1, 3)
	g := core.NewGrid(desc)
	g.Fill(func(x []float64) float64 { return x[0] })
	Iterative(g)
	// Points in storage order: 0.5, 0.25, 0.75, 0.125, 0.375, 0.625, 0.875.
	want := []float64{0.5, 0, 0.5, 0, 0, 0, 0.5}
	for k, w := range want {
		if math.Abs(g.Data[k]-w) > 1e-15 {
			t.Errorf("coefficient %d = %g want %g", k, g.Data[k], w)
		}
	}
}

func TestHierarchizationInterpolatesNodalValues(t *testing.T) {
	// The defining property: after hierarchization, Σ α·φ evaluated at
	// any grid point reproduces the nodal value sampled there.
	for _, c := range []struct{ d, n int }{{1, 5}, {2, 4}, {3, 4}, {4, 3}} {
		desc := core.MustDescriptor(c.d, c.n)
		g := core.NewGrid(desc)
		g.Fill(mixed)
		nodal := g.Clone()
		Iterative(g)
		x := make([]float64, c.d)
		desc.VisitPoints(func(idx int64, l, i []int32) {
			core.Coords(l, i, x)
			got := evalDirect(g, x)
			if math.Abs(got-nodal.Data[idx]) > 1e-12 {
				t.Fatalf("d=%d n=%d: interpolant at grid point %v = %g want %g", c.d, c.n, x, got, nodal.Data[idx])
			}
		})
	}
}

func TestDehierarchizeInvertsIterative(t *testing.T) {
	for _, c := range []struct{ d, n int }{{1, 6}, {2, 5}, {3, 4}, {5, 3}} {
		desc := core.MustDescriptor(c.d, c.n)
		g := core.NewGrid(desc)
		g.Fill(mixed)
		orig := g.Clone()
		Iterative(g)
		Dehierarchize(g)
		for k := range g.Data {
			if math.Abs(g.Data[k]-orig.Data[k]) > 1e-12 {
				t.Fatalf("d=%d n=%d: dehierarchize∘hierarchize ≠ id at %d: %g vs %g", c.d, c.n, k, g.Data[k], orig.Data[k])
			}
		}
	}
}

func TestRecursiveMatchesIterative(t *testing.T) {
	// The classic recursive algorithm on every store must produce exactly
	// the coefficients of the iterative compact algorithm.
	for _, c := range []struct{ d, n int }{{1, 5}, {2, 4}, {3, 4}} {
		desc := core.MustDescriptor(c.d, c.n)
		ref := core.NewGrid(desc)
		ref.Fill(parabola)
		Iterative(ref)
		for _, kind := range grids.Kinds {
			s := grids.New(kind, desc)
			grids.Fill(s, parabola)
			Recursive(s)
			ok := true
			desc.VisitPoints(func(idx int64, l, i []int32) {
				if !ok {
					return
				}
				if got := s.Get(l, i); got != ref.Data[idx] {
					t.Errorf("d=%d n=%d %v: coefficient at %v,%v = %g want %g", c.d, c.n, kind, l, i, got, ref.Data[idx])
					ok = false
				}
			})
		}
	}
}

func TestParallelBitIdentical(t *testing.T) {
	desc := core.MustDescriptor(4, 5)
	ref := core.NewGrid(desc)
	ref.Fill(mixed)
	seq := ref.Clone()
	Iterative(seq)
	for _, workers := range []int{1, 2, 3, 4, 7, 16} {
		par := ref.Clone()
		Parallel(par, workers)
		for k := range par.Data {
			if par.Data[k] != seq.Data[k] {
				t.Fatalf("workers=%d: parallel differs from sequential at %d", workers, k)
			}
		}
	}
}

func TestRecursiveParallelBitIdentical(t *testing.T) {
	desc := core.MustDescriptor(3, 5)
	for _, kind := range []grids.Kind{grids.Compact, grids.PrefixTree, grids.EnhHash} {
		ref := grids.New(kind, desc)
		grids.Fill(ref, mixed)
		Recursive(ref)
		for _, workers := range []int{2, 4} {
			s := grids.New(kind, desc)
			grids.Fill(s, mixed)
			RecursiveParallel(s, workers)
			if !grids.Equal(ref, s) {
				t.Errorf("%v workers=%d: RecursiveParallel differs from Recursive", kind, workers)
			}
		}
	}
}

func TestHierarchizationLinear(t *testing.T) {
	// Hierarchization is a linear operator: H(a·f + b·g) = a·H(f) + b·H(g).
	desc := core.MustDescriptor(2, 5)
	f := core.NewGrid(desc)
	f.Fill(parabola)
	h := core.NewGrid(desc)
	h.Fill(mixed)
	combo := core.NewGrid(desc)
	for k := range combo.Data {
		combo.Data[k] = 3*f.Data[k] - 0.5*h.Data[k]
	}
	Iterative(f)
	Iterative(h)
	Iterative(combo)
	for k := range combo.Data {
		want := 3*f.Data[k] - 0.5*h.Data[k]
		if math.Abs(combo.Data[k]-want) > 1e-12 {
			t.Fatalf("linearity violated at %d: %g vs %g", k, combo.Data[k], want)
		}
	}
}

func TestHierarchizeSparseGridSpaceFunctionIsExact(t *testing.T) {
	// A function that IS a sparse grid interpolant has surplus exactly
	// equal to the coefficients it was built from: hierarchizing its
	// nodal values recovers them.
	desc := core.MustDescriptor(2, 4)
	rng := rand.New(rand.NewSource(11))
	alpha := core.NewGrid(desc)
	for k := range alpha.Data {
		alpha.Data[k] = rng.NormFloat64()
	}
	nodal := core.NewGrid(desc)
	x := make([]float64, 2)
	desc.VisitPoints(func(idx int64, l, i []int32) {
		core.Coords(l, i, x)
		nodal.Data[idx] = evalDirect(alpha, x)
	})
	Iterative(nodal)
	for k := range nodal.Data {
		if math.Abs(nodal.Data[k]-alpha.Data[k]) > 1e-12 {
			t.Fatalf("surplus %d = %g want %g", k, nodal.Data[k], alpha.Data[k])
		}
	}
}

func TestGroupZeroUntouchedInSingleDim(t *testing.T) {
	// In 1d the level-0 point (x=0.5) has only boundary parents: its
	// value must be unchanged by hierarchization.
	desc := core.MustDescriptor(1, 4)
	g := core.NewGrid(desc)
	g.Fill(func(x []float64) float64 { return 7 * x[0] })
	v := g.Data[0]
	Iterative(g)
	if g.Data[0] != v {
		t.Errorf("level-0 coefficient changed: %g -> %g", v, g.Data[0])
	}
}

func TestDehierarchizeParallelBitIdentical(t *testing.T) {
	desc := core.MustDescriptor(4, 5)
	g := core.NewGrid(desc)
	g.Fill(mixed)
	orig := g.Clone()
	Iterative(g)
	for _, workers := range []int{1, 2, 3, 8} {
		d := g.Clone()
		DehierarchizeParallel(d, workers)
		for k := range d.Data {
			if math.Abs(d.Data[k]-orig.Data[k]) > 1e-12 {
				t.Fatalf("workers=%d: slot %d: %g want %g", workers, k, d.Data[k], orig.Data[k])
			}
		}
		// And exactly equal to the sequential inverse.
		s := g.Clone()
		Dehierarchize(s)
		for k := range d.Data {
			if d.Data[k] != s.Data[k] {
				t.Fatalf("workers=%d: parallel dehierarchize differs from sequential at %d", workers, k)
			}
		}
	}
}
