package hier

import (
	"math/rand"
	"testing"

	"compactsg/internal/core"
)

// The parallel transforms promise bit-identity with the sequential
// kernels at every worker count: the static decomposition (DESIGN.md
// §10) only changes which worker applies a subspace's update, never
// the update itself or any accumulation order. These tests pin that
// promise across the shapes where the decomposition degenerates —
// d=1 (single chain per dimension), level=1 (one point, one group),
// and grids with fewer subspaces than workers (every phase leaves some
// workers with an empty span, which must still hit the barrier).

var parallelShapes = []struct{ d, n int }{
	{1, 1},  // 1 point: fewer points than any worker pool
	{1, 7},  // single dimension, deep chains
	{2, 1},  // level 1, d-dim: still one point
	{2, 2},  // 5 points < 8 workers
	{3, 3},  // 17 points, shallow groups
	{4, 5},  // the usual mid-size shape
	{10, 4}, // high-d, each group has many subspaces of few points
}

var parallelWorkerCounts = []int{1, 2, 3, 8}

func TestParallelBitIdenticalShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for _, c := range parallelShapes {
		g := randomGrid(rng, c.d, c.n)
		want := g.Clone()
		Iterative(want)
		for _, workers := range parallelWorkerCounts {
			got := g.Clone()
			Parallel(got, workers)
			requireBitEqual(t, "Parallel", got, want)
		}
	}
}

func TestDehierarchizeParallelBitIdenticalShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, c := range parallelShapes {
		g := randomGrid(rng, c.d, c.n)
		want := g.Clone()
		Dehierarchize(want)
		for _, workers := range parallelWorkerCounts {
			got := g.Clone()
			DehierarchizeParallel(got, workers)
			requireBitEqual(t, "DehierarchizeParallel", got, want)
		}
	}
}

// Workers = 0 resolves to GOMAXPROCS (par.Resolve); the result must
// still be bit-identical to the sequential transform.
func TestParallelAutoWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	g := randomGrid(rng, 3, 5)
	want := g.Clone()
	Iterative(want)
	got := g.Clone()
	Parallel(got, 0)
	requireBitEqual(t, "Parallel auto", got, want)

	deWant := g.Clone()
	Dehierarchize(deWant)
	deGot := g.Clone()
	DehierarchizeParallel(deGot, 0)
	requireBitEqual(t, "DehierarchizeParallel auto", deGot, deWant)
}

// The pooled scratch must not leak state between transforms of
// different shapes: run a big grid, then a small one, then the big one
// again — pool reuse with stale lengths would corrupt the second run.
func TestParallelScratchReuseAcrossShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	big := randomGrid(rng, 6, 6)
	small := randomGrid(rng, 1, 2)

	wantBig := big.Clone()
	Iterative(wantBig)
	wantSmall := small.Clone()
	Iterative(wantSmall)

	for round := 0; round < 3; round++ {
		gotBig := big.Clone()
		Parallel(gotBig, 4)
		requireBitEqual(t, "big after pool reuse", gotBig, wantBig)
		gotSmall := small.Clone()
		Parallel(gotSmall, 4)
		requireBitEqual(t, "small after pool reuse", gotSmall, wantSmall)
	}
}

// FuzzParallelHierIdentity fuzzes whole-grid parallel hierarchization
// against the sequential kernel: random shape, random worker count,
// random data. Run under -race this also exercises the barrier
// schedule for phase overlap.
func FuzzParallelHierIdentity(f *testing.F) {
	f.Add(int64(1), 2, 5, 2)
	f.Add(int64(2), 1, 1, 8)
	f.Add(int64(3), 3, 4, 3)
	f.Add(int64(4), 4, 6, 7)
	f.Fuzz(func(t *testing.T, seed int64, d, n, workers int) {
		if d < 1 || d > 5 || n < 1 || n > 6 || workers < 0 || workers > 16 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		g := randomGrid(rng, d, n)
		want := g.Clone()
		Iterative(want)
		got := g.Clone()
		Parallel(got, workers)
		requireBitEqual(t, "Parallel", got, want)

		// And the inverse path on the hierarchized data.
		deWant := want.Clone()
		Dehierarchize(deWant)
		deGot := want.Clone()
		DehierarchizeParallel(deGot, workers)
		requireBitEqual(t, "DehierarchizeParallel", deGot, deWant)
	})
}

func BenchmarkParallelPoolOverhead(b *testing.B) {
	// The persistent-pool transform on a small grid: the cost floor of
	// spawning the pool and running the full barrier schedule.
	g := core.NewGrid(core.MustDescriptor(4, 5))
	for k := range g.Data {
		g.Data[k] = float64(k%17) - 8
	}
	b.ReportAllocs()
	for b.Loop() {
		Parallel(g, 4)
	}
}
