// Package hier implements hierarchization — the compression step of the
// sparse grid technique (paper Sec. 3.1, Alg. 1 and Sec. 4.3, Alg. 6) —
// and its inverse (dehierarchization).
//
// Hierarchization transforms nodal values (function samples at grid
// points) into hierarchical coefficients ("surpluses"): dimension by
// dimension, every point's value is reduced by the average of its two
// hierarchical ancestors in that dimension,
//
//	α ← v − (v_leftParent + v_rightParent)/2 ,
//
// with the zero domain boundary contributing 0. Two families are
// provided:
//
//   - Recursive (Alg. 1): the classic depth-first 1d chain recursion,
//     generalized to d dimensions, running on any grids.Store. This is the
//     baseline the paper ports away from: it is recursion-bound and its
//     access pattern is scattered (Fig. 5 right).
//   - Iterative (Alg. 6): the flat loop over the compact layout, walking
//     level groups in descending order so that every point reads its
//     parents before they are themselves updated. This version is
//     recursion-free and statically decomposable — the shape that maps to
//     GPU kernels and OpenMP loops.
package hier

import (
	"math/bits"
	"sync"

	"compactsg/internal/core"
	"compactsg/internal/grids"
)

// Iterative hierarchizes the compact grid in place (paper Alg. 6):
// for every dimension, level groups are processed from the deepest to
// group 0, and each point subtracts the average of its two hierarchical
// ancestors in that dimension.
func Iterative(g *core.Grid) {
	desc := g.Desc()
	data := g.Data
	d := desc.Dim()
	bases := make([]int64, desc.Level())
	it := core.NewSubspaceIter(desc)
	for t := 0; t < d; t++ {
		for grp := desc.Groups() - 1; grp >= 0; grp-- {
			it.SeekGroup(grp)
			for it.Valid() && it.Group() == grp {
				hierarchizeSubspace(data, desc, it.Level(), it.Start(), t, bases)
				it.Advance()
			}
		}
	}
}

// hierarchizeSubspace applies the dimension-t update to every point of
// one subspace. Points whose 1d level in dimension t is 0 have both
// parents on the (zero) boundary and are skipped.
//
// Parent lookups are stride-based (DESIGN.md §8): the flat index of a
// point's dimension-t ancestor decomposes into the ancestor subspace's
// base offset — precomputed once per subspace by AncestorStarts — plus
// an index1 derived from the point's own mixed-radix position p by pure
// bit arithmetic. With dimension 0 least significant, p splits into
//
//	low  = p & (2^shLow − 1)   digits of dimensions  < t  (shLow = Σ_{j<t} l_j bits)
//	dig  = (p >> shLow) & (2^l_t − 1)   the dimension-t digit (i_t = 2·dig+1)
//	high = p >> (shLow + l_t)           digits of dimensions > t
//
// The ancestor on side ±1 has 1d numerator num = i_t ± 1 = 2·dig + (0|2);
// stripping its k trailing zero bits gives the ancestor's 1d level
// pl = l_t − k and digit num >> (k+1), so its index1 re-packs as
// low + (num>>(k+1))<<shLow + high<<(shLow+pl) — the low and high digit
// blocks are unchanged, only the dimension-t field narrows from l_t to
// pl bits. This replaces the two O(d) ParentIdx→GP2Idx walks per point
// of the direct implementation with O(1) work per point.
func hierarchizeSubspace(data []float64, desc *core.Descriptor, l []int32, start int64, t int, bases []int64) {
	lt := l[t]
	if lt == 0 {
		return
	}
	bases = desc.AncestorStarts(l, t, bases)
	shLow := uint(0)
	for j := 0; j < t; j++ {
		shLow += uint(l[j])
	}
	maskLow := int64(1)<<shLow - 1
	maskT := int64(1)<<uint(lt) - 1
	n := int64(1) << uint(core.LevelSum(l))
	vals := data[start : start+n]
	for p := range vals {
		pp := int64(p)
		low := pp & maskLow
		rest := pp >> shLow
		dig := rest & maskT
		high := rest >> uint(lt)
		var parents float64
		if dig != 0 {
			num := dig << 1 // i_t − 1
			k := uint(bits.TrailingZeros64(uint64(num)))
			pl := uint(lt) - k
			parents += data[bases[pl]+low+(num>>(k+1))<<shLow+high<<(shLow+pl)]
		}
		if dig != maskT {
			num := dig<<1 + 2 // i_t + 1
			k := uint(bits.TrailingZeros64(uint64(num)))
			pl := uint(lt) - k
			parents += data[bases[pl]+low+(num>>(k+1))<<shLow+high<<(shLow+pl)]
		}
		vals[p] -= parents / 2
	}
}

// Parallel hierarchizes the compact grid in place using static workload
// decomposition over the subspaces of each level group, with a barrier
// between groups (paper Sec. 4.3: "a global barrier must be executed
// after each group of subspaces is updated"). workers ≤ 1 falls back to
// the sequential version. Results are bit-identical to Iterative.
func Parallel(g *core.Grid, workers int) {
	if workers <= 1 {
		Iterative(g)
		return
	}
	desc := g.Desc()
	d := desc.Dim()
	for t := 0; t < d; t++ {
		for grp := desc.Groups() - 1; grp >= 0; grp-- {
			parallelGroup(g, grp, t, workers)
		}
	}
}

// parallelGroup updates one level group in dimension t: the group's
// subspaces are dealt to workers in contiguous chunks (static
// decomposition; each thread block on the GPU gets one subspace).
func parallelGroup(g *core.Grid, grp, t, workers int) {
	desc := g.Desc()
	nsub := desc.Subspaces(grp)
	if int64(workers) > nsub {
		workers = int(nsub)
	}
	chunk := (nsub + int64(workers) - 1) / int64(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := int64(w) * chunk
		hi := lo + chunk
		if hi > nsub {
			hi = nsub
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int64) {
			defer wg.Done()
			data := g.Data
			l := make([]int32, desc.Dim())
			bases := make([]int64, desc.Level())
			desc.SubspaceFromIndex(grp, lo, l)
			start := desc.GroupStart(grp) + lo<<uint(grp)
			for s := lo; s < hi; s++ {
				hierarchizeSubspace(data, desc, l, start, t, bases)
				start += int64(1) << uint(grp)
				core.Next(l)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// Dehierarchize inverts Iterative in place: hierarchical coefficients
// become nodal values again. Level groups are processed from group 0
// upward so every point reads its parents' already-restored nodal
// values, and dimensions are unwound in reverse order.
func Dehierarchize(g *core.Grid) {
	desc := g.Desc()
	data := g.Data
	d := desc.Dim()
	bases := make([]int64, desc.Level())
	it := core.NewSubspaceIter(desc)
	for t := d - 1; t >= 0; t-- {
		for grp := 0; grp < desc.Groups(); grp++ {
			it.SeekGroup(grp)
			for it.Valid() && it.Group() == grp {
				dehierarchizeSubspace(data, desc, it.Level(), it.Start(), t, bases)
				it.Advance()
			}
		}
	}
}

// dehierarchizeSubspace mirrors hierarchizeSubspace with the inverse
// update (add the parents' average); see that function for the
// stride-based parent index derivation.
func dehierarchizeSubspace(data []float64, desc *core.Descriptor, l []int32, start int64, t int, bases []int64) {
	lt := l[t]
	if lt == 0 {
		return
	}
	bases = desc.AncestorStarts(l, t, bases)
	shLow := uint(0)
	for j := 0; j < t; j++ {
		shLow += uint(l[j])
	}
	maskLow := int64(1)<<shLow - 1
	maskT := int64(1)<<uint(lt) - 1
	n := int64(1) << uint(core.LevelSum(l))
	vals := data[start : start+n]
	for p := range vals {
		pp := int64(p)
		low := pp & maskLow
		rest := pp >> shLow
		dig := rest & maskT
		high := rest >> uint(lt)
		var parents float64
		if dig != 0 {
			num := dig << 1
			k := uint(bits.TrailingZeros64(uint64(num)))
			pl := uint(lt) - k
			parents += data[bases[pl]+low+(num>>(k+1))<<shLow+high<<(shLow+pl)]
		}
		if dig != maskT {
			num := dig<<1 + 2
			k := uint(bits.TrailingZeros64(uint64(num)))
			pl := uint(lt) - k
			parents += data[bases[pl]+low+(num>>(k+1))<<shLow+high<<(shLow+pl)]
		}
		vals[p] += parents / 2
	}
}

// DehierarchizeParallel is Dehierarchize with static decomposition over
// subspaces and a barrier per level group (ascending). Bit-identical to
// the sequential version for any worker count.
func DehierarchizeParallel(g *core.Grid, workers int) {
	if workers <= 1 {
		Dehierarchize(g)
		return
	}
	desc := g.Desc()
	for t := desc.Dim() - 1; t >= 0; t-- {
		for grp := 0; grp < desc.Groups(); grp++ {
			dehierParallelGroup(g, grp, t, workers)
		}
	}
}

func dehierParallelGroup(g *core.Grid, grp, t, workers int) {
	desc := g.Desc()
	nsub := desc.Subspaces(grp)
	if int64(workers) > nsub {
		workers = int(nsub)
	}
	chunk := (nsub + int64(workers) - 1) / int64(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := int64(w) * chunk
		hi := min(lo+chunk, nsub)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int64) {
			defer wg.Done()
			data := g.Data
			l := make([]int32, desc.Dim())
			bases := make([]int64, desc.Level())
			desc.SubspaceFromIndex(grp, lo, l)
			start := desc.GroupStart(grp) + lo<<uint(grp)
			for s := lo; s < hi; s++ {
				dehierarchizeSubspace(data, desc, l, start, t, bases)
				start += int64(1) << uint(grp)
				core.Next(l)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// Recursive hierarchizes any store with the classic algorithm (paper
// Alg. 1 generalized): for each dimension t, the 1d recursion runs from
// every chain root (points with l_t = 0), carrying the ancestor values
// down the recursion.
func Recursive(s grids.Store) {
	desc := s.Desc()
	d := desc.Dim()
	lbuf := make([]int32, d)
	ibuf := make([]int32, d)
	for t := 0; t < d; t++ {
		desc.VisitPoints(func(_ int64, l, i []int32) {
			if l[t] != 0 {
				return
			}
			copy(lbuf, l)
			copy(ibuf, i)
			budget := desc.Level() - 1 - (core.LevelSum(l) - int(l[t]))
			hierarchize1D(s, lbuf, ibuf, t, 0, 0, int32(budget))
		})
	}
}

// hierarchize1D is the paper's Alg. 1: post-order over the 1d hierarchy
// in dimension t, so every node still reads its ancestors' pre-update
// (nodal in dimension t) values. leftVal/rightVal are the values of the
// nearest ancestors on each side; maxLevel is the deepest 1d level the
// remaining level budget admits.
func hierarchize1D(s grids.Store, l, i []int32, t int, leftVal, rightVal float64, maxLevel int32) {
	v := s.Get(l, i)
	if l[t] < maxLevel {
		lvl, idx := l[t], i[t]
		l[t], i[t] = core.Child1D(lvl, idx, core.LeftParent)
		hierarchize1D(s, l, i, t, leftVal, v, maxLevel)
		l[t], i[t] = core.Child1D(lvl, idx, core.RightParent)
		hierarchize1D(s, l, i, t, v, rightVal, maxLevel)
		l[t], i[t] = lvl, idx
	}
	s.Set(l, i, v-(leftVal+rightVal)/2)
}

// RecursiveParallel runs Recursive's chain recursions on a task pool
// (the paper parallelizes the classic algorithms with OpenMP tasking):
// within one dimension, distinct chains touch disjoint points, so tasks
// only need a barrier between dimensions. Results are bit-identical to
// Recursive.
func RecursiveParallel(s grids.Store, workers int) {
	if workers <= 1 {
		Recursive(s)
		return
	}
	desc := s.Desc()
	d := desc.Dim()
	type task struct {
		l, i   []int32
		budget int32
	}
	for t := 0; t < d; t++ {
		tasks := make(chan task, 4*workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for tk := range tasks {
					hierarchize1D(s, tk.l, tk.i, t, 0, 0, tk.budget)
				}
			}()
		}
		desc.VisitPoints(func(_ int64, l, i []int32) {
			if l[t] != 0 {
				return
			}
			tk := task{
				l:      append([]int32(nil), l...),
				i:      append([]int32(nil), i...),
				budget: int32(desc.Level() - 1 - core.LevelSum(l)),
			}
			tasks <- tk
		})
		close(tasks)
		wg.Wait()
	}
}
