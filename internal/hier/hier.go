// Package hier implements hierarchization — the compression step of the
// sparse grid technique (paper Sec. 3.1, Alg. 1 and Sec. 4.3, Alg. 6) —
// and its inverse (dehierarchization).
//
// Hierarchization transforms nodal values (function samples at grid
// points) into hierarchical coefficients ("surpluses"): dimension by
// dimension, every point's value is reduced by the average of its two
// hierarchical ancestors in that dimension,
//
//	α ← v − (v_leftParent + v_rightParent)/2 ,
//
// with the zero domain boundary contributing 0. Two families are
// provided:
//
//   - Recursive (Alg. 1): the classic depth-first 1d chain recursion,
//     generalized to d dimensions, running on any grids.Store. This is the
//     baseline the paper ports away from: it is recursion-bound and its
//     access pattern is scattered (Fig. 5 right).
//   - Iterative (Alg. 6): the flat loop over the compact layout, walking
//     level groups in descending order so that every point reads its
//     parents before they are themselves updated. This version is
//     recursion-free and statically decomposable — the shape that maps to
//     GPU kernels and OpenMP loops.
package hier

import (
	"math/bits"
	"sync"

	"compactsg/internal/core"
	"compactsg/internal/grids"
	"compactsg/internal/par"
)

// Iterative hierarchizes the compact grid in place (paper Alg. 6):
// for every dimension, level groups are processed from the deepest to
// group 0, and each point subtracts the average of its two hierarchical
// ancestors in that dimension.
func Iterative(g *core.Grid) {
	desc := g.Desc()
	data := g.Data
	d := desc.Dim()
	bases := make([]int64, desc.Level())
	it := core.NewSubspaceIter(desc)
	for t := 0; t < d; t++ {
		for grp := desc.Groups() - 1; grp >= 0; grp-- {
			it.SeekGroup(grp)
			for it.Valid() && it.Group() == grp {
				hierarchizeSubspace(data, desc, it.Level(), it.Start(), t, bases)
				it.Advance()
			}
		}
	}
}

// hierarchizeSubspace applies the dimension-t update to every point of
// one subspace. Points whose 1d level in dimension t is 0 have both
// parents on the (zero) boundary and are skipped.
//
// Parent lookups are stride-based (DESIGN.md §8): the flat index of a
// point's dimension-t ancestor decomposes into the ancestor subspace's
// base offset — precomputed once per subspace by AncestorStarts — plus
// an index1 derived from the point's own mixed-radix position p by pure
// bit arithmetic. With dimension 0 least significant, p splits into
//
//	low  = p & (2^shLow − 1)   digits of dimensions  < t  (shLow = Σ_{j<t} l_j bits)
//	dig  = (p >> shLow) & (2^l_t − 1)   the dimension-t digit (i_t = 2·dig+1)
//	high = p >> (shLow + l_t)           digits of dimensions > t
//
// The ancestor on side ±1 has 1d numerator num = i_t ± 1 = 2·dig + (0|2);
// stripping its k trailing zero bits gives the ancestor's 1d level
// pl = l_t − k and digit num >> (k+1), so its index1 re-packs as
// low + (num>>(k+1))<<shLow + high<<(shLow+pl) — the low and high digit
// blocks are unchanged, only the dimension-t field narrows from l_t to
// pl bits. This replaces the two O(d) ParentIdx→GP2Idx walks per point
// of the direct implementation with O(1) work per point.
func hierarchizeSubspace(data []float64, desc *core.Descriptor, l []int32, start int64, t int, bases []int64) {
	lt := l[t]
	if lt == 0 {
		return
	}
	bases = desc.AncestorStarts(l, t, bases)
	shLow := uint(0)
	for j := 0; j < t; j++ {
		shLow += uint(l[j])
	}
	maskLow := int64(1)<<shLow - 1
	maskT := int64(1)<<uint(lt) - 1
	n := int64(1) << uint(core.LevelSum(l))
	vals := data[start : start+n]
	for p := range vals {
		pp := int64(p)
		low := pp & maskLow
		rest := pp >> shLow
		dig := rest & maskT
		high := rest >> uint(lt)
		var parents float64
		if dig != 0 {
			num := dig << 1 // i_t − 1
			k := uint(bits.TrailingZeros64(uint64(num)))
			pl := uint(lt) - k
			parents += data[bases[pl]+low+(num>>(k+1))<<shLow+high<<(shLow+pl)]
		}
		if dig != maskT {
			num := dig<<1 + 2 // i_t + 1
			k := uint(bits.TrailingZeros64(uint64(num)))
			pl := uint(lt) - k
			parents += data[bases[pl]+low+(num>>(k+1))<<shLow+high<<(shLow+pl)]
		}
		vals[p] -= parents / 2
	}
}

// Parallel hierarchizes the compact grid in place using the paper's
// static workload decomposition (Sec. 5, DESIGN.md §10): one persistent
// pool of workers walks the same (dimension, level-group) phase
// schedule as Iterative, each phase deals the group's subspaces to the
// workers in contiguous cache-line-aligned chunks, and a cyclic barrier
// separates phases (paper Sec. 4.3: "a global barrier must be executed
// after each group of subspaces is updated"). workers = 0 means auto
// (GOMAXPROCS); a resolved count of 1 — including every 1-CPU host —
// takes the sequential path, so single-core numbers never pay
// goroutine overhead. Results are bit-identical to Iterative at any
// worker count: the decomposition only changes which worker applies a
// subspace's update, never the update itself.
func Parallel(g *core.Grid, workers int) {
	workers = poolWorkers(g, workers)
	if workers <= 1 {
		Iterative(g)
		return
	}
	runPool(g, workers, hierarchizeSubspace, false)
}

// DehierarchizeParallel is Dehierarchize on the same persistent
// worker-pool decomposition as Parallel (ascending groups, reverse
// dimension order). workers = 0 means auto; bit-identical to the
// sequential version for any worker count.
func DehierarchizeParallel(g *core.Grid, workers int) {
	workers = poolWorkers(g, workers)
	if workers <= 1 {
		Dehierarchize(g)
		return
	}
	runPool(g, workers, dehierarchizeSubspace, true)
}

// subspaceKernel is the per-subspace update applied by the worker pool:
// hierarchizeSubspace or dehierarchizeSubspace.
type subspaceKernel func(data []float64, desc *core.Descriptor, l []int32, start int64, t int, bases []int64)

// poolWorkers resolves the Workers option (0 = GOMAXPROCS) and caps it
// at the grid's point count so degenerate grids (d=1, level=1, fewer
// points than cores) never spin up workers that could not possibly
// receive a subspace in any phase.
func poolWorkers(g *core.Grid, workers int) int {
	workers = par.Resolve(workers)
	if n := g.Desc().Size(); int64(workers) > n {
		workers = int(n)
	}
	return workers
}

// workerScratch is the per-worker lookup state for one transform: the
// current subspace level vector and the ancestor-base table (DESIGN.md
// §8.2). Pooled so repeated transforms — every Compress/Decompress on
// the serve path — allocate nothing per worker in steady state.
type workerScratch struct {
	l     []int32
	bases []int64
}

var scratchPool = sync.Pool{New: func() any { return new(workerScratch) }}

func getScratch(desc *core.Descriptor) *workerScratch {
	sc := scratchPool.Get().(*workerScratch)
	if cap(sc.l) < desc.Dim() {
		sc.l = make([]int32, desc.Dim())
	}
	sc.l = sc.l[:desc.Dim()]
	if cap(sc.bases) < desc.Level() {
		sc.bases = make([]int64, desc.Level())
	}
	sc.bases = sc.bases[:desc.Level()]
	return sc
}

func putScratch(sc *workerScratch) { scratchPool.Put(sc) }

// runPool spawns the worker pool once per transform and drives every
// (dimension, level-group) phase through it, instead of spawning fresh
// goroutines per group (which would pay creation and scheduling cost
// d·levels times). Every worker executes the full phase schedule —
// workers with an empty span in some phase still arrive at that
// phase's barrier, which keeps the barrier population constant and the
// schedule in lockstep. inverse selects the dehierarchization order:
// ascending groups, dimensions unwound in reverse.
func runPool(g *core.Grid, workers int, kernel subspaceKernel, inverse bool) {
	desc := g.Desc()
	data := g.Data
	d := desc.Dim()
	groups := desc.Groups()
	barrier := par.NewBarrier(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := getScratch(desc)
			defer putScratch(sc)
			if inverse {
				for t := d - 1; t >= 0; t-- {
					for grp := 0; grp < groups; grp++ {
						workerSpan(data, desc, grp, t, workers, w, sc, kernel)
						barrier.Wait()
					}
				}
			} else {
				for t := 0; t < d; t++ {
					for grp := groups - 1; grp >= 0; grp-- {
						workerSpan(data, desc, grp, t, workers, w, sc, kernel)
						barrier.Wait()
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// workerSpan applies the kernel to worker w's statically assigned
// subspace span of one level group. A subspace of group grp spans
// 2^grp float64s, so chunk boundaries are rounded to
// max(1, LineFloat64s >> grp) subspaces: for the shallow groups whose
// subspaces are smaller than a cache line, adjacent workers would
// otherwise write the same 64-byte line at their seam and ping-pong it
// between cores on every phase. (Alignment is relative to the group
// start; Go's allocator places the large data arrays on line-aligned
// boundaries, making this exact in practice and best-effort otherwise.)
func workerSpan(data []float64, desc *core.Descriptor, grp, t, workers, w int, sc *workerScratch, kernel subspaceKernel) {
	align := int64(1)
	if grp < 3 {
		align = int64(par.LineFloat64s >> uint(grp))
	}
	lo, hi := par.AlignedSplit(desc.Subspaces(grp), workers, w, align)
	if lo >= hi {
		return
	}
	desc.SubspaceFromIndex(grp, lo, sc.l)
	start := desc.GroupStart(grp) + lo<<uint(grp)
	for s := lo; s < hi; s++ {
		kernel(data, desc, sc.l, start, t, sc.bases)
		start += int64(1) << uint(grp)
		core.Next(sc.l)
	}
}

// Dehierarchize inverts Iterative in place: hierarchical coefficients
// become nodal values again. Level groups are processed from group 0
// upward so every point reads its parents' already-restored nodal
// values, and dimensions are unwound in reverse order.
func Dehierarchize(g *core.Grid) {
	desc := g.Desc()
	data := g.Data
	d := desc.Dim()
	bases := make([]int64, desc.Level())
	it := core.NewSubspaceIter(desc)
	for t := d - 1; t >= 0; t-- {
		for grp := 0; grp < desc.Groups(); grp++ {
			it.SeekGroup(grp)
			for it.Valid() && it.Group() == grp {
				dehierarchizeSubspace(data, desc, it.Level(), it.Start(), t, bases)
				it.Advance()
			}
		}
	}
}

// dehierarchizeSubspace mirrors hierarchizeSubspace with the inverse
// update (add the parents' average); see that function for the
// stride-based parent index derivation.
func dehierarchizeSubspace(data []float64, desc *core.Descriptor, l []int32, start int64, t int, bases []int64) {
	lt := l[t]
	if lt == 0 {
		return
	}
	bases = desc.AncestorStarts(l, t, bases)
	shLow := uint(0)
	for j := 0; j < t; j++ {
		shLow += uint(l[j])
	}
	maskLow := int64(1)<<shLow - 1
	maskT := int64(1)<<uint(lt) - 1
	n := int64(1) << uint(core.LevelSum(l))
	vals := data[start : start+n]
	for p := range vals {
		pp := int64(p)
		low := pp & maskLow
		rest := pp >> shLow
		dig := rest & maskT
		high := rest >> uint(lt)
		var parents float64
		if dig != 0 {
			num := dig << 1
			k := uint(bits.TrailingZeros64(uint64(num)))
			pl := uint(lt) - k
			parents += data[bases[pl]+low+(num>>(k+1))<<shLow+high<<(shLow+pl)]
		}
		if dig != maskT {
			num := dig<<1 + 2
			k := uint(bits.TrailingZeros64(uint64(num)))
			pl := uint(lt) - k
			parents += data[bases[pl]+low+(num>>(k+1))<<shLow+high<<(shLow+pl)]
		}
		vals[p] += parents / 2
	}
}

// Recursive hierarchizes any store with the classic algorithm (paper
// Alg. 1 generalized): for each dimension t, the 1d recursion runs from
// every chain root (points with l_t = 0), carrying the ancestor values
// down the recursion.
func Recursive(s grids.Store) {
	desc := s.Desc()
	d := desc.Dim()
	lbuf := make([]int32, d)
	ibuf := make([]int32, d)
	for t := 0; t < d; t++ {
		desc.VisitPoints(func(_ int64, l, i []int32) {
			if l[t] != 0 {
				return
			}
			copy(lbuf, l)
			copy(ibuf, i)
			budget := desc.Level() - 1 - (core.LevelSum(l) - int(l[t]))
			hierarchize1D(s, lbuf, ibuf, t, 0, 0, int32(budget))
		})
	}
}

// hierarchize1D is the paper's Alg. 1: post-order over the 1d hierarchy
// in dimension t, so every node still reads its ancestors' pre-update
// (nodal in dimension t) values. leftVal/rightVal are the values of the
// nearest ancestors on each side; maxLevel is the deepest 1d level the
// remaining level budget admits.
func hierarchize1D(s grids.Store, l, i []int32, t int, leftVal, rightVal float64, maxLevel int32) {
	v := s.Get(l, i)
	if l[t] < maxLevel {
		lvl, idx := l[t], i[t]
		l[t], i[t] = core.Child1D(lvl, idx, core.LeftParent)
		hierarchize1D(s, l, i, t, leftVal, v, maxLevel)
		l[t], i[t] = core.Child1D(lvl, idx, core.RightParent)
		hierarchize1D(s, l, i, t, v, rightVal, maxLevel)
		l[t], i[t] = lvl, idx
	}
	s.Set(l, i, v-(leftVal+rightVal)/2)
}

// RecursiveParallel runs Recursive's chain recursions on a task pool
// (the paper parallelizes the classic algorithms with OpenMP tasking):
// within one dimension, distinct chains touch disjoint points, so tasks
// only need a barrier between dimensions. Results are bit-identical to
// Recursive. workers = 0 means auto (GOMAXPROCS).
func RecursiveParallel(s grids.Store, workers int) {
	workers = par.Resolve(workers)
	if workers <= 1 {
		Recursive(s)
		return
	}
	desc := s.Desc()
	d := desc.Dim()
	type task struct {
		l, i   []int32
		budget int32
	}
	for t := 0; t < d; t++ {
		tasks := make(chan task, 4*workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for tk := range tasks {
					hierarchize1D(s, tk.l, tk.i, t, 0, 0, tk.budget)
				}
			}()
		}
		desc.VisitPoints(func(_ int64, l, i []int32) {
			if l[t] != 0 {
				return
			}
			tk := task{
				l:      append([]int32(nil), l...),
				i:      append([]int32(nil), i...),
				budget: int32(desc.Level() - 1 - core.LevelSum(l)),
			}
			tasks <- tk
		})
		close(tasks)
		wg.Wait()
	}
}
