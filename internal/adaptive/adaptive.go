// Package adaptive implements spatially adaptive sparse grids — the
// flexibility the paper's compact structure deliberately trades away
// (Sec. 7: hash-based structures "keep the access structures as flexible
// as possible and suitable for adaptive refinement"). It is built in the
// spirit of the paper's "enhanced" containers: grid points are keyed by
// gp2idx within an enclosing regular grid of the maximum refinement
// level, so keys stay integers and no coordinate vectors are stored.
//
// The grid maintains the classic invariants of adaptive sparse grids:
//
//   - hierarchical closure: every point's hierarchical ancestors (in
//     every dimension) are present, which makes the recursive descent
//     evaluation complete;
//   - surplus semantics: each point stores its hierarchical surplus
//     α_p = f(x_p) − I_coarser(x_p), assigned in ascending level-group
//     order (same-group basis functions vanish at each other's centers).
//
// Refinement is surplus-driven: points whose |α| exceeds a threshold
// get their 2d hierarchical children inserted, cap-limited.
package adaptive

import (
	"fmt"
	"sort"

	"compactsg/internal/basis"
	"compactsg/internal/core"
)

// Grid is a spatially adaptive sparse grid for a fixed target function.
type Grid struct {
	desc *core.Descriptor // enclosing regular grid (defines gp2idx keys)
	dim  int
	max  int // deepest usable level group = desc.Level()-1
	f    func(x []float64) float64

	// surplus maps gp2idx keys to hierarchical surpluses.
	surplus map[int64]float64
	// nodal holds f(x_p) for points whose surplus is not yet assigned.
	pending map[int64]float64
}

// New creates an adaptive grid for f with an initial regular level and
// a maximum refinement level (the key space bound).
func New(dim, initialLevel, maxLevel int, f func(x []float64) float64) (*Grid, error) {
	if initialLevel < 1 || initialLevel > maxLevel {
		return nil, fmt.Errorf("adaptive: initial level %d out of range [1, %d]", initialLevel, maxLevel)
	}
	desc, err := core.NewDescriptor(dim, maxLevel)
	if err != nil {
		return nil, err
	}
	g := &Grid{
		desc:    desc,
		dim:     dim,
		max:     maxLevel - 1,
		f:       f,
		surplus: make(map[int64]float64),
		pending: make(map[int64]float64),
	}
	// Seed with the regular grid of the initial level.
	init, err := core.NewDescriptor(dim, initialLevel)
	if err != nil {
		return nil, err
	}
	init.VisitPoints(func(_ int64, l, i []int32) {
		g.insert(l, i)
	})
	g.commit()
	return g, nil
}

// Points returns the number of grid points.
func (g *Grid) Points() int { return len(g.surplus) + len(g.pending) }

// Dim returns the dimensionality.
func (g *Grid) Dim() int { return g.dim }

// MaxLevel returns the deepest admissible refinement level.
func (g *Grid) MaxLevel() int { return g.max + 1 }

// MemoryBytes models the storage: hash entries of key+value plus
// container overhead, as in the paper's enhanced hash table.
func (g *Grid) MemoryBytes() int64 {
	const perEntry = 8 + 8 + 16 // key, value, chain/metadata overhead
	return int64(g.Points()) * (perEntry + 16)
}

// insert adds the point (l, i) with its nodal value, recursively adding
// missing hierarchical ancestors first (closure). Existing points are
// left untouched.
func (g *Grid) insert(l, i []int32) {
	key := g.desc.GP2Idx(l, i)
	if _, ok := g.surplus[key]; ok {
		return
	}
	if _, ok := g.pending[key]; ok {
		return
	}
	for t := 0; t < g.dim; t++ {
		for _, dir := range []core.ParentDir{core.LeftParent, core.RightParent} {
			pl, pi, ok := core.Parent1D(l[t], i[t], dir)
			if !ok {
				continue
			}
			sl, si := l[t], i[t]
			l[t], i[t] = pl, pi
			g.insert(l, i)
			l[t], i[t] = sl, si
		}
	}
	x := make([]float64, g.dim)
	core.Coords(l, i, x)
	g.pending[key] = g.f(x)
}

// commit assigns surpluses to all pending points in ascending
// level-group order: α_p = f(x_p) − I(x_p), where I already contains
// every coarser point (including same-batch ones).
func (g *Grid) commit() {
	if len(g.pending) == 0 {
		return
	}
	keys := make([]int64, 0, len(g.pending))
	for k := range g.pending {
		keys = append(keys, k)
	}
	// gp2idx orders by level group first, so key order is group order.
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	l := make([]int32, g.dim)
	i := make([]int32, g.dim)
	x := make([]float64, g.dim)
	for _, key := range keys {
		g.desc.Idx2GP(key, l, i)
		core.Coords(l, i, x)
		g.surplus[key] = g.pending[key] - g.Evaluate(x)
		delete(g.pending, key)
	}
}

// Refine inserts the hierarchical children of every point whose |α|
// exceeds eps, stopping once maxNew new points were created (closure
// parents count). It returns the number of points added; zero means
// the grid is converged for this threshold.
func (g *Grid) Refine(eps float64, maxNew int) int {
	type cand struct {
		key int64
		mag float64
	}
	var cands []cand
	for key, a := range g.surplus {
		if a < 0 {
			a = -a
		}
		if a > eps {
			cands = append(cands, cand{key, a})
		}
	}
	// Largest surpluses first: spend the point budget where it matters.
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].mag != cands[b].mag {
			return cands[a].mag > cands[b].mag
		}
		return cands[a].key < cands[b].key
	})
	before := g.Points()
	l := make([]int32, g.dim)
	i := make([]int32, g.dim)
	for _, c := range cands {
		if g.Points()-before >= maxNew {
			break
		}
		g.desc.Idx2GP(c.key, l, i)
		if core.LevelSum(l) >= g.max {
			continue // at the level cap
		}
		for t := 0; t < g.dim; t++ {
			for _, dir := range []core.ParentDir{core.LeftParent, core.RightParent} {
				cl, ci := core.Child1D(l[t], i[t], dir)
				sl, si := l[t], i[t]
				l[t], i[t] = cl, ci
				g.insert(l, i)
				l[t], i[t] = sl, si
			}
		}
	}
	g.commit()
	return g.Points() - before
}

// Evaluate interpolates the adaptive grid at x: a recursive descent per
// dimension over the existing points. Closure guarantees that a chain
// prefix exists whenever any of its descendants does, so pruning on a
// missing root-completion is exact.
func (g *Grid) Evaluate(x []float64) float64 {
	l := make([]int32, g.dim)
	i := make([]int32, g.dim)
	for t := range i {
		i[t] = 1
	}
	return g.evalRec(l, i, x, 0, 1.0)
}

func (g *Grid) evalRec(l, i []int32, x []float64, t int, prod float64) float64 {
	// Start the dimension-t chain at its root.
	l[t], i[t] = 0, 1
	res := 0.0
	for {
		// Prune: if the prefix completed with roots does not exist, no
		// descendant of this prefix exists either (closure).
		if !g.prefixExists(l, i, t) {
			break
		}
		phi := basis.Eval1D(l[t], i[t], x[t])
		p := prod * phi
		if p != 0 {
			if t == g.dim-1 {
				if a, ok := g.surplus[g.desc.GP2Idx(l, i)]; ok {
					res += p * a
				}
			} else {
				res += g.evalRec(l, i, x, t+1, p)
			}
		}
		if int(l[t]) >= g.max {
			break
		}
		if x[t] < core.Coord(l[t], i[t]) {
			l[t], i[t] = core.Child1D(l[t], i[t], core.LeftParent)
		} else {
			l[t], i[t] = core.Child1D(l[t], i[t], core.RightParent)
		}
	}
	l[t], i[t] = 0, 1
	return res
}

// prefixExists reports whether the point formed by dims 0..t of (l, i)
// and roots elsewhere is present.
func (g *Grid) prefixExists(l, i []int32, t int) bool {
	saveL := make([]int32, g.dim-t-1)
	saveI := make([]int32, g.dim-t-1)
	for k := t + 1; k < g.dim; k++ {
		saveL[k-t-1], saveI[k-t-1] = l[k], i[k]
		l[k], i[k] = 0, 1
	}
	_, ok := g.surplus[g.desc.GP2Idx(l, i)]
	for k := t + 1; k < g.dim; k++ {
		l[k], i[k] = saveL[k-t-1], saveI[k-t-1]
	}
	return ok
}

// Coarsen removes leaf points (no hierarchical children present) whose
// |surplus| ≤ eps — the inverse of Refine, used to shrink a grid after
// the target function's rough region moved. Only leaves are removed so
// the closure invariant survives; repeated calls peel deeper. It
// returns the number of removed points and the L∞ error bound of the
// removal (Σ of removed |α|).
func (g *Grid) Coarsen(eps float64) (removed int, errorBound float64) {
	l := make([]int32, g.dim)
	i := make([]int32, g.dim)
	var victims []int64
	for key, a := range g.surplus {
		if a < 0 {
			a = -a
		}
		if a > eps {
			continue
		}
		g.desc.Idx2GP(key, l, i)
		if core.LevelSum(l) == 0 {
			continue // keep the root point
		}
		if g.hasChild(l, i) {
			continue
		}
		victims = append(victims, key)
		errorBound += a
	}
	for _, key := range victims {
		delete(g.surplus, key)
	}
	return len(victims), errorBound
}

// hasChild reports whether any hierarchical child of (l, i) is present.
func (g *Grid) hasChild(l, i []int32) bool {
	for t := 0; t < g.dim; t++ {
		if int(l[t]) >= g.max {
			continue
		}
		for _, dir := range []core.ParentDir{core.LeftParent, core.RightParent} {
			cl, ci := core.Child1D(l[t], i[t], dir)
			sl, si := l[t], i[t]
			l[t], i[t] = cl, ci
			_, ok := g.surplus[g.desc.GP2Idx(l, i)]
			l[t], i[t] = sl, si
			if ok {
				return true
			}
		}
	}
	return false
}

// MaxSurplusAboveLevel returns the largest |α| among points with
// |l|₁ ≥ group — a convergence indicator for refinement loops.
func (g *Grid) MaxSurplusAboveLevel(group int) float64 {
	l := make([]int32, g.dim)
	i := make([]int32, g.dim)
	max := 0.0
	for key, a := range g.surplus {
		g.desc.Idx2GP(key, l, i)
		if core.LevelSum(l) < group {
			continue
		}
		if a < 0 {
			a = -a
		}
		if a > max {
			max = a
		}
	}
	return max
}
