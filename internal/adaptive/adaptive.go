// Package adaptive implements spatially adaptive sparse grids — the
// flexibility the paper's compact structure deliberately trades away
// (Sec. 7: hash-based structures "keep the access structures as flexible
// as possible and suitable for adaptive refinement"). It is built in the
// spirit of the paper's "enhanced" containers: grid points are keyed by
// gp2idx within an enclosing regular grid of the maximum refinement
// level, so keys stay integers and no coordinate vectors are stored.
//
// The grid maintains the classic invariants of adaptive sparse grids:
//
//   - hierarchical closure: every point's hierarchical ancestors (in
//     every dimension) are present, which makes the recursive descent
//     evaluation complete;
//   - surplus semantics: each point stores its hierarchical surplus
//     α_p = f(x_p) − I_coarser(x_p), assigned in ascending level-group
//     order (same-group basis functions vanish at each other's centers).
//
// Refinement is surplus-driven: points whose |α| exceeds a threshold
// get their 2d hierarchical children inserted, cap-limited. A point
// whose children have all been inserted (or that sits at the level cap)
// is settled and never re-examined, so a converged grid answers Refine
// in O(1) instead of re-sorting every surplus each round.
//
// Grids come in two flavors. New captures a function f and computes
// nodal values itself. NewObserved has no captive function: callers feed
// nodal values with Observe/ObserveBatch, poll NeedValues for the points
// the grid is still missing, and Commit assigns surpluses for every
// point whose hierarchical ancestors are all valued — the level-group
// commit order and the closure of the committed set are preserved, so a
// partially observed grid is always a valid (coarser) interpolant.
//
// All exported methods are safe for concurrent use: Evaluate takes a
// read lock and pooled scratch (zero allocations on the hot path), the
// mutating calls serialize behind a write lock.
package adaptive

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"compactsg/internal/basis"
	"compactsg/internal/core"
)

// ErrCaptive is returned by Observe on a grid built with New: such a
// grid computes its own nodal values from the captured function.
var ErrCaptive = errors.New("adaptive: grid has a captive function; Observe requires NewObserved")

// Grid is a spatially adaptive sparse grid for a fixed target function
// (New) or an externally observed one (NewObserved).
type Grid struct {
	desc *core.Descriptor // enclosing regular grid (defines gp2idx keys)
	dim  int
	max  int // deepest usable level group = desc.Level()-1
	f    func(x []float64) float64

	mu sync.RWMutex
	// surplus maps gp2idx keys to hierarchical surpluses.
	surplus map[int64]float64
	// pending holds nodal values f(x_p) for points whose surplus is not
	// yet assigned.
	pending map[int64]float64
	// awaiting holds points inserted without a nodal value (observed
	// grids only); Observe moves them to pending.
	awaiting map[int64]struct{}
	// settled marks points Refine is done with: their children are all
	// inserted, or they sit at the level cap. Coarsen un-settles the
	// parents of removed points.
	settled map[int64]struct{}
	// cappedTotal counts candidates ever blocked at the level cap.
	cappedTotal int

	scratch sync.Pool // *evalScratch
}

// evalScratch is the per-call working set of Evaluate: the (l, i)
// cursor of the recursive descent and the save buffers prefixExists
// restores from. Pooled so the serve hot path does zero allocations.
type evalScratch struct {
	l, i         []int32
	saveL, saveI []int32
}

// RefineStats reports what one refinement round did.
type RefineStats struct {
	// Added is the number of points inserted (closure parents count).
	Added int
	// Capped counts candidates skipped because their children would
	// exceed MaxLevel. A nonzero Capped with zero Added means the grid
	// is budget-blocked at the cap, not converged.
	Capped int
	// Candidates is the number of unsettled points with |α| > eps that
	// were examined. Zero means the round did no candidate work at all.
	Candidates int
	// Committed is the number of pending points whose surplus was
	// assigned this round.
	Committed int
}

func newGrid(dim, initialLevel, maxLevel int, f func(x []float64) float64) (*Grid, error) {
	if initialLevel < 1 || initialLevel > maxLevel {
		return nil, fmt.Errorf("adaptive: initial level %d out of range [1, %d]", initialLevel, maxLevel)
	}
	desc, err := core.NewDescriptor(dim, maxLevel)
	if err != nil {
		return nil, err
	}
	g := &Grid{
		desc:     desc,
		dim:      dim,
		max:      maxLevel - 1,
		f:        f,
		surplus:  make(map[int64]float64),
		pending:  make(map[int64]float64),
		awaiting: make(map[int64]struct{}),
		settled:  make(map[int64]struct{}),
	}
	g.scratch.New = func() any {
		return &evalScratch{
			l:     make([]int32, dim),
			i:     make([]int32, dim),
			saveL: make([]int32, dim),
			saveI: make([]int32, dim),
		}
	}
	// Seed with the regular grid of the initial level.
	init, err := core.NewDescriptor(dim, initialLevel)
	if err != nil {
		return nil, err
	}
	init.VisitPoints(func(_ int64, l, i []int32) {
		g.insert(l, i)
	})
	g.commit()
	return g, nil
}

// New creates an adaptive grid for f with an initial regular level and
// a maximum refinement level (the key space bound).
func New(dim, initialLevel, maxLevel int, f func(x []float64) float64) (*Grid, error) {
	if f == nil {
		return nil, errors.New("adaptive: nil function; use NewObserved for observation-fed grids")
	}
	return newGrid(dim, initialLevel, maxLevel, f)
}

// NewObserved creates an observation-fed adaptive grid: no function is
// captured, the seed points of the initial level start out awaiting
// values. Feed them with Observe/ObserveBatch (NeedValues lists what is
// missing), then Commit assigns surpluses.
func NewObserved(dim, initialLevel, maxLevel int) (*Grid, error) {
	return newGrid(dim, initialLevel, maxLevel, nil)
}

// Observed reports whether the grid is observation-fed.
func (g *Grid) Observed() bool { return g.f == nil }

// Points returns the number of grid points (committed, valued-pending
// and awaiting observation).
func (g *Grid) Points() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.pointsLocked()
}

func (g *Grid) pointsLocked() int {
	return len(g.surplus) + len(g.pending) + len(g.awaiting)
}

// Counts returns the number of committed points, valued points waiting
// for Commit, and points awaiting an observed value.
func (g *Grid) Counts() (committed, pending, awaiting int) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.surplus), len(g.pending), len(g.awaiting)
}

// Dim returns the dimensionality.
func (g *Grid) Dim() int { return g.dim }

// MaxLevel returns the deepest admissible refinement level.
func (g *Grid) MaxLevel() int { return g.max + 1 }

// CappedTotal returns the cumulative number of refinement candidates
// that were blocked at the level cap across all Refine calls.
func (g *Grid) CappedTotal() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.cappedTotal
}

// MemoryBytes models the storage: hash entries of key+value plus
// container overhead, as in the paper's enhanced hash table.
func (g *Grid) MemoryBytes() int64 {
	const perEntry = 8 + 8 + 16 // key, value, chain/metadata overhead
	return int64(g.Points()) * (perEntry + 16)
}

// insert adds the point (l, i), recursively adding missing hierarchical
// ancestors first (closure). Captive-function grids compute the nodal
// value on the spot; observed grids park the point in awaiting.
// Existing points are left untouched. Callers hold the write lock (or
// are constructing the grid).
func (g *Grid) insert(l, i []int32) {
	key := g.desc.GP2Idx(l, i)
	if _, ok := g.surplus[key]; ok {
		return
	}
	if _, ok := g.pending[key]; ok {
		return
	}
	if _, ok := g.awaiting[key]; ok {
		return
	}
	for t := 0; t < g.dim; t++ {
		for _, dir := range []core.ParentDir{core.LeftParent, core.RightParent} {
			pl, pi, ok := core.Parent1D(l[t], i[t], dir)
			if !ok {
				continue
			}
			sl, si := l[t], i[t]
			l[t], i[t] = pl, pi
			g.insert(l, i)
			l[t], i[t] = sl, si
		}
	}
	if g.f == nil {
		g.awaiting[key] = struct{}{}
		return
	}
	x := make([]float64, g.dim)
	core.Coords(l, i, x)
	g.pending[key] = g.f(x)
}

// commit assigns surpluses to pending points in ascending level-group
// order: α_p = f(x_p) − I(x_p), where I already contains every coarser
// point (including same-batch ones). A point commits only when all its
// hierarchical parents are committed, so the committed set stays closed
// even when some ancestors are still awaiting observation; blocked
// points stay pending for a later round. Callers hold the write lock.
// Returns the number of points committed.
func (g *Grid) commit() int {
	if len(g.pending) == 0 {
		return 0
	}
	keys := make([]int64, 0, len(g.pending))
	for k := range g.pending {
		keys = append(keys, k)
	}
	// gp2idx orders by level group first, so key order is group order;
	// parents have strictly smaller keys and commit first in this pass.
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	l := make([]int32, g.dim)
	i := make([]int32, g.dim)
	x := make([]float64, g.dim)
	sc := g.getScratch()
	defer g.putScratch(sc)
	n := 0
	for _, key := range keys {
		g.desc.Idx2GP(key, l, i)
		if !g.parentsCommitted(l, i) {
			continue
		}
		core.Coords(l, i, x)
		g.surplus[key] = g.pending[key] - g.evalLocked(sc, x)
		delete(g.pending, key)
		n++
	}
	return n
}

// parentsCommitted reports whether every hierarchical parent of (l, i)
// has a committed surplus. Closure makes the direct-parent check
// sufficient: committed parents had their own parents committed first.
func (g *Grid) parentsCommitted(l, i []int32) bool {
	for t := 0; t < g.dim; t++ {
		for _, dir := range []core.ParentDir{core.LeftParent, core.RightParent} {
			pl, pi, ok := core.Parent1D(l[t], i[t], dir)
			if !ok {
				continue
			}
			sl, si := l[t], i[t]
			l[t], i[t] = pl, pi
			_, committed := g.surplus[g.desc.GP2Idx(l, i)]
			l[t], i[t] = sl, si
			if !committed {
				return false
			}
		}
	}
	return true
}

// Commit assigns surpluses for every valued point whose hierarchical
// ancestors are all committed, in ascending level-group order. It
// returns the number of points committed. Captive-function grids commit
// inside Refine automatically; observed grids call this after feeding
// values (the serve layer does it before every refinement round).
func (g *Grid) Commit() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.commit()
}

// canonPoint maps x onto the deepest-level lattice of the enclosing
// descriptor and reduces it to canonical (level, index) form in each
// dimension. Coordinates must lie strictly inside (0, 1) and within
// 1e-9 of a lattice point.
func (g *Grid) canonPoint(x []float64, l, i []int32) (int64, error) {
	scale := float64(int64(1) << uint(g.max+1))
	for t, v := range x {
		if math.IsNaN(v) || v <= 0 || v >= 1 {
			return 0, fmt.Errorf("adaptive: coordinate %d = %v outside (0, 1)", t, v)
		}
		k := math.Round(v * scale)
		if math.Abs(v-k/scale) > 1e-9 {
			return 0, fmt.Errorf("adaptive: coordinate %d = %v is not on the level-%d lattice", t, v, g.max+1)
		}
		ki := int64(k)
		if ki <= 0 || ki >= int64(scale) {
			return 0, fmt.Errorf("adaptive: coordinate %d = %v snaps to the boundary", t, v)
		}
		lev := int32(g.max)
		for ki%2 == 0 {
			ki >>= 1
			lev--
		}
		l[t], i[t] = lev, int32(ki)
	}
	if s := core.LevelSum(l[:len(x)]); s > g.max {
		return 0, fmt.Errorf("adaptive: point at level group %d outside the level-%d sparse grid", s, g.max+1)
	}
	return g.desc.GP2Idx(l, i), nil
}

// Observe feeds one nodal value y = f(x) to an observation-fed grid.
// x must be a grid point of the enclosing lattice (strictly inside the
// unit cube, on the deepest level's lattice). Points the grid asked for
// (NeedValues) become valued; a point not yet in the grid is inserted
// (its closure ancestors start awaiting values); re-observing a
// committed point adjusts its surplus in place so the interpolant
// matches the new value at x exactly.
func (g *Grid) Observe(x []float64, y float64) error {
	if g.f != nil {
		return ErrCaptive
	}
	if len(x) != g.dim {
		return fmt.Errorf("adaptive: point has %d coordinates, grid is %d-dimensional", len(x), g.dim)
	}
	if math.IsNaN(y) || math.IsInf(y, 0) {
		return fmt.Errorf("adaptive: observed value %v is not finite", y)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.observeLocked(x, y)
}

func (g *Grid) observeLocked(x []float64, y float64) error {
	sc := g.getScratch()
	defer g.putScratch(sc)
	key, err := g.canonPoint(x, sc.l, sc.i)
	if err != nil {
		return err
	}
	if _, ok := g.surplus[key]; ok {
		// Deeper basis functions vanish at strictly coarser lattice
		// points, so I(x) here is ancestors + α_key: shifting α by the
		// residual restores exact interpolation of y at x.
		sc2 := g.getScratch()
		delta := y - g.evalLocked(sc2, x)
		g.putScratch(sc2)
		g.surplus[key] += delta
		return nil
	}
	if _, ok := g.pending[key]; ok {
		g.pending[key] = y
		return nil
	}
	if _, ok := g.awaiting[key]; ok {
		delete(g.awaiting, key)
		g.pending[key] = y
		return nil
	}
	// New point: insert with closure (ancestors start awaiting), then
	// value it.
	g.insert(sc.l, sc.i)
	delete(g.awaiting, key)
	g.pending[key] = y
	return nil
}

// ObserveBatch feeds len(xs) observations. Each point is applied
// independently: malformed points (off-lattice, boundary, wrong
// dimension, non-finite value) are counted in rejected and skipped,
// everything else lands atomically under one lock. A length mismatch
// between xs and ys rejects the whole batch.
func (g *Grid) ObserveBatch(xs [][]float64, ys []float64) (applied, rejected int, err error) {
	if g.f != nil {
		return 0, 0, ErrCaptive
	}
	if len(xs) != len(ys) {
		return 0, 0, fmt.Errorf("adaptive: %d points with %d values", len(xs), len(ys))
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for n, x := range xs {
		if len(x) != g.dim || math.IsNaN(ys[n]) || math.IsInf(ys[n], 0) {
			rejected++
			continue
		}
		if g.observeLocked(x, ys[n]) != nil {
			rejected++
			continue
		}
		applied++
	}
	return applied, rejected, nil
}

// NeedValues returns the coordinates of up to limit points that are
// awaiting an observed value, coarsest level groups first (their values
// unblock the most committals). limit ≤ 0 returns all of them. The
// returned slices are freshly allocated.
func (g *Grid) NeedValues(limit int) [][]float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if len(g.awaiting) == 0 {
		return nil
	}
	keys := make([]int64, 0, len(g.awaiting))
	for k := range g.awaiting {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	if limit > 0 && len(keys) > limit {
		keys = keys[:limit]
	}
	l := make([]int32, g.dim)
	i := make([]int32, g.dim)
	out := make([][]float64, len(keys))
	for n, key := range keys {
		g.desc.Idx2GP(key, l, i)
		x := make([]float64, g.dim)
		core.Coords(l, i, x)
		out[n] = x
	}
	return out
}

// Refine inserts the hierarchical children of every unsettled point
// whose |α| exceeds eps, stopping once maxNew new points were created
// (closure parents count). It returns the number of points added; zero
// means the grid is converged for this threshold (check RefineDetailed
// to distinguish convergence from a level-cap block).
func (g *Grid) Refine(eps float64, maxNew int) int {
	return g.RefineDetailed(eps, maxNew).Added
}

// RefineDetailed is Refine with full accounting: candidates examined,
// points added, candidates blocked at the level cap, pending points
// committed. Settled points — children already inserted, or capped —
// are skipped without a sort slot, so back-to-back calls on an
// unchanged grid examine zero candidates.
func (g *Grid) RefineDetailed(eps float64, maxNew int) RefineStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	var st RefineStats
	type cand struct {
		key int64
		mag float64
	}
	var cands []cand
	for key, a := range g.surplus {
		if _, done := g.settled[key]; done {
			continue
		}
		if a < 0 {
			a = -a
		}
		if a > eps {
			cands = append(cands, cand{key, a})
		}
	}
	st.Candidates = len(cands)
	// Largest surpluses first: spend the point budget where it matters.
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].mag != cands[b].mag {
			return cands[a].mag > cands[b].mag
		}
		return cands[a].key < cands[b].key
	})
	before := g.pointsLocked()
	l := make([]int32, g.dim)
	i := make([]int32, g.dim)
	for _, c := range cands {
		if g.pointsLocked()-before >= maxNew {
			// Budget exhausted: remaining candidates stay unsettled and
			// are retried next round.
			break
		}
		g.desc.Idx2GP(c.key, l, i)
		if core.LevelSum(l) >= g.max {
			// Children would exceed the level cap; the point can never
			// refine, so it settles — but the caller learns it was
			// capacity, not convergence.
			g.settled[c.key] = struct{}{}
			st.Capped++
			g.cappedTotal++
			continue
		}
		for t := 0; t < g.dim; t++ {
			for _, dir := range []core.ParentDir{core.LeftParent, core.RightParent} {
				cl, ci := core.Child1D(l[t], i[t], dir)
				sl, si := l[t], i[t]
				l[t], i[t] = cl, ci
				g.insert(l, i)
				l[t], i[t] = sl, si
			}
		}
		g.settled[c.key] = struct{}{}
	}
	st.Committed = g.commit()
	st.Added = g.pointsLocked() - before
	return st
}

// getScratch and putScratch manage the pooled Evaluate working set.
func (g *Grid) getScratch() *evalScratch   { return g.scratch.Get().(*evalScratch) }
func (g *Grid) putScratch(sc *evalScratch) { g.scratch.Put(sc) }

// Evaluate interpolates the adaptive grid at x: a recursive descent per
// dimension over the existing points. Closure guarantees that a chain
// prefix exists whenever any of its descendants does, so pruning on a
// missing root-completion is exact. Safe for concurrent use; does not
// allocate.
func (g *Grid) Evaluate(x []float64) float64 {
	sc := g.getScratch()
	g.mu.RLock()
	v := g.evalLocked(sc, x)
	g.mu.RUnlock()
	g.putScratch(sc)
	return v
}

// evalLocked evaluates with the caller holding at least a read lock,
// using sc as the descent cursor.
func (g *Grid) evalLocked(sc *evalScratch, x []float64) float64 {
	for t := 0; t < g.dim; t++ {
		sc.l[t], sc.i[t] = 0, 1
	}
	return g.evalRec(sc, x, 0, 1.0)
}

func (g *Grid) evalRec(sc *evalScratch, x []float64, t int, prod float64) float64 {
	l, i := sc.l, sc.i
	// Start the dimension-t chain at its root.
	l[t], i[t] = 0, 1
	res := 0.0
	for {
		// Prune: if the prefix completed with roots does not exist, no
		// descendant of this prefix exists either (closure).
		if !g.prefixExists(sc, t) {
			break
		}
		phi := basis.Eval1D(l[t], i[t], x[t])
		p := prod * phi
		if p != 0 {
			if t == g.dim-1 {
				if a, ok := g.surplus[g.desc.GP2Idx(l, i)]; ok {
					res += p * a
				}
			} else {
				res += g.evalRec(sc, x, t+1, p)
			}
		}
		if int(l[t]) >= g.max {
			break
		}
		if x[t] < core.Coord(l[t], i[t]) {
			l[t], i[t] = core.Child1D(l[t], i[t], core.LeftParent)
		} else {
			l[t], i[t] = core.Child1D(l[t], i[t], core.RightParent)
		}
	}
	l[t], i[t] = 0, 1
	return res
}

// prefixExists reports whether the point formed by dims 0..t of the
// descent cursor and roots elsewhere is present. The save buffers in sc
// are free at every call site: each invocation restores them before
// returning and the recursion never holds one across a deeper call.
func (g *Grid) prefixExists(sc *evalScratch, t int) bool {
	l, i := sc.l, sc.i
	for k := t + 1; k < g.dim; k++ {
		sc.saveL[k], sc.saveI[k] = l[k], i[k]
		l[k], i[k] = 0, 1
	}
	_, ok := g.surplus[g.desc.GP2Idx(l, i)]
	for k := t + 1; k < g.dim; k++ {
		l[k], i[k] = sc.saveL[k], sc.saveI[k]
	}
	return ok
}

// Coarsen removes leaf points (no hierarchical children present) whose
// |surplus| ≤ eps — the inverse of Refine, used to shrink a grid after
// the target function's rough region moved. Only leaves are removed so
// the closure invariant survives; repeated calls peel deeper. Parents
// of removed points are un-settled so a later Refine can regrow them.
// It returns the number of removed points and the L∞ error bound of
// the removal (Σ of removed |α|).
func (g *Grid) Coarsen(eps float64) (removed int, errorBound float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	l := make([]int32, g.dim)
	i := make([]int32, g.dim)
	var victims []int64
	for key, a := range g.surplus {
		if a < 0 {
			a = -a
		}
		if a > eps {
			continue
		}
		g.desc.Idx2GP(key, l, i)
		if core.LevelSum(l) == 0 {
			continue // keep the root point
		}
		if g.hasChild(l, i) {
			continue
		}
		victims = append(victims, key)
		errorBound += a
	}
	for _, key := range victims {
		delete(g.surplus, key)
		delete(g.settled, key)
		// The victim's parents lost a child: let Refine regrow them.
		g.desc.Idx2GP(key, l, i)
		for t := 0; t < g.dim; t++ {
			for _, dir := range []core.ParentDir{core.LeftParent, core.RightParent} {
				pl, pi, ok := core.Parent1D(l[t], i[t], dir)
				if !ok {
					continue
				}
				sl, si := l[t], i[t]
				l[t], i[t] = pl, pi
				delete(g.settled, g.desc.GP2Idx(l, i))
				l[t], i[t] = sl, si
			}
		}
	}
	return len(victims), errorBound
}

// hasChild reports whether any hierarchical child of (l, i) is present
// in any state (committed, valued-pending, or awaiting observation) —
// removing the parent of an uncommitted child would orphan it.
func (g *Grid) hasChild(l, i []int32) bool {
	for t := 0; t < g.dim; t++ {
		if int(l[t]) >= g.max {
			continue
		}
		for _, dir := range []core.ParentDir{core.LeftParent, core.RightParent} {
			cl, ci := core.Child1D(l[t], i[t], dir)
			sl, si := l[t], i[t]
			l[t], i[t] = cl, ci
			key := g.desc.GP2Idx(l, i)
			_, ok := g.surplus[key]
			if !ok {
				_, ok = g.pending[key]
			}
			if !ok {
				_, ok = g.awaiting[key]
			}
			l[t], i[t] = sl, si
			if ok {
				return true
			}
		}
	}
	return false
}

// MaxSurplusAboveLevel returns the largest |α| among points with
// |l|₁ ≥ group — a convergence indicator for refinement loops.
func (g *Grid) MaxSurplusAboveLevel(group int) float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	l := make([]int32, g.dim)
	i := make([]int32, g.dim)
	max := 0.0
	for key, a := range g.surplus {
		g.desc.Idx2GP(key, l, i)
		if core.LevelSum(l) < group {
			continue
		}
		if a < 0 {
			a = -a
		}
		if a > max {
			max = a
		}
	}
	return max
}

// ExportCompact materializes the committed surpluses into the paper's
// compact regular-grid layout: a core.Grid of the smallest regular
// level that contains every committed group, with absent points left at
// zero surplus. The regular interpolant of the exported grid is
// pointwise identical to the adaptive interpolant, so a snapshot of it
// serves the same model. Points still pending or awaiting observation
// are not exported — Commit first.
func (g *Grid) ExportCompact() (*core.Grid, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	l := make([]int32, g.dim)
	i := make([]int32, g.dim)
	maxGroup := 0
	for key := range g.surplus {
		g.desc.Idx2GP(key, l, i)
		if s := core.LevelSum(l); s > maxGroup {
			maxGroup = s
		}
	}
	desc, err := core.NewDescriptor(g.dim, maxGroup+1)
	if err != nil {
		return nil, err
	}
	out := core.NewGrid(desc)
	for key, a := range g.surplus {
		g.desc.Idx2GP(key, l, i)
		out.Data[desc.GP2Idx(l, i)] = a
	}
	return out, nil
}
