package adaptive

import (
	"math"
	"math/rand"
	"testing"

	"compactsg/internal/core"
	"compactsg/internal/eval"
	"compactsg/internal/grids"
	"compactsg/internal/hier"
	"compactsg/internal/workload"
)

// peak is smooth but sharply localized: the case where adaptivity pays.
func peak(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		d := v - 0.3
		s += d * d
	}
	w := 1.0
	for _, v := range x {
		w *= 4 * v * (1 - v)
	}
	return w * math.Exp(-120*s)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(2, 0, 6, peak); err == nil {
		t.Error("initial level 0 accepted")
	}
	if _, err := New(2, 7, 6, peak); err == nil {
		t.Error("initial > max accepted")
	}
	if _, err := New(0, 2, 6, peak); err == nil {
		t.Error("dim 0 accepted")
	}
}

func TestInitialGridMatchesRegular(t *testing.T) {
	// Before any refinement the adaptive grid IS the regular grid: same
	// point count, identical interpolant.
	for _, c := range []struct{ d, n int }{{1, 4}, {2, 4}, {3, 3}} {
		f := workload.Parabola.F
		ag, err := New(c.d, c.n, c.n+2, f)
		if err != nil {
			t.Fatal(err)
		}
		desc := core.MustDescriptor(c.d, c.n)
		if int64(ag.Points()) != desc.Size() {
			t.Fatalf("d=%d: %d points, regular grid has %d", c.d, ag.Points(), desc.Size())
		}
		rg := core.NewGrid(desc)
		rg.Fill(f)
		hier.Iterative(rg)
		rng := rand.New(rand.NewSource(3))
		for k := 0; k < 60; k++ {
			x := make([]float64, c.d)
			for t2 := range x {
				x[t2] = rng.Float64()
			}
			a := ag.Evaluate(x)
			b := eval.Iterative(rg, x)
			if math.Abs(a-b) > 1e-12 {
				t.Fatalf("d=%d at %v: adaptive %g vs regular %g", c.d, x, a, b)
			}
		}
	}
}

func TestSurplusesMatchRegularHierarchization(t *testing.T) {
	// The per-point surpluses of the unrefined adaptive grid equal the
	// hierarchical coefficients of the regular grid.
	f := workload.SineProduct.F
	ag, err := New(2, 4, 6, f)
	if err != nil {
		t.Fatal(err)
	}
	desc := core.MustDescriptor(2, 4)
	rg := core.NewGrid(desc)
	rg.Fill(f)
	hier.Iterative(rg)
	desc.VisitPoints(func(idx int64, l, i []int32) {
		key := ag.desc.GP2Idx(l, i)
		a, ok := ag.surplus[key]
		if !ok {
			t.Fatalf("point %v %v missing from adaptive grid", l, i)
		}
		if math.Abs(a-rg.Data[idx]) > 1e-12 {
			t.Fatalf("surplus at %v %v: %g want %g", l, i, a, rg.Data[idx])
		}
	})
}

func TestInterpolatesNodalValuesAfterRefinement(t *testing.T) {
	ag, err := New(2, 3, 8, peak)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		ag.Refine(1e-3, 200)
	}
	// Every stored point must be reproduced exactly.
	l := make([]int32, 2)
	i := make([]int32, 2)
	x := make([]float64, 2)
	for key := range ag.surplus {
		ag.desc.Idx2GP(key, l, i)
		core.Coords(l, i, x)
		if got := ag.Evaluate(x); math.Abs(got-peak(x)) > 1e-10 {
			t.Fatalf("nodal value at %v: %g want %g", x, got, peak(x))
		}
	}
}

func TestClosureInvariant(t *testing.T) {
	ag, err := New(3, 2, 7, peak)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		ag.Refine(1e-4, 300)
	}
	l := make([]int32, 3)
	i := make([]int32, 3)
	for key := range ag.surplus {
		ag.desc.Idx2GP(key, l, i)
		for t2 := 0; t2 < 3; t2++ {
			for _, dir := range []core.ParentDir{core.LeftParent, core.RightParent} {
				pl, pi, ok := core.Parent1D(l[t2], i[t2], dir)
				if !ok {
					continue
				}
				sl, si := l[t2], i[t2]
				l[t2], i[t2] = pl, pi
				if _, present := ag.surplus[ag.desc.GP2Idx(l, i)]; !present {
					t.Fatalf("closure violated: parent of %v %v in dim %d missing", l, i, t2)
				}
				l[t2], i[t2] = sl, si
			}
		}
	}
}

func TestRefinementImprovesAccuracyPerPoint(t *testing.T) {
	// For the localized peak, surplus-driven refinement must reach a
	// lower error than a regular grid of comparable size.
	rng := rand.New(rand.NewSource(7))
	pts := make([][]float64, 400)
	for k := range pts {
		pts[k] = []float64{rng.Float64(), rng.Float64()}
	}
	maxErr := func(ev func([]float64) float64) float64 {
		m := 0.0
		for _, x := range pts {
			if e := math.Abs(ev(x) - peak(x)); e > m {
				m = e
			}
		}
		return m
	}

	ag, err := New(2, 3, 10, peak)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 12; r++ {
		if ag.Refine(5e-4, 400) == 0 {
			break
		}
	}
	adaptiveErr := maxErr(ag.Evaluate)

	// A regular grid with at least as many points.
	level := 3
	var rg *core.Grid
	for {
		desc := core.MustDescriptor(2, level)
		if desc.Size() >= int64(ag.Points()) || level >= 10 {
			rg = core.NewGrid(desc)
			break
		}
		level++
	}
	rg.Fill(peak)
	hier.Iterative(rg)
	regularErr := maxErr(func(x []float64) float64 { return eval.Iterative(rg, x) })

	if adaptiveErr >= regularErr {
		t.Errorf("adaptive (%d pts, err %.2e) not better than regular (%d pts, err %.2e)",
			ag.Points(), adaptiveErr, rg.Size(), regularErr)
	}
}

func TestRefineRespectsCapsAndConverges(t *testing.T) {
	ag, err := New(2, 2, 5, workload.Parabola.F)
	if err != nil {
		t.Fatal(err)
	}
	added := ag.Refine(1e-12, 10)
	if added > 10+8 { // cap plus one candidate's closure spillover
		t.Errorf("Refine added %d points, cap was 10", added)
	}
	// With a huge threshold nothing refines.
	if got := ag.Refine(1e9, 100); got != 0 {
		t.Errorf("Refine with huge eps added %d points", got)
	}
	// Exhaustive refinement stops at the level cap.
	total := 0
	for r := 0; r < 50; r++ {
		n := ag.Refine(0, 10000)
		total += n
		if n == 0 {
			break
		}
	}
	full := core.MustDescriptor(2, 5).Size()
	if int64(ag.Points()) > full {
		t.Errorf("adaptive grid exceeded its enclosing regular grid: %d > %d", ag.Points(), full)
	}
}

func TestMemoryModel(t *testing.T) {
	ag, err := New(2, 3, 6, peak)
	if err != nil {
		t.Fatal(err)
	}
	if ag.MemoryBytes() <= 0 {
		t.Error("memory must be positive")
	}
	perPoint := float64(ag.MemoryBytes()) / float64(ag.Points())
	// Should resemble the enhanced hash cost, well above the compact 8B.
	if perPoint < 16 || perPoint > 128 {
		t.Errorf("per-point memory %.0f B implausible", perPoint)
	}
	// And the hash-kind store of the same regular grid should be in the
	// same regime.
	desc := core.MustDescriptor(2, 3)
	hashPer := float64(grids.PredictMemory(grids.EnhHash, desc)) / float64(desc.Size())
	if perPoint > 3*hashPer {
		t.Errorf("adaptive per-point cost %.0f vs hash %.0f diverges", perPoint, hashPer)
	}
}

func TestMaxSurplusAboveLevel(t *testing.T) {
	ag, err := New(1, 4, 6, func(x []float64) float64 { return x[0] * (1 - x[0]) })
	if err != nil {
		t.Fatal(err)
	}
	all := ag.MaxSurplusAboveLevel(0)
	deep := ag.MaxSurplusAboveLevel(2)
	if all <= 0 || deep <= 0 || deep > all {
		t.Errorf("surplus indicator: all=%g deep=%g", all, deep)
	}
	// Smooth function: deep surpluses decay.
	if deep > all/2 {
		t.Errorf("deep surpluses should decay for a smooth function: %g vs %g", deep, all)
	}
}

func TestCoarsenRemovesOnlySafeLeaves(t *testing.T) {
	ag, err := New(2, 4, 8, workload.Parabola.F)
	if err != nil {
		t.Fatal(err)
	}
	// Parabola surpluses at the leaf group (|l|₁=3) top out around
	// 4·2^-8 ≈ 0.016, so eps = 0.02 removes leaves but keeps the rest.
	const eps = 0.02
	before := ag.Points()
	removed, bound := ag.Coarsen(eps)
	if removed <= 0 {
		t.Fatal("smooth function at level 4 must have removable small-surplus leaves")
	}
	if bound <= 0 || bound > float64(removed)*eps {
		t.Errorf("bound %g implausible for %d removals at eps %g", bound, removed, eps)
	}
	if ag.Points() != before-removed {
		t.Errorf("points %d, expected %d", ag.Points(), before-removed)
	}
	// Closure must survive coarsening.
	l := make([]int32, 2)
	i := make([]int32, 2)
	for key := range ag.surplus {
		ag.desc.Idx2GP(key, l, i)
		for t2 := 0; t2 < 2; t2++ {
			for _, dir := range []core.ParentDir{core.LeftParent, core.RightParent} {
				pl, pi, ok := core.Parent1D(l[t2], i[t2], dir)
				if !ok {
					continue
				}
				sl, si := l[t2], i[t2]
				l[t2], i[t2] = pl, pi
				if _, present := ag.surplus[ag.desc.GP2Idx(l, i)]; !present {
					t.Fatalf("closure broken after coarsening: ancestor of %v %v missing", l, i)
				}
				l[t2], i[t2] = sl, si
			}
		}
	}
	// Interpolation error stays within the bound at random points.
	rng := rand.New(rand.NewSource(77))
	for k := 0; k < 100; k++ {
		x := []float64{rng.Float64(), rng.Float64()}
		full, err := New(2, 4, 8, workload.Parabola.F)
		_ = err
		if e := math.Abs(ag.Evaluate(x) - full.Evaluate(x)); e > bound+1e-12 {
			t.Fatalf("coarsening error %g exceeds bound %g at %v", e, bound, x)
		}
	}
	// The root survives even with an enormous threshold.
	for r := 0; r < 20; r++ {
		if n, _ := ag.Coarsen(math.Inf(1)); n == 0 {
			break
		}
	}
	if ag.Points() < 1 {
		t.Error("coarsening removed the root")
	}
}

func TestCoarsenRefineRoundTrip(t *testing.T) {
	// Refine onto a peak, coarsen with eps=0 (removes nothing), then
	// coarsen aggressively and re-refine: the grid re-converges.
	ag, err := New(2, 3, 9, peak)
	if err != nil {
		t.Fatal(err)
	}
	ag.Refine(1e-3, 500)
	if n, _ := ag.Coarsen(0); n != 0 {
		t.Error("eps=0 coarsening must remove nothing")
	}
	ag.Coarsen(1e-2)
	for r := 0; r < 6; r++ {
		ag.Refine(1e-3, 500)
	}
	x := []float64{0.3, 0.3}
	if e := math.Abs(ag.Evaluate(x) - peak(x)); e > 5e-3 {
		t.Errorf("after coarsen+refine, error %g at the peak", e)
	}
}

func TestExportCompactMatchesAdaptiveInterpolant(t *testing.T) {
	// The exported regular grid carries the committed surpluses at their
	// (level, index) slots with absent points at zero, so its regular
	// interpolant is pointwise identical to the adaptive one.
	ag, err := New(2, 2, 7, peak)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		ag.Refine(1e-3, 300)
	}
	cg, err := ag.ExportCompact()
	if err != nil {
		t.Fatal(err)
	}
	if lvl := cg.Desc().Level(); lvl < 2 || lvl > 7 {
		t.Fatalf("export level %d outside [initial, max]", lvl)
	}
	rng := rand.New(rand.NewSource(11))
	x := make([]float64, 2)
	for k := 0; k < 200; k++ {
		x[0], x[1] = rng.Float64(), rng.Float64()
		a := ag.Evaluate(x)
		b := eval.Iterative(cg, x)
		if math.Abs(a-b) > 1e-12*(1+math.Abs(a)) {
			t.Fatalf("at %v: adaptive %g vs exported %g", x, a, b)
		}
	}
	// An empty observed grid exports the trivial level-1 zero grid.
	og, _ := NewObserved(2, 2, 5)
	zg, err := og.ExportCompact()
	if err != nil {
		t.Fatal(err)
	}
	if zg.Desc().Level() != 1 {
		t.Fatalf("empty export level %d, want 1", zg.Desc().Level())
	}
	if got := eval.Iterative(zg, []float64{0.3, 0.7}); got != 0 {
		t.Fatalf("empty export evaluates to %g", got)
	}
}
