package adaptive

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"compactsg/internal/basis"
	"compactsg/internal/core"
)

// feedAll answers every NeedValues request of an observed grid from f
// until nothing is awaiting, committing as it goes. Returns the number
// of observations fed.
func feedAll(t *testing.T, g *Grid, f func(x []float64) float64) int {
	t.Helper()
	fed := 0
	for round := 0; ; round++ {
		need := g.NeedValues(0)
		if len(need) == 0 {
			break
		}
		if round > 64 {
			t.Fatalf("grid still awaiting %d values after %d rounds", len(need), round)
		}
		for _, x := range need {
			if err := g.Observe(x, f(x)); err != nil {
				t.Fatalf("observe %v: %v", x, err)
			}
			fed++
		}
		g.Commit()
	}
	g.Commit()
	return fed
}

func TestObserveOnCaptiveGridRejected(t *testing.T) {
	ag, err := New(2, 2, 5, peak)
	if err != nil {
		t.Fatal(err)
	}
	if err := ag.Observe([]float64{0.5, 0.5}, 1); err != ErrCaptive {
		t.Fatalf("Observe on captive grid: err = %v, want ErrCaptive", err)
	}
	if _, _, err := ag.ObserveBatch([][]float64{{0.5, 0.5}}, []float64{1}); err != ErrCaptive {
		t.Fatalf("ObserveBatch on captive grid: err = %v, want ErrCaptive", err)
	}
}

func TestObservedGridMatchesCaptive(t *testing.T) {
	// Feeding an observed grid the same nodal values a captive grid
	// computes itself must produce identical surpluses — the observation
	// path is the same hierarchization, just inverted control flow.
	for _, dim := range []int{1, 2, 3} {
		og, err := NewObserved(dim, 2, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !og.Observed() {
			t.Fatal("Observed() = false on an observation-fed grid")
		}
		feedAll(t, og, peak)
		cg, err := New(dim, 2, 5, peak)
		if err != nil {
			t.Fatal(err)
		}
		if og.Points() != cg.Points() {
			t.Fatalf("dim %d: observed %d points, captive %d", dim, og.Points(), cg.Points())
		}
		for key, a := range cg.surplus {
			b, ok := og.surplus[key]
			if !ok {
				t.Fatalf("dim %d: key %d missing from observed grid", dim, key)
			}
			if a != b {
				t.Fatalf("dim %d key %d: surplus %g (observed) vs %g (captive)", dim, key, b, a)
			}
		}
	}
}

func TestObservedRefineLoopMatchesCaptive(t *testing.T) {
	// Interleaving Refine with the observe/commit loop must track the
	// captive grid exactly: same points, same surpluses, round by round.
	og, _ := NewObserved(2, 2, 6)
	cg, _ := New(2, 2, 6, peak)
	feedAll(t, og, peak)
	for r := 0; r < 4; r++ {
		so := og.RefineDetailed(1e-3, 500)
		feedAll(t, og, peak)
		og.Commit()
		sc := cg.RefineDetailed(1e-3, 500)
		if so.Added != sc.Added || so.Capped != sc.Capped {
			t.Fatalf("round %d: observed stats %+v, captive %+v", r, so, sc)
		}
		if got, want := og.Points(), cg.Points(); got != want {
			t.Fatalf("round %d: observed %d points, captive %d", r, got, want)
		}
	}
	for key, a := range cg.surplus {
		if b := og.surplus[key]; a != b {
			t.Fatalf("key %d: surplus %g (observed) vs %g (captive)", key, b, a)
		}
	}
}

func TestObserveValidation(t *testing.T) {
	og, _ := NewObserved(2, 2, 5)
	bad := []struct {
		name string
		x    []float64
		y    float64
	}{
		{"wrong dim", []float64{0.5}, 1},
		{"off lattice", []float64{0.5, 1.0 / 3.0}, 1},
		{"boundary zero", []float64{0.0, 0.5}, 1},
		{"boundary one", []float64{0.5, 1.0}, 1},
		{"negative", []float64{-0.25, 0.5}, 1},
		{"nan coord", []float64{math.NaN(), 0.5}, 1},
		{"nan value", []float64{0.5, 0.5}, math.NaN()},
		{"inf value", []float64{0.5, 0.5}, math.Inf(1)},
	}
	for _, c := range bad {
		if err := og.Observe(c.x, c.y); err == nil {
			t.Errorf("%s: Observe(%v, %v) accepted", c.name, c.x, c.y)
		}
	}
	if _, _, err := og.ObserveBatch([][]float64{{0.5, 0.5}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	applied, rejected, err := og.ObserveBatch(
		[][]float64{{0.5, 0.5}, {0.5}, {0.25, 0.5}},
		[]float64{1, 2, 3})
	if err != nil || applied != 2 || rejected != 1 {
		t.Fatalf("batch: applied=%d rejected=%d err=%v, want 2/1/nil", applied, rejected, err)
	}
}

func TestObserveInsertsNewPointWithClosure(t *testing.T) {
	// Observing a point the grid never asked for inserts it plus its
	// hierarchical ancestors; the ancestors surface through NeedValues
	// and the point only commits after they are valued.
	og, _ := NewObserved(1, 1, 5)
	if err := og.Observe([]float64{0.5}, 2.0); err != nil {
		t.Fatal(err)
	}
	og.Commit()
	// 0.8125 = 13/16 is a level-3 (0-based) point: ancestors 0.75, 0.875.
	if err := og.Observe([]float64{0.8125}, 1.0); err != nil {
		t.Fatal(err)
	}
	if n := og.Commit(); n != 0 {
		t.Fatalf("committed %d points with unvalued ancestors", n)
	}
	need := og.NeedValues(0)
	if len(need) != 2 {
		t.Fatalf("NeedValues = %v, want the two ancestors", need)
	}
	// Coarsest first: 0.75 (level 1) before 0.875 (level 2).
	if need[0][0] != 0.75 || need[1][0] != 0.875 {
		t.Fatalf("NeedValues order = %v, want [0.75 0.875]", need)
	}
	f := func(x []float64) float64 { return x[0] * x[0] }
	for _, x := range need {
		og.Observe(x, f(x))
	}
	og.Commit()
	if c, p, a := og.Counts(); p != 0 || a != 0 || c != 4 {
		t.Fatalf("counts after full feed: committed=%d pending=%d awaiting=%d", c, p, a)
	}
	if got := og.Evaluate([]float64{0.8125}); math.Abs(got-1.0) != 0 {
		t.Fatalf("Evaluate(0.8125) = %g, want the observed 1.0", got)
	}
}

func TestReobserveCommittedPointAdjustsInterpolant(t *testing.T) {
	og, _ := NewObserved(2, 3, 6)
	feedAll(t, og, peak)
	x := []float64{0.25, 0.75}
	if err := og.Observe(x, 42.0); err != nil {
		t.Fatal(err)
	}
	if got := og.Evaluate(x); math.Abs(got-42.0) > 1e-12 {
		t.Fatalf("after re-observe, Evaluate(%v) = %g, want 42", x, got)
	}
	// Other committed points keep their nodal values (same-group and
	// coarser points are unaffected by a deeper/same-level adjustment).
	y := []float64{0.5, 0.5}
	if got, want := og.Evaluate(y), peak(y); math.Abs(got-want) > 1e-12 {
		t.Fatalf("unrelated point moved: Evaluate(%v) = %g, want %g", y, got, want)
	}
}

// TestRefineSecondCallDoesZeroWork is the regression test for the
// re-scan bug: Refine used to rebuild and re-sort the candidate list
// from every surplus on every call, so a converged grid still paid
// O(N log N) per round. With the settled set, the second of two
// back-to-back calls with unchanged surpluses examines zero candidates.
func TestRefineSecondCallDoesZeroWork(t *testing.T) {
	ag, err := New(2, 3, 8, peak)
	if err != nil {
		t.Fatal(err)
	}
	first := ag.RefineDetailed(1e-3, 10000)
	if first.Added == 0 {
		t.Fatal("first refinement added nothing; test needs a refining grid")
	}
	// Refine again with the SAME eps: every candidate of the first round
	// is settled, only the newly added points may qualify. Then once
	// more: now nothing may be examined at all.
	second := ag.RefineDetailed(1e-3, 10000)
	for second.Added > 0 {
		second = ag.RefineDetailed(1e-3, 10000)
	}
	final := ag.RefineDetailed(1e-3, 10000)
	if final.Candidates != 0 || final.Added != 0 || final.Committed != 0 {
		t.Fatalf("converged grid still does work: %+v", final)
	}
}

// TestRefineCapBoundary pins the level-cap boundary: a candidate at
// LevelSum == max (0-based) cannot refine — its children would leave
// the descriptor — and must be counted as capped, while a candidate one
// group shallower refines normally.
func TestRefineCapBoundary(t *testing.T) {
	// initialLevel == maxLevel == 3 in 1-D: groups 0, 1, 2 all present
	// (7 points), deepest usable group max = 2.
	f := func(x []float64) float64 { return x[0] * (1 - x[0]) }
	ag, err := New(1, 3, 3, f)
	if err != nil {
		t.Fatal(err)
	}
	if ag.max != 2 {
		t.Fatalf("max = %d, want 2", ag.max)
	}
	st := ag.RefineDetailed(0, 10000)
	// All 7 surpluses are nonzero candidates; the 4 group-2 points sit
	// exactly at LevelSum == max and are capped, the 3 shallower ones
	// have all children present already (full grid) so nothing is added.
	if st.Candidates != 7 {
		t.Fatalf("Candidates = %d, want 7", st.Candidates)
	}
	if st.Capped != 4 {
		t.Fatalf("Capped = %d, want the 4 points at LevelSum == max", st.Capped)
	}
	if st.Added != 0 {
		t.Fatalf("Added = %d on a full grid", st.Added)
	}
	if ag.CappedTotal() != 4 {
		t.Fatalf("CappedTotal = %d, want 4", ag.CappedTotal())
	}
	// Boundary from the other side: with headroom (maxLevel 4) the same
	// group-2 points are NOT capped and refine into group 3.
	ag2, _ := New(1, 3, 4, f)
	st2 := ag2.RefineDetailed(0, 10000)
	if st2.Capped != 0 {
		t.Fatalf("with headroom: Capped = %d, want 0", st2.Capped)
	}
	if st2.Added == 0 {
		t.Fatal("with headroom: nothing refined")
	}
	// Everything is settled either way: the next round is free.
	if again := ag.RefineDetailed(0, 10000); again.Candidates != 0 {
		t.Fatalf("capped points re-examined: %+v", again)
	}
}

// TestEvaluateZeroAlloc pins the serve-blocking allocation bug: the
// original Evaluate allocated three slices per call (plus two more per
// prefix check). The pooled path must not allocate at steady state.
func TestEvaluateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates and randomizes sync.Pool")
	}
	ag, err := New(3, 3, 7, peak)
	if err != nil {
		t.Fatal(err)
	}
	ag.Refine(1e-4, 500)
	x := []float64{0.31, 0.29, 0.33}
	for k := 0; k < 10; k++ {
		ag.Evaluate(x)
	}
	if allocs := testing.AllocsPerRun(200, func() { ag.Evaluate(x) }); allocs != 0 {
		t.Fatalf("Evaluate allocates %.1f times per call; the hot path must be allocation-free", allocs)
	}
}

func TestConcurrentObserveRefineEvaluate(t *testing.T) {
	// Race-hunting smoke: writers observing/refining/coarsening while
	// readers evaluate. Values are checked elsewhere; this test exists
	// for -race.
	og, err := NewObserved(2, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	feedAll(t, og, peak)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			x := make([]float64, 2)
			for {
				select {
				case <-stop:
					return
				default:
				}
				x[0], x[1] = rng.Float64(), rng.Float64()
				og.Evaluate(x)
				og.Points()
				og.NeedValues(4)
			}
		}(int64(w))
	}
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 50; round++ {
		og.RefineDetailed(1e-4, 50)
		for _, x := range og.NeedValues(0) {
			og.Observe(x, peak(x))
		}
		og.Commit()
		if round%10 == 9 {
			og.Coarsen(1e-9)
		}
		_ = rng
	}
	close(stop)
	wg.Wait()
}

// refEval is a clean-room reference evaluator: the original
// allocation-per-call recursive descent, kept verbatim as the semantic
// baseline. The pooled Evaluate must bit-match it — same traversal,
// same floating-point accumulation order.
func refEval(g *Grid, x []float64) float64 {
	l := make([]int32, g.dim)
	i := make([]int32, g.dim)
	for t := range i {
		i[t] = 1
	}
	return refEvalRec(g, l, i, x, 0, 1.0)
}

func refEvalRec(g *Grid, l, i []int32, x []float64, t int, prod float64) float64 {
	l[t], i[t] = 0, 1
	res := 0.0
	for {
		if !refPrefixExists(g, l, i, t) {
			break
		}
		phi := basis.Eval1D(l[t], i[t], x[t])
		p := prod * phi
		if p != 0 {
			if t == g.dim-1 {
				if a, ok := g.surplus[g.desc.GP2Idx(l, i)]; ok {
					res += p * a
				}
			} else {
				res += refEvalRec(g, l, i, x, t+1, p)
			}
		}
		if int(l[t]) >= g.max {
			break
		}
		if x[t] < core.Coord(l[t], i[t]) {
			l[t], i[t] = core.Child1D(l[t], i[t], core.LeftParent)
		} else {
			l[t], i[t] = core.Child1D(l[t], i[t], core.RightParent)
		}
	}
	l[t], i[t] = 0, 1
	return res
}

func refPrefixExists(g *Grid, l, i []int32, t int) bool {
	saveL := make([]int32, g.dim-t-1)
	saveI := make([]int32, g.dim-t-1)
	for k := t + 1; k < g.dim; k++ {
		saveL[k-t-1], saveI[k-t-1] = l[k], i[k]
		l[k], i[k] = 0, 1
	}
	_, ok := g.surplus[g.desc.GP2Idx(l, i)]
	for k := t + 1; k < g.dim; k++ {
		l[k], i[k] = saveL[k-t-1], saveI[k-t-1]
	}
	return ok
}

// bruteEval sums α·Πφ over every committed point directly — no
// traversal, no pruning. Different accumulation order, so it is checked
// with a tolerance rather than bitwise.
func bruteEval(g *Grid, x []float64) float64 {
	l := make([]int32, g.dim)
	i := make([]int32, g.dim)
	sum := 0.0
	for key, a := range g.surplus {
		g.desc.Idx2GP(key, l, i)
		p := a
		for t := 0; t < g.dim; t++ {
			p *= basis.Eval1D(l[t], i[t], x[t])
		}
		sum += p
	}
	return sum
}

// checkAdaptiveInvariants asserts, for an arbitrary grid state:
// closure of the committed set, full-set closure of all points, and
// Evaluate agreement with both references.
func checkAdaptiveInvariants(t *testing.T, g *Grid, rng *rand.Rand) {
	t.Helper()
	l := make([]int32, g.dim)
	i := make([]int32, g.dim)
	exists := func(key int64) bool {
		if _, ok := g.surplus[key]; ok {
			return true
		}
		if _, ok := g.pending[key]; ok {
			return true
		}
		_, ok := g.awaiting[key]
		return ok
	}
	checkParents := func(key int64, committed bool) {
		g.desc.Idx2GP(key, l, i)
		for t2 := 0; t2 < g.dim; t2++ {
			for _, dir := range []core.ParentDir{core.LeftParent, core.RightParent} {
				pl, pi, ok := core.Parent1D(l[t2], i[t2], dir)
				if !ok {
					continue
				}
				sl, si := l[t2], i[t2]
				l[t2], i[t2] = pl, pi
				pkey := g.desc.GP2Idx(l, i)
				if committed {
					if _, ok := g.surplus[pkey]; !ok {
						t.Fatalf("committed-set closure violated: parent %d of %d not committed", pkey, key)
					}
				} else if !exists(pkey) {
					t.Fatalf("closure violated: parent %d of %d absent", pkey, key)
				}
				l[t2], i[t2] = sl, si
				g.desc.Idx2GP(key, l, i)
			}
		}
	}
	for key := range g.surplus {
		checkParents(key, true)
	}
	for key := range g.pending {
		checkParents(key, false)
	}
	for key := range g.awaiting {
		checkParents(key, false)
	}
	x := make([]float64, g.dim)
	for k := 0; k < 16; k++ {
		for t2 := range x {
			x[t2] = rng.Float64()
		}
		got := g.Evaluate(x)
		if want := refEval(g, x); got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("Evaluate(%v) = %g, reference traversal %g (must bit-match)", x, got, want)
		}
		if brute := bruteEval(g, x); math.Abs(got-brute) > 1e-9*(1+math.Abs(brute)) {
			t.Fatalf("Evaluate(%v) = %g, brute-force sum %g", x, got, brute)
		}
	}
}

// runAdaptiveOps drives a random Observe/Refine/Coarsen/Commit sequence
// from the seed and checks invariants along the way.
func runAdaptiveOps(t *testing.T, seed uint64) {
	rng := rand.New(rand.NewSource(int64(seed)))
	dim := 1 + rng.Intn(3)
	maxLevel := 4 + rng.Intn(3)
	og, err := NewObserved(dim, 1+rng.Intn(2), maxLevel)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, dim)
	// randPoint fills x with a random sparse-grid point: levels summing
	// to at most max (0-based), odd index per dimension.
	randPoint := func() {
		remaining := maxLevel - 1
		for t2 := range x {
			lv := rng.Intn(remaining + 1)
			remaining -= lv
			idx := 2*rng.Intn(1<<uint(lv)) + 1
			x[t2] = float64(idx) / float64(int64(1)<<uint(lv+1))
		}
	}
	ops := 20 + rng.Intn(20)
	for op := 0; op < ops; op++ {
		switch rng.Intn(5) {
		case 0, 1: // observe a random lattice point (may insert)
			randPoint()
			if err := og.Observe(x, rng.NormFloat64()); err != nil {
				t.Fatalf("observe %v: %v", x, err)
			}
		case 2: // answer what the grid asked for
			for _, p := range og.NeedValues(8) {
				og.Observe(p, rng.NormFloat64())
			}
			og.Commit()
		case 3:
			eps := []float64{0, 1e-3, 0.1}[rng.Intn(3)]
			og.RefineDetailed(eps, 1+rng.Intn(64))
		case 4:
			og.Coarsen([]float64{0, 1e-2}[rng.Intn(2)])
		}
		if op%8 == 7 {
			checkAdaptiveInvariants(t, og, rng)
		}
	}
	og.Commit()
	checkAdaptiveInvariants(t, og, rng)
}

// TestAdaptiveInvariantsProperty replays a fixed set of seeds through
// the random-op driver on every plain and -race test run.
func TestAdaptiveInvariantsProperty(t *testing.T) {
	for seed := uint64(1); seed <= 24; seed++ {
		runAdaptiveOps(t, seed)
	}
}

// FuzzAdaptiveInvariants is the coverage-guided version: the fuzzer
// hunts op sequences that break closure or evaluation identity.
func FuzzAdaptiveInvariants(f *testing.F) {
	for seed := uint64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		runAdaptiveOps(t, seed)
	})
}
