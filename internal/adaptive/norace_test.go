//go:build !race

package adaptive

const raceEnabled = false
