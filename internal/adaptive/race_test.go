//go:build race

package adaptive

const raceEnabled = true
