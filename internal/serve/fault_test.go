package serve

import (
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"compactsg"
	"compactsg/internal/core"
)

// Fault injection for the cold-load path: every way a grid file can be
// bad must surface as a clean typed error with nothing cached, nothing
// mapped and the failure counted — and the registry must recover as
// soon as the file is healthy again.
//
// None of these tests may run in parallel: they assert on the global
// core.ActiveMappings counter.

// restampHeaderCRC recomputes the v2 header checksum after a deliberate
// header mutation, so corruption deeper in the pipeline is reached.
func restampHeaderCRC(raw []byte) {
	table := crc32.MakeTable(crc32.Castagnoli)
	binary.LittleEndian.PutUint32(raw[44:], crc32.Checksum(raw[:44], table))
}

func corruptFile(t *testing.T, path string, mutate func([]byte) []byte) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(raw), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLoadFaultInjection(t *testing.T) {
	errHook := errors.New("injected hook failure")
	cases := []struct {
		name    string
		mutate  func([]byte) []byte // nil: corrupt nothing, fail via LoadHook
		check   func(t *testing.T, err error)
		hookErr error
	}{
		{
			name:   "truncated file",
			mutate: func(raw []byte) []byte { return raw[:len(raw)-100] },
			check: func(t *testing.T, err error) {
				var ce *core.CorruptError
				if !errors.As(err, &ce) {
					t.Errorf("truncation error is not a CorruptError: %v", err)
				}
			},
		},
		{
			name: "flipped payload bit",
			mutate: func(raw []byte) []byte {
				raw[core.SnapshotAlign+17] ^= 0x04
				return raw
			},
			check: func(t *testing.T, err error) {
				if !errors.Is(err, core.ErrChecksum) {
					t.Errorf("payload corruption not reported as checksum mismatch: %v", err)
				}
			},
		},
		{
			name: "flipped payload checksum",
			mutate: func(raw []byte) []byte {
				raw[40] ^= 0xff // payload CRC field
				restampHeaderCRC(raw)
				return raw
			},
			check: func(t *testing.T, err error) {
				if !errors.Is(err, core.ErrChecksum) {
					t.Errorf("checksum corruption not reported as checksum mismatch: %v", err)
				}
			},
		},
		{
			name: "flipped header byte",
			mutate: func(raw []byte) []byte {
				raw[8] ^= 0x01 // dim, header CRC left stale
				return raw
			},
			check: func(t *testing.T, err error) {
				if !errors.Is(err, core.ErrChecksum) {
					t.Errorf("header corruption not reported as checksum mismatch: %v", err)
				}
			},
		},
		{
			name:    "load hook error",
			hookErr: errHook,
			check: func(t *testing.T, err error) {
				if !errors.Is(err, errHook) {
					t.Errorf("hook error not propagated: %v", err)
				}
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			baseline := core.ActiveMappings()
			dir := t.TempDir()
			path, want := writeGrid(t, dir, 2, 4)
			healthy, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if c.mutate != nil {
				corruptFile(t, path, c.mutate)
			}

			var fails atomic.Int64
			s := NewGridSet(2)
			s.OnLoadFail = func(string, error) { fails.Add(1) }
			if c.hookErr != nil {
				s.LoadHook = func(string) error { return c.hookErr }
			}
			if err := s.Add("g", path); err != nil {
				t.Fatal(err)
			}

			_, err = s.Get("g")
			if err == nil {
				t.Fatal("Get succeeded on a faulty load")
			}
			c.check(t, err)
			if n := s.ResidentCount(); n != 0 {
				t.Errorf("failed load left %d grids resident", n)
			}
			if got := core.ActiveMappings(); got != baseline {
				t.Errorf("failed load leaked a mapping: ActiveMappings %d, baseline %d", got, baseline)
			}
			if n := fails.Load(); n != 1 {
				t.Errorf("OnLoadFail fired %d times, want 1", n)
			}

			// Recovery: restore the healthy bytes (and drop the failing
			// hook) and the very next Get must succeed.
			s.LoadHook = nil
			if err := os.WriteFile(path, healthy, 0o644); err != nil {
				t.Fatal(err)
			}
			g, err := s.Get("g")
			if err != nil {
				t.Fatalf("Get after repair: %v", err)
			}
			if g.Dim() != want.Dim() || g.Level() != want.Level() {
				t.Errorf("repaired grid has wrong shape d=%d l=%d", g.Dim(), g.Level())
			}
			if n := fails.Load(); n != 1 {
				t.Errorf("successful load bumped the failure count to %d", n)
			}
			s.Purge()
			if got := core.ActiveMappings(); got != baseline {
				t.Errorf("purged registry still holds mappings: %d, baseline %d", got, baseline)
			}
		})
	}
}

// TestEvictionReleasesMappingAfterLastLease: an evicted mmap-loaded
// grid must stay readable for its lease holders and be unmapped only
// when the last lease goes away.
func TestEvictionReleasesMappingAfterLastLease(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("mmap load path is linux-only")
	}
	baseline := core.ActiveMappings()
	s := newTestSet(t, 1, 2)

	lease, err := s.Acquire(context.Background(), "q0")
	if err != nil {
		t.Fatal(err)
	}
	if got := core.ActiveMappings(); got != baseline+1 {
		t.Fatalf("after first load: ActiveMappings %d, want %d", got, baseline+1)
	}

	// Loading q1 evicts q0 (maxResident = 1) — but q0's lease is live,
	// so its mapping must survive the eviction.
	if _, err := s.Get("q1"); err != nil {
		t.Fatal(err)
	}
	if got := core.ActiveMappings(); got != baseline+2 {
		t.Fatalf("after eviction with live lease: ActiveMappings %d, want %d", got, baseline+2)
	}
	if _, err := lease.Grid().Evaluate([]float64{0.3, 0.7}); err != nil {
		t.Fatalf("evicted leased grid unreadable: %v", err)
	}

	lease.Release()
	if got := core.ActiveMappings(); got != baseline+1 {
		t.Fatalf("after last lease release: ActiveMappings %d, want %d (q0 unmapped)", got, baseline+1)
	}
	lease.Release() // double release is a no-op
	if got := core.ActiveMappings(); got != baseline+1 {
		t.Fatalf("double release changed mappings: %d", core.ActiveMappings())
	}

	s.Purge()
	if got := core.ActiveMappings(); got != baseline {
		t.Fatalf("after Purge: ActiveMappings %d, want %d", got, baseline)
	}
}

// TestServerFaultEndToEnd drives a corrupt grid file through the full
// HTTP stack: the request must fail cleanly, the failure metric must
// show on /metrics, and after Close no goroutine or mapping survives.
func TestServerFaultEndToEnd(t *testing.T) {
	baseline := core.ActiveMappings()
	goroutines := runtime.NumGoroutine()
	dir := t.TempDir()
	goodPath, _ := writeGrid(t, dir, 2, 3)
	badPath, _ := writeGrid(t, dir, 2, 4)
	corruptFile(t, badPath, func(raw []byte) []byte {
		raw[core.SnapshotAlign+3] ^= 0x40
		return raw
	})

	srv := New(Config{Coalesce: true, MaxResident: 2})
	if err := srv.AddGrid("good", goodPath); err != nil {
		t.Fatal(err)
	}
	if err := srv.AddGrid("bad", badPath); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	post := func(body string) (int, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/eval", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if status, body := post(`{"grid":"bad","point":[0.5,0.5]}`); status/100 == 2 {
		t.Fatalf("eval on corrupt grid returned %d: %s", status, body)
	}
	if status, body := post(`{"grid":"good","point":[0.5,0.5]}`); status != http.StatusOK {
		t.Fatalf("eval on good grid returned %d: %s", status, body)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"sgserve_grid_load_failures_total 1",
		`sgserve_grid_load_mode_total{mode="mmap"} 1`,
	} {
		if !strings.Contains(string(metricsBody), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Tear down the HTTP plumbing before the leak check so only the
	// Server's own goroutines could still be running.
	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if got := core.ActiveMappings(); got != baseline {
		t.Errorf("closed server still holds mappings: %d, baseline %d", got, baseline)
	}
	assertNoGoroutineLeak(t, goroutines)
}

// waitMappings polls core.ActiveMappings until it reaches want or the
// deadline passes, returning the last observed value. Needed wherever a
// detached eval goroutine performs the release: the unmap trails the
// HTTP response by a scheduling quantum.
func waitMappings(t *testing.T, want int64) int64 {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		got := core.ActiveMappings()
		if got == want || time.Now().After(deadline) {
			return got
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestBatchTimeoutEvictionHoldsMapping is the regression test for the
// batch-timeout use-after-release: a batch request times out while its
// evaluation is still running, the grid is LRU-evicted mid-flight, and
// the snapshot mapping must survive until EvaluateBatch returns.
//
// Before the fix, handleEvalBatch released its lease in a handler
// defer, so the timeout response dropped the evicted grid's last lease
// and munmapped the payload under the running read — in production a
// SIGSEGV, here observable deterministically as ActiveMappings dropping
// while the eval goroutine is still parked inside the gate. Exercises
// both detached-goroutine handlers: /v1/eval/batch and /v1/eval/bin.
func TestBatchTimeoutEvictionHoldsMapping(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("mmap load path is linux-only")
	}
	cases := []struct {
		name string
		fire func(t *testing.T, h http.Handler) *httptest.ResponseRecorder
	}{
		{
			name: "json batch",
			fire: func(t *testing.T, h http.Handler) *httptest.ResponseRecorder {
				req := httptest.NewRequest("POST", "/v1/eval/batch",
					strings.NewReader(`{"grid":"a","points":[[0.25,0.75]]}`))
				req.Header.Set("Content-Type", "application/json")
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				return rec
			},
		},
		{
			name: "binary frame",
			fire: func(t *testing.T, h http.Handler) *httptest.ResponseRecorder {
				frame := AppendEvalFrame(nil, "a", [][]float64{{0.25, 0.75}})
				req := httptest.NewRequest("POST", "/v1/eval/bin",
					strings.NewReader(string(frame)))
				req.Header.Set("Content-Type", BinContentType)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				return rec
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			baseline := core.ActiveMappings()
			goroutines := runtime.NumGoroutine()
			dir := t.TempDir()
			pathA, _ := writeGrid(t, dir, 2, 4)
			pathB, _ := writeGrid(t, dir, 2, 3)

			srv := New(Config{MaxResident: 1, Coalesce: false, RequestTimeout: 100 * time.Millisecond})
			if err := srv.AddGrid("a", pathA); err != nil {
				t.Fatal(err)
			}
			if err := srv.AddGrid("b", pathB); err != nil {
				t.Fatal(err)
			}
			// The gate parks grid a's first evaluation until released, so
			// the request timeout and the eviction both happen while
			// EvaluateBatch is (logically) still reading the mapping.
			entered := make(chan struct{})
			release := make(chan struct{})
			var once sync.Once
			srv.batchEvalGate = func(grid string) {
				if grid == "a" {
					once.Do(func() { close(entered) })
					<-release
				}
			}
			h := srv.Handler()

			done := make(chan *httptest.ResponseRecorder, 1)
			go func() { done <- c.fire(t, h) }()
			<-entered
			if got := core.ActiveMappings(); got != baseline+1 {
				t.Fatalf("with batch in flight: ActiveMappings %d, want %d", got, baseline+1)
			}

			// Evict grid a mid-flight (MaxResident = 1): its mapping must
			// survive on the eval goroutine's lease.
			rec := postJSON(t, h, "/v1/eval", map[string]any{"grid": "b", "point": []float64{0.5, 0.5}})
			if rec.Code != http.StatusOK {
				t.Fatalf("eval b: status %d body %s", rec.Code, rec.Body)
			}
			if got := core.ActiveMappings(); got != baseline+2 {
				t.Fatalf("after eviction with eval in flight: ActiveMappings %d, want %d", got, baseline+2)
			}

			// The request times out and answers 503 — while the eval
			// goroutine still holds the gate.
			brec := <-done
			if brec.Code != http.StatusServiceUnavailable {
				t.Fatalf("timed-out batch: status %d body %s, want 503", brec.Code, brec.Body)
			}
			// THE regression assertion: the evicted grid's mapping is
			// still alive, because only EvaluateBatch returning may drop
			// the last lease. The pre-fix handler released on return,
			// munmapping the payload under the running read.
			if got := core.ActiveMappings(); got != baseline+2 {
				t.Fatalf("timeout response released the mapping under the running eval: ActiveMappings %d, want %d",
					got, baseline+2)
			}

			close(release)
			if got := waitMappings(t, baseline+1); got != baseline+1 {
				t.Fatalf("after eval finished: ActiveMappings %d, want %d (grid a unmapped)", got, baseline+1)
			}
			if err := srv.Close(); err != nil {
				t.Fatal(err)
			}
			if got := waitMappings(t, baseline); got != baseline {
				t.Fatalf("after Close: ActiveMappings %d, want %d", got, baseline)
			}
			assertNoGoroutineLeak(t, goroutines)
		})
	}
}

// TestPurgeIsReloadSafe: a purged grid is reloaded on the next access,
// so Purge mid-traffic only costs a reload, never an error.
func TestPurgeIsReloadSafe(t *testing.T) {
	s := newTestSet(t, 2, 1)
	var loads atomic.Int64
	s.OnLoad = func(string, compactsg.LoadMode, time.Duration) { loads.Add(1) }
	if _, err := s.Get("q0"); err != nil {
		t.Fatal(err)
	}
	s.Purge()
	if n := s.ResidentCount(); n != 0 {
		t.Fatalf("%d grids resident after Purge", n)
	}
	if _, err := s.Get("q0"); err != nil {
		t.Fatalf("Get after Purge: %v", err)
	}
	if n := loads.Load(); n != 2 {
		t.Errorf("loads = %d, want 2 (initial + post-purge reload)", n)
	}
}
