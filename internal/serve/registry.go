// Package serve is the HTTP evaluation service over compressed sparse
// grids: an LRU-bounded registry of .sg/.sgs files, a micro-batch
// coalescer that turns concurrent single-point requests into
// Grid.EvaluateBatch calls (the paper's batched decompression, Alg. 7 +
// Sec. 4.3 blocking), and JSON handlers with Prometheus-style metrics.
// cmd/sgserve is the thin binary around it; cmd/sgload measures it and
// cmd/sgstress hunts races in it.
package serve

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"compactsg"
	"compactsg/internal/core"
	"compactsg/internal/obs"
	"compactsg/internal/store"
)

// ErrUnknownGrid is returned for names never registered with Add.
var ErrUnknownGrid = fmt.Errorf("serve: unknown grid")

// ErrStaleSwap is returned by Swap when the explicit version is not
// strictly newer than the installed one — the same ordering rule the
// sharding proxy applies to topology epochs.
var ErrStaleSwap = errors.New("serve: stale swap: version not newer than installed")

// errStaleLoad marks a singleflight load whose source was swapped while
// the file read was in flight; the result is discarded and Acquire
// retries against the freshly installed version. Never escapes the
// registry.
var errStaleLoad = errors.New("serve: load superseded by swap")

// GridSet is a name → compressed-grid registry. Grids are loaded
// lazily from their files on first use and at most MaxResident stay in
// memory; least-recently-used grids are evicted when the bound is hit
// (their files remain registered, so a later request reloads them).
//
// Concurrency contract (the serving hot path depends on it):
//
//   - Lookups of resident grids take only a read lock plus a brief
//     LRU-list mutex; they never wait on disk.
//   - A cold load runs with NO registry lock held, deduplicated per
//     name by a singleflight: concurrent requests for the same cold
//     grid share one file read, and requests for other grids (resident
//     or cold) proceed independently. The resident bound applies to the
//     installed set; k concurrent cold loads transiently hold up to k
//     extra grids while in flight.
//   - Acquire hands out refcounted leases. An evicted grid stays fully
//     usable for existing lease holders; OnRetire fires once the last
//     lease of an evicted grid is released, which is the hook the
//     server uses to drain and close the grid's batcher without leaks.
type GridSet struct {
	maxResident int
	opts        []compactsg.Option

	mu       sync.RWMutex // guards sources, resident, loading
	sources  map[string]*source
	resident map[string]*entry
	loading  map[string]*loadCall

	lruMu sync.Mutex
	lru   *list.List // front = most recently used; values are *entry

	// Lifecycle hooks. All of them are called with NO registry lock
	// held, so they may call back into the GridSet freely. They must be
	// set before the registry sees traffic and not changed afterwards.
	//
	// OnLoad fires after a grid file was read and installed (took is
	// the wall time of the cold load; mode says whether the payload was
	// memory-mapped or copied). OnLoadFail fires for each load attempt
	// that ended in an error. OnLoadWait fires for each caller that
	// piggybacked on another goroutine's in-flight load of the same
	// grid. OnEvict fires right after a grid leaves the resident set.
	// OnRetire fires when the last lease of an evicted grid is released
	// (never for resident grids, which always hold the registry's own
	// reference); the grid's file mapping, if any, is unmapped right
	// after OnRetire returns.
	// OnSwap fires after Swap installed a new version under a name, with
	// no lock held and before the displaced entry's eviction hooks run.
	OnLoad     func(name string, mode compactsg.LoadMode, took time.Duration)
	OnLoadFail func(name string, err error)
	OnLoadWait func(name string)
	OnEvict    func(name string, g *compactsg.Grid)
	OnRetire   func(name string, g *compactsg.Grid)
	OnSwap     func(name string, version uint64)

	// OnPublish fires after Swap tried to publish the new snapshot into
	// the tiered store (only when a store is configured), with the
	// content key on success or the publish error. Best-effort: a failed
	// publish never fails the swap.
	OnPublish func(name, key string, err error)

	// LoadHook, if set, runs inside every file load (no locks held),
	// before the file is opened. It exists for tests and the sgstress
	// chaos harness to inflate or fail loads deterministically.
	LoadHook func(name string) error

	// store, when set, backs the cold-load path of key-registered
	// sources: cache hit → mmap, miss → fetch → verify → cache → mmap.
	// Set once via SetStore before the registry sees traffic.
	store *store.Store
}

type source struct {
	name string // the registry's own copy of the key (see CanonicalName)
	path string
	// key, when non-empty, is the SGC2 content address the grid loads
	// from through the tiered store (it wins over path). Guarded by
	// GridSet.mu.
	key string
	// Metadata cached from the first successful load so /v1/grids can
	// describe evicted grids without touching the file again. Guarded
	// by GridSet.mu.
	known  bool
	dim    int
	level  int
	points int64
	bytes  int64
	// version is the per-name monotonic swap counter: 0 for a static
	// registration, bumped by every successful Swap. Guarded by
	// GridSet.mu.
	version uint64
}

// entry is one resident (or recently evicted but still leased) grid.
type entry struct {
	name string
	grid *compactsg.Grid
	// open owns the grid's backing storage: for mmap loads closing it
	// unmaps the file, so it must happen only after the last lease is
	// gone. Closed by whoever drops refs to zero, after OnRetire.
	open *compactsg.OpenGrid
	el   *list.Element
	// refs counts outstanding leases plus one reference owned by the
	// registry while the entry is resident. Eviction drops the registry
	// reference; whoever drops refs to zero runs the retire hook.
	refs atomic.Int64
}

// loadCall is the singleflight slot for one in-flight file load.
type loadCall struct {
	done chan struct{} // closed when g/err are final
	g    *compactsg.Grid
	err  error
}

// A Lease pins one loaded grid instance. Release must be called exactly
// once when the holder is done; it is safe (and a no-op) to call again.
type Lease struct {
	s        *GridSet
	e        *entry
	released atomic.Bool
}

// Grid returns the pinned grid instance.
func (l *Lease) Grid() *compactsg.Grid { return l.e.grid }

// Name returns the registry name the lease was acquired under.
func (l *Lease) Name() string { return l.e.name }

// Release drops the lease. After the grid has been evicted, the last
// Release triggers the registry's OnRetire hook.
func (l *Lease) Release() {
	if l.released.CompareAndSwap(false, true) {
		l.s.releaseEntry(l.e)
	}
}

// NewGridSet creates a registry bounded to maxResident in-memory grids
// (minimum 1). opts are applied to every loaded grid — pass
// compactsg.WithWorkers / WithBlockSize here so batch dispatch uses
// the server's worker pool.
func NewGridSet(maxResident int, opts ...compactsg.Option) *GridSet {
	if maxResident < 1 {
		maxResident = 1
	}
	return &GridSet{
		maxResident: maxResident,
		opts:        opts,
		sources:     make(map[string]*source),
		resident:    make(map[string]*entry),
		loading:     make(map[string]*loadCall),
		lru:         list.New(),
	}
}

// Add registers a grid file under name. The file is not opened until
// the first Get/Acquire (or Preload). Add is safe to call while the
// registry is serving traffic (mid-flight registration is exactly what
// cmd/sgstress exercises).
func (s *GridSet) Add(name, path string) error {
	if name == "" {
		return fmt.Errorf("serve: empty grid name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.sources[name]; dup {
		return fmt.Errorf("serve: grid %q registered twice", name)
	}
	s.sources[name] = &source{name: name, path: path}
	return nil
}

// SetStore wires a tiered snapshot store behind the cold-load path.
// Must be called before the registry sees traffic.
func (s *GridSet) SetStore(st *store.Store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.store = st
}

// Store returns the configured tiered store, or nil.
func (s *GridSet) Store() *store.Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.store
}

// AddStored registers a grid that loads from the tiered store by SGC2
// content address instead of a file path: a cache hit mmaps the cached
// object, a miss fetches it from the remote tier (verified end to end)
// first. Requires SetStore.
func (s *GridSet) AddStored(name, key string) error {
	if name == "" {
		return fmt.Errorf("serve: empty grid name")
	}
	if err := store.ValidateKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store == nil {
		return fmt.Errorf("serve: grid %q is store-backed but no store is configured", name)
	}
	if _, dup := s.sources[name]; dup {
		return fmt.Errorf("serve: grid %q registered twice", name)
	}
	s.sources[name] = &source{name: name, key: key}
	return nil
}

// Swap atomically installs path as a strictly newer version of name,
// registering the name first if it was unknown. version 0 means "next"
// (installed version + 1); an explicit version must be greater than the
// installed one or the swap is rejected with ErrStaleSwap — late
// retries of an old snapshot can never roll a grid back, mirroring the
// proxy's topology-epoch rule. The file is loaded and validated before
// the registry changes, so a bad snapshot leaves the old version
// serving.
//
// The displaced instance follows the normal eviction path: in-flight
// leases (and the batches riding them) finish on the old version, and
// its file mapping is unmapped only after the last lease releases.
// Returns the version now installed.
func (s *GridSet) Swap(name, path string, version uint64) (uint64, error) {
	if name == "" {
		return 0, fmt.Errorf("serve: empty grid name")
	}
	og, err := s.load(name, path, "")
	if err != nil {
		return 0, err
	}
	g := og.Grid

	var victims []*entry
	s.mu.Lock()
	src, ok := s.sources[name]
	if !ok {
		src = &source{name: name, path: path}
		s.sources[name] = src
	}
	if version == 0 {
		version = src.version + 1
	} else if version <= src.version {
		installed := src.version
		s.mu.Unlock()
		og.Close()
		return installed, fmt.Errorf("%w: version %d <= installed %d for %q", ErrStaleSwap, version, installed, name)
	}
	src.path = path
	src.key = "" // the fresh file is the truth until Publish re-keys it
	src.version = version
	src.known = true
	src.dim, src.level = g.Dim(), g.Level()
	src.points, src.bytes = g.Points(), g.MemoryBytes()
	e := &entry{name: src.name, grid: g, open: og}
	e.refs.Store(1) // the registry's reference; no lease handed out
	old := s.resident[name]
	s.resident[name] = e
	s.lruMu.Lock()
	if old != nil {
		s.lru.Remove(old.el)
	}
	e.el = s.lru.PushFront(e)
	for s.lru.Len() > s.maxResident {
		back := s.lru.Back()
		v := back.Value.(*entry)
		s.lru.Remove(back)
		delete(s.resident, v.name)
		victims = append(victims, v)
	}
	s.lruMu.Unlock()
	s.mu.Unlock()

	if s.OnSwap != nil {
		s.OnSwap(src.name, version)
	}
	if old != nil {
		s.finishEvict(old)
	}
	for _, v := range victims {
		s.finishEvict(v)
	}
	// Publish the installed snapshot into the tiered store so
	// post-eviction reloads hit the cache (and other nodes can fetch
	// it). Best-effort: the swap already succeeded.
	if st := s.Store(); st != nil {
		key, perr := st.Publish(context.Background(), path)
		if perr == nil {
			s.mu.Lock()
			if src, ok := s.sources[name]; ok && src.version == version {
				src.key = key
			}
			s.mu.Unlock()
		}
		if s.OnPublish != nil {
			s.OnPublish(name, key, perr)
		}
	}
	return version, nil
}

// Version returns the monotonic swap counter installed under name: 0
// for static registrations (and unknown names), ≥ 1 once Swap has run.
func (s *GridSet) Version(name string) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if src, ok := s.sources[name]; ok {
		return src.version
	}
	return 0
}

// Versions returns the swap counter of every grid that has one
// (version ≥ 1), name → version.
func (s *GridSet) Versions() map[string]uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]uint64)
	for name, src := range s.sources {
		if src.version > 0 {
			out[name] = src.version
		}
	}
	return out
}

// CanonicalName maps a grid name given as raw bytes (the binary wire
// protocol's name field) to the registry's own interned string for it.
// The map lookup with a string(b) key does not allocate, which keeps
// the binary decode path allocation-free for registered grids; unknown
// names report ok=false and the caller builds its error however it
// likes.
func (s *GridSet) CanonicalName(b []byte) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	src, ok := s.sources[string(b)]
	if !ok {
		return "", false
	}
	return src.name, true
}

// Names returns all registered grid names, sorted.
func (s *GridSet) Names() []string {
	s.mu.RLock()
	names := make([]string, 0, len(s.sources))
	for n := range s.sources {
		names = append(names, n)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Len returns the number of registered grids.
func (s *GridSet) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sources)
}

// ResidentCount returns how many grids are currently in memory.
func (s *GridSet) ResidentCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.resident)
}

// GridInfo describes one registered grid for /v1/grids.
type GridInfo struct {
	Name     string `json:"name"`
	Resident bool   `json:"resident"`
	// Shape fields are known once the grid has been loaded at least
	// once; Points == 0 means "never loaded yet".
	Dim         int   `json:"dim,omitempty"`
	Level       int   `json:"level,omitempty"`
	Points      int64 `json:"points,omitempty"`
	MemoryBytes int64 `json:"memoryBytes,omitempty"`
	// Version is the hot-swap counter; 0 means statically registered.
	Version uint64 `json:"version,omitempty"`
}

// Info lists every registered grid, sorted by name.
func (s *GridSet) Info() []GridInfo {
	s.mu.RLock()
	out := make([]GridInfo, 0, len(s.sources))
	for name, src := range s.sources {
		gi := GridInfo{Name: name}
		if _, ok := s.resident[name]; ok {
			gi.Resident = true
		}
		if src.known {
			gi.Dim, gi.Level, gi.Points, gi.MemoryBytes = src.dim, src.level, src.points, src.bytes
		}
		gi.Version = src.version
		out = append(out, gi)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Get returns the named grid, loading it (and evicting the
// least-recently-used resident grid if the bound is exceeded) as
// needed. Every Get marks the grid most-recently-used. Get does not
// pin the grid; callers that must keep using the instance across
// evictions (the batcher does) should use Acquire instead. This
// matters doubly for memory-mapped grids: once an evicted grid's last
// lease is released its mapping is unmapped, and an unpinned instance
// then faults on access.
func (s *GridSet) Get(name string) (*compactsg.Grid, error) {
	l, err := s.Acquire(context.Background(), name)
	if err != nil {
		return nil, err
	}
	g := l.Grid()
	l.Release()
	return g, nil
}

// Acquire returns a refcounted lease on the named grid, loading it
// first if it is cold. ctx bounds only the wait for an in-flight load
// by another goroutine; a load this caller leads always runs to
// completion so the result can be shared.
//
// When ctx carries an obs.Span, cold-path time is attributed on it: a
// load this caller led as StageLoad, waiting on someone else's
// in-flight load as StageLoadWait. The resident fast path records
// nothing.
func (s *GridSet) Acquire(ctx context.Context, name string) (*Lease, error) {
	sp := obs.FromContext(ctx)
	for {
		// Fast path: resident grid, read lock only. The refcount
		// increment is safe under the read lock because eviction (which
		// drops the registry's reference) requires the write lock.
		s.mu.RLock()
		if e, ok := s.resident[name]; ok {
			e.refs.Add(1)
			s.mu.RUnlock()
			s.touch(e)
			return &Lease{s: s, e: e}, nil
		}
		lc, inflight := s.loading[name]
		_, known := s.sources[name]
		s.mu.RUnlock()
		if !known {
			return nil, fmt.Errorf("%w %q", ErrUnknownGrid, name)
		}

		if !inflight {
			lease, joined, err := s.lead(sp, name)
			if errors.Is(err, errStaleLoad) {
				continue // a Swap won the race; pick up its entry
			}
			if err != nil {
				return nil, err
			}
			if lease != nil {
				return lease, nil
			}
			lc = joined
		} else if s.OnLoadWait != nil {
			s.OnLoadWait(name)
		}

		waitStart := time.Now()
		select {
		case <-lc.done:
			sp.Add(obs.StageLoadWait, time.Since(waitStart))
		case <-ctx.Done():
			sp.Add(obs.StageLoadWait, time.Since(waitStart))
			return nil, ctx.Err()
		}
		if lc.err != nil {
			if errors.Is(lc.err, errStaleLoad) {
				continue // a Swap won the race; pick up its entry
			}
			return nil, lc.err
		}
		// Loaded; loop to pick it up (or reload if it was already
		// evicted again by other traffic).
	}
}

// lead tries to become the loading leader for name. It returns exactly
// one of: a lease (grid was or became resident), a loadCall to wait on
// (someone else is loading), or an error. sp is the leading request's
// span (nil when untraced); the file read + decode is charged to it as
// StageLoad.
func (s *GridSet) lead(sp *obs.Span, name string) (*Lease, *loadCall, error) {
	s.mu.Lock()
	if e, ok := s.resident[name]; ok {
		e.refs.Add(1)
		s.mu.Unlock()
		s.touch(e)
		return &Lease{s: s, e: e}, nil, nil
	}
	if lc, ok := s.loading[name]; ok {
		s.mu.Unlock()
		if s.OnLoadWait != nil {
			s.OnLoadWait(name)
		}
		return nil, lc, nil
	}
	src, ok := s.sources[name]
	if !ok {
		s.mu.Unlock()
		return nil, nil, fmt.Errorf("%w %q", ErrUnknownGrid, name)
	}
	lc := &loadCall{done: make(chan struct{})}
	s.loading[name] = lc
	path := src.path
	key := src.key
	version := src.version
	s.mu.Unlock()

	// The file read happens here, with no registry lock held: a cold
	// load of one grid never blocks Acquire/Get on any other.
	start := time.Now()
	og, err := s.load(name, path, key)
	took := time.Since(start)
	sp.Add(obs.StageLoad, took)

	var g *compactsg.Grid
	var victims []*entry
	var lease *Lease
	var stale *compactsg.OpenGrid
	s.mu.Lock()
	delete(s.loading, name)
	if err == nil && src.version != version {
		// The source was swapped while this load was reading the old
		// file: installing it would roll the name back. Discard and let
		// every waiter retry against the swapped-in entry.
		stale, og = og, nil
		err = errStaleLoad
	}
	if err == nil {
		g = og.Grid
		src.known = true
		src.dim, src.level = g.Dim(), g.Level()
		src.points, src.bytes = g.Points(), g.MemoryBytes()
		e := &entry{name: name, grid: g, open: og}
		e.refs.Store(2) // the registry's reference + this caller's lease
		s.resident[name] = e
		s.lruMu.Lock()
		e.el = s.lru.PushFront(e)
		for s.lru.Len() > s.maxResident {
			back := s.lru.Back()
			v := back.Value.(*entry)
			s.lru.Remove(back)
			delete(s.resident, v.name)
			victims = append(victims, v)
		}
		s.lruMu.Unlock()
		lease = &Lease{s: s, e: e}
	}
	lc.g, lc.err = g, err
	s.mu.Unlock()
	close(lc.done)

	if stale != nil {
		stale.Close()
	}
	if err != nil {
		if errors.Is(err, errStaleLoad) {
			return nil, nil, err // not a failure: the swap's entry serves
		}
		if s.OnLoadFail != nil {
			s.OnLoadFail(name, err)
		}
		return nil, nil, err
	}
	if s.OnLoad != nil {
		s.OnLoad(name, og.Mode, took)
	}
	for _, v := range victims {
		s.finishEvict(v)
	}
	return lease, nil, nil
}

// touch marks an entry most-recently-used. Harmlessly a no-op if the
// entry was concurrently evicted (its element is detached).
func (s *GridSet) touch(e *entry) {
	s.lruMu.Lock()
	s.lru.MoveToFront(e.el)
	s.lruMu.Unlock()
}

// finishEvict runs the eviction hooks for an entry already removed from
// the resident map, then drops the registry's reference. Called with no
// locks held.
func (s *GridSet) finishEvict(v *entry) {
	if s.OnEvict != nil {
		s.OnEvict(v.name, v.grid)
	}
	s.releaseEntry(v)
}

// releaseEntry drops one reference; the goroutine that drops the last
// reference of an evicted entry fires OnRetire and then releases the
// grid's backing storage (for mmap loads, the munmap — deferred to this
// point precisely so leased-out evicted grids stay readable).
func (s *GridSet) releaseEntry(e *entry) {
	if e.refs.Add(-1) == 0 {
		if s.OnRetire != nil {
			s.OnRetire(e.name, e.grid)
		}
		e.open.Close()
	}
}

// Purge evicts every resident grid. Grids with outstanding leases stay
// usable until those are released; everything else is retired (and
// unmapped) before Purge returns. The server calls it on Close so a
// shut-down server holds no file mappings.
func (s *GridSet) Purge() {
	var victims []*entry
	s.mu.Lock()
	s.lruMu.Lock()
	for name, e := range s.resident {
		delete(s.resident, name)
		s.lru.Remove(e.el)
		victims = append(victims, e)
	}
	s.lruMu.Unlock()
	s.mu.Unlock()
	for _, v := range victims {
		s.finishEvict(v)
	}
}

// DropPages sheds the resident pages of name's mapped payload
// (MADV_DONTNEED): the grid stays registered, resident and serving —
// its pages refault from the snapshot file on next touch. This is the
// page-granular eviction knob for memory pressure, as opposed to the
// whole-grid LRU eviction of the resident bound.
func (s *GridSet) DropPages(name string) error {
	s.mu.RLock()
	e, ok := s.resident[name]
	if ok {
		e.refs.Add(1)
	}
	s.mu.RUnlock()
	if !ok {
		return nil // cold grids hold no pages
	}
	err := e.open.DropPages()
	s.releaseEntry(e)
	return err
}

// ResidentPayloadBytes estimates the physical memory currently held by
// resident grid payloads (mincore over each mapping; full payload size
// for copy loads). It is the gauge behind sgserve_mapped_resident_bytes.
func (s *GridSet) ResidentPayloadBytes() int64 {
	s.mu.RLock()
	es := make([]*entry, 0, len(s.resident))
	for _, e := range s.resident {
		e.refs.Add(1)
		es = append(es, e)
	}
	s.mu.RUnlock()
	var sum int64
	for _, e := range es {
		if n, err := e.open.ResidentBytes(); err == nil {
			sum += n
		}
		s.releaseEntry(e)
	}
	return sum
}

// IsCurrent reports whether g is the instance currently resident under
// name. The server uses it to close the create-after-evict race when
// wiring batchers to freshly acquired leases.
func (s *GridSet) IsCurrent(name string, g *compactsg.Grid) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.resident[name]
	return ok && e.grid == g
}

// Preload loads up to maxResident registered grids eagerly (sorted
// name order) so the first requests do not pay the load. Broken grid
// files do not abort the pass: every healthy grid within the resident
// budget is still loaded and the per-grid errors come back aggregated
// via errors.Join (nil when everything loaded).
func (s *GridSet) Preload() error {
	var errs []error
	loaded := 0
	for _, name := range s.Names() {
		if loaded >= s.maxResident {
			break
		}
		if _, err := s.Get(name); err != nil {
			errs = append(errs, err)
			continue
		}
		loaded++
	}
	return errors.Join(errs...)
}

// load reads and validates one grid through compactsg.Open, so SGC2
// snapshots arrive zero-copy (memory-mapped) where the platform allows
// and everything else goes through the copying decoders. When key is
// set the file comes out of the tiered store instead of a fixed path:
// cache hit → mmap, miss → remote fetch → verify → cache → mmap. No
// registry lock is held.
func (s *GridSet) load(name, path, key string) (*compactsg.OpenGrid, error) {
	if s.LoadHook != nil {
		if err := s.LoadHook(name); err != nil {
			return nil, fmt.Errorf("serve: loading %s: %w", sourceDesc(path, key), err)
		}
	}
	desc := sourceDesc(path, key)
	var og *compactsg.OpenGrid
	var err error
	if key != "" {
		st := s.Store()
		if st == nil {
			return nil, fmt.Errorf("serve: loading %s: no store configured", desc)
		}
		var obj *store.Object
		obj, err = st.Get(context.Background(), key)
		if err != nil {
			return nil, fmt.Errorf("serve: loading %s: %w", desc, err)
		}
		// The pin covers exactly the Open window; once mmap'd, the
		// payload survives the cache evicting (unlinking) the file.
		og, err = compactsg.Open(obj.Path(), s.opts...)
		obj.Release()
		if err != nil {
			// A cached object corrupt at open time (disk rot after
			// admission) is dropped so the next load refetches it.
			var ce *core.CorruptError
			if errors.As(err, &ce) {
				st.Drop(key)
			}
		}
	} else {
		og, err = compactsg.Open(path, s.opts...)
	}
	if err != nil {
		return nil, fmt.Errorf("serve: loading %s: %w", desc, err)
	}
	if !og.Compressed() {
		og.Close()
		return nil, fmt.Errorf("serve: %s holds nodal values, not hierarchical coefficients; compress it first", desc)
	}
	if og.Mode == compactsg.LoadMmap {
		// Start faulting the payload in now: a cold-loaded grid is about
		// to be evaluated, and for store-backed grids the pages were just
		// written, so they are still dirty in the page cache anyway.
		og.Advise(compactsg.AdviseWillNeed)
	}
	return og, nil
}

// sourceDesc names a load source for error messages.
func sourceDesc(path, key string) string {
	if key != "" {
		return "store:" + key
	}
	return path
}
