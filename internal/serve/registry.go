// Package serve is the HTTP evaluation service over compressed sparse
// grids: an LRU-bounded registry of .sg/.sgs files, a micro-batch
// coalescer that turns concurrent single-point requests into
// Grid.EvaluateBatch calls (the paper's batched decompression, Alg. 7 +
// Sec. 4.3 blocking), and JSON handlers with Prometheus-style metrics.
// cmd/sgserve is the thin binary around it; cmd/sgload measures it.
package serve

import (
	"container/list"
	"fmt"
	"os"
	"sort"
	"sync"

	"compactsg"
)

// ErrUnknownGrid is returned for names never registered with Add.
var ErrUnknownGrid = fmt.Errorf("serve: unknown grid")

// GridSet is a name → compressed-grid registry. Grids are loaded
// lazily from their files on first use and at most MaxResident stay in
// memory; least-recently-used grids are evicted when the bound is hit
// (their files remain registered, so a later request reloads them).
type GridSet struct {
	maxResident int
	opts        []compactsg.Option

	mu       sync.Mutex
	sources  map[string]*source
	resident map[string]*list.Element // name → element in lru
	lru      *list.List               // front = most recently used; values are *resident

	// OnEvict, if set, is called (with the set's lock held) right
	// after a grid leaves the resident set. OnLoad likewise after a
	// load. Used by Server for batcher lifecycle and metrics.
	OnEvict func(name string, g *compactsg.Grid)
	OnLoad  func(name string)
}

type source struct {
	path string
	// Metadata cached from the first successful load so /v1/grids can
	// describe evicted grids without touching the file again.
	known  bool
	dim    int
	level  int
	points int64
	bytes  int64
}

type resident struct {
	name string
	grid *compactsg.Grid
}

// NewGridSet creates a registry bounded to maxResident in-memory grids
// (minimum 1). opts are applied to every loaded grid — pass
// compactsg.WithWorkers / WithBlockSize here so batch dispatch uses
// the server's worker pool.
func NewGridSet(maxResident int, opts ...compactsg.Option) *GridSet {
	if maxResident < 1 {
		maxResident = 1
	}
	return &GridSet{
		maxResident: maxResident,
		opts:        opts,
		sources:     make(map[string]*source),
		resident:    make(map[string]*list.Element),
		lru:         list.New(),
	}
}

// Add registers a grid file under name. The file is not opened until
// the first Get (or Preload).
func (s *GridSet) Add(name, path string) error {
	if name == "" {
		return fmt.Errorf("serve: empty grid name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.sources[name]; dup {
		return fmt.Errorf("serve: grid %q registered twice", name)
	}
	s.sources[name] = &source{path: path}
	return nil
}

// Names returns all registered grid names, sorted.
func (s *GridSet) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.sources))
	for n := range s.sources {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered grids.
func (s *GridSet) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sources)
}

// ResidentCount returns how many grids are currently in memory.
func (s *GridSet) ResidentCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// GridInfo describes one registered grid for /v1/grids.
type GridInfo struct {
	Name     string `json:"name"`
	Resident bool   `json:"resident"`
	// Shape fields are known once the grid has been loaded at least
	// once; Points == 0 means "never loaded yet".
	Dim         int   `json:"dim,omitempty"`
	Level       int   `json:"level,omitempty"`
	Points      int64 `json:"points,omitempty"`
	MemoryBytes int64 `json:"memoryBytes,omitempty"`
}

// Info lists every registered grid, sorted by name.
func (s *GridSet) Info() []GridInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]GridInfo, 0, len(s.sources))
	for name, src := range s.sources {
		gi := GridInfo{Name: name}
		if _, ok := s.resident[name]; ok {
			gi.Resident = true
		}
		if src.known {
			gi.Dim, gi.Level, gi.Points, gi.MemoryBytes = src.dim, src.level, src.points, src.bytes
		}
		out = append(out, gi)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Get returns the named grid, loading it (and evicting the
// least-recently-used resident grid if the bound is exceeded) as
// needed. Every Get marks the grid most-recently-used.
func (s *GridSet) Get(name string) (*compactsg.Grid, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.resident[name]; ok {
		s.lru.MoveToFront(el)
		return el.Value.(*resident).grid, nil
	}
	src, ok := s.sources[name]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownGrid, name)
	}
	g, err := s.load(src)
	if err != nil {
		return nil, err
	}
	s.resident[name] = s.lru.PushFront(&resident{name: name, grid: g})
	if s.OnLoad != nil {
		s.OnLoad(name)
	}
	for s.lru.Len() > s.maxResident {
		s.evictOldest()
	}
	return g, nil
}

// Preload loads up to maxResident registered grids eagerly (sorted
// name order) so the first requests do not pay the load. It stops at
// the first error.
func (s *GridSet) Preload() error {
	for i, name := range s.Names() {
		if i >= s.maxResident {
			break
		}
		if _, err := s.Get(name); err != nil {
			return err
		}
	}
	return nil
}

// load reads and validates one grid file. Caller holds s.mu; the
// file read is accepted under the lock because loads are rare (cold
// start or post-eviction) and correctness is simpler than a per-source
// singleflight.
func (s *GridSet) load(src *source) (*compactsg.Grid, error) {
	f, err := os.Open(src.path)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	defer f.Close()
	g, err := compactsg.LoadAny(f, s.opts...)
	if err != nil {
		return nil, fmt.Errorf("serve: loading %s: %w", src.path, err)
	}
	if !g.Compressed() {
		return nil, fmt.Errorf("serve: %s holds nodal values, not hierarchical coefficients; compress it first", src.path)
	}
	src.known = true
	src.dim, src.level = g.Dim(), g.Level()
	src.points, src.bytes = g.Points(), g.MemoryBytes()
	return g, nil
}

func (s *GridSet) evictOldest() {
	el := s.lru.Back()
	if el == nil {
		return
	}
	r := el.Value.(*resident)
	s.lru.Remove(el)
	delete(s.resident, r.name)
	if s.OnEvict != nil {
		s.OnEvict(r.name, r.grid)
	}
}
