package serve

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
)

// specialValues seeds the coordinate generator with the encodings that
// break naive float64 codecs: signed zero, subnormals, infinities and
// NaN payloads must all survive the wire bit-for-bit.
var specialValues = []float64{
	0, math.Copysign(0, -1), 1, -1,
	math.MaxFloat64, math.SmallestNonzeroFloat64,
	math.Inf(1), math.Inf(-1), math.NaN(),
}

func randFloat(rng *rand.Rand) float64 {
	if rng.Intn(4) == 0 {
		return specialValues[rng.Intn(len(specialValues))]
	}
	return rng.NormFloat64()
}

// TestFrameRoundTripProperty drives randomized frames through the full
// codec: AppendEvalFrame → decodeBinFrame must reproduce the name and
// every coordinate bit-for-bit, re-encoding the decoded request must
// reproduce the original bytes (the encoding is canonical — one frame
// per request), and the response half (prepareBinResponse →
// finishBinResponse → ParseValuesFrame) must round-trip the values the
// same way. FrameGridName, the proxy's routing peek, must agree with
// the full decode on every frame.
func TestFrameRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 500; iter++ {
		nameLen := rng.Intn(binMaxName + 1)
		nameBytes := make([]byte, nameLen)
		rng.Read(nameBytes)
		name := string(nameBytes)

		n := rng.Intn(33)
		d := 0
		if n > 0 {
			d = 1 + rng.Intn(16)
		}
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = make([]float64, d)
			for j := range pts[i] {
				pts[i][j] = randFloat(rng)
			}
		}

		frame := AppendEvalFrame(nil, name, pts)

		peek, err := FrameGridName(frame)
		if err != nil {
			t.Fatalf("iter %d: FrameGridName: %v", iter, err)
		}
		if string(peek) != name {
			t.Fatalf("iter %d: FrameGridName = %q, want %q", iter, peek, name)
		}

		fr := new(binFrame)
		req, err := decodeBinFrame(fr, frame)
		if err != nil {
			t.Fatalf("iter %d: decode (name %d bytes, n=%d d=%d): %v", iter, nameLen, n, d, err)
		}
		if string(req.name) != name || req.n != n || req.d != d {
			t.Fatalf("iter %d: decoded (name %q, n=%d, d=%d), want (%q, %d, %d)",
				iter, req.name, req.n, req.d, name, n, d)
		}
		for i := range pts {
			for j := range pts[i] {
				if math.Float64bits(req.pts[i][j]) != math.Float64bits(pts[i][j]) {
					t.Fatalf("iter %d: point %d coord %d: 0x%x, want 0x%x",
						iter, i, j, math.Float64bits(req.pts[i][j]), math.Float64bits(pts[i][j]))
				}
			}
		}
		if re := AppendEvalFrame(nil, string(req.name), req.pts); !bytes.Equal(re, frame) {
			t.Fatalf("iter %d: re-encoding the decoded request changed the bytes (%d vs %d)", iter, len(re), len(frame))
		}

		// Response half with the same value set.
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = randFloat(rng)
		}
		rfr := new(binFrame)
		out := prepareBinResponse(rfr, n)
		copy(out, vals)
		resp := finishBinResponse(rfr)
		back, err := ParseValuesFrame(resp)
		if err != nil {
			t.Fatalf("iter %d: ParseValuesFrame: %v", iter, err)
		}
		if len(back) != n {
			t.Fatalf("iter %d: %d values back, want %d", iter, len(back), n)
		}
		for i := range vals {
			if math.Float64bits(back[i]) != math.Float64bits(vals[i]) {
				t.Fatalf("iter %d: value %d: 0x%x, want 0x%x",
					iter, i, math.Float64bits(back[i]), math.Float64bits(vals[i]))
			}
		}
	}
}

// TestFrameEmptyBatchCanonical pins the n=0 frame: exactly 16 bytes
// (length prefix, six zero pad bytes, n=0, d=0), accepted by the
// decoder, answered by an 8-byte empty values frame.
func TestFrameEmptyBatchCanonical(t *testing.T) {
	frame := AppendEvalFrame(nil, "", nil)
	want := make([]byte, 16)
	if !bytes.Equal(frame, want) {
		t.Fatalf("empty frame = % x, want 16 zero bytes", frame)
	}
	fr := new(binFrame)
	req, err := decodeBinFrame(fr, frame)
	if err != nil || req.n != 0 || req.d != 0 {
		t.Fatalf("decode empty frame: req=%+v err=%v", req, err)
	}

	rfr := new(binFrame)
	prepareBinResponse(rfr, 0)
	resp := finishBinResponse(rfr)
	if len(resp) != 8 {
		t.Fatalf("empty response frame is %d bytes, want 8", len(resp))
	}
	if vals, err := ParseValuesFrame(resp); err != nil || len(vals) != 0 {
		t.Fatalf("empty response: vals=%v err=%v", vals, err)
	}
}

// TestBinaryLargeBatchOverHTTP sends a >64 KiB frame through a real
// HTTP server (not httptest recorders), so the server-side body read
// crosses multiple TCP segments and the pooled readBody growth path is
// exercised, and verifies every value against the reference grid.
func TestBinaryLargeBatchOverHTTP(t *testing.T) {
	s, refs := newTestServer(t, Config{}, 4)
	ref := refs["g4"]
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewSource(11))
	const n = 2100 // 2 + pad + 8 + 2100·4·8 = 67 KiB of frame
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = make([]float64, 4)
		for j := range pts[i] {
			pts[i][j] = rng.Float64()
		}
	}
	frame := AppendEvalFrame(nil, "g4", pts)
	if len(frame) <= 64<<10 {
		t.Fatalf("frame is %d bytes; the test wants > 64 KiB", len(frame))
	}

	resp, err := http.Post(ts.URL+"/v1/eval/bin", BinContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %s", resp.StatusCode, body)
	}
	vals, err := ParseValuesFrame(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != n {
		t.Fatalf("%d values for %d points", len(vals), n)
	}
	for i, x := range pts {
		want, err := ref.Evaluate(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(vals[i]-want) > 1e-12 {
			t.Fatalf("point %d: got %g want %g", i, vals[i], want)
		}
	}
}
