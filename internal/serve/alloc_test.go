package serve

import (
	"context"
	"testing"
	"time"

	"compactsg"
	"compactsg/internal/obs"
)

func compressedGrid(t *testing.T, dim, level int) *compactsg.Grid {
	t.Helper()
	g, err := compactsg.New(dim, level)
	if err != nil {
		t.Fatal(err)
	}
	g.Compress(func(x []float64) float64 {
		p := 1.0
		for _, v := range x {
			p *= 4 * v * (1 - v)
		}
		return p
	})
	return g
}

// TestEvaluateBatchSteadyStateZeroAlloc: with a caller-provided output
// slice, batch evaluation must not allocate at steady state — the level
// vector and the per-query 1d basis tables come from the package pools.
// This is the invariant that keeps the serve flush loop allocation-free.
func TestEvaluateBatchSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates and defeats sync.Pool reuse")
	}
	g := compressedGrid(t, 4, 6)
	xs := [][]float64{
		{0.1, 0.2, 0.3, 0.4},
		{0.5, 0.5, 0.5, 0.5},
		{0.9, 0.1, 0.8, 0.2},
	}
	out := make([]float64, len(xs))
	// Warm the pools.
	if _, err := g.EvaluateBatch(xs, out); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := g.EvaluateBatch(xs, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("EvaluateBatch allocates %v objects per call at steady state, want 0", allocs)
	}
}

// TestBatcherSteadyStateZeroAlloc: a full coalesced round trip —
// submit, flush, deliver — must not allocate at steady state. The
// result channel is pooled, the flush timer is reused, and the batch
// buffers (calls, live, xs, out) are retained across flushes.
func TestBatcherSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates and defeats sync.Pool reuse")
	}
	g := compressedGrid(t, 3, 5)
	b := newBatcher(g, 1, time.Millisecond, nil)
	defer b.close()
	ctx := context.Background()
	x := []float64{0.25, 0.5, 0.75}
	// Warm the pools and the batcher's retained buffers.
	for k := 0; k < 8; k++ {
		if _, err := b.submit(ctx, x); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := b.submit(ctx, x); err != nil {
			t.Fatal(err)
		}
	})
	// submit itself must be allocation-free; the flush loop runs on
	// another goroutine, so its (also pooled) work only shows up here
	// via timing jitter — allow a fraction below one object per call.
	if allocs > 0.5 {
		t.Fatalf("coalesced submit allocates %v objects per call at steady state, want 0", allocs)
	}
}

// TestBatcherTracedSubmitZeroAlloc: attaching an obs.Span must not add
// steady-state allocations to the coalesced path — the flush loop's
// timings travel by value in the pooled result channel and land in the
// span via plain field writes. This is the "tracing is free on the hot
// path" guarantee the observability layer is built on.
func TestBatcherTracedSubmitZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates and defeats sync.Pool reuse")
	}
	g := compressedGrid(t, 3, 5)
	b := newBatcher(g, 1, time.Millisecond, nil)
	defer b.close()
	tracer := obs.New(64)
	sp := tracer.Start("eval")
	defer sp.Finish()
	// The context is built once per request by instrument; only the
	// per-submit work below must stay allocation-free.
	ctx := obs.NewContext(context.Background(), sp)
	x := []float64{0.25, 0.5, 0.75}
	for k := 0; k < 8; k++ {
		if _, err := b.submit(ctx, x); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := b.submit(ctx, x); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0.5 {
		t.Fatalf("traced coalesced submit allocates %v objects per call at steady state, want 0", allocs)
	}
	if !sp.Touched(obs.StageQueueWait) || !sp.Touched(obs.StageEval) || sp.BatchSize() < 1 {
		t.Fatal("span did not receive the flush loop's timings")
	}
}
