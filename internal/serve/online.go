package serve

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"compactsg/internal/adaptive"
	"compactsg/internal/core"
	"compactsg/internal/obs"
)

// OnlineConfig enables the write path: per-name observation-fed
// adaptive models (internal/adaptive) that are periodically refined,
// exported as SGC2 snapshots and hot-swapped into the read path via
// GridSet.Swap. The zero value (Enabled false) keeps the server a
// static snapshot store.
type OnlineConfig struct {
	// Enabled turns on POST /v1/grids/{name}/observe and
	// POST /v1/grids/{name}/refine.
	Enabled bool
	// InitLevel is the regular level new models seed with. Default 2.
	InitLevel int
	// MaxLevel bounds refinement depth (the model's key space).
	// Default 8.
	MaxLevel int
	// RefineEps is the surplus threshold of a refinement round.
	// Default 1e-3.
	RefineEps float64
	// RefineMax caps points added per refinement round. Default 1024.
	RefineMax int
	// MaxPoints caps each model's total point count; observations that
	// would grow a model past it are rejected with 507. Default 1<<20.
	MaxPoints int
	// SnapshotDir is where refined snapshots are written
	// (<name>.v<version>.sg). Default: a per-process directory under
	// the system temp dir. The displaced version's file is deleted
	// after each swap (its mapping survives the unlink).
	SnapshotDir string
	// Interval, when positive, runs a background loop that refines and
	// swaps every model with unflushed observations each tick. Zero
	// means refinement happens only via the endpoint / RefineOnline.
	Interval time.Duration
}

func (c *OnlineConfig) fill() {
	if c.InitLevel < 1 {
		c.InitLevel = 2
	}
	if c.MaxLevel < c.InitLevel {
		c.MaxLevel = c.InitLevel
		if c.MaxLevel < 8 {
			c.MaxLevel = 8
		}
	}
	if c.RefineEps <= 0 {
		c.RefineEps = 1e-3
	}
	if c.RefineMax < 1 {
		c.RefineMax = 1024
	}
	if c.MaxPoints < 1 {
		c.MaxPoints = 1 << 20
	}
	if c.SnapshotDir == "" {
		c.SnapshotDir = filepath.Join(os.TempDir(), fmt.Sprintf("sgserve-online-%d", os.Getpid()))
	}
}

// onlineSet owns every observation-fed model of the server.
type onlineSet struct {
	s   *Server
	cfg OnlineConfig

	mu     sync.Mutex
	models map[string]*onlineModel

	stop chan struct{}
	wg   sync.WaitGroup
}

// onlineModel is one name's adaptive model. The grid itself is
// internally synchronized (observations and reads interleave freely);
// mu serializes the refine → export → snapshot → swap pipeline so
// versions of one name are produced strictly in order.
type onlineModel struct {
	name string
	grid *adaptive.Grid

	mu sync.Mutex
	// dirty counts observations applied since the last installed
	// snapshot; a refine round with dirty == 0 and nothing newly
	// committed skips the swap.
	dirty atomic.Int64
	// lastSnap is the installed snapshot's file path; the previous one
	// is unlinked after each successful swap. Guarded by mu.
	lastSnap string
}

func newOnlineSet(s *Server, cfg OnlineConfig) *onlineSet {
	o := &onlineSet{
		s:      s,
		cfg:    cfg,
		models: make(map[string]*onlineModel),
		stop:   make(chan struct{}),
	}
	if cfg.Interval > 0 {
		o.wg.Add(1)
		go o.refineLoop()
	}
	return o
}

// close stops the background refiner. Models are dropped with the set;
// their installed snapshots stay registered in the grid registry.
func (o *onlineSet) close() {
	close(o.stop)
	o.wg.Wait()
}

// refineLoop periodically refines and swaps every model that received
// observations since its last snapshot.
func (o *onlineSet) refineLoop() {
	defer o.wg.Done()
	t := time.NewTicker(o.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-o.stop:
			return
		case <-t.C:
		}
		o.mu.Lock()
		ms := make([]*onlineModel, 0, len(o.models))
		for _, m := range o.models {
			if m.dirty.Load() > 0 {
				ms = append(ms, m)
			}
		}
		o.mu.Unlock()
		sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
		for _, m := range ms {
			if _, err := o.refine(m); err != nil {
				o.s.cfg.ErrorLog.Error("background refine failed",
					"grid", m.name, "error", err.Error())
			}
		}
	}
}

// modelFor returns the model registered under name, creating it with
// the request's dimensionality on first observation.
func (o *onlineSet) modelFor(name string, dim int) (*onlineModel, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if m, ok := o.models[name]; ok {
		if m.grid.Dim() != dim {
			return nil, httpErrorf(http.StatusBadRequest,
				"grid %q is %d-dimensional, observation has %d coordinates", name, m.grid.Dim(), dim)
		}
		return m, nil
	}
	g, err := adaptive.NewObserved(dim, o.cfg.InitLevel, o.cfg.MaxLevel)
	if err != nil {
		return nil, httpErrorf(http.StatusBadRequest, "cannot create model %q: %v", name, err)
	}
	m := &onlineModel{name: name, grid: g}
	o.models[name] = m
	return m, nil
}

// get returns the model under name, or nil.
func (o *onlineSet) get(name string) *onlineModel {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.models[name]
}

// RefineResult is the outcome of one refine → snapshot → swap round,
// also the JSON body of POST /v1/grids/{name}/refine.
type RefineResult struct {
	Grid string `json:"grid"`
	// Version is the registry version now serving (unchanged when the
	// round had nothing to install).
	Version uint64 `json:"version"`
	// Swapped says whether this round installed a new snapshot.
	Swapped bool `json:"swapped"`
	// Refinement accounting (see adaptive.RefineStats).
	Committed  int `json:"committed"`
	Added      int `json:"added"`
	Capped     int `json:"capped"`
	Candidates int `json:"candidates"`
	// Model occupancy after the round.
	Points   int `json:"points"`
	Awaiting int `json:"awaiting"`
	// Need lists up to 32 points awaiting observed values — the
	// steering loop's next work list, coarsest first.
	Need [][]float64 `json:"need,omitempty"`
	// SnapshotPath is the installed snapshot's file (in-process use;
	// not serialized).
	SnapshotPath string `json:"-"`
}

// refine runs one commit → refine → export → snapshot → swap round for
// m. Rounds of one model are serialized by m.mu; the read path never
// blocks on them (the swap itself is the registry's brief write lock).
func (o *onlineSet) refine(m *onlineModel) (RefineResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	dirty := m.dirty.Swap(0)
	st := m.grid.RefineDetailed(o.cfg.RefineEps, o.cfg.RefineMax)
	res := RefineResult{
		Grid:       m.name,
		Committed:  st.Committed,
		Added:      st.Added,
		Capped:     st.Capped,
		Candidates: st.Candidates,
	}
	committed, _, awaiting := m.grid.Counts()
	res.Points = m.grid.Points()
	res.Awaiting = awaiting
	res.Need = m.grid.NeedValues(32)
	cur := o.s.grids.Version(m.name)
	res.Version = cur
	if committed == 0 || (dirty == 0 && st.Committed == 0 && cur > 0) {
		// Nothing serveable yet, or nothing changed since the installed
		// version: keep serving what's there. Re-arm the dirty counter
		// so pre-commit observations aren't lost to the skip.
		m.dirty.Add(dirty)
		o.s.met.refines.Inc()
		return res, nil
	}
	cg, err := m.grid.ExportCompact()
	if err != nil {
		m.dirty.Add(dirty)
		return res, fmt.Errorf("serve: exporting %q: %w", m.name, err)
	}
	path, err := o.writeSnapshot(m.name, cur+1, cg)
	if err != nil {
		m.dirty.Add(dirty)
		return res, err
	}
	ver, err := o.s.grids.Swap(m.name, path, cur+1)
	if err != nil {
		m.dirty.Add(dirty)
		os.Remove(path)
		return res, err
	}
	res.Version = ver
	res.Swapped = true
	o.s.met.refines.Inc()
	if m.lastSnap != "" && m.lastSnap != path {
		// The displaced version's mapping survives the unlink; a cold
		// reload only ever needs the current path.
		os.Remove(m.lastSnap)
	}
	m.lastSnap = path
	res.SnapshotPath = path
	return res, nil
}

// writeSnapshot materializes an exported grid as
// <dir>/<name>.v<version>.sg, written to a temp file and renamed so a
// concurrent load never sees a half-written snapshot.
func (o *onlineSet) writeSnapshot(name string, version uint64, cg *core.Grid) (string, error) {
	if err := os.MkdirAll(o.cfg.SnapshotDir, 0o755); err != nil {
		return "", fmt.Errorf("serve: snapshot dir: %w", err)
	}
	path := filepath.Join(o.cfg.SnapshotDir, fmt.Sprintf("%s.v%d.sg", name, version))
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return "", fmt.Errorf("serve: snapshot: %w", err)
	}
	if _, err := cg.WriteSnapshot(f, core.SnapCompressed); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", fmt.Errorf("serve: snapshot %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("serve: snapshot %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("serve: snapshot %s: %w", path, err)
	}
	return path, nil
}

// RefineOnline runs one refine → snapshot → swap round for the named
// online model (the in-process form of POST /v1/grids/{name}/refine).
func (s *Server) RefineOnline(name string) (RefineResult, error) {
	if s.online == nil {
		return RefineResult{}, httpErrorf(http.StatusNotFound, "online mode is disabled")
	}
	m := s.online.get(name)
	if m == nil {
		return RefineResult{}, httpErrorf(http.StatusNotFound, "no online model %q: observe it first", name)
	}
	return s.online.refine(m)
}

// validateGridName bounds names that become snapshot file names: short,
// path-safe, no hidden-file or dot-dot tricks.
func validateGridName(name string) error {
	if name == "" || len(name) > 128 {
		return httpErrorf(http.StatusBadRequest, "grid name must be 1..128 characters")
	}
	if name[0] == '.' {
		return httpErrorf(http.StatusBadRequest, "grid name cannot start with '.'")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return httpErrorf(http.StatusBadRequest, "grid name contains %q; allowed: letters, digits, '.', '_', '-'", r)
		}
	}
	return nil
}

type observeRequest struct {
	Points [][]float64 `json:"points"`
	Values []float64   `json:"values"`
}

type observeResponse struct {
	Grid     string `json:"grid"`
	Applied  int    `json:"applied"`
	Rejected int    `json:"rejected"`
	// Model occupancy after the batch.
	Points   int `json:"points"`
	Pending  int `json:"pending"`
	Awaiting int `json:"awaiting"`
}

func (s *Server) handleObserve(r *http.Request) (any, error) {
	sp := obs.FromContext(r.Context())
	name := r.PathValue("name")
	if err := validateGridName(name); err != nil {
		return nil, err
	}
	sp.SetGrid(name)
	var req observeRequest
	sp.Begin(obs.StageDecode)
	err := s.decodeJSON(r, &req)
	sp.End(obs.StageDecode)
	if err != nil {
		return nil, err
	}
	if len(req.Points) == 0 {
		return nil, httpErrorf(http.StatusBadRequest, "no points")
	}
	if len(req.Points) != len(req.Values) {
		return nil, httpErrorf(http.StatusBadRequest,
			"%d points with %d values", len(req.Points), len(req.Values))
	}
	if len(req.Points) > s.cfg.MaxBatchPoints {
		return nil, httpErrorf(http.StatusRequestEntityTooLarge,
			"batch of %d points exceeds the per-request cap of %d", len(req.Points), s.cfg.MaxBatchPoints)
	}
	sp.SetPoints(len(req.Points))
	dim := len(req.Points[0])
	if dim == 0 {
		return nil, httpErrorf(http.StatusBadRequest, "point 0 has no coordinates")
	}
	m, err := s.online.modelFor(name, dim)
	if err != nil {
		return nil, err
	}
	if m.grid.Points()+len(req.Points) > s.cfg.Online.MaxPoints {
		return nil, httpErrorf(http.StatusInsufficientStorage,
			"model %q at %d points; cap is %d", name, m.grid.Points(), s.cfg.Online.MaxPoints)
	}
	sp.Begin(obs.StageEval)
	applied, rejected, err := m.grid.ObserveBatch(req.Points, req.Values)
	sp.End(obs.StageEval)
	if err != nil {
		return nil, httpErrorf(http.StatusBadRequest, "%v", err)
	}
	if applied > 0 {
		m.dirty.Add(int64(applied))
		s.met.observations.Add(uint64(applied))
	}
	_, pending, awaiting := m.grid.Counts()
	return observeResponse{
		Grid:     name,
		Applied:  applied,
		Rejected: rejected,
		Points:   m.grid.Points(),
		Pending:  pending,
		Awaiting: awaiting,
	}, nil
}

func (s *Server) handleRefine(r *http.Request) (any, error) {
	sp := obs.FromContext(r.Context())
	name := r.PathValue("name")
	if err := validateGridName(name); err != nil {
		return nil, err
	}
	sp.SetGrid(name)
	sp.Begin(obs.StageEval)
	res, err := s.RefineOnline(name)
	sp.End(obs.StageEval)
	if err != nil {
		return nil, err
	}
	return res, nil
}
