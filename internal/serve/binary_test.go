package serve

import (
	"bytes"
	"encoding/binary"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"compactsg/internal/core"
)

// postBin drives one binary frame through the full handler stack.
func postBin(t *testing.T, h http.Handler, frame []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/eval/bin", bytes.NewReader(frame))
	req.Header.Set("Content-Type", BinContentType)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestBinaryEvalRoundTrip(t *testing.T) {
	s, refs := newTestServer(t, Config{}, 3)
	h := s.Handler()
	ref := refs["g3"]

	pts := [][]float64{
		{0.25, 0.5, 0.75},
		{0, 0, 0},
		{1, 1, 1},
		{0.1, 0.9, 0.3},
	}
	rec := postBin(t, h, AppendEvalFrame(nil, "g3", pts))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d body %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("Content-Type"); got != BinContentType {
		t.Errorf("Content-Type = %q, want %q", got, BinContentType)
	}
	vals, err := ParseValuesFrame(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("parsing response frame: %v", err)
	}
	if len(vals) != len(pts) {
		t.Fatalf("%d values for %d points", len(vals), len(pts))
	}
	for k, x := range pts {
		want, err := ref.Evaluate(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(vals[k]-want) > 1e-12 {
			t.Errorf("point %d: got %g want %g", k, vals[k], want)
		}
	}

	// Empty grid name resolves to the only registered grid.
	rec = postBin(t, h, AppendEvalFrame(nil, "", pts[:1]))
	if rec.Code != http.StatusOK {
		t.Fatalf("default-grid frame: status %d body %s", rec.Code, rec.Body)
	}

	// n = 0 answers an empty values frame.
	rec = postBin(t, h, AppendEvalFrame(nil, "g3", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("empty frame: status %d body %s", rec.Code, rec.Body)
	}
	if vals, err := ParseValuesFrame(rec.Body.Bytes()); err != nil || len(vals) != 0 {
		t.Fatalf("empty frame: vals=%v err=%v", vals, err)
	}
}

func TestBinaryEvalErrors(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxBatchPoints: 8, MaxBodyBytes: 1 << 16}, 3)
	h := s.Handler()
	good := AppendEvalFrame(nil, "g3", [][]float64{{0.5, 0.5, 0.5}})

	corrupt := func(mutate func([]byte) []byte) []byte {
		frame := append([]byte(nil), good...)
		return mutate(frame)
	}
	cases := []struct {
		name   string
		frame  []byte
		status int
		errSub string
	}{
		{"empty body", nil, http.StatusBadRequest, "truncated"},
		{"short header", []byte{1}, http.StatusBadRequest, "truncated"},
		{"truncated coords", good[:len(good)-8], http.StatusBadRequest, "truncated"},
		{"trailing bytes", append(append([]byte(nil), good...), 0), http.StatusBadRequest, "trailing"},
		{"nonzero padding", corrupt(func(f []byte) []byte { f[2+2] ^= 0xff; return f }), http.StatusBadRequest, "padding"},
		{"oversized name", func() []byte {
			var f []byte
			f = binary.LittleEndian.AppendUint16(f, 300)
			return append(f, make([]byte, 300)...)
		}(), http.StatusBadRequest, "name"},
		{"unknown grid", AppendEvalFrame(nil, "nope", [][]float64{{0.5, 0.5, 0.5}}), http.StatusNotFound, "unknown grid"},
		{"wrong dimension", AppendEvalFrame(nil, "g3", [][]float64{{0.5, 0.5}}), http.StatusBadRequest, "dimensions"},
		{"out of domain", AppendEvalFrame(nil, "g3", [][]float64{{0.5, 2.5, 0.5}}), http.StatusBadRequest, "domain"},
		{"NaN coordinate", AppendEvalFrame(nil, "g3", [][]float64{{0.5, math.NaN(), 0.5}}), http.StatusBadRequest, "domain"},
		{"too many points", AppendEvalFrame(nil, "g3", make([][]float64, 9, 9)), http.StatusRequestEntityTooLarge, "cap"},
	}
	// The too-many-points case needs real coordinate data.
	for i := range cases {
		if cases[i].name == "too many points" {
			pts := make([][]float64, 9)
			for k := range pts {
				pts[k] = []float64{0.1, 0.2, 0.3}
			}
			cases[i].frame = AppendEvalFrame(nil, "g3", pts)
		}
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec := postBin(t, h, c.frame)
			if rec.Code != c.status {
				t.Fatalf("status %d body %s, want %d", rec.Code, rec.Body, c.status)
			}
			if !strings.Contains(rec.Body.String(), c.errSub) {
				t.Errorf("error body %q does not mention %q", rec.Body, c.errSub)
			}
		})
	}

	// Oversized body → 413 via MaxBytesReader.
	big := AppendEvalFrame(nil, "g3", func() [][]float64 {
		pts := make([][]float64, 4000)
		for k := range pts {
			pts[k] = []float64{0.1, 0.2, 0.3}
		}
		return pts
	}())
	if len(big) <= 1<<16 {
		t.Fatalf("test frame not oversized: %d bytes", len(big))
	}
	rec := postBin(t, h, big)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", rec.Code)
	}
}

// TestBinaryRequestsMetric: binary traffic shows up under its own
// protocol label.
func TestBinaryRequestsMetric(t *testing.T) {
	s, _ := newTestServer(t, Config{}, 2)
	h := s.Handler()
	postBin(t, h, AppendEvalFrame(nil, "g2", [][]float64{{0.5, 0.5}}))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	want := `sgserve_requests_total{handler="eval_bin",protocol="bin"} 1`
	if !strings.Contains(rec.Body.String(), want) {
		t.Errorf("/metrics missing %q", want)
	}
}

// TestDecodeBinFrameFallback forces the copying decode path (unaligned
// buffer) and checks it agrees with the zero-copy one.
func TestDecodeBinFrameFallback(t *testing.T) {
	pts := [][]float64{{0.125, 0.375}, {0.625, 0.875}}
	frame := AppendEvalFrame(nil, "grid-x", pts)

	// Shift the frame one byte inside a larger buffer so the coordinate
	// block cannot be 8-aligned.
	buf := make([]byte, len(frame)+1)
	copy(buf[1:], frame)
	unaligned := buf[1:]

	for _, raw := range [][]byte{frame, unaligned} {
		fr := &binFrame{}
		req, err := decodeBinFrame(fr, raw)
		if err != nil {
			t.Fatal(err)
		}
		if string(req.name) != "grid-x" || req.n != 2 || req.d != 2 {
			t.Fatalf("decoded name=%q n=%d d=%d", req.name, req.n, req.d)
		}
		for k := range pts {
			for j := range pts[k] {
				if req.pts[k][j] != pts[k][j] {
					t.Fatalf("pts[%d][%d] = %g, want %g", k, j, req.pts[k][j], pts[k][j])
				}
			}
		}
	}
}

// TestBinaryDecodeZeroAlloc: the decode side of the binary path must be
// allocation-free at steady state (the ISSUE's acceptance criterion).
func TestBinaryDecodeZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("-race instrumentation allocates")
	}
	pts := make([][]float64, 64)
	for k := range pts {
		pts[k] = []float64{0.25, 0.5, 0.75}
	}
	frame := AppendEvalFrame(nil, "g", pts)
	fr := &binFrame{}
	// Warm the frame's internal buffers.
	if _, err := decodeBinFrame(fr, frame); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := decodeBinFrame(fr, frame); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("decodeBinFrame allocates %.1f times per frame at steady state, want 0", allocs)
	}
}

// TestBinaryEvalSteadyStateAllocs bounds the whole binary request path
// (handler included) once pools are warm.
func TestBinaryEvalSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("-race instrumentation allocates")
	}
	s, _ := newTestServer(t, Config{TraceRing: -1}, 3)
	h := s.Handler()
	pts := make([][]float64, 32)
	for k := range pts {
		pts[k] = []float64{0.25, 0.5, 0.75}
	}
	frame := AppendEvalFrame(nil, "g3", pts)
	// Warm: first requests grow the pooled buffers and load the grid.
	for i := 0; i < 8; i++ {
		if rec := postBin(t, h, frame); rec.Code != http.StatusOK {
			t.Fatalf("warmup status %d body %s", rec.Code, rec.Body)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		req := httptest.NewRequest("POST", "/v1/eval/bin", bytes.NewReader(frame))
		req.Header.Set("Content-Type", BinContentType)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatal(rec.Code)
		}
	})
	// The harness itself (NewRequest, recorder, header map) plus the
	// handler's goroutine/channel/context machinery allocate; the point
	// is that the figure stays small and flat — the decode/encode hot
	// path contributes nothing that scales with the 32-point payload.
	t.Logf("binary request path: %.1f allocs/request (harness included)", allocs)
	if allocs > 120 {
		t.Errorf("binary request path allocates %.1f times per request; decode/encode is supposed to be pooled", allocs)
	}
}

func TestParseValuesFrameErrors(t *testing.T) {
	if _, err := ParseValuesFrame(nil); err == nil {
		t.Error("nil frame parsed")
	}
	if _, err := ParseValuesFrame(make([]byte, 7)); err == nil {
		t.Error("short frame parsed")
	}
	bad := make([]byte, 8)
	binary.LittleEndian.PutUint32(bad, 2) // declares 2 values, carries 0
	if _, err := ParseValuesFrame(bad); err == nil {
		t.Error("count/length mismatch parsed")
	}
	rsv := make([]byte, 8)
	binary.LittleEndian.PutUint32(rsv[4:], 7)
	if _, err := ParseValuesFrame(rsv); err == nil {
		t.Error("nonzero reserved field parsed")
	}
}

// TestBinaryTimeoutAnswers503: the bin path inherits the batch path's
// timeout behavior (503 + JSON error body).
func TestBinaryTimeoutAnswers503(t *testing.T) {
	baseline := core.ActiveMappings()
	s, _ := newTestServer(t, Config{RequestTimeout: 20 * time.Millisecond}, 2)
	entered := make(chan struct{})
	release := make(chan struct{})
	s.batchEvalGate = func(string) {
		close(entered)
		<-release
	}
	h := s.Handler()
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- postBin(t, h, AppendEvalFrame(nil, "g2", [][]float64{{0.5, 0.5}})) }()
	<-entered
	rec := <-done
	close(release)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d body %s, want 503", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "json") {
		t.Errorf("error Content-Type = %q, want JSON", ct)
	}
	// The detached eval goroutine outlives the 503 and holds the last
	// lease; close now (idempotent — the Cleanup close is a no-op) and
	// wait for the unmap so later tests see a stable mapping baseline.
	s.Close()
	if got := waitMappings(t, baseline); got != baseline {
		t.Fatalf("gated eval never settled: ActiveMappings %d, want %d", got, baseline)
	}
}

// FuzzBinaryFrame hammers the frame decoder with arbitrary bytes: it
// must never panic, and any frame it accepts must satisfy the format's
// own invariants (so a round-trip re-encode reproduces the input).
func FuzzBinaryFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendEvalFrame(nil, "g", [][]float64{{0.5, 0.25}}))
	f.Add(AppendEvalFrame(nil, "", nil))
	f.Add(AppendEvalFrame(nil, strings.Repeat("n", 255), [][]float64{{1}}))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 255, 255, 255, 255, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, raw []byte) {
		fr := &binFrame{}
		req, err := decodeBinFrame(fr, raw)
		if err != nil {
			return
		}
		if req.n < 0 || req.d < 0 || len(req.pts) != req.n {
			t.Fatalf("accepted frame with inconsistent shape: n=%d d=%d pts=%d", req.n, req.d, len(req.pts))
		}
		for k := range req.pts {
			if len(req.pts[k]) != req.d {
				t.Fatalf("point %d has %d coords, frame declares %d", k, len(req.pts[k]), req.d)
			}
		}
		if len(req.name) > binMaxName {
			t.Fatalf("accepted %d-byte name", len(req.name))
		}
		// Round-trip: re-encoding the accepted frame must reproduce the
		// input byte-for-byte (the format admits exactly one encoding).
		back := AppendEvalFrame(nil, string(req.name), req.pts)
		if !bytes.Equal(back, raw) {
			t.Fatalf("round-trip mismatch:\n in  %x\n out %x", raw, back)
		}
	})
}

// TestAppendEvalFrameAlignment pins the format's padding rule across
// name lengths (the fuzz round-trip depends on it).
func TestAppendEvalFrameAlignment(t *testing.T) {
	for nameLen := 0; nameLen <= 16; nameLen++ {
		name := strings.Repeat("x", nameLen)
		frame := AppendEvalFrame(nil, name, [][]float64{{0.5}})
		hdr := 2 + nameLen
		pad := (8 - hdr%8) % 8
		wantLen := hdr + pad + 8 + 8
		if len(frame) != wantLen {
			t.Errorf("nameLen %d: frame is %d bytes, want %d", nameLen, len(frame), wantLen)
		}
		fr := &binFrame{}
		req, err := decodeBinFrame(fr, frame)
		if err != nil {
			t.Errorf("nameLen %d: %v", nameLen, err)
			continue
		}
		if string(req.name) != name {
			t.Errorf("nameLen %d: name %q", nameLen, req.name)
		}
	}
}
