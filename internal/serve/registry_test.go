package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"compactsg"
)

// newTestSet registers n grids (named q0..qn-1) in a fresh registry
// bounded to maxResident.
func newTestSet(t *testing.T, maxResident, n int) *GridSet {
	t.Helper()
	dir := t.TempDir()
	s := NewGridSet(maxResident)
	for k := 0; k < n; k++ {
		p, _ := writeGrid(t, dir, 2, 3)
		np := filepath.Join(dir, fmt.Sprintf("q%d.sg", k))
		if err := os.Rename(p, np); err != nil {
			t.Fatal(err)
		}
		if err := s.Add(fmt.Sprintf("q%d", k), np); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestSingleflightLoad: many concurrent Gets of one cold grid must
// share a single file load.
func TestSingleflightLoad(t *testing.T) {
	s := newTestSet(t, 2, 1)
	var loads, waits atomic.Int64
	s.LoadHook = func(string) error {
		loads.Add(1)
		time.Sleep(20 * time.Millisecond) // widen the race window
		return nil
	}
	s.OnLoadWait = func(string) { waits.Add(1) }

	const callers = 16
	var wg sync.WaitGroup
	grids := make([]any, callers)
	for k := 0; k < callers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			g, err := s.Get("q0")
			if err != nil {
				t.Error(err)
				return
			}
			grids[k] = g
		}(k)
	}
	wg.Wait()
	if n := loads.Load(); n != 1 {
		t.Fatalf("%d concurrent Gets performed %d loads, want 1", callers, n)
	}
	for k := 1; k < callers; k++ {
		if grids[k] != grids[0] {
			t.Fatalf("caller %d got a different grid instance", k)
		}
	}
	if waits.Load() == 0 {
		t.Error("no caller was recorded as a singleflight follower")
	}
}

// TestColdLoadDoesNotBlockResident is the tentpole property: while one
// grid is stuck in a slow load, Gets of an already-resident grid must
// complete immediately instead of queueing behind the registry lock.
func TestColdLoadDoesNotBlockResident(t *testing.T) {
	s := newTestSet(t, 2, 2)
	const delay = 200 * time.Millisecond
	loading := make(chan struct{})
	var once sync.Once
	s.LoadHook = func(name string) error {
		if name == "q1" {
			once.Do(func() { close(loading) })
			time.Sleep(delay)
		}
		return nil
	}
	if _, err := s.Get("q0"); err != nil { // q0 resident
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := s.Get("q1") // slow cold load
		done <- err
	}()
	<-loading // q1's load is now holding whatever it holds

	start := time.Now()
	const hotGets = 100
	for k := 0; k < hotGets; k++ {
		if _, err := s.Get("q0"); err != nil {
			t.Fatal(err)
		}
	}
	hot := time.Since(start)
	if hot > delay/2 {
		t.Fatalf("%d resident Gets took %v during a %v cold load — load is blocking the fast path", hotGets, hot, delay)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestAcquireCtxCancelWhileWaiting: a follower waiting on someone
// else's load honors its context.
func TestAcquireCtxCancelWhileWaiting(t *testing.T) {
	s := newTestSet(t, 2, 1)
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	s.LoadHook = func(string) error {
		once.Do(func() { close(started) })
		<-release
		return nil
	}
	go s.Get("q0") // leader, parked in LoadHook
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := s.Acquire(ctx, "q0")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("follower err = %v, want DeadlineExceeded", err)
	}
	close(release)
}

// TestLeaseRetire: an evicted grid stays usable through its lease and
// OnRetire fires exactly once, when the last lease is released.
func TestLeaseRetire(t *testing.T) {
	s := newTestSet(t, 1, 2)
	var retired atomic.Int64
	retirees := make(chan string, 4)
	s.OnRetire = func(name string, _ *compactsg.Grid) {
		retired.Add(1)
		retirees <- name
	}

	lease, err := s.Acquire(context.Background(), "q0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("q1"); err != nil { // evicts q0 (maxResident 1)
		t.Fatal(err)
	}
	if n := s.ResidentCount(); n != 1 {
		t.Fatalf("resident = %d, want 1", n)
	}
	if got := retired.Load(); got != 0 {
		t.Fatalf("OnRetire fired %d times while a lease is still held", got)
	}
	// The evicted instance still evaluates for its lease holder.
	if _, err := lease.Grid().Evaluate([]float64{0.5, 0.5}); err != nil {
		t.Fatalf("evicted-but-leased grid unusable: %v", err)
	}
	lease.Release()
	lease.Release() // idempotent
	select {
	case name := <-retirees:
		if name != "q0" {
			t.Fatalf("retired %q, want q0", name)
		}
	case <-time.After(time.Second):
		t.Fatal("OnRetire never fired after the last release")
	}
	if got := retired.Load(); got != 1 {
		t.Fatalf("OnRetire fired %d times, want 1", got)
	}
}

// TestPreloadContinuesPastBrokenGrid: one corrupt grid file must not
// keep later healthy grids cold, and the error must name the bad grid.
func TestPreloadContinuesPastBrokenGrid(t *testing.T) {
	dir := t.TempDir()
	s := NewGridSet(8)
	// "a" is garbage, "b" and "c" are healthy.
	bad := filepath.Join(dir, "a.sg")
	if err := os.WriteFile(bad, []byte("not a grid"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Add("a", bad); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"b", "c"} {
		p, _ := writeGrid(t, dir, 2, 3)
		np := filepath.Join(dir, name+"-grid.sg")
		if err := os.Rename(p, np); err != nil {
			t.Fatal(err)
		}
		if err := s.Add(name, np); err != nil {
			t.Fatal(err)
		}
	}
	err := s.Preload()
	if err == nil {
		t.Fatal("Preload over a broken grid returned nil")
	}
	if !strings.Contains(err.Error(), "a.sg") {
		t.Errorf("aggregated error %q does not name the broken file", err)
	}
	if n := s.ResidentCount(); n != 2 {
		t.Fatalf("resident after Preload = %d, want 2 (healthy grids must load)", n)
	}
	for _, gi := range s.Info() {
		if gi.Name != "a" && !gi.Resident {
			t.Errorf("healthy grid %q left cold by Preload", gi.Name)
		}
	}
}

// TestEvictionUnderLoad hammers Get/Evaluate across more grids than
// resident slots from many goroutines (run under -race in CI) and then
// checks that no goroutines leaked.
func TestEvictionUnderLoad(t *testing.T) {
	before := runtime.NumGoroutine()
	s := newTestSet(t, 2, 6)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, 1)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			x := []float64{0.3, 0.6}
			for k := 0; ; k++ {
				select {
				case <-stop:
					return
				default:
				}
				name := fmt.Sprintf("q%d", (w+k)%6)
				lease, err := s.Acquire(context.Background(), name)
				if err != nil {
					select {
					case errc <- err:
					default:
					}
					return
				}
				v, err := lease.Grid().Evaluate(x)
				lease.Release()
				if err != nil || math.IsNaN(v) {
					select {
					case errc <- fmt.Errorf("evaluate %s: v=%v err=%v", name, v, err):
					default:
					}
					return
				}
			}
		}(w)
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if n := s.ResidentCount(); n > 2 {
		t.Fatalf("resident = %d, want ≤ 2", n)
	}
	assertNoGoroutineLeak(t, before)
}

// assertNoGoroutineLeak waits for the goroutine count to settle back to
// (roughly) the baseline; background drains are given time to finish.
func assertNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	var now int
	for time.Now().Before(deadline) {
		now = runtime.NumGoroutine()
		if now <= baseline+2 { // tolerate runtime/test helpers
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: baseline %d, now %d\n%s", baseline, now, buf[:n])
}
