package serve

// End-to-end coverage of the tiered snapshot store behind the
// registry's cold-load path: store-backed grids resolve by content
// address, online swaps publish into the store, a corrupt cached
// object self-heals via refetch, and the server surfaces the store
// counters on /metrics.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"compactsg"
	"compactsg/internal/core"
	"compactsg/internal/store"
)

// newStoreSet builds a GridSet over a store whose remote tier is the
// given FSRemote directory, with one published snapshot registered as
// a store-backed grid named "g".
func newStoreSet(t *testing.T, capBytes int64) (*GridSet, *store.Store, *compactsg.Grid, string) {
	t.Helper()
	path, ref := writeGrid(t, t.TempDir(), 2, 4)
	key, err := store.KeyOfFile(path)
	if err != nil {
		t.Fatal(err)
	}
	remoteDir := t.TempDir()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(remoteDir, key+".sg"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(store.Config{Dir: t.TempDir(), CapBytes: capBytes, Remote: &store.FSRemote{Dir: remoteDir}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	s := NewGridSet(4)
	s.SetStore(st)
	if err := s.AddStored("g", key); err != nil {
		t.Fatal(err)
	}
	return s, st, ref, key
}

func TestStoreBackedColdLoad(t *testing.T) {
	baseline := core.ActiveMappings()
	s, st, ref, key := newStoreSet(t, 0)

	// First load is a miss: remote fetch, verify, cache, mmap.
	g, err := s.Get("g")
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, 0.6}
	want, _ := ref.Evaluate(x)
	if got, _ := g.Evaluate(x); got != want {
		t.Fatalf("store-backed eval = %v, want %v", got, want)
	}
	if st := st.Stats(); st.Misses != 1 || st.Fills != 1 || st.Hits != 0 {
		t.Fatalf("first load stats: %+v", st)
	}
	if !st.Contains(key) {
		t.Fatal("fetched object not cached")
	}

	// Purge and reload: now a pure cache hit — no remote traffic.
	s.Purge()
	if _, err := s.Get("g"); err != nil {
		t.Fatal(err)
	}
	if st := st.Stats(); st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("reload stats: %+v", st)
	}

	// The registry can report and drop resident payload pages for
	// store-backed mmaps.
	if rb := s.ResidentPayloadBytes(); rb < 0 {
		t.Fatalf("resident payload bytes = %d", rb)
	}
	if err := s.DropPages("g"); err != nil {
		t.Fatal(err)
	}
	want2, _ := ref.Evaluate(x)
	if g2, _ := s.Get("g"); g2 != nil {
		if got, _ := g2.Evaluate(x); got != want2 {
			t.Fatalf("eval after DropPages = %v, want %v", got, want2)
		}
	}

	s.Purge()
	waitMappings(t, baseline)
}

func TestSwapPublishesToStore(t *testing.T) {
	s, st, _, _ := newStoreSet(t, 0)
	remote := st.Stats() // quiet so far
	if remote.Fills != 0 {
		t.Fatalf("unexpected store traffic before swap: %+v", remote)
	}

	published := make(chan string, 1)
	s.OnPublish = func(name, key string, err error) {
		if err != nil {
			t.Errorf("publish %s: %v", name, err)
		}
		published <- key
	}

	dir := t.TempDir()
	path2, ref2 := writeGrid(t, dir, 2, 5)
	if _, err := s.Swap("h", path2, 0); err != nil {
		t.Fatal(err)
	}
	var key2 string
	select {
	case key2 = <-published:
	case <-time.After(5 * time.Second):
		t.Fatal("OnPublish never fired")
	}
	if !st.Contains(key2) {
		t.Fatal("swap did not publish the snapshot into the local cache")
	}

	// The original file can now vanish: after a purge the registry
	// reloads "h" from the store by content address.
	if err := os.Remove(path2); err != nil {
		t.Fatal(err)
	}
	s.Purge()
	g, err := s.Get("h")
	if err != nil {
		t.Fatalf("reload after unlink: %v", err)
	}
	x := []float64{0.25, 0.75}
	want, _ := ref2.Evaluate(x)
	if got, _ := g.Evaluate(x); got != want {
		t.Fatalf("post-publish eval = %v, want %v", got, want)
	}
	s.Purge()
}

func TestCorruptCachedObjectSelfHeals(t *testing.T) {
	s, st, ref, key := newStoreSet(t, 0)
	if _, err := s.Get("g"); err != nil {
		t.Fatal(err)
	}
	s.Purge()

	// Rot the cached object on disk behind the store's back.
	objPath := filepath.Join(st.Dir(), key+".sg")
	raw, err := os.ReadFile(objPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[core.SnapshotAlign+3] ^= 0x10
	if err := os.WriteFile(objPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// The next load opens the rotten object, fails checksum, and drops
	// it from the cache; the load after that refetches and succeeds.
	if _, err := s.Get("g"); err == nil {
		t.Fatal("corrupt cached object served")
	}
	if st.Contains(key) {
		t.Fatal("corrupt object still cached after failed open")
	}
	g, err := s.Get("g")
	if err != nil {
		t.Fatalf("self-heal reload: %v", err)
	}
	x := []float64{0.5, 0.5}
	want, _ := ref.Evaluate(x)
	if got, _ := g.Evaluate(x); got != want {
		t.Fatalf("healed eval = %v, want %v", got, want)
	}
	if stats := st.Stats(); stats.Misses != 2 || stats.Fills != 2 {
		t.Fatalf("heal stats: %+v", stats)
	}
	s.Purge()
}

func TestServerStoreMetrics(t *testing.T) {
	path, ref := writeGrid(t, t.TempDir(), 2, 4)
	key, err := store.KeyOfFile(path)
	if err != nil {
		t.Fatal(err)
	}
	remoteDir := t.TempDir()
	raw, _ := os.ReadFile(path)
	if err := os.WriteFile(filepath.Join(remoteDir, key+".sg"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(store.Config{Dir: t.TempDir(), Remote: &store.FSRemote{Dir: remoteDir}})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Store: st})
	t.Cleanup(func() { srv.Close(); st.Close() })
	if err := srv.AddStoredGrid("g", key); err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	x := []float64{0.4, 0.8}
	rec := postJSON(t, h, "/v1/eval", evalRequest{Grid: "g", Point: x})
	if rec.Code != 200 {
		t.Fatalf("eval status = %d, body %s", rec.Code, rec.Body)
	}
	var er evalResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if want, _ := ref.Evaluate(x); er.Value != want {
		t.Fatalf("store-backed eval over HTTP = %v, want %v", er.Value, want)
	}

	mrec := httptest.NewRecorder()
	h.ServeHTTP(mrec, httptest.NewRequest("GET", "/metrics", nil))
	body := mrec.Body.String()
	for _, metric := range []string{
		"sgserve_store_hits 0",
		"sgserve_store_misses 1",
		"sgserve_store_fills 1",
		"sgserve_store_cap_bytes 0",
		"sgserve_mapped_resident_bytes",
	} {
		if !strings.Contains(body, metric) {
			t.Fatalf("/metrics missing %q:\n%s", metric, body)
		}
	}
	if !strings.Contains(body, "sgserve_store_size_bytes") {
		t.Fatal("store size gauge missing")
	}
}

func TestBlobEndpointOnServer(t *testing.T) {
	blobDir := t.TempDir()
	srv := New(Config{BlobDir: blobDir})
	t.Cleanup(func() { srv.Close() })
	h := srv.Handler()

	path, _ := writeGrid(t, t.TempDir(), 2, 3)
	key, err := store.KeyOfFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)

	put := httptest.NewRequest("PUT", "/v1/blobs/"+key, strings.NewReader(string(raw)))
	put.ContentLength = int64(len(raw))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, put)
	if rec.Code != http.StatusCreated {
		t.Fatalf("PUT status = %d, body %s", rec.Code, rec.Body)
	}
	get := httptest.NewRequest("GET", "/v1/blobs/"+key, nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, get)
	if rec.Code != 200 || rec.Body.Len() != len(raw) {
		t.Fatalf("GET status = %d, len %d (want %d)", rec.Code, rec.Body.Len(), len(raw))
	}

	// An sgserve pointed at this one as its remote can cold-load the
	// grid end to end over HTTP.
	tsrv := httptest.NewServer(h)
	defer tsrv.Close()
	st, err := store.Open(store.Config{Dir: t.TempDir(), Remote: &store.HTTPRemote{Base: tsrv.URL + "/v1/blobs"}})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	obj, err := st.Get(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Release()
	og, err := compactsg.Open(obj.Path())
	if err != nil {
		t.Fatal(err)
	}
	og.Close()
}
