package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"compactsg/internal/obs"
)

// TestInstrumentRecoversPanic: a panicking handler must be answered
// with a 500 JSON errorResponse, counted in sgserve_panics_total and
// sgserve_errors_total, observed in the latency histogram, and its
// stack logged via slog — net/http's own recovery does none of that
// (it aborts the connection and the request vanishes from metrics).
func TestInstrumentRecoversPanic(t *testing.T) {
	var logBuf bytes.Buffer
	s := New(Config{ErrorLog: slog.New(slog.NewJSONHandler(&logBuf, nil))})
	defer s.Close()

	h := s.instrument("boom", func(*http.Request) (any, error) {
		panic("kernel exploded")
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/eval", strings.NewReader("{}")))

	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	var er errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Fatalf("panic response is not JSON: %v (%s)", err, rec.Body)
	}
	if er.Error != "internal server error" {
		t.Errorf("error body = %q (panic values must not leak to clients)", er.Error)
	}
	if got := s.met.panics.Value(); got != 1 {
		t.Errorf("sgserve_panics_total = %d, want 1", got)
	}
	if got := s.met.errors.With("boom").Value(); got != 1 {
		t.Errorf("sgserve_errors_total = %d, want 1", got)
	}
	if got := s.met.latency.With("boom").Count(); got != 1 {
		t.Errorf("latency observations = %d, want 1 (panics must not escape the histogram)", got)
	}
	logged := logBuf.String()
	for _, want := range []string{"handler panic", "kernel exploded", "instrument_test.go"} {
		if !strings.Contains(logged, want) {
			t.Errorf("panic log missing %q:\n%s", want, logged)
		}
	}

	// The server keeps serving after a recovered panic.
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Errorf("healthz after panic = %d", rec.Code)
	}
}

// TestDecodeJSONStrict: the body must be exactly one JSON value.
func TestDecodeJSONStrict(t *testing.T) {
	s, _ := newTestServer(t, Config{Coalesce: true, BatchWait: time.Millisecond}, 2)
	h := s.Handler()

	cases := []struct {
		name   string
		body   string
		status int
		substr string
	}{
		{"valid", `{"grid":"g2","point":[0.5,0.5]}`, 200, `"value"`},
		{"valid with trailing whitespace", `{"grid":"g2","point":[0.5,0.5]}` + " \n\t ", 200, `"value"`},
		{"trailing garbage", `{"grid":"g2","point":[0.5,0.5]}junk`, 400, "after the JSON value"},
		{"second JSON value", `{"grid":"g2","point":[0.5,0.5]}{"grid":"g2"}`, 400, "after the JSON value"},
		{"trailing scalar", `{"grid":"g2","point":[0.5,0.5]} 42`, 400, "after the JSON value"},
		{"empty body", ``, 400, "empty request body"},
		{"whitespace-only body", "  \n ", 400, "empty request body"},
		{"truncated value", `{"grid":"g2","point":[0.5`, 400, "invalid JSON"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest("POST", "/v1/eval", strings.NewReader(tc.body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != tc.status {
				t.Fatalf("status = %d, want %d (body %s)", rec.Code, tc.status, rec.Body)
			}
			if !strings.Contains(rec.Body.String(), tc.substr) {
				t.Fatalf("body %q does not contain %q", rec.Body.String(), tc.substr)
			}
		})
	}
}

// TestInstrumentStatusMapping drives the documented error → status
// mapping through real httptest round-trips: 404 for unknown grids,
// 499 for a client that cancels mid-batch, 503 for a request deadline
// and for a closed server.
func TestInstrumentStatusMapping(t *testing.T) {
	t.Run("404 unknown grid", func(t *testing.T) {
		s, _ := newTestServer(t, Config{Coalesce: true, BatchWait: time.Millisecond}, 2)
		rec := postJSON(t, s.Handler(), "/v1/eval", evalRequest{Grid: "missing", Point: []float64{0.5, 0.5}})
		if rec.Code != http.StatusNotFound {
			t.Fatalf("status = %d, want 404 (body %s)", rec.Code, rec.Body)
		}
	})

	t.Run("499 client cancel mid-batch", func(t *testing.T) {
		// An open micro-batch that would wait an hour: the request is
		// parked in the coalescer when the client walks away.
		s, _ := newTestServer(t, Config{Coalesce: true, MaxBatch: 1024, BatchWait: time.Hour}, 2)
		h := s.Handler()
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan *httptest.ResponseRecorder, 1)
		go func() {
			body, _ := json.Marshal(evalRequest{Grid: "g2", Point: []float64{0.5, 0.5}})
			req := httptest.NewRequest("POST", "/v1/eval", bytes.NewReader(body)).WithContext(ctx)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			done <- rec
		}()
		// Wait until the call is parked in the open batch, then cancel.
		deadline := time.Now().Add(2 * time.Second)
		for s.met.requests.With("eval", "json").Value() == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		time.Sleep(10 * time.Millisecond)
		cancel()
		rec := <-done
		if rec.Code != 499 {
			t.Fatalf("status = %d, want 499 (body %s)", rec.Code, rec.Body)
		}
		if !strings.Contains(rec.Body.String(), "context canceled") {
			t.Errorf("body = %s", rec.Body)
		}
	})

	t.Run("503 deadline exceeded", func(t *testing.T) {
		s, _ := newTestServer(t, Config{
			Coalesce: true, MaxBatch: 1024, BatchWait: time.Hour,
			RequestTimeout: 20 * time.Millisecond,
		}, 2)
		rec := postJSON(t, s.Handler(), "/v1/eval", evalRequest{Grid: "g2", Point: []float64{0.5, 0.5}})
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("status = %d, want 503 (body %s)", rec.Code, rec.Body)
		}
		if !strings.Contains(rec.Body.String(), "deadline") {
			t.Errorf("body = %s", rec.Body)
		}
	})

	t.Run("503 server closed", func(t *testing.T) {
		s, _ := newTestServer(t, Config{Coalesce: true, BatchWait: time.Millisecond}, 2)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		rec := postJSON(t, s.Handler(), "/v1/eval", evalRequest{Grid: "g2", Point: []float64{0.5, 0.5}})
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("status = %d, want 503 (body %s)", rec.Code, rec.Body)
		}
		if !strings.Contains(rec.Body.String(), "shutting down") {
			t.Errorf("body = %s", rec.Body)
		}
	})
}

// TestTracesAndStageMetrics: a served request must leave (a) a trace at
// /debug/traces with the stage split, (b) per-stage histograms in
// /metrics, and (c) an X-Request-Id response header.
func TestTracesAndStageMetrics(t *testing.T) {
	s, _ := newTestServer(t, Config{Coalesce: true, BatchWait: time.Millisecond}, 3)
	h := s.Handler()

	rec := postJSON(t, h, "/v1/eval", evalRequest{Grid: "g3", Point: []float64{0.25, 0.5, 0.75}})
	if rec.Code != 200 {
		t.Fatalf("eval: %d %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("X-Request-Id") == "" {
		t.Error("missing X-Request-Id header")
	}
	xs := [][]float64{{0.1, 0.2, 0.3}, {0.4, 0.5, 0.6}}
	if rec = postJSON(t, h, "/v1/eval/batch", batchRequest{Grid: "g3", Points: xs}); rec.Code != 200 {
		t.Fatalf("batch: %d %s", rec.Code, rec.Body)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/traces: %d", rec.Code)
	}
	traces, err := obs.ParseTraces(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("/debug/traces is not parseable: %v\n%s", err, rec.Body)
	}
	if len(traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(traces))
	}
	// Newest first: traces[0] is the batch request.
	batchTr, evalTr := traces[0], traces[1]
	if batchTr.Handler != "batch" || evalTr.Handler != "eval" {
		t.Fatalf("handlers = %s, %s", batchTr.Handler, evalTr.Handler)
	}
	if evalTr.Grid != "g3" || evalTr.Points != 1 || evalTr.Status != 200 || evalTr.Batch < 1 {
		t.Errorf("eval trace = %+v", evalTr)
	}
	if batchTr.Points != 2 || batchTr.Batch != 2 {
		t.Errorf("batch trace = %+v", batchTr)
	}
	// The coalesced eval request must carry the full stage pipeline;
	// the first request also led the cold grid load.
	for _, st := range []obs.Stage{obs.StageDecode, obs.StageValidate, obs.StageLoad,
		obs.StageQueueWait, obs.StageDispatch, obs.StageEval, obs.StageEncode} {
		if _, ok := evalTr.StageS(st); !ok {
			t.Errorf("eval trace missing stage %s", st.Name())
		}
	}
	for _, st := range []obs.Stage{obs.StageDecode, obs.StageValidate, obs.StageDispatch, obs.StageEval, obs.StageEncode} {
		if _, ok := batchTr.StageS(st); !ok {
			t.Errorf("batch trace missing stage %s", st.Name())
		}
	}
	if _, ok := batchTr.StageS(obs.StageQueueWait); ok {
		t.Error("batch trace has a queue_wait stage; /v1/eval/batch does not coalesce")
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	out := rec.Body.String()
	for _, want := range []string{
		`sgserve_stage_seconds_count{stage="queue_wait"} 1`,
		`sgserve_stage_seconds_count{stage="eval"} 2`,
		`sgserve_stage_seconds_count{stage="decode"} 2`,
		`sgserve_stage_seconds_count{stage="load"} 1`,
		"sgserve_panics_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestTracingDisabled: TraceRing < 0 must serve an empty trace list,
// skip the X-Request-Id header, and still answer correctly.
func TestTracingDisabled(t *testing.T) {
	s, _ := newTestServer(t, Config{Coalesce: true, BatchWait: time.Millisecond, TraceRing: -1}, 2)
	h := s.Handler()
	rec := postJSON(t, h, "/v1/eval", evalRequest{Grid: "g2", Point: []float64{0.5, 0.5}})
	if rec.Code != 200 {
		t.Fatalf("eval with tracing off: %d %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("X-Request-Id") != "" {
		t.Error("X-Request-Id set with tracing disabled")
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if strings.TrimSpace(rec.Body.String()) != `{"traces":[]}` {
		t.Errorf("/debug/traces with tracing off = %q", rec.Body.String())
	}
}

// TestAccessLog: every request emits one structured line with the
// request identity and stage breakdown.
func TestAccessLog(t *testing.T) {
	var mu sync.Mutex
	var logBuf bytes.Buffer
	lock := &lockedWriter{mu: &mu, w: &logBuf}
	s, _ := newTestServer(t, Config{
		Coalesce:  true,
		BatchWait: time.Millisecond,
		AccessLog: slog.New(slog.NewJSONHandler(lock, nil)),
	}, 2)
	h := s.Handler()
	if rec := postJSON(t, h, "/v1/eval", evalRequest{Grid: "g2", Point: []float64{0.5, 0.5}}); rec.Code != 200 {
		t.Fatalf("eval: %d %s", rec.Code, rec.Body)
	}
	if rec := postJSON(t, h, "/v1/eval", evalRequest{Grid: "nope", Point: []float64{0.5, 0.5}}); rec.Code != 404 {
		t.Fatalf("eval unknown: %d", rec.Code)
	}

	mu.Lock()
	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	mu.Unlock()
	if len(lines) != 2 {
		t.Fatalf("got %d access log lines, want 2:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("access log line is not JSON: %v (%s)", err, lines[0])
	}
	for _, key := range []string{"request_id", "handler", "status", "total", "grid", "points", "eval", "queue_wait"} {
		if _, ok := first[key]; !ok {
			t.Errorf("access log line missing %q: %s", key, lines[0])
		}
	}
	if first["grid"] != "g2" || first["status"] != float64(200) {
		t.Errorf("access log line = %s", lines[0])
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if second["status"] != float64(404) {
		t.Errorf("error line status = %v, want 404", second["status"])
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// TestColdLoadWaitSpan: a follower piggybacking on another request's
// in-flight load must attribute that wait to load_wait, not queue_wait
// or eval.
func TestColdLoadWaitSpan(t *testing.T) {
	s, _ := newTestServer(t, Config{Coalesce: true, BatchWait: time.Millisecond}, 2)
	loadStarted := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.Grids().LoadHook = func(string) error {
		once.Do(func() {
			close(loadStarted)
			<-release
		})
		return nil
	}
	h := s.Handler()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // leader
		defer wg.Done()
		postJSON(t, h, "/v1/eval", evalRequest{Grid: "g2", Point: []float64{0.5, 0.5}})
	}()
	go func() { // follower
		defer wg.Done()
		<-loadStarted
		time.Sleep(10 * time.Millisecond) // let the follower join the in-flight load
		postJSON(t, h, "/v1/eval", evalRequest{Grid: "g2", Point: []float64{0.25, 0.25}})
	}()
	go func() {
		<-loadStarted
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	wg.Wait()

	var sawLoad, sawWait bool
	for _, tr := range s.Tracer().Snapshot() {
		if d, ok := tr.StageS(obs.StageLoad); ok && d > 0.04 {
			sawLoad = true
		}
		if d, ok := tr.StageS(obs.StageLoadWait); ok && d > 0.02 {
			sawWait = true
		}
	}
	if !sawLoad {
		t.Error("no trace attributes the cold load to the load stage")
	}
	if !sawWait {
		t.Error("no trace attributes the singleflight wait to the load_wait stage")
	}
}
