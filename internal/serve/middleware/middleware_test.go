package middleware

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// okHandler answers 200 and records the context values the middleware
// chain stamped, so tests can assert on what the inner handler saw.
type seen struct {
	requestID string
	clientIP  string
	keyName   string
	hits      int
}

func okHandler(s *seen) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.hits++
		s.requestID = RequestIDFrom(r.Context())
		s.clientIP = ClientIPFrom(r.Context())
		s.keyName = APIKeyNameFrom(r.Context())
		w.WriteHeader(http.StatusOK)
	})
}

func get(h http.Handler, remote string, hdr map[string]string) *httptest.ResponseRecorder {
	r := httptest.NewRequest(http.MethodGet, "/v1/eval", nil)
	r.RemoteAddr = remote
	for k, v := range hdr {
		r.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

func TestChainOrder(t *testing.T) {
	var order []string
	tag := func(name string) Middleware {
		return func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				order = append(order, name)
				next.ServeHTTP(w, r)
			})
		}
	}
	h := Chain(okHandler(&seen{}), tag("a"), nil, tag("b"))
	get(h, "1.2.3.4:1", nil)
	if got := strings.Join(order, ","); got != "a,b" {
		t.Fatalf("chain order = %q, want a,b (mw[0] outermost, nil skipped)", got)
	}
}

func TestRequestID(t *testing.T) {
	proxies, err := ParseProxies("10.0.0.0/8")
	if err != nil {
		t.Fatal(err)
	}
	s := &seen{}
	h := Chain(okHandler(s), RequestID(proxies))

	// Untrusted connection: the inbound header is ignored and a fresh
	// 16-hex-char ID is minted.
	w := get(h, "203.0.113.9:4242", map[string]string{"X-Request-Id": "spoofed-id"})
	id := w.Header().Get("X-Request-Id")
	if id == "spoofed-id" || len(id) != 16 {
		t.Fatalf("untrusted X-Request-Id not replaced: response header %q", id)
	}
	if s.requestID != id {
		t.Fatalf("context ID %q != response header %q", s.requestID, id)
	}

	// Trusted proxy with a well-formed ID: propagated verbatim.
	w = get(h, "10.1.2.3:80", map[string]string{"X-Request-Id": "trace-ABC_123"})
	if got := w.Header().Get("X-Request-Id"); got != "trace-ABC_123" {
		t.Fatalf("trusted X-Request-Id = %q, want trace-ABC_123", got)
	}

	// Trusted proxy with a hostile value: replaced, never truncated.
	w = get(h, "10.1.2.3:80", map[string]string{"X-Request-Id": "bad id\n" + strings.Repeat("x", 100)})
	if got := w.Header().Get("X-Request-Id"); len(got) != 16 {
		t.Fatalf("malformed trusted X-Request-Id not replaced: %q", got)
	}
}

func TestRealIP(t *testing.T) {
	proxies, err := ParseProxies("10.0.0.0/8, 127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	s := &seen{}
	h := Chain(okHandler(s), RealIP(proxies))

	cases := []struct {
		name   string
		remote string
		fwd    string
		want   string
	}{
		{"no proxy", "203.0.113.9:4242", "", "203.0.113.9"},
		{"untrusted ignores XFF", "203.0.113.9:4242", "198.51.100.7", "203.0.113.9"},
		{"trusted takes rightmost untrusted", "10.0.0.2:80", "198.51.100.7, 10.0.0.5", "198.51.100.7"},
		{"trusted single hop", "127.0.0.1:80", "198.51.100.7", "198.51.100.7"},
		{"all hops trusted", "10.0.0.2:80", "10.9.9.9", "10.9.9.9"},
		{"malformed chain falls back", "10.0.0.2:80", "not-an-ip", "10.0.0.2"},
	}
	for _, tc := range cases {
		hdr := map[string]string{}
		if tc.fwd != "" {
			hdr["X-Forwarded-For"] = tc.fwd
		}
		get(h, tc.remote, hdr)
		if s.clientIP != tc.want {
			t.Errorf("%s: client IP = %q, want %q", tc.name, s.clientIP, tc.want)
		}
	}
}

func TestCORS(t *testing.T) {
	s := &seen{}
	h := Chain(okHandler(s), CORS([]string{"https://app.example"}))

	// Preflight from an allowed origin: 204, never reaches the handler.
	r := httptest.NewRequest(http.MethodOptions, "/v1/eval", nil)
	r.Header.Set("Origin", "https://app.example")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusNoContent {
		t.Fatalf("preflight status = %d, want 204", w.Code)
	}
	if s.hits != 0 {
		t.Fatal("preflight reached the inner handler")
	}
	if got := w.Header().Get("Access-Control-Allow-Origin"); got != "https://app.example" {
		t.Fatalf("Allow-Origin = %q", got)
	}
	if !strings.Contains(w.Header().Get("Access-Control-Allow-Headers"), "X-API-Key") {
		t.Fatalf("Allow-Headers missing X-API-Key: %q", w.Header().Get("Access-Control-Allow-Headers"))
	}

	// Disallowed origin: no CORS headers, request passes through.
	w = get(h, "1.2.3.4:1", map[string]string{"Origin": "https://evil.example"})
	if got := w.Header().Get("Access-Control-Allow-Origin"); got != "" {
		t.Fatalf("disallowed origin got Allow-Origin %q", got)
	}
	if w.Code != http.StatusOK {
		t.Fatalf("disallowed-origin GET status = %d, want 200", w.Code)
	}

	// Wildcard ring.
	any := Chain(okHandler(&seen{}), CORS([]string{"*"}))
	w = get(any, "1.2.3.4:1", map[string]string{"Origin": "https://anything.example"})
	if got := w.Header().Get("Access-Control-Allow-Origin"); got != "*" {
		t.Fatalf("wildcard Allow-Origin = %q, want *", got)
	}
}

func TestAuth(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keys")
	content := "# comment\nalice:s3cret-a\n\ns3cret-bare\n"
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	keys, err := LoadKeys(path)
	if err != nil {
		t.Fatal(err)
	}
	if keys.Len() != 2 {
		t.Fatalf("keyring holds %d keys, want 2", keys.Len())
	}

	s := &seen{}
	h := Chain(okHandler(s), Auth(keys, "/healthz"))

	// No credentials: 401 with a challenge.
	w := get(h, "1.2.3.4:1", nil)
	if w.Code != http.StatusUnauthorized {
		t.Fatalf("no-key status = %d, want 401", w.Code)
	}
	if got := w.Header().Get("WWW-Authenticate"); !strings.Contains(got, "Bearer") {
		t.Fatalf("WWW-Authenticate = %q", got)
	}
	if !strings.Contains(w.Body.String(), `"error"`) {
		t.Fatalf("401 body = %q, want JSON error", w.Body.String())
	}

	// Wrong key: 401.
	if w = get(h, "1.2.3.4:1", map[string]string{"Authorization": "Bearer nope"}); w.Code != http.StatusUnauthorized {
		t.Fatalf("bad-key status = %d, want 401", w.Code)
	}

	// Non-Bearer Authorization never matches, even with the right key.
	if w = get(h, "1.2.3.4:1", map[string]string{"Authorization": "Basic s3cret-a"}); w.Code != http.StatusUnauthorized {
		t.Fatalf("Basic-scheme status = %d, want 401", w.Code)
	}

	// Named key via Bearer: accepted, name lands in the context.
	if w = get(h, "1.2.3.4:1", map[string]string{"Authorization": "Bearer s3cret-a"}); w.Code != http.StatusOK {
		t.Fatalf("good Bearer status = %d, want 200", w.Code)
	}
	if s.keyName != "alice" {
		t.Fatalf("key name = %q, want alice", s.keyName)
	}

	// Bare key via X-API-Key: accepted under its derived name.
	if w = get(h, "1.2.3.4:1", map[string]string{"X-API-Key": "s3cret-bare"}); w.Code != http.StatusOK {
		t.Fatalf("good X-API-Key status = %d, want 200", w.Code)
	}
	if !strings.HasPrefix(s.keyName, "key-") {
		t.Fatalf("derived key name = %q, want key-<hex> prefix", s.keyName)
	}

	// Exempt path passes with no credentials at all.
	r := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	r.RemoteAddr = "1.2.3.4:1"
	w = httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("exempt /healthz status = %d, want 200", w.Code)
	}
}

func TestKeysFromEnv(t *testing.T) {
	t.Setenv("SG_TEST_KEYS", "alice: s3cret-a , s3cret-bare")
	keys, err := KeysFromEnv("SG_TEST_KEYS")
	if err != nil {
		t.Fatal(err)
	}
	if keys.Len() != 2 {
		t.Fatalf("env keyring holds %d keys, want 2", keys.Len())
	}
	if name, ok := keys.lookup("s3cret-a"); !ok || name != "alice" {
		t.Fatalf("lookup(s3cret-a) = %q, %v", name, ok)
	}

	t.Setenv("SG_TEST_KEYS", "")
	if keys, err = KeysFromEnv("SG_TEST_KEYS"); err != nil || keys != nil {
		t.Fatalf("unset env: keys=%v err=%v, want nil,nil", keys, err)
	}

	t.Setenv("SG_TEST_KEYS", "alice:")
	if _, err = KeysFromEnv("SG_TEST_KEYS"); err == nil {
		t.Fatal("empty key in env accepted")
	}
}

func TestRateLimit(t *testing.T) {
	l := NewLimiter(1, 2) // 1 token/s, burst 2
	clock := time.Unix(1_700_000_000, 0)
	l.now = func() time.Time { return clock }

	s := &seen{}
	h := Chain(okHandler(s), RateLimit(l, "/healthz"))

	// Burst of 2 passes, third is rejected with a Retry-After hint.
	for i := 0; i < 2; i++ {
		if w := get(h, "203.0.113.9:1", nil); w.Code != http.StatusOK {
			t.Fatalf("request %d status = %d, want 200", i, w.Code)
		}
	}
	w := get(h, "203.0.113.9:1", nil)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-budget status = %d, want 429", w.Code)
	}
	secs, err := strconv.Atoi(w.Header().Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want integer >= 1", w.Header().Get("Retry-After"))
	}

	// A different identity has its own bucket.
	if w = get(h, "198.51.100.7:1", nil); w.Code != http.StatusOK {
		t.Fatalf("other-client status = %d, want 200", w.Code)
	}

	// After the advertised wait, the original client gets a token back.
	clock = clock.Add(time.Duration(secs) * time.Second)
	if w = get(h, "203.0.113.9:1", nil); w.Code != http.StatusOK {
		t.Fatalf("post-wait status = %d, want 200", w.Code)
	}

	// Exempt path ignores the limiter even when the bucket is dry.
	r := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	r.RemoteAddr = "203.0.113.9:1"
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, r)
	if rec.Code != http.StatusOK {
		t.Fatalf("exempt /healthz status = %d, want 200", rec.Code)
	}
}

func TestRateLimitKeyIdentity(t *testing.T) {
	// When Auth ran, the limiter keys by API-key name: two clients on
	// different IPs presenting the same key share one bucket.
	l := NewLimiter(1, 1)
	clock := time.Unix(1_700_000_000, 0)
	l.now = func() time.Time { return clock }

	keys := &Keyring{}
	keys.add("alice", "s3cret")
	h := Chain(okHandler(&seen{}), Auth(keys), RateLimit(l))

	hdr := map[string]string{"Authorization": "Bearer s3cret"}
	if w := get(h, "203.0.113.9:1", hdr); w.Code != http.StatusOK {
		t.Fatalf("first request status = %d, want 200", w.Code)
	}
	if w := get(h, "198.51.100.7:1", hdr); w.Code != http.StatusTooManyRequests {
		t.Fatalf("same-key different-IP status = %d, want 429 (shared bucket)", w.Code)
	}
}

func TestLimiterPrune(t *testing.T) {
	l := NewLimiter(1, 1)
	clock := time.Unix(1_700_000_000, 0)
	l.now = func() time.Time { return clock }
	for i := 0; i < pruneAbove; i++ {
		l.allow("id-" + strconv.Itoa(i))
	}
	if n := len(l.buckets); n != pruneAbove {
		t.Fatalf("bucket count = %d, want %d", n, pruneAbove)
	}
	clock = clock.Add(pruneIdle + time.Second)
	l.allow("fresh")
	if n := len(l.buckets); n != 1 {
		t.Fatalf("bucket count after prune = %d, want 1 (only the fresh identity)", n)
	}
}

func TestParseProxies(t *testing.T) {
	if _, err := ParseProxies("10.0.0.0/8, nonsense"); err == nil {
		t.Fatal("malformed proxy list accepted")
	}
	p, err := ParseProxies("")
	if err != nil {
		t.Fatal(err)
	}
	if p.Trusted("10.0.0.1:80") {
		t.Fatal("empty proxy list trusts 10.0.0.1")
	}
	p, err = ParseProxies("::1, 192.0.2.0/24")
	if err != nil {
		t.Fatal(err)
	}
	for addr, want := range map[string]bool{
		"[::1]:9090":           true,
		"192.0.2.77:80":        true,
		"198.51.100.1:80":      false,
		"not an address":       false,
		"[::ffff:192.0.2.8]:1": true, // 4-in-6 mapped form of a trusted v4
	} {
		if got := p.Trusted(addr); got != want {
			t.Errorf("Trusted(%q) = %v, want %v", addr, got, want)
		}
	}
}
