package middleware

import (
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// bucket is one identity's token bucket. tokens is the balance as of
// last; both are guarded by the limiter's mutex (the map is the
// contention point anyway, and per-identity locks would only matter
// far beyond this server's request rates).
type bucket struct {
	tokens float64
	last   time.Time
}

// Limiter is a token-bucket rate limiter keyed by caller identity:
// the authenticated API-key name when Auth ran, the RealIP-resolved
// client address otherwise. Each identity accrues rate tokens per
// second up to burst; a request costs one token.
type Limiter struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket

	// now is the clock, swappable by tests.
	now func() time.Time
}

// pruning bounds the bucket map: once it outgrows pruneAbove entries,
// identities idle longer than pruneIdle are dropped on the next
// request (an idle bucket is at full burst anyway, so dropping it is
// behaviorally invisible).
const (
	pruneAbove = 1024
	pruneIdle  = 10 * time.Minute
)

// NewLimiter creates a limiter granting rate requests per second with
// the given burst capacity.
func NewLimiter(rate float64, burst int) *Limiter {
	if burst < 1 {
		burst = 1
	}
	return &Limiter{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// allow spends one token for id. When the bucket is empty it returns
// false and how long until a full token has accrued (the Retry-After
// hint).
func (l *Limiter) allow(id string) (bool, time.Duration) {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[id]
	if !ok {
		if len(l.buckets) >= pruneAbove {
			l.pruneLocked(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[id] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / l.rate
	return false, time.Duration(need * float64(time.Second))
}

func (l *Limiter) pruneLocked(now time.Time) {
	for id, b := range l.buckets {
		if now.Sub(b.last) > pruneIdle {
			delete(l.buckets, id)
		}
	}
}

// RateLimit rejects over-budget requests with 429 and a Retry-After
// hint (seconds, rounded up — a client that waits that long is
// guaranteed one full token). Install after Auth and RealIP so the
// identity is the API-key name when present and the proxy-resolved
// client IP otherwise.
func RateLimit(l *Limiter, exempt ...string) Middleware {
	exemptSet := make(map[string]bool, len(exempt))
	for _, p := range exempt {
		exemptSet[p] = true
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if exemptSet[r.URL.Path] {
				next.ServeHTTP(w, r)
				return
			}
			id := APIKeyNameFrom(r.Context())
			if id == "" {
				id = ClientIPFrom(r.Context())
			}
			if id == "" {
				id = remoteHost(r.RemoteAddr)
			}
			ok, wait := l.allow(id)
			if !ok {
				secs := int(math.Ceil(wait.Seconds()))
				if secs < 1 {
					secs = 1
				}
				w.Header().Set("Retry-After", strconv.Itoa(secs))
				writeError(w, http.StatusTooManyRequests, "rate limit exceeded")
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}
