// Package middleware provides the production HTTP layers an
// internet-facing sgserve deployment needs — request-ID propagation,
// trusted-proxy-aware client IPs, CORS, API-key authentication and
// per-key rate limiting — as composable func(http.Handler)
// http.Handler wrappers with no dependencies outside the standard
// library.
//
// The layers are deliberately independent of internal/serve: they see
// only http.Handler, communicate through request context values, and
// render their own (JSON) error bodies in the same {"error": ...}
// shape the server uses, so clients need a single error decoder.
package middleware

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net"
	"net/http"
	"net/netip"
	"strings"
)

// Middleware wraps an http.Handler with one processing layer.
type Middleware func(http.Handler) http.Handler

// Chain applies mw to h with mw[0] outermost: Chain(h, a, b) serves
// requests through a → b → h.
func Chain(h http.Handler, mw ...Middleware) http.Handler {
	for i := len(mw) - 1; i >= 0; i-- {
		if mw[i] != nil {
			h = mw[i](h)
		}
	}
	return h
}

// ctxKey namespaces this package's context values.
type ctxKey int

const (
	ctxRequestID ctxKey = iota
	ctxClientIP
	ctxAPIKeyName
)

// RequestIDFrom returns the request ID stamped by RequestID ("" if the
// middleware is not installed).
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxRequestID).(string)
	return id
}

// ClientIPFrom returns the client IP resolved by RealIP, falling back
// to the empty string when the middleware is not installed.
func ClientIPFrom(ctx context.Context) string {
	ip, _ := ctx.Value(ctxClientIP).(string)
	return ip
}

// APIKeyNameFrom returns the name of the API key that authenticated
// this request ("" when Auth is not installed or the path was exempt).
func APIKeyNameFrom(ctx context.Context) string {
	name, _ := ctx.Value(ctxAPIKeyName).(string)
	return name
}

// writeError renders the same JSON error shape internal/serve uses,
// without importing it.
func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	// The message is operator-controlled (fixed strings below), so
	// hand-rolling the body avoids a json dependency on the hot 4xx path.
	b := make([]byte, 0, len(msg)+16)
	b = append(b, `{"error":"`...)
	b = append(b, msg...)
	b = append(b, `"}`...)
	b = append(b, '\n')
	w.Write(b)
}

// ---------------------------------------------------------------------
// trusted proxies

// Proxies is a set of CIDR prefixes whose forwarding headers
// (X-Forwarded-For, X-Request-Id) are believed. Connections from
// anywhere else have those headers ignored — a spoofed
// X-Forwarded-For from an untrusted client must not launder its
// identity past the rate limiter.
type Proxies struct {
	prefixes []netip.Prefix
}

// ParseProxies parses a comma-separated list of CIDR prefixes or bare
// IPs ("10.0.0.0/8, 127.0.0.1"). Empty input yields a Proxies that
// trusts nothing.
func ParseProxies(csv string) (*Proxies, error) {
	p := &Proxies{}
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !strings.Contains(part, "/") {
			addr, err := netip.ParseAddr(part)
			if err != nil {
				return nil, err
			}
			p.prefixes = append(p.prefixes, netip.PrefixFrom(addr, addr.BitLen()))
			continue
		}
		pfx, err := netip.ParsePrefix(part)
		if err != nil {
			return nil, err
		}
		p.prefixes = append(p.prefixes, pfx)
	}
	return p, nil
}

// Trusted reports whether remoteAddr ("ip:port" or bare IP) belongs to
// a trusted proxy.
func (p *Proxies) Trusted(remoteAddr string) bool {
	if p == nil || len(p.prefixes) == 0 {
		return false
	}
	host := remoteAddr
	if h, _, err := net.SplitHostPort(remoteAddr); err == nil {
		host = h
	}
	addr, err := netip.ParseAddr(host)
	if err != nil {
		return false
	}
	addr = addr.Unmap()
	for _, pfx := range p.prefixes {
		if pfx.Contains(addr) {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// request IDs

// maxRequestID bounds an inbound X-Request-Id; anything longer (or
// containing unexpected bytes) is replaced, not truncated, so a
// hostile value never reaches the logs.
const maxRequestID = 64

func validRequestID(id string) bool {
	if id == "" || len(id) > maxRequestID {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

func newRequestID() string {
	var b [8]byte
	rand.Read(b[:]) // crypto/rand.Read never fails (panics instead since go1.24; earlier it blocks)
	return hex.EncodeToString(b[:])
}

// RequestID stamps every request with an X-Request-Id — reusing the
// inbound header only when the connection comes from a trusted proxy
// and the value is well-formed, minting a fresh random one otherwise —
// and echoes it on the response so clients and operators can correlate.
func RequestID(proxies *Proxies) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			id := ""
			if proxies.Trusted(r.RemoteAddr) {
				if v := r.Header.Get("X-Request-Id"); validRequestID(v) {
					id = v
				}
			}
			if id == "" {
				id = newRequestID()
			}
			w.Header().Set("X-Request-Id", id)
			r.Header.Set("X-Request-Id", id)
			next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), ctxRequestID, id)))
		})
	}
}

// ---------------------------------------------------------------------
// client IP

// RealIP resolves the client IP: the rightmost X-Forwarded-For entry
// not belonging to a trusted proxy when the connection itself comes
// from one, the connection's remote address otherwise. The result is
// stored in the request context for the rate limiter and access logs.
//
// Walking right-to-left is what makes the header trustworthy: each
// proxy appends the address it accepted the connection from, so the
// first untrusted hop from the right is the real client — everything
// left of it is client-controlled fiction.
func RealIP(proxies *Proxies) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ip := remoteHost(r.RemoteAddr)
			if proxies.Trusted(r.RemoteAddr) {
				if fwd := forwardedClient(r.Header.Values("X-Forwarded-For"), proxies); fwd != "" {
					ip = fwd
				}
			}
			next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), ctxClientIP, ip)))
		})
	}
}

func remoteHost(remoteAddr string) string {
	if h, _, err := net.SplitHostPort(remoteAddr); err == nil {
		return h
	}
	return remoteAddr
}

// forwardedClient walks the X-Forwarded-For chain right to left and
// returns the first address that is not a trusted proxy.
func forwardedClient(headers []string, proxies *Proxies) string {
	var hops []string
	for _, h := range headers {
		for _, part := range strings.Split(h, ",") {
			if part = strings.TrimSpace(part); part != "" {
				hops = append(hops, part)
			}
		}
	}
	for i := len(hops) - 1; i >= 0; i-- {
		if _, err := netip.ParseAddr(hops[i]); err != nil {
			return "" // malformed chain: fall back to the socket address
		}
		if !proxies.Trusted(hops[i]) {
			return hops[i]
		}
	}
	if len(hops) > 0 {
		return hops[0] // every hop trusted: the leftmost is the origin
	}
	return ""
}

// ---------------------------------------------------------------------
// CORS

// CORS answers cross-origin requests for the allowed origins ("*"
// allows any). Preflight OPTIONS requests are answered 204 here and
// never reach the handler chain below — in particular they pass
// unauthenticated, as browsers send preflights without credentials.
func CORS(origins []string) Middleware {
	allowAny := false
	allowed := make(map[string]bool, len(origins))
	for _, o := range origins {
		if o == "*" {
			allowAny = true
		}
		allowed[o] = true
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			origin := r.Header.Get("Origin")
			if origin != "" && (allowAny || allowed[origin]) {
				h := w.Header()
				if allowAny {
					h.Set("Access-Control-Allow-Origin", "*")
				} else {
					h.Set("Access-Control-Allow-Origin", origin)
					h.Add("Vary", "Origin")
				}
				if r.Method == http.MethodOptions {
					h.Set("Access-Control-Allow-Methods", "GET, POST, OPTIONS")
					h.Set("Access-Control-Allow-Headers", "Authorization, Content-Type, X-API-Key, X-Request-Id")
					h.Set("Access-Control-Max-Age", "600")
					w.WriteHeader(http.StatusNoContent)
					return
				}
			}
			next.ServeHTTP(w, r)
		})
	}
}
