package middleware

import (
	"bufio"
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"fmt"
	"net/http"
	"os"
	"strings"
)

// Keyring holds the accepted API keys as SHA-256 digests. Hashing
// before comparison does two jobs: the plaintext keys never sit in
// server memory longer than the load path, and every comparison runs
// over equal-length digests, so subtle.ConstantTimeCompare leaks
// neither content nor length.
type Keyring struct {
	names  []string
	hashes [][sha256.Size]byte
}

// Len reports how many keys the ring holds.
func (k *Keyring) Len() int {
	if k == nil {
		return 0
	}
	return len(k.hashes)
}

// add registers one key. An empty name derives one from the hash so
// rate-limit identities and logs can name the key without revealing it.
func (k *Keyring) add(name, key string) {
	h := sha256.Sum256([]byte(key))
	if name == "" {
		name = "key-" + hex.EncodeToString(h[:4])
	}
	k.names = append(k.names, name)
	k.hashes = append(k.hashes, h)
}

// lookup returns the name of the matching key. Every stored hash is
// compared on every call — no early exit on match — so timing reveals
// only the (public) ring size.
func (k *Keyring) lookup(presented string) (string, bool) {
	h := sha256.Sum256([]byte(presented))
	match := -1
	for i := range k.hashes {
		if subtle.ConstantTimeCompare(h[:], k.hashes[i][:]) == 1 {
			match = i
		}
	}
	if match < 0 {
		return "", false
	}
	return k.names[match], true
}

// LoadKeys reads a keyring from path: one key per line, either
// "name:key" or a bare key, with blank lines and #-comments ignored.
func LoadKeys(path string) (*Keyring, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	k := &Keyring{}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		name, key, found := strings.Cut(text, ":")
		if !found {
			name, key = "", text
		}
		if key = strings.TrimSpace(key); key == "" {
			return nil, fmt.Errorf("middleware: %s:%d: empty API key", path, line)
		}
		k.add(strings.TrimSpace(name), key)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if k.Len() == 0 {
		return nil, fmt.Errorf("middleware: %s holds no API keys", path)
	}
	return k, nil
}

// KeysFromEnv builds a keyring from a comma-separated environment
// variable of "name:key" or bare-key entries. Returns nil (no ring, no
// error) when the variable is unset or empty.
func KeysFromEnv(name string) (*Keyring, error) {
	v := strings.TrimSpace(os.Getenv(name))
	if v == "" {
		return nil, nil
	}
	k := &Keyring{}
	for _, entry := range strings.Split(v, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		kn, key, found := strings.Cut(entry, ":")
		if !found {
			kn, key = "", entry
		}
		if key = strings.TrimSpace(key); key == "" {
			return nil, fmt.Errorf("middleware: $%s holds an empty API key", name)
		}
		k.add(strings.TrimSpace(kn), key)
	}
	if k.Len() == 0 {
		return nil, fmt.Errorf("middleware: $%s holds no API keys", name)
	}
	return k, nil
}

// presentedKey extracts the API key from Authorization: Bearer or
// X-API-Key (Bearer wins when both are present).
func presentedKey(r *http.Request) string {
	if auth := r.Header.Get("Authorization"); auth != "" {
		if key, ok := strings.CutPrefix(auth, "Bearer "); ok {
			return strings.TrimSpace(key)
		}
		return "" // a non-Bearer Authorization header never matches
	}
	return strings.TrimSpace(r.Header.Get("X-API-Key"))
}

// Auth rejects requests that do not present a key from the ring, as
// 401 with a WWW-Authenticate challenge. exempt paths (health probes)
// pass through without credentials. The matched key's name lands in
// the request context for the rate limiter and access logs.
func Auth(keys *Keyring, exempt ...string) Middleware {
	exemptSet := make(map[string]bool, len(exempt))
	for _, p := range exempt {
		exemptSet[p] = true
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if exemptSet[r.URL.Path] {
				next.ServeHTTP(w, r)
				return
			}
			key := presentedKey(r)
			if key == "" {
				w.Header().Set("WWW-Authenticate", `Bearer realm="sgserve"`)
				writeError(w, http.StatusUnauthorized, "missing API key")
				return
			}
			name, ok := keys.lookup(key)
			if !ok {
				w.Header().Set("WWW-Authenticate", `Bearer realm="sgserve", error="invalid_token"`)
				writeError(w, http.StatusUnauthorized, "invalid API key")
				return
			}
			next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), ctxAPIKeyName, name)))
		})
	}
}
