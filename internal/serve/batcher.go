package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"compactsg"
	"compactsg/internal/obs"
)

// ErrClosed is returned by submit after the batcher (or server) has
// begun shutting down. The server distinguishes "this batcher was
// retired by eviction" (it retries against a fresh batcher) from "the
// whole server is closing" (the client gets 503).
var ErrClosed = errors.New("serve: server is shutting down")

// A batcher coalesces concurrent single-point evaluation requests for
// one grid into micro-batches: the first arrival opens a batch, which
// is dispatched to Grid.EvaluateBatch when it reaches maxBatch points
// or when maxWait elapses, whichever comes first. This replaces
// per-request goroutine evaluation with the paper's batched
// decompression (one EvaluateBatch call over the configured worker
// pool and cache blocking), and bounds the extra latency by maxWait.
//
// Liveness contract: the flush loop never blocks on a caller. Every
// per-call result channel is buffered (capacity 1) and delivered with a
// non-blocking send, and calls whose context was cancelled after
// enqueue are dropped from the batch instead of being evaluated — an
// abandoned caller can neither wedge run() nor bill work for an answer
// nobody is waiting on.
type batcher struct {
	grid     *compactsg.Grid
	in       chan evalCall
	maxBatch int
	maxWait  time.Duration
	onFlush  func(batchSize int) // metrics hook, may be nil

	mu       sync.Mutex
	closed   bool
	inflight sync.WaitGroup // submits between accept and enqueue
	done     chan struct{}  // closed when run has drained and exited
}

type evalCall struct {
	ctx context.Context
	x   []float64
	res chan evalResult
	enq time.Time // when submit enqueued the call (queue-wait origin)
}

// evalResult carries the value plus the flush loop's stage timings.
// Timings ride the result channel instead of being written into the
// caller's obs.Span directly: a span is owned by its request goroutine,
// and an abandoned caller may Finish (and recycle) its span while the
// flush loop is still mid-batch — delivering timings by value keeps the
// loop from ever touching a span it does not own.
type evalResult struct {
	v   float64
	err error

	queueWait time.Duration // enqueue -> batch flush decision
	dispatch  time.Duration // flush decision -> EvaluateBatch entry
	eval      time.Duration // EvaluateBatch wall time (shared by the batch)
	batch     int           // points in the dispatched batch
}

// resChanPool recycles the per-call result channels, the only per-submit
// allocation on the coalesced path. A channel is returned to the pool
// only after its caller has received the (single) result run sends, so a
// pooled channel is always empty; channels abandoned on context
// cancellation — where run may still deliver into the buffer — are left
// to the garbage collector instead.
var resChanPool = sync.Pool{New: func() any { return make(chan evalResult, 1) }}

func newBatcher(g *compactsg.Grid, maxBatch int, maxWait time.Duration, onFlush func(int)) *batcher {
	if maxBatch < 1 {
		maxBatch = 1
	}
	b := &batcher{
		grid:     g,
		in:       make(chan evalCall, 4*maxBatch),
		maxBatch: maxBatch,
		maxWait:  maxWait,
		onFlush:  onFlush,
		done:     make(chan struct{}),
	}
	go b.run()
	return b
}

// submit enqueues one point and waits for its value. ctx bounds the
// wait; a call abandoned after enqueue is skipped by the flush loop
// (see run), so the batch result for the remaining callers is
// unaffected. When ctx carries an obs.Span, the flush loop's timings
// (queue wait, dispatch, eval, batch size) are recorded on it here, on
// the owning goroutine.
func (b *batcher) submit(ctx context.Context, x []float64) (float64, error) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return 0, ErrClosed
	}
	b.inflight.Add(1)
	b.mu.Unlock()

	res := resChanPool.Get().(chan evalResult)
	call := evalCall{ctx: ctx, x: x, res: res, enq: time.Now()}
	select {
	case b.in <- call:
		b.inflight.Done()
	case <-ctx.Done():
		b.inflight.Done()
		resChanPool.Put(res) // never enqueued: run cannot send into it
		return 0, ctx.Err()
	}
	select {
	case r := <-call.res:
		resChanPool.Put(res) // drained: run sends at most once per call
		if sp := obs.FromContext(ctx); sp != nil {
			sp.Add(obs.StageQueueWait, r.queueWait)
			sp.Add(obs.StageDispatch, r.dispatch)
			sp.Add(obs.StageEval, r.eval)
			sp.SetBatchSize(r.batch)
		}
		return r.v, r.err
	case <-ctx.Done():
		// Abandoned: run may still deliver into the buffer, so this
		// channel must not be pooled. The wait so far is still queue
		// time from the request's point of view.
		if sp := obs.FromContext(ctx); sp != nil {
			sp.Add(obs.StageQueueWait, time.Since(call.enq))
		}
		return 0, ctx.Err()
	}
}

// close stops the batcher: new submits fail with ErrClosed, everything
// already enqueued is flushed (callers get their values), then the run
// goroutine exits. Safe to call more than once and from several
// goroutines; every call blocks until the drain is complete.
func (b *batcher) close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.done
		return
	}
	b.closed = true
	b.mu.Unlock()
	b.inflight.Wait() // no sender is between accept and enqueue now
	close(b.in)
	<-b.done
}

// deliver hands a result to one caller without ever blocking the flush
// loop. The channel has capacity 1 and run sends at most once per call,
// so the default branch is unreachable today; it is kept so no future
// refactor can reintroduce the lost-wakeup wedge.
func deliver(c evalCall, r evalResult) {
	select {
	case c.res <- r:
	default:
	}
}

func (b *batcher) run() {
	defer close(b.done)
	var (
		calls []evalCall
		live  []evalCall
		xs    [][]float64
		out   []float64
	)
	// One timer for the life of the loop (go 1.22 semantics: Stop/drain
	// before every Reset so a stale fire can never cut a batch short).
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		first, ok := <-b.in
		if !ok {
			return
		}
		calls = append(calls[:0], first)
		timer.Reset(b.maxWait)
		fired := false
	collect:
		for len(calls) < b.maxBatch {
			select {
			case c, ok := <-b.in:
				if !ok {
					break collect // closed: flush what we have, exit on next recv
				}
				calls = append(calls, c)
			case <-timer.C:
				fired = true
				break collect
			}
		}
		if !fired && !timer.Stop() {
			<-timer.C
		}

		// The batch is closed: everything enqueued before this instant
		// was waiting in the queue; everything after is dispatch cost.
		flushed := time.Now()

		// Drop calls whose caller already gave up: their submit has
		// returned ctx.Err(), nobody reads the result, and evaluating
		// the point would be wasted batch work.
		live = live[:0]
		xs = xs[:0]
		for _, c := range calls {
			if c.ctx != nil && c.ctx.Err() != nil {
				continue
			}
			live = append(live, c)
			xs = append(xs, c.x)
		}
		if len(live) == 0 {
			continue
		}

		if cap(out) < len(live) {
			out = make([]float64, len(live))
		}
		evalStart := time.Now()
		res, err := b.grid.EvaluateBatch(xs, out[:len(live)])
		evalDur := time.Since(evalStart)
		dispatch := evalStart.Sub(flushed)
		for k, c := range live {
			r := evalResult{
				queueWait: flushed.Sub(c.enq),
				dispatch:  dispatch,
				eval:      evalDur,
				batch:     len(live),
			}
			if err != nil {
				r.err = err
			} else {
				r.v = res[k]
			}
			deliver(c, r)
		}
		if b.onFlush != nil {
			b.onFlush(len(live))
		}
	}
}
