package serve

import (
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"compactsg"
	"compactsg/internal/core"
)

// writeScaledGrid writes a compressed grid file of scale·(x0+x1+…) so
// swapped versions are distinguishable by value.
func writeScaledGrid(t *testing.T, dir, name string, dim, level int, scale float64) (string, *compactsg.Grid) {
	t.Helper()
	g, err := compactsg.New(dim, level)
	if err != nil {
		t.Fatal(err)
	}
	g.Compress(func(x []float64) float64 {
		s := 0.0
		for _, v := range x {
			s += v
		}
		return scale * s
	})
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, g
}

func TestSwapInstallsNewVersionAndRejectsStale(t *testing.T) {
	dir := t.TempDir()
	p1, ref1 := writeScaledGrid(t, dir, "v1.sg", 2, 3, 1)
	p2, ref2 := writeScaledGrid(t, dir, "v2.sg", 2, 3, 2)

	s := NewGridSet(4)
	var swaps []uint64
	s.OnSwap = func(name string, v uint64) { swaps = append(swaps, v) }
	if err := s.Add("g", p1); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.25, 0.5}
	g, err := s.Get("g")
	if err != nil {
		t.Fatal(err)
	}
	if want, _ := ref1.Evaluate(x); mustEval(t, g, x) != want {
		t.Fatal("initial load serves wrong file")
	}
	if v := s.Version("g"); v != 0 {
		t.Fatalf("static version = %d, want 0", v)
	}

	// Auto-bump swap installs version 1 and the new values serve.
	v, err := s.Swap("g", p2, 0)
	if err != nil || v != 1 {
		t.Fatalf("Swap = %d, %v; want 1, nil", v, err)
	}
	g, err = s.Get("g")
	if err != nil {
		t.Fatal(err)
	}
	if want, _ := ref2.Evaluate(x); mustEval(t, g, x) != want {
		t.Fatal("swap did not install the new file")
	}

	// Stale explicit versions are rejected and change nothing.
	if _, err := s.Swap("g", p1, 1); !errors.Is(err, ErrStaleSwap) {
		t.Fatalf("re-swap version 1: err = %v, want ErrStaleSwap", err)
	}
	if v := s.Version("g"); v != 1 {
		t.Fatalf("version after stale swap = %d, want 1", v)
	}
	// A gap is fine; monotonicity is all that matters.
	if v, err := s.Swap("g", p1, 7); err != nil || v != 7 {
		t.Fatalf("Swap(7) = %d, %v", v, err)
	}
	// Swap may register brand-new names.
	if v, err := s.Swap("fresh", p2, 0); err != nil || v != 1 {
		t.Fatalf("Swap(fresh) = %d, %v", v, err)
	}
	if _, err := s.Get("fresh"); err != nil {
		t.Fatal(err)
	}
	if got := s.Versions(); got["g"] != 7 || got["fresh"] != 1 {
		t.Fatalf("Versions() = %v", got)
	}
	if len(swaps) != 3 {
		t.Fatalf("OnSwap fired %d times, want 3", len(swaps))
	}
	// A bad file never displaces the serving version.
	bad := filepath.Join(dir, "bad.sg")
	os.WriteFile(bad, []byte("junk"), 0o644)
	if _, err := s.Swap("g", bad, 0); err == nil {
		t.Fatal("swap of a corrupt file succeeded")
	}
	if v := s.Version("g"); v != 7 {
		t.Fatalf("version after failed swap = %d, want 7", v)
	}
	s.Purge()
}

func mustEval(t *testing.T, g *compactsg.Grid, x []float64) float64 {
	t.Helper()
	v, err := g.Evaluate(x)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestSwapOldVersionServesLeases: a lease acquired before the swap
// keeps reading the old instance, and the old instance retires (and
// unmaps) only after that lease releases.
func TestSwapOldVersionServesLeases(t *testing.T) {
	baseline := core.ActiveMappings()
	dir := t.TempDir()
	p1, ref1 := writeScaledGrid(t, dir, "v1.sg", 2, 3, 1)
	p2, ref2 := writeScaledGrid(t, dir, "v2.sg", 2, 3, 2)

	s := NewGridSet(4)
	retired := make(chan string, 4)
	s.OnRetire = func(name string, _ *compactsg.Grid) { retired <- name }
	if err := s.Add("g", p1); err != nil {
		t.Fatal(err)
	}
	lease, err := s.Acquire(t.Context(), "g")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Swap("g", p2, 0); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.75, 0.25}
	// The lease still reads version 0's values...
	if want, _ := ref1.Evaluate(x); mustEval(t, lease.Grid(), x) != want {
		t.Fatal("leased instance changed under the swap")
	}
	// ...while new acquires see version 1.
	if g, _ := s.Get("g"); mustEval(t, g, x) != mustEvalRef(t, ref2, x) {
		t.Fatal("fresh Get still serves the displaced version")
	}
	select {
	case name := <-retired:
		t.Fatalf("instance %q retired while leased", name)
	case <-time.After(20 * time.Millisecond):
	}
	lease.Release()
	select {
	case <-retired:
	case <-time.After(2 * time.Second):
		t.Fatal("displaced instance never retired after the last release")
	}
	s.Purge()
	if n := core.ActiveMappings(); n != baseline {
		t.Fatalf("%d file mappings leaked", n-baseline)
	}
}

func mustEvalRef(t *testing.T, g *compactsg.Grid, x []float64) float64 {
	t.Helper()
	v, err := g.Evaluate(x)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestSwapDiscardsSupersededInflightLoad closes the load/swap race: a
// singleflight load that was reading the old file when a swap installed
// a newer version must discard its result instead of rolling back.
func TestSwapDiscardsSupersededInflightLoad(t *testing.T) {
	baseline := core.ActiveMappings()
	dir := t.TempDir()
	p1, _ := writeScaledGrid(t, dir, "v1.sg", 2, 3, 1)
	p2, ref2 := writeScaledGrid(t, dir, "v2.sg", 2, 3, 2)

	s := NewGridSet(4)
	if err := s.Add("g", p1); err != nil {
		t.Fatal(err)
	}
	// Gate only the FIRST load (the Acquire below); the swap's own load
	// must pass straight through.
	gate := make(chan struct{})
	first := true
	var mu sync.Mutex
	s.LoadHook = func(string) error {
		mu.Lock()
		isFirst := first
		first = false
		mu.Unlock()
		if isFirst {
			<-gate
		}
		return nil
	}

	type got struct {
		v   float64
		err error
	}
	done := make(chan got, 1)
	go func() {
		g, err := s.Get("g") // leads the load of p1, parked on the gate
		if err != nil {
			done <- got{0, err}
			return
		}
		v, err := g.Evaluate([]float64{0.25, 0.5})
		done <- got{v, err}
	}()
	// Wait until that load is in flight, then swap.
	for {
		s.mu.RLock()
		_, inflight := s.loading["g"]
		s.mu.RUnlock()
		if inflight {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Swap("g", p2, 0); err != nil {
		t.Fatal(err)
	}
	close(gate) // release the superseded load

	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	if want := mustEvalRef(t, ref2, []float64{0.25, 0.5}); res.v != want {
		t.Fatalf("Get after racing swap = %g, want the swapped version's %g", res.v, want)
	}
	if v := s.Version("g"); v != 1 {
		t.Fatalf("version = %d, want 1", v)
	}
	s.Purge()
	if n := core.ActiveMappings(); n != baseline {
		t.Fatalf("%d file mappings leaked (superseded load not closed?)", n-baseline)
	}
}

// TestOnlineObserveRefineSwapEndToEnd drives the full write path over
// HTTP: observations build a model, refine exports + hot-swaps it, and
// subsequent evals serve the new version.
func TestOnlineObserveRefineSwapEndToEnd(t *testing.T) {
	baseline := core.ActiveMappings()
	dir := t.TempDir()
	s := New(Config{
		Coalesce:  true,
		BatchWait: time.Millisecond,
		Online: OnlineConfig{
			Enabled:     true,
			InitLevel:   2,
			MaxLevel:    6,
			RefineEps:   1e-6,
			RefineMax:   256,
			SnapshotDir: dir,
		},
	})
	defer s.Close()
	h := s.Handler()
	f := func(x []float64) float64 { return x[0] + 2*x[1] }

	// Round 1: observe the root point only. It commits alone (no
	// parents) and version 1 installs.
	rec := postJSON(t, h, "/v1/grids/live/observe", observeRequest{
		Points: [][]float64{{0.5, 0.5}},
		Values: []float64{f([]float64{0.5, 0.5})},
	})
	if rec.Code != 200 {
		t.Fatalf("observe status %d: %s", rec.Code, rec.Body)
	}
	var or observeResponse
	json.Unmarshal(rec.Body.Bytes(), &or)
	if or.Applied != 1 || or.Awaiting != 4 {
		t.Fatalf("observe response %+v: want applied 1, the 4 level-1 seeds awaiting", or)
	}

	rec = postJSON(t, h, "/v1/grids/live/refine", struct{}{})
	if rec.Code != 200 {
		t.Fatalf("refine status %d: %s", rec.Code, rec.Body)
	}
	var rr RefineResult
	json.Unmarshal(rec.Body.Bytes(), &rr)
	if !rr.Swapped || rr.Version != 1 || rr.Committed != 1 {
		t.Fatalf("refine round 1 = %+v; want swapped version 1", rr)
	}
	if len(rr.Need) != 4 {
		t.Fatalf("need = %v, want the 4 awaiting seeds", rr.Need)
	}

	// The served interpolant now matches the model at the center.
	var er evalResponse
	rec = postJSON(t, h, "/v1/eval", evalRequest{Grid: "live", Point: []float64{0.5, 0.5}})
	if rec.Code != 200 {
		t.Fatalf("eval status %d: %s", rec.Code, rec.Body)
	}
	json.Unmarshal(rec.Body.Bytes(), &er)
	if want := f([]float64{0.5, 0.5}); math.Abs(er.Value-want) > 1e-12 {
		t.Fatalf("eval after v1 = %g, want %g", er.Value, want)
	}

	// Round 2: answer the steering list; version 2 must serve the full
	// level-2 interpolant.
	vals := make([]float64, len(rr.Need))
	for k, x := range rr.Need {
		vals[k] = f(x)
	}
	rec = postJSON(t, h, "/v1/grids/live/observe", observeRequest{Points: rr.Need, Values: vals})
	if rec.Code != 200 {
		t.Fatalf("observe status %d: %s", rec.Code, rec.Body)
	}
	rec = postJSON(t, h, "/v1/grids/live/refine", struct{}{})
	json.Unmarshal(rec.Body.Bytes(), &rr)
	if !rr.Swapped || rr.Version != 2 {
		t.Fatalf("refine round 2 = %+v; want swapped version 2", rr)
	}
	for _, x := range [][]float64{{0.25, 0.5}, {0.75, 0.5}, {0.5, 0.25}, {0.5, 0.75}} {
		rec = postJSON(t, h, "/v1/eval", evalRequest{Grid: "live", Point: x})
		json.Unmarshal(rec.Body.Bytes(), &er)
		if want := f(x); math.Abs(er.Value-want) > 1e-12 {
			t.Fatalf("eval(%v) after v2 = %g, want %g", x, er.Value, want)
		}
	}

	// An idle refine (nothing observed, nothing committed) must NOT
	// burn a version.
	rec = postJSON(t, h, "/v1/grids/live/refine", struct{}{})
	json.Unmarshal(rec.Body.Bytes(), &rr)
	if rr.Swapped || rr.Version != 2 {
		t.Fatalf("idle refine = %+v; want no swap, version 2", rr)
	}

	// Version surfaces in /v1/grids and /healthz?detail=1.
	req := httptest_Get(t, h, "/v1/grids")
	var gr gridsResponse
	json.Unmarshal(req.Body.Bytes(), &gr)
	found := false
	for _, gi := range gr.Grids {
		if gi.Name == "live" {
			found = true
			if gi.Version != 2 {
				t.Fatalf("/v1/grids version = %d, want 2", gi.Version)
			}
		}
	}
	if !found {
		t.Fatal("live grid missing from /v1/grids")
	}
	hz := httptest_Get(t, h, "/healthz?detail=1")
	var hd struct {
		Online   bool              `json:"online"`
		Versions map[string]uint64 `json:"versions"`
	}
	json.Unmarshal(hz.Body.Bytes(), &hd)
	if !hd.Online || hd.Versions["live"] != 2 {
		t.Fatalf("healthz detail = %s", hz.Body)
	}

	// Re-observing the center with a new value and refining installs
	// version 3 whose interpolant reflects it.
	rec = postJSON(t, h, "/v1/grids/live/observe", observeRequest{
		Points: [][]float64{{0.5, 0.5}},
		Values: []float64{9.0},
	})
	if rec.Code != 200 {
		t.Fatalf("re-observe status %d: %s", rec.Code, rec.Body)
	}
	rec = postJSON(t, h, "/v1/grids/live/refine", struct{}{})
	json.Unmarshal(rec.Body.Bytes(), &rr)
	if !rr.Swapped || rr.Version != 3 {
		t.Fatalf("refine round 3 = %+v; want swapped version 3", rr)
	}
	rec = postJSON(t, h, "/v1/eval", evalRequest{Grid: "live", Point: []float64{0.5, 0.5}})
	json.Unmarshal(rec.Body.Bytes(), &er)
	if math.Abs(er.Value-9.0) > 1e-12 {
		t.Fatalf("eval after v3 = %g, want the re-observed 9.0", er.Value)
	}

	// Only the current snapshot file remains in the dir (displaced
	// versions are pruned; their mappings survived until retirement).
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "live.v3.sg" {
		names := make([]string, len(ents))
		for k, e := range ents {
			names[k] = e.Name()
		}
		t.Fatalf("snapshot dir holds %v, want [live.v3.sg]", names)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for core.ActiveMappings() != baseline {
		if time.Now().After(deadline) {
			t.Fatalf("%d file mappings leaked after Close", core.ActiveMappings()-baseline)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestOnlineValidation(t *testing.T) {
	s := New(Config{Online: OnlineConfig{Enabled: true, InitLevel: 2, MaxLevel: 4, SnapshotDir: t.TempDir(), MaxPoints: 64}})
	defer s.Close()
	h := s.Handler()

	cases := []struct {
		name   string
		url    string
		body   any
		status int
	}{
		{"bad name", "/v1/grids/..sneaky/observe", observeRequest{Points: [][]float64{{0.5}}, Values: []float64{1}}, 400},
		{"bad char", "/v1/grids/a%2Fb/observe", observeRequest{Points: [][]float64{{0.5}}, Values: []float64{1}}, 400},
		{"no points", "/v1/grids/m/observe", observeRequest{}, 400},
		{"count mismatch", "/v1/grids/m/observe", observeRequest{Points: [][]float64{{0.5}}, Values: []float64{1, 2}}, 400},
		{"refine unknown", "/v1/grids/nope/refine", struct{}{}, 404},
	}
	for _, c := range cases {
		rec := postJSON(t, h, c.url, c.body)
		if rec.Code != c.status {
			t.Errorf("%s: status %d, want %d (body %s)", c.name, rec.Code, c.status, rec.Body)
		}
	}

	// Model dimensionality is pinned by the first observation.
	rec := postJSON(t, h, "/v1/grids/m/observe", observeRequest{Points: [][]float64{{0.5, 0.5}}, Values: []float64{1}})
	if rec.Code != 200 {
		t.Fatalf("observe: %d %s", rec.Code, rec.Body)
	}
	rec = postJSON(t, h, "/v1/grids/m/observe", observeRequest{Points: [][]float64{{0.5, 0.5, 0.5}}, Values: []float64{1}})
	if rec.Code != 400 {
		t.Fatalf("dim change accepted: %d %s", rec.Code, rec.Body)
	}

	// The point cap answers 507.
	big := make([][]float64, 70)
	vals := make([]float64, 70)
	for k := range big {
		big[k] = []float64{0.5, 0.5}
		vals[k] = 1
	}
	rec = postJSON(t, h, "/v1/grids/m/observe", observeRequest{Points: big, Values: vals})
	if rec.Code != 507 {
		t.Fatalf("cap overflow: status %d, want 507 (body %s)", rec.Code, rec.Body)
	}

	// Observe/refine are 404 when online mode is off.
	off := New(Config{})
	defer off.Close()
	rec = postJSON(t, off.Handler(), "/v1/grids/m/observe", observeRequest{Points: [][]float64{{0.5}}, Values: []float64{1}})
	if rec.Code != 404 {
		t.Fatalf("observe on offline server: status %d, want 404", rec.Code)
	}
}

// httptest_Get issues a GET against the handler.
func httptest_Get(t *testing.T, h http.Handler, url string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	return rec
}
