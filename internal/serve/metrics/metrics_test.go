package metrics

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndVec(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("reqs_total", "total requests")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	v := r.NewCounterVec("errs_total", "errors", "handler")
	v.With("eval").Add(2)
	v.With("batch").Inc()
	if got := v.With("eval").Value(); got != 2 {
		t.Fatalf("vec child = %d, want 2", got)
	}

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE reqs_total counter",
		"reqs_total 5",
		"# HELP errs_total errors",
		`errs_total{handler="batch"} 1`,
		`errs_total{handler="eval"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Children must be sorted by label value for a stable exposition.
	if strings.Index(out, `handler="batch"`) > strings.Index(out, `handler="eval"`) {
		t.Errorf("vec children not sorted:\n%s", out)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("resident", "resident grids")
	g.Set(3)
	g.Add(-1)
	if g.Value() != 2 {
		t.Fatalf("gauge = %g, want 2", g.Value())
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "resident 2\n") {
		t.Errorf("exposition missing gauge value:\n%s", sb.String())
	}
}

func TestHistogramBucketsAndExposition(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-2.565) > 1e-12 {
		t.Fatalf("sum = %g, want 2.565", h.Sum())
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.01"} 2`, // cumulative: 0.005 and 0.01 (le is inclusive)
		`lat_seconds_bucket{le="0.1"} 3`,
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_sum 2.565",
		"lat_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramVec(t *testing.T) {
	r := NewRegistry()
	v := r.NewHistogramVec("lat", "latency", "handler", []float64{1, 2})
	v.With("a").Observe(0.5)
	v.With("b").Observe(3)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`lat_bucket{handler="a",le="1"} 1`,
		`lat_bucket{handler="b",le="2"} 0`,
		`lat_bucket{handler="b",le="+Inf"} 1`,
		`lat_count{handler="a"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8}, "")
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", h.Quantile(0.5))
	}
	// 100 observations uniform in (0,1]: all land in the first bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	if q := h.Quantile(0.5); math.Abs(q-0.5) > 1e-9 {
		t.Errorf("p50 = %g, want 0.5 (interpolated)", q)
	}
	if q := h.Quantile(1); q != 1 {
		t.Errorf("p100 = %g, want 1", q)
	}
	h.Observe(100) // above the last bound → clamped to it
	if q := h.Quantile(1); q != 8 {
		t.Errorf("p100 with overflow obs = %g, want 8", q)
	}
}

func TestHistogramQuantileCapped(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8}, "")
	if _, capped := h.QuantileCapped(0.5); capped {
		t.Error("empty histogram reported capped")
	}
	h.Observe(0.5)
	if v, capped := h.QuantileCapped(0.5); capped || math.Abs(v-0.5) > 1e-9 {
		t.Errorf("in-range p50 = (%g, %v), want (0.5, false)", v, capped)
	}
	// Flood the overflow bucket: the median now lands past the last
	// bound, which Quantile silently caps but QuantileCapped flags.
	for i := 0; i < 10; i++ {
		h.Observe(100)
	}
	v, capped := h.QuantileCapped(0.5)
	if !capped {
		t.Fatal("overflow-bucket median not reported as capped")
	}
	if v != 8 {
		t.Errorf("capped value = %g, want last bound 8", v)
	}
	if q := h.Quantile(0.5); q != 8 {
		t.Errorf("Quantile = %g, want 8 (same value, no signal)", q)
	}
	// A quantile still inside the real buckets stays uncapped
	// (rank 0.05*11 = 0.55 interpolates within the first bucket).
	if v, capped := h.QuantileCapped(0.05); capped || math.Abs(v-0.55) > 1e-9 {
		t.Errorf("p5 = (%g, %v), want (0.55, false)", v, capped)
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c", "c")
	h := r.NewHistogram("h", "h", DefSizeBuckets)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 50))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x", "x").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x 1") {
		t.Errorf("body missing metric:\n%s", rec.Body.String())
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewCounter("dup", "second")
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.NewCounterVec("e", "e", "k").With(`a"b\c`).Inc()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `e{k="a\"b\\c"} 1`) {
		t.Errorf("label not escaped:\n%s", sb.String())
	}
}
