// Package metrics is a minimal, dependency-free instrumentation layer
// for the sparse grid evaluation server: monotonic counters, gauges and
// fixed-bucket histograms registered in a Registry that renders the
// Prometheus text exposition format (version 0.0.4).
//
// The package exists so cmd/sgserve can expose GET /metrics without
// pulling a client library into a stdlib-only module. It implements the
// small subset the server needs — no summaries, no timestamps, one
// optional label per metric family — and all hot-path operations
// (Counter.Add, Histogram.Observe) are lock-free atomics, safe for
// concurrent use from every request handler.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// A Registry holds metric families in registration order and renders
// them in the Prometheus text format.
type Registry struct {
	mu       sync.Mutex
	families []family
	names    map[string]bool
}

type family interface {
	name() string
	write(w io.Writer)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) register(f family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[f.name()] {
		panic("metrics: duplicate registration of " + f.name())
	}
	r.names[f.name()] = true
	r.families = append(r.families, f)
}

// WritePrometheus renders every registered family to w.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := append([]family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		f.write(w)
	}
}

// Handler returns an http.Handler serving the exposition text.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// ---------------------------------------------------------------------
// Counter

// A Counter is a monotonically increasing uint64.
type Counter struct {
	n      atomic.Uint64
	labels string // pre-rendered {k="v"} or ""
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.n.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

type counterFamily struct {
	fname, help string
	single      *Counter // nil for a vec
	labels      []string
	mu          sync.Mutex
	children    map[string]*Counter
}

func (f *counterFamily) name() string { return f.fname }

func (f *counterFamily) write(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", f.fname, f.help, f.fname)
	if f.single != nil {
		fmt.Fprintf(w, "%s %d\n", f.fname, f.single.Value())
		return
	}
	for _, c := range f.sorted() {
		fmt.Fprintf(w, "%s%s %d\n", f.fname, c.labels, c.Value())
	}
}

func (f *counterFamily) sorted() []*Counter {
	f.mu.Lock()
	defer f.mu.Unlock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Counter, len(keys))
	for i, k := range keys {
		out[i] = f.children[k]
	}
	return out
}

// NewCounter registers and returns an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(&counterFamily{fname: name, help: help, single: c})
	return c
}

// A CounterVec is a counter family partitioned by one or more labels.
type CounterVec struct{ f *counterFamily }

// NewCounterVec registers a counter family with the given label names
// (at least one).
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic("metrics: NewCounterVec needs at least one label")
	}
	f := &counterFamily{fname: name, help: help, labels: labels, children: make(map[string]*Counter)}
	r.register(f)
	return &CounterVec{f: f}
}

// With returns (creating on first use) the child for the label values,
// given in registration order.
func (v *CounterVec) With(values ...string) *Counter {
	key := childKey(v.f.fname, v.f.labels, values)
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	c, ok := v.f.children[key]
	if !ok {
		c = &Counter{labels: labelPairs(v.f.labels, values)}
		v.f.children[key] = c
	}
	return c
}

// ---------------------------------------------------------------------
// Gauge

// A Gauge is a float64 that can go up and down.
type Gauge struct {
	bits   atomic.Uint64
	labels string
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

type gaugeFamily struct {
	fname, help string
	g           *Gauge // nil for a vec
	labels      []string
	mu          sync.Mutex
	children    map[string]*Gauge
}

func (f *gaugeFamily) name() string { return f.fname }

func (f *gaugeFamily) write(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", f.fname, f.help, f.fname)
	if f.g != nil {
		fmt.Fprintf(w, "%s %s\n", f.fname, formatFloat(f.g.Value()))
		return
	}
	for _, g := range f.sorted() {
		fmt.Fprintf(w, "%s%s %s\n", f.fname, g.labels, formatFloat(g.Value()))
	}
}

func (f *gaugeFamily) sorted() []*Gauge {
	f.mu.Lock()
	defer f.mu.Unlock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Gauge, len(keys))
	for i, k := range keys {
		out[i] = f.children[k]
	}
	return out
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&gaugeFamily{fname: name, help: help, g: g})
	return g
}

// A GaugeVec is a gauge family partitioned by one or more labels.
type GaugeVec struct{ f *gaugeFamily }

// NewGaugeVec registers a gauge family with the given label names (at
// least one).
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic("metrics: NewGaugeVec needs at least one label")
	}
	f := &gaugeFamily{fname: name, help: help, labels: labels, children: make(map[string]*Gauge)}
	r.register(f)
	return &GaugeVec{f: f}
}

// With returns (creating on first use) the child for the label values,
// given in registration order.
func (v *GaugeVec) With(values ...string) *Gauge {
	key := childKey(v.f.fname, v.f.labels, values)
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	g, ok := v.f.children[key]
	if !ok {
		g = &Gauge{labels: labelPairs(v.f.labels, values)}
		v.f.children[key] = g
	}
	return g
}

// ---------------------------------------------------------------------
// Histogram

// A Histogram counts observations into fixed cumulative buckets.
type Histogram struct {
	bounds  []float64 // strictly increasing upper bounds
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	total   atomic.Uint64
	labels  string
}

// DefLatencyBuckets spans 10µs .. 2.5s, the useful range for a
// loopback evaluation server.
var DefLatencyBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5,
}

// DefSizeBuckets is a power-of-two ladder for batch sizes.
var DefSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// DefStageBuckets spans 1µs .. 2.5s: request stages (JSON decode,
// validation, queue wait, dispatch, kernel time) run two decades
// faster than whole requests, so the per-stage histograms need finer
// low-end resolution than DefLatencyBuckets.
var DefStageBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5,
}

// DefLoadBuckets spans 100µs .. 30s, the useful range for grid file
// loads (read + decode), which run from small test grids on a warm
// page cache to multi-GB level-11 grids on cold disk.
var DefLoadBuckets = []float64{
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30,
}

func newHistogram(bounds []float64, labels string) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1), // +Inf overflow bucket
		labels: labels,
	}
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the buckets by
// linear interpolation within the containing bucket; observations above
// the last bound report the last bound. It returns 0 with no data.
//
// Callers that gate on the result (sgstress -assert-hot-p50) should use
// QuantileCapped instead: a quantile landing in the +Inf overflow
// bucket is silently capped here, so arbitrarily slow data can still
// "pass" a latency bound equal to the last bucket bound.
func (h *Histogram) Quantile(q float64) float64 {
	v, _ := h.QuantileCapped(q)
	return v
}

// QuantileCapped is Quantile with an explicit cap signal: capped is
// true when the requested quantile lands in the +Inf overflow bucket,
// meaning the true value is >= the last bound and the returned value is
// only a lower bound, not an estimate.
func (h *Histogram) QuantileCapped(q float64) (v float64, capped bool) {
	n := h.total.Load()
	if n == 0 {
		return 0, false
	}
	rank := q * float64(n)
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			if i == len(h.bounds) {
				// Overflow bucket: all we know is v >= last bound.
				return h.bounds[len(h.bounds)-1], true
			}
			hi := h.bounds[i]
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + frac*(hi-lo), false
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1], true
}

type histogramFamily struct {
	fname, help string
	single      *Histogram
	labels      []string
	mu          sync.Mutex
	children    map[string]*Histogram
}

func (f *histogramFamily) name() string { return f.fname }

func (f *histogramFamily) write(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", f.fname, f.help, f.fname)
	if f.single != nil {
		writeHistogram(w, f.fname, f.single, "")
		return
	}
	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	hs := make([]*Histogram, len(keys))
	for i, k := range keys {
		hs[i] = f.children[k]
	}
	f.mu.Unlock()
	for _, h := range hs {
		writeHistogram(w, f.fname, h, h.labels)
	}
}

func writeHistogram(w io.Writer, name string, h *Histogram, labels string) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabels(labels, "le", formatFloat(b)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabels(labels, "le", "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count())
}

// NewHistogram registers and returns an unlabeled histogram with the
// given bucket upper bounds (an implicit +Inf bucket is appended).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(bounds, "")
	r.register(&histogramFamily{fname: name, help: help, single: h})
	return h
}

// A HistogramVec is a histogram family partitioned by one or more
// labels.
type HistogramVec struct {
	f      *histogramFamily
	bounds []float64
}

// NewHistogramVec registers a histogram family with the given label
// names (at least one). bounds precede the labels' variadic tail, so
// the signature stays compatible with single-label call sites.
func (r *Registry) NewHistogramVec(name, help, label string, bounds []float64, moreLabels ...string) *HistogramVec {
	labels := append([]string{label}, moreLabels...)
	f := &histogramFamily{fname: name, help: help, labels: labels, children: make(map[string]*Histogram)}
	r.register(f)
	return &HistogramVec{f: f, bounds: append([]float64(nil), bounds...)}
}

// With returns (creating on first use) the child for the label values,
// given in registration order.
func (v *HistogramVec) With(values ...string) *Histogram {
	key := childKey(v.f.fname, v.f.labels, values)
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	h, ok := v.f.children[key]
	if !ok {
		h = newHistogram(v.bounds, labelPairs(v.f.labels, values))
		v.f.children[key] = h
	}
	return h
}

// ---------------------------------------------------------------------
// helpers

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelPairs renders a full label set {k1="v1",k2="v2",...}.
func labelPairs(names, values []string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// childKey builds the map key for one labeled child and enforces the
// label-arity contract at the call site that violated it.
func childKey(fname string, names, values []string) string {
	if len(values) != len(names) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", fname, len(names), len(values)))
	}
	return strings.Join(values, "\x00")
}

// mergeLabels appends an extra pair to a pre-rendered label set.
func mergeLabels(labels, name, value string) string {
	extra := name + `="` + escapeLabel(value) + `"`
	if labels == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(labels, "}") + "," + extra + "}"
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
