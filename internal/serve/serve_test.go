package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"compactsg"
	"compactsg/internal/workload"
)

// writeGrid compresses the parabola workload into a grid file and
// returns its path plus an in-memory reference grid.
func writeGrid(t *testing.T, dir string, dim, level int) (string, *compactsg.Grid) {
	t.Helper()
	g, err := compactsg.New(dim, level)
	if err != nil {
		t.Fatal(err)
	}
	g.Compress(workload.Parabola.F)
	path := filepath.Join(dir, fmt.Sprintf("d%dl%d.sg", dim, level))
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, g
}

func TestGridSetLRU(t *testing.T) {
	dir := t.TempDir()
	paths := make(map[string]string)
	for _, name := range []string{"a", "b", "c"} {
		p, _ := writeGrid(t, filepath.Join(dir), 2, 3+len(name)) // distinct files
		np := filepath.Join(dir, name+".sg")
		if err := os.Rename(p, np); err != nil {
			t.Fatal(err)
		}
		paths[name] = np
	}

	var evicted []string
	s := NewGridSet(2)
	s.OnEvict = func(name string, _ *compactsg.Grid) { evicted = append(evicted, name) }
	for name, p := range paths {
		if err := s.Add(name, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Add("a", paths["a"]); err == nil {
		t.Fatal("duplicate Add succeeded")
	}

	ga, err := s.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("b"); err != nil {
		t.Fatal(err)
	}
	if n := s.ResidentCount(); n != 2 {
		t.Fatalf("resident = %d, want 2", n)
	}
	// Touch a so b is the LRU victim when c loads.
	if g2, err := s.Get("a"); err != nil || g2 != ga {
		t.Fatalf("re-Get(a) = %v, %v; want cached instance", g2, err)
	}
	if _, err := s.Get("c"); err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted = %v, want [b]", evicted)
	}
	// b's metadata survives eviction; b reloads on demand.
	for _, gi := range s.Info() {
		if gi.Name == "b" {
			if gi.Resident {
				t.Error("b still marked resident")
			}
			if gi.Points == 0 {
				t.Error("b metadata lost on eviction")
			}
		}
	}
	if _, err := s.Get("b"); err != nil {
		t.Fatal(err)
	}

	if _, err := s.Get("nope"); err == nil || !strings.Contains(err.Error(), "unknown grid") {
		t.Fatalf("Get(nope) err = %v, want unknown grid", err)
	}
}

func TestGridSetRejectsNodalFile(t *testing.T) {
	dir := t.TempDir()
	g, err := compactsg.New(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Grid left in the nodal state (never compressed).
	path := filepath.Join(dir, "nodal.sg")
	f, _ := os.Create(path)
	if err := g.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	s := NewGridSet(1)
	if err := s.Add("n", path); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("n"); err == nil || !strings.Contains(err.Error(), "nodal") {
		t.Fatalf("Get on nodal file err = %v, want nodal-state error", err)
	}
}

func TestBatcherCoalesces(t *testing.T) {
	dir := t.TempDir()
	path, ref := writeGrid(t, dir, 3, 5)
	f, _ := os.Open(path)
	g, err := compactsg.LoadAny(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var flushes []int
	b := newBatcher(g, 8, 5*time.Millisecond, func(n int) {
		mu.Lock()
		flushes = append(flushes, n)
		mu.Unlock()
	})
	defer b.close()

	xs := workload.Points(7, 24, 3)
	var wg sync.WaitGroup
	got := make([]float64, len(xs))
	for k := range xs {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			v, err := b.submit(context.Background(), xs[k])
			if err != nil {
				t.Error(err)
				return
			}
			got[k] = v
		}(k)
	}
	wg.Wait()

	for k, x := range xs {
		want, _ := ref.Evaluate(x)
		if math.Abs(got[k]-want) > 1e-12 {
			t.Fatalf("point %d: batched = %g, direct = %g", k, got[k], want)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	total := 0
	multi := false
	for _, n := range flushes {
		total += n
		if n > 1 {
			multi = true
		}
	}
	if total != len(xs) {
		t.Fatalf("flushed %d points, want %d (flushes %v)", total, len(xs), flushes)
	}
	if !multi {
		t.Errorf("no flush coalesced more than one request: %v", flushes)
	}
}

func TestBatcherSubmitAfterClose(t *testing.T) {
	dir := t.TempDir()
	path, _ := writeGrid(t, dir, 2, 3)
	f, _ := os.Open(path)
	g, _ := compactsg.LoadAny(f)
	f.Close()
	b := newBatcher(g, 4, time.Millisecond, nil)
	b.close()
	b.close() // idempotent
	if _, err := b.submit(context.Background(), []float64{0.5, 0.5}); err != ErrClosed {
		t.Fatalf("submit after close err = %v, want ErrClosed", err)
	}
}

func TestBatcherSubmitContextTimeout(t *testing.T) {
	dir := t.TempDir()
	path, _ := writeGrid(t, dir, 2, 3)
	f, _ := os.Open(path)
	g, _ := compactsg.LoadAny(f)
	f.Close()
	// Batch never fills and waits a long time, so the context gives up first.
	b := newBatcher(g, 1024, time.Hour, nil)
	defer b.close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := b.submit(ctx, []float64{0.5, 0.5}); err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// newTestServer builds a Server over freshly written grid files.
func newTestServer(t *testing.T, cfg Config, dims ...int) (*Server, map[string]*compactsg.Grid) {
	t.Helper()
	dir := t.TempDir()
	refs := make(map[string]*compactsg.Grid)
	s := New(cfg)
	t.Cleanup(func() { s.Close() })
	for _, d := range dims {
		name := fmt.Sprintf("g%d", d)
		path, ref := writeGrid(t, dir, d, 4)
		if err := s.AddGrid(name, path); err != nil {
			t.Fatal(err)
		}
		refs[name] = ref
	}
	return s, refs
}

func postJSON(t *testing.T, h http.Handler, url string, body any) *httptest.ResponseRecorder {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", url, bytes.NewReader(buf))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestServerEvalAndBatch(t *testing.T) {
	for _, coalesce := range []bool{false, true} {
		t.Run(fmt.Sprintf("coalesce=%v", coalesce), func(t *testing.T) {
			s, refs := newTestServer(t, Config{Coalesce: coalesce, BatchWait: time.Millisecond}, 3)
			h := s.Handler()
			ref := refs["g3"]

			x := []float64{0.25, 0.5, 0.75}
			rec := postJSON(t, h, "/v1/eval", evalRequest{Grid: "g3", Point: x})
			if rec.Code != 200 {
				t.Fatalf("eval status = %d, body %s", rec.Code, rec.Body)
			}
			var er evalResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
				t.Fatal(err)
			}
			want, _ := ref.Evaluate(x)
			if math.Abs(er.Value-want) > 1e-12 {
				t.Fatalf("value = %g, want %g", er.Value, want)
			}

			// Grid name may be omitted with a single registered grid.
			rec = postJSON(t, h, "/v1/eval", evalRequest{Point: x})
			if rec.Code != 200 {
				t.Fatalf("eval without grid name status = %d, body %s", rec.Code, rec.Body)
			}

			xs := workload.Points(3, 10, 3)
			rec = postJSON(t, h, "/v1/eval/batch", batchRequest{Grid: "g3", Points: xs})
			if rec.Code != 200 {
				t.Fatalf("batch status = %d, body %s", rec.Code, rec.Body)
			}
			var br batchResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &br); err != nil {
				t.Fatal(err)
			}
			wantVals, _ := ref.EvaluateBatch(xs, nil)
			for k := range xs {
				if math.Abs(br.Values[k]-wantVals[k]) > 1e-12 {
					t.Fatalf("batch[%d] = %g, want %g", k, br.Values[k], wantVals[k])
				}
			}

			// Empty batch is a valid no-op.
			rec = postJSON(t, h, "/v1/eval/batch", batchRequest{Grid: "g3", Points: [][]float64{}})
			if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"values":[]`) {
				t.Fatalf("empty batch: status %d body %s", rec.Code, rec.Body)
			}
		})
	}
}

func TestServerErrorPaths(t *testing.T) {
	s, _ := newTestServer(t, Config{
		Coalesce:       true,
		BatchWait:      time.Millisecond,
		MaxBodyBytes:   256,
		MaxBatchPoints: 4,
	}, 2, 3)
	h := s.Handler()

	cases := []struct {
		name   string
		url    string
		body   string
		status int
		substr string
	}{
		{"bad JSON", "/v1/eval", `{"grid": nope}`, 400, "invalid JSON"},
		{"unknown field", "/v1/eval", `{"grid":"g2","pt":[0.5,0.5]}`, 400, "invalid JSON"},
		{"unknown grid", "/v1/eval", `{"grid":"missing","point":[0.5,0.5]}`, 404, "unknown grid"},
		{"ambiguous default grid", "/v1/eval", `{"point":[0.5,0.5]}`, 400, "must name a grid"},
		{"dim mismatch", "/v1/eval", `{"grid":"g2","point":[0.5,0.5,0.5]}`, 400, "dimensions"},
		{"out of domain", "/v1/eval", `{"grid":"g2","point":[0.5,1.5]}`, 400, "outside the domain"},
		{"negative coordinate", "/v1/eval", `{"grid":"g2","point":[-0.1,0.5]}`, 400, "outside the domain"},
		{"oversized body", "/v1/eval", `{"grid":"g2","point":[` + strings.Repeat("0.1,", 200) + `0.1]}`, 413, "exceeds"},
		{"oversized batch", "/v1/eval/batch", `{"grid":"g2","points":[[0.1,0.1],[0.2,0.2],[0.3,0.3],[0.4,0.4],[0.5,0.5]]}`, 413, "cap"},
		{"batch bad point", "/v1/eval/batch", `{"grid":"g2","points":[[0.1,0.1],[2,0.2]]}`, 400, "point 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest("POST", tc.url, strings.NewReader(tc.body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != tc.status {
				t.Fatalf("status = %d, want %d (body %s)", rec.Code, tc.status, rec.Body)
			}
			var er errorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
				t.Fatalf("error body not JSON: %v (%s)", err, rec.Body)
			}
			if !strings.Contains(er.Error, tc.substr) {
				t.Fatalf("error %q does not mention %q", er.Error, tc.substr)
			}
		})
	}

	// Method and route checks.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/eval", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/eval status = %d, want 405", rec.Code)
	}
}

func TestServerGridsHealthzMetrics(t *testing.T) {
	s, _ := newTestServer(t, Config{Coalesce: true, BatchWait: time.Millisecond}, 2)
	if err := s.Preload(); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz: %d %s", rec.Code, rec.Body)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/grids", nil))
	var gr gridsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &gr); err != nil {
		t.Fatal(err)
	}
	if len(gr.Grids) != 1 || gr.Grids[0].Name != "g2" || !gr.Grids[0].Resident || gr.Grids[0].Dim != 2 {
		t.Fatalf("grids = %+v", gr.Grids)
	}

	// Generate traffic (one ok, one error), then check the exposition.
	postJSON(t, h, "/v1/eval", evalRequest{Grid: "g2", Point: []float64{0.5, 0.5}})
	postJSON(t, h, "/v1/eval", evalRequest{Grid: "none", Point: []float64{0.5, 0.5}})
	postJSON(t, h, "/v1/eval/batch", batchRequest{Grid: "g2", Points: workload.Points(1, 5, 2)})

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	out := rec.Body.String()
	for _, want := range []string{
		`sgserve_requests_total{handler="eval",protocol="json"} 2`,
		`sgserve_errors_total{handler="eval"} 1`,
		`sgserve_request_seconds_bucket{handler="eval",le="+Inf"} 2`,
		"sgserve_batch_size_bucket",
		"sgserve_points_evaluated_total 6",
		"sgserve_grids_resident 1",
		"sgserve_grid_loads_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

// TestServerShutdownDrainsInflight submits requests that are still
// waiting in an open micro-batch, closes the server, and expects every
// caller to receive its value (not an error): Close flushes pending
// batches instead of dropping them.
func TestServerShutdownDrainsInflight(t *testing.T) {
	// Huge batch + long wait: requests park in the coalescer until close.
	s, refs := newTestServer(t, Config{Coalesce: true, MaxBatch: 1024, BatchWait: time.Hour}, 3)
	h := s.Handler()
	ref := refs["g3"]

	xs := workload.Points(11, 8, 3)
	var wg sync.WaitGroup
	type result struct {
		code int
		body string
	}
	results := make([]result, len(xs))
	for k := range xs {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			rec := postJSON(t, h, "/v1/eval", evalRequest{Grid: "g3", Point: xs[k]})
			results[k] = result{rec.Code, rec.Body.String()}
		}(k)
	}
	// Give the handlers time to enqueue into the open batch.
	deadline := time.Now().Add(2 * time.Second)
	for s.met.requests.With("eval", "json").Value() < uint64(len(xs)) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	for k, r := range results {
		if r.code != 200 {
			t.Fatalf("request %d: status %d body %s (in-flight request dropped on shutdown)", k, r.code, r.body)
		}
		var er evalResponse
		if err := json.Unmarshal([]byte(r.body), &er); err != nil {
			t.Fatal(err)
		}
		want, _ := ref.Evaluate(xs[k])
		if math.Abs(er.Value-want) > 1e-12 {
			t.Fatalf("request %d: value %g, want %g", k, er.Value, want)
		}
	}

	// After Close, new eval requests are refused with 503.
	rec := postJSON(t, h, "/v1/eval", evalRequest{Grid: "g3", Point: xs[0]})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown status = %d, want 503", rec.Code)
	}
}

// TestServerEvictionKeepsServing exercises the LRU + batcher
// interplay: more grids than resident slots, interleaved traffic, all
// responses correct.
func TestServerEvictionKeepsServing(t *testing.T) {
	s, refs := newTestServer(t, Config{
		Coalesce:    true,
		BatchWait:   time.Millisecond,
		MaxResident: 1,
	}, 2, 3, 4)
	h := s.Handler()

	for round := 0; round < 3; round++ {
		for name, ref := range refs {
			x := workload.Points(int64(round+1), 1, ref.Dim())[0]
			rec := postJSON(t, h, "/v1/eval", evalRequest{Grid: name, Point: x})
			if rec.Code != 200 {
				t.Fatalf("%s round %d: status %d body %s", name, round, rec.Code, rec.Body)
			}
			var er evalResponse
			json.Unmarshal(rec.Body.Bytes(), &er)
			want, _ := ref.Evaluate(x)
			if math.Abs(er.Value-want) > 1e-12 {
				t.Fatalf("%s round %d: %g want %g", name, round, er.Value, want)
			}
		}
	}
	if n := s.Grids().ResidentCount(); n != 1 {
		t.Fatalf("resident = %d, want 1", n)
	}
	if s.met.evictions.Value() == 0 {
		t.Error("no evictions recorded despite MaxResident=1 and 3 grids")
	}
}
