package serve

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"compactsg"
	"compactsg/internal/workload"
)

func loadTestGrid(t *testing.T, dim, level int) *compactsg.Grid {
	t.Helper()
	path, _ := writeGrid(t, t.TempDir(), dim, level)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := compactsg.LoadAny(f)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// submitWithin runs one submit and fails the test if it does not
// complete inside the deadline (i.e. the flush loop is wedged).
func submitWithin(t *testing.T, b *batcher, x []float64, d time.Duration) (float64, error) {
	t.Helper()
	type res struct {
		v   float64
		err error
	}
	ch := make(chan res, 1)
	go func() {
		v, err := b.submit(context.Background(), x)
		ch <- res{v, err}
	}()
	select {
	case r := <-ch:
		return r.v, r.err
	case <-time.After(d):
		t.Fatal("submit wedged: flush loop is not making progress")
		return 0, nil
	}
}

// TestBatcherAbandonedCallerCannotWedgeFlushLoop is the regression test
// for the lost-wakeup wedge: deliver a call whose result channel is
// UNBUFFERED and never read (the worst possible abandoned caller). A
// flush loop that sends results with a plain blocking send would hang
// on it forever; the batcher must keep serving other callers.
func TestBatcherAbandonedCallerCannotWedgeFlushLoop(t *testing.T) {
	g := loadTestGrid(t, 2, 3)
	b := newBatcher(g, 2, time.Millisecond, nil)
	defer b.close()

	// White-box injection: worst-case abandoned call — live context, so
	// the flush loop evaluates it, but nobody ever reads the result.
	b.in <- evalCall{ctx: context.Background(), x: []float64{0.25, 0.75}, res: make(chan evalResult)}

	for k := 0; k < 3; k++ {
		v, err := submitWithin(t, b, []float64{0.5, 0.5}, 5*time.Second)
		if err != nil {
			t.Fatalf("submit %d after abandoned call: %v", k, err)
		}
		if v == 0 {
			t.Fatalf("submit %d returned 0, want the parabola peak value", k)
		}
	}
}

// TestBatcherSkipsCancelledCalls verifies the flush loop drops calls
// whose context was cancelled after enqueue instead of evaluating them:
// four dead calls plus one live one fill a maxBatch=5 batch, and the
// dispatch must contain exactly the live point.
func TestBatcherSkipsCancelledCalls(t *testing.T) {
	g := loadTestGrid(t, 2, 3)
	var flushes []int
	var mu sync.Mutex
	b := newBatcher(g, 5, time.Hour, func(n int) {
		mu.Lock()
		flushes = append(flushes, n)
		mu.Unlock()
	})
	defer b.close()

	dead, cancel := context.WithCancel(context.Background())
	cancel()
	for k := 0; k < 4; k++ {
		b.in <- evalCall{ctx: dead, x: []float64{0.1, 0.1}, res: make(chan evalResult, 1)}
	}
	// The live call fills the batch; the hour-long timer never fires,
	// so dispatch happens exactly when the batch reaches 5 calls.
	x := []float64{0.5, 0.5}
	v, err := submitWithin(t, b, x, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := g.Evaluate(x)
	if math.Abs(v-want) > 1e-12 {
		t.Fatalf("live call value = %g, want %g", v, want)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(flushes) != 1 || flushes[0] != 1 {
		t.Fatalf("flushes = %v, want [1] (four cancelled calls must be skipped)", flushes)
	}
}

// TestBatcherCancelAfterEnqueue exercises the real client sequence:
// enqueue, abandon via cancel, and verify later submits still complete.
func TestBatcherCancelAfterEnqueue(t *testing.T) {
	g := loadTestGrid(t, 2, 3)
	b := newBatcher(g, 2, 20*time.Millisecond, nil)
	defer b.close()

	ctx, cancel := context.WithCancel(context.Background())
	errs := make(chan error, 1)
	go func() {
		_, err := b.submit(ctx, []float64{0.25, 0.25})
		errs <- err
	}()
	time.Sleep(5 * time.Millisecond) // let it enqueue into the open batch
	cancel()
	if err := <-errs; err != context.Canceled {
		t.Fatalf("abandoned submit err = %v, want context.Canceled", err)
	}
	for k := 0; k < 3; k++ {
		if _, err := submitWithin(t, b, []float64{0.5, 0.5}, 5*time.Second); err != nil {
			t.Fatalf("submit %d after cancel: %v", k, err)
		}
	}
}

// TestServerEvictionUnderLoad drives /v1/eval concurrently across more
// grids than resident slots with churn-heavy traffic, asserts every
// response succeeds, and verifies neither batcher flush goroutines nor
// drain goroutines leak once the server closes.
func TestServerEvictionUnderLoad(t *testing.T) {
	before := runtime.NumGoroutine()
	const grids = 5
	dims := make([]int, grids)
	for k := range dims {
		dims[k] = 2 + k
	}
	s, _ := newTestServer(t, Config{
		Coalesce:    true,
		BatchWait:   500 * time.Microsecond,
		MaxBatch:    16,
		MaxResident: 2,
	}, dims...)
	h := s.Handler()

	var wg sync.WaitGroup
	var stop atomic.Bool
	errc := make(chan error, 1)
	fail := func(err error) {
		select {
		case errc <- err:
		default:
		}
	}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; !stop.Load(); k++ {
				d := dims[(w+k)%grids]
				name := fmt.Sprintf("g%d", d)
				x := workload.Points(int64(w*100000+k), 1, d)[0]
				rec := postJSON(t, h, "/v1/eval", evalRequest{Grid: name, Point: x})
				if rec.Code != http.StatusOK {
					fail(fmt.Errorf("worker %d req %d (%s): status %d body %s", w, k, name, rec.Code, rec.Body))
					return
				}
			}
		}(w)
	}
	time.Sleep(400 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	if s.met.evictions.Value() == 0 {
		t.Error("stress ran without a single eviction; test is not exercising churn")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	assertNoGoroutineLeak(t, before)
}
