package serve

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"
	"unsafe"

	"compactsg/internal/obs"
)

// The binary evaluation protocol: POST /v1/eval/bin moves the same
// batch evaluation as /v1/eval/batch, but as length-prefixed
// little-endian float64 frames instead of JSON — mirroring the SGC2
// snapshot's contiguous float64 block ("Contiguous Storage of Grid
// Data for Heterogeneous Computing"), so the coordinate block decodes
// as a single reinterpreted slice instead of a per-number parse.
//
// Request frame:
//
//	u16  LE  nameLen   grid name length in bytes (0 = default grid)
//	...      name      UTF-8 grid name
//	...      padding   zero bytes up to the next 8-byte boundary
//	u32  LE  n         number of evaluation points
//	u32  LE  d         coordinates per point (must match the grid)
//	n·d  f64 LE        coordinates, point-major
//
// Response frame (status 200):
//
//	u32  LE  n         number of values
//	u32  LE  reserved  zero
//	n    f64 LE        values, in request point order
//
// Errors are JSON {"error": ...} bodies with the usual status codes,
// so one error decoder serves both protocols. The padding keeps the
// coordinate block 8-byte aligned relative to the frame start: when
// the body buffer itself is 8-aligned (the pooled buffers are), the
// coordinate and value blocks are reinterpreted in place on
// little-endian hosts — zero copies, zero decode allocations at
// steady state.
//
// Frame strictness follows the SGC2 snapshot codec: padding bytes must
// be zero and the frame length must match the header exactly — a
// tolerant reader would let garbage ride along and turn wire bugs into
// silent data corruption.

// BinContentType is the content type of both binary frame directions.
const BinContentType = "application/x-compactsg-frame"

// binMaxName bounds the grid-name field; names are registry keys, not
// payloads.
const binMaxName = 256

// Frame decode errors (all reported to clients as 400s, except the
// point cap which is a 413 applied by the handler).
var (
	errFrameTruncated = errors.New("binary frame truncated")
	errFrameTrailing  = errors.New("binary frame has trailing bytes after the coordinate block")
	errFramePadding   = errors.New("binary frame padding bytes must be zero")
	errFrameName      = errors.New("binary frame grid name exceeds 256 bytes")
	errFrameShape     = errors.New("binary frame declares points with zero dimensions")
	errFrameEmptyDim  = errors.New("binary frame declares zero points with a nonzero dimension")
)

// hostLittleEndian reports whether float64 bit patterns can be
// reinterpreted from little-endian wire bytes without swapping.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// binFrame owns every buffer one binary request needs: the raw body,
// the decoded coordinate block, the point headers, the evaluation
// output and the response frame. Pooled so the steady-state request
// costs no allocations; a frame whose evaluation outlived its request
// (timeout) is simply not returned to the pool.
type binFrame struct {
	raw  []byte      // request body
	flat []float64   // coordinates (view into raw, or decoded copy)
	pts  [][]float64 // per-point headers into flat
	out  []float64   // evaluation output (view into resp, or copy)
	resp []byte      // response frame
}

var binFramePool = sync.Pool{New: func() any { return new(binFrame) }}

// binRequest is the parsed view of one request frame. name aliases the
// frame's raw buffer; pts alias its coordinate buffers.
type binRequest struct {
	name []byte
	n, d int
	pts  [][]float64
}

// aligned8 reports whether p's first byte sits on an 8-byte boundary
// (the empty slice is trivially aligned).
func aligned8(p []byte) bool {
	return len(p) == 0 || uintptr(unsafe.Pointer(&p[0]))%8 == 0
}

// decodeBinFrame parses one request frame from raw into fr's pooled
// buffers. On little-endian hosts with an 8-aligned buffer the
// coordinate block is reinterpreted in place; otherwise it is decoded
// into fr.flat. Either way fr.pts carries the per-point views
// EvaluateBatch wants, with no per-request allocation at steady state.
func decodeBinFrame(fr *binFrame, raw []byte) (binRequest, error) {
	if len(raw) < 2 {
		return binRequest{}, errFrameTruncated
	}
	nameLen := int(binary.LittleEndian.Uint16(raw))
	if nameLen > binMaxName {
		return binRequest{}, errFrameName
	}
	hdr := 2 + nameLen
	pad := (8 - hdr%8) % 8
	dataOff := hdr + pad + 8 // + u32 n + u32 d
	if len(raw) < dataOff {
		return binRequest{}, errFrameTruncated
	}
	for _, b := range raw[hdr : hdr+pad] {
		if b != 0 {
			return binRequest{}, errFramePadding
		}
	}
	n := int(binary.LittleEndian.Uint32(raw[hdr+pad:]))
	d := int(binary.LittleEndian.Uint32(raw[hdr+pad+4:]))
	if n > 0 && d == 0 {
		return binRequest{}, errFrameShape
	}
	if n == 0 && d != 0 {
		// The format admits exactly one encoding per request (like the
		// SGC2 snapshot codec): an empty batch is n=0, d=0.
		return binRequest{}, errFrameEmptyDim
	}
	want := uint64(n) * uint64(d) * 8
	if uint64(len(raw)-dataOff) < want {
		return binRequest{}, errFrameTruncated
	}
	if uint64(len(raw)-dataOff) > want {
		return binRequest{}, errFrameTrailing
	}

	total := n * d
	coords := raw[dataOff:]
	if hostLittleEndian && aligned8(coords) {
		// Zero-copy: the wire block IS the float64 slice.
		if total > 0 {
			fr.flat = unsafe.Slice((*float64)(unsafe.Pointer(&coords[0])), total)
		} else {
			fr.flat = fr.flat[:0]
		}
	} else {
		if cap(fr.flat) < total {
			fr.flat = make([]float64, total)
		}
		fr.flat = fr.flat[:total]
		for i := range fr.flat {
			fr.flat[i] = math.Float64frombits(binary.LittleEndian.Uint64(coords[8*i:]))
		}
	}
	if cap(fr.pts) < n {
		fr.pts = make([][]float64, n)
	}
	fr.pts = fr.pts[:n]
	for i := range fr.pts {
		fr.pts[i] = fr.flat[i*d : (i+1)*d : (i+1)*d]
	}
	return binRequest{name: raw[2:hdr], n: n, d: d, pts: fr.pts}, nil
}

// prepareBinResponse sizes fr.resp for n values, writes the response
// header, and returns the output slice EvaluateBatch should fill. On
// little-endian hosts the output aliases the response frame, so the
// encode stage after evaluation is free.
func prepareBinResponse(fr *binFrame, n int) []float64 {
	need := 8 + 8*n
	if cap(fr.resp) < need {
		fr.resp = make([]byte, need)
	}
	fr.resp = fr.resp[:need]
	binary.LittleEndian.PutUint32(fr.resp, uint32(n))
	binary.LittleEndian.PutUint32(fr.resp[4:], 0)
	vals := fr.resp[8:]
	if hostLittleEndian && aligned8(vals) && n > 0 {
		fr.out = unsafe.Slice((*float64)(unsafe.Pointer(&vals[0])), n)
	} else {
		if cap(fr.out) < n {
			fr.out = make([]float64, n)
		}
		fr.out = fr.out[:n]
	}
	return fr.out
}

// finishBinResponse folds fr.out into fr.resp when the two do not
// alias (big-endian or unaligned fallback) and returns the frame.
func finishBinResponse(fr *binFrame) []byte {
	vals := fr.resp[8:]
	if len(fr.out) > 0 && (!hostLittleEndian || !aligned8(vals) ||
		&fr.out[0] != (*float64)(unsafe.Pointer(&vals[0]))) {
		for i, v := range fr.out {
			binary.LittleEndian.PutUint64(vals[8*i:], math.Float64bits(v))
		}
	}
	return fr.resp
}

// AppendEvalFrame appends a /v1/eval/bin request frame for pts to dst
// and returns the extended slice. The client half of decodeBinFrame,
// shared by sgload, sgstress and the tests.
func AppendEvalFrame(dst []byte, grid string, pts [][]float64) []byte {
	var lenBuf [8]byte
	binary.LittleEndian.PutUint16(lenBuf[:2], uint16(len(grid)))
	dst = append(dst, lenBuf[:2]...)
	dst = append(dst, grid...)
	pad := (8 - (2+len(grid))%8) % 8
	dst = append(dst, make([]byte, pad)...)
	d := 0
	if len(pts) > 0 {
		d = len(pts[0])
	}
	binary.LittleEndian.PutUint32(lenBuf[:4], uint32(len(pts)))
	binary.LittleEndian.PutUint32(lenBuf[4:8], uint32(d))
	dst = append(dst, lenBuf[:8]...)
	for _, x := range pts {
		for _, v := range x {
			binary.LittleEndian.PutUint64(lenBuf[:8], math.Float64bits(v))
			dst = append(dst, lenBuf[:8]...)
		}
	}
	return dst
}

// FrameGridName returns the grid-name bytes of a request frame without
// decoding the coordinate block — just enough for a routing layer
// (cmd/sgproxy) to pick the owning shard before forwarding the frame
// verbatim. The returned slice aliases raw.
func FrameGridName(raw []byte) ([]byte, error) {
	if len(raw) < 2 {
		return nil, errFrameTruncated
	}
	nameLen := int(binary.LittleEndian.Uint16(raw))
	if nameLen > binMaxName {
		return nil, errFrameName
	}
	if len(raw) < 2+nameLen {
		return nil, errFrameTruncated
	}
	return raw[2 : 2+nameLen], nil
}

// ParseValuesFrame decodes a /v1/eval/bin response frame.
func ParseValuesFrame(data []byte) ([]float64, error) {
	if len(data) < 8 {
		return nil, errFrameTruncated
	}
	n := int(binary.LittleEndian.Uint32(data))
	if binary.LittleEndian.Uint32(data[4:]) != 0 {
		return nil, errors.New("binary response frame has a nonzero reserved field")
	}
	if uint64(len(data)-8) != uint64(n)*8 {
		return nil, errFrameTruncated
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8+8*i:]))
	}
	return out, nil
}

// readBody drains r into fr.raw without per-request allocations at
// steady state (io.ReadAll would re-grow a fresh buffer every call).
func readBody(fr *binFrame, r io.Reader) error {
	buf := fr.raw[:0]
	if cap(buf) == 0 {
		buf = make([]byte, 0, 4096)
	}
	for {
		if len(buf) == cap(buf) {
			grown := make([]byte, len(buf), 2*cap(buf))
			copy(grown, buf)
			buf = grown
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			fr.raw = buf
			return nil
		}
		if err != nil {
			fr.raw = buf
			return err
		}
	}
}

// handleEvalBin is the binary twin of handleEvalBatch: same
// validation, span stages, request timeout, metrics and
// release-after-eval lease discipline, different wire format.
func (s *Server) handleEvalBin(w http.ResponseWriter, r *http.Request) error {
	sp := obs.FromContext(r.Context())
	fr := binFramePool.Get().(*binFrame)

	sp.Begin(obs.StageDecode)
	r.Body = http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes)
	err := readBody(fr, r.Body)
	var req binRequest
	if err == nil {
		req, err = decodeBinFrame(fr, fr.raw)
	}
	sp.End(obs.StageDecode)
	if err != nil {
		binFramePool.Put(fr)
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return httpErrorf(http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", maxErr.Limit)
		}
		return httpErrorf(http.StatusBadRequest, "invalid binary frame: %v", err)
	}

	// Resolve the name against the registry's interned copy so the hot
	// path never materializes a string from the wire bytes.
	name, ok := s.grids.CanonicalName(req.name)
	if !ok {
		if len(req.name) == 0 {
			name, err = s.resolveGrid("")
		} else {
			err = httpErrorf(http.StatusNotFound, "%v %q", ErrUnknownGrid, string(req.name))
		}
		if err != nil {
			binFramePool.Put(fr)
			return err
		}
	}
	sp.SetGrid(name)
	sp.SetPoints(req.n)
	if req.n > s.cfg.MaxBatchPoints {
		binFramePool.Put(fr)
		return httpErrorf(http.StatusRequestEntityTooLarge,
			"batch of %d points exceeds the per-request cap of %d", req.n, s.cfg.MaxBatchPoints)
	}
	if req.n == 0 {
		prepareBinResponse(fr, 0)
		s.writeBinResponse(w, sp, finishBinResponse(fr))
		binFramePool.Put(fr)
		return nil
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	lease, err := s.grids.Acquire(ctx, name)
	if err != nil {
		binFramePool.Put(fr)
		return err
	}
	g := lease.Grid()
	sp.Begin(obs.StageValidate)
	if req.d != g.Dim() {
		sp.End(obs.StageValidate)
		lease.Release()
		binFramePool.Put(fr)
		return httpErrorf(http.StatusBadRequest,
			"frame declares %d coordinates per point, grid has %d dimensions", req.d, g.Dim())
	}
	for k, x := range req.pts {
		if err := validatePoint(x, req.d, k); err != nil {
			sp.End(obs.StageValidate)
			lease.Release()
			binFramePool.Put(fr)
			return err
		}
	}
	sp.End(obs.StageValidate)

	out := prepareBinResponse(fr, req.n)

	// Same lease discipline as handleEvalBatch: the eval goroutine owns
	// the release, so a timed-out request can never unmap a snapshot
	// payload EvaluateBatch is still reading. The frame's buffers are
	// owned by the goroutine until it delivers; on timeout the frame is
	// abandoned to the GC instead of being pooled while still in use.
	type res struct {
		err       error
		evalStart time.Time
		evalDur   time.Duration
	}
	dispatched := time.Now()
	ch := make(chan res, 1)
	go func() {
		if s.batchEvalGate != nil {
			s.batchEvalGate(name)
		}
		t0 := time.Now()
		_, err := g.EvaluateBatch(req.pts, out)
		// Release BEFORE delivering: out aliases fr.resp (heap), not the
		// mapping, so once EvaluateBatch returns nothing dereferences the
		// snapshot — and the caller can never see its answered request
		// still pinning the mapping.
		lease.Release()
		ch <- res{err, t0, time.Since(t0)}
	}()
	select {
	case rs := <-ch:
		sp.Add(obs.StageDispatch, rs.evalStart.Sub(dispatched))
		sp.Add(obs.StageEval, rs.evalDur)
		sp.SetBatchSize(req.n)
		if rs.err != nil {
			binFramePool.Put(fr)
			return rs.err
		}
		s.met.batchSize.Observe(float64(req.n))
		s.met.points.Add(uint64(req.n))
		s.writeBinResponse(w, sp, finishBinResponse(fr))
		binFramePool.Put(fr)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// writeBinResponse writes a success values frame.
func (s *Server) writeBinResponse(w http.ResponseWriter, sp *obs.Span, frame []byte) {
	sp.SetStatus(http.StatusOK)
	sp.Begin(obs.StageEncode)
	w.Header().Set("Content-Type", BinContentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(frame)))
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(frame); err != nil {
		s.countWriteError("bin", http.StatusOK, err)
	}
	sp.End(obs.StageEncode)
}
