package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"compactsg"
	"compactsg/internal/serve/metrics"
)

// Config tunes a Server. The zero value is usable; zero fields take
// the listed defaults.
type Config struct {
	// Workers is the size of the evaluation worker pool each loaded
	// grid uses for batch dispatch (compactsg.WithWorkers).
	// Default 1.
	Workers int
	// BlockSize is the cache-blocking block for batch evaluation
	// (compactsg.WithBlockSize). Default 0 (off).
	BlockSize int
	// MaxResident bounds how many grids stay loaded (LRU beyond it).
	// Default 8.
	MaxResident int
	// Coalesce enables micro-batching of /v1/eval requests. When
	// false every request evaluates immediately on its own handler
	// goroutine (the naive one-point-per-request path, kept for
	// comparison with cmd/sgload).
	Coalesce bool
	// MaxBatch is the micro-batch size cap. Default 256.
	MaxBatch int
	// BatchWait is how long an open micro-batch waits for more
	// requests before dispatching. Default 2ms.
	BatchWait time.Duration
	// MaxBodyBytes caps request body size. Default 1 MiB.
	MaxBodyBytes int64
	// MaxBatchPoints caps the number of points in one /v1/eval/batch
	// request. Default 65536.
	MaxBatchPoints int
	// RequestTimeout bounds how long a request may wait for its
	// evaluation. Default 10s.
	RequestTimeout time.Duration
}

func (c *Config) fill() {
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.MaxResident < 1 {
		c.MaxResident = 8
	}
	if c.MaxBatch < 1 {
		c.MaxBatch = 256
	}
	if c.BatchWait <= 0 {
		c.BatchWait = 2 * time.Millisecond
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxBatchPoints < 1 {
		c.MaxBatchPoints = 65536
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
}

// Server is the HTTP evaluation service: routes, grid registry,
// per-grid coalescers and metrics. Create with New, mount Handler
// into an http.Server, and call Close on shutdown (after
// http.Server.Shutdown) to drain in-flight micro-batches.
type Server struct {
	cfg   Config
	grids *GridSet
	mux   *http.ServeMux

	mu       sync.Mutex
	batchers map[string]*batcher
	closed   bool

	met serverMetrics
}

type serverMetrics struct {
	registry  *metrics.Registry
	requests  *metrics.CounterVec
	errors    *metrics.CounterVec
	latency   *metrics.HistogramVec
	batchSize *metrics.Histogram
	points    *metrics.Counter
	resident  *metrics.Gauge
	loads     *metrics.Counter
	evictions *metrics.Counter
}

// New creates a Server. Register grid files with AddGrid before (or
// while) serving.
func New(cfg Config) *Server {
	cfg.fill()
	s := &Server{
		cfg:      cfg,
		batchers: make(map[string]*batcher),
	}
	s.grids = NewGridSet(cfg.MaxResident,
		compactsg.WithWorkers(cfg.Workers), compactsg.WithBlockSize(cfg.BlockSize))
	s.grids.OnLoad = func(string) {
		s.met.loads.Inc()
		s.met.resident.Set(float64(s.grids.lru.Len()))
	}
	s.grids.OnEvict = func(name string, _ *compactsg.Grid) {
		s.met.evictions.Inc()
		s.met.resident.Set(float64(s.grids.lru.Len()))
		s.dropBatcher(name)
	}

	r := metrics.NewRegistry()
	s.met = serverMetrics{
		registry:  r,
		requests:  r.NewCounterVec("sgserve_requests_total", "HTTP requests received, by handler.", "handler"),
		errors:    r.NewCounterVec("sgserve_errors_total", "Requests answered with a non-2xx status, by handler.", "handler"),
		latency:   r.NewHistogramVec("sgserve_request_seconds", "Request latency in seconds, by handler.", "handler", metrics.DefLatencyBuckets),
		batchSize: r.NewHistogram("sgserve_batch_size", "Points per dispatched evaluation batch (coalesced micro-batches and explicit batch requests).", metrics.DefSizeBuckets),
		points:    r.NewCounter("sgserve_points_evaluated_total", "Grid points evaluated."),
		resident:  r.NewGauge("sgserve_grids_resident", "Grids currently loaded in memory."),
		loads:     r.NewCounter("sgserve_grid_loads_total", "Grid loads from disk."),
		evictions: r.NewCounter("sgserve_grid_evictions_total", "LRU grid evictions."),
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("GET /metrics", r.Handler())
	mux.HandleFunc("GET /v1/grids", s.instrument("grids", s.handleGrids))
	mux.HandleFunc("POST /v1/eval", s.instrument("eval", s.handleEval))
	mux.HandleFunc("POST /v1/eval/batch", s.instrument("batch", s.handleEvalBatch))
	s.mux = mux
	return s
}

// AddGrid registers a compressed grid file under name.
func (s *Server) AddGrid(name, path string) error { return s.grids.Add(name, path) }

// Preload eagerly loads registered grids up to the resident bound.
func (s *Server) Preload() error { return s.grids.Preload() }

// Grids exposes the registry (read-only use).
func (s *Server) Grids() *GridSet { return s.grids }

// Metrics exposes the metrics registry (for embedding in other muxes).
func (s *Server) Metrics() *metrics.Registry { return s.met.registry }

// Handler returns the routing handler for an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains and stops every per-grid coalescer. Call it after
// http.Server.Shutdown so enqueued requests still get their values;
// requests arriving later fail with 503.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	bs := make([]*batcher, 0, len(s.batchers))
	for _, b := range s.batchers {
		bs = append(bs, b)
	}
	s.batchers = make(map[string]*batcher)
	s.mu.Unlock()
	for _, b := range bs {
		b.close()
	}
	return nil
}

// batcherFor returns the coalescer for a grid, creating it on first
// use. It also touches the grid's LRU slot so hot grids stay resident.
func (s *Server) batcherFor(name string) (*batcher, error) {
	g, err := s.grids.Get(name)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if b, ok := s.batchers[name]; ok {
		return b, nil
	}
	b := newBatcher(g, s.cfg.MaxBatch, s.cfg.BatchWait, func(n int) {
		s.met.batchSize.Observe(float64(n))
		s.met.points.Add(uint64(n))
	})
	s.batchers[name] = b
	return b, nil
}

// dropBatcher detaches a grid's coalescer on eviction and drains it in
// the background (its queued requests still complete against the old
// grid instance; new requests reload the grid and get a fresh one).
func (s *Server) dropBatcher(name string) {
	s.mu.Lock()
	b, ok := s.batchers[name]
	delete(s.batchers, name)
	s.mu.Unlock()
	if ok {
		go b.close()
	}
}

// ---------------------------------------------------------------------
// handlers

type evalRequest struct {
	Grid  string    `json:"grid"`
	Point []float64 `json:"point"`
}

type evalResponse struct {
	Value float64 `json:"value"`
}

type batchRequest struct {
	Grid   string      `json:"grid"`
	Points [][]float64 `json:"points"`
}

type batchResponse struct {
	Values []float64 `json:"values"`
}

type gridsResponse struct {
	Grids []GridInfo `json:"grids"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// httpError carries a status code through the handler helpers.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func httpErrorf(status int, format string, args ...any) *httpError {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

// instrument wraps a handler with request counting, latency
// observation and error accounting.
func (s *Server) instrument(name string, h func(*http.Request) (any, error)) http.HandlerFunc {
	reqs := s.met.requests.With(name)
	errs := s.met.errors.With(name)
	lat := s.met.latency.With(name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqs.Inc()
		body, err := h(r)
		lat.Observe(time.Since(start).Seconds())
		if err != nil {
			errs.Inc()
			status := http.StatusInternalServerError
			var he *httpError
			switch {
			case errors.As(err, &he):
				status = he.status
			case errors.Is(err, ErrUnknownGrid):
				status = http.StatusNotFound
			case errors.Is(err, ErrClosed):
				status = http.StatusServiceUnavailable
			case errors.Is(err, context.DeadlineExceeded):
				status = http.StatusServiceUnavailable
			case errors.Is(err, context.Canceled):
				status = 499 // client went away (nginx convention)
			}
			writeJSON(w, status, errorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, body)
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(body)
}

// decodeJSON reads the body with the configured size cap.
func (s *Server) decodeJSON(r *http.Request, dst any) error {
	r.Body = http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return httpErrorf(http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", maxErr.Limit)
		}
		return httpErrorf(http.StatusBadRequest, "invalid JSON request: %v", err)
	}
	return nil
}

// resolveGrid fills in the default grid name when exactly one grid is
// registered and the request omitted it.
func (s *Server) resolveGrid(name string) (string, error) {
	if name != "" {
		return name, nil
	}
	names := s.grids.Names()
	if len(names) == 1 {
		return names[0], nil
	}
	return "", httpErrorf(http.StatusBadRequest, "request must name a grid (%d registered)", len(names))
}

// validatePoint checks dimensionality and the [0,1]^d domain.
func validatePoint(x []float64, dim int, k int) error {
	if len(x) != dim {
		return httpErrorf(http.StatusBadRequest, "point %d has %d coordinates, grid has %d dimensions", k, len(x), dim)
	}
	for t, v := range x {
		if v < 0 || v > 1 || v != v { // v != v catches NaN
			return httpErrorf(http.StatusBadRequest, "point %d coordinate %d = %g outside the domain [0,1]", k, t, v)
		}
	}
	return nil
}

func (s *Server) handleGrids(_ *http.Request) (any, error) {
	return gridsResponse{Grids: s.grids.Info()}, nil
}

func (s *Server) handleEval(r *http.Request) (any, error) {
	var req evalRequest
	if err := s.decodeJSON(r, &req); err != nil {
		return nil, err
	}
	name, err := s.resolveGrid(req.Grid)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	if !s.cfg.Coalesce {
		g, err := s.grids.Get(name)
		if err != nil {
			return nil, err
		}
		if err := validatePoint(req.Point, g.Dim(), 0); err != nil {
			return nil, err
		}
		v, err := g.Evaluate(req.Point)
		if err != nil {
			return nil, err
		}
		s.met.batchSize.Observe(1)
		s.met.points.Inc()
		return evalResponse{Value: v}, nil
	}

	b, err := s.batcherFor(name)
	if err != nil {
		return nil, err
	}
	if err := validatePoint(req.Point, b.grid.Dim(), 0); err != nil {
		return nil, err
	}
	v, err := b.submit(ctx, req.Point)
	if err != nil {
		return nil, err
	}
	return evalResponse{Value: v}, nil
}

func (s *Server) handleEvalBatch(r *http.Request) (any, error) {
	var req batchRequest
	if err := s.decodeJSON(r, &req); err != nil {
		return nil, err
	}
	name, err := s.resolveGrid(req.Grid)
	if err != nil {
		return nil, err
	}
	if len(req.Points) == 0 {
		return batchResponse{Values: []float64{}}, nil
	}
	if len(req.Points) > s.cfg.MaxBatchPoints {
		return nil, httpErrorf(http.StatusRequestEntityTooLarge,
			"batch of %d points exceeds the per-request cap of %d", len(req.Points), s.cfg.MaxBatchPoints)
	}
	g, err := s.grids.Get(name)
	if err != nil {
		return nil, err
	}
	for k, x := range req.Points {
		if err := validatePoint(x, g.Dim(), k); err != nil {
			return nil, err
		}
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	type res struct {
		vals []float64
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		vals, err := g.EvaluateBatch(req.Points, nil)
		ch <- res{vals, err}
	}()
	select {
	case out := <-ch:
		if out.err != nil {
			return nil, out.err
		}
		s.met.batchSize.Observe(float64(len(req.Points)))
		s.met.points.Add(uint64(len(req.Points)))
		return batchResponse{Values: out.vals}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
