package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"compactsg"
	"compactsg/internal/obs"
	"compactsg/internal/serve/metrics"
	"compactsg/internal/store"
)

// Config tunes a Server. The zero value is usable; zero fields take
// the listed defaults.
type Config struct {
	// Workers is the size of the evaluation worker pool each loaded
	// grid uses for batch dispatch (compactsg.WithWorkers). Default 0
	// = auto: resolves to GOMAXPROCS per call, so one large
	// /v1/eval/batch saturates every core while a 1-CPU host stays on
	// the sequential kernels.
	Workers int
	// BlockSize is the cache-blocking block for batch evaluation
	// (compactsg.WithBlockSize). Default 0 (off).
	BlockSize int
	// MaxResident bounds how many grids stay loaded (LRU beyond it).
	// Default 8.
	MaxResident int
	// Coalesce enables micro-batching of /v1/eval requests. When
	// false every request evaluates immediately on its own handler
	// goroutine (the naive one-point-per-request path, kept for
	// comparison with cmd/sgload).
	Coalesce bool
	// MaxBatch is the micro-batch size cap. Default 256.
	MaxBatch int
	// BatchWait is how long an open micro-batch waits for more
	// requests before dispatching. Default 2ms.
	BatchWait time.Duration
	// MaxBodyBytes caps request body size. Default 1 MiB.
	MaxBodyBytes int64
	// MaxBatchPoints caps the number of points in one /v1/eval/batch
	// request. Default 65536.
	MaxBatchPoints int
	// RequestTimeout bounds how long a request may wait for its
	// evaluation. Default 10s.
	RequestTimeout time.Duration
	// TraceRing is how many recent request traces are retained for
	// GET /debug/traces. 0 takes the default (256); negative disables
	// tracing entirely — and with it the per-stage
	// sgserve_stage_seconds attribution, which is derived from spans.
	TraceRing int
	// TraceSample keeps every nth finished trace in the ring (1 = all,
	// the default). Spans and stage metrics cover every request
	// regardless; sampling bounds only ring publication.
	TraceSample int
	// ShardID, when non-empty, labels this server as one shard of a
	// sgproxy-fronted deployment: it is reported by /healthz?detail=1
	// and exported as sgserve_shard_info{shard_id="..."} so scrapes from
	// many shards can be told apart after aggregation.
	ShardID string
	// AccessLog, when non-nil, receives one structured line per request
	// (request ID, handler, grid, points, status, stage breakdown).
	AccessLog *slog.Logger
	// ErrorLog receives handler panic reports (message + stack).
	// Default slog.Default().
	ErrorLog *slog.Logger
	// Online configures the write path (observation-fed models with
	// refine-and-hot-swap); see OnlineConfig. Disabled by default.
	Online OnlineConfig
	// Store, when non-nil, backs the registry's cold-load path with a
	// tiered snapshot store (content-addressed local cache + remote
	// tier). Grids registered with AddStoredGrid load through it, and
	// Swap publishes exported snapshots into it. The server also
	// exports sgserve_store_* gauges refreshed on every /metrics scrape.
	Store *store.Store
	// BlobDir, when non-empty, serves that directory as an HTTP blob
	// tier at /v1/blobs/{key} (GET/HEAD/PUT, uploads fully verified) —
	// the server half other nodes point -remote at.
	BlobDir string
}

func (c *Config) fill() {
	if c.Workers < 0 {
		c.Workers = 0 // auto (GOMAXPROCS)
	}
	if c.MaxResident < 1 {
		c.MaxResident = 8
	}
	if c.MaxBatch < 1 {
		c.MaxBatch = 256
	}
	if c.BatchWait <= 0 {
		c.BatchWait = 2 * time.Millisecond
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxBatchPoints < 1 {
		c.MaxBatchPoints = 65536
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.TraceRing == 0 {
		c.TraceRing = 256
	}
	if c.TraceSample < 1 {
		c.TraceSample = 1
	}
	if c.ErrorLog == nil {
		c.ErrorLog = slog.Default()
	}
	if c.Online.Enabled {
		c.Online.fill()
	}
}

// Server is the HTTP evaluation service: routes, grid registry,
// per-grid coalescers and metrics. Create with New, mount Handler
// into an http.Server, and call Close on shutdown (after
// http.Server.Shutdown) to drain in-flight micro-batches.
//
// Batcher lifecycle: each coalescing batcher owns a registry Lease on
// the exact grid instance it evaluates against. When the LRU evicts
// that instance, the registry's OnEvict hook detaches the batcher,
// drains it in the background, and the drain releases the lease — so
// an evicted grid's flush goroutine always terminates instead of
// leaking, and callers parked in its last open batch still get their
// values. Close waits for all such background drains.
type Server struct {
	cfg    Config
	grids  *GridSet
	mux    *http.ServeMux
	tracer *obs.Tracer
	online *onlineSet // nil unless cfg.Online.Enabled

	mu       sync.Mutex
	batchers map[string]*gridBatcher
	closed   bool
	drains   sync.WaitGroup // background batcher drains after eviction

	// batchEvalGate, when non-nil, runs on the detached eval goroutine
	// right before EvaluateBatch. It exists so the use-after-release
	// regression tests can hold an eval mid-flight while the request
	// times out and the grid is evicted. Set before serving traffic.
	batchEvalGate func(grid string)

	met serverMetrics
}

// gridBatcher couples a batcher with the lease pinning its grid
// instance; the lease is released only after the batcher has drained.
type gridBatcher struct {
	b     *batcher
	lease *Lease
}

type serverMetrics struct {
	registry    *metrics.Registry
	requests    *metrics.CounterVec
	errors      *metrics.CounterVec
	latency     *metrics.HistogramVec
	batchSize   *metrics.Histogram
	points      *metrics.Counter
	resident    *metrics.Gauge
	loads       *metrics.Counter
	loadModes   *metrics.CounterVec
	loadFails   *metrics.Counter
	loadSecs    *metrics.Histogram
	loadWaits   *metrics.Counter
	evictions   *metrics.Counter
	batchersNow *metrics.Gauge
	drainsTotal *metrics.Counter
	panics      *metrics.Counter
	writeErrs   *metrics.Counter
	openConns   *metrics.Gauge
	// Write-path metrics (observe/refine/hot-swap).
	observations *metrics.Counter
	refines      *metrics.Counter
	swaps        *metrics.Counter
	gridVersion  *metrics.GaugeVec
	// Tiered-store gauges, refreshed from store.Stats() on every
	// /metrics scrape (the metrics package is push-only); nil without a
	// store. residentBytes is always present.
	storeGauges   map[string]*metrics.Gauge
	residentBytes *metrics.Gauge
	// stageSecs holds the sgserve_stage_seconds children pre-resolved
	// per stage so the per-request observation path takes no vec-map
	// lock.
	stageSecs [obs.NumStages]*metrics.Histogram
}

// New creates a Server. Register grid files with AddGrid before (or
// while) serving.
func New(cfg Config) *Server {
	cfg.fill()
	s := &Server{
		cfg:      cfg,
		batchers: make(map[string]*gridBatcher),
		tracer:   obs.New(cfg.TraceRing),
	}
	s.tracer.SetSampleEvery(cfg.TraceSample)
	s.grids = NewGridSet(cfg.MaxResident,
		compactsg.WithWorkers(cfg.Workers), compactsg.WithBlockSize(cfg.BlockSize))
	s.grids.OnLoad = func(_ string, mode compactsg.LoadMode, took time.Duration) {
		s.met.loads.Inc()
		s.met.loadModes.With(mode.String()).Inc()
		s.met.loadSecs.Observe(took.Seconds())
		s.met.resident.Set(float64(s.grids.ResidentCount()))
	}
	s.grids.OnLoadFail = func(string, error) { s.met.loadFails.Inc() }
	s.grids.OnLoadWait = func(string) { s.met.loadWaits.Inc() }
	s.grids.OnEvict = func(name string, g *compactsg.Grid) {
		s.met.evictions.Inc()
		s.met.resident.Set(float64(s.grids.ResidentCount()))
		s.dropBatcherForGrid(name, g)
	}
	s.grids.OnSwap = func(name string, version uint64) {
		s.met.swaps.Inc()
		s.met.gridVersion.With(name).Set(float64(version))
	}

	r := metrics.NewRegistry()
	s.met = serverMetrics{
		registry:    r,
		requests:    r.NewCounterVec("sgserve_requests_total", "HTTP requests received, by handler and wire protocol (json or bin).", "handler", "protocol"),
		errors:      r.NewCounterVec("sgserve_errors_total", "Requests answered with a non-2xx status, by handler.", "handler"),
		latency:     r.NewHistogramVec("sgserve_request_seconds", "Request latency in seconds, by handler.", "handler", metrics.DefLatencyBuckets),
		batchSize:   r.NewHistogram("sgserve_batch_size", "Points per dispatched evaluation batch (coalesced micro-batches and explicit batch requests).", metrics.DefSizeBuckets),
		points:      r.NewCounter("sgserve_points_evaluated_total", "Grid points evaluated."),
		resident:    r.NewGauge("sgserve_grids_resident", "Grids currently loaded in memory."),
		loads:       r.NewCounter("sgserve_grid_loads_total", "Grid loads from disk."),
		loadModes:   r.NewCounterVec("sgserve_grid_load_mode_total", "Successful grid loads by payload materialization: mmap (zero-copy snapshot mapping) or copy (decoded into the heap).", "mode"),
		loadFails:   r.NewCounter("sgserve_grid_load_failures_total", "Grid load attempts that failed (missing file, corruption, checksum mismatch, load hook error)."),
		loadSecs:    r.NewHistogram("sgserve_grid_load_seconds", "Wall time of grid file loads (read + decode), in seconds.", metrics.DefLoadBuckets),
		loadWaits:   r.NewCounter("sgserve_grid_load_waits_total", "Requests that piggybacked on another request's in-flight load of the same grid (singleflight followers)."),
		evictions:   r.NewCounter("sgserve_grid_evictions_total", "LRU grid evictions."),
		batchersNow: r.NewGauge("sgserve_batchers_active", "Per-grid micro-batch coalescers currently attached."),
		drainsTotal: r.NewCounter("sgserve_batcher_drains_total", "Batchers drained and closed after their grid instance was evicted or replaced."),
		panics:      r.NewCounter("sgserve_panics_total", "Handler panics recovered by the instrumentation wrapper (each answered with a 500)."),
		writeErrs:   r.NewCounter("sgserve_write_errors_total", "Response bodies that failed mid-write (client gone, connection reset): the client saw a truncated response despite the logged status."),
		openConns:   r.NewGauge("sgserve_open_connections", "TCP connections currently open on the server (accepted and not yet closed or hijacked); wire http.Server.ConnState to Server.ConnState to feed it."),

		observations: r.NewCounter("sgserve_observations_total", "Nodal observations applied to online adaptive models."),
		refines:      r.NewCounter("sgserve_refines_total", "Refinement rounds run on online adaptive models (swapped or not)."),
		swaps:        r.NewCounter("sgserve_grid_swaps_total", "Grid hot-swaps installed (a strictly newer version replacing the resident instance)."),
		gridVersion:  r.NewGaugeVec("sgserve_grid_version", "Installed hot-swap version per grid (absent for statically registered grids).", "grid"),
	}
	if cfg.ShardID != "" {
		r.NewGaugeVec("sgserve_shard_info",
			"Constant 1, labeled with this server's shard ID so per-shard scrapes stay distinguishable after aggregation.",
			"shard_id").With(cfg.ShardID).Set(1)
	}
	stageVec := r.NewHistogramVec("sgserve_stage_seconds",
		"Per-request time spent in each serving stage (decode, validate, load, load_wait, queue_wait, dispatch, eval, encode), in seconds.",
		"stage", metrics.DefStageBuckets)
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		s.met.stageSecs[st] = stageVec.With(st.Name())
	}
	s.met.residentBytes = r.NewGauge("sgserve_mapped_resident_bytes",
		"Estimated physical memory held by resident grid payloads (mincore over mmap'd snapshots; full size for copy loads). Refreshed at scrape.")
	if cfg.Store != nil {
		s.grids.SetStore(cfg.Store)
		s.grids.OnPublish = func(name, key string, err error) {
			if err != nil {
				cfg.ErrorLog.Warn("store publish failed", "grid", name, "err", err)
				return
			}
			cfg.ErrorLog.Info("snapshot published to store", "grid", name, "key", key)
		}
		s.met.storeGauges = make(map[string]*metrics.Gauge)
		for _, g := range []struct{ name, help string }{
			{"sgserve_store_hits", "Store cache hits (cold loads served from the local cache)."},
			{"sgserve_store_misses", "Store cache misses (cold loads that consulted the remote tier)."},
			{"sgserve_store_fills", "Objects fetched, verified and admitted into the local cache."},
			{"sgserve_store_evictions", "Cached objects evicted (whole-file LRU) to respect the cache cap."},
			{"sgserve_store_uncached", "Fetches served as uncached temp files because pinned objects filled the cap."},
			{"sgserve_store_fetch_failures", "Remote fetches that failed (transport error, 5xx, truncation, size cap)."},
			{"sgserve_store_verify_failures", "Fetched blobs rejected by checksum or content-address mismatch (never cached, never served)."},
			{"sgserve_store_fetch_bytes", "Total bytes downloaded from the remote tier."},
			{"sgserve_store_fetch_seconds", "Total wall time spent downloading from the remote tier."},
			{"sgserve_store_objects", "Objects currently in the local cache."},
			{"sgserve_store_size_bytes", "Bytes currently in the local cache (<= sgserve_store_cap_bytes when capped)."},
			{"sgserve_store_cap_bytes", "Configured local cache capacity in bytes (0 = unlimited)."},
		} {
			s.met.storeGauges[g.name] = r.NewGauge(g.name, g.help+" Refreshed at scrape.")
		}
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /metrics", http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		s.refreshStoreMetrics()
		r.Handler().ServeHTTP(w, req)
	}))
	if cfg.BlobDir != "" {
		bh := store.BlobHandler(cfg.BlobDir)
		mux.Handle("GET /v1/blobs/{key}", bh)
		mux.Handle("HEAD /v1/blobs/{key}", bh)
		mux.Handle("PUT /v1/blobs/{key}", bh)
	}
	mux.Handle("GET /debug/traces", s.tracer.Handler())
	mux.HandleFunc("GET /v1/grids", s.instrument("grids", s.handleGrids))
	mux.HandleFunc("POST /v1/eval", s.instrument("eval", s.handleEval))
	mux.HandleFunc("POST /v1/eval/batch", s.instrument("batch", s.handleEvalBatch))
	mux.HandleFunc("POST /v1/eval/bin", s.instrumentRaw("eval_bin", "bin", s.handleEvalBin))
	if cfg.Online.Enabled {
		s.online = newOnlineSet(s, cfg.Online)
		mux.HandleFunc("POST /v1/grids/{name}/observe", s.instrument("observe", s.handleObserve))
		mux.HandleFunc("POST /v1/grids/{name}/refine", s.instrument("refine", s.handleRefine))
	}
	s.mux = mux
	return s
}

// handleHealthz answers liveness probes. The default body stays the
// plain "ok" line (scripts grep for it); ?detail=1 switches to a JSON
// document with the shard identity and registry occupancy that
// sgproxy operators read when deciding which shard is misbehaving.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("detail") == "" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
		return
	}
	versions := s.grids.Versions()
	if len(versions) == 0 {
		versions = nil
	}
	s.writeJSON(w, http.StatusOK, struct {
		Status   string            `json:"status"`
		ShardID  string            `json:"shard_id,omitempty"`
		Resident int               `json:"resident"`
		Grids    int               `json:"grids"`
		Online   bool              `json:"online,omitempty"`
		Versions map[string]uint64 `json:"versions,omitempty"`
	}{
		Status:   "ok",
		ShardID:  s.cfg.ShardID,
		Resident: s.grids.ResidentCount(),
		Grids:    len(s.grids.Info()),
		Online:   s.online != nil,
		Versions: versions,
	})
}

// ConnState maintains the sgserve_open_connections gauge; wire it as
// http.Server.ConnState. Hijacked connections leave the count — the
// server no longer owns them — and net/http fires StateClosed only for
// connections it still owns, so the pairing stays balanced.
func (s *Server) ConnState(_ net.Conn, st http.ConnState) {
	switch st {
	case http.StateNew:
		s.met.openConns.Add(1)
	case http.StateClosed, http.StateHijacked:
		s.met.openConns.Add(-1)
	}
}

// AddGrid registers a compressed grid file under name.
func (s *Server) AddGrid(name, path string) error { return s.grids.Add(name, path) }

// AddStoredGrid registers a grid that loads through the tiered store
// by SGC2 content address (requires Config.Store).
func (s *Server) AddStoredGrid(name, key string) error { return s.grids.AddStored(name, key) }

// refreshStoreMetrics copies the store counters and the resident-page
// estimate into their gauges; runs on every /metrics scrape.
func (s *Server) refreshStoreMetrics() {
	s.met.residentBytes.Set(float64(s.grids.ResidentPayloadBytes()))
	if s.met.storeGauges == nil {
		return
	}
	st := s.cfg.Store.Stats()
	for name, v := range map[string]float64{
		"sgserve_store_hits":            float64(st.Hits),
		"sgserve_store_misses":          float64(st.Misses),
		"sgserve_store_fills":           float64(st.Fills),
		"sgserve_store_evictions":       float64(st.Evictions),
		"sgserve_store_uncached":        float64(st.Uncached),
		"sgserve_store_fetch_failures":  float64(st.FetchFailures),
		"sgserve_store_verify_failures": float64(st.VerifyFailures),
		"sgserve_store_fetch_bytes":     float64(st.FetchBytes),
		"sgserve_store_fetch_seconds":   st.FetchSeconds,
		"sgserve_store_objects":         float64(st.Objects),
		"sgserve_store_size_bytes":      float64(st.SizeBytes),
		"sgserve_store_cap_bytes":       float64(st.CapBytes),
	} {
		s.met.storeGauges[name].Set(v)
	}
}

// Preload eagerly loads registered grids up to the resident bound.
// Per-grid failures do not abort the pass; they come back joined.
func (s *Server) Preload() error { return s.grids.Preload() }

// Grids exposes the registry (read-only use).
func (s *Server) Grids() *GridSet { return s.grids }

// Metrics exposes the metrics registry (for embedding in other muxes).
func (s *Server) Metrics() *metrics.Registry { return s.met.registry }

// Tracer exposes the request tracer (for tests and in-process
// harnesses like sgstress; HTTP consumers use GET /debug/traces).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Handler returns the routing handler for an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains and stops every per-grid coalescer, waits for the
// background drains of already-evicted batchers, then purges the grid
// registry so no grid (and no snapshot file mapping) outlives the
// server. Call it after http.Server.Shutdown so enqueued requests
// still get their values; requests arriving later fail with 503.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.drains.Wait()
		return nil
	}
	s.closed = true
	if s.online != nil {
		defer s.online.close()
	}
	bs := make([]*gridBatcher, 0, len(s.batchers))
	for _, gb := range s.batchers {
		bs = append(bs, gb)
	}
	s.batchers = make(map[string]*gridBatcher)
	s.met.batchersNow.Set(0)
	s.mu.Unlock()
	for _, gb := range bs {
		gb.b.close()
		gb.lease.Release()
	}
	s.drains.Wait()
	s.grids.Purge()
	return nil
}

// isClosed reports whether Close has begun.
func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// batcherFor returns the coalescer bound to the grid instance currently
// resident under name, creating it on first use. Acquiring the lease
// also touches the grid's LRU slot so hot grids stay resident.
func (s *Server) batcherFor(ctx context.Context, name string) (*batcher, error) {
	lease, err := s.grids.Acquire(ctx, name)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		lease.Release()
		return nil, ErrClosed
	}
	if gb, ok := s.batchers[name]; ok && gb.lease.Grid() == lease.Grid() {
		s.mu.Unlock()
		lease.Release()
		return gb.b, nil
	}
	// Either no batcher yet, or a stale one still bound to an evicted
	// instance (its eviction drain hasn't detached it yet) — replace it.
	var stale *gridBatcher
	if gb, ok := s.batchers[name]; ok {
		stale = gb
		delete(s.batchers, name)
	}
	gb := &gridBatcher{lease: lease}
	gb.b = newBatcher(lease.Grid(), s.cfg.MaxBatch, s.cfg.BatchWait, func(n int) {
		s.met.batchSize.Observe(float64(n))
		s.met.points.Add(uint64(n))
	})
	s.batchers[name] = gb
	s.met.batchersNow.Set(float64(len(s.batchers)))
	if stale != nil {
		s.retireLocked(stale)
	}
	s.mu.Unlock()

	// Close the create-after-evict race: if our instance was evicted
	// between Acquire and the map insert above, OnEvict may have run
	// before the batcher existed and missed it. Re-check residency and
	// retire the batcher ourselves if so (exactly one of the two paths
	// wins the map removal, so the drain happens once).
	if !s.grids.IsCurrent(name, lease.Grid()) {
		s.dropBatcherForGrid(name, lease.Grid())
	}
	return gb.b, nil
}

// dropBatcherForGrid detaches the batcher bound to the grid instance g
// (if that is still the one attached under name) and drains it in the
// background: its queued requests complete against the old instance,
// then the drain releases the instance's lease.
func (s *Server) dropBatcherForGrid(name string, g *compactsg.Grid) {
	s.mu.Lock()
	gb, ok := s.batchers[name]
	if !ok || gb.lease.Grid() != g {
		s.mu.Unlock()
		return
	}
	delete(s.batchers, name)
	s.met.batchersNow.Set(float64(len(s.batchers)))
	s.retireLocked(gb)
	s.mu.Unlock()
}

// retireLocked schedules a background drain of a detached batcher.
// Caller holds s.mu; the WaitGroup increment happens under the lock so
// Close (which inspects the map under the same lock) can never miss a
// drain in flight.
func (s *Server) retireLocked(gb *gridBatcher) {
	s.met.drainsTotal.Inc()
	s.drains.Add(1)
	go func() {
		defer s.drains.Done()
		gb.b.close()
		gb.lease.Release()
	}()
}

// ---------------------------------------------------------------------
// handlers

type evalRequest struct {
	Grid  string    `json:"grid"`
	Point []float64 `json:"point"`
}

type evalResponse struct {
	Value float64 `json:"value"`
}

type batchRequest struct {
	Grid   string      `json:"grid"`
	Points [][]float64 `json:"points"`
}

type batchResponse struct {
	Values []float64 `json:"values"`
}

type gridsResponse struct {
	Grids []GridInfo `json:"grids"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// httpError carries a status code through the handler helpers.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func httpErrorf(status int, format string, args ...any) *httpError {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

// instrument wraps a JSON handler with the full instrumentation stack
// (see instrumentRaw) plus the shared JSON success encoding.
func (s *Server) instrument(name string, h func(*http.Request) (any, error)) http.HandlerFunc {
	return s.instrumentRaw(name, "json", func(w http.ResponseWriter, r *http.Request) error {
		body, err := h(r)
		if err != nil {
			return err
		}
		sp := obs.FromContext(r.Context())
		sp.SetStatus(http.StatusOK)
		sp.Begin(obs.StageEncode)
		s.writeJSON(w, http.StatusOK, body)
		sp.End(obs.StageEncode)
		return nil
	})
}

// instrumentRaw wraps a handler with request counting (labeled by
// handler and wire protocol), latency observation, error accounting,
// panic recovery, span lifecycle and (when configured) structured
// access logging. The handler writes its own success response (and is
// responsible for the span's status + encode stage); errors it returns
// are rendered as JSON error bodies with the mapped status.
//
// Panics must be caught here, not left to net/http: the http.Server
// recovery aborts the connection without writing a response, so the
// client would see a dropped connection, no error would be counted and
// the request's latency would never be observed.
func (s *Server) instrumentRaw(name, protocol string, h func(http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	reqs := s.met.requests.With(name, protocol)
	errs := s.met.errors.With(name)
	lat := s.met.latency.With(name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqs.Inc()
		sp := s.tracer.Start(name)
		if sp != nil {
			// The middleware chain may already have stamped a
			// (proxy-propagated) request ID; keep it if so.
			if w.Header().Get("X-Request-Id") == "" {
				w.Header().Set("X-Request-Id", strconv.FormatUint(sp.ID(), 10))
			}
			// Record the inbound request ID too, so a proxied request is
			// findable in this shard's /debug/traces under the same ID
			// the proxy logged (requires the proxy to be listed in
			// -trusted-proxies, or the middleware replaces the header).
			if ext := r.Header.Get("X-Request-Id"); ext != "" {
				sp.SetExtID(ext)
			}
			r = r.WithContext(obs.NewContext(r.Context(), sp))
		}
		status := http.StatusOK
		defer func() {
			if p := recover(); p != nil {
				status = http.StatusInternalServerError
				errs.Inc()
				s.met.panics.Inc()
				s.cfg.ErrorLog.LogAttrs(r.Context(), slog.LevelError, "handler panic",
					slog.String("handler", name),
					slog.Uint64("request_id", sp.ID()),
					slog.String("panic", fmt.Sprint(p)),
					slog.String("stack", string(debug.Stack())))
				sp.SetStatus(status)
				s.writeJSON(w, status, errorResponse{Error: "internal server error"})
			}
			total := time.Since(start)
			lat.Observe(total.Seconds())
			s.finishSpan(r.Context(), sp, name, status, total)
		}()
		if err := h(w, r); err != nil {
			errs.Inc()
			status = statusFor(err)
			sp.SetError(err)
			sp.SetStatus(status)
			s.writeJSON(w, status, errorResponse{Error: err.Error()})
		}
	}
}

// statusFor maps handler errors to HTTP status codes.
func statusFor(err error) int {
	var he *httpError
	switch {
	case errors.As(err, &he):
		return he.status
	case errors.Is(err, ErrUnknownGrid):
		return http.StatusNotFound
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled):
		return 499 // client went away (nginx convention)
	}
	return http.StatusInternalServerError
}

// finishSpan feeds the span's stage durations into the
// sgserve_stage_seconds histograms, emits the access log line, and
// recycles the span. Runs once per request, panic or not.
func (s *Server) finishSpan(ctx context.Context, sp *obs.Span, name string, status int, total time.Duration) {
	if sp != nil {
		for st := obs.Stage(0); st < obs.NumStages; st++ {
			if sp.Touched(st) {
				s.met.stageSecs[st].Observe(sp.Dur(st).Seconds())
			}
		}
	}
	if s.cfg.AccessLog != nil {
		attrs := make([]slog.Attr, 0, 8+int(obs.NumStages))
		attrs = append(attrs,
			slog.Uint64("request_id", sp.ID()),
			slog.String("handler", name),
			slog.Int("status", status),
			slog.Duration("total", total))
		if g := sp.Grid(); g != "" {
			attrs = append(attrs, slog.String("grid", g))
		}
		if n := sp.Points(); n > 0 {
			attrs = append(attrs, slog.Int("points", n))
		}
		if n := sp.BatchSize(); n > 0 {
			attrs = append(attrs, slog.Int("batch_size", n))
		}
		for st := obs.Stage(0); st < obs.NumStages; st++ {
			if sp.Touched(st) {
				attrs = append(attrs, slog.Duration(st.Name(), sp.Dur(st)))
			}
		}
		s.cfg.AccessLog.LogAttrs(ctx, slog.LevelInfo, "request", attrs...)
	}
	sp.Finish()
}

// writeJSON renders a JSON response body. Encoder errors after
// WriteHeader mean the client received a truncated body under an
// already-committed (often 200) status — invisible in the status-code
// metrics, so they are counted separately and logged at debug.
func (s *Server) writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(body); err != nil {
		s.countWriteError("json", status, err)
	}
}

// countWriteError records a response body that failed mid-write.
func (s *Server) countWriteError(protocol string, status int, err error) {
	s.met.writeErrs.Inc()
	s.cfg.ErrorLog.LogAttrs(context.Background(), slog.LevelDebug, "response write failed",
		slog.String("protocol", protocol),
		slog.Int("status", status),
		slog.String("error", err.Error()))
}

// decodeJSON reads the body with the configured size cap. The body
// must hold exactly one JSON value: an empty body and trailing data
// after the value (`{"point":[0.5]}junk`) are both 400s — a decoder
// left to its own devices stops at the end of the first value and
// would silently accept the garbage.
func (s *Server) decodeJSON(r *http.Request, dst any) error {
	r.Body = http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return httpErrorf(http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", maxErr.Limit)
		}
		if errors.Is(err, io.EOF) {
			return httpErrorf(http.StatusBadRequest, "empty request body")
		}
		return httpErrorf(http.StatusBadRequest, "invalid JSON request: %v", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return httpErrorf(http.StatusBadRequest, "request body contains data after the JSON value")
	}
	return nil
}

// resolveGrid fills in the default grid name when exactly one grid is
// registered and the request omitted it.
func (s *Server) resolveGrid(name string) (string, error) {
	if name != "" {
		return name, nil
	}
	names := s.grids.Names()
	if len(names) == 1 {
		return names[0], nil
	}
	return "", httpErrorf(http.StatusBadRequest, "request must name a grid (%d registered)", len(names))
}

// validatePoint checks dimensionality and the [0,1]^d domain.
func validatePoint(x []float64, dim int, k int) error {
	if len(x) != dim {
		return httpErrorf(http.StatusBadRequest, "point %d has %d coordinates, grid has %d dimensions", k, len(x), dim)
	}
	for t, v := range x {
		if v < 0 || v > 1 || v != v { // v != v catches NaN
			return httpErrorf(http.StatusBadRequest, "point %d coordinate %d = %g outside the domain [0,1]", k, t, v)
		}
	}
	return nil
}

func (s *Server) handleGrids(_ *http.Request) (any, error) {
	return gridsResponse{Grids: s.grids.Info()}, nil
}

func (s *Server) handleEval(r *http.Request) (any, error) {
	sp := obs.FromContext(r.Context())
	var req evalRequest
	sp.Begin(obs.StageDecode)
	err := s.decodeJSON(r, &req)
	sp.End(obs.StageDecode)
	if err != nil {
		return nil, err
	}
	name, err := s.resolveGrid(req.Grid)
	if err != nil {
		return nil, err
	}
	sp.SetGrid(name)
	sp.SetPoints(1)
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	if !s.cfg.Coalesce {
		lease, err := s.grids.Acquire(ctx, name)
		if err != nil {
			return nil, err
		}
		// A defer is safe here (unlike handleEvalBatch/handleEvalBin):
		// Evaluate runs synchronously on this goroutine, so the lease
		// cannot be released while the read is still in flight.
		defer lease.Release()
		g := lease.Grid()
		sp.Begin(obs.StageValidate)
		err = validatePoint(req.Point, g.Dim(), 0)
		sp.End(obs.StageValidate)
		if err != nil {
			return nil, err
		}
		sp.Begin(obs.StageEval)
		v, err := g.Evaluate(req.Point)
		sp.End(obs.StageEval)
		if err != nil {
			return nil, err
		}
		sp.SetBatchSize(1)
		s.met.batchSize.Observe(1)
		s.met.points.Inc()
		return evalResponse{Value: v}, nil
	}

	// An ErrClosed from submit normally means "this batcher was retired
	// because its grid instance was evicted between lookup and enqueue";
	// retry against a freshly attached batcher (bounded by ctx). Only a
	// server-wide Close surfaces ErrClosed to the client. Queue wait,
	// dispatch, eval and batch size are recorded on the span by submit,
	// from the timings the flush loop hands back.
	for {
		b, err := s.batcherFor(ctx, name)
		if err != nil {
			return nil, err
		}
		sp.Begin(obs.StageValidate)
		err = validatePoint(req.Point, b.grid.Dim(), 0)
		sp.End(obs.StageValidate)
		if err != nil {
			return nil, err
		}
		v, err := b.submit(ctx, req.Point)
		if errors.Is(err, ErrClosed) && !s.isClosed() {
			continue
		}
		if err != nil {
			return nil, err
		}
		return evalResponse{Value: v}, nil
	}
}

func (s *Server) handleEvalBatch(r *http.Request) (any, error) {
	sp := obs.FromContext(r.Context())
	var req batchRequest
	sp.Begin(obs.StageDecode)
	err := s.decodeJSON(r, &req)
	sp.End(obs.StageDecode)
	if err != nil {
		return nil, err
	}
	name, err := s.resolveGrid(req.Grid)
	if err != nil {
		return nil, err
	}
	sp.SetGrid(name)
	sp.SetPoints(len(req.Points))
	if len(req.Points) == 0 {
		return batchResponse{Values: []float64{}}, nil
	}
	if len(req.Points) > s.cfg.MaxBatchPoints {
		return nil, httpErrorf(http.StatusRequestEntityTooLarge,
			"batch of %d points exceeds the per-request cap of %d", len(req.Points), s.cfg.MaxBatchPoints)
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	lease, err := s.grids.Acquire(ctx, name)
	if err != nil {
		return nil, err
	}
	g := lease.Grid()
	sp.Begin(obs.StageValidate)
	for k, x := range req.Points {
		if err := validatePoint(x, g.Dim(), k); err != nil {
			sp.End(obs.StageValidate)
			lease.Release()
			return nil, err
		}
	}
	sp.End(obs.StageValidate)

	// Evaluation timings come back over the channel rather than being
	// written into sp by the worker goroutine: on ctx expiry the
	// handler returns (and recycles the span) while the evaluation may
	// still be running.
	type res struct {
		vals      []float64
		err       error
		evalStart time.Time
		evalDur   time.Duration
	}
	dispatched := time.Now()
	ch := make(chan res, 1)
	// The lease is released by the eval goroutine, NOT by a handler
	// defer: when the request times out the handler returns while
	// EvaluateBatch is still reading the grid, and if the grid was
	// LRU-evicted mid-flight, releasing the last lease munmaps its
	// snapshot payload under the running read (SIGSEGV). Holding the
	// lease until EvaluateBatch returns keeps the mapping alive exactly
	// as long as anything dereferences it.
	go func() {
		if s.batchEvalGate != nil {
			s.batchEvalGate(name)
		}
		t0 := time.Now()
		vals, err := g.EvaluateBatch(req.Points, nil)
		// Release BEFORE delivering the result: vals no longer reference
		// the mapping, and releasing first means a caller that saw the
		// response can never observe the mapping still pinned by its own
		// already-answered request.
		lease.Release()
		ch <- res{vals, err, t0, time.Since(t0)}
	}()
	select {
	case out := <-ch:
		sp.Add(obs.StageDispatch, out.evalStart.Sub(dispatched))
		sp.Add(obs.StageEval, out.evalDur)
		sp.SetBatchSize(len(req.Points))
		if out.err != nil {
			return nil, out.err
		}
		s.met.batchSize.Observe(float64(len(req.Points)))
		s.met.points.Add(uint64(len(req.Points)))
		return batchResponse{Values: out.vals}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
