package viz

import (
	"bytes"
	"image/color"
	"math"
	"strings"
	"testing"
)

func ramp(w, h int) *Raster {
	v := make([]float64, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v[y*w+x] = float64(x) / float64(w-1)
		}
	}
	r, _ := NewRaster(w, h, v)
	return r
}

func TestNewRasterValidation(t *testing.T) {
	if _, err := NewRaster(0, 4, nil); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewRaster(2, 2, make([]float64, 3)); err == nil {
		t.Error("wrong sample count accepted")
	}
	r, err := NewRaster(2, 2, []float64{1, 2, 3, 4})
	if err != nil || r.At(1, 1) != 4 {
		t.Errorf("NewRaster: %v, At=%g", err, r.At(1, 1))
	}
}

func TestMinMax(t *testing.T) {
	r, _ := NewRaster(2, 2, []float64{-1, 5, 2, 0})
	lo, hi := r.MinMax()
	if lo != -1 || hi != 5 {
		t.Errorf("MinMax = %g, %g", lo, hi)
	}
}

func TestColormapsEndpoints(t *testing.T) {
	for name, cm := range map[string]Colormap{"gray": Grayscale, "inferno": Inferno, "diverging": Diverging} {
		lo := cm(0)
		hi := cm(1)
		if lo == hi {
			t.Errorf("%s: endpoints identical", name)
		}
		if c := cm(math.NaN()); c.A != 255 {
			t.Errorf("%s: NaN not clamped", name)
		}
		if cm(-5) != cm(0) || cm(7) != cm(1) {
			t.Errorf("%s: out-of-range input not clamped", name)
		}
	}
	if Grayscale(0.5).R != 127 {
		t.Errorf("grayscale midpoint %v", Grayscale(0.5))
	}
	if d := Diverging(0.5); d.R != 255 || d.G != 255 || d.B != 255 {
		t.Errorf("diverging midpoint %v want white", d)
	}
}

func TestRenderAndPNG(t *testing.T) {
	r := ramp(16, 8)
	img := Render(r, Grayscale)
	if img.Bounds().Dx() != 16 || img.Bounds().Dy() != 8 {
		t.Fatalf("image bounds %v", img.Bounds())
	}
	// Left edge dark, right edge bright.
	if l, rr := img.RGBAAt(0, 4).R, img.RGBAAt(15, 4).R; l >= rr {
		t.Errorf("ramp not increasing: %d .. %d", l, rr)
	}
	var buf bytes.Buffer
	if err := WritePNG(&buf, img); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("\x89PNG")) {
		t.Error("output is not a PNG")
	}
}

func TestRenderConstantField(t *testing.T) {
	r, _ := NewRaster(4, 4, make([]float64, 16))
	img := Render(r, Grayscale) // must not divide by zero
	if img.RGBAAt(0, 0).A != 255 {
		t.Error("constant field render broken")
	}
}

func TestASCII(t *testing.T) {
	s := ASCII(ramp(10, 3))
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 || len([]rune(lines[0])) != 10 {
		t.Fatalf("ASCII shape wrong: %q", s)
	}
	if lines[0][0] != ' ' || lines[0][9] != '@' {
		t.Errorf("ASCII ramp endpoints: %q", lines[0])
	}
}

func TestIsolinesCircle(t *testing.T) {
	// f = distance² from the raster center; the 0.04 level set is a
	// circle of radius 0.2 — segment endpoints must lie close to it.
	const n = 64
	v := make([]float64, n*n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			dx := float64(x)/(n-1) - 0.5
			dy := float64(y)/(n-1) - 0.5
			v[y*n+x] = dx*dx + dy*dy
		}
	}
	r, _ := NewRaster(n, n, v)
	segs := Isolines(r, 0.04)
	if len(segs) < 20 {
		t.Fatalf("only %d segments for a circle", len(segs))
	}
	for _, s := range segs {
		for _, p := range [][2]float64{{s.X1, s.Y1}, {s.X2, s.Y2}} {
			dx := p[0]/(n-1) - 0.5
			dy := p[1]/(n-1) - 0.5
			rad := math.Sqrt(dx*dx + dy*dy)
			if math.Abs(rad-0.2) > 0.02 {
				t.Fatalf("isoline point at radius %g, want ≈ 0.2", rad)
			}
		}
	}
}

func TestIsolinesEmptyForOutOfRangeLevel(t *testing.T) {
	r := ramp(8, 8)
	if segs := Isolines(r, 5); len(segs) != 0 {
		t.Errorf("level above max produced %d segments", len(segs))
	}
	if segs := Isolines(r, -5); len(segs) != 0 {
		t.Errorf("level below min produced %d segments", len(segs))
	}
}

func TestIsolinesSaddle(t *testing.T) {
	// A 2×2 checkerboard cell: the saddle case must emit two segments.
	r, _ := NewRaster(2, 2, []float64{1, 0, 1, 0})
	segs := Isolines(r, 0.5)
	if len(segs) != 1 {
		// code 1+8 = 9: top-bottom segment, not a saddle.
		t.Fatalf("expected 1 segment for this cell, got %d", len(segs))
	}
	saddle, _ := NewRaster(2, 2, []float64{1, 0, 0, 1})
	segs = Isolines(saddle, 0.5)
	if len(segs) != 2 {
		t.Fatalf("saddle cell: %d segments want 2", len(segs))
	}
}

func TestDrawSegments(t *testing.T) {
	r := ramp(16, 16)
	img := Render(r, Grayscale)
	red := color.RGBA{255, 0, 0, 255}
	DrawSegments(img, []Segment{{0, 0, 15, 15}}, red)
	if img.RGBAAt(8, 8) != red {
		t.Error("diagonal not drawn")
	}
	// Out-of-bounds segments are clipped, not panicking.
	DrawSegments(img, []Segment{{-10, -10, 40, 40}}, red)
}
