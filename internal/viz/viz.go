// Package viz renders decompressed sparse grid slices — the
// "Visualization" box of the paper's Fig. 1 pipeline. It provides
// rasters, colormaps, PNG output and marching-squares isolines; the
// sgview command and the examples build on it.
package viz

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"
	"strings"
)

// Raster is a row-major W×H field of samples (row 0 at the top).
type Raster struct {
	W, H int
	V    []float64
}

// NewRaster validates and wraps a sample field.
func NewRaster(w, h int, v []float64) (*Raster, error) {
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("viz: raster %d×%d invalid", w, h)
	}
	if len(v) != w*h {
		return nil, fmt.Errorf("viz: %d samples for a %d×%d raster", len(v), w, h)
	}
	return &Raster{W: w, H: h, V: v}, nil
}

// At returns the sample at column x, row y.
func (r *Raster) At(x, y int) float64 { return r.V[y*r.W+x] }

// MinMax returns the value range (0,1 for an empty or constant field's
// span guard is the caller's concern).
func (r *Raster) MinMax() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range r.V {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return lo, hi
}

// Colormap maps a normalized value t ∈ [0,1] to a color.
type Colormap func(t float64) color.RGBA

// Grayscale is the identity ramp.
func Grayscale(t float64) color.RGBA {
	c := uint8(clamp01(t) * 255)
	return color.RGBA{c, c, c, 255}
}

// Inferno is a perceptually-ordered dark-to-bright ramp (piecewise
// linear approximation of the matplotlib palette).
func Inferno(t float64) color.RGBA {
	t = clamp01(t)
	stops := [][3]float64{
		{0, 0, 4}, {40, 11, 84}, {101, 21, 110}, {159, 42, 99},
		{212, 72, 66}, {245, 125, 21}, {250, 193, 39}, {252, 255, 164},
	}
	pos := t * float64(len(stops)-1)
	k := int(pos)
	if k >= len(stops)-1 {
		k = len(stops) - 2
	}
	f := pos - float64(k)
	mix := func(a, b float64) uint8 { return uint8(a + (b-a)*f) }
	return color.RGBA{
		mix(stops[k][0], stops[k+1][0]),
		mix(stops[k][1], stops[k+1][1]),
		mix(stops[k][2], stops[k+1][2]),
		255,
	}
}

// Diverging is a blue–white–red ramp centered at t = 0.5.
func Diverging(t float64) color.RGBA {
	t = clamp01(t)
	if t < 0.5 {
		f := t * 2
		return color.RGBA{uint8(59 + f*196), uint8(76 + f*179), 255, 255}
	}
	f := (t - 0.5) * 2
	return color.RGBA{255, uint8(255 - f*179), uint8(255 - f*196), 255}
}

func clamp01(t float64) float64 {
	if t < 0 || math.IsNaN(t) {
		return 0
	}
	if t > 1 {
		return 1
	}
	return t
}

// Render maps the raster through the colormap (normalized to its own
// value range) into an image.
func Render(r *Raster, cm Colormap) *image.RGBA {
	lo, hi := r.MinMax()
	span := hi - lo
	if span == 0 {
		span = 1
	}
	img := image.NewRGBA(image.Rect(0, 0, r.W, r.H))
	for y := 0; y < r.H; y++ {
		for x := 0; x < r.W; x++ {
			img.SetRGBA(x, y, cm((r.At(x, y)-lo)/span))
		}
	}
	return img
}

// WritePNG encodes the image as PNG.
func WritePNG(w io.Writer, img image.Image) error { return png.Encode(w, img) }

// ASCII renders the raster as a text heatmap (for terminals).
func ASCII(r *Raster) string {
	shades := []rune(" .:-=+*#%@")
	lo, hi := r.MinMax()
	span := hi - lo
	if span == 0 {
		span = 1
	}
	var sb strings.Builder
	for y := 0; y < r.H; y++ {
		for x := 0; x < r.W; x++ {
			t := (r.At(x, y) - lo) / span
			sb.WriteRune(shades[int(clamp01(t)*float64(len(shades)-1))])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Segment is one isoline piece in raster coordinates (pixel centers).
type Segment struct {
	X1, Y1, X2, Y2 float64
}

// Isolines extracts the level set {f = level} with marching squares
// over the raster's cell grid. Saddle cells use the average-value rule.
func Isolines(r *Raster, level float64) []Segment {
	var segs []Segment
	// Edge interpolation helpers: position of the crossing along an
	// edge between two sample values.
	cross := func(a, b float64) float64 {
		if a == b {
			return 0.5
		}
		return (level - a) / (b - a)
	}
	for y := 0; y+1 < r.H; y++ {
		for x := 0; x+1 < r.W; x++ {
			v0 := r.At(x, y)     // top-left
			v1 := r.At(x+1, y)   // top-right
			v2 := r.At(x+1, y+1) // bottom-right
			v3 := r.At(x, y+1)   // bottom-left
			code := 0
			if v0 > level {
				code |= 1
			}
			if v1 > level {
				code |= 2
			}
			if v2 > level {
				code |= 4
			}
			if v3 > level {
				code |= 8
			}
			if code == 0 || code == 15 {
				continue
			}
			fx, fy := float64(x), float64(y)
			// Crossing points on the four edges.
			top := [2]float64{fx + cross(v0, v1), fy}
			right := [2]float64{fx + 1, fy + cross(v1, v2)}
			bottom := [2]float64{fx + cross(v3, v2), fy + 1}
			left := [2]float64{fx, fy + cross(v0, v3)}
			add := func(a, b [2]float64) {
				segs = append(segs, Segment{a[0], a[1], b[0], b[1]})
			}
			switch code {
			case 1, 14:
				add(left, top)
			case 2, 13:
				add(top, right)
			case 3, 12:
				add(left, right)
			case 4, 11:
				add(right, bottom)
			case 6, 9:
				add(top, bottom)
			case 7, 8:
				add(left, bottom)
			case 5, 10:
				// Saddle: disambiguate with the cell average.
				avg := (v0 + v1 + v2 + v3) / 4
				if (code == 5) == (avg > level) {
					add(left, top)
					add(right, bottom)
				} else {
					add(left, bottom)
					add(top, right)
				}
			}
		}
	}
	return segs
}

// DrawSegments rasterizes segments onto the image with the given color
// (simple DDA line drawing).
func DrawSegments(img *image.RGBA, segs []Segment, c color.RGBA) {
	for _, s := range segs {
		dx, dy := s.X2-s.X1, s.Y2-s.Y1
		steps := int(math.Max(math.Abs(dx), math.Abs(dy))*2) + 1
		for k := 0; k <= steps; k++ {
			f := float64(k) / float64(steps)
			x := int(math.Round(s.X1 + f*dx))
			y := int(math.Round(s.Y1 + f*dy))
			if image.Pt(x, y).In(img.Rect) {
				img.SetRGBA(x, y, c)
			}
		}
	}
}
