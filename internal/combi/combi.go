// Package combi implements the sparse grid combination technique
// (Griebel 1992, the paper's related work [16]): instead of operating on
// the hierarchical sparse grid directly, the sparse grid interpolant is
// assembled from piecewise-multilinear interpolants on a set of small
// anisotropic full "component" grids,
//
//	f_n^c = Σ_{q=0}^{d-1} (-1)^q · C(d-1, q) · Σ_{|ℓ|₁ = n-1-q} f_ℓ ,
//
// with 0-based per-dimension levels ℓ. For pure interpolation the
// combination is exact: it reproduces the direct sparse grid interpolant.
// Its parallelization is trivial (the component solutions are
// independent) — but grid points shared between component grids are
// replicated, which is precisely the memory overhead the paper's compact
// structure avoids (Sec. 7).
package combi

import (
	"fmt"
	"sync"

	"compactsg/internal/core"
	"compactsg/internal/fullgrid"
)

// Component is one anisotropic full grid with its inclusion–exclusion
// coefficient.
type Component struct {
	Levels []int32
	Coeff  float64
	Grid   *fullgrid.Grid
}

// Solution is a combination-technique representation of a function.
type Solution struct {
	dim, level int
	components []Component
}

// New builds the component grid system for dimension dim and refinement
// level (matching core's convention: the direct sparse grid of the same
// level spans level groups 0..level-1). In one dimension the technique
// degenerates to the single full grid of level-1.
func New(dim, level int) (*Solution, error) {
	if dim < 1 {
		return nil, fmt.Errorf("combi: dimension %d out of range", dim)
	}
	if level < 1 {
		return nil, fmt.Errorf("combi: level %d out of range", level)
	}
	s := &Solution{dim: dim, level: level}
	n := level - 1 // top diagonal |ℓ|₁ = n
	l := make([]int32, dim)
	for q := 0; q < dim && q <= n; q++ {
		coeff := float64(sign(q)) * float64(binomial(dim-1, q))
		if coeff == 0 {
			continue
		}
		core.First(l, n-q)
		for {
			g, err := fullgrid.New(l)
			if err != nil {
				return nil, fmt.Errorf("combi: component %v: %w", l, err)
			}
			s.components = append(s.components, Component{
				Levels: append([]int32(nil), l...),
				Coeff:  coeff,
				Grid:   g,
			})
			if !core.Next(l) {
				break
			}
		}
	}
	return s, nil
}

func sign(q int) int {
	if q%2 == 1 {
		return -1
	}
	return 1
}

func binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	r := int64(1)
	for j := 1; j <= k; j++ {
		r = r * int64(n-k+j) / int64(j)
	}
	return r
}

// Dim returns the dimensionality.
func (s *Solution) Dim() int { return s.dim }

// Level returns the refinement level.
func (s *Solution) Level() int { return s.level }

// Components returns the component grids with their coefficients.
func (s *Solution) Components() []Component { return s.components }

// Fill samples f on every component grid. The components are
// independent, so they are filled concurrently with the given number of
// workers (the "trivial parallelization" of the technique).
func (s *Solution) Fill(f func(x []float64) float64, workers int) {
	if workers <= 1 {
		for _, c := range s.components {
			c.Grid.Fill(f)
		}
		return
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for _, c := range s.components {
		wg.Add(1)
		sem <- struct{}{}
		go func(g *fullgrid.Grid) {
			defer wg.Done()
			g.Fill(f)
			<-sem
		}(c.Grid)
	}
	wg.Wait()
}

// Evaluate interpolates the combination solution at x: the signed sum of
// the component grids' multilinear interpolants.
func (s *Solution) Evaluate(x []float64) float64 {
	res := 0.0
	for _, c := range s.components {
		res += c.Coeff * c.Grid.Interpolate(x)
	}
	return res
}

// TotalPoints returns the number of stored values summed over all
// component grids — including the replicated shared points.
func (s *Solution) TotalPoints() int64 {
	var n int64
	for _, c := range s.components {
		n += c.Grid.Size()
	}
	return n
}

// MemoryBytes returns the total coefficient storage across components.
func (s *Solution) MemoryBytes() int64 { return s.TotalPoints() * 8 }

// ReplicationFactor returns TotalPoints divided by the direct sparse
// grid's point count — the memory overhead of the combination technique
// relative to the compact structure (≥ 1).
func (s *Solution) ReplicationFactor() float64 {
	desc, err := core.NewDescriptor(s.dim, s.level)
	if err != nil {
		return 0
	}
	return float64(s.TotalPoints()) / float64(desc.Size())
}
