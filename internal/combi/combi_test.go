package combi

import (
	"math"
	"math/rand"
	"testing"

	"compactsg/internal/core"
	"compactsg/internal/eval"
	"compactsg/internal/hier"
	"compactsg/internal/workload"
)

func TestComponentStructure(t *testing.T) {
	// d=2, level 3 (n=2): diagonal |ℓ|=2 with +1 (3 grids), |ℓ|=1 with
	// -1 (2 grids).
	s, err := New(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	plus, minus := 0, 0
	for _, c := range s.Components() {
		sum := 0
		for _, l := range c.Levels {
			sum += int(l)
		}
		switch c.Coeff {
		case 1:
			plus++
			if sum != 2 {
				t.Errorf("+1 component %v has |ℓ|=%d want 2", c.Levels, sum)
			}
		case -1:
			minus++
			if sum != 1 {
				t.Errorf("-1 component %v has |ℓ|=%d want 1", c.Levels, sum)
			}
		default:
			t.Errorf("unexpected coefficient %g", c.Coeff)
		}
	}
	if plus != 3 || minus != 2 {
		t.Errorf("components: %d plus, %d minus; want 3, 2", plus, minus)
	}
}

func TestOneDimensionDegenerates(t *testing.T) {
	s, err := New(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Components()) != 1 || s.Components()[0].Coeff != 1 {
		t.Fatalf("1d combination must be the single full grid, got %d components", len(s.Components()))
	}
	if s.Components()[0].Grid.Size() != 31 {
		t.Errorf("component size %d want 31", s.Components()[0].Grid.Size())
	}
}

func TestCombinationEqualsDirectSparseGrid(t *testing.T) {
	// For interpolation the combination technique reproduces the direct
	// sparse grid interpolant exactly (up to roundoff).
	rng := rand.New(rand.NewSource(17))
	for _, c := range []struct{ d, n int }{{1, 4}, {2, 4}, {3, 3}, {4, 3}} {
		s, err := New(c.d, c.n)
		if err != nil {
			t.Fatal(err)
		}
		f := workload.Parabola.F
		s.Fill(f, 1)
		g := core.NewGrid(core.MustDescriptor(c.d, c.n))
		g.Fill(f)
		hier.Iterative(g)
		for k := 0; k < 100; k++ {
			x := make([]float64, c.d)
			for t2 := range x {
				x[t2] = rng.Float64()
			}
			a := s.Evaluate(x)
			b := eval.Iterative(g, x)
			if math.Abs(a-b) > 1e-12 {
				t.Fatalf("d=%d n=%d at %v: combination %.15g vs direct %.15g", c.d, c.n, x, a, b)
			}
		}
	}
}

func TestParallelFillIdentical(t *testing.T) {
	a, err := New(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	a.Fill(workload.Gaussian.F, 1)
	b.Fill(workload.Gaussian.F, 4)
	for k := range a.Components() {
		ga, gb := a.Components()[k].Grid, b.Components()[k].Grid
		for j := range ga.Data {
			if ga.Data[j] != gb.Data[j] {
				t.Fatalf("component %d differs at %d", k, j)
			}
		}
	}
}

func TestReplicationFactor(t *testing.T) {
	// The combination technique stores strictly more values than the
	// compact sparse grid, and the overhead grows with d.
	r2, err := New(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := New(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	f2, f4 := r2.ReplicationFactor(), r4.ReplicationFactor()
	if f2 <= 1 || f4 <= 1 {
		t.Errorf("replication factors must exceed 1: %g, %g", f2, f4)
	}
	if f4 <= f2 {
		t.Errorf("replication should grow with d: d=2 %g, d=4 %g", f2, f4)
	}
	if r2.MemoryBytes() != r2.TotalPoints()*8 {
		t.Error("MemoryBytes inconsistent with TotalPoints")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 3); err == nil {
		t.Error("dim 0 accepted")
	}
	if _, err := New(2, 0); err == nil {
		t.Error("level 0 accepted")
	}
}
