// Package workload provides the deterministic test functions and query
// point generators the benchmark harness and examples use. All functions
// map [0,1]^d → R; the zero-boundary family vanishes on the domain
// boundary as the base data structure requires (paper Sec. 2.1), while
// the general family exercises the extended (boundary) context.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Func is a named d-dimensional test function.
type Func struct {
	Name string
	// ZeroBoundary reports whether f vanishes on ∂[0,1]^d.
	ZeroBoundary bool
	// F evaluates the function.
	F func(x []float64) float64
}

// Parabola is the separable bump Π 4·x(1-x): smooth, zero boundary, the
// canonical sparse grid demo function.
var Parabola = Func{
	Name:         "parabola",
	ZeroBoundary: true,
	F: func(x []float64) float64 {
		p := 1.0
		for _, v := range x {
			p *= 4 * v * (1 - v)
		}
		return p
	},
}

// SineProduct is Π sin(π x): smooth, zero boundary, non-polynomial.
var SineProduct = Func{
	Name:         "sinprod",
	ZeroBoundary: true,
	F: func(x []float64) float64 {
		p := 1.0
		for _, v := range x {
			p *= math.Sin(math.Pi * v)
		}
		return p
	},
}

// Gaussian is the non-separable bump exp(-Σ(4x-2)²) windowed to zero
// boundary by the parabola factor of the first dimension pair.
var Gaussian = Func{
	Name:         "gaussian",
	ZeroBoundary: true,
	F: func(x []float64) float64 {
		s := 0.0
		for _, v := range x {
			d := 4*v - 2
			s += d * d
		}
		w := 1.0
		for _, v := range x {
			w *= v * (1 - v) * 4
		}
		return w * math.Exp(-s/4)
	},
}

// Oscillatory has moderate mixed variation — the hard case for sparse
// grids; zero boundary via the sine window.
var Oscillatory = Func{
	Name:         "oscillatory",
	ZeroBoundary: true,
	F: func(x []float64) float64 {
		s := 0.0
		for t, v := range x {
			s += float64(t+1) * v
		}
		w := 1.0
		for _, v := range x {
			w *= math.Sin(math.Pi * v)
		}
		return w * math.Cos(2*math.Pi*s)
	},
}

// Linear is Σ (t+1)·x_t: NOT zero-boundary; exactly representable by the
// extended-context grid and by multilinear full grids.
var Linear = Func{
	Name:         "linear",
	ZeroBoundary: false,
	F: func(x []float64) float64 {
		s := 0.0
		for t, v := range x {
			s += float64(t+1) * v
		}
		return s
	},
}

// Multilinear is Π (1 + t·x_t)... a product of per-dimension affine
// factors: NOT zero-boundary, exactly multilinear (zero error for any
// interpolant containing the multilinear space).
var Multilinear = Func{
	Name:         "multilinear",
	ZeroBoundary: false,
	F: func(x []float64) float64 {
		p := 1.0
		for t, v := range x {
			p *= 1 + float64(t+1)*v
		}
		return p
	},
}

// ZeroBoundaryFuncs lists the functions usable with the base structure.
var ZeroBoundaryFuncs = []Func{Parabola, SineProduct, Gaussian, Oscillatory}

// ByName returns the named function.
func ByName(name string) (Func, error) {
	for _, f := range append(append([]Func(nil), ZeroBoundaryFuncs...), Linear, Multilinear) {
		if f.Name == name {
			return f, nil
		}
	}
	return Func{}, fmt.Errorf("workload: unknown function %q", name)
}

// Points generates n uniform pseudo-random query points in [0,1]^d from
// the given seed. The same seed always yields the same points, so
// experiment runs are reproducible.
func Points(seed int64, n, d int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([][]float64, n)
	flat := make([]float64, n*d)
	for k := range xs {
		x := flat[k*d : (k+1)*d : (k+1)*d]
		for t := range x {
			x[t] = rng.Float64()
		}
		xs[k] = x
	}
	return xs
}

// GridLine generates n points along a 1d slice of the domain: dimension
// axis sweeps 0..1, all other coordinates pinned at anchor. This is the
// access pattern of the visualization example (slicing a compressed
// field).
func GridLine(d, axis, n int, anchor float64) [][]float64 {
	xs := make([][]float64, n)
	for k := range xs {
		x := make([]float64, d)
		for t := range x {
			x[t] = anchor
		}
		x[axis] = float64(k) / float64(n-1)
		xs[k] = x
	}
	return xs
}
