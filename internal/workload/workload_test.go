package workload

import (
	"math"
	"testing"
)

func TestZeroBoundaryFunctionsVanishOnBoundary(t *testing.T) {
	for _, f := range ZeroBoundaryFuncs {
		for d := 1; d <= 4; d++ {
			x := make([]float64, d)
			for t2 := range x {
				x[t2] = 0.37
			}
			// Pin each dimension to 0 and to 1 in turn.
			for t2 := 0; t2 < d; t2++ {
				for _, b := range []float64{0, 1} {
					saved := x[t2]
					x[t2] = b
					// sin(π·1) is ~1e-16, not exactly 0, in floating point.
					if got := f.F(x); math.Abs(got) > 1e-14 {
						t.Errorf("%s d=%d: f=%g at boundary point %v", f.Name, d, got, x)
					}
					x[t2] = saved
				}
			}
			// And the function is not identically zero inside.
			if f.F(x) == 0 {
				t.Errorf("%s d=%d: zero at interior point", f.Name, d)
			}
		}
	}
}

func TestNonZeroBoundaryFlags(t *testing.T) {
	if Linear.ZeroBoundary || Multilinear.ZeroBoundary {
		t.Error("Linear/Multilinear must be flagged non-zero-boundary")
	}
	if got := Linear.F([]float64{1, 1}); got != 3 {
		t.Errorf("Linear(1,1)=%g want 3", got)
	}
	if got := Multilinear.F([]float64{1, 1}); got != (1+1)*(1+2) {
		t.Errorf("Multilinear(1,1)=%g want 6", got)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"parabola", "sinprod", "gaussian", "oscillatory", "linear", "multilinear"} {
		f, err := ByName(name)
		if err != nil || f.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, f.Name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName of unknown function must fail")
	}
}

func TestPointsDeterministicAndInDomain(t *testing.T) {
	a := Points(99, 200, 5)
	b := Points(99, 200, 5)
	c := Points(100, 200, 5)
	if len(a) != 200 || len(a[0]) != 5 {
		t.Fatalf("Points shape %dx%d", len(a), len(a[0]))
	}
	diff := false
	for k := range a {
		for t2 := range a[k] {
			if a[k][t2] != b[k][t2] {
				t.Fatal("same seed produced different points")
			}
			if a[k][t2] != c[k][t2] {
				diff = true
			}
			if a[k][t2] < 0 || a[k][t2] >= 1 {
				t.Fatalf("point outside [0,1): %v", a[k][t2])
			}
		}
	}
	if !diff {
		t.Error("different seeds produced identical points")
	}
}

func TestGridLine(t *testing.T) {
	xs := GridLine(4, 2, 11, 0.5)
	if len(xs) != 11 {
		t.Fatalf("GridLine length %d", len(xs))
	}
	if xs[0][2] != 0 || xs[10][2] != 1 {
		t.Error("sweep axis must run 0..1")
	}
	if math.Abs(xs[5][2]-0.5) > 1e-15 {
		t.Error("sweep midpoint wrong")
	}
	for _, x := range xs {
		for t2, v := range x {
			if t2 != 2 && v != 0.5 {
				t.Fatalf("anchor dimension %d moved: %g", t2, v)
			}
		}
	}
}

func TestParabolaPeak(t *testing.T) {
	if got := Parabola.F([]float64{0.5, 0.5, 0.5}); got != 1 {
		t.Errorf("parabola peak = %g want 1", got)
	}
	if got := SineProduct.F([]float64{0.5, 0.5}); math.Abs(got-1) > 1e-15 {
		t.Errorf("sinprod peak = %g want 1", got)
	}
}
