package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(3); got != 3 {
		t.Fatalf("Resolve(3) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	for _, n := range []int{0, -1, -100} {
		if got := Resolve(n); got != want {
			t.Fatalf("Resolve(%d) = %d, want GOMAXPROCS %d", n, got, want)
		}
	}
}

// Split must partition [0,n) into contiguous disjoint chunks covering
// the range exactly, with sizes differing by at most one.
func TestSplitPartition(t *testing.T) {
	for _, n := range []int64{0, 1, 2, 7, 8, 9, 63, 64, 1000} {
		for workers := 1; workers <= 12; workers++ {
			var prev int64
			minSz, maxSz := int64(1<<62), int64(0)
			for w := 0; w < workers; w++ {
				lo, hi := Split(n, workers, w)
				if lo != prev {
					t.Fatalf("n=%d W=%d w=%d: lo=%d, want %d (gap/overlap)", n, workers, w, lo, prev)
				}
				if hi < lo {
					t.Fatalf("n=%d W=%d w=%d: hi=%d < lo=%d", n, workers, w, hi, lo)
				}
				sz := hi - lo
				if sz < minSz {
					minSz = sz
				}
				if sz > maxSz {
					maxSz = sz
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d W=%d: chunks end at %d, want %d", n, workers, prev, n)
			}
			if maxSz-minSz > 1 {
				t.Fatalf("n=%d W=%d: chunk sizes range [%d,%d], want spread ≤ 1", n, workers, minSz, maxSz)
			}
		}
	}
}

// AlignedSplit must still partition exactly, and every internal chunk
// boundary must be a multiple of align.
func TestAlignedSplitPartition(t *testing.T) {
	for _, align := range []int64{1, 2, 8, 16} {
		for _, n := range []int64{0, 1, 5, 8, 9, 17, 64, 65, 129, 1000} {
			for workers := 1; workers <= 9; workers++ {
				var prev int64
				for w := 0; w < workers; w++ {
					lo, hi := AlignedSplit(n, workers, w, align)
					if lo != prev {
						t.Fatalf("align=%d n=%d W=%d w=%d: lo=%d, want %d", align, n, workers, w, lo, prev)
					}
					if hi < lo || hi > n {
						t.Fatalf("align=%d n=%d W=%d w=%d: bad hi=%d (lo=%d)", align, n, workers, w, hi, lo)
					}
					if align > 1 && hi != n && hi%align != 0 {
						t.Fatalf("align=%d n=%d W=%d w=%d: internal boundary %d not aligned", align, n, workers, w, hi)
					}
					prev = hi
				}
				if prev != n {
					t.Fatalf("align=%d n=%d W=%d: chunks end at %d, want %d", align, n, workers, prev, n)
				}
			}
		}
	}
}

// The barrier must be cyclic: phase k+1 cannot start before every
// worker finished phase k. Each worker bumps a per-phase counter before
// Wait; after Wait the counter must read exactly n for everyone.
func TestBarrierPhases(t *testing.T) {
	const workers = 8
	const phases = 50
	b := NewBarrier(workers)
	arrived := make([]atomic.Int32, phases)
	var wg sync.WaitGroup
	errs := make(chan string, workers*phases)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := 0; p < phases; p++ {
				arrived[p].Add(1)
				b.Wait()
				if got := arrived[p].Load(); got != workers {
					errs <- "phase released before all workers arrived"
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}

func TestBarrierSingleWorker(t *testing.T) {
	b := NewBarrier(1)
	for i := 0; i < 10; i++ {
		b.Wait() // must never block
	}
}

func TestNewBarrierPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBarrier(0) did not panic")
		}
	}()
	NewBarrier(0)
}
