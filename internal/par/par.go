// Package par is the static workload decomposition layer for the
// multicore kernels (paper Sec. 5: "the hierarchization and evaluation
// algorithms allow a static decomposition of the workload"). It owns
// the three ingredients every parallel kernel shares, so hier, eval and
// the serve dispatch path agree on one policy:
//
//   - worker-count resolution gated on GOMAXPROCS (Resolve): a Workers
//     option of 0 means "use the host", and a 1-CPU host always resolves
//     to the sequential path so CI numbers stay honest;
//   - contiguous range splitting (Split, AlignedSplit): each worker gets
//     one statically assigned chunk, with chunk boundaries optionally
//     rounded to cache-line multiples so two workers never write the
//     same line (false sharing);
//   - a reusable cyclic Barrier: the paper's Alg. 6 requires "a global
//     barrier ... after each group of subspaces is updated", and one
//     persistent worker pool with a barrier per phase replaces
//     spawn-per-phase goroutines.
//
// The decomposition is static by design (DESIGN.md §10): within one
// level group every subspace holds exactly 2^g points, so equal
// subspace counts are equal work and no work stealing or dynamic queue
// is needed — the same property that maps the kernels onto GPU blocks.
package par

import "runtime"

// LineFloat64s is the number of float64 values per cache line (64-byte
// lines, the x86/arm64 default). Chunk boundaries in float64 result
// arrays are aligned to this so adjacent workers do not share a line.
const LineFloat64s = 8

// Auto returns the worker count for Workers = 0: the scheduler's
// GOMAXPROCS. On a 1-CPU host (or GOMAXPROCS=1) this is 1, which every
// kernel maps to its sequential path — parallel overhead is never paid
// where it cannot win, and single-core benchmark numbers measure the
// sequential kernel, not goroutine scheduling.
func Auto() int { return runtime.GOMAXPROCS(0) }

// Resolve maps a Workers option to an effective worker count: n > 0 is
// taken as given (explicit requests are honored even beyond the core
// count — the identity tests rely on oversubscription), anything else
// resolves to Auto().
func Resolve(n int) int {
	if n > 0 {
		return n
	}
	return Auto()
}

// Split statically assigns the range [0, n) to worker w of workers,
// returning the half-open chunk [lo, hi). Chunks are contiguous,
// disjoint, cover the range exactly, and differ in length by at most
// one (the remainder is dealt to the lowest-numbered workers). Workers
// beyond n get empty chunks.
func Split(n int64, workers, w int) (lo, hi int64) {
	q := n / int64(workers)
	r := n % int64(workers)
	lo = int64(w)*q + min(int64(w), r)
	hi = lo + q
	if int64(w) < r {
		hi++
	}
	return lo, hi
}

// AlignedSplit is Split with chunk boundaries rounded to multiples of
// align (the final boundary stays n): splitting n result slots so that
// every internal boundary lands on an align-multiple. With align =
// LineFloat64s and a line-aligned array base, no two workers ever
// write the same cache line, so phase after phase of parallel updates
// cannot ping-pong boundary lines between cores. align ≤ 1 degrades to
// Split.
func AlignedSplit(n int64, workers, w int, align int64) (lo, hi int64) {
	if align <= 1 {
		return Split(n, workers, w)
	}
	units := (n + align - 1) / align
	ulo, uhi := Split(units, workers, w)
	lo = min(ulo*align, n)
	hi = min(uhi*align, n)
	return lo, hi
}

// Barrier is a reusable (cyclic) synchronization barrier for a fixed
// set of n workers: every worker calls Wait at the end of a phase, and
// all of them block until the n-th arrives. The paper's static
// decomposition needs exactly this shape — one pool of workers, a
// barrier after every level group — instead of spawning fresh
// goroutines per group, which would re-pay creation and scheduling
// cost d·n times per transform.
//
// The implementation is a generation-counted channel broadcast: the
// last arrival of a generation closes the generation's channel, which
// releases the waiters, and installs a fresh channel for the next
// phase. Channel close/receive establishes the happens-before edge the
// race detector (and the memory model) wants between the phases.
type Barrier struct {
	n    int
	ch   chan struct{} // current generation's release channel
	gate chan struct{} // capacity-1 mutex guarding count+ch swap
	cnt  int
}

// NewBarrier creates a barrier for n workers. n must be ≥ 1.
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("par: barrier size < 1")
	}
	b := &Barrier{n: n, ch: make(chan struct{}), gate: make(chan struct{}, 1)}
	b.gate <- struct{}{}
	return b
}

// Wait blocks until all n workers of the current phase have called
// Wait, then releases them together and resets for the next phase.
func (b *Barrier) Wait() {
	<-b.gate
	b.cnt++
	if b.cnt == b.n {
		// Last arrival: release this generation and start the next.
		release := b.ch
		b.cnt = 0
		b.ch = make(chan struct{})
		b.gate <- struct{}{}
		close(release)
		return
	}
	release := b.ch
	b.gate <- struct{}{}
	<-release
}
