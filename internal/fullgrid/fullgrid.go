// Package fullgrid implements the regular full grid the sparse grid
// technique compresses away: the isotropic grid with 2^n - 1 interior
// points per dimension (zero boundary), plus the anisotropic component
// grids used by the combination-technique baseline. The full grid is the
// input of the compression pipeline (paper Fig. 1: Simulation →
// Compress) and the yardstick for the curse of dimensionality
// (Ñ^d points versus the sparse grid's O(Ñ (log Ñ)^(d-1))).
package fullgrid

import (
	"fmt"
	"math"

	"compactsg/internal/core"
)

// Grid is an anisotropic full grid: in dimension t it has 2^(levels[t]+1)-1
// interior points at spacing 2^-(levels[t]+1) (0-based levels, matching
// package core: level l in a dimension provides the 1d hierarchical
// levels 0..l). Values are stored row-major with dimension 0 innermost.
type Grid struct {
	levels []int32
	n1d    []int64 // points per dimension, 2^(levels[t]+1) - 1
	stride []int64 // row-major strides, dim 0 innermost
	Data   []float64
}

// New allocates an anisotropic full grid with the given per-dimension
// 0-based levels. It fails if the point count overflows or exceeds
// maxPoints (1 << 31), which on a laptop-scale host is already 16 GiB.
func New(levels []int32) (*Grid, error) {
	const maxPoints = int64(1) << 31
	if len(levels) == 0 {
		return nil, fmt.Errorf("fullgrid: empty level vector")
	}
	g := &Grid{
		levels: append([]int32(nil), levels...),
		n1d:    make([]int64, len(levels)),
		stride: make([]int64, len(levels)),
	}
	total := int64(1)
	for t, l := range levels {
		if l < 0 || l > 40 {
			return nil, fmt.Errorf("fullgrid: level %d out of range in dimension %d", l, t)
		}
		g.n1d[t] = int64(2)<<uint32(l) - 1
		g.stride[t] = total
		if total > maxPoints/g.n1d[t] {
			return nil, fmt.Errorf("fullgrid: %v exceeds the %d point cap", levels, maxPoints)
		}
		total *= g.n1d[t]
	}
	g.Data = make([]float64, total)
	return g, nil
}

// NewIsotropic allocates the isotropic full grid of refinement level n
// (0-based per-dimension level n-1), the direct counterpart of a sparse
// grid of level n: both contain the 1d hierarchical levels 0..n-1.
func NewIsotropic(dim, level int) (*Grid, error) {
	if level < 1 {
		return nil, fmt.Errorf("fullgrid: level %d out of range", level)
	}
	levels := make([]int32, dim)
	for t := range levels {
		levels[t] = int32(level - 1)
	}
	return New(levels)
}

// Dim returns the dimensionality.
func (g *Grid) Dim() int { return len(g.levels) }

// Levels returns the per-dimension 0-based levels.
func (g *Grid) Levels() []int32 { return g.levels }

// Size returns the total number of grid points.
func (g *Grid) Size() int64 { return int64(len(g.Data)) }

// Points1D returns the number of points along dimension t.
func (g *Grid) Points1D(t int) int64 { return g.n1d[t] }

// MemoryBytes returns the coefficient storage footprint.
func (g *Grid) MemoryBytes() int64 { return int64(len(g.Data)) * 8 }

// flatIndex converts per-dimension 1-based point numbers (1..n1d[t]) to
// the flat position.
func (g *Grid) flatIndex(pt []int64) int64 {
	var idx int64
	for t, p := range pt {
		idx += (p - 1) * g.stride[t]
	}
	return idx
}

// Coord returns the coordinate of 1-based point number p in dimension t:
// p · 2^-(levels[t]+1).
func (g *Grid) Coord(t int, p int64) float64 {
	return float64(p) / float64(g.n1d[t]+1)
}

// Fill samples f at every grid point.
func (g *Grid) Fill(f func(x []float64) float64) {
	d := g.Dim()
	pt := make([]int64, d)
	x := make([]float64, d)
	for t := range pt {
		pt[t] = 1
		x[t] = g.Coord(t, 1)
	}
	for idx := range g.Data {
		g.Data[idx] = f(x)
		// Odometer increment, dimension 0 fastest (matches stride order).
		for t := 0; t < d; t++ {
			pt[t]++
			if pt[t] <= g.n1d[t] {
				x[t] = g.Coord(t, pt[t])
				break
			}
			pt[t] = 1
			x[t] = g.Coord(t, 1)
		}
	}
}

// At returns the value at the 1-based per-dimension point numbers.
func (g *Grid) At(pt []int64) float64 { return g.Data[g.flatIndex(pt)] }

// Set stores v at the 1-based per-dimension point numbers.
func (g *Grid) Set(pt []int64, v float64) { g.Data[g.flatIndex(pt)] = v }

// Interpolate evaluates the piecewise multilinear interpolant at
// x ∈ [0,1]^d with zero boundary values.
func (g *Grid) Interpolate(x []float64) float64 {
	d := g.Dim()
	// Per dimension, find the left neighbour point number (0 = boundary)
	// and the local weight of the right neighbour.
	lo := make([]int64, d)
	w := make([]float64, d)
	for t := 0; t < d; t++ {
		h := 1.0 / float64(g.n1d[t]+1)
		v := x[t] / h
		f := math.Floor(v)
		lo[t] = int64(f)
		if lo[t] < 0 {
			lo[t], w[t] = 0, 0
		} else if lo[t] >= g.n1d[t]+1 {
			lo[t], w[t] = g.n1d[t], 1
		} else {
			w[t] = v - f
		}
	}
	// Sum over the 2^d cell corners.
	res := 0.0
	pt := make([]int64, d)
	for corner := 0; corner < 1<<uint(d); corner++ {
		weight := 1.0
		inside := true
		for t := 0; t < d; t++ {
			p := lo[t]
			if corner&(1<<uint(t)) != 0 {
				p++
				weight *= w[t]
			} else {
				weight *= 1 - w[t]
			}
			if p < 1 || p > g.n1d[t] {
				inside = false // boundary corner, value 0
				break
			}
			pt[t] = p
		}
		if inside && weight != 0 {
			res += weight * g.At(pt)
		}
	}
	return res
}

// FromSparse reconstructs a full grid of the given per-dimension levels
// by sampling the compressed sparse grid's interpolant at every full
// grid point — the complete decompression step when a dense volume is
// needed (e.g. handing a 3d block to a volume renderer). eval is the
// interpolant (typically eval.Iterative wrapped by the caller to avoid
// an import cycle with package eval).
func FromSparse(levels []int32, eval func(x []float64) float64) (*Grid, error) {
	g, err := New(levels)
	if err != nil {
		return nil, err
	}
	g.Fill(eval)
	return g, nil
}

// ToSparse selects the full grid's values at the points of the sparse
// grid descriptor — the first half of the compression pipeline. Every
// sparse grid point must exist in the full grid (the full grid's level
// must be ≥ the sparse grid's per-dimension maximum, which NewIsotropic
// with the same level guarantees).
func (g *Grid) ToSparse(desc *core.Descriptor) (*core.Grid, error) {
	if desc.Dim() != g.Dim() {
		return nil, fmt.Errorf("fullgrid: dimension mismatch %d vs %d", desc.Dim(), g.Dim())
	}
	for t := 0; t < g.Dim(); t++ {
		if int(g.levels[t]) < desc.Level()-1 {
			return nil, fmt.Errorf("fullgrid: dimension %d level %d cannot host sparse level %d", t, g.levels[t], desc.Level())
		}
	}
	sg := core.NewGrid(desc)
	pt := make([]int64, g.Dim())
	desc.VisitPoints(func(idx int64, l, i []int32) {
		for t := range pt {
			// Point i/2^(l+1) is full grid point number
			// i · 2^(levels[t] - l).
			pt[t] = int64(i[t]) << uint32(int32(g.levels[t])-l[t])
		}
		sg.Data[idx] = g.At(pt)
	})
	return sg, nil
}
