package fullgrid

import (
	"math"
	"math/rand"
	"testing"

	"compactsg/internal/core"
	"compactsg/internal/eval"
	"compactsg/internal/hier"
	"compactsg/internal/workload"
)

func TestNewShapes(t *testing.T) {
	g, err := New([]int32{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.Dim() != 3 {
		t.Errorf("Dim=%d", g.Dim())
	}
	wantN := []int64{7, 1, 3}
	for td, w := range wantN {
		if g.Points1D(td) != w {
			t.Errorf("Points1D(%d)=%d want %d", td, g.Points1D(td), w)
		}
	}
	if g.Size() != 21 {
		t.Errorf("Size=%d want 21", g.Size())
	}
	if g.MemoryBytes() != 21*8 {
		t.Errorf("MemoryBytes=%d", g.MemoryBytes())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty levels accepted")
	}
	if _, err := New([]int32{-1}); err == nil {
		t.Error("negative level accepted")
	}
	if _, err := New([]int32{20, 20, 20}); err == nil {
		t.Error("oversized grid accepted")
	}
	if _, err := NewIsotropic(2, 0); err == nil {
		t.Error("level-0 isotropic accepted")
	}
}

func TestIsotropicMatchesCurse(t *testing.T) {
	// The curse of dimensionality: (2^n - 1)^d points.
	g, err := NewIsotropic(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 15*15*15 {
		t.Errorf("Size=%d want 3375", g.Size())
	}
}

func TestFillAtCoords(t *testing.T) {
	g, err := New([]int32{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	f := workload.Linear.F
	g.Fill(f)
	for p1 := int64(1); p1 <= 3; p1++ {
		for p2 := int64(1); p2 <= 7; p2++ {
			x := []float64{g.Coord(0, p1), g.Coord(1, p2)}
			if got := g.At([]int64{p1, p2}); got != f(x) {
				t.Fatalf("At(%d,%d)=%g want %g", p1, p2, got, f(x))
			}
		}
	}
	g.Set([]int64{2, 3}, -5)
	if g.At([]int64{2, 3}) != -5 {
		t.Error("Set/At round trip failed")
	}
}

func TestInterpolateExactAtNodes(t *testing.T) {
	g, err := New([]int32{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	g.Fill(workload.Parabola.F)
	for p1 := int64(1); p1 <= 7; p1++ {
		for p2 := int64(1); p2 <= 3; p2++ {
			x := []float64{g.Coord(0, p1), g.Coord(1, p2)}
			if got := g.Interpolate(x); math.Abs(got-g.At([]int64{p1, p2})) > 1e-15 {
				t.Fatalf("Interpolate at node (%d,%d) = %g want %g", p1, p2, got, g.At([]int64{p1, p2}))
			}
		}
	}
}

func TestInterpolateZeroBoundaryAndOutside(t *testing.T) {
	g, err := NewIsotropic(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	g.Fill(workload.Parabola.F)
	for _, x := range [][]float64{{0, 0.5}, {1, 0.5}, {0.5, 0}, {0.5, 1}} {
		if got := g.Interpolate(x); got != 0 {
			t.Errorf("Interpolate at boundary %v = %g want 0", x, got)
		}
	}
	if got := g.Interpolate([]float64{-0.5, 0.5}); got != 0 {
		t.Errorf("Interpolate outside domain = %g want 0", got)
	}
}

func TestInterpolateConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := make([][]float64, 100)
	for k := range pts {
		pts[k] = []float64{rng.Float64(), rng.Float64()}
	}
	prev := math.Inf(1)
	for _, n := range []int{2, 4, 6} {
		g, err := NewIsotropic(2, n)
		if err != nil {
			t.Fatal(err)
		}
		g.Fill(workload.Parabola.F)
		maxErr := 0.0
		for _, x := range pts {
			if e := math.Abs(g.Interpolate(x) - workload.Parabola.F(x)); e > maxErr {
				maxErr = e
			}
		}
		if maxErr >= prev {
			t.Errorf("level %d: full grid error %g did not shrink (prev %g)", n, maxErr, prev)
		}
		prev = maxErr
	}
}

func TestToSparseCompressionPipeline(t *testing.T) {
	// Simulation → full grid → select sparse points → hierarchize →
	// evaluate: at sparse grid points the decompressed values equal the
	// full grid's samples exactly.
	full, err := NewIsotropic(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := workload.SineProduct.F
	full.Fill(f)
	desc := core.MustDescriptor(3, 4)
	sg, err := full.ToSparse(desc)
	if err != nil {
		t.Fatal(err)
	}
	// The selected values are f at sparse grid points.
	x := make([]float64, 3)
	desc.VisitPoints(func(idx int64, l, i []int32) {
		core.Coords(l, i, x)
		if sg.Data[idx] != f(x) {
			t.Fatalf("ToSparse at %v: %g want %g", x, sg.Data[idx], f(x))
		}
	})
	hier.Iterative(sg)
	desc.VisitPoints(func(idx int64, l, i []int32) {
		core.Coords(l, i, x)
		if got := eval.Iterative(sg, x); math.Abs(got-f(x)) > 1e-12 {
			t.Fatalf("decompressed value at %v: %g want %g", x, got, f(x))
		}
	})
	// Compression ratio sanity: sparse ≪ full.
	if sg.MemoryBytes()*4 > full.MemoryBytes() {
		t.Errorf("sparse grid (%d B) not much smaller than full grid (%d B)", sg.MemoryBytes(), full.MemoryBytes())
	}
}

func TestToSparseValidation(t *testing.T) {
	full, err := NewIsotropic(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := full.ToSparse(core.MustDescriptor(3, 3)); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := full.ToSparse(core.MustDescriptor(2, 5)); err == nil {
		t.Error("sparse level deeper than full grid accepted")
	}
	aniso, err := New([]int32{4, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := aniso.ToSparse(core.MustDescriptor(2, 4)); err == nil {
		t.Error("anisotropic grid too shallow in dim 1 accepted")
	}
}

func TestAnisotropicInterpolation(t *testing.T) {
	// Anisotropic component grids (combination technique substrate):
	// exact for multilinear functions regardless of anisotropy.
	g, err := New([]int32{3, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	f := func(x []float64) float64 { // multilinear with zero boundary in no dim... use product form
		return x[0] * x[1] * x[2]
	}
	g.Fill(f)
	// x0*x1*x2 is multilinear but NOT zero-boundary; interpolation is
	// exact only inside cells away from the implicit zero boundary. Test
	// at cell centers in the interior region instead.
	rng := rand.New(rand.NewSource(31))
	for k := 0; k < 50; k++ {
		x := []float64{
			0.25 + rng.Float64()*0.5,
			0.25 + rng.Float64()*0.5,
			0.25 + rng.Float64()*0.5,
		}
		got := g.Interpolate(x)
		if math.Abs(got-f(x)) > 0.3 {
			t.Fatalf("anisotropic interpolation far off at %v: %g want %g", x, got, f(x))
		}
	}
}

func TestFromSparseDecompression(t *testing.T) {
	// Compress → decompress to a dense volume: values at full grid
	// points equal the sparse interpolant there, and at sparse grid
	// points equal the original function.
	f := workload.Parabola.F
	sg := core.NewGrid(core.MustDescriptor(2, 4))
	sg.Fill(f)
	hier.Iterative(sg)
	full, err := FromSparse([]int32{3, 3}, func(x []float64) float64 { return eval.Iterative(sg, x) })
	if err != nil {
		t.Fatal(err)
	}
	if full.Size() != 15*15 {
		t.Fatalf("decompressed volume size %d", full.Size())
	}
	for p1 := int64(1); p1 <= 15; p1++ {
		for p2 := int64(1); p2 <= 15; p2++ {
			x := []float64{full.Coord(0, p1), full.Coord(1, p2)}
			want := eval.Iterative(sg, x)
			if got := full.At([]int64{p1, p2}); got != want {
				t.Fatalf("volume at %v: %g want %g", x, got, want)
			}
		}
	}
	// Round trip: selecting the sparse points out of the decompressed
	// volume and re-hierarchizing recovers the coefficients.
	back, err := full.ToSparse(sg.Desc())
	if err != nil {
		t.Fatal(err)
	}
	hier.Iterative(back)
	for k := range sg.Data {
		if math.Abs(back.Data[k]-sg.Data[k]) > 1e-12 {
			t.Fatalf("round trip coefficient %d: %g want %g", k, back.Data[k], sg.Data[k])
		}
	}
	if _, err := FromSparse([]int32{50, 50}, f); err == nil {
		t.Error("oversized FromSparse accepted")
	}
}
