package boundary

import (
	"sync"

	"compactsg/internal/core"
	"compactsg/internal/eval"
	"compactsg/internal/par"
)

// Hierarchize transforms the extended grid's nodal values into
// hierarchical coefficients in place. It is the dimension-by-dimension
// update of package hier generalized to non-zero boundaries: when a
// point's 1d ancestor in the working dimension falls on the domain
// boundary, the ancestor's value is read from the corresponding boundary
// face instead of being zero. Faces where the working dimension is fixed
// are read-only in that dimension's pass, so within a pass the usual
// descending level-group order suffices.
func (g *Grid) Hierarchize() {
	for t := 0; t < g.dim; t++ {
		for k := range g.faces {
			f := &g.faces[k]
			if f.FixedMask&(1<<uint(t)) != 0 {
				continue // t pinned: no hierarchization along t here
			}
			g.hierFaceDim(f, t, false)
		}
	}
}

// HierarchizeParallel distributes each dimension pass's faces over
// workers. Faces with the working dimension free update only their own
// slots and read only faces where that dimension is fixed (untouched in
// the pass), so the faces of one pass are independent. workers = 0
// means auto (GOMAXPROCS). Results are bit-identical to Hierarchize.
func (g *Grid) HierarchizeParallel(workers int) {
	workers = par.Resolve(workers)
	if workers <= 1 {
		g.Hierarchize()
		return
	}
	for t := 0; t < g.dim; t++ {
		g.parallelPass(t, false, workers)
	}
}

// DehierarchizeParallel is the parallel inverse transform; workers = 0
// means auto (GOMAXPROCS).
func (g *Grid) DehierarchizeParallel(workers int) {
	workers = par.Resolve(workers)
	if workers <= 1 {
		g.Dehierarchize()
		return
	}
	for t := g.dim - 1; t >= 0; t-- {
		g.parallelPass(t, true, workers)
	}
}

func (g *Grid) parallelPass(t int, inverse bool, workers int) {
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for k := range g.faces {
		f := &g.faces[k]
		if f.FixedMask&(1<<uint(t)) != 0 {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(f *Face) {
			defer wg.Done()
			g.hierFaceDim(f, t, inverse)
			<-sem
		}(f)
	}
	wg.Wait()
}

// Dehierarchize inverts Hierarchize in place.
func (g *Grid) Dehierarchize() {
	for t := g.dim - 1; t >= 0; t-- {
		for k := range g.faces {
			f := &g.faces[k]
			if f.FixedMask&(1<<uint(t)) != 0 {
				continue
			}
			g.hierFaceDim(f, t, true)
		}
	}
}

// hierFaceDim applies the dimension-t (de)hierarchization to one face.
func (g *Grid) hierFaceDim(f *Face, t int, inverse bool) {
	desc := f.Desc
	tf := 0
	for p, dim := range f.free {
		if dim == t {
			tf = p
		}
	}
	// Neighbouring boundary faces that carry the out-of-domain ancestors.
	fL, err := g.Face(f.FixedMask|1<<uint(t), f.SideBits)
	if err != nil {
		panic(err)
	}
	fR, err := g.Face(f.FixedMask|1<<uint(t), f.SideBits|1<<uint(t))
	if err != nil {
		panic(err)
	}

	i := make([]int32, desc.Dim())
	subL := make([]int32, desc.Dim()-1)
	subI := make([]int32, desc.Dim()-1)
	it := core.NewSubspaceIter(desc)
	groups := make([]int, 0, desc.Groups())
	for grp := 0; grp < desc.Groups(); grp++ {
		groups = append(groups, grp)
	}
	if !inverse {
		// Descending for hierarchization, ascending for the inverse.
		for a, b := 0, len(groups)-1; a < b; a, b = a+1, b-1 {
			groups[a], groups[b] = groups[b], groups[a]
		}
	}
	for _, grp := range groups {
		it.SeekGroup(grp)
		for it.Valid() && it.Group() == grp {
			l := it.Level()
			n := it.Points()
			start := it.Start()
			for p := int64(0); p < n; p++ {
				core.DecodeIndex1(p, l, i)
				lv := g.ancestorValue(f, fL, desc, l, i, tf, core.LeftParent, subL, subI)
				rv := g.ancestorValue(f, fR, desc, l, i, tf, core.RightParent, subL, subI)
				if inverse {
					g.Data[f.Offset+start+p] += (lv + rv) / 2
				} else {
					g.Data[f.Offset+start+p] -= (lv + rv) / 2
				}
			}
			it.Advance()
		}
	}
}

// ancestorValue reads the value of the 1d hierarchical ancestor of
// (l, i) in face-local dimension tf on the given side: from the same
// face if the ancestor is an interior point of the 1d hierarchy, from
// the boundary face fB otherwise.
func (g *Grid) ancestorValue(f, fB *Face, desc *core.Descriptor, l, i []int32, tf int, dir core.ParentDir, subL, subI []int32) float64 {
	if idx, ok := desc.ParentIdx(l, i, tf, dir); ok {
		return g.Data[f.Offset+idx]
	}
	// Ancestor on the boundary: drop dimension tf, index into fB.
	if fB.Desc == nil {
		return g.Data[fB.Offset]
	}
	k := 0
	for p := range l {
		if p == tf {
			continue
		}
		subL[k] = l[p]
		subI[k] = i[p]
		k++
	}
	return g.Data[fB.Offset+fB.Desc.GP2Idx(subL, subI)]
}

// Evaluate interpolates the hierarchized extended grid at x ∈ [0,1]^d:
// the interior contribution plus, for every boundary face, the face's
// sparse grid interpolant weighted by the boundary basis factors
// Π (1-x_t) or x_t of its fixed dimensions.
func (g *Grid) Evaluate(x []float64) float64 {
	res := 0.0
	sub := make([]float64, g.dim)
	for k := range g.faces {
		f := &g.faces[k]
		w := 1.0
		for t := 0; t < g.dim; t++ {
			if f.FixedMask&(1<<uint(t)) == 0 {
				continue
			}
			if f.SideBits&(1<<uint(t)) != 0 {
				w *= x[t] // right-side boundary hat φ_{0,1}
			} else {
				w *= 1 - x[t] // left-side boundary hat φ_{0,0}
			}
		}
		if w == 0 {
			continue
		}
		if f.Desc == nil {
			res += w * g.Data[f.Offset]
			continue
		}
		xs := sub[:len(f.free)]
		for p, t := range f.free {
			xs[p] = x[t]
		}
		res += w * eval.Iterative(g.faceView(f), xs)
	}
	return res
}

// MemoryBytes returns the coefficient storage footprint.
func (g *Grid) MemoryBytes() int64 { return int64(len(g.Data)) * 8 }

// Integrate computes ∫_{[0,1]^d} of the hierarchized extended grid in
// closed form: every face contributes its interior-style integral over
// the free dimensions (each basis function integrates to 2^-(|l|₁+d_free))
// times 1/2 per fixed dimension (the boundary hats integrate to 1/2).
func (g *Grid) Integrate() float64 {
	res := 0.0
	for k := range g.faces {
		f := &g.faces[k]
		j := 0
		for t := 0; t < g.dim; t++ {
			if f.FixedMask&(1<<uint(t)) != 0 {
				j++
			}
		}
		w := 1.0 / float64(int64(1)<<uint(j))
		if f.Desc == nil {
			res += w * g.Data[f.Offset]
			continue
		}
		sub := 0.0
		d := f.Desc.Dim()
		it := core.NewSubspaceIter(f.Desc)
		for it.Valid() {
			sw := 1.0 / float64(int64(1)<<uint(it.Group()+d))
			sum := 0.0
			lo := f.Offset + it.Start()
			hi := lo + it.Points()
			for _, v := range g.Data[lo:hi] {
				sum += v
			}
			sub += sw * sum
			it.Advance()
		}
		res += w * sub
	}
	return res
}
