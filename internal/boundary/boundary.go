// Package boundary implements the paper's extendable context (Sec. 4.4):
// sparse grids for functions that do NOT vanish on the domain boundary.
//
// The observation: the boundary of a d-dimensional sparse grid decomposes
// into lower-dimensional zero-boundary sparse grids — fix any non-empty
// subset of j dimensions to a side of the domain and the points with the
// remaining d-j dimensions free form a (d-j)-dimensional sparse grid.
// There are 2^j · C(d, j) such faces of co-dimension j (Fig. 7: a 3d grid
// has 6 2d-projections, 12 1d-projections and 8 corners), and together
// with the interior grid the pieces number 3^d.
//
// Every face reuses the compact gp2idx layout of package core over its
// free dimensions; faces are stored back to back in one flat array,
// grouped by co-dimension with an arithmetic ordering function inside
// each group — exactly the scheme the paper sketches.
package boundary

import (
	"fmt"
	"math/bits"

	"compactsg/internal/core"
)

// Face describes one piece of the decomposition.
type Face struct {
	// FixedMask has bit t set iff dimension t is pinned to the boundary.
	FixedMask uint32
	// SideBits: for every fixed dimension t, bit t set means x_t = 1
	// (right side); clear means x_t = 0. Bits of free dimensions are 0.
	SideBits uint32
	// Desc is the compact descriptor over the free dimensions; nil for
	// corners (all dimensions fixed), which store a single value.
	Desc *core.Descriptor
	// Offset is the face's first slot in the shared coefficient array.
	Offset int64
	// free lists the free dimensions in ascending order.
	free []int
}

// Size returns the number of grid points on the face.
func (f *Face) Size() int64 {
	if f.Desc == nil {
		return 1
	}
	return f.Desc.Size()
}

// FreeDims returns the face's free dimensions in ascending order.
func (f *Face) FreeDims() []int { return f.free }

// Grid is a sparse grid with non-zero boundary support: the interior
// zero-boundary grid plus all boundary faces, sharing one flat array.
type Grid struct {
	dim   int
	level int
	faces []Face
	// rank maps (FixedMask, SideBits) to the position in faces.
	rank map[uint64]int
	// groupStart[j] is the index in faces of the first co-dimension-j
	// face; groupOffset[j] its slot offset in Data.
	groupStart  []int
	groupOffset []int64
	Data        []float64
}

// New builds the extended grid for dimension dim (≤ 30, the face count
// is 3^dim) and refinement level.
func New(dim, level int) (*Grid, error) {
	if dim < 1 || dim > 30 {
		return nil, fmt.Errorf("boundary: dimension %d out of range [1, 30]", dim)
	}
	// Shared descriptors per free-dimension count.
	descs := make([]*core.Descriptor, dim+1)
	for fd := 1; fd <= dim; fd++ {
		d, err := core.NewDescriptor(fd, level)
		if err != nil {
			return nil, err
		}
		descs[fd] = d
	}
	g := &Grid{
		dim:         dim,
		level:       level,
		rank:        make(map[uint64]int),
		groupStart:  make([]int, dim+2),
		groupOffset: make([]int64, dim+2),
	}
	var offset int64
	// Co-dimension groups in ascending order; within a group, subset
	// masks in numeric (= colexicographic) order, then side bits.
	for j := 0; j <= dim; j++ {
		g.groupStart[j] = len(g.faces)
		g.groupOffset[j] = offset
		for mask := uint32(0); mask < 1<<uint(dim); mask++ {
			if bits.OnesCount32(mask) != j {
				continue
			}
			free := make([]int, 0, dim-j)
			for t := 0; t < dim; t++ {
				if mask&(1<<uint(t)) == 0 {
					free = append(free, t)
				}
			}
			for sides := uint32(0); sides < 1<<uint(j); sides++ {
				f := Face{
					FixedMask: mask,
					SideBits:  spreadBits(sides, mask),
					Desc:      descs[dim-j],
					Offset:    offset,
					free:      free,
				}
				g.rank[faceKey(f.FixedMask, f.SideBits)] = len(g.faces)
				g.faces = append(g.faces, f)
				offset += f.Size()
			}
		}
	}
	g.groupStart[dim+1] = len(g.faces)
	g.groupOffset[dim+1] = offset
	g.Data = make([]float64, offset)
	return g, nil
}

// spreadBits distributes the low bits of packed onto the set bit
// positions of mask, lowest mask bit first.
func spreadBits(packed, mask uint32) uint32 {
	var out uint32
	k := 0
	for t := 0; t < 32; t++ {
		if mask&(1<<uint(t)) != 0 {
			if packed&(1<<uint(k)) != 0 {
				out |= 1 << uint(t)
			}
			k++
		}
	}
	return out
}

// packBits inverts spreadBits: collects the bits of spread at the set
// positions of mask into a dense low-bit integer.
func packBits(spread, mask uint32) uint32 {
	var out uint32
	k := 0
	for t := 0; t < 32; t++ {
		if mask&(1<<uint(t)) != 0 {
			if spread&(1<<uint(t)) != 0 {
				out |= 1 << uint(k)
			}
			k++
		}
	}
	return out
}

func faceKey(mask, sides uint32) uint64 {
	return uint64(mask)<<32 | uint64(sides)
}

// Dim returns the dimensionality.
func (g *Grid) Dim() int { return g.dim }

// Level returns the refinement level.
func (g *Grid) Level() int { return g.level }

// Size returns the total number of stored coefficients.
func (g *Grid) Size() int64 { return int64(len(g.Data)) }

// Faces returns all pieces in storage order (interior first).
func (g *Grid) Faces() []Face { return g.faces }

// FacesOfCodim returns the faces with exactly j fixed dimensions.
func (g *Grid) FacesOfCodim(j int) []Face {
	return g.faces[g.groupStart[j]:g.groupStart[j+1]]
}

// Interior returns the interior (zero-boundary) face.
func (g *Grid) Interior() *Face { return &g.faces[0] }

// Face returns the face with the given fixed mask and side bits.
func (g *Grid) Face(mask, sides uint32) (*Face, error) {
	k, ok := g.rank[faceKey(mask, sides&mask)]
	if !ok {
		return nil, fmt.Errorf("boundary: no face for mask %b", mask)
	}
	return &g.faces[k], nil
}

// FaceOffset is the arithmetic ordering function of Sec. 4.4: it
// computes a face's storage offset from (mask, sides) alone, without
// consulting the face table. Faces of co-dimension j all have equal
// size, so the offset is groupOffset[j] + rank·size, where the rank
// interleaves the colexicographic subset rank with the packed side bits.
func (g *Grid) FaceOffset(mask, sides uint32) int64 {
	j := bits.OnesCount32(mask)
	size := int64(1)
	if j < g.dim {
		size = g.faces[g.groupStart[j]].Desc.Size()
	}
	rank := int64(subsetColexRank(mask))<<uint(j) + int64(packBits(sides&mask, mask))
	return g.groupOffset[j] + rank*size
}

// subsetColexRank ranks a bitmask among all masks with the same
// popcount, in numeric (colexicographic) order: Σ C(c_k, k) over the
// set bit positions c_1 < c_2 < … .
func subsetColexRank(mask uint32) int64 {
	var rank int64
	k := 1
	for m := mask; m != 0; m &= m - 1 {
		c := bits.TrailingZeros32(m)
		b, _ := binom(c, k)
		rank += b
		k++
	}
	return rank
}

// binom is a small exact binomial for subset ranking (arguments ≤ 32).
func binom(n, k int) (int64, bool) {
	if k < 0 || k > n {
		return 0, true
	}
	if k > n-k {
		k = n - k
	}
	r := int64(1)
	for j := 1; j <= k; j++ {
		r = r * int64(n-k+j) / int64(j)
	}
	return r, true
}

// faceView wraps a face's slots as a compact grid (shared storage).
func (g *Grid) faceView(f *Face) *core.Grid {
	v, err := core.GridFromData(f.Desc, g.Data[f.Offset:f.Offset+f.Desc.Size()])
	if err != nil {
		panic(err) // sizes are consistent by construction
	}
	return v
}

// Fill samples fn at every grid point of every face (nodal values).
func (g *Grid) Fill(fn func(x []float64) float64) {
	x := make([]float64, g.dim)
	for k := range g.faces {
		f := &g.faces[k]
		for t := 0; t < g.dim; t++ {
			if f.FixedMask&(1<<uint(t)) != 0 {
				if f.SideBits&(1<<uint(t)) != 0 {
					x[t] = 1
				} else {
					x[t] = 0
				}
			}
		}
		if f.Desc == nil {
			g.Data[f.Offset] = fn(x)
			continue
		}
		sub := make([]float64, len(f.free))
		f.Desc.VisitPoints(func(idx int64, l, i []int32) {
			core.Coords(l, i, sub)
			for p, t := range f.free {
				x[t] = sub[p]
			}
			g.Data[f.Offset+idx] = fn(x)
		})
	}
}
