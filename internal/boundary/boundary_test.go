package boundary

import (
	"math"
	"math/rand"
	"testing"

	"compactsg/internal/core"
	"compactsg/internal/workload"
)

func TestFaceCounts(t *testing.T) {
	// Paper Sec. 4.4 / Fig. 7: the number of (d-j)-dimensional pieces is
	// 2^j · C(d, j); a 3d grid has 1 interior, 6 2d faces, 12 1d edges
	// and 8 corners — 27 = 3^3 pieces in total.
	g, err := New(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 6, 12, 8}
	for j := 0; j <= 3; j++ {
		if got := len(g.FacesOfCodim(j)); got != want[j] {
			t.Errorf("codim %d: %d faces want %d", j, got, want[j])
		}
	}
	if got := len(g.Faces()); got != 27 {
		t.Errorf("total faces %d want 27", got)
	}
	for _, d := range []int{1, 2, 4, 5} {
		g, err := New(d, 2)
		if err != nil {
			t.Fatal(err)
		}
		total := 1
		for j := 0; j <= d; j++ {
			b, _ := binom(d, j)
			if got := len(g.FacesOfCodim(j)); got != (1<<uint(j))*int(b) {
				t.Errorf("d=%d codim %d: %d faces want %d", d, j, got, (1<<uint(j))*int(b))
			}
			total *= 3
		}
		if len(g.Faces()) != pow3(d) {
			t.Errorf("d=%d: %d faces want 3^d=%d", d, len(g.Faces()), pow3(d))
		}
	}
}

func pow3(d int) int {
	r := 1
	for k := 0; k < d; k++ {
		r *= 3
	}
	return r
}

func TestTotalSizeClosedForm(t *testing.T) {
	// Σ_j 2^j C(d,j) S_{d-j}(n) with S_0 = 1.
	for _, c := range []struct{ d, n int }{{1, 4}, {2, 3}, {3, 3}, {4, 2}} {
		g, err := New(c.d, c.n)
		if err != nil {
			t.Fatal(err)
		}
		var want int64
		for j := 0; j <= c.d; j++ {
			b, _ := binom(c.d, j)
			sz := int64(1)
			if j < c.d {
				sz = core.MustDescriptor(c.d-j, c.n).Size()
			}
			want += (int64(1) << uint(j)) * b * sz
		}
		if g.Size() != want {
			t.Errorf("d=%d n=%d: size %d want %d", c.d, c.n, g.Size(), want)
		}
	}
}

func TestFaceOffsetMatchesTable(t *testing.T) {
	// The arithmetic ordering function must agree with the construction
	// order for every face.
	g, err := New(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	for k := range g.Faces() {
		f := &g.Faces()[k]
		if got := g.FaceOffset(f.FixedMask, f.SideBits); got != f.Offset {
			t.Errorf("face mask=%04b sides=%04b: FaceOffset=%d want %d", f.FixedMask, f.SideBits, got, f.Offset)
		}
	}
}

func TestFaceLookup(t *testing.T) {
	g, err := New(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	f, err := g.Face(0b101, 0b100)
	if err != nil {
		t.Fatal(err)
	}
	if f.FixedMask != 0b101 || f.SideBits != 0b100 {
		t.Errorf("Face returned mask=%b sides=%b", f.FixedMask, f.SideBits)
	}
	if len(f.FreeDims()) != 1 || f.FreeDims()[0] != 1 {
		t.Errorf("free dims = %v want [1]", f.FreeDims())
	}
	if _, err := g.Face(1<<3, 0); err == nil {
		t.Error("Face with out-of-range mask must fail")
	}
	if g.Interior().FixedMask != 0 {
		t.Error("Interior is not the mask-0 face")
	}
}

func TestSpreadPackBitsRoundTrip(t *testing.T) {
	masks := []uint32{0, 0b1, 0b1010, 0b1111, 0b10011}
	for _, mask := range masks {
		n := uint32(1) << uint(popcount(mask))
		for packed := uint32(0); packed < n; packed++ {
			spread := spreadBits(packed, mask)
			if spread&^mask != 0 {
				t.Fatalf("spreadBits(%b,%b) leaked outside mask: %b", packed, mask, spread)
			}
			if got := packBits(spread, mask); got != packed {
				t.Fatalf("packBits(spreadBits(%b,%b)) = %b", packed, mask, got)
			}
		}
	}
}

func popcount(m uint32) int {
	c := 0
	for ; m != 0; m &= m - 1 {
		c++
	}
	return c
}

func TestFillStoresNodalValues(t *testing.T) {
	g, err := New(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	f := workload.Linear.F
	g.Fill(f)
	// Corners.
	for _, c := range []struct {
		sides uint32
		x     []float64
	}{
		{0b00, []float64{0, 0}}, {0b01, []float64{1, 0}}, {0b10, []float64{0, 1}}, {0b11, []float64{1, 1}},
	} {
		face, err := g.Face(0b11, c.sides)
		if err != nil {
			t.Fatal(err)
		}
		if got := g.Data[face.Offset]; got != f(c.x) {
			t.Errorf("corner %v: %g want %g", c.x, got, f(c.x))
		}
	}
	// An edge midpoint: face with dim 1 fixed at side 1, free dim 0 at 0.5.
	face, err := g.Face(0b10, 0b10)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Data[face.Offset]; got != f([]float64{0.5, 1}) {
		t.Errorf("edge point (0.5,1): %g want %g", got, f([]float64{0.5, 1}))
	}
}

func TestEvaluateReproducesNodalValues(t *testing.T) {
	for _, c := range []struct{ d, n int }{{1, 4}, {2, 3}, {3, 3}} {
		g, err := New(c.d, c.n)
		if err != nil {
			t.Fatal(err)
		}
		fn := workload.Multilinear.F
		g.Fill(fn)
		nodal := append([]float64(nil), g.Data...)
		g.Hierarchize()
		// Every stored point — interior and boundary — must be
		// reproduced by the interpolant.
		x := make([]float64, c.d)
		for k := range g.Faces() {
			f := &g.Faces()[k]
			for t := 0; t < c.d; t++ {
				if f.FixedMask&(1<<uint(t)) != 0 {
					if f.SideBits&(1<<uint(t)) != 0 {
						x[t] = 1
					} else {
						x[t] = 0
					}
				}
			}
			if f.Desc == nil {
				if got := g.Evaluate(x); math.Abs(got-nodal[f.Offset]) > 1e-12 {
					t.Fatalf("d=%d corner %v: eval %g want %g", c.d, x, got, nodal[f.Offset])
				}
				continue
			}
			sub := make([]float64, len(f.FreeDims()))
			f.Desc.VisitPoints(func(idx int64, l, i []int32) {
				core.Coords(l, i, sub)
				for p, t := range f.FreeDims() {
					x[t] = sub[p]
				}
				if got := g.Evaluate(x); math.Abs(got-nodal[f.Offset+idx]) > 1e-12 {
					t.Fatalf("d=%d face %04b point %v: eval %g want %g", c.d, f.FixedMask, x, got, nodal[f.Offset+idx])
				}
			})
		}
	}
}

func TestMultilinearExactEverywhere(t *testing.T) {
	// A multilinear function lies in the extended sparse grid space at
	// any level: interpolation must be exact at arbitrary points.
	rng := rand.New(rand.NewSource(13))
	for _, c := range []struct{ d, n int }{{1, 3}, {2, 3}, {3, 2}} {
		g, err := New(c.d, c.n)
		if err != nil {
			t.Fatal(err)
		}
		fn := workload.Multilinear.F
		g.Fill(fn)
		g.Hierarchize()
		for k := 0; k < 100; k++ {
			x := make([]float64, c.d)
			for t := range x {
				x[t] = rng.Float64()
			}
			if got := g.Evaluate(x); math.Abs(got-fn(x)) > 1e-12 {
				t.Fatalf("d=%d n=%d at %v: %g want %g", c.d, c.n, x, got, fn(x))
			}
		}
	}
}

func TestDehierarchizeInverts(t *testing.T) {
	g, err := New(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	g.Fill(workload.Linear.F)
	orig := append([]float64(nil), g.Data...)
	g.Hierarchize()
	changed := false
	for k := range g.Data {
		if g.Data[k] != orig[k] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("hierarchization was a no-op; inverse test vacuous")
	}
	g.Dehierarchize()
	for k := range g.Data {
		if math.Abs(g.Data[k]-orig[k]) > 1e-12 {
			t.Fatalf("dehierarchize∘hierarchize ≠ id at slot %d: %g vs %g", k, g.Data[k], orig[k])
		}
	}
}

func TestZeroBoundaryFunctionMatchesInteriorGrid(t *testing.T) {
	// For a zero-boundary function all boundary coefficients vanish and
	// the extended interpolant coincides with the plain compact grid's.
	g, err := New(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	fn := workload.Parabola.F
	g.Fill(fn)
	g.Hierarchize()
	for k := range g.Faces() {
		f := &g.Faces()[k]
		if f.FixedMask == 0 {
			continue
		}
		for s := f.Offset; s < f.Offset+f.Size(); s++ {
			if g.Data[s] != 0 {
				t.Fatalf("boundary face %04b holds nonzero coefficient %g", f.FixedMask, g.Data[s])
			}
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 3); err == nil {
		t.Error("dim 0 accepted")
	}
	if _, err := New(31, 3); err == nil {
		t.Error("dim 31 accepted")
	}
	if _, err := New(2, 0); err == nil {
		t.Error("level 0 accepted")
	}
}

func TestSubsetColexRank(t *testing.T) {
	// Among 2-subsets of 4 elements, numeric mask order is
	// {0,1}<{0,2}<{1,2}<{0,3}<{1,3}<{2,3} with ranks 0..5.
	masks := []uint32{0b0011, 0b0101, 0b0110, 0b1001, 0b1010, 0b1100}
	for want, m := range masks {
		if got := subsetColexRank(m); got != int64(want) {
			t.Errorf("colex rank of %04b = %d want %d", m, got, want)
		}
	}
}

func TestIntegrateExtendedGrid(t *testing.T) {
	// ∫ Π (1 + (t+1)x_t) = Π (1 + (t+1)/2): multilinear, exact at any
	// level on the extended grid.
	for _, d := range []int{1, 2, 3} {
		bg, err := New(d, 3)
		if err != nil {
			t.Fatal(err)
		}
		bg.Fill(workload.Multilinear.F)
		bg.Hierarchize()
		want := 1.0
		for t2 := 0; t2 < d; t2++ {
			want *= 1 + float64(t2+1)/2
		}
		if got := bg.Integrate(); math.Abs(got-want) > 1e-12 {
			t.Errorf("d=%d: boundary integral %g want %g", d, got, want)
		}
	}
	// Constant function f ≡ 1: integral exactly 1 (pure boundary data).
	bg, err := New(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	bg.Fill(func(x []float64) float64 { return 1 })
	bg.Hierarchize()
	if got := bg.Integrate(); math.Abs(got-1) > 1e-12 {
		t.Errorf("∫1 = %g want 1", got)
	}
}

func TestParallelTransformsBitIdentical(t *testing.T) {
	ref, err := New(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	ref.Fill(workload.Multilinear.F)
	ref.Hierarchize()
	for _, workers := range []int{1, 2, 4, 9} {
		g, err := New(3, 4)
		if err != nil {
			t.Fatal(err)
		}
		g.Fill(workload.Multilinear.F)
		g.HierarchizeParallel(workers)
		for k := range g.Data {
			if g.Data[k] != ref.Data[k] {
				t.Fatalf("workers=%d: hierarchize differs at %d", workers, k)
			}
		}
		g.DehierarchizeParallel(workers)
		nodal, err := New(3, 4)
		if err != nil {
			t.Fatal(err)
		}
		nodal.Fill(workload.Multilinear.F)
		for k := range g.Data {
			if math.Abs(g.Data[k]-nodal.Data[k]) > 1e-12 {
				t.Fatalf("workers=%d: inverse differs at %d", workers, k)
			}
		}
	}
}
