package grids

import "compactsg/internal/core"

// PredictMemory computes a store's MemoryBytes without building it, so
// the Fig. 8 comparison can be produced at the paper's full level-11
// sizes (a level-11, d=10 std::map would need tens of gigabytes to
// actually materialize). The formulas mirror the MemoryBytes methods of
// the concrete stores exactly; TestPredictMemoryMatchesBuilt pins them
// together.
func PredictMemory(kind Kind, desc *core.Descriptor) int64 {
	n := desc.Size()
	switch kind {
	case Compact:
		return sliceBytes(n, 8)
	case PrefixTree:
		nodes, slots := prefixTreeShape(desc)
		return slots*8 + nodes*allocOverhead
	case EnhHash:
		cap := int64(1)
		for cap < n {
			cap <<= 1
		}
		const entryStruct = 8 + 8 + 8
		return sliceBytes(cap, 8) + n*(entryStruct+allocOverhead)
	case EnhMap:
		const nodeStruct = 8 + 8 + 16 + 8
		return n * (nodeStruct + allocOverhead)
	case StdMap:
		const nodeStruct = 24 + 8 + 16 + 8
		perNode := int64(nodeStruct) + allocOverhead + sliceBytes(int64(2*desc.Dim()), 4)
		return n * perNode
	default:
		return 0
	}
}

// prefixTreeShape returns the trie's node and slot counts analytically:
// the prefix of length t forms a t-dimensional sparse grid of the same
// level, so slots = Σ_{t=1..d} S_t and nodes = 1 + Σ_{t=1..d-1} S_t.
func prefixTreeShape(desc *core.Descriptor) (nodes, slots int64) {
	nodes = 1
	for t := 1; t <= desc.Dim(); t++ {
		sub, err := core.NewDescriptor(t, desc.Level())
		if err != nil {
			return 0, 0
		}
		slots += sub.Size()
		if t < desc.Dim() {
			nodes += sub.Size()
		}
	}
	return nodes, slots
}
