package grids

import "compactsg/internal/core"

// EnhMapStore models the paper's "enhanced STL map": the ordered tree of
// StdMapStore, but keyed by the gp2idx integer instead of the coordinate
// vectors. Key storage becomes constant in the dimensionality (Fig. 8)
// and each access first pays the O(d) gp2idx computation, then the
// O(log N) tree descent (Table 1 row 2).
type EnhMapStore struct {
	desc  *core.Descriptor
	tree  *rbTree[int64]
	stats Stats
}

// NewEnhMapStore builds the tree with every grid point present, value 0.
func NewEnhMapStore(desc *core.Descriptor) *EnhMapStore {
	s := &EnhMapStore{desc: desc, tree: newRBTree[int64](func(a, b int64) bool { return a < b })}
	// Keys are 0..N-1; inserting in storage order exercises the classic
	// sorted-insert worst case the self-balancing tree must absorb.
	for idx := int64(0); idx < desc.Size(); idx++ {
		s.tree.insert(idx, 0)
	}
	return s
}

// Kind reports EnhMap.
func (s *EnhMapStore) Kind() Kind { return EnhMap }

// Desc returns the grid descriptor.
func (s *EnhMapStore) Desc() *core.Descriptor { return s.desc }

// Get returns the coefficient of (l, i). The point must exist.
func (s *EnhMapStore) Get(l, i []int32) float64 {
	if s.tree.track {
		s.stats.Gets++
	}
	n := s.tree.find(s.desc.GP2Idx(l, i))
	if n == nil {
		panic("grids: EnhMapStore.Get of point outside grid")
	}
	return n.value
}

// Set replaces the coefficient of (l, i). The point must exist.
func (s *EnhMapStore) Set(l, i []int32, v float64) {
	if s.tree.track {
		s.stats.Sets++
	}
	n := s.tree.find(s.desc.GP2Idx(l, i))
	if n == nil {
		panic("grids: EnhMapStore.Set of point outside grid")
	}
	n.value = v
}

// MemoryBytes: per node, key int64, value, two child pointers and the
// color word, plus allocation overhead — constant per point.
func (s *EnhMapStore) MemoryBytes() int64 {
	const nodeStruct = 8 /*key*/ + 8 /*value*/ + 16 /*children*/ + 8 /*color, padded*/
	return s.tree.size * (nodeStruct + allocOverhead)
}

// EnableStats toggles access counting.
func (s *EnhMapStore) EnableStats(on bool) { s.tree.track = on }

// Stats returns counters; NonSeqRefs counts tree node hops.
func (s *EnhMapStore) Stats() Stats {
	st := s.stats
	st.NonSeqRefs = s.tree.hops
	return st
}

// ResetStats zeroes the counters.
func (s *EnhMapStore) ResetStats() { s.stats = Stats{}; s.tree.hops = 0 }
