package grids

// A left-leaning red–black tree, the classic balanced search tree behind
// C++ std::map. It is implemented once, generically over the key type, and
// instantiated with coordinate-vector keys (StdMap) and gp2idx integer
// keys (EnhMap). The tree counts pointer hops when access statistics are
// enabled, which is how Table 1's O(log N) non-sequential reference
// column is measured.

type rbColor bool

const (
	red   rbColor = true
	black rbColor = false
)

type rbNode[K any] struct {
	key         K
	value       float64
	left, right *rbNode[K]
	color       rbColor
}

type rbTree[K any] struct {
	root *rbNode[K]
	size int64
	// less orders keys strictly.
	less func(a, b K) bool
	// hops counts node visits during find/insert when tracking.
	hops  int64
	track bool
}

func newRBTree[K any](less func(a, b K) bool) *rbTree[K] {
	return &rbTree[K]{less: less}
}

// find returns the node holding key, or nil.
func (t *rbTree[K]) find(key K) *rbNode[K] {
	n := t.root
	for n != nil {
		if t.track {
			t.hops++
		}
		switch {
		case t.less(key, n.key):
			n = n.left
		case t.less(n.key, key):
			n = n.right
		default:
			return n
		}
	}
	return nil
}

// insert adds key with value, replacing the value if the key exists.
func (t *rbTree[K]) insert(key K, value float64) {
	t.root = t.insertAt(t.root, key, value)
	t.root.color = black
}

func (t *rbTree[K]) insertAt(n *rbNode[K], key K, value float64) *rbNode[K] {
	if n == nil {
		t.size++
		return &rbNode[K]{key: key, value: value, color: red}
	}
	if t.track {
		t.hops++
	}
	switch {
	case t.less(key, n.key):
		n.left = t.insertAt(n.left, key, value)
	case t.less(n.key, key):
		n.right = t.insertAt(n.right, key, value)
	default:
		n.value = value
	}
	if isRed(n.right) && !isRed(n.left) {
		n = rotateLeft(n)
	}
	if isRed(n.left) && isRed(n.left.left) {
		n = rotateRight(n)
	}
	if isRed(n.left) && isRed(n.right) {
		flipColors(n)
	}
	return n
}

func isRed[K any](n *rbNode[K]) bool { return n != nil && n.color == red }

func rotateLeft[K any](n *rbNode[K]) *rbNode[K] {
	x := n.right
	n.right = x.left
	x.left = n
	x.color = n.color
	n.color = red
	return x
}

func rotateRight[K any](n *rbNode[K]) *rbNode[K] {
	x := n.left
	n.left = x.right
	x.right = n
	x.color = n.color
	n.color = red
	return x
}

func flipColors[K any](n *rbNode[K]) {
	n.color = red
	n.left.color = black
	n.right.color = black
}

// walk visits all nodes in key order.
func (t *rbTree[K]) walk(fn func(n *rbNode[K])) {
	var rec func(n *rbNode[K])
	rec = func(n *rbNode[K]) {
		if n == nil {
			return
		}
		rec(n.left)
		fn(n)
		rec(n.right)
	}
	rec(t.root)
}

// height returns the tree height (for balance tests).
func (t *rbTree[K]) height() int {
	var rec func(n *rbNode[K]) int
	rec = func(n *rbNode[K]) int {
		if n == nil {
			return 0
		}
		hl, hr := rec(n.left), rec(n.right)
		if hl > hr {
			return hl + 1
		}
		return hr + 1
	}
	return rec(t.root)
}

// checkInvariants validates the red–black properties, returning an
// explanatory string for the first violation found ("" when valid).
func (t *rbTree[K]) checkInvariants() string {
	if isRed(t.root) {
		return "root is red"
	}
	msg := ""
	var rec func(n *rbNode[K]) int // returns black height, -1 on error
	rec = func(n *rbNode[K]) int {
		if n == nil || msg != "" {
			return 1
		}
		if isRed(n) && (isRed(n.left) || isRed(n.right)) {
			msg = "red node with red child"
			return -1
		}
		if isRed(n.right) {
			msg = "right-leaning red link"
			return -1
		}
		hl, hr := rec(n.left), rec(n.right)
		if msg != "" {
			return -1
		}
		if hl != hr {
			msg = "unequal black heights"
			return -1
		}
		if !isRed(n) {
			return hl + 1
		}
		return hl
	}
	rec(t.root)
	return msg
}
