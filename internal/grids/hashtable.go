package grids

import "compactsg/internal/core"

// EnhHashStore models the paper's "enhanced STL hashtable": a chained
// hash table keyed by gp2idx. Access is O(d) for the key computation
// plus expected O(1) chain traversal, with O(1) non-sequential references
// (Table 1 row 3) — but still an order of magnitude more memory than the
// compact layout because of per-entry nodes and the bucket array (Fig. 8).
type EnhHashStore struct {
	desc    *core.Descriptor
	buckets []*hashEntry
	mask    uint64
	size    int64
	stats   Stats
	track   bool
}

type hashEntry struct {
	key   int64
	value float64
	next  *hashEntry
}

// NewEnhHashStore builds the table with every grid point present,
// value 0, sized to a load factor ≤ 1 like the default unordered
// containers.
func NewEnhHashStore(desc *core.Descriptor) *EnhHashStore {
	n := desc.Size()
	cap := uint64(1)
	for int64(cap) < n {
		cap <<= 1
	}
	s := &EnhHashStore{
		desc:    desc,
		buckets: make([]*hashEntry, cap),
		mask:    cap - 1,
	}
	for idx := int64(0); idx < n; idx++ {
		b := s.hash(idx)
		s.buckets[b] = &hashEntry{key: idx, next: s.buckets[b]}
		s.size++
	}
	return s
}

// hash mixes the key with the 64-bit Fibonacci multiplier; gp2idx keys
// are dense consecutive integers, which this spreads uniformly.
func (s *EnhHashStore) hash(key int64) uint64 {
	return (uint64(key) * 0x9e3779b97f4a7c15) >> 17 & s.mask
}

func (s *EnhHashStore) findEntry(l, i []int32) *hashEntry {
	key := s.desc.GP2Idx(l, i)
	e := s.buckets[s.hash(key)]
	if s.track {
		s.stats.NonSeqRefs++ // the bucket slot itself
	}
	for e != nil {
		if s.track {
			s.stats.NonSeqRefs++
		}
		if e.key == key {
			return e
		}
		e = e.next
	}
	return nil
}

// Kind reports EnhHash.
func (s *EnhHashStore) Kind() Kind { return EnhHash }

// Desc returns the grid descriptor.
func (s *EnhHashStore) Desc() *core.Descriptor { return s.desc }

// Get returns the coefficient of (l, i). The point must exist.
func (s *EnhHashStore) Get(l, i []int32) float64 {
	if s.track {
		s.stats.Gets++
	}
	e := s.findEntry(l, i)
	if e == nil {
		panic("grids: EnhHashStore.Get of point outside grid")
	}
	return e.value
}

// Set replaces the coefficient of (l, i). The point must exist.
func (s *EnhHashStore) Set(l, i []int32, v float64) {
	if s.track {
		s.stats.Sets++
	}
	e := s.findEntry(l, i)
	if e == nil {
		panic("grids: EnhHashStore.Set of point outside grid")
	}
	e.value = v
}

// MemoryBytes: the bucket pointer array plus one chained node (key,
// value, next) per entry with allocation overhead.
func (s *EnhHashStore) MemoryBytes() int64 {
	const entryStruct = 8 /*key*/ + 8 /*value*/ + 8 /*next*/
	return sliceBytes(int64(len(s.buckets)), 8) + s.size*(entryStruct+allocOverhead)
}

// EnableStats toggles access counting.
func (s *EnhHashStore) EnableStats(on bool) { s.track = on }

// Stats returns the access counters.
func (s *EnhHashStore) Stats() Stats { return s.stats }

// ResetStats zeroes the counters.
func (s *EnhHashStore) ResetStats() { s.stats = Stats{} }

// MaxChainLength returns the longest bucket chain (distribution check).
func (s *EnhHashStore) MaxChainLength() int {
	max := 0
	for _, e := range s.buckets {
		n := 0
		for ; e != nil; e = e.next {
			n++
		}
		if n > max {
			max = n
		}
	}
	return max
}
