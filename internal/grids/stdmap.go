package grids

import "compactsg/internal/core"

// StdMapStore models the paper's "standard STL map": an ordered tree whose
// key is the full coordinate identification of the grid point — the
// concatenated (l, i) vectors — so key storage grows linearly with the
// dimensionality (Table 1 row 1: O(d·log N) access, O(log N)
// non-sequential references; Fig. 8's most memory-hungry structure).
type StdMapStore struct {
	desc  *core.Descriptor
	tree  *rbTree[[]int32]
	stats Stats
}

// NewStdMapStore builds the tree with every grid point present, value 0.
func NewStdMapStore(desc *core.Descriptor) *StdMapStore {
	s := &StdMapStore{desc: desc, tree: newRBTree[[]int32](lessVec)}
	desc.VisitPoints(func(_ int64, l, i []int32) {
		s.tree.insert(packKey(l, i), 0)
	})
	return s
}

// lessVec orders concatenated (l, i) keys lexicographically, comparing
// component by component exactly as std::map<std::vector<int>, double>
// would. Each comparison touches the key's backing array — a second
// memory region per visited node.
func lessVec(a, b []int32) bool {
	for t := 0; t < len(a) && t < len(b); t++ {
		if a[t] != b[t] {
			return a[t] < b[t]
		}
	}
	return len(a) < len(b)
}

func packKey(l, i []int32) []int32 {
	k := make([]int32, len(l)+len(i))
	copy(k, l)
	copy(k[len(l):], i)
	return k
}

// keyBuf is a reusable buffer so lookups don't allocate.
func (s *StdMapStore) lookup(l, i []int32, buf []int32) *rbNode[[]int32] {
	copy(buf, l)
	copy(buf[len(l):], i)
	return s.tree.find(buf)
}

// Kind reports StdMap.
func (s *StdMapStore) Kind() Kind { return StdMap }

// Desc returns the grid descriptor.
func (s *StdMapStore) Desc() *core.Descriptor { return s.desc }

// Get returns the coefficient of (l, i). The point must exist.
func (s *StdMapStore) Get(l, i []int32) float64 {
	buf := make([]int32, 2*s.desc.Dim())
	n := s.lookup(l, i, buf)
	if s.tree.track {
		s.stats.Gets++
	}
	if n == nil {
		panic("grids: StdMapStore.Get of point outside grid")
	}
	return n.value
}

// Set replaces the coefficient of (l, i). The point must exist.
func (s *StdMapStore) Set(l, i []int32, v float64) {
	buf := make([]int32, 2*s.desc.Dim())
	n := s.lookup(l, i, buf)
	if s.tree.track {
		s.stats.Sets++
	}
	if n == nil {
		panic("grids: StdMapStore.Set of point outside grid")
	}
	n.value = v
}

// MemoryBytes: per node, the tree node (two child pointers, color word,
// value, key slice header) plus the key's backing array of 2d int32.
func (s *StdMapStore) MemoryBytes() int64 {
	const nodeStruct = 24 /*key header*/ + 8 /*value*/ + 16 /*children*/ + 8 /*color, padded*/
	perNode := int64(nodeStruct) + allocOverhead + sliceBytes(int64(2*s.desc.Dim()), 4)
	return s.tree.size * perNode
}

// EnableStats toggles access counting.
func (s *StdMapStore) EnableStats(on bool) { s.tree.track = on }

// Stats returns counters; NonSeqRefs is the number of tree node hops.
func (s *StdMapStore) Stats() Stats {
	st := s.stats
	st.NonSeqRefs = s.tree.hops
	return st
}

// ResetStats zeroes the counters.
func (s *StdMapStore) ResetStats() { s.stats = Stats{}; s.tree.hops = 0 }
