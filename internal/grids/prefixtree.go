package grids

import "compactsg/internal/core"

// PrefixTreeStore is the trie of the paper's Fig. 4: dimensions are fixed
// in order, and each trie level stores one dimension's 1d hierarchy as a
// flat array (the "binary trees replaced by arrays"), so common
// coordinate prefixes are stored once. Values sit in the arrays of the
// last dimension. Access costs one array jump per dimension: O(d) time
// and O(d) non-sequential references (Table 1 row 4).
//
// The 1d position of (level l, index i) inside a node's array is the
// breadth-first heap index 2^l - 1 + (i-1)/2, so the array for a
// remaining level budget r has 2^(r+1) - 1 slots, all of which are valid
// grid points (deeper dimensions can always sit at level 0).
type PrefixTreeStore struct {
	desc  *core.Descriptor
	root  *ptNode
	nodes int64 // total trie nodes (for memory accounting)
	slots int64 // total array slots across all nodes
	stats Stats
	track bool
}

type ptNode struct {
	// Exactly one of children/values is non-nil: children for the outer
	// d-1 dimensions, values for the innermost one.
	children []*ptNode
	values   []float64
}

// NewPrefixTreeStore builds the full trie for the descriptor, value 0.
func NewPrefixTreeStore(desc *core.Descriptor) *PrefixTreeStore {
	s := &PrefixTreeStore{desc: desc}
	s.root = s.build(0, desc.Level()-1)
	return s
}

// build creates the node for dimension t with the given remaining level
// budget.
func (s *PrefixTreeStore) build(t, budget int) *ptNode {
	n := &ptNode{}
	s.nodes++
	size := int64(2)<<uint(budget) - 1
	s.slots += size
	if t == s.desc.Dim()-1 {
		n.values = make([]float64, size)
		return n
	}
	n.children = make([]*ptNode, size)
	for pos := int64(0); pos < size; pos++ {
		// Heap position pos encodes 1d level ⌊log2(pos+1)⌋.
		lvl := 0
		for int64(2)<<uint(lvl)-1 <= pos {
			lvl++
		}
		n.children[pos] = s.build(t+1, budget-lvl)
	}
	return n
}

// heapPos converts a 1d (level, index) pair to its slot.
func heapPos(level, index int32) int64 {
	return int64(1)<<uint32(level) - 1 + int64(index>>1)
}

func (s *PrefixTreeStore) node(l, i []int32) *ptNode {
	n := s.root
	d := s.desc.Dim()
	for t := 0; t < d-1; t++ {
		if s.track {
			s.stats.NonSeqRefs++
		}
		n = n.children[heapPos(l[t], i[t])]
	}
	if s.track {
		s.stats.NonSeqRefs++ // the value array access
	}
	return n
}

// Kind reports PrefixTree.
func (s *PrefixTreeStore) Kind() Kind { return PrefixTree }

// Desc returns the grid descriptor.
func (s *PrefixTreeStore) Desc() *core.Descriptor { return s.desc }

// Get returns the coefficient of (l, i).
func (s *PrefixTreeStore) Get(l, i []int32) float64 {
	if s.track {
		s.stats.Gets++
	}
	n := s.node(l, i)
	return n.values[heapPos(l[len(l)-1], i[len(i)-1])]
}

// Set replaces the coefficient of (l, i).
func (s *PrefixTreeStore) Set(l, i []int32, v float64) {
	if s.track {
		s.stats.Sets++
	}
	n := s.node(l, i)
	n.values[heapPos(l[len(l)-1], i[len(i)-1])] = v
}

// MemoryBytes models the structure the paper measures (a C++ trie where
// each node is exactly one heap allocation holding its slot array, and a
// child *is* the pointer stored in the parent's slot): slots of 8 bytes
// (pointer or double) plus one allocation overhead per node. The Go-side
// ptNode struct wrapper is an implementation convenience not inherent to
// the data structure and is excluded.
func (s *PrefixTreeStore) MemoryBytes() int64 {
	return s.slots*8 + s.nodes*allocOverhead
}

// NodeCount returns the number of trie nodes (test hook).
func (s *PrefixTreeStore) NodeCount() int64 { return s.nodes }

// SlotCount returns the total number of array slots (test hook); it
// equals the number of grid points plus all distinct prefixes.
func (s *PrefixTreeStore) SlotCount() int64 { return s.slots }

// EnableStats toggles access counting.
func (s *PrefixTreeStore) EnableStats(on bool) { s.track = on }

// Stats returns the access counters.
func (s *PrefixTreeStore) Stats() Stats { return s.stats }

// ResetStats zeroes the counters.
func (s *PrefixTreeStore) ResetStats() { s.stats = Stats{} }
