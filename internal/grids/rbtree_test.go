package grids

import (
	"math"
	"math/rand"
	"testing"

	"compactsg/internal/core"
)

func TestRBTreeInsertFind(t *testing.T) {
	tr := newRBTree[int64](func(a, b int64) bool { return a < b })
	const n = 10000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, k := range perm {
		tr.insert(int64(k), float64(k)*2)
	}
	if tr.size != n {
		t.Fatalf("size=%d want %d", tr.size, n)
	}
	for k := int64(0); k < n; k++ {
		node := tr.find(k)
		if node == nil || node.value != float64(k)*2 {
			t.Fatalf("find(%d) failed", k)
		}
	}
	if tr.find(n) != nil || tr.find(-1) != nil {
		t.Error("find of absent key returned a node")
	}
}

func TestRBTreeDuplicateInsertReplaces(t *testing.T) {
	tr := newRBTree[int64](func(a, b int64) bool { return a < b })
	tr.insert(7, 1)
	tr.insert(7, 2)
	if tr.size != 1 {
		t.Fatalf("size=%d want 1", tr.size)
	}
	if tr.find(7).value != 2 {
		t.Error("duplicate insert did not replace value")
	}
}

func TestRBTreeInvariantsAndHeight(t *testing.T) {
	// Sequential insert (the EnhMap pattern) is the classic worst case
	// for unbalanced trees; the RB tree must stay at O(log n) height and
	// keep its invariants.
	tr := newRBTree[int64](func(a, b int64) bool { return a < b })
	const n = 1 << 14
	for k := int64(0); k < n; k++ {
		tr.insert(k, 0)
	}
	if msg := tr.checkInvariants(); msg != "" {
		t.Fatalf("invariant violated after sequential insert: %s", msg)
	}
	h := tr.height()
	if maxH := int(2*math.Log2(n)) + 2; h > maxH {
		t.Errorf("height %d exceeds 2·log2(n)+2 = %d", h, maxH)
	}
	// Random insert order too.
	tr2 := newRBTree[int64](func(a, b int64) bool { return a < b })
	for _, k := range rand.New(rand.NewSource(2)).Perm(n) {
		tr2.insert(int64(k), 0)
	}
	if msg := tr2.checkInvariants(); msg != "" {
		t.Fatalf("invariant violated after random insert: %s", msg)
	}
}

func TestRBTreeWalkInOrder(t *testing.T) {
	tr := newRBTree[int64](func(a, b int64) bool { return a < b })
	for _, k := range rand.New(rand.NewSource(3)).Perm(500) {
		tr.insert(int64(k), 0)
	}
	prev := int64(-1)
	count := 0
	tr.walk(func(n *rbNode[int64]) {
		if n.key <= prev {
			t.Fatalf("walk out of order: %d after %d", n.key, prev)
		}
		prev = n.key
		count++
	})
	if count != 500 {
		t.Errorf("walk visited %d nodes want 500", count)
	}
}

func TestRBTreeVectorKeys(t *testing.T) {
	tr := newRBTree[[]int32](lessVec)
	keys := [][]int32{{0, 1}, {1, 0}, {0, 0}, {1, 1}, {0, 2}}
	for k, key := range keys {
		tr.insert(key, float64(k))
	}
	for k, key := range keys {
		n := tr.find(key)
		if n == nil || n.value != float64(k) {
			t.Fatalf("vector key %v lookup failed", key)
		}
	}
	if msg := tr.checkInvariants(); msg != "" {
		t.Errorf("vector tree invariants: %s", msg)
	}
}

func TestLessVec(t *testing.T) {
	cases := []struct {
		a, b []int32
		want bool
	}{
		{[]int32{1, 2}, []int32{1, 3}, true},
		{[]int32{1, 3}, []int32{1, 2}, false},
		{[]int32{1, 2}, []int32{1, 2}, false},
		{[]int32{0, 9}, []int32{1, 0}, true},
		{[]int32{1}, []int32{1, 0}, true},
	}
	for _, c := range cases {
		if got := lessVec(c.a, c.b); got != c.want {
			t.Errorf("lessVec(%v,%v)=%v want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestRBTreeHopCounting(t *testing.T) {
	tr := newRBTree[int64](func(a, b int64) bool { return a < b })
	for k := int64(0); k < 1024; k++ {
		tr.insert(k, 0)
	}
	tr.track = true
	tr.hops = 0
	tr.find(512)
	if tr.hops < 1 || tr.hops > 25 {
		t.Errorf("hops=%d, want a small positive count bounded by tree height", tr.hops)
	}
}

func TestPrefixTreeShape(t *testing.T) {
	// Slot count equals Σ_{t=1..d} |t-dim sparse grid| (every distinct
	// coordinate prefix has a slot), value slots equal the grid size.
	for _, c := range []struct{ dim, level int }{{1, 5}, {2, 4}, {3, 4}, {4, 3}} {
		desc := core.MustDescriptor(c.dim, c.level)
		s := NewPrefixTreeStore(desc)
		var wantSlots int64
		for td := 1; td <= c.dim; td++ {
			wantSlots += core.MustDescriptor(td, c.level).Size()
		}
		if s.SlotCount() != wantSlots {
			t.Errorf("d=%d n=%d: slots=%d want %d", c.dim, c.level, s.SlotCount(), wantSlots)
		}
		// Nodes: one root plus one child per prefix of length 1..d-1.
		var wantNodes int64 = 1
		for td := 1; td < c.dim; td++ {
			wantNodes += core.MustDescriptor(td, c.level).Size()
		}
		if s.NodeCount() != wantNodes {
			t.Errorf("d=%d n=%d: nodes=%d want %d", c.dim, c.level, s.NodeCount(), wantNodes)
		}
	}
}

func TestHashChainsBounded(t *testing.T) {
	desc := core.MustDescriptor(3, 5)
	s := NewEnhHashStore(desc)
	if m := s.MaxChainLength(); m > 8 {
		t.Errorf("max chain length %d: Fibonacci hashing should spread dense keys", m)
	}
}

func TestHeapPos(t *testing.T) {
	cases := []struct {
		level, index int32
		want         int64
	}{
		{0, 1, 0}, {1, 1, 1}, {1, 3, 2}, {2, 1, 3}, {2, 3, 4}, {2, 5, 5}, {2, 7, 6}, {3, 1, 7},
	}
	for _, c := range cases {
		if got := heapPos(c.level, c.index); got != c.want {
			t.Errorf("heapPos(%d,%d)=%d want %d", c.level, c.index, got, c.want)
		}
	}
}
