package grids

import (
	"math"
	"testing"

	"compactsg/internal/core"
)

func testFunc(x []float64) float64 {
	s := 0.0
	for t, v := range x {
		s += float64(t+1) * v
	}
	return math.Sin(s) + 2
}

func TestAllStoresRoundTrip(t *testing.T) {
	desc := core.MustDescriptor(3, 4)
	for _, kind := range Kinds {
		s := New(kind, desc)
		if s.Kind() != kind {
			t.Errorf("%v: Kind mismatch", kind)
		}
		if s.Desc() != desc {
			t.Errorf("%v: Desc mismatch", kind)
		}
		// Zero-initialized.
		desc.VisitPoints(func(_ int64, l, i []int32) {
			if got := s.Get(l, i); got != 0 {
				t.Fatalf("%v: fresh store Get(%v,%v) = %g", kind, l, i, got)
			}
		})
		// Write a distinct value per point, read all back.
		desc.VisitPoints(func(idx int64, l, i []int32) {
			s.Set(l, i, float64(idx)+0.5)
		})
		desc.VisitPoints(func(idx int64, l, i []int32) {
			if got := s.Get(l, i); got != float64(idx)+0.5 {
				t.Fatalf("%v: Get(%v,%v) = %g want %g", kind, l, i, got, float64(idx)+0.5)
			}
		})
	}
}

func TestStoresAgreeAfterFill(t *testing.T) {
	desc := core.MustDescriptor(4, 4)
	ref := New(Compact, desc)
	Fill(ref, testFunc)
	for _, kind := range Kinds[1:] {
		s := New(kind, desc)
		Fill(s, testFunc)
		if !Equal(ref, s) {
			t.Errorf("%v disagrees with compact store after identical Fill", kind)
		}
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	desc := core.MustDescriptor(2, 3)
	a := New(Compact, desc)
	b := New(EnhHash, desc)
	if !Equal(a, b) {
		t.Fatal("fresh stores must be equal")
	}
	b.Set([]int32{1, 0}, []int32{3, 1}, 1)
	if Equal(a, b) {
		t.Fatal("Equal missed a differing value")
	}
	if Equal(a, New(Compact, core.MustDescriptor(2, 4))) {
		t.Fatal("Equal must reject different shapes")
	}
}

func TestMemoryOrdering(t *testing.T) {
	// Fig. 8: compact < prefix tree < enhanced hash < enhanced map <
	// standard map, with the std::map blow-up growing with d.
	for _, dim := range []int{5, 7} {
		desc := core.MustDescriptor(dim, 5)
		var prev int64
		for _, kind := range Kinds {
			m := New(kind, desc).MemoryBytes()
			if m <= 0 {
				t.Fatalf("%v: nonpositive memory %d", kind, m)
			}
			if m < prev {
				t.Errorf("dim=%d: %v uses %d bytes, less than the previous structure (%d) — Fig. 8 ordering broken", dim, kind, m, prev)
			}
			prev = m
		}
	}
}

func TestCompactMemoryRatioGrowsWithDim(t *testing.T) {
	// The std::map/compact ratio must grow with dimensionality (keys grow
	// with d, coefficients don't).
	ratio := func(dim int) float64 {
		desc := core.MustDescriptor(dim, 4)
		return float64(New(StdMap, desc).MemoryBytes()) / float64(New(Compact, desc).MemoryBytes())
	}
	r3, r8 := ratio(3), ratio(8)
	if r8 <= r3 {
		t.Errorf("std::map/compact memory ratio should grow with d: d=3 gives %.1f, d=8 gives %.1f", r3, r8)
	}
	if r3 < 5 {
		t.Errorf("std::map overhead suspiciously low: %.1f× at d=3", r3)
	}
}

func TestStatsCounting(t *testing.T) {
	desc := core.MustDescriptor(3, 4)
	l := []int32{1, 0, 1}
	i := []int32{1, 1, 3}
	for _, kind := range Kinds {
		s := New(kind, desc)
		// Disabled by default.
		s.Get(l, i)
		if st := s.Stats(); st.Gets != 0 && kind != Compact {
			t.Errorf("%v: stats counted while disabled", kind)
		}
		s.EnableStats(true)
		s.ResetStats()
		s.Get(l, i)
		s.Set(l, i, 1)
		st := s.Stats()
		if st.Gets != 1 || st.Sets != 1 {
			t.Errorf("%v: Gets=%d Sets=%d want 1,1", kind, st.Gets, st.Sets)
		}
		if st.NonSeqRefs <= 0 {
			t.Errorf("%v: NonSeqRefs=%d want > 0", kind, st.NonSeqRefs)
		}
		s.ResetStats()
		if st := s.Stats(); st.Gets != 0 || st.NonSeqRefs != 0 {
			t.Errorf("%v: ResetStats did not clear", kind)
		}
	}
}

func TestTable1NonSeqRefScaling(t *testing.T) {
	// Table 1: per access, non-sequential references are O(log N) for the
	// maps, O(d) for the prefix tree, O(1) for hash and compact.
	desc := core.MustDescriptor(4, 5)
	n := float64(desc.Size())
	logN := math.Log2(n)
	perAccess := func(kind Kind) float64 {
		s := New(kind, desc)
		s.EnableStats(true)
		var count int64
		desc.VisitPoints(func(_ int64, l, i []int32) { s.Get(l, i); count++ })
		return float64(s.Stats().NonSeqRefs) / float64(count)
	}
	if r := perAccess(Compact); r != 1 {
		t.Errorf("compact: %.2f refs/access, want exactly 1", r)
	}
	if r := perAccess(PrefixTree); r != float64(desc.Dim()) {
		t.Errorf("prefix tree: %.2f refs/access, want d=%d", r, desc.Dim())
	}
	if r := perAccess(EnhHash); r > 4 {
		t.Errorf("hash: %.2f refs/access, want O(1) (small constant)", r)
	}
	for _, kind := range []Kind{EnhMap, StdMap} {
		r := perAccess(kind)
		if r < logN/2 || r > 2.5*logN {
			t.Errorf("%v: %.2f refs/access, want Θ(log N) ≈ %.1f", kind, r, logN)
		}
	}
}

func TestKindString(t *testing.T) {
	if Compact.String() != "Our Data Structure" || StdMap.String() != "Standard STL Map" {
		t.Error("Kind labels diverge from the paper's figure legends")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind must still format")
	}
}

func TestNewPanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(unknown) must panic")
		}
	}()
	New(Kind(42), core.MustDescriptor(2, 2))
}

func TestPredictMemoryMatchesBuilt(t *testing.T) {
	for _, c := range []struct{ dim, level int }{{1, 4}, {2, 5}, {3, 4}, {5, 3}} {
		desc := core.MustDescriptor(c.dim, c.level)
		for _, kind := range Kinds {
			want := New(kind, desc).MemoryBytes()
			if got := PredictMemory(kind, desc); got != want {
				t.Errorf("d=%d n=%d %v: PredictMemory=%d built=%d", c.dim, c.level, kind, got, want)
			}
		}
	}
	if PredictMemory(Kind(77), core.MustDescriptor(2, 2)) != 0 {
		t.Error("unknown kind should predict 0")
	}
}

func TestPredictMemoryPaperClaim(t *testing.T) {
	// Paper §1: at d=10, level 11 (127.5M points) the compact structure
	// uses "up to 30 times less memory" than typical structures. Our
	// std::map model must land in that regime (and never below 10×).
	desc := core.MustDescriptor(10, 11)
	ratio := float64(PredictMemory(StdMap, desc)) / float64(PredictMemory(Compact, desc))
	if ratio < 10 || ratio > 60 {
		t.Errorf("std::map / compact ratio at d=10 level=11 = %.1f, expected the paper's ~30× regime", ratio)
	}
}
