// Package grids implements the data structures the paper compares for
// storing sparse grid coefficients (Sec. 2.3, Sec. 6.1, Table 1, Fig. 8):
//
//   - Compact    — the paper's contribution: one flat array ordered by
//     gp2idx (package core), zero structural overhead;
//   - StdMap     — "standard STL map": an ordered (red–black) tree whose
//     keys are the full (l, i) coordinate vectors;
//   - EnhMap     — "enhanced STL map": the same tree keyed by the gp2idx
//     integer, removing the per-key coordinate storage;
//   - EnhHash    — "enhanced STL hashtable": a chained hash table keyed by
//     gp2idx;
//   - PrefixTree — the trie of Fig. 4: one level of the structure per
//     dimension, each holding the 1d hierarchy as a flat array, values at
//     the innermost dimension.
//
// All stores expose the same interface plus exact memory accounting (for
// Fig. 8) and access-pattern counters (for Table 1's non-sequential
// reference column).
package grids

import (
	"fmt"

	"compactsg/internal/core"
)

// Kind identifies one of the five compared data structures.
type Kind int

// The five data structures of the paper's evaluation.
const (
	Compact Kind = iota
	PrefixTree
	EnhHash
	EnhMap
	StdMap
)

// Kinds lists all store kinds in the order the paper's figures use.
var Kinds = []Kind{Compact, PrefixTree, EnhHash, EnhMap, StdMap}

// String returns the label the paper's figures use for the structure.
func (k Kind) String() string {
	switch k {
	case Compact:
		return "Our Data Structure"
	case PrefixTree:
		return "Prefix Tree"
	case EnhHash:
		return "Enhanced STL Hashtable"
	case EnhMap:
		return "Enhanced STL Map"
	case StdMap:
		return "Standard STL Map"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Stats counts accesses and the non-sequential memory references they
// caused (pointer hops / non-contiguous jumps), the quantity Table 1
// analyses. Counting must be enabled explicitly and is not safe for
// concurrent use; parallel algorithms run with counting disabled.
type Stats struct {
	Gets       int64
	Sets       int64
	NonSeqRefs int64
}

// Store is a container of sparse grid coefficients addressed by grid
// point (l, i). Implementations pre-build their structure for every point
// of the descriptor, matching the paper's regular (non-adaptive) setting;
// Set updates a value in place and is race-free for distinct points.
type Store interface {
	// Kind identifies the data structure.
	Kind() Kind
	// Desc returns the grid shape the store was built for.
	Desc() *core.Descriptor
	// Get returns the coefficient of point (l, i).
	Get(l, i []int32) float64
	// Set replaces the coefficient of point (l, i).
	Set(l, i []int32, v float64)
	// MemoryBytes returns the modeled heap footprint of the structure,
	// including per-allocation overhead (Fig. 8).
	MemoryBytes() int64
	// EnableStats toggles access counting (Table 1).
	EnableStats(on bool)
	// Stats returns the counters accumulated since the last reset.
	Stats() Stats
	// ResetStats zeroes the counters.
	ResetStats()
}

// New builds a store of the given kind with every grid point of desc
// present and initialized to zero.
func New(kind Kind, desc *core.Descriptor) Store {
	switch kind {
	case Compact:
		return NewCompactStore(core.NewGrid(desc))
	case PrefixTree:
		return NewPrefixTreeStore(desc)
	case EnhHash:
		return NewEnhHashStore(desc)
	case EnhMap:
		return NewEnhMapStore(desc)
	case StdMap:
		return NewStdMapStore(desc)
	default:
		panic(fmt.Sprintf("grids: unknown kind %d", int(kind)))
	}
}

// Fill samples f at every grid point of the store's descriptor and writes
// the nodal values.
func Fill(s Store, f func(x []float64) float64) {
	x := make([]float64, s.Desc().Dim())
	s.Desc().VisitPoints(func(_ int64, l, i []int32) {
		core.Coords(l, i, x)
		s.Set(l, i, f(x))
	})
}

// Equal reports whether two stores over the same descriptor hold the same
// value at every grid point (exact float equality).
func Equal(a, b Store) bool {
	if a.Desc().Dim() != b.Desc().Dim() || a.Desc().Level() != b.Desc().Level() {
		return false
	}
	same := true
	a.Desc().VisitPoints(func(_ int64, l, i []int32) {
		if !same {
			return
		}
		if a.Get(l, i) != b.Get(l, i) {
			same = false
		}
	})
	return same
}

// Allocation cost model shared by the pointer-based stores: every heap
// allocation pays the allocator's header/rounding overhead in addition to
// its payload. 16 bytes approximates both glibc malloc and Go's size
// classes closely enough for the Fig. 8 comparison.
const allocOverhead = 16

// sliceBytes models the footprint of a heap-allocated slice backing array
// holding n elements of elemSize bytes.
func sliceBytes(n int64, elemSize int64) int64 {
	if n == 0 {
		return 0
	}
	return n*elemSize + allocOverhead
}
