package grids

import "compactsg/internal/core"

// CompactStore adapts the paper's flat-array grid (package core) to the
// Store interface so the five structures can be compared uniformly. A Get
// or Set costs one gp2idx evaluation — O(d) arithmetic over the tiny
// binmat table — and exactly one non-sequential reference into the
// coefficient array (Table 1, last row).
type CompactStore struct {
	grid  *core.Grid
	stats Stats
	track bool
}

// NewCompactStore wraps an existing compact grid.
func NewCompactStore(g *core.Grid) *CompactStore {
	return &CompactStore{grid: g}
}

// Grid returns the underlying compact grid.
func (s *CompactStore) Grid() *core.Grid { return s.grid }

// Kind reports Compact.
func (s *CompactStore) Kind() Kind { return Compact }

// Desc returns the grid descriptor.
func (s *CompactStore) Desc() *core.Descriptor { return s.grid.Desc() }

// Get returns the coefficient of (l, i).
func (s *CompactStore) Get(l, i []int32) float64 {
	if s.track {
		s.stats.Gets++
		s.stats.NonSeqRefs++ // the single rawStorage access
	}
	return s.grid.Data[s.grid.Desc().GP2Idx(l, i)]
}

// Set replaces the coefficient of (l, i).
func (s *CompactStore) Set(l, i []int32, v float64) {
	if s.track {
		s.stats.Sets++
		s.stats.NonSeqRefs++
	}
	s.grid.Data[s.grid.Desc().GP2Idx(l, i)] = v
}

// MemoryBytes is 8 bytes per coefficient plus the one backing array
// allocation; the binmat descriptor tables are shared and O(d·n).
func (s *CompactStore) MemoryBytes() int64 {
	return sliceBytes(s.grid.Size(), 8)
}

// EnableStats toggles access counting.
func (s *CompactStore) EnableStats(on bool) { s.track = on }

// Stats returns the access counters.
func (s *CompactStore) Stats() Stats { return s.stats }

// ResetStats zeroes the access counters.
func (s *CompactStore) ResetStats() { s.stats = Stats{} }
