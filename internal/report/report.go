// Package report renders the benchmark harness's tables and figure
// series as aligned text and CSV, so each sgbench subcommand prints the
// same rows/series as the corresponding table or figure in the paper.
package report

import (
	"fmt"
	"io"
	"strings"
	"time"
	"unicode/utf8"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Note    string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; missing cells render empty, extras are dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Fprint writes the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for c, h := range t.Columns {
		widths[c] = utf8.RuneCountInString(h)
	}
	for _, row := range t.rows {
		for c, cell := range row {
			if n := utf8.RuneCountInString(cell); n > widths[c] {
				widths[c] = n
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for c, cell := range cells {
			parts[c] = pad(cell, widths[c])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	total := len(t.Columns) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.rows {
		line(row)
	}
	if t.Note != "" {
		fmt.Fprintf(w, "note: %s\n", t.Note)
	}
	fmt.Fprintln(w)
}

// FprintCSV writes the table as CSV (no quoting; cells must not contain
// commas, which the harness's numeric output never does).
func (t *Table) FprintCSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Columns, ","))
	for _, row := range t.rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

func pad(s string, w int) string {
	n := utf8.RuneCountInString(s)
	if n >= w {
		return s
	}
	return s + strings.Repeat(" ", w-n)
}

// Seconds formats a duration in seconds with an adaptive unit.
func Seconds(s float64) string {
	switch {
	case s <= 0:
		return "0"
	case s < 1e-6:
		return fmt.Sprintf("%.1fns", s*1e9)
	case s < 1e-3:
		return fmt.Sprintf("%.2fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}

// Bytes formats a byte count with an adaptive unit.
func Bytes(b int64) string {
	const k = 1024
	switch {
	case b < k:
		return fmt.Sprintf("%dB", b)
	case b < k*k:
		return fmt.Sprintf("%.1fKiB", float64(b)/k)
	case b < k*k*k:
		return fmt.Sprintf("%.1fMiB", float64(b)/(k*k))
	default:
		return fmt.Sprintf("%.2fGiB", float64(b)/(k*k*k))
	}
}

// Ratio formats a speedup/ratio with two decimals and a trailing ×.
func Ratio(r float64) string { return fmt.Sprintf("%.2f×", r) }

// Timer measures wall-clock durations for harness runs.
type Timer struct{ start time.Time }

// StartTimer begins timing.
func StartTimer() *Timer { return &Timer{start: time.Now()} }

// Seconds returns the elapsed time in seconds.
func (t *Timer) Seconds() float64 { return time.Since(t.start).Seconds() }

// MeasureSeconds runs fn and returns its wall-clock duration in seconds.
func MeasureSeconds(fn func()) float64 {
	start := time.Now()
	fn()
	return time.Since(start).Seconds()
}

// Best runs fn reps times and returns the fastest duration — the usual
// noise-robust benchmark statistic.
func Best(reps int, fn func()) float64 {
	best := MeasureSeconds(fn)
	for k := 1; k < reps; k++ {
		if s := MeasureSeconds(fn); s < best {
			best = s
		}
	}
	return best
}
