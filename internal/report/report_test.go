package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22222")
	tb.Note = "scaled run"
	var sb strings.Builder
	tb.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== Demo ==", "name", "alpha", "22222", "note: scaled run"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if tb.Rows() != 2 {
		t.Errorf("Rows=%d", tb.Rows())
	}
	// Alignment: header and first row start columns at the same offset.
	lines := strings.Split(out, "\n")
	if idx := strings.Index(lines[1], "value"); idx != strings.Index(lines[3], "1") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow("1", "2")
	var sb strings.Builder
	tb.FprintCSV(&sb)
	if sb.String() != "a,b\n1,2\n" {
		t.Errorf("CSV: %q", sb.String())
	}
}

func TestTableShortRow(t *testing.T) {
	tb := NewTable("x", "a", "b", "c")
	tb.AddRow("only")
	var sb strings.Builder
	tb.Fprint(&sb)
	if !strings.Contains(sb.String(), "only") {
		t.Error("short row dropped")
	}
}

func TestSeconds(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"}, {-1, "0"}, {5e-9, "5.0ns"}, {2.5e-6, "2.50µs"}, {3.25e-3, "3.25ms"}, {7.5, "7.500s"},
	}
	for _, c := range cases {
		if got := Seconds(c.in); got != c.want {
			t.Errorf("Seconds(%g)=%q want %q", c.in, got, c.want)
		}
	}
}

func TestBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{512, "512B"}, {2048, "2.0KiB"}, {3 << 20, "3.0MiB"}, {5 << 30, "5.00GiB"},
	}
	for _, c := range cases {
		if got := Bytes(c.in); got != c.want {
			t.Errorf("Bytes(%d)=%q want %q", c.in, got, c.want)
		}
	}
}

func TestRatio(t *testing.T) {
	if Ratio(16.984) != "16.98×" {
		t.Errorf("Ratio: %q", Ratio(16.984))
	}
}

func TestTimers(t *testing.T) {
	if s := MeasureSeconds(func() {}); s < 0 {
		t.Error("negative duration")
	}
	n := 0
	if s := Best(3, func() { n++ }); s < 0 {
		t.Error("negative best")
	}
	if n != 3 {
		t.Errorf("Best ran fn %d times want 3", n)
	}
	tm := StartTimer()
	if tm.Seconds() < 0 {
		t.Error("timer negative")
	}
}
