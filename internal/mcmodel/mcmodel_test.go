package mcmodel

import "testing"

// testMachine is a 32-core machine with baseline-speed cores, so the
// scaling arithmetic is easy to verify.
var testMachine = Machine{Name: "test", Cores: 32, CoreSpeed: 1, Bandwidth: 40e9, SyncCost: 4e-6}

func TestComputeBoundScalesLinearly(t *testing.T) {
	w := Workload{SeqSec: 32, Bytes: 1e6} // negligible traffic
	for _, c := range []int{1, 2, 4, 8, 16, 32} {
		sp := testMachine.SelfSpeedup(w, c)
		if sp < 0.9*float64(c) || sp > float64(c) {
			t.Errorf("compute-bound self-speedup at %d cores = %.2f, want ≈ %d", c, sp, c)
		}
	}
}

func TestMemoryBoundSaturates(t *testing.T) {
	// Traffic that takes 1/4 of the sequential time at full bandwidth:
	// scaling must flatten at ≈ 4×.
	w := Workload{SeqSec: 4, Bytes: 1 * testMachine.Bandwidth}
	sp16 := testMachine.SelfSpeedup(w, 16)
	sp32 := testMachine.SelfSpeedup(w, 32)
	if sp16 > 4.5 || sp32 > 4.5 {
		t.Errorf("memory-bound speedups %.2f/%.2f exceed the 4× roofline", sp16, sp32)
	}
	if sp32 < sp16*0.95 {
		t.Errorf("saturated speedup should stay flat: %.2f then %.2f", sp16, sp32)
	}
	if c := testMachine.SaturationCores(w); c < 3 || c > 5 {
		t.Errorf("saturation at %d cores, want ≈ 4", c)
	}
}

func TestCoreSpeedScalesBaselineSpeedup(t *testing.T) {
	// Fig. 10 semantics: a machine with half-speed cores reaches half
	// the baseline-relative speedup, while its self-speedup is
	// unaffected in the compute-bound regime.
	slow := testMachine
	slow.CoreSpeed = 0.5
	w := Workload{SeqSec: 32, Bytes: 1e6}
	if sp := slow.Speedup(w, 8); sp < 3.5 || sp > 4.01 {
		t.Errorf("baseline speedup with half-speed cores at 8 workers = %.2f, want ≈ 4", sp)
	}
	if sp := slow.SelfSpeedup(w, 8); sp < 7.5 || sp > 8.01 {
		t.Errorf("self-speedup must be core-speed independent: %.2f", sp)
	}
}

func TestWorkerCapAndFloor(t *testing.T) {
	w := Workload{SeqSec: 10}
	if Nehalem4.Time(w, 99) != Nehalem4.Time(w, 4) {
		t.Error("worker count must cap at the machine's cores")
	}
	if Nehalem4.Time(w, 0) != Nehalem4.Time(w, 1) {
		t.Error("worker count must floor at 1")
	}
	if Nehalem4.Speedup(w, 1) != 1 {
		t.Error("1-worker speedup must be 1 (no barrier cost charged)")
	}
	zero := Machine{Cores: 4, Bandwidth: 1e9} // CoreSpeed unset defaults to 1
	if zero.Time(w, 1) != 10 {
		t.Error("unset CoreSpeed must default to 1")
	}
}

func TestSyncCostCharged(t *testing.T) {
	noSync := Workload{SeqSec: 1e-3}
	withSync := Workload{SeqSec: 1e-3, Syncs: 100}
	if Opteron32.Time(withSync, 32) <= Opteron32.Time(noSync, 32) {
		t.Error("barriers must cost time")
	}
	// A tiny workload with many barriers must not show super-linear
	// speedup — and can even slow down.
	if sp := Opteron32.Speedup(Workload{SeqSec: 1e-5, Syncs: 1000}, 32); sp > 1 {
		t.Errorf("barrier-dominated workload speedup %.2f > 1", sp)
	}
}

func TestPaperShapeCompactVsPointerChasing(t *testing.T) {
	// Fig. 11a mechanism: for equal sequential time, the structure with
	// an order of magnitude more per-point traffic saturates earlier and
	// ends lower.
	compact := Workload{SeqSec: 1, Bytes: 0.1 * Opteron32.Bandwidth, Syncs: 60}
	tree := Workload{SeqSec: 1, Bytes: 2 * Opteron32.Bandwidth, Syncs: 60}
	if a, b := Opteron32.SelfSpeedup(compact, 32), Opteron32.SelfSpeedup(tree, 32); a <= b {
		t.Errorf("compact (%.1f×) must out-scale the pointer-chasing structure (%.1f×)", a, b)
	}
	if c := Opteron32.SaturationCores(tree); c > 15 {
		t.Errorf("heavy-traffic structure saturates at %d cores, expected early saturation", c)
	}
}

func TestMachineRoster(t *testing.T) {
	if len(Machines) != 3 || Machines[0].Cores != 32 || Machines[2].Cores != 4 {
		t.Error("paper machine roster wrong")
	}
	for _, m := range Machines {
		if m.Bandwidth <= 0 || m.SyncCost <= 0 || m.Name == "" || m.CoreSpeed <= 0 {
			t.Errorf("machine %+v incomplete", m)
		}
	}
}
