// Package mcmodel is a roofline-style multicore scaling model: the
// substrate that stands in for the paper's 4-core Nehalem, 8-core
// Nehalem EP and 32-core Opteron machines (DESIGN.md §2) on a host with
// fewer cores.
//
// The model's inputs are honest measurements of this repository's
// implementations: the measured single-thread runtime and the counted
// non-sequential memory references of the actual run (one cache line
// each). Scaling then follows the mechanism the paper names for
// Fig. 11: compute scales with the worker count until the structure's
// memory traffic saturates the machine's bandwidth —
//
//	T(W) = max(Tseq/W, Bytes/Bandwidth) + Syncs·SyncCost ,
//
// which is why the pointer-chasing structures (trees, hash tables,
// whose per-access traffic is a cache line per hop) flatten out beyond
// ~15 cores while the compact layout keeps scaling.
package mcmodel

// Machine describes a multicore target.
type Machine struct {
	// Name labels the machine in reports.
	Name string
	// Cores is the number of usable cores.
	Cores int
	// CoreSpeed is one core's throughput relative to the measurement
	// baseline core (the paper's Fig. 10 baseline is one Nehalem core).
	CoreSpeed float64
	// Bandwidth is the sustained aggregate memory bandwidth for the
	// scattered access patterns of sparse grid operations, in
	// bytes/second.
	Bandwidth float64
	// SyncCost is the cost of one global barrier in seconds.
	SyncCost float64
}

// The paper's evaluation machines (Sec. 6.2). Bandwidths are sustained
// random-access aggregates (well below peak) for DDR2-667 ×8 sockets
// and DDR3-1066 ×2 / ×1 sockets; the Barcelona-era Opteron core is
// roughly half a Nehalem core on this code.
var (
	// Opteron32 is the 8-socket, 32-core AMD Opteron 8356.
	Opteron32 = Machine{Name: "32 Core AMD Opteron", Cores: 32, CoreSpeed: 0.45, Bandwidth: 20e9, SyncCost: 4e-6}
	// NehalemEP8 is the dual-socket, 8-core Nehalem E5540.
	NehalemEP8 = Machine{Name: "8 Core Intel Nehalem EP", Cores: 8, CoreSpeed: 1.0, Bandwidth: 24e9, SyncCost: 1.5e-6}
	// Nehalem4 is the single-socket, 4-core i7-920.
	Nehalem4 = Machine{Name: "4 Core Intel Nehalem", Cores: 4, CoreSpeed: 1.0, Bandwidth: 12e9, SyncCost: 1e-6}
)

// Machines lists the paper's CPU configurations in Fig. 10 legend order.
var Machines = []Machine{Opteron32, NehalemEP8, Nehalem4}

// Workload characterizes one parallel operation.
type Workload struct {
	// SeqSec is the measured single-thread runtime.
	SeqSec float64
	// Bytes is the memory traffic demand: non-sequential references ×
	// one cache line (64 B), counted on the real run.
	Bytes float64
	// Syncs is the number of global barriers (hierarchization: one per
	// level group per dimension; evaluation: none).
	Syncs int
}

// CacheLine is the traffic charged per non-sequential reference.
const CacheLine = 64

// Time models the machine's runtime with the given worker count
// (capped at the machine's cores). The single-core compute time is the
// measured baseline time divided by the machine's relative core speed.
func (m Machine) Time(w Workload, workers int) float64 {
	if workers < 1 {
		workers = 1
	}
	if workers > m.Cores {
		workers = m.Cores
	}
	cs := m.CoreSpeed
	if cs <= 0 {
		cs = 1
	}
	t := w.SeqSec / (cs * float64(workers))
	if workers > 1 {
		if mem := w.Bytes / m.Bandwidth; mem > t {
			t = mem
		}
		t += float64(w.Syncs) * m.SyncCost
	}
	return t
}

// Speedup models the speedup relative to the measurement baseline core
// (the paper's Fig. 10 quantity: everything is normalized to one
// sequential Nehalem run).
func (m Machine) Speedup(w Workload, workers int) float64 {
	return w.SeqSec / m.Time(w, workers)
}

// SelfSpeedup models the machine's own T(1)/T(workers) — the paper's
// Fig. 11 quantity.
func (m Machine) SelfSpeedup(w Workload, workers int) float64 {
	return m.Time(w, 1) / m.Time(w, workers)
}

// SaturationCores returns the worker count beyond which the workload is
// bandwidth-bound on the machine (m.Cores if never saturated).
func (m Machine) SaturationCores(w Workload) int {
	mem := w.Bytes / m.Bandwidth
	if mem <= 0 {
		return m.Cores
	}
	for c := 1; c < m.Cores; c++ {
		if m.Time(w, c+1)-float64(w.Syncs)*m.SyncCost <= mem {
			return c
		}
	}
	return m.Cores
}
