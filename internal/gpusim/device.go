package gpusim

import "fmt"

// Device owns the simulated memories. Global memory is word-addressed
// (one float64 per address); constant memory holds the small read-only
// tables kernels stage there (binmat, group offsets).
type Device struct {
	cfg    Config
	global []float64
	constI []int64
	constF []float64
	brk    int64 // bump allocator watermark
}

// NewDevice creates a device with the given configuration.
func NewDevice(cfg Config) *Device {
	return &Device{cfg: cfg}
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// AllocGlobal reserves n words of global memory and returns the base
// address, aligned to a 256-byte boundary like cudaMalloc (so
// consecutive warp accesses start segment-aligned). The backing store
// grows as needed (the host has the real memory; the 4 GB limit of the
// C1060 is not enforced, it is reported by MemoryWords for the harness
// to check).
func (d *Device) AllocGlobal(n int64) int64 {
	if n < 0 {
		panic("gpusim: negative allocation")
	}
	const alignWords = 32 // 256 B
	d.brk = (d.brk + alignWords - 1) / alignWords * alignWords
	base := d.brk
	d.brk += n
	if int64(len(d.global)) < d.brk {
		grown := make([]float64, d.brk)
		copy(grown, d.global)
		d.global = grown
	}
	return base
}

// MemoryWords returns the number of allocated global words.
func (d *Device) MemoryWords() int64 { return d.brk }

// CopyToDevice writes src into global memory at base (cudaMemcpy H2D).
func (d *Device) CopyToDevice(base int64, src []float64) {
	copy(d.global[base:base+int64(len(src))], src)
}

// CopyFromDevice reads len(dst) words from base (cudaMemcpy D2H).
func (d *Device) CopyFromDevice(dst []float64, base int64) {
	copy(dst, d.global[base:base+int64(len(dst))])
}

// SetConstI installs the integer constant memory image (e.g. binmat).
func (d *Device) SetConstI(v []int64) { d.constI = append(d.constI[:0], v...) }

// SetConstF installs the float constant memory image.
func (d *Device) SetConstF(v []float64) { d.constF = append(d.constF[:0], v...) }

// TransferTime returns the PCIe transfer cost the harness charges for
// moving n words between host and device. The C1060-era bus moves
// ~5.5 GB/s effective.
func (d *Device) TransferTime(words int64) float64 {
	const pcieBandwidth = 5.5e9
	return float64(words*8) / pcieBandwidth
}

func (d *Device) String() string {
	return fmt.Sprintf("%s (%d SMs, %d words allocated)", d.cfg.Name, d.cfg.SMs, d.brk)
}
