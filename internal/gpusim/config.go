// Package gpusim is a functional SIMT GPU simulator: the substrate that
// stands in for the paper's Tesla C1060 + CUDA (see DESIGN.md §2). It
// executes kernels for real — device global memory holds the actual
// coefficients, thread blocks run with __syncthreads semantics, and the
// results are bit-identical to the CPU algorithms — while tracking the
// performance-relevant events the paper's Sec. 5 discusses:
//
//   - global memory coalescing: per warp instruction, the distinct
//     128-byte segments touched become memory transactions;
//   - branch divergence: warp instructions whose lanes disagree
//     serialize;
//   - shared memory bank conflicts: lanes hitting the same bank at
//     different addresses serialize;
//   - constant cache: broadcast when all lanes read one word,
//     serialized otherwise;
//   - occupancy: resident warps per SM limited by threads, blocks, and
//     the per-block shared memory the kernels allocate (the effect
//     behind the paper's d > 10 caveat).
//
// A launch produces a Report whose cost model converts the counts into
// an estimated execution time for a configured device. The model is
// deliberately simple (documented in EstimateTime); EXPERIMENTS.md
// reports its output as modeled, not measured.
package gpusim

// Config describes the simulated device.
type Config struct {
	// Name labels the device in reports.
	Name string
	// SMs is the number of streaming multiprocessors.
	SMs int
	// SPsPerSM is the number of scalar processors (lanes) per SM.
	SPsPerSM int
	// ClockHz is the SP clock.
	ClockHz float64
	// WarpSize is the SIMT width.
	WarpSize int
	// MaxThreadsPerSM limits resident threads per SM.
	MaxThreadsPerSM int
	// MaxBlocksPerSM limits resident blocks per SM.
	MaxBlocksPerSM int
	// MaxThreadsPerBlock limits the block size.
	MaxThreadsPerBlock int
	// SharedMemPerSM is the shared memory capacity per SM in bytes.
	SharedMemPerSM int64
	// SharedBanks is the number of shared memory banks.
	SharedBanks int
	// GlobalBandwidth is the device memory bandwidth in bytes/second.
	GlobalBandwidth float64
	// GlobalLatencyCycles is the uncovered global memory latency.
	GlobalLatencyCycles float64
	// TransactionBytes is the coalescing segment size.
	TransactionBytes int64
	// LaunchOverheadSec is the host-side cost of one kernel launch.
	LaunchOverheadSec float64
	// L1CacheBytes is the per-SM L1 cache for global accesses (0 = no
	// cache, as on the C1060/GT200).
	L1CacheBytes int64
	// L2CacheBytes is the device-wide L2 cache (0 = none).
	L2CacheBytes int64
	// L2Bandwidth is the L2 hit bandwidth in bytes/second (only used
	// when L2CacheBytes > 0).
	L2Bandwidth float64
}

// TeslaC1060 returns the configuration of the paper's GPU (Sec. 5.1:
// 30 SMs × 8 SPs, up to 1024 resident threads per SM, 4 GB of device
// memory; 16 KB shared memory and 16 banks per SM, ~102 GB/s, 1.3 GHz).
func TeslaC1060() Config {
	return Config{
		Name:                "Tesla C1060",
		SMs:                 30,
		SPsPerSM:            8,
		ClockHz:             1.296e9,
		WarpSize:            32,
		MaxThreadsPerSM:     1024,
		MaxBlocksPerSM:      8,
		MaxThreadsPerBlock:  512,
		SharedMemPerSM:      16 << 10,
		SharedBanks:         16,
		GlobalBandwidth:     102e9,
		GlobalLatencyCycles: 500,
		TransactionBytes:    128,
		LaunchOverheadSec:   5e-6,
	}
}

// FermiC2050 returns the configuration of the Fermi-generation Tesla
// the paper names as future work (Sec. 8: "the two-level cache, 64 KB
// level-1 per SM and 768 KB shared level-2, could be beneficial for
// both sparse grid operations"): 14 SMs × 32 SPs, 48 KB shared + 16 KB
// L1 per SM, 768 KB L2, ~144 GB/s DRAM.
func FermiC2050() Config {
	return Config{
		Name:                "Tesla C2050 (Fermi)",
		SMs:                 14,
		SPsPerSM:            32,
		ClockHz:             1.15e9,
		WarpSize:            32,
		MaxThreadsPerSM:     1536,
		MaxBlocksPerSM:      8,
		MaxThreadsPerBlock:  1024,
		SharedMemPerSM:      48 << 10,
		SharedBanks:         32,
		GlobalBandwidth:     144e9,
		GlobalLatencyCycles: 400,
		TransactionBytes:    128,
		LaunchOverheadSec:   4e-6,
		L1CacheBytes:        16 << 10,
		L2CacheBytes:        768 << 10,
		L2Bandwidth:         230e9,
	}
}

// Occupancy returns the fraction of MaxThreadsPerSM kept resident by
// blocks of blockDim threads, each consuming sharedPerBlock bytes of
// shared memory.
func (c Config) Occupancy(blockDim int, sharedPerBlock int64) float64 {
	if blockDim <= 0 {
		return 0
	}
	blocks := c.MaxBlocksPerSM
	if byThreads := c.MaxThreadsPerSM / blockDim; byThreads < blocks {
		blocks = byThreads
	}
	if sharedPerBlock > 0 {
		if byShared := int(c.SharedMemPerSM / sharedPerBlock); byShared < blocks {
			blocks = byShared
		}
	}
	if blocks < 1 {
		return 0
	}
	occ := float64(blocks*blockDim) / float64(c.MaxThreadsPerSM)
	if occ > 1 {
		occ = 1
	}
	return occ
}
