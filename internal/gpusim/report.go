package gpusim

import "fmt"

// Report accumulates the performance-relevant event counts of one or
// more kernel launches and converts them into a modeled execution time.
type Report struct {
	// Launches is the number of kernel launches folded into the report.
	Launches int
	// GridDim/BlockDim describe the (last) launch shape.
	GridDim, BlockDim int
	// SharedBytesPerBlock is the largest per-block shared allocation.
	SharedBytesPerBlock int64

	// LaneOps counts scalar arithmetic operations across all lanes.
	LaneOps int64
	// ArithWarpInstr counts arithmetic warp instructions.
	ArithWarpInstr int64
	// GlobalWarpInstr counts global load/store warp instructions.
	GlobalWarpInstr int64
	// GlobalTransactions counts memory transactions after coalescing:
	// one per distinct 128-byte segment per global warp instruction.
	GlobalTransactions int64
	// L1Hits/L2Hits split GlobalTransactions on cache-equipped (Fermi)
	// devices; DRAMTransactions are the remaining misses that reach
	// device memory. Without caches DRAMTransactions equals
	// GlobalTransactions.
	L1Hits, L2Hits, DRAMTransactions int64
	// SharedWarpInstr counts shared memory warp instructions.
	SharedWarpInstr int64
	// SharedConflictExtra counts the extra serialized shared cycles
	// caused by bank conflicts (conflict ways − 1, summed).
	SharedConflictExtra int64
	// ConstWarpInstr counts constant memory warp instructions.
	ConstWarpInstr int64
	// ConstSerializations counts extra constant reads where lanes
	// addressed different words (no broadcast).
	ConstSerializations int64
	// BranchWarpInstr counts recorded branch instructions.
	BranchWarpInstr int64
	// DivergentBranches counts branches whose warp lanes disagreed.
	DivergentBranches int64
}

// Add folds another launch's counts into the report.
func (r *Report) Add(o *Report) {
	r.Launches += o.Launches
	r.GridDim, r.BlockDim = o.GridDim, o.BlockDim
	if o.SharedBytesPerBlock > r.SharedBytesPerBlock {
		r.SharedBytesPerBlock = o.SharedBytesPerBlock
	}
	r.LaneOps += o.LaneOps
	r.ArithWarpInstr += o.ArithWarpInstr
	r.GlobalWarpInstr += o.GlobalWarpInstr
	r.GlobalTransactions += o.GlobalTransactions
	r.L1Hits += o.L1Hits
	r.L2Hits += o.L2Hits
	r.DRAMTransactions += o.DRAMTransactions
	r.SharedWarpInstr += o.SharedWarpInstr
	r.SharedConflictExtra += o.SharedConflictExtra
	r.ConstWarpInstr += o.ConstWarpInstr
	r.ConstSerializations += o.ConstSerializations
	r.BranchWarpInstr += o.BranchWarpInstr
	r.DivergentBranches += o.DivergentBranches
}

// CoalescingEfficiency returns the ratio of the minimum possible
// transaction count (one per global warp instruction) to the actual one;
// 1.0 means perfectly coalesced.
func (r *Report) CoalescingEfficiency() float64 {
	if r.GlobalTransactions == 0 {
		return 1
	}
	return float64(r.GlobalWarpInstr) / float64(r.GlobalTransactions)
}

// EstimateTime converts the counts into a modeled execution time on cfg.
//
// Model: every warp instruction occupies an SM's SP array for
// WarpSize/SPsPerSM cycles (4 on the C1060); divergent branches re-issue
// both sides (one extra instruction); shared bank conflicts and constant
// serializations add their extra cycles directly. The issue work spreads
// perfectly across SMs. Global memory traffic costs
// transactions × TransactionBytes / bandwidth. Compute and memory
// overlap only as well as multithreading allows: at occupancy 1 the
// smaller of the two hides completely (max), at occupancy 0 they
// serialize (sum). Uncovered latency: each global warp instruction pays
// GlobalLatencyCycles scaled by the unhidden fraction (1 − occupancy).
// Total modeled time = max(C,M) + (1−occ)·min(C,M) + exposed latency +
// per-launch overhead. This is a first-order model of exactly the
// effects Sec. 5 of the paper optimizes for.
func (r *Report) EstimateTime(cfg Config) float64 {
	issueCycles := float64(cfg.WarpSize) / float64(cfg.SPsPerSM)
	warpInstr := float64(r.ArithWarpInstr + r.GlobalWarpInstr + r.SharedWarpInstr + r.ConstWarpInstr + r.BranchWarpInstr)
	warpInstr += float64(r.DivergentBranches + r.SharedConflictExtra + r.ConstSerializations)
	computeSec := warpInstr * issueCycles / (float64(cfg.SMs) * cfg.ClockHz)

	memSec := float64(r.DRAMTransactions*cfg.TransactionBytes) / cfg.GlobalBandwidth
	if cfg.L2Bandwidth > 0 {
		memSec += float64(r.L2Hits*cfg.TransactionBytes) / cfg.L2Bandwidth
	}

	occ := cfg.Occupancy(r.BlockDim, r.SharedBytesPerBlock)
	// Cache hits shorten the exposed latency proportionally.
	missFrac := 1.0
	if r.GlobalTransactions > 0 {
		missFrac = float64(r.DRAMTransactions) / float64(r.GlobalTransactions)
	}
	latencySec := float64(r.GlobalWarpInstr) * missFrac * cfg.GlobalLatencyCycles * (1 - occ) / (float64(cfg.SMs) * cfg.ClockHz)

	lo, hi := computeSec, memSec
	if lo > hi {
		lo, hi = hi, lo
	}
	return hi + (1-occ)*lo + latencySec + float64(r.Launches)*cfg.LaunchOverheadSec
}

func (r *Report) String() string {
	return fmt.Sprintf(
		"launches=%d grid=%d×%d laneOps=%d warpInstr(arith=%d global=%d shared=%d const=%d branch=%d) transactions=%d (L1 %d, L2 %d, DRAM %d) coalescing=%.2f divergent=%d bankExtra=%d constSer=%d shared/block=%dB",
		r.Launches, r.GridDim, r.BlockDim, r.LaneOps,
		r.ArithWarpInstr, r.GlobalWarpInstr, r.SharedWarpInstr, r.ConstWarpInstr, r.BranchWarpInstr,
		r.GlobalTransactions, r.L1Hits, r.L2Hits, r.DRAMTransactions,
		r.CoalescingEfficiency(), r.DivergentBranches, r.SharedConflictExtra, r.ConstSerializations,
		r.SharedBytesPerBlock)
}
