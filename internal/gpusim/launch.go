package gpusim

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// Kernel is a simulated CUDA kernel. The outer function runs once per
// thread block (this is where __shared__ arrays are declared); the
// returned function is the per-thread body. Threads of a block run
// concurrently with __syncthreads semantics via Thread.Sync.
//
// Instrumentation contract: the per-thread body must issue instrumented
// operations (loads, stores, Ops, Branch, Sync) in the same order in
// every thread of a warp — the usual warp-uniform structure of CUDA
// kernels. Data-dependent *addresses* and branch *predicates* are fine
// (that is what coalescing and divergence tracking measure); skipping an
// instrumented call in some lanes but not others would misalign the
// per-warp grouping.
type Kernel func(b *Block) func(t *Thread)

// Launch runs the kernel on gridDim blocks of blockDim threads and
// returns the accumulated performance report. Threads within a block
// run concurrently with barrier semantics. Blocks of a cache-less
// device (no L2) are independent and simulate in parallel on the host;
// with a modeled L2, blocks run back to back so the cache replay stays
// deterministic. Either way the accounting is identical: finalization
// only sums per-block counts.
func (d *Device) Launch(gridDim, blockDim int, kernel Kernel) (*Report, error) {
	if gridDim < 1 || blockDim < 1 {
		return nil, fmt.Errorf("gpusim: launch dimensions %d×%d invalid", gridDim, blockDim)
	}
	if blockDim > d.cfg.MaxThreadsPerBlock {
		return nil, fmt.Errorf("gpusim: block size %d exceeds device limit %d", blockDim, d.cfg.MaxThreadsPerBlock)
	}
	rep := &Report{Launches: 1, GridDim: gridDim, BlockDim: blockDim}
	// Fermi-style cache hierarchy: L2 is device-wide (persists across
	// blocks of the launch), L1 is per SM — approximated per block.
	l2 := newCacheSim(d.cfg.L2CacheBytes, d.cfg.TransactionBytes)

	hostWorkers := 1
	if l2 == nil {
		hostWorkers = runtime.GOMAXPROCS(0)
	}
	var mu sync.Mutex // guards rep across host workers
	var firstErr error
	next := make(chan int, gridDim)
	for blk := 0; blk < gridDim; blk++ {
		next <- blk
	}
	close(next)
	var hw sync.WaitGroup
	for w := 0; w < hostWorkers; w++ {
		hw.Add(1)
		go func() {
			defer hw.Done()
			for blk := range next {
				if err := d.runBlock(blk, gridDim, blockDim, kernel, rep, &mu, l2); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	hw.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return rep, nil
}

// runBlock executes one thread block and folds its accounting into rep.
func (d *Device) runBlock(blk, gridDim, blockDim int, kernel Kernel, rep *Report, mu *sync.Mutex, l2 *cacheSim) error {
	warps := (blockDim + d.cfg.WarpSize - 1) / d.cfg.WarpSize
	b := &Block{
		Idx:     blk,
		Dim:     blockDim,
		GridDim: gridDim,
		dev:     d,
		bar:     newBarrier(blockDim),
		warps:   make([]*warpTracker, warps),
	}
	for w := range b.warps {
		lanes := d.cfg.WarpSize
		if (w+1)*d.cfg.WarpSize > blockDim {
			lanes = blockDim - w*d.cfg.WarpSize
		}
		b.warps[w] = &warpTracker{groups: map[int64]*group{}, lanes: lanes}
	}
	body := kernel(b)
	var wg sync.WaitGroup
	for th := 0; th < blockDim; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			t := &Thread{Idx: th, b: b, warp: b.warps[th/d.cfg.WarpSize], lane: th % d.cfg.WarpSize}
			body(t)
			t.flushOps()
		}(th)
	}
	wg.Wait()
	if b.sharedWords*8 > d.cfg.SharedMemPerSM {
		return fmt.Errorf("gpusim: block allocates %d B shared memory, SM has %d", b.sharedWords*8, d.cfg.SharedMemPerSM)
	}
	l1 := newCacheSim(d.cfg.L1CacheBytes, d.cfg.TransactionBytes)
	mu.Lock()
	defer mu.Unlock()
	if b.sharedWords*8 > rep.SharedBytesPerBlock {
		rep.SharedBytesPerBlock = b.sharedWords * 8
	}
	for _, w := range b.warps {
		w.finalize(d.cfg, rep, l1, l2)
	}
	return nil
}

// Block is the per-thread-block context.
type Block struct {
	// Idx is the block index within the launch grid (blockIdx.x).
	Idx int
	// Dim is the number of threads in the block (blockDim.x).
	Dim int
	// GridDim is the number of blocks in the launch (gridDim.x).
	GridDim int

	dev         *Device
	bar         *barrier
	warps       []*warpTracker
	sharedWords int64
	sharedMu    sync.Mutex
}

// SharedF64 declares a block-shared float64 array (__shared__ double[n]).
// Declare from the block closure, before threads start using it.
func (b *Block) SharedF64(n int) *SharedF64 {
	b.sharedMu.Lock()
	defer b.sharedMu.Unlock()
	b.sharedWords += int64(n)
	return &SharedF64{data: make([]float64, n)}
}

// SharedI32 declares a block-shared int32 array. It occupies half a word
// per element (two int32 per bank row, like 32-bit shared accesses).
func (b *Block) SharedI32(n int) *SharedI32 {
	b.sharedMu.Lock()
	defer b.sharedMu.Unlock()
	b.sharedWords += int64(n+1) / 2
	return &SharedI32{data: make([]int32, n)}
}

// SharedI64 declares a block-shared int64 array (e.g. a binmat copy).
func (b *Block) SharedI64(n int) *SharedI64 {
	b.sharedMu.Lock()
	defer b.sharedMu.Unlock()
	b.sharedWords += int64(n)
	return &SharedI64{data: make([]int64, n)}
}

// SharedF64 is a block-shared array of float64.
type SharedF64 struct {
	data []float64
	mu   sync.Mutex
}

// SharedI64 is a block-shared array of int64.
type SharedI64 struct {
	data []int64
	mu   sync.Mutex
}

// Load reads a shared int64 array.
func (s *SharedI64) Load(t *Thread, idx int) int64 {
	t.record(accShared, int64(idx), false)
	s.mu.Lock()
	v := s.data[idx]
	s.mu.Unlock()
	return v
}

// Store writes a shared int64 array.
func (s *SharedI64) Store(t *Thread, idx int, v int64) {
	t.record(accShared, int64(idx), false)
	s.mu.Lock()
	s.data[idx] = v
	s.mu.Unlock()
}

// SharedI32 is a block-shared array of int32.
type SharedI32 struct {
	data []int32
	mu   sync.Mutex
}

// Thread is the per-thread context handed to kernel bodies.
type Thread struct {
	// Idx is the thread index within the block (threadIdx.x).
	Idx int

	b     *Block
	warp  *warpTracker
	lane  int
	seq   int64
	ops   int64
	local []float64
}

// Global returns the thread's global-thread index
// blockIdx.x·blockDim.x + threadIdx.x.
func (t *Thread) Global() int { return t.b.Idx*t.b.Dim + t.Idx }

// Block returns the owning block context.
func (t *Thread) Block() *Block { return t.b }

// Sync is __syncthreads(): blocks until every thread of the block
// arrives. It also flushes the thread's arithmetic tally and realigns
// the per-thread instruction sequence, so thread-divergent sections
// (e.g. a master thread updating shared state) do not desynchronize the
// warp-instruction grouping of the code after the barrier.
func (t *Thread) Sync() {
	t.flushOps()
	gen := t.b.bar.await()
	t.seq = int64(gen) << 32
}

// Ops records n scalar arithmetic operations (adds, multiplies, shifts).
// Kernels call it with honest per-statement counts; the cost model
// converts lane operations into warp instructions.
func (t *Thread) Ops(n int) { t.ops += int64(n) }

func (t *Thread) flushOps() {
	if t.ops > 0 {
		t.warp.addOps(t.ops)
		t.ops = 0
	}
}

// LoadGlobal reads one word of global memory.
func (t *Thread) LoadGlobal(addr int64) float64 {
	t.record(accGlobal, addr, false)
	return t.b.dev.global[addr]
}

// StoreGlobal writes one word of global memory.
func (t *Thread) StoreGlobal(addr int64, v float64) {
	t.record(accGlobal, addr, false)
	t.b.dev.global[addr] = v
}

// localAddrBase places the synthetic local-memory address space far
// above any real allocation, so coalescing/cache accounting never
// collides with device arrays.
const localAddrBase = int64(1) << 40

// localAddr models CUDA's interleaved local-memory layout: element i of
// every thread of a block is contiguous across lanes, so uniform
// per-thread array accesses coalesce.
func (t *Thread) localAddr(i int) int64 {
	return localAddrBase + int64(i)*int64(t.b.Dim) + int64(t.Idx)
}

// LoadLocal reads slot i of the thread's local memory (CUDA "local"
// space: thread-private, but physically resident in device memory — it
// pays global bandwidth and latency, which is why the paper's block-
// shared level vector wins over per-thread copies).
func (t *Thread) LoadLocal(i int) float64 {
	t.record(accGlobal, t.localAddr(i), false)
	if i >= len(t.local) {
		return 0
	}
	return t.local[i]
}

// StoreLocal writes slot i of the thread's local memory.
func (t *Thread) StoreLocal(i int, v float64) {
	t.record(accGlobal, t.localAddr(i), false)
	for len(t.local) <= i {
		t.local = append(t.local, 0)
	}
	t.local[i] = v
}

// LoadConstI reads the integer constant memory (binmat etc.); broadcast
// is free, divergent addresses serialize (constant cache semantics).
func (t *Thread) LoadConstI(idx int) int64 {
	t.record(accConst, int64(idx), false)
	return t.b.dev.constI[idx]
}

// LoadConstF reads the float constant memory.
func (t *Thread) LoadConstF(idx int) float64 {
	t.record(accConst, int64(idx), false)
	return t.b.dev.constF[idx]
}

// Branch records a potentially divergent branch and returns taken.
func (t *Thread) Branch(taken bool) bool {
	t.record(accBranch, 0, taken)
	return taken
}

// Load reads a shared float64 array.
func (s *SharedF64) Load(t *Thread, idx int) float64 {
	t.record(accShared, int64(idx), false)
	s.mu.Lock()
	v := s.data[idx]
	s.mu.Unlock()
	return v
}

// Store writes a shared float64 array.
func (s *SharedF64) Store(t *Thread, idx int, v float64) {
	t.record(accShared, int64(idx), false)
	s.mu.Lock()
	s.data[idx] = v
	s.mu.Unlock()
}

// Load reads a shared int32 array.
func (s *SharedI32) Load(t *Thread, idx int) int32 {
	t.record(accShared, int64(idx)/2, false)
	s.mu.Lock()
	v := s.data[idx]
	s.mu.Unlock()
	return v
}

// Store writes a shared int32 array.
func (s *SharedI32) Store(t *Thread, idx int, v int32) {
	t.record(accShared, int64(idx)/2, false)
	s.mu.Lock()
	s.data[idx] = v
	s.mu.Unlock()
}

type accessKind uint8

const (
	accGlobal accessKind = iota
	accShared
	accConst
	accBranch
)

// record registers one lane's participation in warp instruction number
// t.seq. Lanes of a warp executing uniform code produce aligned
// sequences, so grouping by seq reconstructs warp instructions.
func (t *Thread) record(kind accessKind, addr int64, taken bool) {
	t.seq++
	t.warp.record(t.seq, kind, addr, taken, t.b.dev.cfg)
}

// group accumulates one warp instruction's lane activity.
type group struct {
	kind accessKind
	// segs holds distinct 128B segments (global), distinct words
	// (const), or distinct addresses (shared — same-address reads
	// broadcast and conflict-count by distinct addresses per bank).
	segs  []int64
	taken [2]int // branch outcome tally
	lanes int
}

// warpTracker aggregates the warp's instruction groups; finalized into
// the launch report when the block retires (deterministic regardless of
// goroutine scheduling).
type warpTracker struct {
	mu     sync.Mutex
	groups map[int64]*group
	lanes  int
	ops    int64
}

func (w *warpTracker) addOps(n int64) {
	w.mu.Lock()
	w.ops += n
	w.mu.Unlock()
}

func (w *warpTracker) record(seq int64, kind accessKind, addr int64, taken bool, cfg Config) {
	// Key by (seq, kind): if divergent control flow desynchronizes lane
	// sequences, accesses of different kinds never merge, keeping the
	// accounting deterministic (merely conservative).
	key := seq<<2 | int64(kind)
	w.mu.Lock()
	g := w.groups[key]
	if g == nil {
		g = &group{kind: kind}
		w.groups[key] = g
	}
	g.lanes++
	switch kind {
	case accGlobal:
		seg := addr * 8 / cfg.TransactionBytes
		insertDistinct(&g.segs, seg)
	case accConst:
		insertDistinct(&g.segs, addr)
	case accShared:
		insertDistinct(&g.segs, addr)
	case accBranch:
		if taken {
			g.taken[1]++
		} else {
			g.taken[0]++
		}
	}
	w.mu.Unlock()
}

func insertDistinct(s *[]int64, v int64) {
	k := sort.Search(len(*s), func(i int) bool { return (*s)[i] >= v })
	if k < len(*s) && (*s)[k] == v {
		return
	}
	*s = append(*s, 0)
	copy((*s)[k+1:], (*s)[k:])
	(*s)[k] = v
}

// finalize folds the warp's activity into the report, replaying global
// transactions through the cache hierarchy (if any) in program order.
func (w *warpTracker) finalize(cfg Config, rep *Report, l1, l2 *cacheSim) {
	w.mu.Lock()
	defer w.mu.Unlock()
	rep.LaneOps += w.ops
	// Arithmetic ops are lane-ops; one warp instruction covers one op in
	// every lane of the warp (fewer lanes in a partial warp).
	rep.ArithWarpInstr += (w.ops + int64(w.lanes) - 1) / int64(w.lanes)
	keys := make([]int64, 0, len(w.groups))
	for k := range w.groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	for _, k := range keys {
		g := w.groups[k]
		switch g.kind {
		case accGlobal:
			rep.GlobalWarpInstr++
			rep.GlobalTransactions += int64(len(g.segs))
			for _, seg := range g.segs {
				switch {
				case l1.access(seg):
					rep.L1Hits++
				case l2.access(seg):
					rep.L2Hits++
				default:
					rep.DRAMTransactions++
				}
			}
		case accConst:
			rep.ConstWarpInstr++
			if len(g.segs) > 1 {
				rep.ConstSerializations += int64(len(g.segs) - 1)
			}
		case accShared:
			rep.SharedWarpInstr++
			// Conflict ways = the largest number of DISTINCT addresses
			// landing in one bank; same-address lanes broadcast.
			counts := make(map[int64]int64, cfg.SharedBanks)
			var ways int64 = 1
			for _, addr := range g.segs {
				b := addr % int64(cfg.SharedBanks)
				counts[b]++
				if counts[b] > ways {
					ways = counts[b]
				}
			}
			rep.SharedConflictExtra += ways - 1
		case accBranch:
			rep.BranchWarpInstr++
			if g.taken[0] > 0 && g.taken[1] > 0 {
				rep.DivergentBranches++
			}
		}
	}
	w.groups = map[int64]*group{}
	w.ops = 0
}

// barrier is a reusable (cyclic) barrier for __syncthreads.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	waiting int
	gen     int
}

func newBarrier(parties int) *barrier {
	b := &barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all parties arrive and returns the new generation
// number (≥ 1, strictly increasing across barriers).
func (b *barrier) await() int {
	b.mu.Lock()
	gen := b.gen
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	out := b.gen
	b.mu.Unlock()
	return out
}
