package gpusim

import (
	"math"
	"testing"
)

func testConfig() Config {
	c := TeslaC1060()
	return c
}

func TestDeviceAllocAndCopy(t *testing.T) {
	d := NewDevice(testConfig())
	a := d.AllocGlobal(10)
	b := d.AllocGlobal(5)
	// Allocations are 256-byte (32-word) aligned, like cudaMalloc.
	if a != 0 || b != 32 || d.MemoryWords() != 37 {
		t.Fatalf("allocator: a=%d b=%d words=%d", a, b, d.MemoryWords())
	}
	src := []float64{1, 2, 3, 4, 5}
	d.CopyToDevice(b, src)
	dst := make([]float64, 5)
	d.CopyFromDevice(dst, b)
	for k := range src {
		if dst[k] != src[k] {
			t.Fatalf("copy round trip failed at %d", k)
		}
	}
	if d.TransferTime(1e6) <= 0 {
		t.Error("TransferTime must be positive")
	}
}

func TestLaunchValidation(t *testing.T) {
	d := NewDevice(testConfig())
	if _, err := d.Launch(0, 32, func(b *Block) func(*Thread) { return func(*Thread) {} }); err == nil {
		t.Error("gridDim 0 accepted")
	}
	if _, err := d.Launch(1, 0, func(b *Block) func(*Thread) { return func(*Thread) {} }); err == nil {
		t.Error("blockDim 0 accepted")
	}
	if _, err := d.Launch(1, 4096, func(b *Block) func(*Thread) { return func(*Thread) {} }); err == nil {
		t.Error("oversized block accepted")
	}
}

func TestKernelFunctionalSaxpy(t *testing.T) {
	// y = a*x + y over 1000 elements, 4 blocks of 256 threads.
	d := NewDevice(testConfig())
	n := 1000
	xBase := d.AllocGlobal(int64(n))
	yBase := d.AllocGlobal(int64(n))
	x := make([]float64, n)
	y := make([]float64, n)
	for k := range x {
		x[k] = float64(k)
		y[k] = 2 * float64(k)
	}
	d.CopyToDevice(xBase, x)
	d.CopyToDevice(yBase, y)
	rep, err := d.Launch(4, 256, func(b *Block) func(*Thread) {
		return func(t *Thread) {
			g := t.Global()
			if t.Branch(g < n) {
				v := t.LoadGlobal(xBase + int64(g))
				w := t.LoadGlobal(yBase + int64(g))
				t.Ops(2)
				t.StoreGlobal(yBase+int64(g), 3*v+w)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, n)
	d.CopyFromDevice(out, yBase)
	for k := range out {
		if out[k] != 3*float64(k)+2*float64(k) {
			t.Fatalf("saxpy wrong at %d: %g", k, out[k])
		}
	}
	// Coalescing: consecutive lanes touch consecutive words → each
	// 32-lane warp instruction covers 32·8 = 256 B = 2 segments.
	if eff := rep.CoalescingEfficiency(); eff < 0.45 || eff > 0.55 {
		t.Errorf("coalescing efficiency %.3f, want ≈ 0.5 (2 transactions per 32-wide access)", eff)
	}
	// Exactly one divergent branch: the warp spanning index 1000.
	if rep.DivergentBranches != 1 {
		t.Errorf("divergent branches = %d, want 1 (boundary warp)", rep.DivergentBranches)
	}
}

func TestStridedAccessUncoalesced(t *testing.T) {
	// Stride-16 word accesses: every lane in its own 128B segment.
	d := NewDevice(testConfig())
	base := d.AllocGlobal(32 * 16)
	rep, err := d.Launch(1, 32, func(b *Block) func(*Thread) {
		return func(t *Thread) {
			t.LoadGlobal(base + int64(t.Idx*16))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.GlobalWarpInstr != 1 || rep.GlobalTransactions != 32 {
		t.Errorf("strided: %d warp instr, %d transactions; want 1, 32", rep.GlobalWarpInstr, rep.GlobalTransactions)
	}
	// Same-address access: fully coalesced single transaction.
	rep2, err := d.Launch(1, 32, func(b *Block) func(*Thread) {
		return func(t *Thread) {
			t.LoadGlobal(base)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.GlobalTransactions != 1 {
		t.Errorf("broadcast load: %d transactions want 1", rep2.GlobalTransactions)
	}
}

func TestSyncThreadsSharedMemory(t *testing.T) {
	// Block reduction: thread 0 publishes, all read after barrier — the
	// shared-l pattern of the paper's kernels.
	d := NewDevice(testConfig())
	out := d.AllocGlobal(64)
	_, err := d.Launch(1, 64, func(b *Block) func(*Thread) {
		sh := b.SharedF64(1)
		return func(t *Thread) {
			if t.Idx == 0 {
				sh.Store(t, 0, 42)
			}
			t.Sync()
			v := sh.Load(t, 0)
			t.StoreGlobal(out+int64(t.Idx), v)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	res := make([]float64, 64)
	d.CopyFromDevice(res, out)
	for k, v := range res {
		if v != 42 {
			t.Fatalf("thread %d read %g before/without barrier", k, v)
		}
	}
}

func TestSharedBankConflicts(t *testing.T) {
	d := NewDevice(testConfig())
	// All 32 lanes hit bank 0 at different addresses: 16-bank device,
	// addresses k*16 → bank 0, 32 ways... lanes map to banks by word
	// address mod 16. Expect 31 extra serialized cycles... ways = 32.
	rep, err := d.Launch(1, 32, func(b *Block) func(*Thread) {
		sh := b.SharedF64(32 * 16)
		return func(t *Thread) {
			sh.Store(t, t.Idx*16, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SharedConflictExtra != 31 {
		t.Errorf("bank conflict extra = %d want 31", rep.SharedConflictExtra)
	}
	// Conflict-free: consecutive addresses.
	rep2, err := d.Launch(1, 32, func(b *Block) func(*Thread) {
		sh := b.SharedF64(32)
		return func(t *Thread) {
			sh.Store(t, t.Idx, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// 32 lanes over 16 banks at distinct consecutive addresses: a 2-way
	// conflict, i.e. one extra serialized cycle for the instruction.
	if rep2.SharedConflictExtra != 1 {
		t.Errorf("consecutive f64 shared: extra=%d want 1 (2-way conflict)", rep2.SharedConflictExtra)
	}
}

func TestConstBroadcastVsSerialized(t *testing.T) {
	d := NewDevice(testConfig())
	d.SetConstI(make([]int64, 64))
	repB, err := d.Launch(1, 32, func(b *Block) func(*Thread) {
		return func(t *Thread) {
			t.LoadConstI(7)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if repB.ConstSerializations != 0 {
		t.Errorf("broadcast const read serialized: %d", repB.ConstSerializations)
	}
	repS, err := d.Launch(1, 32, func(b *Block) func(*Thread) {
		return func(t *Thread) {
			t.LoadConstI(t.Idx)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if repS.ConstSerializations != 31 {
		t.Errorf("divergent const read: %d serializations want 31", repS.ConstSerializations)
	}
}

func TestSharedMemoryLimitEnforced(t *testing.T) {
	d := NewDevice(testConfig())
	_, err := d.Launch(1, 32, func(b *Block) func(*Thread) {
		b.SharedF64(3000) // 24 KB > 16 KB
		return func(t *Thread) {}
	})
	if err == nil {
		t.Error("shared memory over-allocation accepted")
	}
}

func TestOccupancy(t *testing.T) {
	cfg := testConfig()
	// 256-thread blocks, no shared memory: limited by MaxThreadsPerSM
	// (1024/256 = 4 blocks ≤ 8) → occupancy 1.
	if occ := cfg.Occupancy(256, 0); occ != 1 {
		t.Errorf("occupancy(256,0)=%g want 1", occ)
	}
	// Heavy shared usage: 8 KB per block → 2 blocks of 64 threads → 128
	// resident threads = 0.125.
	if occ := cfg.Occupancy(64, 8<<10); math.Abs(occ-0.125) > 1e-12 {
		t.Errorf("occupancy(64,8K)=%g want 0.125", occ)
	}
	if cfg.Occupancy(0, 0) != 0 {
		t.Error("occupancy with blockDim 0 must be 0")
	}
}

func TestEstimateTimeMonotonicity(t *testing.T) {
	cfg := testConfig()
	base := &Report{Launches: 1, BlockDim: 256, ArithWarpInstr: 1000, GlobalWarpInstr: 100, GlobalTransactions: 200, DRAMTransactions: 200}
	tBase := base.EstimateTime(cfg)
	if tBase <= 0 {
		t.Fatal("time must be positive")
	}
	worse := *base
	worse.GlobalTransactions = 20000
	worse.DRAMTransactions = 20000
	if worse.EstimateTime(cfg) <= tBase {
		t.Error("more transactions must not be faster")
	}
	diverged := *base
	diverged.DivergentBranches = 100000
	if diverged.EstimateTime(cfg) <= tBase {
		t.Error("divergence must not be free")
	}
	lowOcc := *base
	lowOcc.SharedBytesPerBlock = 8 << 10
	lowOcc.BlockDim = 64
	if lowOcc.EstimateTime(cfg) <= tBase {
		t.Error("occupancy collapse must expose latency")
	}
}

func TestReportAdd(t *testing.T) {
	a := &Report{Launches: 1, ArithWarpInstr: 10, GlobalTransactions: 5, SharedBytesPerBlock: 100}
	b := &Report{Launches: 2, ArithWarpInstr: 20, GlobalTransactions: 7, SharedBytesPerBlock: 50, DivergentBranches: 3}
	a.Add(b)
	if a.Launches != 3 || a.ArithWarpInstr != 30 || a.GlobalTransactions != 12 || a.DivergentBranches != 3 {
		t.Errorf("Add merged wrong: %+v", a)
	}
	if a.SharedBytesPerBlock != 100 {
		t.Error("Add must keep the max shared allocation")
	}
	if a.String() == "" {
		t.Error("String must render")
	}
}

func TestPartialWarpAccounting(t *testing.T) {
	d := NewDevice(testConfig())
	base := d.AllocGlobal(8)
	rep, err := d.Launch(1, 8, func(b *Block) func(*Thread) {
		return func(t *Thread) {
			t.Ops(1)
			t.LoadGlobal(base + int64(t.Idx))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ArithWarpInstr != 1 {
		t.Errorf("partial warp: arith warp instr = %d want 1", rep.ArithWarpInstr)
	}
	if rep.GlobalWarpInstr != 1 || rep.GlobalTransactions != 1 {
		t.Errorf("partial warp: global %d/%d want 1/1", rep.GlobalWarpInstr, rep.GlobalTransactions)
	}
}

func TestCacheSim(t *testing.T) {
	c := newCacheSim(4*128, 128) // 4 lines
	if newCacheSim(0, 128) != nil {
		t.Error("zero-byte cache must be nil")
	}
	var nilCache *cacheSim
	if nilCache.access(7) {
		t.Error("nil cache must always miss")
	}
	if c.access(1) {
		t.Error("cold access hit")
	}
	if !c.access(1) {
		t.Error("warm access missed")
	}
	// Conflict: segments 1 and 5 map to the same direct-mapped slot.
	c.access(5)
	if c.access(1) {
		t.Error("evicted line still hit")
	}
}

func TestFermiCacheReducesDRAMTraffic(t *testing.T) {
	// The same scattered-access kernel on C1060 (no cache) and Fermi:
	// repeated accesses to a small working set must hit Fermi's caches.
	kernel := func(base int64) Kernel {
		return func(b *Block) func(*Thread) {
			return func(t *Thread) {
				for rep := 0; rep < 8; rep++ {
					t.LoadGlobal(base + int64(t.Idx*16))
				}
			}
		}
	}
	run := func(cfg Config) *Report {
		d := NewDevice(cfg)
		base := d.AllocGlobal(32 * 16)
		rep, err := d.Launch(1, 32, kernel(base))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	tesla := run(TeslaC1060())
	fermi := run(FermiC2050())
	if tesla.DRAMTransactions != tesla.GlobalTransactions {
		t.Errorf("C1060 must send every transaction to DRAM: %d vs %d", tesla.DRAMTransactions, tesla.GlobalTransactions)
	}
	if tesla.L1Hits != 0 || tesla.L2Hits != 0 {
		t.Error("C1060 has no cache hits")
	}
	if fermi.L1Hits == 0 {
		t.Error("Fermi must hit L1 on the repeated accesses")
	}
	// 32 distinct segments cold-missed once; the 7 repeats hit.
	if fermi.DRAMTransactions != 32 {
		t.Errorf("Fermi DRAM transactions = %d want 32 (cold misses only)", fermi.DRAMTransactions)
	}
	if fermi.DRAMTransactions >= tesla.DRAMTransactions {
		t.Error("Fermi cache must cut DRAM traffic")
	}
}

func TestFermiConfigSanity(t *testing.T) {
	cfg := FermiC2050()
	if cfg.L1CacheBytes == 0 || cfg.L2CacheBytes == 0 || cfg.L2Bandwidth == 0 {
		t.Error("Fermi config must define the cache hierarchy")
	}
	if cfg.SMs*cfg.SPsPerSM != 448 {
		t.Errorf("C2050 has 448 SPs, config gives %d", cfg.SMs*cfg.SPsPerSM)
	}
	// A memory-bound report must be faster on Fermi when its traffic
	// hits the cache.
	cached := &Report{Launches: 1, BlockDim: 256, GlobalWarpInstr: 1000, GlobalTransactions: 2000, L2Hits: 1800, DRAMTransactions: 200}
	uncached := &Report{Launches: 1, BlockDim: 256, GlobalWarpInstr: 1000, GlobalTransactions: 2000, DRAMTransactions: 2000}
	if cached.EstimateTime(cfg) >= uncached.EstimateTime(cfg) {
		t.Error("cache hits must reduce modeled time")
	}
}

func TestLaunchDeterministicReports(t *testing.T) {
	// Scheduling must not leak into the accounting: two identical
	// launches produce identical reports.
	run := func() *Report {
		d := NewDevice(testConfig())
		base := d.AllocGlobal(1024)
		rep, err := d.Launch(4, 128, func(b *Block) func(*Thread) {
			sh := b.SharedF64(8)
			return func(t *Thread) {
				v := t.LoadGlobal(base + int64(t.Global()%1024))
				if t.Idx < 8 {
					sh.Store(t, t.Idx, v)
				}
				t.Sync()
				w := sh.Load(t, t.Idx%8)
				t.Ops(3)
				t.Branch(t.Idx%5 == 0)
				t.StoreGlobal(base+int64(t.Global()%1024), v+w)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if *a != *b {
		t.Errorf("reports differ across identical launches:\n%v\n%v", a, b)
	}
}

func TestSharedBroadcastIsConflictFree(t *testing.T) {
	// All 32 lanes reading the SAME shared address broadcast — no
	// serialization (the paper's block-shared l depends on this).
	d := NewDevice(testConfig())
	rep, err := d.Launch(1, 32, func(b *Block) func(*Thread) {
		sh := b.SharedF64(4)
		return func(t *Thread) {
			if t.Idx == 0 {
				sh.Store(t, 2, 7)
			}
			t.Sync()
			sh.Load(t, 2)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SharedConflictExtra != 0 {
		t.Errorf("broadcast read serialized: extra=%d", rep.SharedConflictExtra)
	}
}
