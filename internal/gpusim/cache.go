package gpusim

// cacheSim is a direct-mapped cache over global-memory transaction
// segments, used to model the Fermi generation's L1/L2 hierarchy (the
// paper's Sec. 8 future work). Direct mapping keeps the model
// deterministic and cheap; it slightly understates hit rates relative
// to the real set-associative caches, which is the conservative
// direction.
type cacheSim struct {
	slots []int64
}

func newCacheSim(bytes, lineBytes int64) *cacheSim {
	if bytes <= 0 {
		return nil
	}
	n := bytes / lineBytes
	if n < 1 {
		n = 1
	}
	c := &cacheSim{slots: make([]int64, n)}
	for k := range c.slots {
		c.slots[k] = -1
	}
	return c
}

// access probes the cache for a segment, fills on miss, and reports a
// hit. A nil cache always misses.
func (c *cacheSim) access(seg int64) bool {
	if c == nil {
		return false
	}
	k := seg % int64(len(c.slots))
	if c.slots[k] == seg {
		return true
	}
	c.slots[k] = seg
	return false
}
