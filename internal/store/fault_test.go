package store

// Fault injection for the remote tier, mirroring internal/serve's
// fault suite: every failure mode — truncated fetch, bit-flipped
// payload, remote 5xx, timeout mid-fetch, disk full mid-fill — must
// surface a typed error, cache nothing, leave no partial or temp file
// visible, keep mappings and goroutines at baseline, and bump the
// right failure counter. After the fault heals, the same key must
// fetch, verify, cache and serve. Run under -race in CI.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"syscall"
	"testing"
	"time"

	"compactsg"
	"compactsg/internal/core"
)

// flipPayloadByte corrupts one payload byte of a snapshot image.
func flipPayloadByte(raw []byte) []byte {
	out := bytes.Clone(raw)
	out[core.SnapshotAlign+7] ^= 0x40
	return out
}

func TestRemoteFaultInjection(t *testing.T) {
	base := t.TempDir()
	path, key, size := writeSnap(t, base, 2, 4, 1)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// The healthy remote used for the recovery phase of every case.
	healthy := remoteFunc(func(ctx context.Context, k string) (io.ReadCloser, error) {
		if k != key {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, k)
		}
		return io.NopCloser(bytes.NewReader(raw)), nil
	})

	cases := []struct {
		name    string
		remote  remoteFunc
		wrap    func(io.Writer) io.Writer
		wantErr error
		// which Stats counter must be 1 after the failed Get
		failures func(Stats) uint64
	}{
		{
			name: "truncated fetch",
			remote: remoteFunc(func(ctx context.Context, k string) (io.ReadCloser, error) {
				return io.NopCloser(bytes.NewReader(raw[:len(raw)/2])), nil
			}),
			wantErr:  core.ErrChecksum, // truncation surfaces as CorruptError(unexpected EOF) — checked via As below
			failures: func(s Stats) uint64 { return s.VerifyFailures },
		},
		{
			name: "bit-flipped payload",
			remote: remoteFunc(func(ctx context.Context, k string) (io.ReadCloser, error) {
				return io.NopCloser(bytes.NewReader(flipPayloadByte(raw))), nil
			}),
			wantErr:  core.ErrChecksum,
			failures: func(s Stats) uint64 { return s.VerifyFailures },
		},
		{
			name: "fetch error mid-stream",
			remote: remoteFunc(func(ctx context.Context, k string) (io.ReadCloser, error) {
				return io.NopCloser(io.MultiReader(bytes.NewReader(raw[:1024]),
					errReader{errors.New("connection reset")})), nil
			}),
			failures: func(s Stats) uint64 { return s.FetchFailures },
		},
		{
			name: "disk full during cache fill",
			remote: remoteFunc(func(ctx context.Context, k string) (io.ReadCloser, error) {
				return io.NopCloser(bytes.NewReader(raw)), nil
			}),
			wrap:     func(w io.Writer) io.Writer { return &shortWriter{w: w, n: 2048} },
			wantErr:  syscall.ENOSPC,
			failures: func(s Stats) uint64 { return s.FetchFailures },
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mapBaseline := core.ActiveMappings()
			dir := t.TempDir()
			s, err := Open(Config{Dir: dir, Remote: tc.remote})
			if err != nil {
				t.Fatal(err)
			}
			if tc.wrap != nil {
				s.SetWrapFill(tc.wrap)
			}
			_, err = s.Get(context.Background(), key)
			if err == nil {
				t.Fatal("Get succeeded through the fault")
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				var ce *core.CorruptError
				if !errors.As(err, &ce) {
					t.Fatalf("got %v, want %v (or CorruptError)", err, tc.wantErr)
				}
			}
			if s.Contains(key) {
				t.Fatal("faulty blob was cached")
			}
			assertNoPartialFiles(t, dir)
			if _, err := os.Stat(filepath.Join(dir, key+".sg")); !errors.Is(err, os.ErrNotExist) {
				t.Fatal("an object file is visible after a failed fill")
			}
			st := s.Stats()
			if got := tc.failures(st); got != 1 {
				t.Fatalf("failure counter = %d, want 1 (stats %+v)", got, st)
			}
			if st.Fills != 0 || st.Hits != 0 {
				t.Fatalf("failed fetch counted as fill/hit: %+v", st)
			}
			if got := core.ActiveMappings(); got != mapBaseline {
				t.Fatalf("failed fetch leaked a mapping: %d != %d", got, mapBaseline)
			}

			// Heal: the same store, pointed at a healthy remote, must
			// recover (counters keep history; the key must now cache).
			s.remote = healthy
			s.SetWrapFill(nil)
			obj, err := s.Get(context.Background(), key)
			if err != nil {
				t.Fatalf("recovery Get: %v", err)
			}
			if !obj.Cached() || obj.Size() != size {
				t.Fatalf("recovery object: cached=%v size=%d", obj.Cached(), obj.Size())
			}
			og, err := compactsg.Open(obj.Path())
			if err != nil {
				t.Fatalf("recovery open: %v", err)
			}
			if v, err := og.Evaluate([]float64{0.5, 0.5}); err != nil || v != 1 {
				t.Fatalf("recovery evaluate: %v %v", v, err)
			}
			og.Close()
			obj.Release()
			waitMappings(t, mapBaseline)
		})
	}
}

func TestHTTPRemoteFaults(t *testing.T) {
	base := t.TempDir()
	path, key, _ := writeSnap(t, base, 2, 4, 1)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("remote 500", func(t *testing.T) {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "shard down", http.StatusInternalServerError)
		}))
		defer ts.Close()
		s, err := Open(Config{Dir: t.TempDir(), Remote: &HTTPRemote{Base: ts.URL}})
		if err != nil {
			t.Fatal(err)
		}
		_, err = s.Get(context.Background(), key)
		if err == nil || !strings500(err) {
			t.Fatalf("got %v, want a 500-status error", err)
		}
		if st := s.Stats(); st.FetchFailures != 1 || s.Contains(key) {
			t.Fatalf("500 stats: %+v contains=%v", st, s.Contains(key))
		}
	})

	t.Run("remote 404 is ErrNotFound", func(t *testing.T) {
		ts := httptest.NewServer(http.HandlerFunc(http.NotFound))
		defer ts.Close()
		s, err := Open(Config{Dir: t.TempDir(), Remote: &HTTPRemote{Base: ts.URL}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err = s.Get(context.Background(), key); !errors.Is(err, ErrNotFound) {
			t.Fatalf("got %v, want ErrNotFound", err)
		}
	})

	t.Run("timeout mid-fetch", func(t *testing.T) {
		goroutines := runtime.NumGoroutine()
		stall := make(chan struct{})
		defer close(stall)
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Length", fmt.Sprint(len(raw)))
			w.WriteHeader(http.StatusOK)
			w.Write(raw[:1024])
			w.(http.Flusher).Flush()
			select {
			case <-stall:
			case <-r.Context().Done():
			}
		}))
		defer ts.Close()
		s, err := Open(Config{Dir: t.TempDir(), Remote: &HTTPRemote{Base: ts.URL, Client: ts.Client()}})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
		defer cancel()
		_, err = s.Get(ctx, key)
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("got %v, want deadline exceeded", err)
		}
		if st := s.Stats(); st.FetchFailures != 1 || s.Contains(key) {
			t.Fatalf("timeout stats: %+v", st)
		}
		assertNoPartialFiles(t, s.Dir())
		// The fetch goroutine must not leak once the server unblocks.
		waitGoroutines(t, goroutines)
	})

	t.Run("blob handler round trip with verified put", func(t *testing.T) {
		blobDir := t.TempDir()
		mux := http.NewServeMux()
		bh := BlobHandler(blobDir)
		mux.Handle("GET /v1/blobs/{key}", bh)
		mux.Handle("PUT /v1/blobs/{key}", bh)
		ts := httptest.NewServer(mux)
		defer ts.Close()
		rem := &HTTPRemote{Base: ts.URL + "/v1/blobs", Client: ts.Client()}

		// A corrupt upload must be rejected and never become fetchable.
		bad := flipPayloadByte(raw)
		if err := rem.Put(context.Background(), key, bytes.NewReader(bad), int64(len(bad))); err == nil {
			t.Fatal("corrupt PUT accepted")
		}
		if _, err := rem.Fetch(context.Background(), key); !errors.Is(err, ErrNotFound) {
			t.Fatalf("corrupt blob became fetchable: %v", err)
		}
		// A mislabeled upload (valid snapshot, wrong key) is rejected too.
		if err := rem.Put(context.Background(), "00000000000000aa", bytes.NewReader(raw), int64(len(raw))); err == nil {
			t.Fatal("mislabeled PUT accepted")
		}
		// The genuine article uploads and fetches byte-identically.
		if err := rem.Put(context.Background(), key, bytes.NewReader(raw), int64(len(raw))); err != nil {
			t.Fatal(err)
		}
		rc, err := rem.Fetch(context.Background(), key)
		if err != nil {
			t.Fatal(err)
		}
		back, err := io.ReadAll(rc)
		rc.Close()
		if err != nil || !bytes.Equal(back, raw) {
			t.Fatalf("fetched blob differs from upload (err %v)", err)
		}
	})
}

// errReader fails every Read with err.
type errReader struct{ err error }

func (r errReader) Read([]byte) (int, error) { return 0, r.err }

// shortWriter writes through until n bytes, then reports ENOSPC.
type shortWriter struct {
	w       io.Writer
	n       int
	written int
}

func (s *shortWriter) Write(p []byte) (int, error) {
	if s.written+len(p) > s.n {
		room := s.n - s.written
		if room > 0 {
			s.w.Write(p[:room])
			s.written = s.n
		}
		return room, fmt.Errorf("injected disk full: %w", syscall.ENOSPC)
	}
	m, err := s.w.Write(p)
	s.written += m
	return m, err
}

func strings500(err error) bool {
	return err != nil && (errors.Is(err, ErrNotFound) == false) &&
		bytes.Contains([]byte(err.Error()), []byte("500"))
}

// waitMappings polls core.ActiveMappings until it returns to want.
func waitMappings(t testing.TB, want int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if core.ActiveMappings() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("mappings stuck at %d, want %d", core.ActiveMappings(), want)
}

// waitGoroutines polls until the goroutine count drops back to at most
// base (other tests may run in parallel, so only gross leaks trip it).
func waitGoroutines(t testing.TB, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines %d, baseline %d", runtime.NumGoroutine(), base)
}
