// Package store is the tiered snapshot store behind the serving
// registry's cold-load path: a content-addressed local disk cache
// (size-capped, whole-file LRU eviction, atomic tmp+rename fills) in
// front of a pluggable remote blob tier, with every fetched blob
// re-verified against both SGC2 CRC32-C checksums before it becomes
// visible to Open.
//
// Content addressing uses the checksums the SGC2 container already
// carries: an object's key is the header CRC32-C concatenated with the
// payload CRC32-C, 16 lowercase hex characters. The header CRC covers
// the shape, flags and the payload CRC field, so the key binds both
// the payload bytes and the grid's declared shape; VerifySnapshotFile
// additionally rejects trailing garbage, making the keyed encoding
// canonical. A remote that returns different bytes under a key —
// corruption, a CRC collision between distinct contents, or a lying
// server — fails admission and is never cached or served.
package store

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"compactsg/internal/core"
)

// KeyLen is the length of a content address: 8 hex chars of header
// CRC32-C followed by 8 of payload CRC32-C.
const KeyLen = 16

// indexMagic is the first line of the on-disk cache index (manifest).
const indexMagic = "sgstore-index v1"

// KeyOf returns the content address of a snapshot with the given
// parsed header.
func KeyOf(info *core.SnapshotInfo) string {
	return fmt.Sprintf("%08x%08x", info.HeaderCRC, info.PayloadCRC)
}

// KeyOfFile returns the content address of the snapshot at path from
// its header alone (the header CRC is verified; the payload is not
// read). Use VerifySnapshotFile before trusting untrusted bytes.
func KeyOfFile(path string) (string, error) {
	info, err := core.ReadSnapshotInfoFile(path)
	if err != nil {
		return "", err
	}
	return KeyOf(info), nil
}

// ValidateKey rejects anything that is not exactly KeyLen lowercase
// hex characters. Every external key — remote fetches, blob-handler
// URLs, index lines, registry registrations — passes through here, so
// a hostile name can never become a path component.
func ValidateKey(key string) error {
	if len(key) != KeyLen {
		return fmt.Errorf("store: key %q is %d chars, want %d", key, len(key), KeyLen)
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("store: key %q has non-hex char at %d", key, i)
		}
	}
	return nil
}

// indexEntry is one cached object in the persisted cache index,
// most-recently-used entries first.
type indexEntry struct {
	Key   string
	Size  int64
	ATime int64 // unix seconds of last use; informational
}

// encodeIndex renders entries in the on-disk index format. The output
// of encodeIndex always round-trips through decodeIndex.
func encodeIndex(entries []indexEntry) []byte {
	var b bytes.Buffer
	b.WriteString(indexMagic)
	b.WriteByte('\n')
	for _, e := range entries {
		fmt.Fprintf(&b, "%s %d %d\n", e.Key, e.Size, e.ATime)
	}
	return b.Bytes()
}

// decodeIndex parses an on-disk cache index. It is strict: a bad
// magic line, malformed field, invalid key, negative size or duplicate
// key rejects the whole index (the store then falls back to a
// directory scan, so a mangled index costs order information, never
// correctness).
func decodeIndex(data []byte) ([]indexEntry, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("store: index missing magic line")
	}
	if sc.Text() != indexMagic {
		return nil, fmt.Errorf("store: index magic %q, want %q", sc.Text(), indexMagic)
	}
	var entries []indexEntry
	seen := make(map[string]bool)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			return nil, fmt.Errorf("store: blank index line")
		}
		fields := strings.Split(line, " ")
		if len(fields) != 3 {
			return nil, fmt.Errorf("store: index line has %d fields, want 3", len(fields))
		}
		key := fields[0]
		if err := ValidateKey(key); err != nil {
			return nil, err
		}
		if seen[key] {
			return nil, fmt.Errorf("store: duplicate index key %s", key)
		}
		seen[key] = true
		size, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil || size < 0 || fields[1] != strconv.FormatInt(size, 10) {
			return nil, fmt.Errorf("store: bad index size %q", fields[1])
		}
		atime, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil || atime < 0 || fields[2] != strconv.FormatInt(atime, 10) {
			return nil, fmt.Errorf("store: bad index atime %q", fields[2])
		}
		entries = append(entries, indexEntry{Key: key, Size: size, ATime: atime})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("store: reading index: %w", err)
	}
	return entries, nil
}
