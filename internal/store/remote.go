package store

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"compactsg/internal/core"
)

// ErrNotFound is returned by a Remote when the key has no blob.
var ErrNotFound = errors.New("store: blob not found")

// Remote is the blob tier behind the cache: an immutable
// content-addressed GET. Implementations must return ErrNotFound
// (possibly wrapped) for absent keys.
type Remote interface {
	Fetch(ctx context.Context, key string) (io.ReadCloser, error)
}

// Putter is the optional upload half of a Remote; Publish uses it to
// push exported snapshots.
type Putter interface {
	Put(ctx context.Context, key string, r io.Reader, size int64) error
}

// FSRemote is the in-tree loopback remote: blobs are files named
// <key>.sg under Dir. It exists for tests, demos and single-host
// tiering (e.g. cache on local NVMe, remote on network storage).
type FSRemote struct {
	Dir string
}

// Fetch opens the blob file for key.
func (r *FSRemote) Fetch(ctx context.Context, key string) (io.ReadCloser, error) {
	if err := ValidateKey(key); err != nil {
		return nil, err
	}
	f, err := os.Open(filepath.Join(r.Dir, key+".sg"))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return f, err
}

// Put writes the blob atomically (tmp+rename).
func (r *FSRemote) Put(ctx context.Context, key string, src io.Reader, size int64) error {
	if err := ValidateKey(key); err != nil {
		return err
	}
	if err := os.MkdirAll(r.Dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(r.Dir, "put-*.tmp")
	if err != nil {
		return err
	}
	tmpPath := tmp.Name()
	if _, err := io.Copy(tmp, src); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return err
	}
	return os.Rename(tmpPath, filepath.Join(r.Dir, key+".sg"))
}

// HTTPRemote speaks the blob protocol served by BlobHandler: GET/PUT
// <Base>/<key>. Base is e.g. "http://host:8177/v1/blobs".
type HTTPRemote struct {
	Base   string
	Client *http.Client // nil: a private client with a 60s timeout
}

func (r *HTTPRemote) client() *http.Client {
	if r.Client != nil {
		return r.Client
	}
	return &http.Client{Timeout: 60 * time.Second}
}

// Fetch GETs the blob; a 404 maps to ErrNotFound, any other non-200
// status is an error (the body is never trusted on error).
func (r *HTTPRemote) Fetch(ctx context.Context, key string) (io.ReadCloser, error) {
	if err := ValidateKey(key); err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.Base+"/"+key, nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.client().Do(req)
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return resp.Body, nil
	case http.StatusNotFound:
		resp.Body.Close()
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	default:
		resp.Body.Close()
		return nil, fmt.Errorf("store: remote returned %s for %s", resp.Status, key)
	}
}

// Put PUTs the blob; the server re-verifies it before admission.
func (r *HTTPRemote) Put(ctx context.Context, key string, src io.Reader, size int64) error {
	if err := ValidateKey(key); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, r.Base+"/"+key, src)
	if err != nil {
		return err
	}
	req.ContentLength = size
	resp, err := r.client().Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("store: remote returned %s putting %s", resp.Status, key)
	}
	return nil
}

// BlobHandler serves a directory of content-addressed snapshots over
// HTTP — the server half of HTTPRemote. Mount it under Go 1.22
// patterns with a {key} path value, e.g.:
//
//	h := store.BlobHandler(dir)
//	mux.Handle("GET /v1/blobs/{key}", h)
//	mux.Handle("HEAD /v1/blobs/{key}", h)
//	mux.Handle("PUT /v1/blobs/{key}", h)
//
// PUT uploads are spooled, fully verified (both CRCs + key match) and
// renamed into place atomically; a corrupt or mislabeled upload never
// becomes fetchable.
func BlobHandler(dir string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		key := req.PathValue("key")
		if err := ValidateKey(key); err != nil {
			http.Error(w, "invalid blob key", http.StatusBadRequest)
			return
		}
		path := filepath.Join(dir, key+".sg")
		switch req.Method {
		case http.MethodGet, http.MethodHead:
			f, err := os.Open(path)
			if errors.Is(err, os.ErrNotExist) {
				http.Error(w, "no such blob", http.StatusNotFound)
				return
			} else if err != nil {
				http.Error(w, "blob open failed", http.StatusInternalServerError)
				return
			}
			defer f.Close()
			st, err := f.Stat()
			if err != nil {
				http.Error(w, "blob stat failed", http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Length", strconv.FormatInt(st.Size(), 10))
			if req.Method == http.MethodHead {
				return
			}
			io.Copy(w, f)
		case http.MethodPut:
			if err := os.MkdirAll(dir, 0o755); err != nil {
				http.Error(w, "blob dir unavailable", http.StatusInternalServerError)
				return
			}
			tmp, err := os.CreateTemp(dir, "put-*.tmp")
			if err != nil {
				http.Error(w, "blob spool failed", http.StatusInternalServerError)
				return
			}
			tmpPath := tmp.Name()
			n, err := io.Copy(tmp, io.LimitReader(req.Body, maxBlobBytes()+1))
			if cerr := tmp.Close(); err == nil {
				err = cerr
			}
			if err != nil || n > maxBlobBytes() {
				os.Remove(tmpPath)
				http.Error(w, "blob upload failed", http.StatusBadRequest)
				return
			}
			if key2, err := verifiedKeyOfFile(tmpPath); err != nil || key2 != key {
				os.Remove(tmpPath)
				http.Error(w, "blob fails verification against its key", http.StatusUnprocessableEntity)
				return
			}
			if err := os.Rename(tmpPath, path); err != nil {
				os.Remove(tmpPath)
				http.Error(w, "blob install failed", http.StatusInternalServerError)
				return
			}
			w.WriteHeader(http.StatusCreated)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
}

// verifiedKeyOfFile fully verifies the snapshot at path and returns
// its content address.
func verifiedKeyOfFile(path string) (string, error) {
	info, err := core.VerifySnapshotFile(path)
	if err != nil {
		return "", err
	}
	return KeyOf(info), nil
}
