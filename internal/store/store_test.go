package store

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"compactsg"
	"compactsg/internal/workload"
)

// writeSnap compresses the given workload into an SGC2 file and
// returns its path, content key and byte size.
func writeSnap(t testing.TB, dir string, dim, level int, scale float64) (path, key string, size int64) {
	t.Helper()
	g, err := compactsg.New(dim, level)
	if err != nil {
		t.Fatal(err)
	}
	g.Compress(func(x []float64) float64 { return scale * workload.Parabola.F(x) })
	path = filepath.Join(dir, fmt.Sprintf("d%dl%ds%g.sg", dim, level, scale))
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if key, err = KeyOfFile(path); err != nil {
		t.Fatal(err)
	}
	return path, key, st.Size()
}

// seedRemote copies a snapshot into an FSRemote dir under its key.
func seedRemote(t testing.TB, remoteDir, path, key string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(remoteDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(remoteDir, key+".sg"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestValidateKey(t *testing.T) {
	good := "0123456789abcdef"
	if err := ValidateKey(good); err != nil {
		t.Fatal(err)
	}
	bad := []string{"", "short", strings.Repeat("a", 17), "0123456789ABCDEF",
		"../../../../etcpw", "0123456789abcde/", "0123456789abcde."}
	for _, k := range bad {
		if err := ValidateKey(k); err == nil {
			t.Errorf("ValidateKey(%q) accepted", k)
		}
	}
}

func TestKeyBindsContent(t *testing.T) {
	dir := t.TempDir()
	_, k1, _ := writeSnap(t, dir, 2, 3, 1)
	_, k2, _ := writeSnap(t, dir, 2, 3, 2)
	_, k3, _ := writeSnap(t, dir, 3, 3, 1)
	if k1 == k2 || k1 == k3 || k2 == k3 {
		t.Fatalf("distinct contents share a key: %s %s %s", k1, k2, k3)
	}
	// Same content → same key.
	p, k1b, _ := writeSnap(t, t.TempDir(), 2, 3, 1)
	if k1 != k1b {
		t.Fatalf("same content keyed %s then %s (%s)", k1, k1b, p)
	}
}

func TestGetMissFillsThenHits(t *testing.T) {
	base := t.TempDir()
	path, key, size := writeSnap(t, base, 2, 4, 1)
	remote := filepath.Join(base, "remote")
	seedRemote(t, remote, path, key)

	s, err := Open(Config{Dir: filepath.Join(base, "cache"), Remote: &FSRemote{Dir: remote}})
	if err != nil {
		t.Fatal(err)
	}
	obj, err := s.Get(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	if !obj.Cached() || obj.Size() != size {
		t.Fatalf("miss fill: cached=%v size=%d want %d", obj.Cached(), obj.Size(), size)
	}
	// The fetched object must open and evaluate like the original.
	og, err := compactsg.Open(obj.Path())
	if err != nil {
		t.Fatal(err)
	}
	got, err := og.Evaluate([]float64{0.5, 0.5})
	if err != nil || got != 1 {
		t.Fatalf("evaluate fetched object: %v %v", got, err)
	}
	og.Close()
	obj.Release()

	obj2, err := s.Get(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	obj2.Release()
	st := s.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Fills != 1 {
		t.Fatalf("stats after miss+hit: %+v", st)
	}
	if st.FetchBytes != uint64(size) {
		t.Fatalf("fetch bytes %d, want %d", st.FetchBytes, size)
	}
}

func TestGetSingleflight(t *testing.T) {
	base := t.TempDir()
	path, key, _ := writeSnap(t, base, 2, 4, 1)
	remote := filepath.Join(base, "remote")
	seedRemote(t, remote, path, key)

	var fetches atomic.Int64
	gate := make(chan struct{})
	rem := remoteFunc(func(ctx context.Context, k string) (io.ReadCloser, error) {
		fetches.Add(1)
		<-gate
		return (&FSRemote{Dir: remote}).Fetch(ctx, k)
	})
	s, err := Open(Config{Dir: filepath.Join(base, "cache"), Remote: rem})
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			obj, err := s.Get(context.Background(), key)
			errs[i] = err
			if err == nil {
				obj.Release()
			}
		}(i)
	}
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}
	if got := fetches.Load(); got != 1 {
		t.Fatalf("%d concurrent gets made %d remote fetches, want 1", n, got)
	}
	st := s.Stats()
	if st.Misses != 1 || st.Hits != n-1 {
		t.Fatalf("singleflight stats: %+v", st)
	}
}

func TestEvictionRespectsCapAndPins(t *testing.T) {
	base := t.TempDir()
	remote := filepath.Join(base, "remote")
	type snap struct {
		key  string
		size int64
	}
	var snaps []snap
	for i := 0; i < 4; i++ {
		p, k, sz := writeSnap(t, base, 2, 4, float64(i+1))
		seedRemote(t, remote, p, k)
		snaps = append(snaps, snap{k, sz})
	}
	// Cap fits exactly two objects.
	capBytes := snaps[0].size * 2
	s, err := Open(Config{Dir: filepath.Join(base, "cache"), CapBytes: capBytes, Remote: &FSRemote{Dir: remote}})
	if err != nil {
		t.Fatal(err)
	}
	for _, sn := range snaps {
		obj, err := s.Get(context.Background(), sn.key)
		if err != nil {
			t.Fatal(err)
		}
		obj.Release()
		if st := s.Stats(); st.SizeBytes > capBytes {
			t.Fatalf("cache size %d exceeds cap %d", st.SizeBytes, capBytes)
		}
	}
	st := s.Stats()
	if st.Evictions != 2 || st.Objects != 2 {
		t.Fatalf("after 4 fills at cap 2: %+v", st)
	}
	// LRU: the two oldest are gone, the two newest cached.
	if s.Contains(snaps[0].key) || s.Contains(snaps[1].key) {
		t.Fatal("oldest objects were not evicted")
	}
	if !s.Contains(snaps[2].key) || !s.Contains(snaps[3].key) {
		t.Fatal("newest objects were evicted")
	}

	// All-pinned: a fill that cannot fit is served uncached; the cap
	// still holds.
	o2, _ := s.Get(context.Background(), snaps[2].key)
	o3, _ := s.Get(context.Background(), snaps[3].key)
	o0, err := s.Get(context.Background(), snaps[0].key)
	if err != nil {
		t.Fatal(err)
	}
	if o0.Cached() {
		t.Fatal("fill under full pin pressure should be uncached")
	}
	if st := s.Stats(); st.SizeBytes > capBytes || st.Uncached != 1 {
		t.Fatalf("pinned-full stats: %+v", st)
	}
	tmpPath := o0.Path()
	o0.Release()
	if _, err := os.Stat(tmpPath); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("uncached temp object not deleted on release")
	}
	o2.Release()
	o3.Release()
}

func TestKeyMismatchNeverCached(t *testing.T) {
	base := t.TempDir()
	remote := filepath.Join(base, "remote")
	pa, ka, _ := writeSnap(t, base, 2, 4, 1)
	_, kb, _ := writeSnap(t, base, 2, 4, 2)
	// Poison: the remote serves content A under key B — a checksum
	// collision / wrong-bytes scenario.
	seedRemote(t, remote, pa, kb)
	s, err := Open(Config{Dir: filepath.Join(base, "cache"), Remote: &FSRemote{Dir: remote}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Get(context.Background(), kb)
	if !errors.Is(err, ErrKeyMismatch) {
		t.Fatalf("got %v, want ErrKeyMismatch", err)
	}
	if s.Contains(kb) || s.Contains(ka) {
		t.Fatal("mismatched blob was cached")
	}
	if st := s.Stats(); st.VerifyFailures != 1 || st.Fills != 0 {
		t.Fatalf("mismatch stats: %+v", st)
	}
	assertNoPartialFiles(t, s.Dir())
}

func TestPublishAndReopen(t *testing.T) {
	base := t.TempDir()
	remote := filepath.Join(base, "remote")
	path, key, _ := writeSnap(t, base, 2, 4, 1)
	cacheDir := filepath.Join(base, "cache")
	s, err := Open(Config{Dir: cacheDir, Remote: &FSRemote{Dir: remote}})
	if err != nil {
		t.Fatal(err)
	}
	gotKey, err := s.Publish(context.Background(), path)
	if err != nil {
		t.Fatal(err)
	}
	if gotKey != key {
		t.Fatalf("publish keyed %s, want %s", gotKey, key)
	}
	if !s.Contains(key) {
		t.Fatal("publish did not cache locally")
	}
	// FSRemote supports Put: the blob must now be remote too.
	if _, err := os.Stat(filepath.Join(remote, key+".sg")); err != nil {
		t.Fatalf("publish did not upload: %v", err)
	}
	s.Close()

	// Reopen: the persisted index readopts the cached object, so the
	// first Get is a pure local hit.
	s2, err := Open(Config{Dir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	obj, err := s2.Get(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	obj.Release()
	if st := s2.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("reopened stats: %+v", st)
	}
}

func TestIndexRoundTrip(t *testing.T) {
	entries := []indexEntry{
		{Key: "0123456789abcdef", Size: 12345, ATime: 1700000000},
		{Key: "fedcba9876543210", Size: 0, ATime: 0},
	}
	back, err := decodeIndex(encodeIndex(entries))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(entries) {
		t.Fatalf("round trip lost entries: %d != %d", len(back), len(entries))
	}
	for i := range back {
		if back[i] != entries[i] {
			t.Fatalf("entry %d: %+v != %+v", i, back[i], entries[i])
		}
	}
	// Hostile inputs must reject, not panic.
	for _, raw := range []string{
		"",
		"garbage\n",
		"sgstore-index v1\n../../etc/passwd 1 1\n",
		"sgstore-index v1\n0123456789abcdef -1 0\n",
		"sgstore-index v1\n0123456789abcdef 1\n",
		"sgstore-index v1\n0123456789abcdef 1 1\n0123456789abcdef 1 1\n",
		"sgstore-index v1\n0123456789ABCDEF 1 1\n",
	} {
		if _, err := decodeIndex([]byte(raw)); err == nil {
			t.Errorf("decodeIndex accepted %q", raw)
		}
	}
}

// remoteFunc adapts a function to the Remote interface.
type remoteFunc func(ctx context.Context, key string) (io.ReadCloser, error)

func (f remoteFunc) Fetch(ctx context.Context, key string) (io.ReadCloser, error) {
	return f(ctx, key)
}

// assertNoPartialFiles fails if the cache dir holds any temp spool
// file — after any failure, nothing partial may be visible.
func assertNoPartialFiles(t testing.TB, dir string) {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if strings.HasPrefix(de.Name(), "fill-") || strings.HasPrefix(de.Name(), "put-") {
			t.Fatalf("partial spool file left behind: %s", de.Name())
		}
	}
}
