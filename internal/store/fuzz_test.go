package store

// FuzzStoreCacheIndex hammers the two trust boundaries of the cache
// tier. First the INDEX codec: whatever bytes land in <dir>/INDEX —
// torn writes, hostile names, duplicate keys claiming the same
// checksum for distinct content — decodeIndex must reject or produce
// entries that survive an exact encode/decode round trip. Second the
// store itself: leftover fuzz bytes drive concurrent fill/evict/drop
// interleavings against a tiny-cap store whose remote serves one
// poisoned key, asserting the counter algebra and the cap invariant
// hold on every schedule. Run with `go test -fuzz FuzzStoreCacheIndex`;
// the seed corpus runs in every ordinary test invocation.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"sync"
	"testing"
)

func FuzzStoreCacheIndex(f *testing.F) {
	// Build three genuine snapshots once; per-iteration work only
	// touches the index codec and a tempdir-backed store.
	base := f.TempDir()
	var keys []string
	blobs := map[string][]byte{}
	for i, scale := range []float64{1, 2, 3} {
		path, key, _ := writeSnap(f, base, 2, 3+i%2, scale)
		raw, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		keys = append(keys, key)
		blobs[key] = raw
	}
	// The poisoned key: a syntactically valid address whose remote
	// bytes are another snapshot — a checksum collision as far as the
	// index is concerned, a verify failure once fetched.
	poison := "00000000000000ab"
	blobs[poison] = blobs[keys[0]]
	remote := remoteFunc(func(ctx context.Context, k string) (io.ReadCloser, error) {
		raw, ok := blobs[k]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, k)
		}
		return io.NopCloser(bytes.NewReader(raw)), nil
	})

	f.Add(encodeIndex([]indexEntry{
		{Key: keys[0], Size: 4096, ATime: 1},
		{Key: keys[1], Size: 8192, ATime: 2},
	}))
	f.Add(encodeIndex(nil))
	f.Add([]byte("sgstore-index v1\n" + keys[0] + " 10 1\n" + keys[0] + " 20 2\n")) // dup key
	f.Add([]byte("sgstore-index v1\n../../etc/passwd 10 1\n"))
	f.Add([]byte("sgstore-index v1\nDEADBEEFDEADBEEF 10 1\n")) // uppercase hex
	f.Add([]byte("sgstore-index v1\n" + keys[0] + " -5 1\n"))
	f.Add([]byte("sgstore-index v1\n" + keys[0] + " 010 1\n")) // non-canonical int
	f.Add([]byte("bogus magic\n"))
	f.Add([]byte{0x00, 0xff, '\n'})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Codec: decode must never panic; accepted input must round-trip
		// exactly and contain only validated, unique keys.
		if entries, err := decodeIndex(data); err == nil {
			seen := map[string]bool{}
			for _, e := range entries {
				if ValidateKey(e.Key) != nil {
					t.Fatalf("decodeIndex admitted invalid key %q", e.Key)
				}
				if seen[e.Key] {
					t.Fatalf("decodeIndex admitted duplicate key %q", e.Key)
				}
				seen[e.Key] = true
				if e.Size < 0 || e.ATime < 0 {
					t.Fatalf("decodeIndex admitted negative field: %+v", e)
				}
			}
			again, err := decodeIndex(encodeIndex(entries))
			if err != nil {
				t.Fatalf("re-decode of canonical encoding failed: %v", err)
			}
			if len(again) != len(entries) {
				t.Fatalf("round trip changed entry count: %d != %d", len(again), len(entries))
			}
			for i := range entries {
				if again[i] != entries[i] {
					t.Fatalf("round trip changed entry %d: %+v != %+v", i, again[i], entries[i])
				}
			}
		}

		// Interpreter: remaining bytes schedule concurrent fill/evict/
		// drop against a cap that holds roughly one object, so every
		// iteration exercises eviction under contention.
		ops := data
		if len(ops) > 24 {
			ops = ops[:24]
		}
		if len(ops) == 0 {
			return
		}
		s, err := Open(Config{Dir: t.TempDir(), CapBytes: int64(len(blobs[keys[0]])) + 512, Remote: remote})
		if err != nil {
			t.Fatal(err)
		}
		run := func(ops []byte) {
			for _, b := range ops {
				switch b % 4 {
				case 0, 1:
					k := keys[int(b>>2)%len(keys)]
					if obj, err := s.Get(context.Background(), k); err == nil {
						obj.Release()
					} else {
						t.Errorf("Get(%s): %v", k, err)
					}
				case 2:
					if _, err := s.Get(context.Background(), poison); err == nil {
						t.Error("poisoned key served")
					}
				case 3:
					s.Drop(keys[int(b>>2)%len(keys)]) // ErrPinned/no-op both fine
				}
			}
		}
		var wg sync.WaitGroup
		half := len(ops) / 2
		for _, part := range [][]byte{ops[:half], ops[half:]} {
			wg.Add(1)
			go func(p []byte) { defer wg.Done(); run(p) }(part)
		}
		wg.Wait()

		st := s.Stats()
		attempts := st.Fills + st.Uncached + st.FetchFailures + st.VerifyFailures
		if st.Misses != attempts {
			t.Fatalf("counter algebra broken: misses %d != attempts %d (%+v)", st.Misses, attempts, st)
		}
		if s.cap > 0 && st.SizeBytes > s.cap {
			t.Fatalf("cache size %d exceeds cap %d", st.SizeBytes, s.cap)
		}
		if s.Contains(poison) {
			t.Fatal("poisoned key was cached")
		}
		assertNoPartialFiles(t, s.Dir())
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		// The persisted index must reopen cleanly and readopt every
		// cached object.
		s2, err := Open(Config{Dir: s.Dir(), CapBytes: s.cap, Remote: remote})
		if err != nil {
			t.Fatalf("reopen after fuzz schedule: %v", err)
		}
		if got := s2.Stats().SizeBytes; got != st.SizeBytes {
			t.Fatalf("reopen lost bytes: %d != %d", got, st.SizeBytes)
		}
	})
}
