package store

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"compactsg/internal/core"
)

// maxBlobBytes caps how many bytes a single remote fetch will spool to
// disk: the payload decode cap plus the maximum payload offset the
// header parser admits. A remote streaming garbage forever costs at
// most this much temp space before verification rejects it.
func maxBlobBytes() int64 { return core.MaxDecodeBytes + 1<<30 + core.SnapshotHeaderSize }

var (
	// ErrNoRemote is returned by Get on a cache miss when no remote
	// tier is configured.
	ErrNoRemote = errors.New("store: no remote tier configured")
	// ErrKeyMismatch is returned when a fetched blob verifies as a
	// well-formed snapshot but hashes to a different content address
	// than requested — wrong bytes under the key (corrupt remote, or a
	// CRC collision between distinct contents). The blob is discarded,
	// never cached.
	ErrKeyMismatch = errors.New("store: fetched blob does not match its content address")
	// ErrTooLarge is returned when a remote blob exceeds maxBlobBytes.
	ErrTooLarge = errors.New("store: remote blob exceeds size cap")
	// ErrPinned is returned by Drop for an object currently pinned by
	// an unreleased Object handle.
	ErrPinned = errors.New("store: object is pinned")
)

// Config configures a Store.
type Config struct {
	// Dir is the local cache directory (created if absent).
	Dir string
	// CapBytes bounds the total size of cached objects; <= 0 means
	// unlimited. The cap is enforced at admission: unpinned LRU
	// objects are evicted first, and a fill that still cannot fit is
	// handed to the caller as an uncached temp file, so the cache
	// never exceeds the cap.
	CapBytes int64
	// Remote is the blob tier consulted on cache miss; nil for a
	// cache-only store.
	Remote Remote
}

// Store is a content-addressed snapshot cache over a remote blob tier.
type Store struct {
	dir    string
	cap    int64
	remote Remote

	mu      sync.Mutex
	entries map[string]*centry
	lru     *list.List // front = most recently used *centry
	size    int64      // sum of cached object sizes
	loading map[string]*fetchCall

	indexMu sync.Mutex // serializes index persistence

	// wrapFill interposes on the cache-fill writer; tests use it to
	// inject disk-full failures mid-fill.
	wrapFill func(io.Writer) io.Writer

	hits, misses, fills, evictions, uncached atomic.Uint64
	fetchFailures, verifyFailures            atomic.Uint64
	fetchBytes, fetchNanos                   atomic.Uint64
}

type centry struct {
	key  string
	size int64
	el   *list.Element
	pins int // guarded by Store.mu; pinned entries are never evicted
}

// fetchCall is the per-key singleflight slot: one leader fetches,
// waiters block on done and then re-check the cache.
type fetchCall struct {
	done chan struct{}
	err  error
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	Hits           uint64 // Get served from the local cache
	Misses         uint64 // Get that had to consult the remote tier
	Fills          uint64 // objects admitted into the cache
	Evictions      uint64 // objects evicted to make room
	Uncached       uint64 // fetches served as uncached temp files (pin pressure)
	FetchFailures  uint64 // remote fetch / spool errors
	VerifyFailures uint64 // fetched blobs rejected by checksum or key mismatch
	FetchBytes     uint64 // total bytes downloaded from the remote
	FetchSeconds   float64
	Objects        int   // objects currently cached
	SizeBytes      int64 // bytes currently cached (always <= CapBytes when capped)
	CapBytes       int64
}

// Open opens (creating if needed) the cache directory and reconciles
// the persisted index against the files actually present: index
// entries without a file are dropped, files without an index entry are
// adopted (oldest-first), stale fill temp files are removed.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, errors.New("store: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:     cfg.Dir,
		cap:     cfg.CapBytes,
		remote:  cfg.Remote,
		entries: make(map[string]*centry),
		lru:     list.New(),
		loading: make(map[string]*fetchCall),
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	return s, nil
}

// scan rebuilds the in-memory index from the index file + directory.
func (s *Store) scan() error {
	var persisted []indexEntry
	if raw, err := os.ReadFile(s.indexPath()); err == nil {
		// A corrupt index is not fatal: order is lost, objects are not.
		persisted, _ = decodeIndex(raw)
	}
	onDisk := make(map[string]int64)
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, de := range des {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		if strings.HasPrefix(name, "fill-") && strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(s.dir, name)) // stale partial fill
			continue
		}
		key, ok := strings.CutSuffix(name, ".sg")
		if !ok || ValidateKey(key) != nil {
			continue // not ours; leave it alone
		}
		st, err := de.Info()
		if err != nil {
			continue
		}
		onDisk[key] = st.Size()
	}
	// Adopt persisted order first (most recent first), then strays.
	for _, pe := range persisted {
		size, ok := onDisk[pe.Key]
		if !ok {
			continue
		}
		delete(onDisk, pe.Key)
		e := &centry{key: pe.Key, size: size}
		e.el = s.lru.PushBack(e)
		s.entries[pe.Key] = e
		s.size += size
	}
	strays := make([]string, 0, len(onDisk))
	for key := range onDisk {
		strays = append(strays, key)
	}
	sort.Strings(strays)
	for _, key := range strays {
		e := &centry{key: key, size: onDisk[key]}
		e.el = s.lru.PushBack(e)
		s.entries[key] = e
		s.size += onDisk[key]
	}
	// Re-enforce the cap in case it shrank between runs.
	s.mu.Lock()
	s.fitLocked(0)
	s.mu.Unlock()
	return nil
}

func (s *Store) indexPath() string { return filepath.Join(s.dir, "INDEX") }

func (s *Store) objectPath(key string) string { return filepath.Join(s.dir, key+".sg") }

// Dir returns the cache directory.
func (s *Store) Dir() string { return s.dir }

// Contains reports whether key is currently cached.
func (s *Store) Contains(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	objects, size := len(s.entries), s.size
	s.mu.Unlock()
	return Stats{
		Hits:           s.hits.Load(),
		Misses:         s.misses.Load(),
		Fills:          s.fills.Load(),
		Evictions:      s.evictions.Load(),
		Uncached:       s.uncached.Load(),
		FetchFailures:  s.fetchFailures.Load(),
		VerifyFailures: s.verifyFailures.Load(),
		FetchBytes:     s.fetchBytes.Load(),
		FetchSeconds:   float64(s.fetchNanos.Load()) / 1e9,
		Objects:        objects,
		SizeBytes:      size,
		CapBytes:       s.cap,
	}
}

// An Object is a pinned handle on a store object: Path is guaranteed
// to exist until Release. Pin the object only for the window between
// Get and opening the file — once mmap'd (or read), the payload
// survives eviction's unlink, so handles should be released promptly.
type Object struct {
	s        *Store
	e        *centry // nil for an uncached (cap-pressure) temp object
	path     string
	size     int64
	released atomic.Bool
}

// Path returns the on-disk location of the verified snapshot.
func (o *Object) Path() string { return o.path }

// Size returns the object's byte size.
func (o *Object) Size() int64 { return o.size }

// Cached reports whether the object lives in the cache (false for a
// temp object handed out when the cache could not admit it).
func (o *Object) Cached() bool { return o.e != nil }

// Release unpins the object; idempotent. Uncached temp objects are
// deleted here (any live mapping of the file survives the unlink).
func (o *Object) Release() {
	if !o.released.CompareAndSwap(false, true) {
		return
	}
	if o.e == nil {
		os.Remove(o.path)
		return
	}
	o.s.mu.Lock()
	o.e.pins--
	o.s.mu.Unlock()
}

// Get returns a pinned handle on the object for key, fetching it from
// the remote tier on a cache miss. Concurrent Gets for the same key
// share one fetch (per-key singleflight); the serving registry's
// per-name singleflight sits above this, so a burst of cold loads for
// one grid costs exactly one remote fetch end to end.
func (s *Store) Get(ctx context.Context, key string) (*Object, error) {
	if err := ValidateKey(key); err != nil {
		return nil, err
	}
	for {
		s.mu.Lock()
		if e, ok := s.entries[key]; ok {
			e.pins++
			s.lru.MoveToFront(e.el)
			s.mu.Unlock()
			s.hits.Add(1)
			return &Object{s: s, e: e, path: s.objectPath(key), size: e.size}, nil
		}
		if fc, ok := s.loading[key]; ok {
			s.mu.Unlock()
			select {
			case <-fc.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if fc.err != nil {
				return nil, fc.err
			}
			continue // leader cached it; pick it up (or re-fetch if already evicted)
		}
		fc := &fetchCall{done: make(chan struct{})}
		s.loading[key] = fc
		s.mu.Unlock()

		s.misses.Add(1)
		obj, err := s.fill(ctx, key)
		s.mu.Lock()
		delete(s.loading, key)
		s.mu.Unlock()
		fc.err = err
		close(fc.done)
		return obj, err
	}
}

// fill downloads, verifies and (cap permitting) admits key. The blob
// is spooled to a temp file and renamed into place only after both
// checksums and the content address check out — a partial or corrupt
// file is never visible at an object path.
func (s *Store) fill(ctx context.Context, key string) (*Object, error) {
	if s.remote == nil {
		return nil, fmt.Errorf("%w (cache miss for %s)", ErrNoRemote, key)
	}
	start := time.Now()
	rc, err := s.remote.Fetch(ctx, key)
	if err != nil {
		s.fetchFailures.Add(1)
		return nil, fmt.Errorf("store: fetching %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(s.dir, "fill-*.tmp")
	if err != nil {
		rc.Close()
		s.fetchFailures.Add(1)
		return nil, err
	}
	tmpPath := tmp.Name()
	fail := func(counter *atomic.Uint64, err error) (*Object, error) {
		tmp.Close()
		os.Remove(tmpPath)
		counter.Add(1)
		return nil, err
	}
	var w io.Writer = tmp
	if s.wrapFill != nil {
		w = s.wrapFill(w)
	}
	n, err := io.Copy(w, io.LimitReader(rc, maxBlobBytes()+1))
	rc.Close()
	if err != nil {
		return fail(&s.fetchFailures, fmt.Errorf("store: fetching %s: %w", key, err))
	}
	if n > maxBlobBytes() {
		return fail(&s.fetchFailures, fmt.Errorf("%w: %s", ErrTooLarge, key))
	}
	if err := tmp.Sync(); err != nil {
		return fail(&s.fetchFailures, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		s.fetchFailures.Add(1)
		return nil, err
	}
	s.fetchBytes.Add(uint64(n))
	s.fetchNanos.Add(uint64(time.Since(start).Nanoseconds()))

	info, err := core.VerifySnapshotFile(tmpPath)
	if err != nil {
		os.Remove(tmpPath)
		s.verifyFailures.Add(1)
		return nil, fmt.Errorf("store: verifying fetched %s: %w", key, err)
	}
	if got := KeyOf(info); got != key {
		os.Remove(tmpPath)
		s.verifyFailures.Add(1)
		return nil, fmt.Errorf("%w: requested %s, content is %s", ErrKeyMismatch, key, got)
	}
	return s.admit(key, tmpPath, n, true)
}

// admit moves a verified temp file into the cache under key. When the
// cap cannot make room (everything is pinned, or the object alone
// exceeds the cap) and pin is set, the caller gets the temp file as an
// uncached object instead — availability over caching, and the cache
// size invariant holds unconditionally.
func (s *Store) admit(key, tmpPath string, size int64, pin bool) (*Object, error) {
	s.mu.Lock()
	if e, ok := s.entries[key]; ok { // raced with Publish: keep the incumbent
		if pin {
			e.pins++
			s.lru.MoveToFront(e.el)
		}
		s.mu.Unlock()
		os.Remove(tmpPath)
		if !pin {
			return nil, nil
		}
		return &Object{s: s, e: e, path: s.objectPath(key), size: e.size}, nil
	}
	if !s.fitLocked(size) {
		s.mu.Unlock()
		s.uncached.Add(1)
		if !pin {
			os.Remove(tmpPath)
			return nil, nil
		}
		return &Object{s: s, path: tmpPath, size: size}, nil
	}
	if err := os.Rename(tmpPath, s.objectPath(key)); err != nil {
		s.mu.Unlock()
		os.Remove(tmpPath)
		return nil, err
	}
	e := &centry{key: key, size: size}
	if pin {
		e.pins = 1
	}
	e.el = s.lru.PushFront(e)
	s.entries[key] = e
	s.size += size
	s.mu.Unlock()
	s.fills.Add(1)
	s.persistIndex()
	if !pin {
		return nil, nil
	}
	return &Object{s: s, e: e, path: s.objectPath(key), size: size}, nil
}

// fitLocked evicts unpinned LRU objects until incoming fits under the
// cap; it reports whether it does. Caller holds s.mu.
func (s *Store) fitLocked(incoming int64) bool {
	if s.cap <= 0 {
		return true
	}
	for s.size+incoming > s.cap {
		var victim *centry
		for el := s.lru.Back(); el != nil; el = el.Prev() {
			if e := el.Value.(*centry); e.pins == 0 {
				victim = e
				break
			}
		}
		if victim == nil {
			return false
		}
		s.removeLocked(victim)
		s.evictions.Add(1)
	}
	return true
}

// removeLocked drops e from the index and unlinks its file. Any live
// mapping of the file keeps its pages until munmap.
func (s *Store) removeLocked(e *centry) {
	s.lru.Remove(e.el)
	delete(s.entries, e.key)
	s.size -= e.size
	os.Remove(s.objectPath(e.key))
}

// Drop removes key from the cache (no-op if absent). It fails with
// ErrPinned while an Object handle is outstanding. The next Get will
// re-fetch — the registry uses this to heal a cache object that turns
// out corrupt at open time.
func (s *Store) Drop(key string) error {
	if err := ValidateKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	e, ok := s.entries[key]
	if ok && e.pins > 0 {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrPinned, key)
	}
	if ok {
		s.removeLocked(e)
	}
	s.mu.Unlock()
	if ok {
		s.persistIndex()
	}
	return nil
}

// Publish verifies the snapshot at path, admits it into the local
// cache under its content address, and uploads it to the remote tier
// when the remote supports Put. It returns the key. Cache admission is
// best-effort under cap pressure; the upload error, if any, is
// returned (the local admit alone does not fail a publish).
func (s *Store) Publish(ctx context.Context, path string) (string, error) {
	info, err := core.VerifySnapshotFile(path)
	if err != nil {
		return "", err
	}
	key := KeyOf(info)
	size := info.PayloadOffset + info.PayloadBytes()
	if !s.Contains(key) {
		if tmpPath, err := s.spoolLocal(path); err == nil {
			// admit consumes the temp file either way.
			if _, err := s.admit(key, tmpPath, size, false); err != nil {
				os.Remove(tmpPath)
			}
		}
	}
	if p, ok := s.remote.(Putter); ok {
		f, err := os.Open(path)
		if err != nil {
			return key, err
		}
		defer f.Close()
		if err := p.Put(ctx, key, f, size); err != nil {
			return key, fmt.Errorf("store: uploading %s: %w", key, err)
		}
	}
	return key, nil
}

// spoolLocal stages a copy (hard link when possible) of path as a
// fill temp file inside the cache directory.
func (s *Store) spoolLocal(path string) (string, error) {
	tmp, err := os.CreateTemp(s.dir, "fill-*.tmp")
	if err != nil {
		return "", err
	}
	tmpPath := tmp.Name()
	tmp.Close()
	os.Remove(tmpPath)
	if err := os.Link(path, tmpPath); err == nil {
		return tmpPath, nil
	}
	src, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer src.Close()
	dst, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return "", err
	}
	if _, err := io.Copy(dst, src); err != nil {
		dst.Close()
		os.Remove(tmpPath)
		return "", err
	}
	if err := dst.Close(); err != nil {
		os.Remove(tmpPath)
		return "", err
	}
	return tmpPath, nil
}

// persistIndex writes the cache index atomically (tmp+rename),
// best-effort: losing it costs LRU order on the next Open, nothing
// else.
func (s *Store) persistIndex() {
	s.mu.Lock()
	now := time.Now().Unix()
	entries := make([]indexEntry, 0, s.lru.Len())
	for el := s.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*centry)
		entries = append(entries, indexEntry{Key: e.key, Size: e.size, ATime: now})
	}
	s.mu.Unlock()

	s.indexMu.Lock()
	defer s.indexMu.Unlock()
	tmp := s.indexPath() + ".tmp"
	if err := os.WriteFile(tmp, encodeIndex(entries), 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, s.indexPath())
}

// Close persists the index. The store holds no goroutines or
// descriptors between calls, so Close is cheap and optional.
func (s *Store) Close() error {
	s.persistIndex()
	return nil
}
