package store

import "io"

// SetWrapFill installs a writer interposer on the cache-fill path so
// fault tests can inject disk-full errors mid-spool. Test-only; set
// before the store sees traffic.
func (s *Store) SetWrapFill(f func(io.Writer) io.Writer) { s.wrapFill = f }
