package eval

import (
	"math"
	"testing"

	"compactsg/internal/core"
	"compactsg/internal/hier"
	"compactsg/internal/workload"
)

func TestIntegrateSingleBasisFunction(t *testing.T) {
	// One unit surplus at (l, i): the integral is exactly 2^-(|l|+d).
	desc := core.MustDescriptor(2, 4)
	cases := []struct {
		l, i []int32
	}{
		{[]int32{0, 0}, []int32{1, 1}},
		{[]int32{2, 0}, []int32{5, 1}},
		{[]int32{1, 2}, []int32{3, 1}},
	}
	for _, c := range cases {
		g := core.NewGrid(desc)
		g.SetAt(c.l, c.i, 1)
		want := 1.0 / float64(int64(1)<<uint(core.LevelSum(c.l)+2))
		if got := Integrate(g); math.Abs(got-want) > 1e-15 {
			t.Errorf("∫φ_{%v,%v} = %g want %g", c.l, c.i, got, want)
		}
	}
}

func TestIntegrateConvergesToExact(t *testing.T) {
	// ∫ Π 4x(1-x) over [0,1]^d = (2/3)^d; the interpolant's integral
	// must converge to it as the level grows.
	for _, d := range []int{1, 2, 3} {
		exact := math.Pow(2.0/3.0, float64(d))
		var prev float64 = math.Inf(1)
		for _, n := range []int{3, 5, 7} {
			g := core.NewGrid(core.MustDescriptor(d, n))
			g.Fill(workload.Parabola.F)
			hier.Iterative(g)
			err := math.Abs(Integrate(g) - exact)
			if err >= prev {
				t.Errorf("d=%d level %d: quadrature error %g did not shrink (prev %g)", d, n, err, prev)
			}
			prev = err
		}
		if prev > 1e-3 {
			t.Errorf("d=%d: level-7 quadrature error %g too large", d, prev)
		}
	}
}

func TestIntegrateMatchesMonteCarloReference(t *testing.T) {
	// Cross-check the closed form against brute-force midpoint
	// quadrature of the evaluated interpolant.
	g := core.NewGrid(core.MustDescriptor(2, 4))
	g.Fill(workload.Oscillatory.F)
	hier.Iterative(g)
	exact := Integrate(g)
	const m = 64
	sum := 0.0
	x := make([]float64, 2)
	for a := 0; a < m; a++ {
		for b := 0; b < m; b++ {
			x[0] = (float64(a) + 0.5) / m
			x[1] = (float64(b) + 0.5) / m
			sum += Iterative(g, x)
		}
	}
	mid := sum / (m * m)
	if math.Abs(exact-mid) > 2e-3 {
		t.Errorf("closed form %g vs midpoint rule %g", exact, mid)
	}
}
