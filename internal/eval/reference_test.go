package eval

import (
	"math"
	"math/rand"
	"testing"

	"compactsg/internal/basis"
	"compactsg/internal/core"
	"compactsg/internal/hier"
)

// iterativeReference is the pre-table evaluation kernel: the subspace
// walk recomputing cell index and hat value with basis.EvalInterval per
// (subspace, dimension), exactly as iterativeInto did before the 1d
// basis tables. The property tests pin the table-driven kernel to this
// recomputation bit for bit.
func iterativeReference(g *core.Grid, x []float64) float64 {
	desc := g.Desc()
	d := desc.Dim()
	l := make([]int32, d)
	res := 0.0
	var index2 int64
	for grp := 0; grp < desc.Groups(); grp++ {
		core.First(l, grp)
		nsub := desc.Subspaces(grp)
		sz := int64(1) << uint(grp)
		for k := int64(0); k < nsub; k++ {
			prod := 1.0
			var index1 int64
			for t := d - 1; t >= 0; t-- {
				cells := int64(1) << uint32(l[t])
				c := core.CellIndex(l[t], x[t])
				index1 = index1<<uint32(l[t]) + c
				div := 1.0 / float64(cells)
				left := float64(c) * div
				prod *= basis.EvalInterval(left, left+div, x[t])
			}
			res += prod * g.Data[index1+index2]
			core.Next(l)
			index2 += sz
		}
	}
	return res
}

// refQueries draws query points spanning the interesting cases: interior
// points, out-of-domain points on both sides (exercising the clamp), and
// the exact edges 0 and 1.
func refQueries(rng *rand.Rand, n, d int) [][]float64 {
	xs := make([][]float64, 0, n+2)
	for k := 0; k < n; k++ {
		x := make([]float64, d)
		for t := range x {
			x[t] = rng.Float64()*2 - 0.5 // [-0.5, 1.5)
		}
		xs = append(xs, x)
	}
	zero := make([]float64, d)
	one := make([]float64, d)
	for t := 0; t < d; t++ {
		one[t] = 1.0
	}
	return append(xs, zero, one)
}

// TestTableKernelBitIdentical: the table-driven Iterative and every
// Batch configuration must reproduce the recomputing reference kernel
// bit for bit on random grids and queries (including clamped
// out-of-domain coordinates).
func TestTableKernelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, c := range []struct{ d, n int }{{1, 1}, {1, 7}, {2, 5}, {3, 6}, {5, 5}, {10, 4}} {
		g := core.NewGrid(core.MustDescriptor(c.d, c.n))
		for k := range g.Data {
			g.Data[k] = rng.NormFloat64()
		}
		xs := refQueries(rng, 40, c.d)
		want := make([]float64, len(xs))
		for k, x := range xs {
			want[k] = iterativeReference(g, x)
		}
		for k, x := range xs {
			if got := Iterative(g, x); math.Float64bits(got) != math.Float64bits(want[k]) {
				t.Fatalf("d=%d n=%d Iterative(%v) = %v, reference %v", c.d, c.n, x, got, want[k])
			}
		}
		for _, opt := range []Options{
			{},
			{Workers: 3},
			{BlockSize: 7},
			{Workers: 2, BlockSize: 16},
			{BlockSize: len(xs) + 5}, // block larger than the query set
		} {
			got := Batch(g, xs, nil, opt)
			for k := range got {
				if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
					t.Fatalf("d=%d n=%d Batch(%+v)[%d] = %v, reference %v (x=%v)",
						c.d, c.n, opt, k, got[k], want[k], xs[k])
				}
			}
		}
	}
}

// FuzzEvalTableIdentity fuzzes single-query evaluation against the
// recomputing reference over grid shape, surplus seed and coordinates.
func FuzzEvalTableIdentity(f *testing.F) {
	f.Add(int64(1), 2, 5, 0.5, 0.25, 0.75)
	f.Add(int64(2), 3, 4, 0.0, 1.0, 0.999999999)
	f.Add(int64(3), 1, 7, -0.5, 1.5, 0.1)
	f.Fuzz(func(t *testing.T, seed int64, d, n int, x0, x1, x2 float64) {
		if d < 1 || d > 4 || n < 1 || n > 7 {
			t.Skip()
		}
		for _, v := range []float64{x0, x1, x2} {
			if !(v >= -4 && v <= 4) { // also rejects NaN/Inf
				t.Skip()
			}
		}
		g := core.NewGrid(core.MustDescriptor(d, n))
		rng := rand.New(rand.NewSource(seed))
		for k := range g.Data {
			g.Data[k] = rng.NormFloat64()
		}
		coords := []float64{x0, x1, x2, x0 * x1}
		x := coords[:d]
		got := Iterative(g, x)
		want := iterativeReference(g, x)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("d=%d n=%d x=%v: table %v != reference %v", d, n, x, got, want)
		}
	})
}

// TestGradientMatchesIterativeValue: the gradient walk shares the clamp
// helper with the table builder, so it must select the same basis
// function per subspace as Iterative — including for clamped
// out-of-domain coordinates. (Its tensor product multiplies in the
// opposite dimension order, so equality is up to rounding, not bits.)
func TestGradientMatchesIterativeValue(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := core.NewGrid(core.MustDescriptor(3, 5))
	g.Fill(parabola)
	hier.Iterative(g)
	grad := make([]float64, 3)
	for _, x := range refQueries(rng, 60, 3) {
		got := Gradient(g, x, grad)
		want := Iterative(g, x)
		tol := 1e-12 * math.Max(1, math.Abs(want))
		if math.Abs(got-want) > tol {
			t.Fatalf("Gradient value at %v = %v, Iterative %v", x, got, want)
		}
	}
}
