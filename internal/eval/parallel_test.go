package eval

import (
	"math"
	"math/rand"
	"testing"
)

// Parallel batch evaluation deals contiguous cache-line-aligned chunks
// of query points to workers (DESIGN.md §10); every point is still
// evaluated by the same single-query kernel, so results must be
// bit-identical to the sequential pass at any worker count — including
// counts exceeding the number of points, where trailing workers get
// empty chunks.
func TestBatchParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, c := range []struct{ d, n, pts int }{
		{1, 1, 1},   // degenerate: one point, one query
		{1, 7, 5},   // fewer queries than most worker counts
		{2, 2, 3},   // level-1-ish tiny grid
		{3, 5, 40},  // mid-size, queries not a multiple of the line size
		{5, 5, 64},  // aligned query count
		{10, 4, 17}, // high-d
	} {
		g := hierGrid(c.d, c.n, parabola)
		xs := randPoints(rng, c.pts, c.d)
		want := Batch(g, xs, nil, Options{})
		for _, workers := range []int{1, 2, 3, 8} {
			got := Batch(g, xs, nil, Options{Workers: workers})
			for k := range want {
				if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
					t.Fatalf("d=%d n=%d pts=%d workers=%d: out[%d] = %v, sequential %v",
						c.d, c.n, c.pts, workers, k, got[k], want[k])
				}
			}
		}
		// Workers = 0 resolves to GOMAXPROCS; still identical.
		got := Batch(g, xs, nil, Options{Workers: 0})
		for k := range want {
			if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
				t.Fatalf("d=%d auto workers: out[%d] = %v, sequential %v", c.d, k, got[k], want[k])
			}
		}
	}
}

// The cache-blocked variant must agree bit for bit with the plain
// parallel path too (same kernel, different loop order over blocks).
func TestBatchBlockedParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	g := hierGrid(4, 5, parabola)
	xs := randPoints(rng, 100, 4)
	want := Batch(g, xs, nil, Options{})
	for _, workers := range []int{0, 2, 3, 8} {
		got := Batch(g, xs, nil, Options{Workers: workers, BlockSize: 16})
		for k := range want {
			if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
				t.Fatalf("workers=%d blocked: out[%d] = %v, sequential %v", workers, k, got[k], want[k])
			}
		}
	}
}
