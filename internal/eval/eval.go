// Package eval implements sparse grid evaluation (interpolation) — the
// decompression step of the technique (paper Sec. 3.2, Alg. 2 and
// Sec. 4.3, Alg. 7): fs(x) = Σ α_{l,i} · φ_{l,i}(x), where at most one
// basis function per subspace is nonzero at x.
//
// Two families mirror the hierarchization package:
//
//   - Recursive (Alg. 2 generalized): descends the 1d hierarchy of each
//     dimension along the path of supports containing x, recursing across
//     dimensions to build the tensor-product basis values. Runs on any
//     grids.Store; this is the paper's baseline.
//   - Iterative (Alg. 7): walks every subspace with the next iterator,
//     locates the one contributing point per subspace by direct index
//     arithmetic, and accumulates — no recursion, no idx2gp/gp2idx calls,
//     perfectly suited to one-thread-per-query parallelization.
package eval

import (
	"sync"

	"compactsg/internal/basis"
	"compactsg/internal/core"
	"compactsg/internal/grids"
	"compactsg/internal/par"
)

// Iterative evaluates the hierarchized compact grid at x (paper Alg. 7).
// x must lie in [0,1]^d; coordinates are clamped into the domain.
func Iterative(g *core.Grid, x []float64) float64 {
	desc := g.Desc()
	s := getScratch(desc.Dim(), desc.Level())
	s.tb.build(x)
	res := iterativeInto(g, &s.tb, s.l)
	putScratch(s)
	return res
}

// iterativeInto walks every subspace and accumulates the one contributing
// point per subspace, reading cell indices and hat values from the
// per-query tables tb (already built for the query point). l is level
// scratch of length Dim(). The inner loop is pure table lookups and
// integer shifts — no float→int conversion, no division, no basis call.
func iterativeInto(g *core.Grid, tb *basisTables, l []int32) float64 {
	desc := g.Desc()
	data := g.Data
	d := desc.Dim()
	n := tb.n
	cell, phi := tb.cell, tb.phi
	phi = phi[:len(cell)] // BCE: phi[j] rides on cell[j]'s bounds check
	l = l[:d]             // BCE: l[t] for t < d
	res := 0.0
	var index2 int64 // running offset of the current subspace (index2+index3)
	for grp := 0; grp < desc.Groups(); grp++ {
		core.First(l, grp)
		nsub := desc.Subspaces(grp)
		sz := int64(1) << uint(grp)
		for k := int64(0); k < nsub; k++ {
			prod := 1.0
			var index1 int64
			for t := d - 1; t >= 0; t-- {
				lt := l[t]
				j := t*n + int(lt)
				index1 = index1<<uint32(lt) + cell[j]
				prod *= phi[j]
			}
			res += prod * data[index1+index2]
			core.Next(l)
			index2 += sz
		}
	}
	return res
}

// Recursive evaluates a hierarchized store at x (paper Alg. 2 generalized
// to d dimensions): within dimension t it follows the 1d chain of basis
// functions whose supports contain x_t, and at every chain node it recurses
// into dimension t+1 carrying the partial tensor product.
func Recursive(s grids.Store, x []float64) float64 {
	desc := s.Desc()
	d := desc.Dim()
	l := make([]int32, d)
	i := make([]int32, d)
	return evalRec(s, l, i, x, 0, int32(desc.Level()-1), 1.0)
}

func evalRec(s grids.Store, l, i []int32, x []float64, t int, budget int32, partial float64) float64 {
	res := 0.0
	l[t], i[t] = 0, 1
	for {
		phi := basis.Eval1D(l[t], i[t], x[t])
		p := partial * phi
		if t == len(l)-1 {
			if p != 0 {
				res += p * s.Get(l, i)
			}
		} else {
			res += evalRec(s, l, i, x, t+1, budget-l[t], p)
		}
		if l[t] >= budget {
			break
		}
		// Descend towards x: pick the child whose support contains x_t
		// (paper Alg. 2 line 4: "if x left of gp").
		if x[t] < core.Coord(l[t], i[t]) {
			l[t], i[t] = core.Child1D(l[t], i[t], core.LeftParent)
		} else {
			l[t], i[t] = core.Child1D(l[t], i[t], core.RightParent)
		}
	}
	return res
}

// RecursiveBatch evaluates a hierarchized store at every query point
// with the classic recursive algorithm, distributing points over
// workers (the store-based counterpart of Batch, used by the
// scalability experiments). Store access counting must be disabled
// when workers > 1.
func RecursiveBatch(s grids.Store, xs [][]float64, out []float64, workers int) []float64 {
	if out == nil {
		out = make([]float64, len(xs))
	}
	workers = par.Resolve(workers)
	if workers <= 1 {
		for k, x := range xs {
			out[k] = Recursive(s, x)
		}
		return out
	}
	var wg sync.WaitGroup
	chunk := (len(xs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(xs))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for k := lo; k < hi; k++ {
				out[k] = Recursive(s, xs[k])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// Options configures batch evaluation.
type Options struct {
	// Workers is the number of goroutines evaluating query points
	// (static decomposition, paper Sec. 5.3). 0 means auto: the count
	// resolves to GOMAXPROCS at call time, so a 1-CPU host always takes
	// the sequential path. 1 forces sequential.
	Workers int
	// BlockSize switches on the paper's cache-blocking optimization
	// (Sec. 4.3): the subspace loop becomes the outer loop and each
	// subspace is applied to BlockSize query points while its
	// coefficients are cache-resident. 0 disables blocking.
	BlockSize int
}

// Batch evaluates the grid at every point of xs (each of length d),
// writing results into out and returning it. If out is nil a new slice
// is allocated. Results are identical for any Options.
func Batch(g *core.Grid, xs [][]float64, out []float64, opt Options) []float64 {
	if out == nil {
		out = make([]float64, len(xs))
	}
	batchInto(g, xs, out, opt)
	return out
}

// batchInto is Batch with a mandatory output slice. out is never
// reassigned here, so the worker closures capture it by value —
// reassigning a captured parameter (as Batch must for out == nil) would
// heap-box the slice header on every call, including the sequential
// zero-alloc path.
func batchInto(g *core.Grid, xs [][]float64, out []float64, opt Options) {
	if opt.BlockSize > 0 {
		batchBlocked(g, xs, out, opt)
		return
	}
	desc := g.Desc()
	workers := par.Resolve(opt.Workers)
	if workers > len(xs) {
		workers = len(xs)
	}
	if workers <= 1 {
		s := getScratch(desc.Dim(), desc.Level())
		for k, x := range xs {
			s.tb.build(x)
			out[k] = iterativeInto(g, &s.tb, s.l)
		}
		putScratch(s)
		return
	}
	// Static decomposition over query points: one contiguous chunk of
	// out per worker, boundaries rounded to cache-line multiples so two
	// workers never write the same 64-byte line of results (each worker
	// also carries its own pooled basis tables, DESIGN.md §10).
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := par.AlignedSplit(int64(len(xs)), workers, w, par.LineFloat64s)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			s := getScratch(desc.Dim(), desc.Level())
			for k := lo; k < hi; k++ {
				s.tb.build(xs[k])
				out[k] = iterativeInto(g, &s.tb, s.l)
			}
			putScratch(s)
		}(int(lo), int(hi))
	}
	wg.Wait()
}

// batchBlocked is the subspace-outer evaluation: every subspace's
// coefficient block is streamed once per block of query points, so it is
// read from cache rather than memory for all but the first point of each
// block (paper Sec. 4.3, last paragraph).
func batchBlocked(g *core.Grid, xs [][]float64, out []float64, opt Options) {
	bs := opt.BlockSize
	workers := par.Resolve(opt.Workers)
	var wg sync.WaitGroup
	blocks := (len(xs) + bs - 1) / bs
	next := make(chan int, blocks)
	for b := 0; b < blocks; b++ {
		next <- b
	}
	close(next)
	desc := g.Desc()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := getBlockScratch(bs, desc.Dim(), desc.Level())
			for b := range next {
				lo := b * bs
				hi := min(lo+bs, len(xs))
				evalBlock(g, xs[lo:hi], out[lo:hi], sc)
			}
			putBlockScratch(sc)
		}()
	}
	wg.Wait()
}

// evalBlock accumulates all subspace contributions for one block of
// query points, subspace-major. The per-point basis tables are built
// once up front (O(block·d·n)); the subspace sweep then touches each
// point with pure lookups while the subspace's coefficients stay
// cache-resident.
func evalBlock(g *core.Grid, xs [][]float64, out []float64, sc *blockScratch) {
	desc := g.Desc()
	data := g.Data
	d := desc.Dim()
	n := sc.n
	l := sc.l[:d]
	out = out[:len(xs)] // BCE: out[k] for k := range xs
	for k, x := range xs {
		out[k] = 0
		sc.build(k, x)
	}
	cell, phi := sc.cell, sc.phi
	phi = phi[:len(cell)] // BCE: phi[j] rides on cell[j]'s bounds check
	var index2 int64
	for grp := 0; grp < desc.Groups(); grp++ {
		core.First(l, grp)
		nsub := desc.Subspaces(grp)
		sz := int64(1) << uint(grp)
		for s := int64(0); s < nsub; s++ {
			for k := range xs {
				prod := 1.0
				var index1 int64
				base := k * d * n
				for t := d - 1; t >= 0; t-- {
					lt := l[t]
					j := base + t*n + int(lt)
					index1 = index1<<uint32(lt) + cell[j]
					prod *= phi[j]
				}
				out[k] += prod * data[index1+index2]
			}
			core.Next(l)
			index2 += sz
		}
	}
}
