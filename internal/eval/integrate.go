package eval

import (
	"compactsg/internal/core"
)

// Integrate computes ∫_{[0,1]^d} fs(x) dx of the hierarchized grid in
// closed form: each basis function integrates to Π_t 2^-(l_t+1) =
// 2^-(|l|₁+d), constant within a subspace, so the integral is one pass
// over the coefficient array with a per-subspace weight — an O(N)
// operation with perfectly sequential access (another payoff of the
// compact layout: quadrature needs no idx2gp at all).
func Integrate(g *core.Grid) float64 {
	desc := g.Desc()
	d := desc.Dim()
	res := 0.0
	it := core.NewSubspaceIter(desc)
	for it.Valid() {
		w := 1.0 / float64(int64(1)<<uint(it.Group()+d))
		sum := 0.0
		lo := it.Start()
		hi := lo + it.Points()
		for _, v := range g.Data[lo:hi] {
			sum += v
		}
		res += w * sum
		it.Advance()
	}
	return res
}
