package eval

import (
	"compactsg/internal/basis"
	"compactsg/internal/core"
)

// Gradient evaluates the interpolant and its gradient at x (where it
// exists — fs is piecewise linear, so the gradient is piecewise
// constant per dimension; on cell boundaries the right-sided value is
// returned). The visualization application uses it for shading and
// isoline extraction. The walk is the same subspace iteration as
// Iterative with one extra product per dimension:
//
//	∂fs/∂x_t = Σ α_{l,i} · φ'_{l_t,i_t}(x_t) · Π_{s≠t} φ_{l_s,i_s}(x_s)
//
// with φ' = ±2^(l+1) inside the support.
func Gradient(g *core.Grid, x []float64, grad []float64) float64 {
	desc := g.Desc()
	d := desc.Dim()
	if grad == nil {
		grad = make([]float64, d)
	}
	for t := range grad {
		grad[t] = 0
	}
	l := make([]int32, d)
	phis := make([]float64, d)
	dphis := make([]float64, d)
	res := 0.0
	var off int64
	for grp := 0; grp < desc.Groups(); grp++ {
		core.First(l, grp)
		nsub := desc.Subspaces(grp)
		sz := int64(1) << uint(grp)
		for k := int64(0); k < nsub; k++ {
			var index1 int64
			for t := d - 1; t >= 0; t-- {
				cells := int64(1) << uint32(l[t])
				c := core.CellIndex(l[t], x[t])
				index1 = index1<<uint32(l[t]) + c
				div := 1.0 / float64(cells)
				left := float64(c) * div
				phis[t] = basis.EvalInterval(left, left+div, x[t])
				// Hat slope: +2^(l+1) left of the center, −2^(l+1)
				// right of it.
				slope := 2 * float64(cells)
				if x[t] >= left+div/2 {
					slope = -slope
				}
				if phis[t] == 0 && (x[t] < left || x[t] > left+div) {
					slope = 0
				}
				dphis[t] = slope
			}
			coeff := g.Data[index1+off]
			if coeff != 0 {
				prod := 1.0
				for t := 0; t < d; t++ {
					prod *= phis[t]
				}
				res += prod * coeff
				for t := 0; t < d; t++ {
					gp := coeff * dphis[t]
					for s := 0; s < d; s++ {
						if s != t {
							gp *= phis[s]
						}
					}
					grad[t] += gp
				}
			}
			core.Next(l)
			off += sz
		}
	}
	return res
}
