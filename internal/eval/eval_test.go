package eval

import (
	"math"
	"math/rand"
	"testing"

	"compactsg/internal/core"
	"compactsg/internal/grids"
	"compactsg/internal/hier"
)

func parabola(x []float64) float64 {
	p := 1.0
	for _, v := range x {
		p *= 4 * v * (1 - v)
	}
	return p
}

func randPoints(rng *rand.Rand, n, d int) [][]float64 {
	xs := make([][]float64, n)
	for k := range xs {
		x := make([]float64, d)
		for t := range x {
			x[t] = rng.Float64()
		}
		xs[k] = x
	}
	return xs
}

func hierGrid(d, n int, f func([]float64) float64) *core.Grid {
	g := core.NewGrid(core.MustDescriptor(d, n))
	g.Fill(f)
	hier.Iterative(g)
	return g
}

func TestIterativeReproducesNodalValues(t *testing.T) {
	for _, c := range []struct{ d, n int }{{1, 6}, {2, 5}, {3, 4}, {4, 4}} {
		g := core.NewGrid(core.MustDescriptor(c.d, c.n))
		g.Fill(parabola)
		nodal := g.Clone()
		hier.Iterative(g)
		x := make([]float64, c.d)
		g.Desc().VisitPoints(func(idx int64, l, i []int32) {
			core.Coords(l, i, x)
			got := Iterative(g, x)
			if math.Abs(got-nodal.Data[idx]) > 1e-12 {
				t.Fatalf("d=%d n=%d: eval at grid point %v = %g want %g", c.d, c.n, x, got, nodal.Data[idx])
			}
		})
	}
}

func TestIterativeMatchesRecursive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, c := range []struct{ d, n int }{{1, 6}, {2, 5}, {3, 4}, {5, 3}} {
		g := hierGrid(c.d, c.n, parabola)
		store := grids.NewCompactStore(g)
		for _, x := range randPoints(rng, 50, c.d) {
			a := Iterative(g, x)
			b := Recursive(store, x)
			if math.Abs(a-b) > 1e-12 {
				t.Fatalf("d=%d n=%d at %v: iterative %g vs recursive %g", c.d, c.n, x, a, b)
			}
		}
	}
}

func TestRecursiveAgreesAcrossStores(t *testing.T) {
	desc := core.MustDescriptor(3, 4)
	rng := rand.New(rand.NewSource(6))
	pts := randPoints(rng, 25, 3)
	ref := grids.New(grids.Compact, desc)
	grids.Fill(ref, parabola)
	hier.Recursive(ref)
	want := make([]float64, len(pts))
	for k, x := range pts {
		want[k] = Recursive(ref, x)
	}
	for _, kind := range grids.Kinds[1:] {
		s := grids.New(kind, desc)
		grids.Fill(s, parabola)
		hier.Recursive(s)
		for k, x := range pts {
			if got := Recursive(s, x); math.Abs(got-want[k]) > 1e-12 {
				t.Errorf("%v at %v: %g want %g", kind, x, got, want[k])
			}
		}
	}
}

func TestInterpolationErrorSmallForSmoothFunction(t *testing.T) {
	// Between grid points the interpolant approximates a smooth function;
	// error must shrink as the level grows.
	rng := rand.New(rand.NewSource(7))
	pts := randPoints(rng, 200, 2)
	var prev float64 = math.Inf(1)
	for _, n := range []int{3, 5, 7} {
		g := hierGrid(2, n, parabola)
		maxErr := 0.0
		for _, x := range pts {
			e := math.Abs(Iterative(g, x) - parabola(x))
			if e > maxErr {
				maxErr = e
			}
		}
		if maxErr >= prev {
			t.Errorf("level %d: max error %g did not shrink (prev %g)", n, maxErr, prev)
		}
		prev = maxErr
	}
	if prev > 1e-2 {
		t.Errorf("level-7 interpolation error %g too large for smooth f", prev)
	}
}

func TestBatchVariantsIdentical(t *testing.T) {
	g := hierGrid(4, 4, parabola)
	rng := rand.New(rand.NewSource(8))
	xs := randPoints(rng, 137, 4)
	ref := Batch(g, xs, nil, Options{})
	variants := []Options{
		{Workers: 2},
		{Workers: 5},
		{BlockSize: 16},
		{BlockSize: 7},
		{Workers: 3, BlockSize: 32},
		{Workers: 8, BlockSize: 1},
	}
	for _, opt := range variants {
		got := Batch(g, xs, nil, opt)
		for k := range got {
			if got[k] != ref[k] {
				t.Fatalf("options %+v: result %d differs: %g vs %g", opt, k, got[k], ref[k])
			}
		}
	}
}

func TestBatchReusesOutSlice(t *testing.T) {
	g := hierGrid(2, 3, parabola)
	xs := randPoints(rand.New(rand.NewSource(9)), 10, 2)
	out := make([]float64, 10)
	got := Batch(g, xs, out, Options{})
	if &got[0] != &out[0] {
		t.Error("Batch must reuse the provided output slice")
	}
}

func TestEvaluateOutsideDomainClamps(t *testing.T) {
	g := hierGrid(2, 4, parabola)
	// Clamped coordinates must not panic and must equal evaluation at the
	// clamped location's cell; the hat at the domain edge is 0 for the
	// zero-boundary basis.
	for _, x := range [][]float64{{-0.5, 0.5}, {0.5, 1.5}, {1.0, 1.0}, {0.0, 0.0}} {
		got := Iterative(g, x)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("evaluation at %v = %g", x, got)
		}
	}
	// Exactly at the boundary the zero-boundary interpolant vanishes.
	if got := Iterative(g, []float64{0, 0.5}); got != 0 {
		t.Errorf("interpolant at x1=0 is %g, want 0", got)
	}
	if got := Iterative(g, []float64{1, 0.5}); got != 0 {
		t.Errorf("interpolant at x1=1 is %g, want 0", got)
	}
}

func TestEvaluateOnDehierarchizedGridIsWrong(t *testing.T) {
	// Guard against confusing nodal and hierarchical storage: evaluating
	// a non-hierarchized grid must NOT reproduce f between grid points
	// (it sums nodal values over overlapping supports).
	g := core.NewGrid(core.MustDescriptor(2, 5))
	g.Fill(parabola)
	// Pick a point off every grid line so many supports overlap.
	x := []float64{0.3, 0.7}
	if got := Iterative(g, x); math.Abs(got-parabola(x)) < 0.1 {
		t.Errorf("nodal-value evaluation accidentally correct (%g); test is vacuous", got)
	}
}

func TestBatchEmptyInput(t *testing.T) {
	g := hierGrid(2, 3, parabola)
	if out := Batch(g, nil, nil, Options{Workers: 4, BlockSize: 8}); len(out) != 0 {
		t.Errorf("Batch(nil) returned %d results", len(out))
	}
}
