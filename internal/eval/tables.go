package eval

import (
	"sync"

	"compactsg/internal/basis"
	"compactsg/internal/core"
)

// Per-query 1d basis tables — the table factorization of Alg. 7
// (DESIGN.md §8). For a fixed query point x and dimension t, the inner
// loop of the subspace walk only ever needs two quantities per 1d level
// lvl: the index of the level-lvl cell containing x_t and the value of
// the single level-lvl hat that is nonzero at x_t. Both depend on
// (t, lvl) alone — not on the subspace — so a grid walk that visits S
// subspaces recomputes each of the d·n distinct values S·d/(d·n) ≈ S/n
// times, paying a float→int conversion, two divisions and a hat
// evaluation each time. Building the d·n tables once per query turns
// the per-subspace work into pure table lookups and integer shifts.
//
// The tables are bit-identical to the recomputation by construction:
// build evaluates exactly the expressions the old inner loop used, once
// per (t, lvl) instead of once per (subspace, t).

// basisTables holds the per-query tables, flattened as [t*n + lvl] for
// dimension t and 1d level lvl < n.
type basisTables struct {
	d, n int
	cell []int64   // cell[t*n+lvl]: index of the level-lvl cell containing x_t
	phi  []float64 // phi[t*n+lvl]:  value of the one nonzero level-lvl hat at x_t
}

// resize prepares the tables for a d-dimensional level-n grid, reusing
// backing storage when it is large enough.
func (tb *basisTables) resize(d, n int) {
	tb.d, tb.n = d, n
	if cap(tb.cell) < d*n {
		tb.cell = make([]int64, d*n)
		tb.phi = make([]float64, d*n)
	}
	tb.cell = tb.cell[:d*n]
	tb.phi = tb.phi[:d*n]
}

// build fills the tables for the query point x — O(d·n) work that the
// subspace walk then reuses for every subspace.
func (tb *basisTables) build(x []float64) {
	n := tb.n
	for t := 0; t < tb.d; t++ {
		xt := x[t]
		row := tb.cell[t*n : t*n+n]
		prow := tb.phi[t*n : t*n+n]
		for lvl := 0; lvl < n; lvl++ {
			cells := int64(1) << uint(lvl)
			c := core.CellIndex(int32(lvl), xt)
			div := 1.0 / float64(cells)
			left := float64(c) * div
			row[lvl] = c
			prow[lvl] = basis.EvalInterval(left, left+div, xt)
		}
	}
}

// scratch bundles the per-query buffers of the iterative walk (level
// vector plus basis tables) so single-point evaluation, batch drivers
// and the serve path run allocation-free at steady state.
type scratch struct {
	l  []int32
	tb basisTables
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// getScratch returns a scratch sized for a d-dimensional level-n grid.
func getScratch(d, n int) *scratch {
	s := scratchPool.Get().(*scratch)
	if cap(s.l) < d {
		s.l = make([]int32, d)
	}
	s.l = s.l[:d]
	s.tb.resize(d, n)
	return s
}

func putScratch(s *scratch) { scratchPool.Put(s) }

// blockScratch carries the per-block buffers of the cache-blocked
// (subspace-major) evaluation: one table set per query point of the
// block, point-major so each point's tables stay contiguous.
type blockScratch struct {
	l    []int32
	n    int
	cell []int64 // cell[(k*d+t)*n + lvl] for block point k
	phi  []float64
}

var blockScratchPool = sync.Pool{New: func() any { return new(blockScratch) }}

// getBlockScratch returns a blockScratch sized for bs query points of a
// d-dimensional level-n grid.
func getBlockScratch(bs, d, n int) *blockScratch {
	s := blockScratchPool.Get().(*blockScratch)
	if cap(s.l) < d {
		s.l = make([]int32, d)
	}
	s.l = s.l[:d]
	s.n = n
	if cap(s.cell) < bs*d*n {
		s.cell = make([]int64, bs*d*n)
		s.phi = make([]float64, bs*d*n)
	}
	s.cell = s.cell[:bs*d*n]
	s.phi = s.phi[:bs*d*n]
	return s
}

func putBlockScratch(s *blockScratch) { blockScratchPool.Put(s) }

// build fills the tables of block point k for query x.
func (s *blockScratch) build(k int, x []float64) {
	d, n := len(x), s.n
	var tb basisTables
	tb.d, tb.n = d, n
	tb.cell = s.cell[(k*d)*n : (k*d+d)*n]
	tb.phi = s.phi[(k*d)*n : (k*d+d)*n]
	tb.build(x)
}
