package eval

import (
	"math"
	"math/rand"
	"testing"

	"compactsg/internal/core"
	"compactsg/internal/workload"
)

func TestGradientValueMatchesIterative(t *testing.T) {
	g := hierGrid(3, 5, workload.Gaussian.F)
	grad := make([]float64, 3)
	for _, x := range workload.Points(33, 50, 3) {
		v := Gradient(g, x, grad)
		if want := Iterative(g, x); math.Abs(v-want) > 1e-12 {
			t.Fatalf("Gradient value at %v: %g want %g", x, v, want)
		}
	}
}

func TestGradientMatchesFiniteDifferences(t *testing.T) {
	g := hierGrid(2, 6, workload.Parabola.F)
	grad := make([]float64, 2)
	rng := rand.New(rand.NewSource(44))
	const h = 1e-9
	for k := 0; k < 60; k++ {
		// Sample away from cell boundaries (the interpolant is only
		// piecewise differentiable): random point nudged off the finest
		// grid lines.
		x := []float64{
			math.Floor(rng.Float64()*128)/128 + 1.0/512 + rng.Float64()/1024,
			math.Floor(rng.Float64()*128)/128 + 1.0/512 + rng.Float64()/1024,
		}
		Gradient(g, x, grad)
		for t2 := 0; t2 < 2; t2++ {
			xp := append([]float64(nil), x...)
			xm := append([]float64(nil), x...)
			xp[t2] += h
			xm[t2] -= h
			fd := (Iterative(g, xp) - Iterative(g, xm)) / (2 * h)
			if math.Abs(grad[t2]-fd) > 1e-4*(1+math.Abs(fd)) {
				t.Fatalf("∂/∂x%d at %v: %g, finite differences give %g", t2, x, grad[t2], fd)
			}
		}
	}
}

func TestGradientAllocatesWhenNil(t *testing.T) {
	g := hierGrid(2, 3, workload.Parabola.F)
	if v := Gradient(g, []float64{0.4, 0.6}, nil); math.IsNaN(v) {
		t.Error("nil grad slice must be tolerated")
	}
}

func TestGradientOfSingleHat(t *testing.T) {
	// One unit surplus at the level-0 center: gradient is ±2 per dim
	// scaled by the other dims' hat values.
	desc := core.MustDescriptor(2, 2)
	g := core.NewGrid(desc)
	g.SetAt([]int32{0, 0}, []int32{1, 1}, 1)
	grad := make([]float64, 2)
	v := Gradient(g, []float64{0.25, 0.25}, grad)
	// φ(0.25)·φ(0.25) = 0.25; ∂x = 2·0.5 = 1 on the rising flank.
	if math.Abs(v-0.25) > 1e-15 {
		t.Errorf("value %g want 0.25", v)
	}
	if math.Abs(grad[0]-1) > 1e-15 || math.Abs(grad[1]-1) > 1e-15 {
		t.Errorf("gradient %v want (1,1)", grad)
	}
	// Falling flank.
	Gradient(g, []float64{0.75, 0.25}, grad)
	if grad[0] >= 0 {
		t.Errorf("falling flank slope %g should be negative", grad[0])
	}
}
