package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestGP2IdxBijection(t *testing.T) {
	// Enumerating every grid point must hit each flat index exactly once.
	for _, c := range []struct{ d, n int }{{1, 6}, {2, 5}, {3, 5}, {4, 4}, {5, 4}, {7, 3}} {
		desc := MustDescriptor(c.d, c.n)
		seen := make([]bool, desc.Size())
		desc.VisitPoints(func(idx int64, l, i []int32) {
			got := desc.GP2Idx(l, i)
			if got != idx {
				t.Fatalf("d=%d n=%d: GP2Idx(%v,%v)=%d, iterator says %d", c.d, c.n, l, i, got, idx)
			}
			if got < 0 || got >= desc.Size() {
				t.Fatalf("d=%d n=%d: GP2Idx out of range: %d", c.d, c.n, got)
			}
			if seen[got] {
				t.Fatalf("d=%d n=%d: flat index %d hit twice", c.d, c.n, got)
			}
			seen[got] = true
		})
		for k, s := range seen {
			if !s {
				t.Fatalf("d=%d n=%d: flat index %d never produced", c.d, c.n, k)
			}
		}
	}
}

func TestIdx2GPInvertsGP2Idx(t *testing.T) {
	for _, c := range []struct{ d, n int }{{1, 6}, {2, 5}, {3, 5}, {5, 4}} {
		desc := MustDescriptor(c.d, c.n)
		l := make([]int32, c.d)
		i := make([]int32, c.d)
		for idx := int64(0); idx < desc.Size(); idx++ {
			desc.Idx2GP(idx, l, i)
			if !desc.Contains(l, i) {
				t.Fatalf("d=%d n=%d: Idx2GP(%d) gave invalid point %v %v", c.d, c.n, idx, l, i)
			}
			if back := desc.GP2Idx(l, i); back != idx {
				t.Fatalf("d=%d n=%d: GP2Idx(Idx2GP(%d)) = %d", c.d, c.n, idx, back)
			}
		}
	}
}

func TestPaperFig6WorkedExample(t *testing.T) {
	// Fig. 6: the value at grid point l=(1,2), i=(3,1) (the paper's
	// caption already uses the 0-based level convention of Sec. 4:
	// coordinates x_t = i_t/2^(l_t+1) = (0.75, 0.125)) is stored at
	// position 34 = index1 + index2 + index3.
	//
	// Decomposition: |l|₁ = 3, so index3 = 1 + 2·2 + 3·4 = 17 (groups
	// 0..2); the enumeration order of L²₃ is (3,0),(2,1),(1,2),(0,3), so
	// subspaceidx = 2 and index2 = 2·2³ = 16; index1 = 1 with dimension 0
	// as the least significant mixed-radix digit. 17+16+1 = 34.
	desc := MustDescriptor(2, 4)
	l := []int32{1, 2}
	i := []int32{3, 1}
	x := make([]float64, 2)
	Coords(l, i, x)
	if x[0] != 0.75 || x[1] != 0.125 {
		t.Fatalf("coordinates = %v, want (0.75, 0.125)", x)
	}
	if got := desc.GP2Idx(l, i); got != 34 {
		t.Errorf("GP2Idx(l=(1,2), i=(3,1)) = %d, paper Fig. 6 says 34", got)
	}
	if g := desc.GroupOf(34); g != 3 {
		t.Errorf("GroupOf(34) = %d, want 3", g)
	}
	if got := desc.SubspaceIndex(l); got != 2 {
		t.Errorf("SubspaceIndex((1,2)) = %d, want 2", got)
	}
	// index3 only depends on lower groups, so a deeper descriptor agrees.
	if got := MustDescriptor(2, 6).GP2Idx(l, i); got != 34 {
		t.Errorf("level-6 descriptor: GP2Idx = %d, want 34", got)
	}
}

func TestGP2IdxStorageOrderIsGroupMajor(t *testing.T) {
	// Storage order: level groups ascending; within a group, subspaces in
	// enumeration order; within a subspace, mixed-radix positions.
	desc := MustDescriptor(3, 4)
	prevGroup := -1
	var prevSub int64 = -1
	desc.VisitPoints(func(idx int64, l, i []int32) {
		g := LevelSum(l)
		s := desc.SubspaceIndex(l)
		if g < prevGroup {
			t.Fatalf("group order violated at idx %d", idx)
		}
		if g > prevGroup {
			prevGroup = g
			prevSub = -1
		}
		if s < prevSub {
			t.Fatalf("subspace order violated at idx %d", idx)
		}
		prevSub = s
	})
}

func TestEncodeDecodeIndex1(t *testing.T) {
	l := []int32{2, 0, 3, 1}
	n := int64(1) << 6 // 2^(2+0+3+1)
	i := make([]int32, 4)
	for p := int64(0); p < n; p++ {
		DecodeIndex1(p, l, i)
		for t2, v := range i {
			if v&1 == 0 || v < 1 || int64(v) >= int64(2)<<uint32(l[t2]) {
				t.Fatalf("DecodeIndex1(%d) produced invalid index %d in dim %d", p, v, t2)
			}
		}
		if back := EncodeIndex1(l, i); back != p {
			t.Fatalf("EncodeIndex1(DecodeIndex1(%d)) = %d", p, back)
		}
	}
}

func TestSubspaceStart(t *testing.T) {
	desc := MustDescriptor(4, 5)
	i := make([]int32, 4)
	desc.VisitSubspaces(func(l []int32, group int, start int64) {
		if got := desc.SubspaceStart(l); got != start {
			t.Fatalf("SubspaceStart(%v)=%d want %d", l, got, start)
		}
		// First point of the subspace is (1,1,...,1).
		for t2 := range i {
			i[t2] = 1
		}
		if got := desc.GP2Idx(l, i); got != start {
			t.Fatalf("GP2Idx(%v, ones)=%d want %d", l, got, start)
		}
	})
}

func TestGP2IdxQuickRandomPoints(t *testing.T) {
	desc := MustDescriptor(8, 6)
	rng := rand.New(rand.NewSource(42))
	f := func() bool {
		l := make([]int32, 8)
		i := make([]int32, 8)
		budget := 5
		for t2 := range l {
			v := rng.Intn(budget + 1)
			l[t2] = int32(v)
			budget -= v
			i[t2] = int32(2*rng.Intn(1<<uint(v)) + 1)
		}
		idx := desc.GP2Idx(l, i)
		if idx < 0 || idx >= desc.Size() {
			return false
		}
		l2 := make([]int32, 8)
		i2 := make([]int32, 8)
		desc.Idx2GP(idx, l2, i2)
		return reflect.DeepEqual(l, l2) && reflect.DeepEqual(i, i2)
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestVisitPointsCountsAndOrder(t *testing.T) {
	desc := MustDescriptor(3, 5)
	var count int64
	next := int64(0)
	desc.VisitPoints(func(idx int64, l, i []int32) {
		if idx != next {
			t.Fatalf("VisitPoints out of order: got %d want %d", idx, next)
		}
		next++
		count++
	})
	if count != desc.Size() {
		t.Errorf("VisitPoints visited %d points, Size=%d", count, desc.Size())
	}
}

func TestSubspaceIterSeekGroup(t *testing.T) {
	desc := MustDescriptor(3, 6)
	it := NewSubspaceIter(desc)
	for g := 0; g < desc.Groups(); g++ {
		it.SeekGroup(g)
		if !it.Valid() || it.Group() != g || it.Start() != desc.GroupStart(g) {
			t.Fatalf("SeekGroup(%d): group=%d start=%d valid=%v", g, it.Group(), it.Start(), it.Valid())
		}
		var n int64
		for it.Valid() && it.Group() == g {
			n += it.Points()
			it.Advance()
		}
		if n != desc.GroupSize(g) {
			t.Errorf("group %d: iterated %d points want %d", g, n, desc.GroupSize(g))
		}
	}
	it.SeekGroup(desc.Groups())
	if it.Valid() {
		t.Error("SeekGroup past the last group must invalidate the iterator")
	}
}
