package core

import (
	"errors"
	"strings"
	"testing"
)

// TestNewDescriptorOverflowTyped: shapes whose index arithmetic cannot
// fit in int64 must fail with a typed *OverflowError carrying the
// requested shape, not a silent wrap or a bare string error.
func TestNewDescriptorOverflowTyped(t *testing.T) {
	cases := []struct{ dim, level int }{
		{64, 50}, // binomial table blows up: C(112,64) ≫ 2^63
		{40, 40}, // ditto, mid-range shape
	}
	for _, tc := range cases {
		_, err := NewDescriptor(tc.dim, tc.level)
		if err == nil {
			t.Fatalf("NewDescriptor(%d, %d) accepted an overflowing shape", tc.dim, tc.level)
		}
		var oe *OverflowError
		if !errors.As(err, &oe) {
			t.Fatalf("NewDescriptor(%d, %d) err = %T %v, want *OverflowError", tc.dim, tc.level, err, err)
		}
		if oe.Dim != tc.dim || oe.Level != tc.level {
			t.Errorf("OverflowError carries shape d=%d level=%d, want d=%d level=%d", oe.Dim, oe.Level, tc.dim, tc.level)
		}
		if !strings.Contains(oe.Error(), "overflows int64") {
			t.Errorf("error message %q does not mention the overflow", oe.Error())
		}
	}
}

// TestNewDescriptorLargeValidShapes: shapes at the edge of the valid
// range still construct, and their index maps stay within int64 (the
// deepest group's shift width is bounded by MaxIndexBits).
func TestNewDescriptorLargeValidShapes(t *testing.T) {
	cases := []struct{ dim, level int }{
		{1, MaxLevel}, // 2^50-1 points in one dimension
		{10, 11},      // the paper's largest evaluated shape
		{MaxDim, 2},   // very wide, very shallow
	}
	for _, tc := range cases {
		d, err := NewDescriptor(tc.dim, tc.level)
		if err != nil {
			t.Fatalf("NewDescriptor(%d, %d): %v", tc.dim, tc.level, err)
		}
		if d.Size() <= 0 {
			t.Fatalf("NewDescriptor(%d, %d): nonpositive size %d (wrapped?)", tc.dim, tc.level, d.Size())
		}
		if g := d.Groups() - 1; g > MaxIndexBits {
			t.Fatalf("descriptor admits level group %d beyond MaxIndexBits=%d", g, MaxIndexBits)
		}
	}
}
