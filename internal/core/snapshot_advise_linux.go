//go:build linux

package core

import (
	"os"
	"syscall"
	"unsafe"
)

// madviseRegion applies the hint to a page-aligned mapped region.
func madviseRegion(b []byte, a Advice) error {
	var flag int
	switch a {
	case AdviseSequential:
		flag = syscall.MADV_SEQUENTIAL
	case AdviseWillNeed:
		flag = syscall.MADV_WILLNEED
	case AdviseDontNeed:
		flag = syscall.MADV_DONTNEED
	default:
		flag = syscall.MADV_NORMAL
	}
	return syscall.Madvise(b, flag)
}

// residentBytes counts the bytes of b resident in physical memory via
// mincore. b must start page-aligned (payloadRegion guarantees it).
func residentBytes(b []byte) (int64, error) {
	if len(b) == 0 {
		return 0, nil
	}
	ps := os.Getpagesize()
	vec := make([]byte, (len(b)+ps-1)/ps)
	_, _, errno := syscall.Syscall(syscall.SYS_MINCORE,
		uintptr(unsafe.Pointer(&b[0])), uintptr(len(b)), uintptr(unsafe.Pointer(&vec[0])))
	if errno != 0 {
		return 0, errno
	}
	var pages int64
	for _, v := range vec {
		if v&1 != 0 {
			pages++
		}
	}
	n := pages * int64(ps)
	if n > int64(len(b)) {
		n = int64(len(b))
	}
	return n, nil
}
