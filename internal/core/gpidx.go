package core

// The composite index map gp2idx (paper Alg. 5) and its inverse.
//
// gp2idx(l, i) = index1 + index2 + index3 where
//
//	index1 — position of i inside the regular subgrid of subspace l
//	         (mixed-radix number with radices 2^l[t]; dimension 0 is the
//	         LEAST significant digit, matching the paper's Fig. 6 worked
//	         example, where l=(1,2), i=(3,1) lands on position 34 —
//	         note Alg. 5 as printed iterates the other way, which would
//	         give 37; we follow the concrete example),
//	index2 — points in preceding subspaces of the same level group:
//	         SubspaceIndex(l) · 2^|l|₁,
//	index3 — points in all lower level groups: GroupStart(|l|₁).

// GP2Idx maps the grid point (l, i) to its flat storage index in
// [0, Size()). l must satisfy |l|₁ < Level() and each i[t] must be odd in
// [1, 2^(l[t]+1)-1]; the map is a bijection on that domain. The shift
// accumulation cannot wrap for level vectors belonging to a valid
// Descriptor: NewDescriptor rejects shapes where |l|₁ could exceed
// MaxIndexBits with a typed *OverflowError, so the hot path needs no
// per-call overflow checks.
func (d *Descriptor) GP2Idx(l, i []int32) int64 {
	var index1 int64
	for t := d.dim - 1; t >= 0; t-- {
		index1 = index1<<uint32(l[t]) + int64(i[t]>>1) // (i-1)/2 for odd i
	}
	sum := int(l[0])
	var index2 int64
	for t := 1; t < d.dim; t++ {
		index2 -= d.binom[t][sum]
		sum += int(l[t])
		index2 += d.binom[t][sum]
	}
	return index1 + index2<<uint(sum) + d.groupStart[sum]
}

// Idx2GP inverts GP2Idx, filling l and i (both of length Dim()) for the
// grid point stored at flat index idx. It runs in O(d + level).
func (d *Descriptor) Idx2GP(idx int64, l, i []int32) {
	g := d.GroupOf(idx)
	off := idx - d.groupStart[g]
	s := off >> uint(g)
	pos := off & (int64(1)<<uint(g) - 1)
	d.SubspaceFromIndex(g, s, l)
	DecodeIndex1(pos, l, i)
}

// GroupOf returns the level group g containing flat index idx, i.e. the
// unique g with GroupStart(g) ≤ idx < GroupStart(g+1).
func (d *Descriptor) GroupOf(idx int64) int {
	// Level counts are small (≤ MaxLevel), so a linear scan beats binary
	// search in practice; keep it branch-cheap.
	g := 0
	for g+1 < len(d.groupStart) && d.groupStart[g+1] <= idx {
		g++
	}
	return g
}

// EncodeIndex1 computes index1 for (l, i): the mixed-radix position of the
// point inside its subspace, dimension 0 least significant (Fig. 6 order).
// The caller must ensure sum(l) ≤ MaxIndexBits — guaranteed for level
// vectors drawn from a Descriptor, whose constructor rejects wider shapes.
func EncodeIndex1(l, i []int32) int64 {
	var index1 int64
	for t := len(l) - 1; t >= 0; t-- {
		index1 = index1<<uint32(l[t]) + int64(i[t]>>1)
	}
	return index1
}

// DecodeIndex1 inverts EncodeIndex1 for the subspace l, writing the odd
// 1d indices into i.
func DecodeIndex1(pos int64, l, i []int32) {
	for t := 0; t < len(l); t++ {
		digit := pos & (int64(1)<<uint32(l[t]) - 1)
		pos >>= uint32(l[t])
		i[t] = int32(digit<<1 | 1)
	}
}

// SubspaceStart returns the flat index of the first point of subspace l,
// i.e. GP2Idx(l, (1,...,1)).
func (d *Descriptor) SubspaceStart(l []int32) int64 {
	g := LevelSum(l)
	return d.groupStart[g] + d.SubspaceIndex(l)<<uint(g)
}

// AncestorStarts precomputes, for subspace l and dimension t, the flat
// base offset (index2 + index3, i.e. SubspaceStart) of every ancestor
// subspace l − k·e_t: dst[pl] receives the base of the subspace whose
// dimension-t level is pl, for pl = 0..l[t]−1, and the returned slice is
// dst[:l[t]]. dst must have capacity ≥ l[t]. l is restored before
// returning. The hierarchization kernels combine these bases with O(1)
// bit arithmetic per point, replacing two O(d) GP2Idx walks per point
// with amortized-constant table lookups (DESIGN.md §8).
func (d *Descriptor) AncestorStarts(l []int32, t int, dst []int64) []int64 {
	lt := l[t]
	dst = dst[:lt]
	for pl := int32(0); pl < lt; pl++ {
		l[t] = pl
		dst[pl] = d.SubspaceStart(l)
	}
	l[t] = lt
	return dst
}
