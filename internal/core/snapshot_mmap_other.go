//go:build !linux

package core

import "os"

const mmapSupported = false

func mmapFile(*os.File, int) ([]byte, error) { return nil, ErrNotMappable }

func munmapFile([]byte) error { return nil }
