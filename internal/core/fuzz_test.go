package core

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// The deserializers face artifacts from disk/network: they must reject
// arbitrary corruption gracefully (error, never panic) and accept
// everything the serializers produce. Run with `go test -fuzz FuzzReadGrid`
// for coverage-guided exploration; the seed corpus runs in every
// ordinary test invocation.

func validGridBytes(t testing.TB) []byte {
	g := NewGrid(MustDescriptor(2, 3))
	g.Fill(func(x []float64) float64 { return x[0] + 2*x[1] })
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func validSparseBytes(t testing.TB) []byte {
	g := NewGrid(MustDescriptor(2, 3))
	g.Data[3] = 1.5
	g.Data[7] = -2
	var buf bytes.Buffer
	if _, err := g.WriteSparse(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzReadGrid(f *testing.F) {
	valid := validGridBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-1]) // truncated
	f.Add([]byte("SGC1"))
	f.Add([]byte{})
	// Header with absurd dim/level.
	bad := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(bad[4:], 1<<30)
	f.Add(bad)
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadGrid(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must be internally consistent and
		// re-serializable.
		if int64(len(g.Data)) != g.Desc().Size() {
			t.Fatalf("accepted grid with %d values for %d points", len(g.Data), g.Desc().Size())
		}
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			t.Fatalf("re-serialization failed: %v", err)
		}
	})
}

func FuzzReadSparse(f *testing.F) {
	valid := validSparseBytes(f)
	f.Add(valid)
	f.Add(valid[:20])
	f.Add([]byte("SGS1"))
	// Duplicate/unordered index.
	dup := append([]byte(nil), valid...)
	copy(dup[len(dup)-16:], dup[len(dup)-32:len(dup)-16])
	f.Add(dup)
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadSparse(bytes.NewReader(data))
		if err != nil {
			return
		}
		if int64(len(g.Data)) != g.Desc().Size() {
			t.Fatalf("accepted sparse grid with %d values for %d points", len(g.Data), g.Desc().Size())
		}
	})
}

func TestFuzzSeedsDuplicateIndexRejected(t *testing.T) {
	// The duplicated-record seed above must actually be rejected (indices
	// must be strictly ascending).
	valid := validSparseBytes(t)
	dup := append([]byte(nil), valid...)
	copy(dup[len(dup)-16:], dup[len(dup)-32:len(dup)-16])
	if _, err := ReadSparse(bytes.NewReader(dup)); err == nil {
		t.Error("duplicate index accepted")
	}
}
