package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// The deserializers face artifacts from disk/network: they must reject
// arbitrary corruption gracefully (error, never panic) and accept
// everything the serializers produce. Run with `go test -fuzz FuzzReadGrid`
// for coverage-guided exploration; the seed corpus runs in every
// ordinary test invocation.

func validGridBytes(t testing.TB) []byte {
	g := NewGrid(MustDescriptor(2, 3))
	g.Fill(func(x []float64) float64 { return x[0] + 2*x[1] })
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func validSparseBytes(t testing.TB) []byte {
	g := NewGrid(MustDescriptor(2, 3))
	g.Data[3] = 1.5
	g.Data[7] = -2
	var buf bytes.Buffer
	if _, err := g.WriteSparse(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func validGridBytesV1(t testing.TB) []byte {
	g := NewGrid(MustDescriptor(2, 3))
	g.Fill(func(x []float64) float64 { return x[0] + 2*x[1] })
	var buf bytes.Buffer
	if _, err := g.WriteToV1(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzReadGrid(f *testing.F) {
	// ReadGrid sniffs the container generation, so the corpus seeds
	// both: v2 checksummed snapshots and legacy v1 streams.
	valid := validGridBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-1]) // truncated
	v1 := validGridBytesV1(f)
	f.Add(v1)
	f.Add(v1[:len(v1)-1])
	f.Add([]byte("SGC1"))
	f.Add([]byte("SGC2"))
	f.Add([]byte{})
	// v1 header with absurd dim/level.
	bad := append([]byte(nil), v1...)
	binary.LittleEndian.PutUint32(bad[4:], 1<<30)
	f.Add(bad)
	// v2 header with a hostile count and a re-stamped header checksum,
	// so mutations explore the post-checksum validation too.
	hostile := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(hostile[24:], 1<<60)
	restampHeaderCRC(hostile)
	f.Add(hostile)
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadGrid(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must be internally consistent and must
		// round-trip through the writer bit-identically.
		if int64(len(g.Data)) != g.Desc().Size() {
			t.Fatalf("accepted grid with %d values for %d points", len(g.Data), g.Desc().Size())
		}
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			t.Fatalf("re-serialization failed: %v", err)
		}
		back, err := ReadGrid(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read of accepted grid failed: %v", err)
		}
		for k := range g.Data {
			if math.Float64bits(g.Data[k]) != math.Float64bits(back.Data[k]) {
				t.Fatalf("write→read not bit-identical at %d", k)
			}
		}
	})
}

func FuzzSnapshot(f *testing.F) {
	// The v2 decoder in isolation: no panic, no unbounded allocation,
	// and any accepted payload re-encodes to the identical byte stream.
	valid := validGridBytes(f)
	f.Add(valid)
	f.Add(valid[:SnapshotHeaderSize])
	f.Add(valid[:len(valid)-3])
	var boundary bytes.Buffer
	if _, err := EncodeSnapshot(&boundary, 2, 2, SnapBoundary, []float64{1, 2, 3}); err != nil {
		f.Fatal(err)
	}
	f.Add(boundary.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		info, payload, err := DecodeSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		if int64(len(payload)) != info.Count {
			t.Fatalf("decoded %d values, header says %d", len(payload), info.Count)
		}
		var buf bytes.Buffer
		if _, err := EncodeSnapshot(&buf, info.Dim, info.Level, info.Flags, payload); err != nil {
			t.Fatalf("re-encode of accepted snapshot failed: %v", err)
		}
		if info.PayloadOffset == SnapshotAlign && !bytes.Equal(buf.Bytes(), data[:buf.Len()]) {
			t.Fatal("re-encode of an aligned snapshot is not byte-identical")
		}
	})
}

func FuzzReadSparse(f *testing.F) {
	valid := validSparseBytes(f)
	f.Add(valid)
	f.Add(valid[:20])
	f.Add([]byte("SGS1"))
	// Duplicate/unordered index.
	dup := append([]byte(nil), valid...)
	copy(dup[len(dup)-16:], dup[len(dup)-32:len(dup)-16])
	f.Add(dup)
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadSparse(bytes.NewReader(data))
		if err != nil {
			return
		}
		if int64(len(g.Data)) != g.Desc().Size() {
			t.Fatalf("accepted sparse grid with %d values for %d points", len(g.Data), g.Desc().Size())
		}
	})
}

func TestFuzzSeedsDuplicateIndexRejected(t *testing.T) {
	// The duplicated-record seed above must actually be rejected (indices
	// must be strictly ascending).
	valid := validSparseBytes(t)
	dup := append([]byte(nil), valid...)
	copy(dup[len(dup)-16:], dup[len(dup)-32:len(dup)-16])
	if _, err := ReadSparse(bytes.NewReader(dup)); err == nil {
		t.Error("duplicate index accepted")
	}
}
