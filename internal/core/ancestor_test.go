package core

import (
	"math/rand"
	"testing"
)

// TestCellIndexEdges pins the shared clamp-to-cell rule once for every
// consumer (PointAt, the eval table builder, the gradient walk):
// x = 1.0 and anything beyond land in the last cell, x < 0 in the first.
func TestCellIndexEdges(t *testing.T) {
	for _, level := range []int32{0, 1, 3, 7} {
		cells := int64(1) << uint32(level)
		cases := []struct {
			x    float64
			want int64
		}{
			{0.0, 0},
			{-0.25, 0},
			{-1e300, 0},
			{1.0, cells - 1},
			{1.5, cells - 1},
			{1e300, cells - 1},
			{0.999999999, cells - 1},
		}
		for _, c := range cases {
			if got := CellIndex(level, c.x); got != c.want {
				t.Errorf("CellIndex(%d, %g) = %d, want %d", level, c.x, got, c.want)
			}
		}
		// Interior points land in ⌊x·2^level⌋ exactly.
		for c := int64(0); c < cells; c++ {
			x := (float64(c) + 0.5) / float64(cells)
			if got := CellIndex(level, x); got != c {
				t.Errorf("CellIndex(%d, %g) = %d, want %d", level, x, got, c)
			}
		}
	}
}

// TestCellIndexMatchesPointAt: PointAt must be exactly CellIndex
// per dimension (the odd index 2c+1).
func TestCellIndexMatchesPointAt(t *testing.T) {
	l := []int32{0, 2, 4}
	i := make([]int32, 3)
	xs := [][]float64{
		{0, 0.5, 1.0},
		{-0.1, 0.3, 1.7},
		{0.9999, 0.0001, 0.5},
	}
	for _, x := range xs {
		PointAt(l, x, i)
		for d := range l {
			want := int32(CellIndex(l[d], x[d])<<1 | 1)
			if i[d] != want {
				t.Errorf("PointAt x=%v dim %d: i=%d want %d", x, d, i[d], want)
			}
		}
	}
}

// TestAncestorStarts checks the precomputed ancestor subspace bases
// against direct SubspaceStart calls on the modified level vector, and
// that l is restored.
func TestAncestorStarts(t *testing.T) {
	desc := MustDescriptor(4, 7)
	rng := rand.New(rand.NewSource(42))
	l := make([]int32, 4)
	saved := make([]int32, 4)
	ref := make([]int32, 4)
	dst := make([]int64, desc.Level())
	for grp := 0; grp < desc.Groups(); grp++ {
		for trial := 0; trial < 20; trial++ {
			s := rng.Int63n(desc.Subspaces(grp))
			desc.SubspaceFromIndex(grp, s, l)
			copy(saved, l)
			for dim := 0; dim < 4; dim++ {
				got := desc.AncestorStarts(l, dim, dst)
				if len(got) != int(l[dim]) {
					t.Fatalf("AncestorStarts(l=%v, t=%d) returned %d entries, want %d", l, dim, len(got), l[dim])
				}
				for pl := int32(0); pl < l[dim]; pl++ {
					copy(ref, saved)
					ref[dim] = pl
					if want := desc.SubspaceStart(ref); got[pl] != want {
						t.Errorf("AncestorStarts(l=%v, t=%d)[%d] = %d, want %d", saved, dim, pl, got[pl], want)
					}
				}
				for k := range l {
					if l[k] != saved[k] {
						t.Fatalf("AncestorStarts mutated l: %v, want %v", l, saved)
					}
				}
			}
		}
	}
}
