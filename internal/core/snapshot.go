package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// SGC2 snapshot container.
//
// The paper's point is that a regular sparse grid is ONE flat []float64
// with zero structural overhead; v1 (SGC1) threw that away at load time
// by copying every coefficient through bufio. The v2 snapshot keeps the
// property on disk: the coefficient array is stored 8-byte-aligned at a
// page-aligned offset, so on platforms with mmap the file can be mapped
// read-only and the payload used in place — a cold load costs a header
// read plus one checksum pass instead of a full decode.
//
// Layout (all little-endian):
//
//	offset  size  field
//	0       4     magic "SGC2"
//	4       4     uint32 version (2)
//	8       4     uint32 dim
//	12      4     uint32 level
//	16      4     uint32 flags (bit 0 compressed, bit 1 boundary)
//	20      4     uint32 reserved (must be 0)
//	24      8     uint64 count   (number of float64 payload values)
//	32      8     uint64 payload offset (multiple of 8; writer uses 4096)
//	40      4     uint32 payload CRC32-C (over the count×8 payload bytes)
//	44      4     uint32 header  CRC32-C (over bytes [0,44))
//	48..    —     zero padding up to the payload offset
//	off     8×n   count little-endian float64 values
//
// The header checksum lets a reader reject a corrupt header before
// trusting any of its fields; the payload checksum covers the
// coefficients whether they are copied or mapped. For an interior grid
// (boundary flag clear) count must equal NumGridPoints(dim, level); a
// mismatch is corruption, never an allocation hint — see ReadGrid's
// history of trusting a hostile count.

const (
	// SnapshotMagic identifies the v2 container.
	SnapshotMagic = "SGC2"
	// SnapshotVersion is the container version this package writes.
	SnapshotVersion = 2
	// SnapshotHeaderSize is the fixed byte length of the v2 header.
	SnapshotHeaderSize = 48
	// SnapshotAlign is the payload offset the writer emits: one page,
	// so a mapped payload is both page- and 8-byte-aligned.
	SnapshotAlign = 4096
)

// SnapshotFlags is the header flag word.
type SnapshotFlags uint32

const (
	// SnapCompressed marks a payload of hierarchical coefficients
	// (surpluses) rather than nodal values.
	SnapCompressed SnapshotFlags = 1 << 0
	// SnapBoundary marks the payload of a boundary-extended grid
	// (interior + 3^d−1 faces in one array, package boundary's layout)
	// rather than an interior compact grid.
	SnapBoundary SnapshotFlags = 1 << 1

	snapKnownFlags = SnapCompressed | SnapBoundary
)

// MaxDecodeBytes caps how much payload memory any container reader will
// allocate or map, so a hostile header cannot turn 48 bytes on the wire
// into a multi-terabyte allocation. The default admits the paper-scale
// d=10 level=11 grid (≈1 GiB) with an order of magnitude to spare;
// tools loading genuinely larger snapshots may raise it.
var MaxDecodeBytes int64 = 8 << 30

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crcBytes is the CRC32-C of a byte slice (the mapped-payload check).
func crcBytes(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// hostLittleEndian reports whether the zero-copy reinterpretation of
// mapped payload bytes as []float64 is valid on this machine.
var hostLittleEndian = binary.NativeEndian.Uint16([]byte{0x01, 0x02}) == 0x0201

// ErrChecksum is wrapped by CorruptError when a header or payload
// CRC32-C does not match; detect it with errors.Is.
var ErrChecksum = errors.New("checksum mismatch")

// ErrNotMappable is returned (wrapped) by MapGrid when a snapshot
// cannot be memory-mapped on this platform or with this file layout;
// OpenSnapshot treats it as "fall back to the copying reader", never as
// corruption.
var ErrNotMappable = errors.New("snapshot cannot be memory-mapped")

// A CorruptError reports a structurally invalid grid container: bad
// magic, lying header fields, truncation, or a checksum mismatch. It
// wraps the underlying cause (ErrChecksum, io.ErrUnexpectedEOF, a
// descriptor error) when there is one.
type CorruptError struct {
	Format string // "SGC1", "SGC2", "SGS1"
	Reason string
	Err    error
}

func (e *CorruptError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("core: corrupt %s container: %s: %v", e.Format, e.Reason, e.Err)
	}
	return fmt.Sprintf("core: corrupt %s container: %s", e.Format, e.Reason)
}

func (e *CorruptError) Unwrap() error { return e.Err }

func corruptf(format string, err error, reason string, args ...any) *CorruptError {
	return &CorruptError{Format: format, Reason: fmt.Sprintf(reason, args...), Err: err}
}

// NumGridPoints returns the point count of a regular sparse grid of the
// given shape — the only payload count a well-formed interior container
// may declare.
func NumGridPoints(dim, level int) (int64, error) {
	desc, err := NewDescriptor(dim, level)
	if err != nil {
		return 0, err
	}
	return desc.Size(), nil
}

// SnapshotInfo is the parsed, checksum-verified v2 header.
type SnapshotInfo struct {
	Version       int
	Dim           int
	Level         int
	Flags         SnapshotFlags
	Count         int64 // float64 payload values
	PayloadOffset int64
	PayloadCRC    uint32
	HeaderCRC     uint32
}

// Compressed reports whether the payload holds hierarchical coefficients.
func (i *SnapshotInfo) Compressed() bool { return i.Flags&SnapCompressed != 0 }

// Boundary reports whether the payload is a boundary-extended grid.
func (i *SnapshotInfo) Boundary() bool { return i.Flags&SnapBoundary != 0 }

// PayloadBytes returns the payload length in bytes.
func (i *SnapshotInfo) PayloadBytes() int64 { return i.Count * 8 }

// Aligned reports whether the payload offset permits the zero-copy
// []float64 reinterpretation of a mapped file (8-byte alignment; the
// mapping base itself is always page-aligned).
func (i *SnapshotInfo) Aligned() bool { return i.PayloadOffset%8 == 0 }

// EncodeSnapshot writes a v2 snapshot for a raw coefficient array of
// the given shape. For interior grids (SnapBoundary clear) len(data)
// must equal NumGridPoints(dim, level); boundary payload lengths are
// validated by the boundary layer, which owns that layout.
func EncodeSnapshot(w io.Writer, dim, level int, flags SnapshotFlags, data []float64) (int64, error) {
	if flags&^snapKnownFlags != 0 {
		return 0, fmt.Errorf("core: unknown snapshot flags %#x", uint32(flags&^snapKnownFlags))
	}
	desc, err := NewDescriptor(dim, level)
	if err != nil {
		return 0, err
	}
	if flags&SnapBoundary == 0 && int64(len(data)) != desc.Size() {
		return 0, fmt.Errorf("core: snapshot payload holds %d values, interior grid d=%d level=%d needs %d",
			len(data), dim, level, desc.Size())
	}

	var hdr [SnapshotHeaderSize]byte
	copy(hdr[0:4], SnapshotMagic)
	binary.LittleEndian.PutUint32(hdr[4:], SnapshotVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(dim))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(level))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(flags))
	binary.LittleEndian.PutUint32(hdr[20:], 0) // reserved
	binary.LittleEndian.PutUint64(hdr[24:], uint64(len(data)))
	binary.LittleEndian.PutUint64(hdr[32:], SnapshotAlign)
	binary.LittleEndian.PutUint32(hdr[40:], payloadCRC(data))
	binary.LittleEndian.PutUint32(hdr[44:], crc32.Checksum(hdr[:44], castagnoli))

	var n int64
	m, err := w.Write(hdr[:])
	n += int64(m)
	if err != nil {
		return n, err
	}
	pad := make([]byte, SnapshotAlign-SnapshotHeaderSize)
	m, err = w.Write(pad)
	n += int64(m)
	if err != nil {
		return n, err
	}
	nn, err := writeFloats(w, data)
	return n + nn, err
}

// payloadCRC computes the CRC32-C of data's little-endian byte image.
func payloadCRC(data []float64) uint32 {
	if hostLittleEndian {
		return crc32.Checksum(floatsAsBytes(data), castagnoli)
	}
	var crc uint32
	var buf [8]byte
	for _, v := range data {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		crc = crc32.Update(crc, castagnoli, buf[:])
	}
	return crc
}

// writeFloats streams data little-endian. On little-endian hosts the
// slice's byte image is written directly (one bulk write, no per-value
// conversion).
func writeFloats(w io.Writer, data []float64) (int64, error) {
	if len(data) == 0 {
		return 0, nil
	}
	if hostLittleEndian {
		m, err := w.Write(floatsAsBytes(data))
		return int64(m), err
	}
	buf := make([]byte, 1<<16)
	var n int64
	for len(data) > 0 {
		chunk := len(buf) / 8
		if chunk > len(data) {
			chunk = len(data)
		}
		for k := 0; k < chunk; k++ {
			binary.LittleEndian.PutUint64(buf[8*k:], math.Float64bits(data[k]))
		}
		m, err := w.Write(buf[:8*chunk])
		n += int64(m)
		if err != nil {
			return n, err
		}
		data = data[chunk:]
	}
	return n, nil
}

// parseSnapshotHeader validates a raw 48-byte v2 header, including its
// own checksum, and returns the parsed fields. It allocates nothing
// proportional to the declared payload.
func parseSnapshotHeader(hdr []byte) (*SnapshotInfo, error) {
	if len(hdr) < SnapshotHeaderSize {
		return nil, corruptf(SnapshotMagic, io.ErrUnexpectedEOF, "header is %d bytes, need %d", len(hdr), SnapshotHeaderSize)
	}
	hdr = hdr[:SnapshotHeaderSize]
	if string(hdr[0:4]) != SnapshotMagic {
		return nil, corruptf(SnapshotMagic, nil, "bad magic %q", hdr[0:4])
	}
	if got, want := crc32.Checksum(hdr[:44], castagnoli), binary.LittleEndian.Uint32(hdr[44:]); got != want {
		return nil, corruptf(SnapshotMagic, ErrChecksum, "header CRC32-C %08x, header claims %08x", got, want)
	}
	info := &SnapshotInfo{
		Version:    int(binary.LittleEndian.Uint32(hdr[4:])),
		Dim:        int(binary.LittleEndian.Uint32(hdr[8:])),
		Level:      int(binary.LittleEndian.Uint32(hdr[12:])),
		Flags:      SnapshotFlags(binary.LittleEndian.Uint32(hdr[16:])),
		PayloadCRC: binary.LittleEndian.Uint32(hdr[40:]),
		HeaderCRC:  binary.LittleEndian.Uint32(hdr[44:]),
	}
	if info.Version != SnapshotVersion {
		return nil, corruptf(SnapshotMagic, nil, "unsupported version %d", info.Version)
	}
	if info.Flags&^snapKnownFlags != 0 {
		return nil, corruptf(SnapshotMagic, nil, "unknown flags %#x", uint32(info.Flags&^snapKnownFlags))
	}
	if reserved := binary.LittleEndian.Uint32(hdr[20:]); reserved != 0 {
		return nil, corruptf(SnapshotMagic, nil, "reserved field is %#x, must be 0", reserved)
	}
	count := binary.LittleEndian.Uint64(hdr[24:])
	off := binary.LittleEndian.Uint64(hdr[32:])
	if count > uint64(MaxDecodeBytes/8) {
		return nil, corruptf(SnapshotMagic, nil, "payload of %d values (%d bytes) exceeds the %d-byte decode cap", count, count*8, MaxDecodeBytes)
	}
	info.Count = int64(count)
	if off < SnapshotHeaderSize || off > 1<<30 {
		return nil, corruptf(SnapshotMagic, nil, "payload offset %d outside [%d, 2^30]", off, SnapshotHeaderSize)
	}
	info.PayloadOffset = int64(off)
	// Shape sanity: an interior payload count must match the descriptor
	// exactly. The descriptor itself rejects out-of-range dim/level and
	// overflowing shapes.
	if info.Flags&SnapBoundary == 0 {
		want, err := NumGridPoints(info.Dim, info.Level)
		if err != nil {
			return nil, corruptf(SnapshotMagic, err, "invalid grid shape d=%d level=%d", info.Dim, info.Level)
		}
		if info.Count != want {
			return nil, corruptf(SnapshotMagic, nil, "payload holds %d values, descriptor expects %d", info.Count, want)
		}
	} else if info.Dim < 1 || info.Dim > 32 || info.Level < 1 || info.Level > MaxLevel {
		// Boundary grids pack face masks into uint32 (package boundary);
		// exact counts are validated by that layer.
		return nil, corruptf(SnapshotMagic, nil, "invalid boundary grid shape d=%d level=%d", info.Dim, info.Level)
	}
	return info, nil
}

// ReadSnapshotInfo reads and validates only the v2 header (48 bytes)
// from r. The payload checksum in the result is the header's claim;
// DecodeSnapshot verifies it against the actual payload.
func ReadSnapshotInfo(r io.Reader) (*SnapshotInfo, error) {
	var hdr [SnapshotHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, corruptf(SnapshotMagic, err, "reading header")
	}
	return parseSnapshotHeader(hdr[:])
}

// DecodeSnapshot is the copying v2 reader: it validates the header,
// checks the alignment padding is all-zero (padding is outside both
// CRCs, so the encoding stays canonical only if nothing hides there),
// reads the payload in bounded chunks (allocation grows only as data
// actually arrives, so a lying header cannot force a large up-front
// allocation) and verifies the payload CRC32-C. It returns the parsed
// header and the coefficient array.
func DecodeSnapshot(r io.Reader) (*SnapshotInfo, []float64, error) {
	info, err := ReadSnapshotInfo(r)
	if err != nil {
		return nil, nil, err
	}
	if err := consumeZeroPadding(r, info.PayloadOffset-SnapshotHeaderSize); err != nil {
		return nil, nil, err
	}
	data, crc, err := readFloats(r, info.Count, true)
	if err != nil {
		return nil, nil, corruptf(SnapshotMagic, noEOF(err), "reading %d payload values", info.Count)
	}
	if crc != info.PayloadCRC {
		return nil, nil, corruptf(SnapshotMagic, ErrChecksum, "payload CRC32-C %08x, header claims %08x", crc, info.PayloadCRC)
	}
	return info, data, nil
}

// ReadSnapshotGrid decodes an interior-grid v2 snapshot into a Grid.
// Boundary-flagged snapshots belong to the boundary layer and are
// rejected here.
func ReadSnapshotGrid(r io.Reader) (*Grid, SnapshotFlags, error) {
	info, data, err := DecodeSnapshot(r)
	if err != nil {
		return nil, 0, err
	}
	if info.Boundary() {
		return nil, 0, fmt.Errorf("core: snapshot holds a boundary-extended grid, not an interior compact grid")
	}
	desc, err := NewDescriptor(info.Dim, info.Level)
	if err != nil {
		return nil, 0, err
	}
	g, err := GridFromData(desc, data)
	if err != nil {
		return nil, 0, err
	}
	return g, info.Flags, nil
}

// consumeZeroPadding reads n padding bytes from r and rejects any
// nonzero byte. PayloadOffset is already capped by the header parser,
// so n is small (< 1 GiB, normally SnapshotAlign-48).
func consumeZeroPadding(r io.Reader, n int64) error {
	if n <= 0 {
		return nil
	}
	buf := make([]byte, 1<<12)
	for n > 0 {
		chunk := buf
		if n < int64(len(chunk)) {
			chunk = chunk[:n]
		}
		m, err := io.ReadFull(r, chunk)
		for _, b := range chunk[:m] {
			if b != 0 {
				return corruptf(SnapshotMagic, nil, "nonzero byte in alignment padding")
			}
		}
		if err != nil {
			return corruptf(SnapshotMagic, noEOF(err), "reading %d padding bytes", n)
		}
		n -= int64(m)
	}
	return nil
}

// readFloats reads exactly n little-endian float64 values from r. The
// destination grows as bytes arrive rather than being allocated from
// the declared count, bounding memory by the actual input size. When
// withCRC is set it also returns the CRC32-C of the bytes read.
func readFloats(r io.Reader, n int64, withCRC bool) ([]float64, uint32, error) {
	prealloc := n
	if prealloc > 1<<16 {
		prealloc = 1 << 16
	}
	out := make([]float64, 0, prealloc)
	var crc uint32
	buf := make([]byte, 1<<16)
	remaining := n * 8
	for remaining > 0 {
		chunk := int64(len(buf))
		if chunk > remaining {
			chunk = remaining
		}
		if _, err := io.ReadFull(r, buf[:chunk]); err != nil {
			return nil, 0, err
		}
		if withCRC {
			crc = crc32.Update(crc, castagnoli, buf[:chunk])
		}
		for off := int64(0); off < chunk; off += 8 {
			out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])))
		}
		remaining -= chunk
	}
	return out, crc, nil
}

// noEOF upgrades a bare io.EOF to io.ErrUnexpectedEOF: inside a
// container body a clean EOF still means truncation.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
