package core

import "os"

// Advice is a page-level access hint for a mapped snapshot payload,
// mirroring the posix_madvise vocabulary. Hints are best-effort: on
// platforms without madvise (or for copied payloads) they are no-ops.
type Advice int

const (
	// AdviseNormal restores the kernel's default readahead.
	AdviseNormal Advice = iota
	// AdviseSequential requests aggressive readahead for sequential
	// payload scans (hierarchize, whole-subspace walks).
	AdviseSequential
	// AdviseWillNeed asks the kernel to start faulting the payload in
	// now — the prefetch issued right after a cold-load mmap.
	AdviseWillNeed
	// AdviseDontNeed drops the payload's resident pages. For a
	// read-only file mapping the pages are clean and simply refault
	// from the file on next touch, so this is the page-granular
	// eviction knob: memory pressure sheds pages, not whole grids.
	AdviseDontNeed
)

// Advise applies a page-level access hint to the mapped payload.
// Copied (non-mmap) snapshots and empty payloads ignore it.
func (s *Snapshot) Advise(a Advice) error {
	b := s.payloadRegion()
	if b == nil {
		return nil
	}
	return madviseRegion(b, a)
}

// ResidentBytes estimates how many bytes of the mapped payload are
// currently resident in physical memory (mincore). For copied
// snapshots it returns the full payload size — the copy is always
// resident; the mapping-backed estimate is what makes page-level
// eviction observable.
func (s *Snapshot) ResidentBytes() (int64, error) {
	if s.mapped == nil {
		return s.info.PayloadBytes(), nil
	}
	b := s.payloadRegion()
	if b == nil {
		return 0, nil
	}
	return residentBytes(b)
}

// payloadRegion returns the page-aligned slice of the mapping that
// covers the payload, or nil when there is nothing to advise on. The
// writer places the payload at a page boundary (SnapshotAlign), so
// rounding the start down never reaches back into the header's page
// for canonical files.
func (s *Snapshot) payloadRegion() []byte {
	if s.mapped == nil || s.info.PayloadBytes() == 0 {
		return nil
	}
	ps := int64(os.Getpagesize())
	start := s.info.PayloadOffset &^ (ps - 1)
	end := s.info.PayloadOffset + s.info.PayloadBytes()
	if end > int64(len(s.mapped)) {
		end = int64(len(s.mapped))
	}
	if start >= end {
		return nil
	}
	return s.mapped[start:end]
}
