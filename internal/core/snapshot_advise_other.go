//go:build !linux

package core

// Without madvise the hints degrade to no-ops and the resident-set
// estimate assumes the whole payload is resident — conservative for a
// memory gauge, and mmap itself is already platform-gated.

func madviseRegion(b []byte, a Advice) error { return nil }

func residentBytes(b []byte) (int64, error) { return int64(len(b)), nil }
