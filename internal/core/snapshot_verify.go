package core

import (
	"bufio"
	"hash/crc32"
	"io"
	"os"
)

// VerifySnapshot streams a complete v2 snapshot from r and verifies
// everything the copying reader would — header CRC32-C, all-zero
// alignment padding, payload CRC32-C — without materializing the
// payload. It is the integrity gate for content-addressed blob
// transfers: a fetched snapshot can be admitted into a cache after one
// sequential pass costing O(64 KiB) memory regardless of payload size.
func VerifySnapshot(r io.Reader) (*SnapshotInfo, error) {
	info, err := ReadSnapshotInfo(r)
	if err != nil {
		return nil, err
	}
	if err := consumeZeroPadding(r, info.PayloadOffset-SnapshotHeaderSize); err != nil {
		return nil, err
	}
	var crc uint32
	buf := make([]byte, 1<<16)
	remaining := info.PayloadBytes()
	for remaining > 0 {
		chunk := int64(len(buf))
		if chunk > remaining {
			chunk = remaining
		}
		if _, err := io.ReadFull(r, buf[:chunk]); err != nil {
			return nil, corruptf(SnapshotMagic, noEOF(err), "reading %d payload bytes", info.PayloadBytes())
		}
		crc = crc32.Update(crc, castagnoli, buf[:chunk])
		remaining -= chunk
	}
	if crc != info.PayloadCRC {
		return nil, corruptf(SnapshotMagic, ErrChecksum, "payload CRC32-C %08x, header claims %08x", crc, info.PayloadCRC)
	}
	return info, nil
}

// ReadSnapshotInfoFile reads and validates only the 48-byte header of
// the snapshot at path. The payload checksum in the result is the
// header's claim; use VerifySnapshotFile to check it.
func ReadSnapshotInfoFile(path string) (*SnapshotInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSnapshotInfo(f)
}

// VerifySnapshotFile runs VerifySnapshot over the file at path and
// additionally rejects trailing bytes after the payload: a
// content-addressed blob must be canonical, and appended garbage would
// not perturb either checksum.
func VerifySnapshotFile(path string) (*SnapshotInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	info, err := VerifySnapshot(br)
	if err != nil {
		return nil, err
	}
	if _, err := br.ReadByte(); err != io.EOF {
		if err == nil {
			return nil, corruptf(SnapshotMagic, nil, "trailing bytes after payload")
		}
		return nil, corruptf(SnapshotMagic, err, "checking for trailing bytes")
	}
	return info, nil
}
