package core

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"
)

func prodParabola(x []float64) float64 {
	p := 1.0
	for _, v := range x {
		p *= 4 * v * (1 - v)
	}
	return p
}

func TestGridFillStoresNodalValues(t *testing.T) {
	desc := MustDescriptor(3, 4)
	g := NewGrid(desc)
	g.Fill(prodParabola)
	x := make([]float64, 3)
	desc.VisitPoints(func(idx int64, l, i []int32) {
		Coords(l, i, x)
		want := prodParabola(x)
		if g.Data[idx] != want {
			t.Fatalf("Fill: point %v %v stored %g want %g", l, i, g.Data[idx], want)
		}
	})
}

func TestGridAtSetAt(t *testing.T) {
	desc := MustDescriptor(2, 3)
	g := NewGrid(desc)
	l := []int32{1, 1}
	i := []int32{3, 1}
	g.SetAt(l, i, 2.5)
	if got := g.At(l, i); got != 2.5 {
		t.Errorf("At after SetAt = %g want 2.5", got)
	}
	if g.Data[desc.GP2Idx(l, i)] != 2.5 {
		t.Error("SetAt wrote to the wrong slot")
	}
}

func TestGridClone(t *testing.T) {
	desc := MustDescriptor(2, 3)
	g := NewGrid(desc)
	g.Fill(prodParabola)
	c := g.Clone()
	c.Data[0] = -1
	if g.Data[0] == -1 {
		t.Error("Clone must not share storage")
	}
	if c.Desc() != g.Desc() {
		t.Error("Clone shares the immutable descriptor")
	}
}

func TestGridMemoryBytes(t *testing.T) {
	desc := MustDescriptor(2, 4)
	g := NewGrid(desc)
	if g.MemoryBytes() != desc.Size()*8 {
		t.Errorf("MemoryBytes = %d want %d", g.MemoryBytes(), desc.Size()*8)
	}
}

func TestGridSerializationRoundTrip(t *testing.T) {
	desc := MustDescriptor(3, 5)
	g := NewGrid(desc)
	g.Fill(prodParabola)
	g.Data[7] = math.Inf(1)
	g.Data[8] = math.NaN()
	var buf bytes.Buffer
	n, err := g.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	back, err := ReadGrid(&buf)
	if err != nil {
		t.Fatalf("ReadGrid: %v", err)
	}
	if back.Dim() != 3 || back.Level() != 5 {
		t.Fatalf("round trip shape: dim=%d level=%d", back.Dim(), back.Level())
	}
	for k := range g.Data {
		a, b := g.Data[k], back.Data[k]
		if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
			t.Fatalf("value %d: %g != %g", k, a, b)
		}
	}
}

func TestReadGridRejectsGarbage(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", []byte("NOPE aaaaaaaaaaaaaaaaaaaa")},
		{"truncated header", []byte("SGC1\x01\x00")},
	}
	for _, c := range cases {
		if _, err := ReadGrid(bytes.NewReader(c.data)); err == nil {
			t.Errorf("%s: ReadGrid accepted invalid input", c.name)
		}
	}
	// v1 header promising the wrong count.
	var buf bytes.Buffer
	g := NewGrid(MustDescriptor(2, 2))
	if _, err := g.WriteToV1(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[12]++ // bump count
	if _, err := ReadGrid(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "descriptor expects") {
		t.Errorf("ReadGrid accepted inconsistent v1 count: %v", err)
	}
	// v2 header promising the wrong count, with the header checksum
	// re-stamped so the count check itself is reached.
	buf.Reset()
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw = buf.Bytes()
	raw[24]++ // bump count
	restampHeaderCRC(raw)
	if _, err := ReadGrid(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "descriptor expects") {
		t.Errorf("ReadGrid accepted inconsistent v2 count: %v", err)
	}
	// Truncated payloads, both generations.
	for _, write := range []func(io.Writer) (int64, error){g.WriteTo, g.WriteToV1} {
		buf.Reset()
		if _, err := write(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadGrid(bytes.NewReader(buf.Bytes()[:buf.Len()-3])); err == nil {
			t.Error("ReadGrid accepted truncated payload")
		}
	}
}
