package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCoord(t *testing.T) {
	cases := []struct {
		level, index int32
		want         float64
	}{
		{0, 1, 0.5},
		{1, 1, 0.25},
		{1, 3, 0.75},
		{2, 1, 0.125},
		{2, 7, 0.875},
		{3, 5, 0.3125},
	}
	for _, c := range cases {
		if got := Coord(c.level, c.index); got != c.want {
			t.Errorf("Coord(%d,%d)=%g want %g", c.level, c.index, got, c.want)
		}
	}
}

func TestParent1D(t *testing.T) {
	// Level-0 point (0,1) at x=0.5: both parents are the boundary.
	if _, _, ok := Parent1D(0, 1, LeftParent); ok {
		t.Error("left parent of (0,1) must be boundary")
	}
	if _, _, ok := Parent1D(0, 1, RightParent); ok {
		t.Error("right parent of (0,1) must be boundary")
	}
	// (1,1) at x=0.25: left parent boundary, right parent (0,1) at 0.5.
	if _, _, ok := Parent1D(1, 1, LeftParent); ok {
		t.Error("left parent of (1,1) must be boundary")
	}
	pl, pi, ok := Parent1D(1, 1, RightParent)
	if !ok || pl != 0 || pi != 1 {
		t.Errorf("right parent of (1,1) = (%d,%d,%v) want (0,1,true)", pl, pi, ok)
	}
	// (2,5) at x=0.625: left parent (0,1) at 0.5, right parent (1,3) at 0.75.
	pl, pi, ok = Parent1D(2, 5, LeftParent)
	if !ok || pl != 0 || pi != 1 {
		t.Errorf("left parent of (2,5) = (%d,%d,%v) want (0,1,true)", pl, pi, ok)
	}
	pl, pi, ok = Parent1D(2, 5, RightParent)
	if !ok || pl != 1 || pi != 3 {
		t.Errorf("right parent of (2,5) = (%d,%d,%v) want (1,3,true)", pl, pi, ok)
	}
}

func TestParent1DProperties(t *testing.T) {
	// For every point: a parent, when it exists, is the nearest coarser
	// grid line on that side — strictly lower level, coordinate adjacent
	// within support.
	f := func(rawLevel, rawIndex uint16, side bool) bool {
		level := int32(rawLevel % 12)
		n := int32(1) << uint32(level)
		index := int32(2*(int(rawIndex)%int(n)) + 1)
		dir := LeftParent
		if side {
			dir = RightParent
		}
		pl, pi, ok := Parent1D(level, index, dir)
		if !ok {
			// Boundary cases: leftmost point going left, rightmost going right.
			c := Coord(level, index)
			h := 1.0 / float64(int64(1)<<uint32(level+1))
			if dir == LeftParent {
				return c-h == 0
			}
			return c+h == 1
		}
		if pl >= level || pl < 0 {
			return false
		}
		if pi&1 == 0 || pi < 1 || int64(pi) >= int64(2)<<uint32(pl) {
			return false
		}
		// Parent must sit exactly one mesh width of the child's level away.
		pc, cc := Coord(pl, pi), Coord(level, index)
		h := 1.0 / float64(int64(1)<<uint32(level+1))
		return (dir == LeftParent && pc == cc-h) || (dir == RightParent && pc == cc+h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Error(err)
	}
}

func TestChild1D(t *testing.T) {
	cl, ci := Child1D(0, 1, LeftParent)
	if cl != 1 || ci != 1 {
		t.Errorf("left child of (0,1) = (%d,%d) want (1,1)", cl, ci)
	}
	cl, ci = Child1D(0, 1, RightParent)
	if cl != 1 || ci != 3 {
		t.Errorf("right child of (0,1) = (%d,%d) want (1,3)", cl, ci)
	}
	// Parent of a child is the original point.
	for _, dir := range []ParentDir{LeftParent, RightParent} {
		cl, ci = Child1D(2, 5, dir)
		pl, pi, ok := Parent1D(cl, ci, -dir)
		if !ok || pl != 2 || pi != 5 {
			t.Errorf("Parent1D(Child1D((2,5),%d)) = (%d,%d,%v)", dir, pl, pi, ok)
		}
	}
}

func TestParentIdx(t *testing.T) {
	desc := MustDescriptor(3, 4)
	l := []int32{1, 0, 1}
	i := []int32{3, 1, 1}
	lSave := append([]int32(nil), l...)
	iSave := append([]int32(nil), i...)
	// Point (1,3) in dim 0 sits at x=0.75: its left parent is (0,1) at
	// x=0.5 (the right parent is the domain boundary x=1).
	idx, ok := desc.ParentIdx(l, i, 0, LeftParent)
	if !ok {
		t.Fatal("expected left parent in dim 0")
	}
	want := desc.GP2Idx([]int32{0, 0, 1}, []int32{1, 1, 1})
	if idx != want {
		t.Errorf("ParentIdx = %d want %d", idx, want)
	}
	for k := range l {
		if l[k] != lSave[k] || i[k] != iSave[k] {
			t.Fatal("ParentIdx must restore l and i")
		}
	}
	// Dim 1 is level 0: both parents boundary.
	if _, ok := desc.ParentIdx(l, i, 1, LeftParent); ok {
		t.Error("dim-1 left parent should be boundary")
	}
}

func TestContains(t *testing.T) {
	desc := MustDescriptor(2, 3)
	valid := [][2][]int32{
		{{0, 0}, {1, 1}},
		{{2, 0}, {7, 1}},
		{{1, 1}, {3, 3}},
	}
	for _, v := range valid {
		if !desc.Contains(v[0], v[1]) {
			t.Errorf("Contains(%v,%v) = false, want true", v[0], v[1])
		}
	}
	invalid := [][2][]int32{
		{{2, 1}, {1, 1}},    // |l|₁ = 3 ≥ level
		{{0, 0}, {2, 1}},    // even index
		{{0, 0}, {1, 3}},    // index out of level range
		{{-1, 0}, {1, 1}},   // negative level
		{{0, 0}, {1, -1}},   // negative index
		{{0}, {1}},          // wrong dim
		{{0, 0, 0}, {1, 1}}, // mismatched lengths
	}
	for _, v := range invalid {
		if desc.Contains(v[0], v[1]) {
			t.Errorf("Contains(%v,%v) = true, want false", v[0], v[1])
		}
	}
}

func TestPointAt(t *testing.T) {
	l := []int32{2, 0}
	i := make([]int32, 2)
	// x = 0.3 on level 2: cell ⌊0.3·4⌋ = 1 → index 3 (center 0.375).
	PointAt(l, []float64{0.3, 0.5}, i)
	if i[0] != 3 || i[1] != 1 {
		t.Errorf("PointAt = %v want [3 1]", i)
	}
	// Clamping: x = 1.0 goes to the last cell, x < 0 to the first.
	PointAt(l, []float64{1.0, -0.2}, i)
	if i[0] != 7 || i[1] != 1 {
		t.Errorf("PointAt clamp = %v want [7 1]", i)
	}
	// The chosen basis function's support must contain x.
	f := func(raw uint16, xr float64) bool {
		lv := []int32{int32(raw % 10)}
		if math.IsNaN(xr) || math.IsInf(xr, 0) {
			return true
		}
		x := math.Abs(math.Mod(xr, 1))
		iv := make([]int32, 1)
		PointAt(lv, []float64{x}, iv)
		h := 1.0 / float64(int64(1)<<uint32(lv[0]+1))
		c := Coord(lv[0], iv[0])
		return x >= c-h-1e-15 && x <= c+h+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestFormatPoint(t *testing.T) {
	s := FormatPoint([]int32{1, 0}, []int32{3, 1})
	if !strings.Contains(s, "0.75") || !strings.Contains(s, "0.5") {
		t.Errorf("FormatPoint output %q missing coordinates", s)
	}
}
