package core

import (
	"testing"
)

func TestNewDescriptorValidation(t *testing.T) {
	cases := []struct {
		dim, level int
		wantErr    bool
	}{
		{1, 1, false},
		{1, 11, false},
		{10, 11, false},
		{0, 5, true},
		{-1, 5, true},
		{MaxDim + 1, 5, true},
		{5, 0, true},
		{5, -3, true},
		{5, MaxLevel + 1, true},
		{MaxDim, 1, false},
	}
	for _, c := range cases {
		_, err := NewDescriptor(c.dim, c.level)
		if (err != nil) != c.wantErr {
			t.Errorf("NewDescriptor(%d, %d): err=%v, wantErr=%v", c.dim, c.level, err, c.wantErr)
		}
	}
}

func TestDescriptorSize1D(t *testing.T) {
	// In one dimension a grid of level n holds 2^n - 1 points.
	for n := 1; n <= 20; n++ {
		d := MustDescriptor(1, n)
		want := int64(1)<<uint(n) - 1
		if d.Size() != want {
			t.Errorf("d=1 n=%d: Size=%d want %d", n, d.Size(), want)
		}
	}
}

func TestDescriptorSizePaperFigures(t *testing.T) {
	// The paper (Sec. 6) uses level-11 grids with 2047 .. 127,574,017
	// points for d = 1..10.
	if got := MustDescriptor(1, 11).Size(); got != 2047 {
		t.Errorf("d=1 level=11: Size=%d want 2047", got)
	}
	if got := MustDescriptor(10, 11).Size(); got != 127574017 {
		t.Errorf("d=10 level=11: Size=%d want 127574017", got)
	}
}

func TestGroupAccounting(t *testing.T) {
	d := MustDescriptor(4, 7)
	var total int64
	for g := 0; g < d.Groups(); g++ {
		if d.GroupStart(g) != total {
			t.Errorf("GroupStart(%d)=%d want %d", g, d.GroupStart(g), total)
		}
		wantSub, _ := safeBinomial(d.Dim()-1+g, d.Dim()-1)
		if d.Subspaces(g) != wantSub {
			t.Errorf("Subspaces(%d)=%d want %d", g, d.Subspaces(g), wantSub)
		}
		if d.GroupSize(g) != wantSub<<uint(g) {
			t.Errorf("GroupSize(%d)=%d want %d", g, d.GroupSize(g), wantSub<<uint(g))
		}
		total += d.GroupSize(g)
	}
	if d.Size() != total {
		t.Errorf("Size=%d want %d", d.Size(), total)
	}
	if d.GroupStart(d.Groups()) != total {
		t.Errorf("GroupStart(Groups())=%d want %d", d.GroupStart(d.Groups()), total)
	}
}

func TestTotalSubspaces(t *testing.T) {
	// Σ_{g=0}^{n-1} C(d-1+g, d-1) = C(d+n-1, d).
	for _, c := range []struct{ dim, level int }{{1, 5}, {2, 3}, {3, 6}, {5, 4}, {10, 11}} {
		d := MustDescriptor(c.dim, c.level)
		want, _ := safeBinomial(c.dim+c.level-1, c.dim)
		if got := d.TotalSubspaces(); got != want {
			t.Errorf("d=%d n=%d: TotalSubspaces=%d want %d", c.dim, c.level, got, want)
		}
	}
}

func TestSafeBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120},
		{19, 9, 92378}, {52, 5, 2598960}, {61, 30, 232714176627630544},
		{4, 7, 0}, // k > n
	}
	for _, c := range cases {
		got, ok := safeBinomial(c.n, c.k)
		if !ok {
			t.Errorf("safeBinomial(%d,%d): unexpected overflow", c.n, c.k)
			continue
		}
		if got != c.want {
			t.Errorf("safeBinomial(%d,%d)=%d want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestSafeBinomialOverflow(t *testing.T) {
	if _, ok := safeBinomial(128, 64); ok {
		t.Error("safeBinomial(128,64) should overflow int64")
	}
	// C(66,33) = 7219428434016265740 < 2^63, must still succeed.
	v, ok := safeBinomial(66, 33)
	if !ok || v != 7219428434016265740 {
		t.Errorf("safeBinomial(66,33)=(%d,%v) want (7219428434016265740,true)", v, ok)
	}
}

func TestBinomialTableMatchesDirect(t *testing.T) {
	d := MustDescriptor(6, 9)
	for tt := 0; tt <= 6; tt++ {
		for s := 0; s <= 9; s++ {
			want, _ := safeBinomial(tt+s, tt)
			if got := d.Binomial(tt, s); got != want {
				t.Errorf("Binomial(%d,%d)=%d want %d", tt, s, got, want)
			}
		}
	}
}

func TestSafeBinomialSymmetry(t *testing.T) {
	// C(n, k) == C(n, n-k) wherever both succeed.
	for n := 0; n <= 40; n++ {
		for k := 0; k <= n; k++ {
			a, okA := safeBinomial(n, k)
			b, okB := safeBinomial(n, n-k)
			if okA != okB || a != b {
				t.Fatalf("symmetry violated at C(%d,%d): (%d,%v) vs (%d,%v)", n, k, a, okA, b, okB)
			}
		}
	}
}

func TestSafeBinomialPascal(t *testing.T) {
	// Pascal's rule C(n,k) = C(n-1,k-1) + C(n-1,k) on a safe range.
	for n := 1; n <= 50; n++ {
		for k := 1; k < n; k++ {
			c, _ := safeBinomial(n, k)
			a, _ := safeBinomial(n-1, k-1)
			b, _ := safeBinomial(n-1, k)
			if c != a+b {
				t.Fatalf("Pascal violated at C(%d,%d): %d != %d + %d", n, k, c, a, b)
			}
		}
	}
}

func TestGroupOf(t *testing.T) {
	d := MustDescriptor(3, 6)
	for g := 0; g < d.Groups(); g++ {
		lo, hi := d.GroupStart(g), d.GroupStart(g+1)
		for _, idx := range []int64{lo, (lo + hi) / 2, hi - 1} {
			if got := d.GroupOf(idx); got != g {
				t.Errorf("GroupOf(%d)=%d want %d", idx, got, g)
			}
		}
	}
}
