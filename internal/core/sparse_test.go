package core

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestThreshold(t *testing.T) {
	desc := MustDescriptor(2, 4)
	g := NewGrid(desc)
	g.Data[0] = 1.0
	g.Data[5] = 0.001
	g.Data[9] = -0.002
	g.Data[11] = -2.0
	kept, bound := g.Threshold(0.01)
	if kept != 2 {
		t.Errorf("kept=%d want 2", kept)
	}
	if math.Abs(bound-0.003) > 1e-15 {
		t.Errorf("error bound %g want 0.003", bound)
	}
	if g.Data[5] != 0 || g.Data[9] != 0 || g.Data[0] != 1 || g.Data[11] != -2 {
		t.Error("threshold zeroed/kept the wrong slots")
	}
	if g.Nonzeros() != 2 {
		t.Errorf("Nonzeros=%d want 2", g.Nonzeros())
	}
}

func TestThresholdErrorBoundHolds(t *testing.T) {
	// After thresholding, |fs - fs_truncated| ≤ Σ dropped |α| everywhere.
	desc := MustDescriptor(2, 5)
	g := NewGrid(desc)
	rng := rand.New(rand.NewSource(55))
	for k := range g.Data {
		g.Data[k] = rng.NormFloat64() * math.Pow(0.5, float64(desc.GroupOf(int64(k))))
	}
	trunc := g.Clone()
	_, bound := trunc.Threshold(0.01)
	evalAt := func(gr *Grid, x []float64) float64 {
		res := 0.0
		gr.Desc().VisitPoints(func(idx int64, l, i []int32) {
			if gr.Data[idx] == 0 {
				return
			}
			p := 1.0
			for t2 := range l {
				scale := float64(int64(1) << uint32(l[t2]+1))
				v := math.Abs(scale*x[t2] - float64(i[t2]))
				if v >= 1 {
					p = 0
					return
				}
				p *= 1 - v
			}
			res += p * gr.Data[idx]
		})
		return res
	}
	for k := 0; k < 100; k++ {
		x := []float64{rng.Float64(), rng.Float64()}
		diff := math.Abs(evalAt(g, x) - evalAt(trunc, x))
		if diff > bound+1e-12 {
			t.Fatalf("at %v: truncation error %g exceeds bound %g", x, diff, bound)
		}
	}
}

func TestSparseRoundTrip(t *testing.T) {
	desc := MustDescriptor(3, 4)
	g := NewGrid(desc)
	rng := rand.New(rand.NewSource(56))
	for k := 0; k < 20; k++ {
		g.Data[rng.Int63n(desc.Size())] = rng.NormFloat64()
	}
	var buf bytes.Buffer
	n, err := g.WriteSparse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteSparse reported %d bytes, wrote %d", n, buf.Len())
	}
	wantBytes := 4 + 16 + g.Nonzeros()*16
	if int64(buf.Len()) != wantBytes {
		t.Errorf("sparse container %d bytes want %d", buf.Len(), wantBytes)
	}
	back, err := ReadSparse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for k := range g.Data {
		if back.Data[k] != g.Data[k] {
			t.Fatalf("round trip differs at %d", k)
		}
	}
}

func TestReadSparseRejectsGarbage(t *testing.T) {
	if _, err := ReadSparse(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := ReadSparse(bytes.NewReader([]byte("NOPE0000000000000000"))); err == nil {
		t.Error("bad magic accepted")
	}
	// Valid header, out-of-range index.
	g := NewGrid(MustDescriptor(2, 2))
	g.Data[0] = 1
	var buf bytes.Buffer
	if _, err := g.WriteSparse(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Corrupt the record's index to something huge.
	raw[len(raw)-16] = 0xFF
	raw[len(raw)-12] = 0xFF
	if _, err := ReadSparse(bytes.NewReader(raw)); err == nil {
		t.Error("out-of-range index accepted")
	}
	// Truncated payload.
	buf.Reset()
	g.Data[3] = 2
	if _, err := g.WriteSparse(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSparse(bytes.NewReader(buf.Bytes()[:buf.Len()-5])); err == nil {
		t.Error("truncated payload accepted")
	}
	// Claimed nnz larger than the grid.
	var big bytes.Buffer
	big.WriteString("SGS1")
	var hdr [16]byte
	hdr[0] = 2
	hdr[4] = 2
	hdr[8] = 0xFF
	hdr[9] = 0xFF
	big.Write(hdr[:])
	if _, err := ReadSparse(&big); err == nil {
		t.Error("oversized nnz accepted")
	}
	// Individually valid dim/level whose dense form exceeds the decode
	// cap: must be rejected as corrupt before any allocation (the fuzzer
	// drove this shape into makeslice once).
	var huge bytes.Buffer
	huge.WriteString("SGS1")
	var hhdr [16]byte
	hhdr[0] = 3  // d=3, level=48: valid descriptor,
	hhdr[4] = 48 // ~7.9e14-point dense form (the fuzzer's shape)
	huge.Write(hhdr[:])
	var cerr *CorruptError
	if _, err := ReadSparse(&huge); !errors.As(err, &cerr) {
		t.Errorf("dense form beyond the decode cap: got %v, want CorruptError", err)
	}
}

func TestTopCoefficients(t *testing.T) {
	g := NewGrid(MustDescriptor(1, 3))
	g.Data[2] = -5
	g.Data[4] = 3
	g.Data[6] = 1
	top := g.TopCoefficients(2)
	if len(top) != 2 || top[0] != 2 || top[1] != 4 {
		t.Errorf("TopCoefficients = %v want [2 4]", top)
	}
	if got := g.TopCoefficients(0); got != nil {
		t.Error("k=0 must return nil")
	}
	if got := g.TopCoefficients(100); len(got) != 7 {
		t.Errorf("k beyond size must clamp: %d", len(got))
	}
}
