package core

// Iterators over subspaces and grid points in storage (gp2idx) order.
// They exist so algorithms can walk the flat array without paying the
// full Idx2GP cost per point: the subspace walk keeps l incrementally
// via Next, and positions within a subspace are consecutive.

// SubspaceIter walks all subspaces of a grid in storage order, exposing
// for each one its level vector, level group, and the flat index of its
// first point.
type SubspaceIter struct {
	desc  *Descriptor
	l     []int32
	group int
	start int64
	valid bool
}

// NewSubspaceIter returns an iterator positioned on the first subspace
// (the single point of level group 0).
func NewSubspaceIter(desc *Descriptor) *SubspaceIter {
	it := &SubspaceIter{desc: desc, l: make([]int32, desc.dim)}
	it.Reset()
	return it
}

// Reset repositions the iterator on the first subspace.
func (it *SubspaceIter) Reset() {
	First(it.l, 0)
	it.group = 0
	it.start = 0
	it.valid = it.desc.level > 0
}

// SeekGroup positions the iterator on the first subspace of level group g.
func (it *SubspaceIter) SeekGroup(g int) {
	First(it.l, g)
	it.group = g
	it.start = it.desc.groupStart[g]
	it.valid = g < it.desc.level
}

// Valid reports whether the iterator points at a subspace.
func (it *SubspaceIter) Valid() bool { return it.valid }

// Level returns the current subspace's level vector. The slice is owned
// by the iterator; callers must not retain it across Advance.
func (it *SubspaceIter) Level() []int32 { return it.l }

// Group returns the current level group |l|₁.
func (it *SubspaceIter) Group() int { return it.group }

// Start returns the flat index of the subspace's first point.
func (it *SubspaceIter) Start() int64 { return it.start }

// Points returns the number of points in the current subspace, 2^|l|₁.
func (it *SubspaceIter) Points() int64 { return int64(1) << uint(it.group) }

// Advance moves to the next subspace in storage order, crossing into the
// next level group when the current one is exhausted. It reports whether
// a subspace is available.
func (it *SubspaceIter) Advance() bool {
	if !it.valid {
		return false
	}
	it.start += it.Points()
	if Next(it.l) {
		return true
	}
	it.group++
	if it.group >= it.desc.level {
		it.valid = false
		return false
	}
	First(it.l, it.group)
	return true
}

// VisitPoints calls fn for every grid point in storage order with the
// point's flat index, level vector, and index vector. The slices are
// reused between calls. This is the cheap sequential alternative to
// calling Idx2GP per point.
func (d *Descriptor) VisitPoints(fn func(idx int64, l, i []int32)) {
	it := NewSubspaceIter(d)
	i := make([]int32, d.dim)
	for it.Valid() {
		n := it.Points()
		base := it.Start()
		for p := int64(0); p < n; p++ {
			DecodeIndex1(p, it.l, i)
			fn(base+p, it.l, i)
		}
		it.Advance()
	}
}

// VisitSubspaces calls fn for every subspace in storage order with the
// level vector, level group, and flat index of the first point. The level
// slice is reused between calls.
func (d *Descriptor) VisitSubspaces(fn func(l []int32, group int, start int64)) {
	it := NewSubspaceIter(d)
	for it.Valid() {
		fn(it.l, it.group, it.start)
		it.Advance()
	}
}
