package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"hash/crc32"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

// -update regenerates the golden container files under testdata/. The
// byte-stability tests exist precisely so that regeneration is a
// deliberate, reviewed act: the on-disk formats must never drift.
var updateGolden = flag.Bool("update", false, "rewrite golden container files under testdata/")

// restampHeaderCRC rewrites the header checksum of a raw v2 snapshot
// after a test has tampered with header bytes, so the tampered field
// itself (not the checksum) trips the reader.
func restampHeaderCRC(raw []byte) {
	binary.LittleEndian.PutUint32(raw[44:], crc32.Checksum(raw[:44], castagnoli))
}

func snapshotBytes(t testing.TB, dim, level int, flags SnapshotFlags) []byte {
	t.Helper()
	g := NewGrid(MustDescriptor(dim, level))
	g.Fill(func(x []float64) float64 {
		s := 1.0
		for k, v := range x {
			s *= 4 * v * (1 - v) * float64(k+1)
		}
		return s
	})
	var buf bytes.Buffer
	if _, err := g.WriteSnapshot(&buf, flags); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSnapshotHeaderRoundTrip(t *testing.T) {
	raw := snapshotBytes(t, 3, 4, SnapCompressed)
	info, err := ReadSnapshotInfo(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NumGridPoints(3, 4)
	switch {
	case info.Version != SnapshotVersion:
		t.Errorf("version = %d", info.Version)
	case info.Dim != 3 || info.Level != 4:
		t.Errorf("shape = d=%d level=%d", info.Dim, info.Level)
	case !info.Compressed() || info.Boundary():
		t.Errorf("flags = %#x", info.Flags)
	case info.Count != want:
		t.Errorf("count = %d want %d", info.Count, want)
	case info.PayloadOffset != SnapshotAlign:
		t.Errorf("payload offset = %d want %d", info.PayloadOffset, SnapshotAlign)
	case !info.Aligned():
		t.Error("writer-produced snapshot must be mappable-aligned")
	case int64(len(raw)) != SnapshotAlign+info.PayloadBytes():
		t.Errorf("file is %d bytes, want %d", len(raw), SnapshotAlign+info.PayloadBytes())
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	desc := MustDescriptor(3, 5)
	g := NewGrid(desc)
	rng := rand.New(rand.NewSource(7))
	for k := range g.Data {
		g.Data[k] = rng.NormFloat64()
	}
	g.Data[3] = math.Inf(-1)
	g.Data[4] = math.NaN()
	var buf bytes.Buffer
	n, err := g.WriteSnapshot(&buf, SnapCompressed)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteSnapshot reported %d bytes, wrote %d", n, buf.Len())
	}
	back, flags, err := ReadSnapshotGrid(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if flags != SnapCompressed {
		t.Errorf("flags = %#x want %#x", flags, SnapCompressed)
	}
	for k := range g.Data {
		if math.Float64bits(g.Data[k]) != math.Float64bits(back.Data[k]) {
			t.Fatalf("value %d not bit-identical: %x vs %x", k,
				math.Float64bits(g.Data[k]), math.Float64bits(back.Data[k]))
		}
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	valid := snapshotBytes(t, 2, 3, 0)
	cases := []struct {
		name     string
		mutate   func([]byte) []byte
		checksum bool // must surface ErrChecksum
	}{
		{"flipped payload bit", func(b []byte) []byte {
			b[SnapshotAlign+5] ^= 0x10
			return b
		}, true},
		{"flipped payload checksum", func(b []byte) []byte {
			b[40] ^= 0xff
			restampHeaderCRC(b)
			return b
		}, true},
		{"flipped header byte", func(b []byte) []byte {
			b[9] ^= 0x01 // dim, without re-stamping the header CRC
			return b
		}, true},
		{"nonzero padding byte", func(b []byte) []byte {
			b[SnapshotHeaderSize+100] = 0x19 // outside both CRCs
			return b
		}, false},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-7] }, false},
		{"truncated padding", func(b []byte) []byte { return b[:100] }, false},
		{"truncated header", func(b []byte) []byte { return b[:20] }, false},
		{"bad version", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:], 9)
			restampHeaderCRC(b)
			return b
		}, false},
		{"unknown flags", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[16:], 1<<7)
			restampHeaderCRC(b)
			return b
		}, false},
		{"nonzero reserved", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[20:], 1)
			restampHeaderCRC(b)
			return b
		}, false},
		{"payload offset under header", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[32:], 8)
			restampHeaderCRC(b)
			return b
		}, false},
	}
	for _, c := range cases {
		raw := c.mutate(append([]byte(nil), valid...))
		_, _, err := DecodeSnapshot(bytes.NewReader(raw))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Errorf("%s: error is %T, want *CorruptError: %v", c.name, err, err)
		}
		if c.checksum && !errors.Is(err, ErrChecksum) {
			t.Errorf("%s: error does not wrap ErrChecksum: %v", c.name, err)
		}
	}
}

// TestHostileCountAllocatesNothing is the regression for the
// untrusted-header allocation bug: a tiny header declaring 2^60 values
// (or a legal-looking shape whose payload would be petabytes) must be
// rejected by validation, never answered with an allocation.
func TestHostileCountAllocatesNothing(t *testing.T) {
	// v1, count field = 2^60, tiny actual payload.
	v1 := make([]byte, 0, 28)
	v1 = append(v1, gridMagic...)
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], 2)
	binary.LittleEndian.PutUint32(hdr[4:], 3)
	binary.LittleEndian.PutUint64(hdr[8:], 1<<60)
	v1 = append(v1, hdr[:]...)
	allocated := testing.AllocsPerRun(1, func() {
		if _, err := ReadGrid(bytes.NewReader(v1)); err == nil {
			t.Fatal("v1 reader accepted a 2^60 count")
		}
	})
	// The exact number is irrelevant; what must not appear is the
	// 2^63-byte payload allocation (or anything within orders of
	// magnitude of it). A handful of small header/error allocs is fine.
	if allocated > 64 {
		t.Errorf("v1 hostile count cost %v allocations", allocated)
	}

	// v2, count field = 2^60 with a valid header checksum.
	v2 := snapshotBytes(t, 2, 3, 0)
	binary.LittleEndian.PutUint64(v2[24:], 1<<60)
	restampHeaderCRC(v2)
	_, _, err := DecodeSnapshot(bytes.NewReader(v2))
	var ce *CorruptError
	if err == nil || !errors.As(err, &ce) {
		t.Fatalf("v2 reader: got %v, want *CorruptError for a 2^60 count", err)
	}

	// A consistent v1 header for a shape whose payload exceeds the
	// decode cap: d=3 level=45 is a valid descriptor of ~1.4e17 bytes.
	desc, err := NewDescriptor(3, 45)
	if err != nil {
		t.Fatal(err)
	}
	if desc.Size()*8 <= MaxDecodeBytes {
		t.Fatal("test shape no longer exceeds the cap; pick a bigger one")
	}
	big := make([]byte, 0, 28)
	big = append(big, gridMagic...)
	binary.LittleEndian.PutUint32(hdr[0:], 3)
	binary.LittleEndian.PutUint32(hdr[4:], 45)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(desc.Size()))
	big = append(big, hdr[:]...)
	if _, err := ReadGrid(bytes.NewReader(big)); err == nil || !errors.As(err, &ce) {
		t.Fatalf("v1 reader: got %v, want decode-cap *CorruptError", err)
	}
}

// --- golden files -----------------------------------------------------

// goldenGrid builds the deterministic grid every golden container file
// is generated from.
func goldenGrid(t testing.TB, dim, level int) *Grid {
	t.Helper()
	g := NewGrid(MustDescriptor(dim, level))
	g.Fill(func(x []float64) float64 {
		s := 0.0
		for k, v := range x {
			s += float64(k+1) * v * (1 - v)
		}
		return s
	})
	return g
}

func goldenPath(name string) string { return filepath.Join("testdata", name) }

func checkGolden(t *testing.T, name string, generate func(io.Writer) error) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := generate(&buf); err != nil {
		t.Fatal(err)
	}
	path := goldenPath(name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/core -run Golden -update` to generate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("%s: serialization drifted from the golden file (%d vs %d bytes); the on-disk format must stay byte-for-byte stable", name, buf.Len(), len(want))
	}
	return want
}

func TestGoldenV1Interior(t *testing.T) {
	g := goldenGrid(t, 2, 3)
	raw := checkGolden(t, "v1_interior_d2l3.sg", func(w io.Writer) error {
		_, err := g.WriteToV1(w)
		return err
	})
	back, err := ReadGrid(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	for k := range g.Data {
		if math.Float64bits(back.Data[k]) != math.Float64bits(g.Data[k]) {
			t.Fatalf("golden v1 value %d drifted", k)
		}
	}
}

func TestGoldenV2Interior(t *testing.T) {
	g := goldenGrid(t, 2, 3)
	raw := checkGolden(t, "v2_interior_d2l3.sg", func(w io.Writer) error {
		_, err := g.WriteSnapshot(w, SnapCompressed)
		return err
	})
	back, flags, err := ReadSnapshotGrid(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if flags != SnapCompressed {
		t.Errorf("golden v2 flags = %#x", flags)
	}
	for k := range g.Data {
		if math.Float64bits(back.Data[k]) != math.Float64bits(g.Data[k]) {
			t.Fatalf("golden v2 value %d drifted", k)
		}
	}
}

// --- property tests ---------------------------------------------------

func TestQuickSnapshotWriteReadIdentity(t *testing.T) {
	desc := MustDescriptor(3, 4)
	rng := rand.New(rand.NewSource(41))
	f := func() bool {
		g := NewGrid(desc)
		for k := range g.Data {
			g.Data[k] = rng.NormFloat64()
		}
		var buf bytes.Buffer
		if _, err := g.WriteSnapshot(&buf, SnapCompressed); err != nil {
			return false
		}
		back, _, err := ReadSnapshotGrid(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		for k := range g.Data {
			if math.Float64bits(g.Data[k]) != math.Float64bits(back.Data[k]) {
				return false
			}
		}
		// Idempotence: re-serializing the decoded grid reproduces the
		// bytes exactly.
		var again bytes.Buffer
		if _, err := back.WriteSnapshot(&again, SnapCompressed); err != nil {
			return false
		}
		return bytes.Equal(buf.Bytes(), again.Bytes())
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickV1ToV2Migration: decoding any v1 artifact and re-encoding it
// as v2 preserves every coefficient bit-exactly.
func TestQuickV1ToV2Migration(t *testing.T) {
	desc := MustDescriptor(2, 5)
	rng := rand.New(rand.NewSource(42))
	f := func() bool {
		g := NewGrid(desc)
		for k := range g.Data {
			g.Data[k] = rng.NormFloat64()
		}
		var v1 bytes.Buffer
		if _, err := g.WriteToV1(&v1); err != nil {
			return false
		}
		mid, err := ReadGrid(bytes.NewReader(v1.Bytes()))
		if err != nil {
			return false
		}
		var v2 bytes.Buffer
		if _, err := mid.WriteSnapshot(&v2, 0); err != nil {
			return false
		}
		back, _, err := ReadSnapshotGrid(bytes.NewReader(v2.Bytes()))
		if err != nil {
			return false
		}
		for k := range g.Data {
			if math.Float64bits(g.Data[k]) != math.Float64bits(back.Data[k]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// --- mmap -------------------------------------------------------------

func writeSnapshotFile(t testing.TB, dim, level int, flags SnapshotFlags) (string, *Grid) {
	t.Helper()
	g := goldenGrid(t, dim, level)
	path := filepath.Join(t.TempDir(), "snap.sg")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.WriteSnapshot(f, flags); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, g
}

func TestMapGrid(t *testing.T) {
	if !mmapSupported || !hostLittleEndian {
		t.Skip("no mmap snapshot support on this platform")
	}
	path, want := writeSnapshotFile(t, 3, 4, SnapCompressed)
	before := ActiveMappings()
	s, err := MapGrid(path)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Mapped() {
		t.Fatal("MapGrid returned an unmapped snapshot")
	}
	if got := ActiveMappings(); got != before+1 {
		t.Errorf("ActiveMappings = %d want %d", got, before+1)
	}
	g := s.Grid()
	if g == nil {
		t.Fatal("interior snapshot has no grid view")
	}
	for k := range want.Data {
		if math.Float64bits(g.Data[k]) != math.Float64bits(want.Data[k]) {
			t.Fatalf("mapped value %d differs", k)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if got := ActiveMappings(); got != before {
		t.Errorf("ActiveMappings after Close = %d want %d", got, before)
	}
}

func TestMapGridRejectsCorruptionWithoutLeak(t *testing.T) {
	if !mmapSupported || !hostLittleEndian {
		t.Skip("no mmap snapshot support on this platform")
	}
	path, _ := writeSnapshotFile(t, 2, 3, 0)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[SnapshotAlign+3] ^= 0x40 // payload bit flip
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	before := ActiveMappings()
	if _, err := MapGrid(path); !errors.Is(err, ErrChecksum) {
		t.Fatalf("MapGrid on corrupt payload: %v", err)
	}
	if got := ActiveMappings(); got != before {
		t.Errorf("corrupt-payload MapGrid leaked a mapping: %d -> %d", before, got)
	}
	// Corruption must NOT fall back to the copying reader.
	if _, err := OpenSnapshot(path); !errors.Is(err, ErrChecksum) {
		t.Fatalf("OpenSnapshot on corrupt payload: %v", err)
	}
}

func TestOpenSnapshotFallsBackOnUnalignedOffset(t *testing.T) {
	// Handcraft a v2 file whose payload offset is 52 (valid but not
	// 8-byte aligned): MapGrid must refuse with ErrNotMappable and
	// OpenSnapshot must decode it through the copying reader.
	g := goldenGrid(t, 2, 3)
	var payload bytes.Buffer
	if _, err := writeFloats(&payload, g.Data); err != nil {
		t.Fatal(err)
	}
	var hdr [SnapshotHeaderSize]byte
	copy(hdr[0:4], SnapshotMagic)
	binary.LittleEndian.PutUint32(hdr[4:], SnapshotVersion)
	binary.LittleEndian.PutUint32(hdr[8:], 2)
	binary.LittleEndian.PutUint32(hdr[12:], 3)
	binary.LittleEndian.PutUint32(hdr[16:], 0)
	binary.LittleEndian.PutUint64(hdr[24:], uint64(len(g.Data)))
	binary.LittleEndian.PutUint64(hdr[32:], 52)
	binary.LittleEndian.PutUint32(hdr[40:], payloadCRC(g.Data))
	restampHeaderCRC(hdr[:])
	raw := append(hdr[:], 0, 0, 0, 0) // 4 padding bytes to offset 52
	raw = append(raw, payload.Bytes()...)

	path := filepath.Join(t.TempDir(), "unaligned.sg")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if mmapSupported && hostLittleEndian {
		if _, err := MapGrid(path); !errors.Is(err, ErrNotMappable) {
			t.Fatalf("MapGrid on unaligned payload: %v", err)
		}
	}
	s, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Mapped() {
		t.Error("unaligned snapshot must not be mapped")
	}
	for k := range g.Data {
		if math.Float64bits(s.Grid().Data[k]) != math.Float64bits(g.Data[k]) {
			t.Fatalf("fallback value %d differs", k)
		}
	}
}

func TestSnapshotBoundaryPayloadHasNoGridView(t *testing.T) {
	// A boundary-flagged payload round-trips as raw data; the interior
	// Grid view must be absent and ReadSnapshotGrid must refuse it.
	data := []float64{1, 2, 3, 4, 5}
	var buf bytes.Buffer
	if _, err := EncodeSnapshot(&buf, 1, 1, SnapBoundary|SnapCompressed, data); err != nil {
		t.Fatal(err)
	}
	info, got, err := DecodeSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !info.Boundary() || !info.Compressed() {
		t.Errorf("flags = %#x", info.Flags)
	}
	for k := range data {
		if got[k] != data[k] {
			t.Fatalf("boundary payload value %d differs", k)
		}
	}
	if _, _, err := ReadSnapshotGrid(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("ReadSnapshotGrid accepted a boundary snapshot")
	}
	path := filepath.Join(t.TempDir(), "b.sg")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Grid() != nil {
		t.Error("boundary snapshot must not expose an interior grid view")
	}
	if len(s.Data()) != len(data) {
		t.Errorf("boundary payload length %d want %d", len(s.Data()), len(data))
	}
}
