package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// randPoint draws a uniformly random valid grid point of desc.
func randPoint(rng *rand.Rand, desc *Descriptor, l, i []int32) {
	idx := rng.Int63n(desc.Size())
	desc.Idx2GP(idx, l, i)
}

func TestQuickIndexLandsInItsGroup(t *testing.T) {
	desc := MustDescriptor(6, 7)
	rng := rand.New(rand.NewSource(99))
	l := make([]int32, 6)
	i := make([]int32, 6)
	f := func() bool {
		randPoint(rng, desc, l, i)
		g := LevelSum(l)
		idx := desc.GP2Idx(l, i)
		return idx >= desc.GroupStart(g) && idx < desc.GroupStart(g+1)
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestQuickNextPreservesSumAndIncrementsRank(t *testing.T) {
	desc := MustDescriptor(5, 9)
	rng := rand.New(rand.NewSource(100))
	f := func() bool {
		g := rng.Intn(8)
		l := make([]int32, 5)
		s := rng.Int63n(desc.Subspaces(g))
		desc.SubspaceFromIndex(g, s, l)
		rank := desc.SubspaceIndex(l)
		if rank != s {
			return false
		}
		if !Next(l) {
			return IsLast(l)
		}
		return LevelSum(l) == g && desc.SubspaceIndex(l) == rank+1
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestQuickPointAtRecoversOwnIndex(t *testing.T) {
	// Evaluating PointAt at a grid point's own coordinates within its
	// own subspace must return that point.
	desc := MustDescriptor(4, 7)
	rng := rand.New(rand.NewSource(101))
	l := make([]int32, 4)
	i := make([]int32, 4)
	x := make([]float64, 4)
	got := make([]int32, 4)
	f := func() bool {
		randPoint(rng, desc, l, i)
		Coords(l, i, x)
		PointAt(l, x, got)
		for t2 := range i {
			if got[t2] != i[t2] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestQuickParentChildDuality(t *testing.T) {
	// For any point and dimension with level > 0, following the 1d
	// parent and then the opposite child returns to the point.
	desc := MustDescriptor(5, 7)
	rng := rand.New(rand.NewSource(102))
	l := make([]int32, 5)
	i := make([]int32, 5)
	f := func() bool {
		randPoint(rng, desc, l, i)
		for t2 := range l {
			if l[t2] == 0 {
				continue
			}
			for _, dir := range []ParentDir{LeftParent, RightParent} {
				pl, pi, ok := Parent1D(l[t2], i[t2], dir)
				if !ok {
					continue
				}
				// The point is in the parent's subtree on the opposite
				// side: descending children toward the point recovers it.
				cl, ci := pl, pi
				for cl < l[t2] {
					if Coord(l[t2], i[t2]) < Coord(cl, ci) {
						cl, ci = Child1D(cl, ci, LeftParent)
					} else {
						cl, ci = Child1D(cl, ci, RightParent)
					}
				}
				if cl != l[t2] || ci != i[t2] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickSerializationIdempotent(t *testing.T) {
	// Serialize → deserialize → serialize yields identical bytes.
	desc := MustDescriptor(3, 4)
	rng := rand.New(rand.NewSource(103))
	f := func() bool {
		g := NewGrid(desc)
		for k := range g.Data {
			g.Data[k] = rng.NormFloat64()
		}
		var a, b bytes.Buffer
		if _, err := g.WriteTo(&a); err != nil {
			return false
		}
		back, err := ReadGrid(bytes.NewReader(a.Bytes()))
		if err != nil {
			return false
		}
		if _, err := back.WriteTo(&b); err != nil {
			return false
		}
		return bytes.Equal(a.Bytes(), b.Bytes())
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
