package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
)

// Lossy compression on top of the structural one: hierarchical
// surpluses decay rapidly for smooth functions (the basis is a
// multilevel splitting), so dropping coefficients below a threshold
// shrinks the stored set further at a controlled interpolation error —
// the classic surplus-truncation scheme. The truncated grid is stored
// as (flat index, value) pairs; evaluation and dehierarchization
// rehydrate it into the dense compact layout.

// Threshold zeroes every coefficient with |α| ≤ eps and returns the
// number of surviving nonzeros. The L∞ interpolation error introduced
// is bounded by the sum of the dropped |α| (each basis function has
// max 1).
func (g *Grid) Threshold(eps float64) (kept int64, errorBound float64) {
	for k, v := range g.Data {
		a := math.Abs(v)
		if a <= eps {
			if v != 0 {
				errorBound += a
			}
			g.Data[k] = 0
			continue
		}
		kept++
	}
	return kept, errorBound
}

// Nonzeros returns the number of nonzero coefficients.
func (g *Grid) Nonzeros() int64 {
	var n int64
	for _, v := range g.Data {
		if v != 0 {
			n++
		}
	}
	return n
}

// Sparse container:
//
//	magic "SGS1" | uint32 dim | uint32 level | uint64 nnz |
//	nnz × (uint64 index, float64 value), indices ascending
const sparseMagic = "SGS1"

// WriteSparse serializes only the nonzero coefficients. For thresholded
// grids this is the compact storage format of the pipeline; the
// break-even with the dense format is at 50% density (16 vs 8 bytes per
// entry).
func (g *Grid) WriteSparse(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var n int64
	m, err := bw.WriteString(sparseMagic)
	n += int64(m)
	if err != nil {
		return n, err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(g.desc.dim))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(g.desc.level))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(g.Nonzeros()))
	m, err = bw.Write(hdr[:])
	n += int64(m)
	if err != nil {
		return n, err
	}
	var rec [16]byte
	for k, v := range g.Data {
		if v == 0 {
			continue
		}
		binary.LittleEndian.PutUint64(rec[0:], uint64(k))
		binary.LittleEndian.PutUint64(rec[8:], math.Float64bits(v))
		m, err = bw.Write(rec[:])
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadSparse deserializes a grid written by WriteSparse into a dense
// compact grid (absent coefficients are zero).
func ReadSparse(r io.Reader) (*Grid, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading sparse magic: %w", err)
	}
	if string(magic) != sparseMagic {
		return nil, fmt.Errorf("core: bad sparse magic %q", magic)
	}
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("core: reading sparse header: %w", err)
	}
	desc, err := NewDescriptor(int(binary.LittleEndian.Uint32(hdr[0:])), int(binary.LittleEndian.Uint32(hdr[4:])))
	if err != nil {
		return nil, err
	}
	// The dense rehydration target must fit under the decode cap before
	// anything is allocated — a dim/level pair can be individually valid
	// yet describe a grid too large to materialize (untrusted input must
	// never reach makeslice with a hostile size).
	if desc.Size() > MaxDecodeBytes/8 {
		return nil, corruptf(sparseMagic, nil, "dense form of %d values (%d bytes) exceeds the %d-byte decode cap", desc.Size(), desc.Size()*8, MaxDecodeBytes)
	}
	nnz := binary.LittleEndian.Uint64(hdr[8:])
	if nnz > uint64(desc.Size()) {
		return nil, fmt.Errorf("core: sparse container claims %d nonzeros for a %d-point grid", nnz, desc.Size())
	}
	g := NewGrid(desc)
	var rec [16]byte
	prev := int64(-1)
	for k := uint64(0); k < nnz; k++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("core: reading sparse record %d: %w", k, err)
		}
		idx := int64(binary.LittleEndian.Uint64(rec[0:]))
		if idx <= prev || idx >= desc.Size() {
			return nil, fmt.Errorf("core: sparse record %d has invalid index %d", k, idx)
		}
		prev = idx
		g.Data[idx] = math.Float64frombits(binary.LittleEndian.Uint64(rec[8:]))
	}
	return g, nil
}

// TopCoefficients returns the flat indices of the k largest-|α|
// coefficients (diagnostics for adaptive thresholding choices).
func (g *Grid) TopCoefficients(k int) []int64 {
	if k <= 0 {
		return nil
	}
	idx := make([]int64, len(g.Data))
	for j := range idx {
		idx[j] = int64(j)
	}
	sort.Slice(idx, func(a, b int) bool {
		va, vb := math.Abs(g.Data[idx[a]]), math.Abs(g.Data[idx[b]])
		if va != vb {
			return va > vb
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
