package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Grid is the compact sparse grid: a descriptor plus one flat coefficient
// array ordered by gp2idx. Before hierarchization Data holds nodal values
// (function samples at the grid points); afterwards it holds hierarchical
// coefficients (surpluses). Nothing else is stored — this is the paper's
// minimal-memory representation.
type Grid struct {
	desc *Descriptor
	Data []float64
}

// NewGrid allocates a zero-initialized grid for the descriptor.
func NewGrid(desc *Descriptor) *Grid {
	return &Grid{desc: desc, Data: make([]float64, desc.Size())}
}

// GridFromData wraps an existing coefficient slice as a grid without
// copying; the caller keeps ownership of the storage. The boundary
// extension uses this to view the face sub-grids embedded in one shared
// array.
func GridFromData(desc *Descriptor, data []float64) (*Grid, error) {
	if int64(len(data)) != desc.Size() {
		return nil, fmt.Errorf("core: data holds %d values, descriptor needs %d", len(data), desc.Size())
	}
	return &Grid{desc: desc, Data: data}, nil
}

// Desc returns the grid's descriptor.
func (g *Grid) Desc() *Descriptor { return g.desc }

// Dim returns the dimensionality.
func (g *Grid) Dim() int { return g.desc.dim }

// Level returns the refinement level.
func (g *Grid) Level() int { return g.desc.level }

// Size returns the number of grid points.
func (g *Grid) Size() int64 { return g.desc.Size() }

// At returns the coefficient stored for grid point (l, i).
func (g *Grid) At(l, i []int32) float64 { return g.Data[g.desc.GP2Idx(l, i)] }

// SetAt stores v for grid point (l, i).
func (g *Grid) SetAt(l, i []int32, v float64) { g.Data[g.desc.GP2Idx(l, i)] = v }

// Fill samples f at every grid point, storing nodal values. It walks
// subspaces in storage order so writes are sequential.
func (g *Grid) Fill(f func(x []float64) float64) {
	d := g.desc
	l := make([]int32, d.dim)
	i := make([]int32, d.dim)
	x := make([]float64, d.dim)
	idx := int64(0)
	for grp := 0; grp < d.level; grp++ {
		First(l, grp)
		for {
			n := int64(1) << uint(grp)
			for p := int64(0); p < n; p++ {
				DecodeIndex1(p, l, i)
				Coords(l, i, x)
				g.Data[idx] = f(x)
				idx++
			}
			if !Next(l) {
				break
			}
		}
	}
}

// Clone returns a deep copy of the grid.
func (g *Grid) Clone() *Grid {
	c := &Grid{desc: g.desc, Data: make([]float64, len(g.Data))}
	copy(c.Data, g.Data)
	return c
}

// MemoryBytes returns the memory footprint of the coefficient storage:
// 8 bytes per point, nothing else (keys and structure are implicit in
// gp2idx). Descriptor tables are excluded: they are O(d·n) and shared.
func (g *Grid) MemoryBytes() int64 { return int64(len(g.Data)) * 8 }

// Serialization. Two container generations exist:
//
//	v1 "SGC1": magic | uint32 dim | uint32 level | uint64 count |
//	           count × float64, all little-endian. Legacy; copy-only.
//	v2 "SGC2": checksummed snapshot with a page-aligned payload that can
//	           be memory-mapped in place — see snapshot.go.
//
// Writers emit v2; ReadGrid sniffs the magic and reads either, so v1
// artifacts remain loadable forever.

const gridMagic = "SGC1"

// WriteTo serializes the grid in the current (v2 snapshot) container
// with no flags set. It implements io.WriterTo. Callers that need to
// record payload semantics (compressed, boundary) use WriteSnapshot.
func (g *Grid) WriteTo(w io.Writer) (int64, error) {
	return g.WriteSnapshot(w, 0)
}

// WriteSnapshot serializes the grid as a v2 snapshot with the given
// flags (SnapBoundary is the boundary layer's business and rejected
// here).
func (g *Grid) WriteSnapshot(w io.Writer, flags SnapshotFlags) (int64, error) {
	if flags&SnapBoundary != 0 {
		return 0, fmt.Errorf("core: an interior grid cannot carry the boundary snapshot flag")
	}
	return EncodeSnapshot(w, g.desc.dim, g.desc.level, flags, g.Data)
}

// WriteToV1 serializes the grid in the legacy v1 container, for
// interoperability with consumers that predate SGC2.
func (g *Grid) WriteToV1(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var n int64
	m, err := bw.WriteString(gridMagic)
	n += int64(m)
	if err != nil {
		return n, err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(g.desc.dim))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(g.desc.level))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(g.Data)))
	m, err = bw.Write(hdr[:])
	n += int64(m)
	if err != nil {
		return n, err
	}
	var buf [8]byte
	for _, v := range g.Data {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		m, err = bw.Write(buf[:])
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadGrid deserializes a grid written by WriteTo or WriteToV1,
// sniffing the container magic. Headers are untrusted: the declared
// count must match the descriptor exactly and the total payload must
// fit under MaxDecodeBytes before anything is allocated, and the
// allocation itself grows only as payload bytes actually arrive — a
// 29-byte header claiming 2^60 values costs nothing.
func ReadGrid(r io.Reader) (*Grid, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic, err := br.Peek(4)
	if err != nil {
		return nil, corruptf(gridMagic, noEOF(err), "reading grid magic")
	}
	if string(magic) == SnapshotMagic {
		g, _, err := ReadSnapshotGrid(br)
		return g, err
	}
	return readGridV1(br)
}

// readGridV1 reads the legacy SGC1 container (no checksum, copy-only).
func readGridV1(br *bufio.Reader) (*Grid, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading grid magic: %w", err)
	}
	if string(magic) != gridMagic {
		return nil, fmt.Errorf("core: bad grid magic %q", magic)
	}
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("core: reading grid header: %w", err)
	}
	dim := int(binary.LittleEndian.Uint32(hdr[0:]))
	level := int(binary.LittleEndian.Uint32(hdr[4:]))
	count := binary.LittleEndian.Uint64(hdr[8:])
	desc, err := NewDescriptor(dim, level)
	if err != nil {
		return nil, err
	}
	if count != uint64(desc.Size()) {
		return nil, corruptf(gridMagic, nil, "grid payload holds %d values, descriptor expects %d", count, desc.Size())
	}
	if desc.Size() > MaxDecodeBytes/8 {
		return nil, corruptf(gridMagic, nil, "payload of %d values (%d bytes) exceeds the %d-byte decode cap", desc.Size(), desc.Size()*8, MaxDecodeBytes)
	}
	data, _, err := readFloats(br, desc.Size(), false)
	if err != nil {
		return nil, corruptf(gridMagic, noEOF(err), "reading %d grid values", desc.Size())
	}
	return GridFromData(desc, data)
}
