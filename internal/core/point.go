package core

import (
	"fmt"
	"math/bits"
)

// Grid point geometry and the hierarchical parent/child relations used by
// hierarchization (paper Sec. 3, Fig. 5 right).
//
// In one dimension (0-based level l, odd index i) the point sits at
// x = i / 2^(l+1). Its hierarchical children on level l+1 are 2i-1 and
// 2i+1; its left/right hierarchical ancestors are found by stripping the
// trailing zero bits of i∓1 (the nearest coarser grid line on that side).
// The domain boundary (x = 0 or 1) carries value 0 in the zero-boundary
// setting and acts as the parent of the outermost points.

// Coord returns the 1d coordinate of (level, index): index / 2^(level+1).
func Coord(level, index int32) float64 {
	return float64(index) / float64(int64(1)<<uint32(level+1))
}

// Coords fills x with the coordinates of the grid point (l, i).
func Coords(l, i []int32, x []float64) {
	for t := range l {
		x[t] = Coord(l[t], i[t])
	}
}

// ParentDir selects the left or right hierarchical ancestor.
type ParentDir int

// Parent directions.
const (
	LeftParent  ParentDir = -1
	RightParent ParentDir = +1
)

// Parent1D returns the level and index of the hierarchical ancestor of
// (level, index) on the given side, and ok=false if that side runs into
// the domain boundary (x = 0 or x = 1), where the zero-boundary value 0
// applies.
func Parent1D(level, index int32, dir ParentDir) (plevel, pindex int32, ok bool) {
	num := index + int32(dir) // numerator over 2^(level+1); always even
	if num == 0 || num == int32(1)<<uint32(level+1) {
		return 0, 0, false
	}
	k := int32(bits.TrailingZeros32(uint32(num)))
	return level - k, num >> uint32(k), true
}

// Child1D returns the hierarchical child of (level, index) on the given
// side: (level+1, 2·index + dir).
func Child1D(level, index int32, dir ParentDir) (clevel, cindex int32) {
	return level + 1, 2*index + int32(dir)
}

// ParentIdx returns the flat index of the hierarchical ancestor of the
// point (l, i) in dimension t on the given side, and ok=false when the
// ancestor is the domain boundary. l and i are restored before returning.
func (d *Descriptor) ParentIdx(l, i []int32, t int, dir ParentDir) (idx int64, ok bool) {
	pl, pi, ok := Parent1D(l[t], i[t], dir)
	if !ok {
		return 0, false
	}
	sl, si := l[t], i[t]
	l[t], i[t] = pl, pi
	idx = d.GP2Idx(l, i)
	l[t], i[t] = sl, si
	return idx, true
}

// Contains reports whether (l, i) is a valid point of this grid:
// |l|₁ < Level() and every i[t] odd within its level range.
func (d *Descriptor) Contains(l, i []int32) bool {
	if len(l) != d.dim || len(i) != d.dim {
		return false
	}
	sum := 0
	for t := 0; t < d.dim; t++ {
		if l[t] < 0 {
			return false
		}
		sum += int(l[t])
		if i[t]&1 == 0 || i[t] < 1 || int64(i[t]) >= int64(1)<<uint32(l[t]+1) {
			return false
		}
	}
	return sum < d.level
}

// CellIndex returns the index of the level-`level` cell containing x:
// ⌊x·2^level⌋ clamped into [0, 2^level−1]. On 1d level l the supports of
// the 2^l basis functions tile [0,1] in cells of width 2^−l; the clamp
// assigns x < 0 to the first cell and x ≥ 1 (including x = 1.0, whose
// unclamped cell index would be 2^l) to the last one. This is the single
// clamp-to-cell rule shared by PointAt, the evaluation table builder and
// the gradient walk.
func CellIndex(level int32, x float64) int64 {
	cells := int64(1) << uint32(level)
	if x <= 0 {
		// Also catches the float→int64 conversion overflow of huge
		// negative x, which is implementation-defined in Go.
		return 0
	}
	if x >= 1 {
		return cells - 1
	}
	c := int64(x * float64(cells))
	if c >= cells {
		// x just below 1 can still round up to 2^level.
		return cells - 1
	}
	return c
}

// PointAt locates the grid point of subspace l whose basis-function
// support contains the coordinate vector x ∈ [0,1)^d, writing the odd
// indices into i. Coordinates are clamped into [0,1] per CellIndex, with
// x = 1 assigned to the last cell.
func PointAt(l []int32, x []float64, i []int32) {
	for t := range l {
		i[t] = int32(CellIndex(l[t], x[t])<<1 | 1)
	}
}

// FormatPoint renders (l, i) with its coordinates, for diagnostics.
func FormatPoint(l, i []int32) string {
	x := make([]float64, len(l))
	Coords(l, i, x)
	return fmt.Sprintf("l=%v i=%v x=%v", l, i, x)
}
