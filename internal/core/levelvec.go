package core

// Level-vector enumeration (paper Sec. 4.2). The recursive scheme
// enumerate(d, n) (Alg. 3) induces a total order on the set
// L^d_n = { l ∈ N₀^d : |l|₁ = n }; the iterative successor function Next
// (Alg. 4) walks that order on the GPU and in the iterative evaluation
// algorithm, and SubspaceIndex (Eq. 4) ranks a vector within it in O(d).

// First overwrites l with the first level vector of level group n in the
// enumeration order: (n, 0, ..., 0).
func First(l []int32, n int) {
	l[0] = int32(n)
	for t := 1; t < len(l); t++ {
		l[t] = 0
	}
}

// Last overwrites l with the last level vector of level group n:
// (0, ..., 0, n).
func Last(l []int32, n int) {
	for t := 0; t < len(l)-1; t++ {
		l[t] = 0
	}
	l[len(l)-1] = int32(n)
}

// IsLast reports whether l is the final vector of its level group,
// i.e. all mass sits in the last component.
func IsLast(l []int32) bool {
	for t := 0; t < len(l)-1; t++ {
		if l[t] != 0 {
			return false
		}
	}
	return true
}

// Next advances l in place to its successor within the level group
// (paper Alg. 4) and reports whether it did. It returns false when l is
// the last vector of the group (including the d = 1 and |l|₁ = 0 cases),
// leaving l unchanged.
//
// The step: find the smallest t with l[t] ≠ 0 — the first t+1 components
// then read last(t+1, l[t]) — zero it, restart the prefix at
// first(t+1, l[t]-1), and carry one unit into component t+1.
func Next(l []int32) bool {
	d := len(l)
	t := 0
	for t < d && l[t] == 0 {
		t++
	}
	if t >= d-1 {
		// Either the zero vector (t == d) or only the last component is
		// nonzero: this is last(d, n).
		return false
	}
	m := l[t]
	l[t] = 0
	l[0] = m - 1 // after l[t] = 0 so that t == 0 is handled by ordering
	l[t+1]++
	return true
}

// SubspaceIndex ranks l within its level group under the enumeration
// order (paper Eq. 4):
//
//	subspaceidx(l) = Σ_{t=1}^{d-1} [ C(t+Σ_{j≤t} l_j, t) − C(t+Σ_{j<t} l_j, t) ]
//
// It is 0 for First and Subspaces(g)-1 for Last, and increments by exactly
// one along Next (the paper's consecutive-index lemma).
func (d *Descriptor) SubspaceIndex(l []int32) int64 {
	sum := int(l[0])
	var idx int64
	for t := 1; t < d.dim; t++ {
		idx -= d.binom[t][sum]
		sum += int(l[t])
		idx += d.binom[t][sum]
	}
	return idx
}

// SubspaceFromIndex inverts SubspaceIndex: it fills l with the level
// vector of level group g whose rank in the enumeration order is s.
// It is the combinatorial inverse of the order induced by Alg. 3: the
// block of vectors sharing l[t] = k (scanning components from the last
// one down) has size C(t-1 + n-k, t-1) where n is the remaining level
// budget, so each component is recovered by peeling cumulative block
// sizes off the rank.
func (d *Descriptor) SubspaceFromIndex(g int, s int64, l []int32) {
	n := g
	rem := s
	for t := d.dim - 1; t >= 1; t-- {
		k := 0
		for {
			block := d.binom[t-1][n-k] // |enumerate(t, n-k)| = C(t-1+n-k, t-1)
			if rem < block {
				break
			}
			rem -= block
			k++
		}
		l[t] = int32(k)
		n -= k
	}
	l[0] = int32(n)
}

// LevelSum returns |l|₁.
func LevelSum(l []int32) int {
	s := 0
	for _, v := range l {
		s += int(v)
	}
	return s
}
