//go:build linux

package core

import (
	"os"
	"syscall"
)

// mmapSupported gates the zero-copy snapshot path; on other platforms
// OpenSnapshot silently takes the copying reader instead.
const mmapSupported = true

func mmapFile(f *os.File, n int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, n, syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(b []byte) error { return syscall.Munmap(b) }
