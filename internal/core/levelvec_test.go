package core

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestFirstLast(t *testing.T) {
	l := make([]int32, 4)
	First(l, 5)
	if want := []int32{5, 0, 0, 0}; !reflect.DeepEqual(l, want) {
		t.Errorf("First = %v want %v", l, want)
	}
	Last(l, 5)
	if want := []int32{0, 0, 0, 5}; !reflect.DeepEqual(l, want) {
		t.Errorf("Last = %v want %v", l, want)
	}
	if !IsLast(l) {
		t.Error("IsLast(Last) = false")
	}
	First(l, 5)
	if IsLast(l) {
		t.Error("IsLast(First) = true for d>1, n>0")
	}
}

func TestNextEnumeratesAllVectors(t *testing.T) {
	// Walking first..last via Next must produce every l ∈ N₀^d with
	// |l|₁ = n exactly once, C(d-1+n, d-1) vectors in total.
	for _, c := range []struct{ d, n int }{{1, 0}, {1, 4}, {2, 3}, {3, 5}, {4, 4}, {6, 3}} {
		seen := map[string]bool{}
		l := make([]int32, c.d)
		First(l, c.n)
		count := 0
		for {
			if LevelSum(l) != c.n {
				t.Fatalf("d=%d n=%d: Next produced %v with wrong sum", c.d, c.n, l)
			}
			key := string(levelKey(l))
			if seen[key] {
				t.Fatalf("d=%d n=%d: Next repeated %v", c.d, c.n, l)
			}
			seen[key] = true
			count++
			if !Next(l) {
				break
			}
		}
		want, _ := safeBinomial(c.d-1+c.n, c.d-1)
		if int64(count) != want {
			t.Errorf("d=%d n=%d: Next enumerated %d vectors, want %d", c.d, c.n, count, want)
		}
		if !IsLast(l) {
			t.Errorf("d=%d n=%d: enumeration did not end at Last: %v", c.d, c.n, l)
		}
	}
}

func levelKey(l []int32) []byte {
	b := make([]byte, len(l))
	for t, v := range l {
		b[t] = byte(v)
	}
	return b
}

func TestNextMatchesRecursiveEnumeration(t *testing.T) {
	// The iterative Next (Alg. 4) must reproduce the order of the
	// recursive enumerate(d, n) (Alg. 3) exactly.
	for _, c := range []struct{ d, n int }{{2, 4}, {3, 4}, {4, 3}, {5, 5}} {
		want := enumerateRecursive(c.d, c.n)
		l := make([]int32, c.d)
		First(l, c.n)
		for k, w := range want {
			if !reflect.DeepEqual(l, w) {
				t.Fatalf("d=%d n=%d: position %d: Next gave %v, recursion gives %v", c.d, c.n, k, l, w)
			}
			advanced := Next(l)
			if advanced != (k != len(want)-1) {
				t.Fatalf("d=%d n=%d: Next at position %d returned %v", c.d, c.n, k, advanced)
			}
		}
	}
}

// enumerateRecursive is a direct transcription of the paper's Alg. 3.
func enumerateRecursive(d, n int) [][]int32 {
	if d == 1 {
		return [][]int32{{int32(n)}}
	}
	var out [][]int32
	for k := 0; k <= n; k++ {
		for _, pre := range enumerateRecursive(d-1, n-k) {
			v := make([]int32, d)
			copy(v, pre)
			v[d-1] = int32(k)
			out = append(out, v)
		}
	}
	return out
}

func TestSubspaceIndexConsecutive(t *testing.T) {
	// The paper's lemma: subspaceidx(next(l)) - subspaceidx(l) = 1, with
	// subspaceidx(first) = 0 and subspaceidx(last) = S-1.
	for _, c := range []struct{ d, n int }{{2, 6}, {3, 5}, {5, 4}, {8, 3}, {10, 5}} {
		desc := MustDescriptor(c.d, c.n+1)
		l := make([]int32, c.d)
		First(l, c.n)
		var expect int64
		for {
			if got := desc.SubspaceIndex(l); got != expect {
				t.Fatalf("d=%d n=%d: SubspaceIndex(%v)=%d want %d", c.d, c.n, l, got, expect)
			}
			expect++
			if !Next(l) {
				break
			}
		}
		if expect != desc.Subspaces(c.n) {
			t.Errorf("d=%d n=%d: enumerated %d subspaces, descriptor says %d", c.d, c.n, expect, desc.Subspaces(c.n))
		}
	}
}

func TestSubspaceFromIndexRoundTrip(t *testing.T) {
	for _, c := range []struct{ d, n int }{{1, 4}, {2, 6}, {3, 5}, {6, 4}, {10, 4}} {
		desc := MustDescriptor(c.d, c.n+1)
		l := make([]int32, c.d)
		got := make([]int32, c.d)
		for g := 0; g <= c.n; g++ {
			First(l, g)
			var s int64
			for {
				desc.SubspaceFromIndex(g, s, got)
				if !reflect.DeepEqual(got, l) {
					t.Fatalf("d=%d g=%d: SubspaceFromIndex(%d)=%v want %v", c.d, g, s, got, l)
				}
				s++
				if !Next(l) {
					break
				}
			}
		}
	}
}

func TestSubspaceIndexQuick(t *testing.T) {
	// Property: for random valid level vectors, SubspaceFromIndex inverts
	// SubspaceIndex.
	desc := MustDescriptor(6, 9)
	f := func(raw [6]uint8) bool {
		l := make([]int32, 6)
		budget := 8
		for t := range l {
			v := int(raw[t]) % (budget + 1)
			l[t] = int32(v)
			budget -= v
		}
		g := LevelSum(l)
		s := desc.SubspaceIndex(l)
		back := make([]int32, 6)
		desc.SubspaceFromIndex(g, s, back)
		return reflect.DeepEqual(back, l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestNextDegenerateCases(t *testing.T) {
	// d = 1: every group has exactly one subspace.
	l := []int32{7}
	if Next(l) {
		t.Error("Next on d=1 must return false")
	}
	if l[0] != 7 {
		t.Error("Next must leave l unchanged when returning false")
	}
	// n = 0: the zero vector is first and last.
	z := []int32{0, 0, 0}
	if Next(z) {
		t.Error("Next on zero vector must return false")
	}
	// Carry out of position 0: (1,0) -> (0,1) -> stop.
	v := []int32{1, 0}
	if !Next(v) || !reflect.DeepEqual(v, []int32{0, 1}) {
		t.Errorf("Next((1,0)) = %v want (0,1)", v)
	}
	if Next(v) {
		t.Error("Next((0,1)) must return false")
	}
}

func TestLevelSum(t *testing.T) {
	if LevelSum([]int32{1, 2, 3}) != 6 {
		t.Error("LevelSum failed")
	}
	if LevelSum(nil) != 0 {
		t.Error("LevelSum(nil) != 0")
	}
}
