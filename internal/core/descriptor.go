// Package core implements the compact data structure for regular sparse
// grids from Murarasu et al., "Compact Data Structure and Scalable
// Algorithms for the Sparse Grid Technique" (PPoPP 2011).
//
// The central object is a bijection gp2idx between the grid points of a
// regular d-dimensional sparse grid of refinement level n and the integers
// 0..N-1, which lets all hierarchical coefficients live in a single flat
// []float64 with no structural overhead (no keys, no pointers).
//
// Conventions (paper, Sec. 4): levels are 0-based. A level vector
// l ∈ N₀^d with |l|₁ = g identifies a subspace holding 2^g points; the 1d
// index i_t is odd in [1, 2^(l_t+1)-1]; the coordinate in dimension t is
// x_t = i_t / 2^(l_t+1). A grid of refinement level n contains the level
// groups g = 0..n-1. Functions are zero on the domain boundary; package
// boundary lifts that restriction.
package core

import (
	"fmt"
	"math"
	"math/bits"
)

// MaxDim is the largest supported dimensionality. The limit is generous:
// the paper evaluates d ≤ 10 and the combinatorial sizes explode far
// before 64 dimensions.
const MaxDim = 64

// MaxLevel is the largest supported refinement level. Index arithmetic
// uses int64 throughout; level 50 in one dimension alone would already
// exceed 2^50 points.
const MaxLevel = 50

// MaxIndexBits bounds the bit width of the composite index arithmetic.
// GP2Idx/EncodeIndex1 accumulate index1 by left-shifting a total of
// |l|₁ ≤ Level()-1 bits and GroupStart shifts subspace counts by the
// same amount; once sum(l) exceeds 62 bits the shifts silently wrap in
// int64 and corrupt indices. NewDescriptor rejects such shapes with an
// *OverflowError instead of letting the maps go quietly wrong.
const MaxIndexBits = 62

// An OverflowError reports a grid shape whose index arithmetic would
// overflow int64: the binomial tables, a level group's point count, or
// the total grid size exceeds what the composite index map can address.
// It is returned (wrapped) by NewDescriptor; callers detect it with
// errors.As.
type OverflowError struct {
	Dim    int    // requested dimensionality
	Level  int    // requested refinement level
	Detail string // which quantity overflowed
}

func (e *OverflowError) Error() string {
	return fmt.Sprintf("core: grid shape d=%d level=%d overflows int64 index arithmetic: %s",
		e.Dim, e.Level, e.Detail)
}

// A Descriptor fixes the shape of a regular sparse grid (dimensionality and
// refinement level) and precomputes the combinatorial tables the index maps
// need: the binomial lookup matrix binmat (paper Sec. 4.2) and per-group
// point counts and offsets. A Descriptor is immutable and safe for
// concurrent use.
type Descriptor struct {
	dim   int
	level int

	// binom[t][s] = C(t+s, t). t ranges over 0..dim, s over 0..level+dim.
	// This is the paper's binmat; it is tiny (n·d entries) and hot, which
	// is why the GPU implementation stages it in constant memory.
	binom [][]int64

	// subspaces[g] = C(dim-1+g, dim-1), the number of subspaces in level
	// group g (paper Eq. 2).
	subspaces []int64

	// groupSize[g] = subspaces[g] * 2^g, the number of grid points whose
	// level vector sums to g.
	groupSize []int64

	// groupStart[g] = Σ_{j<g} groupSize[j]; this is index3 for |l|₁ = g
	// (paper Sec. 4.2). groupStart[level] is the total point count.
	groupStart []int64
}

// NewDescriptor validates (dim, level) and builds the lookup tables.
// level counts refinement levels: the grid contains the level groups
// 0..level-1, matching the paper's "sparse grid of level n" (their level-11
// grids in d=1..10 hold 2047 .. 127,574,017 points).
func NewDescriptor(dim, level int) (*Descriptor, error) {
	if dim < 1 || dim > MaxDim {
		return nil, fmt.Errorf("core: dimension %d out of range [1, %d]", dim, MaxDim)
	}
	if level < 1 || level > MaxLevel {
		return nil, fmt.Errorf("core: level %d out of range [1, %d]", level, MaxLevel)
	}
	// The deepest level group shifts by level-1 bits (see MaxIndexBits).
	// MaxLevel keeps this unreachable today; the guard stays so raising
	// MaxLevel (or constructing derived descriptors) cannot silently
	// reintroduce wrapping shifts.
	if level-1 > MaxIndexBits {
		return nil, &OverflowError{Dim: dim, Level: level,
			Detail: fmt.Sprintf("index1 shift width %d exceeds %d bits", level-1, MaxIndexBits)}
	}
	d := &Descriptor{dim: dim, level: level}

	// binmat needs t ≤ dim-1 and s ≤ level-1 (index map arguments); keep a
	// small safety margin for derived descriptors.
	smax := level + 2
	d.binom = make([][]int64, dim+1)
	for t := 0; t <= dim; t++ {
		d.binom[t] = make([]int64, smax)
		for s := 0; s < smax; s++ {
			v, ok := safeBinomial(t+s, t)
			if !ok {
				return nil, &OverflowError{Dim: dim, Level: level,
					Detail: fmt.Sprintf("binomial C(%d,%d) exceeds int64", t+s, t)}
			}
			d.binom[t][s] = v
		}
	}

	d.subspaces = make([]int64, level)
	d.groupSize = make([]int64, level)
	d.groupStart = make([]int64, level+1)
	var total int64
	for g := 0; g < level; g++ {
		d.subspaces[g] = d.binom[dim-1][g]
		if g > MaxIndexBits {
			return nil, &OverflowError{Dim: dim, Level: level,
				Detail: fmt.Sprintf("level group %d holds 2^%d points per subspace", g, g)}
		}
		sz := d.subspaces[g]
		if sz > math.MaxInt64>>uint(g) {
			return nil, &OverflowError{Dim: dim, Level: level,
				Detail: fmt.Sprintf("point count of level group %d exceeds int64", g)}
		}
		sz <<= uint(g)
		d.groupSize[g] = sz
		d.groupStart[g] = total
		if total > math.MaxInt64-sz {
			return nil, &OverflowError{Dim: dim, Level: level,
				Detail: fmt.Sprintf("total grid size exceeds int64 at level group %d", g)}
		}
		total += sz
	}
	d.groupStart[level] = total
	return d, nil
}

// MustDescriptor is NewDescriptor for parameters known to be valid; it
// panics on error. Intended for tests and examples.
func MustDescriptor(dim, level int) *Descriptor {
	d, err := NewDescriptor(dim, level)
	if err != nil {
		panic(err)
	}
	return d
}

// Dim returns the dimensionality d.
func (d *Descriptor) Dim() int { return d.dim }

// Level returns the refinement level n; level groups run 0..n-1.
func (d *Descriptor) Level() int { return d.level }

// Size returns the total number of grid points N.
func (d *Descriptor) Size() int64 { return d.groupStart[d.level] }

// Groups returns the number of level groups (== Level()).
func (d *Descriptor) Groups() int { return d.level }

// GroupSize returns the number of grid points in level group g.
func (d *Descriptor) GroupSize(g int) int64 { return d.groupSize[g] }

// GroupStart returns the flat index of the first point of level group g;
// this is the paper's index3 for |l|₁ = g. GroupStart(Level()) == Size().
func (d *Descriptor) GroupStart(g int) int64 { return d.groupStart[g] }

// Subspaces returns the number of subspaces in level group g,
// C(dim-1+g, dim-1) (paper Eq. 2).
func (d *Descriptor) Subspaces(g int) int64 { return d.subspaces[g] }

// TotalSubspaces returns the number of subspaces across all level groups.
func (d *Descriptor) TotalSubspaces() int64 {
	var s int64
	for g := 0; g < d.level; g++ {
		s += d.subspaces[g]
	}
	return s
}

// Binomial returns C(t+s, t) from the precomputed binmat lookup table.
// It panics if the arguments fall outside the precomputed range, which
// cannot happen for level vectors belonging to this descriptor.
func (d *Descriptor) Binomial(t, s int) int64 { return d.binom[t][s] }

// safeBinomial computes C(n, k) exactly with int64 overflow detection.
// The running value r after step j equals C(n-k+j, j), so the 128-bit
// intermediate r·(n-k+j) is always exactly divisible by j.
func safeBinomial(n, k int) (int64, bool) {
	if k < 0 || k > n {
		return 0, true
	}
	if k > n-k {
		k = n - k
	}
	var r uint64 = 1
	for j := 1; j <= k; j++ {
		hi, lo := bits.Mul64(r, uint64(n-k+j))
		if hi >= uint64(j) {
			return 0, false
		}
		q, rem := bits.Div64(hi, lo, uint64(j))
		if rem != 0 {
			return 0, false
		}
		r = q
	}
	if r > math.MaxInt64 {
		return 0, false
	}
	return int64(r), true
}
