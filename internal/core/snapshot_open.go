package core

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"unsafe"
)

// activeMappings counts live snapshot mappings; tests use it to prove
// that error paths and registry retirement never leak an mmap.
var activeMappings atomic.Int64

// ActiveMappings returns the number of snapshot memory mappings
// currently held open process-wide.
func ActiveMappings() int64 { return activeMappings.Load() }

// A Snapshot is one opened v2 snapshot file: its parsed header and its
// coefficient payload, either memory-mapped in place (zero-copy, the
// payload lives in the page cache) or decoded into a private copy.
//
// A mapped payload is READ-ONLY: writing through Data/Grid faults. The
// holder must keep the Snapshot alive for as long as the payload is in
// use and call Close exactly when done — after Close a mapped payload
// dangles. Copied snapshots tolerate Close at any time.
type Snapshot struct {
	info   *SnapshotInfo
	grid   *Grid     // non-nil iff the payload is an interior grid
	data   []float64 // the payload (mapped view or private copy)
	mapped []byte    // whole-file mapping; nil when copied
	once   sync.Once
}

// Info returns the parsed header.
func (s *Snapshot) Info() *SnapshotInfo { return s.info }

// Grid returns the interior grid view of the payload, or nil for a
// boundary-flagged snapshot (whose layout belongs to the boundary
// layer; use Data).
func (s *Snapshot) Grid() *Grid { return s.grid }

// Data returns the raw coefficient payload.
func (s *Snapshot) Data() []float64 { return s.data }

// Mapped reports whether the payload is an mmap view rather than a copy.
func (s *Snapshot) Mapped() bool { return s.mapped != nil }

// Close releases the mapping (a no-op for copied snapshots). It is
// idempotent. The payload must not be used afterwards.
func (s *Snapshot) Close() error {
	var err error
	s.once.Do(func() {
		if s.mapped != nil {
			err = munmapFile(s.mapped)
			s.mapped = nil
			activeMappings.Add(-1)
		}
	})
	return err
}

// MapGrid memory-maps the v2 snapshot at path read-only and returns the
// payload in place — the zero-copy cold load. Both checksums are
// verified against the mapped bytes before the snapshot is handed out.
// When mapping is impossible for non-corruption reasons (no mmap on
// this platform, big-endian host, unaligned payload offset) the error
// wraps ErrNotMappable so OpenSnapshot can fall back to copying;
// corruption never falls back.
func MapGrid(path string) (*Snapshot, error) {
	if !mmapSupported || !hostLittleEndian {
		return nil, fmt.Errorf("core: %s: %w on this platform", path, ErrNotMappable)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // the mapping outlives the descriptor

	var hdr [SnapshotHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, corruptf(SnapshotMagic, noEOF(err), "reading header of %s", path)
	}
	info, err := parseSnapshotHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	if !info.Aligned() {
		return nil, fmt.Errorf("core: %s: payload offset %d is not 8-byte aligned: %w", path, info.PayloadOffset, ErrNotMappable)
	}
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	end := info.PayloadOffset + info.PayloadBytes()
	if st.Size() < end {
		return nil, corruptf(SnapshotMagic, nil, "%s is %d bytes, header promises %d", path, st.Size(), end)
	}
	m, err := mmapFile(f, int(end))
	if err != nil {
		return nil, fmt.Errorf("core: mapping %s: %w (%v)", path, ErrNotMappable, err)
	}
	for _, b := range m[SnapshotHeaderSize:info.PayloadOffset] {
		if b != 0 {
			_ = munmapFile(m)
			return nil, corruptf(SnapshotMagic, nil, "nonzero byte in alignment padding of %s", path)
		}
	}
	payload := m[info.PayloadOffset:end]
	if crc := crcBytes(payload); crc != info.PayloadCRC {
		_ = munmapFile(m)
		return nil, corruptf(SnapshotMagic, ErrChecksum, "payload CRC32-C %08x, header claims %08x", crc, info.PayloadCRC)
	}
	s := &Snapshot{info: info, mapped: m}
	if info.Count > 0 {
		s.data = unsafe.Slice((*float64)(unsafe.Pointer(&payload[0])), info.Count)
	}
	if !info.Boundary() {
		desc, err := NewDescriptor(info.Dim, info.Level)
		if err != nil {
			_ = munmapFile(m)
			return nil, err
		}
		g, err := GridFromData(desc, s.data)
		if err != nil {
			_ = munmapFile(m)
			return nil, err
		}
		s.grid = g
	}
	activeMappings.Add(1)
	return s, nil
}

// OpenSnapshot opens the v2 snapshot at path: memory-mapped when the
// platform and file layout allow it, otherwise decoded through the
// copying reader. Corruption (bad magic, truncation, checksum
// mismatch) is an error either way, never a silent fallback.
func OpenSnapshot(path string) (*Snapshot, error) {
	s, err := MapGrid(path)
	if err == nil {
		return s, nil
	}
	if !errors.Is(err, ErrNotMappable) {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info, data, err := DecodeSnapshot(bufio.NewReaderSize(f, 1<<16))
	if err != nil {
		return nil, err
	}
	s = &Snapshot{info: info, data: data}
	if !info.Boundary() {
		desc, err := NewDescriptor(info.Dim, info.Level)
		if err != nil {
			return nil, err
		}
		if s.grid, err = GridFromData(desc, data); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// floatsAsBytes reinterprets a []float64 as its in-memory byte image.
// Callers gate on hostLittleEndian when the bytes must be the
// serialized little-endian form.
func floatsAsBytes(data []float64) []byte {
	if len(data) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&data[0])), len(data)*8)
}
