package obs

import "context"

type ctxKey struct{}

// NewContext returns ctx carrying the span. Attaching a nil span is
// allowed and yields ctx unchanged, so disabled tracing adds no
// context allocation.
func NewContext(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil. The nil result
// is safe to use with every Span method, so callers never branch.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
