// Package obs is a dependency-free request-tracing layer for the
// serving path: a Span accumulates monotonic per-stage timings (decode,
// validate, queue_wait, dispatch, eval, encode, plus the registry's
// load/load_wait), carries a request ID, and on Finish is published
// into a lock-free ring buffer of recent traces that the server exports
// as JSON at /debug/traces.
//
// The paper's Sec. 5 evaluation attributes runtime to individual
// compression/decompression phases; this package brings the same
// attribution to the live serving path so queue wait, coalesced
// dispatch and kernel time are separable per request instead of being
// folded into one total-latency histogram.
//
// Concurrency contract: a Span is owned by exactly one goroutine (the
// request handler). Code running on other goroutines — the batcher's
// flush loop, a registry load leader — never writes into a caller's
// Span; instead it hands timings back over the existing result channel
// and the owning goroutine records them. This keeps Span free of
// atomics, makes sync.Pool recycling safe, and keeps -race clean. All
// Span methods are nil-receiver-safe so call sites need no "is tracing
// on" branches, and none of them allocate: the serving hot path stays
// zero-alloc with tracing enabled.
package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies one phase of a request's lifetime.
type Stage uint8

// The request stages, in pipeline order. QueueWait/Dispatch/Eval are
// filled from the batcher's flush-loop timestamps on the coalesced
// path; Load/LoadWait from the grid registry on cold paths.
const (
	StageDecode    Stage = iota // JSON body decode
	StageValidate               // point shape + domain checks
	StageLoad                   // cold grid load this request led (read + decode)
	StageLoadWait               // wait on another request's in-flight load
	StageQueueWait              // enqueue -> micro-batch flush decision
	StageDispatch               // flush decision -> EvaluateBatch entry
	StageEval                   // EvaluateBatch / Evaluate kernel time
	StageEncode                 // JSON response encode
	NumStages
)

var stageNames = [NumStages]string{
	"decode", "validate", "load", "load_wait",
	"queue_wait", "dispatch", "eval", "encode",
}

// Name returns the stable wire name of the stage ("queue_wait", ...).
func (st Stage) Name() string {
	if int(st) < len(stageNames) {
		return stageNames[st]
	}
	return "unknown"
}

// StageNames lists all stage names in pipeline order (for metric
// pre-registration).
func StageNames() []string { return append([]string(nil), stageNames[:]...) }

// A Span records one request: identity, per-stage durations and
// outcome. Obtain spans from Tracer.Start, annotate them from the
// owning goroutine only, and call Finish exactly once; Finish recycles
// the span, so no method may be called afterwards.
type Span struct {
	tracer  *Tracer
	id      uint64
	extID   string
	handler string
	grid    string
	points  int
	batch   int
	status  int
	errMsg  string
	start   time.Time
	marks   [NumStages]time.Time
	durs    [NumStages]time.Duration
	touched uint16 // bit per stage that saw Begin/End or Add
}

// ID returns the span's request ID (unique per tracer, monotonic).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// SetExtID records the externally assigned request ID (the
// X-Request-Id header a proxy propagated), so one client request is
// findable in every hop's /debug/traces under the same ID even though
// each process numbers its spans independently.
func (s *Span) SetExtID(id string) {
	if s != nil {
		s.extID = id
	}
}

// Begin marks the start of a stage on the owning goroutine.
func (s *Span) Begin(st Stage) {
	if s == nil {
		return
	}
	s.marks[st] = time.Now()
}

// End accumulates time since the stage's Begin mark. Begin/End pairs
// may repeat (the /v1/eval retry loop re-validates); durations add up.
func (s *Span) End(st Stage) {
	if s == nil {
		return
	}
	s.durs[st] += time.Since(s.marks[st])
	s.touched |= 1 << st
}

// Add accumulates an externally measured duration, used where the time
// was taken on another goroutine (the batcher's flush loop) and handed
// back to the request goroutine.
func (s *Span) Add(st Stage, d time.Duration) {
	if s == nil {
		return
	}
	s.durs[st] += d
	s.touched |= 1 << st
}

// Dur returns the accumulated duration of a stage.
func (s *Span) Dur(st Stage) time.Duration {
	if s == nil {
		return 0
	}
	return s.durs[st]
}

// Touched reports whether the stage recorded any time (even 0ns).
func (s *Span) Touched(st Stage) bool {
	return s != nil && s.touched&(1<<st) != 0
}

// SetGrid records the grid the request resolved to.
func (s *Span) SetGrid(name string) {
	if s != nil {
		s.grid = name
	}
}

// Grid returns the recorded grid name ("" when unset or s is nil).
func (s *Span) Grid() string {
	if s == nil {
		return ""
	}
	return s.grid
}

// Points returns the recorded request point count.
func (s *Span) Points() int {
	if s == nil {
		return 0
	}
	return s.points
}

// BatchSize returns the recorded dispatched-batch size.
func (s *Span) BatchSize() int {
	if s == nil {
		return 0
	}
	return s.batch
}

// SetPoints records how many points the request asked for.
func (s *Span) SetPoints(n int) {
	if s != nil {
		s.points = n
	}
}

// SetBatchSize records the size of the dispatched evaluation batch the
// request's points rode in (the coalesced micro-batch, or the request's
// own point count on /v1/eval/batch).
func (s *Span) SetBatchSize(n int) {
	if s != nil {
		s.batch = n
	}
}

// SetStatus records the HTTP status the request was answered with.
func (s *Span) SetStatus(code int) {
	if s != nil {
		s.status = code
	}
}

// SetError records the error string reported to the client.
func (s *Span) SetError(err error) {
	if s != nil && err != nil {
		s.errMsg = err.Error()
	}
}

// Finish seals the span: if sampled, it is published as an immutable
// Trace into the tracer's ring; the span itself is recycled. The span
// must not be used after Finish.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	t := s.tracer
	if s.id%uint64(t.sampleEvery) == 0 {
		tr := &Trace{
			ID:      s.id,
			ExtID:   s.extID,
			Handler: s.handler,
			Grid:    s.grid,
			Points:  s.points,
			Batch:   s.batch,
			Status:  s.status,
			Error:   s.errMsg,
			Start:   s.start,
			TotalS:  time.Since(s.start).Seconds(),
		}
		for st := Stage(0); st < NumStages; st++ {
			if s.touched&(1<<st) != 0 {
				tr.stages[st] = s.durs[st].Seconds()
				tr.stageSet |= 1 << st
			}
		}
		slot := &t.ring[(tr.ID/uint64(t.sampleEvery))%uint64(len(t.ring))]
		slot.Store(tr)
	}
	*s = Span{}
	t.pool.Put(s)
}

// A Trace is the immutable, exported form of a finished span.
// Immutability after publication is what makes the ring lock-free: the
// writer atomically swaps a fresh *Trace into a slot and never touches
// it again, so readers need no synchronization beyond the pointer load.
type Trace struct {
	ID      uint64    `json:"id"`
	ExtID   string    `json:"ext_id,omitempty"`
	Handler string    `json:"handler"`
	Grid    string    `json:"grid,omitempty"`
	Points  int       `json:"points,omitempty"`
	Batch   int       `json:"batch_size,omitempty"`
	Status  int       `json:"status"`
	Error   string    `json:"error,omitempty"`
	Start   time.Time `json:"start"`
	TotalS  float64   `json:"total_s"`

	stages   [NumStages]float64
	stageSet uint16
}

// StageS returns the stage's duration in seconds and whether the stage
// was recorded at all.
func (tr *Trace) StageS(st Stage) (float64, bool) {
	return tr.stages[st], tr.stageSet&(1<<st) != 0
}

// MarshalJSON renders the fixed stage array as a {"name": seconds}
// object holding only the recorded stages.
func (tr *Trace) MarshalJSON() ([]byte, error) {
	type alias Trace // no methods: avoids recursing into MarshalJSON
	aux := struct {
		*alias
		Stages map[string]float64 `json:"stages"`
	}{alias: (*alias)(tr), Stages: make(map[string]float64, NumStages)}
	for st := Stage(0); st < NumStages; st++ {
		if tr.stageSet&(1<<st) != 0 {
			aux.Stages[st.Name()] = tr.stages[st]
		}
	}
	return json.Marshal(aux)
}

// UnmarshalJSON restores a trace from its wire form (used by sgload and
// sgstress when pulling /debug/traces).
func (tr *Trace) UnmarshalJSON(data []byte) error {
	type alias Trace
	aux := struct {
		*alias
		Stages map[string]float64 `json:"stages"`
	}{alias: (*alias)(tr)}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	for st := Stage(0); st < NumStages; st++ {
		if v, ok := aux.Stages[st.Name()]; ok {
			tr.stages[st] = v
			tr.stageSet |= 1 << st
		}
	}
	return nil
}

// A Tracer hands out spans and keeps the last ringSize sampled traces
// in a lock-free ring. The zero Tracer is not usable; call New.
type Tracer struct {
	ring        []atomic.Pointer[Trace]
	ids         atomic.Uint64
	sampleEvery int
	pool        sync.Pool
}

// New creates a tracer keeping the last ringSize finished traces.
// ringSize <= 0 disables tracing entirely: Start returns nil and every
// Span/Trace operation degrades to a no-op, so a disabled tracer costs
// one nil check per call site.
func New(ringSize int) *Tracer {
	if ringSize <= 0 {
		return &Tracer{sampleEvery: 1}
	}
	t := &Tracer{ring: make([]atomic.Pointer[Trace], ringSize), sampleEvery: 1}
	t.pool.New = func() any { return new(Span) }
	return t
}

// SetSampleEvery keeps only every nth trace in the ring (1 = all, the
// default). Spans are still created and stage metrics still observed
// for every request; sampling bounds only the ring-publication cost.
// Must be called before the tracer sees traffic.
func (t *Tracer) SetSampleEvery(n int) {
	if n >= 1 {
		t.sampleEvery = n
	}
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil && t.ring != nil }

// Start opens a span for one request. Returns nil (safe everywhere)
// when the tracer is disabled.
func (t *Tracer) Start(handler string) *Span {
	if !t.Enabled() {
		return nil
	}
	s := t.pool.Get().(*Span)
	s.tracer = t
	s.id = t.ids.Add(1)
	s.handler = handler
	s.start = time.Now()
	return s
}

// Snapshot returns the retained traces, newest first.
func (t *Tracer) Snapshot() []*Trace {
	if !t.Enabled() {
		return nil
	}
	out := make([]*Trace, 0, len(t.ring))
	for i := range t.ring {
		if tr := t.ring[i].Load(); tr != nil {
			out = append(out, tr)
		}
	}
	// Slot order is insertion-modulo-ring; sort by ID descending for a
	// stable newest-first view.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].ID > out[j-1].ID; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// tracesResponse is the /debug/traces wire format.
type tracesResponse struct {
	Traces []*Trace `json:"traces"`
}

// Handler serves the retained traces as JSON (newest first), the
// /debug/traces endpoint.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		snap := t.Snapshot()
		if snap == nil {
			snap = []*Trace{}
		}
		_ = json.NewEncoder(w).Encode(tracesResponse{Traces: snap})
	})
}

// ParseTraces decodes a /debug/traces response body (the client half of
// Handler, shared by sgload and sgstress).
func ParseTraces(data []byte) ([]*Trace, error) {
	var resp tracesResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return nil, err
	}
	return resp.Traces, nil
}
