package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestSpanStageAccumulation(t *testing.T) {
	tr := New(4)
	s := tr.Start("eval")
	if s == nil {
		t.Fatal("Start returned nil on an enabled tracer")
	}
	if s.ID() == 0 {
		t.Error("span ID = 0, want monotonic nonzero")
	}
	s.Begin(StageDecode)
	time.Sleep(time.Millisecond)
	s.End(StageDecode)
	s.Add(StageQueueWait, 5*time.Millisecond)
	s.Add(StageQueueWait, 5*time.Millisecond) // accumulates
	if d := s.Dur(StageDecode); d < time.Millisecond {
		t.Errorf("decode dur = %v, want >= 1ms", d)
	}
	if d := s.Dur(StageQueueWait); d != 10*time.Millisecond {
		t.Errorf("queue_wait dur = %v, want 10ms", d)
	}
	if !s.Touched(StageDecode) || !s.Touched(StageQueueWait) {
		t.Error("touched stages not reported")
	}
	if s.Touched(StageEval) {
		t.Error("untouched stage reported as touched")
	}
	s.SetGrid("g")
	s.SetPoints(3)
	s.SetBatchSize(17)
	s.SetStatus(200)
	s.Finish()

	snap := tr.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot holds %d traces, want 1", len(snap))
	}
	got := snap[0]
	if got.Grid != "g" || got.Points != 3 || got.Batch != 17 || got.Status != 200 || got.Handler != "eval" {
		t.Errorf("trace = %+v", got)
	}
	if v, ok := got.StageS(StageQueueWait); !ok || v != 0.01 {
		t.Errorf("trace queue_wait = %v (recorded=%v), want 0.01", v, ok)
	}
	if _, ok := got.StageS(StageEval); ok {
		t.Error("untouched eval stage recorded in trace")
	}
}

func TestNilSpanSafe(t *testing.T) {
	var s *Span
	s.Begin(StageDecode)
	s.End(StageDecode)
	s.Add(StageEval, time.Second)
	s.SetGrid("g")
	s.SetPoints(1)
	s.SetBatchSize(1)
	s.SetStatus(200)
	s.SetError(io.EOF)
	s.Finish()
	if s.ID() != 0 || s.Dur(StageEval) != 0 || s.Touched(StageEval) {
		t.Error("nil span leaked state")
	}
}

func TestDisabledTracer(t *testing.T) {
	for _, size := range []int{0, -1} {
		tr := New(size)
		if tr.Enabled() {
			t.Fatalf("New(%d).Enabled() = true", size)
		}
		if s := tr.Start("eval"); s != nil {
			t.Fatalf("New(%d).Start != nil", size)
		}
		if snap := tr.Snapshot(); snap != nil {
			t.Fatalf("New(%d).Snapshot = %v", size, snap)
		}
		rec := httptest.NewRecorder()
		tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
		if rec.Body.String() != "{\"traces\":[]}\n" {
			t.Fatalf("disabled handler body = %q", rec.Body.String())
		}
	}
}

func TestRingWraparoundNewestFirst(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		s := tr.Start("eval")
		s.SetStatus(200 + i)
		s.Finish()
	}
	snap := tr.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot holds %d traces, want ring size 4", len(snap))
	}
	for i, want := range []uint64{10, 9, 8, 7} {
		if snap[i].ID != want {
			t.Fatalf("snapshot order = [%d %d %d %d], want newest-first 10..7",
				snap[0].ID, snap[1].ID, snap[2].ID, snap[3].ID)
		}
		_ = i
	}
}

func TestSampling(t *testing.T) {
	tr := New(16)
	tr.SetSampleEvery(4)
	for i := 0; i < 16; i++ {
		tr.Start("eval").Finish()
	}
	snap := tr.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("with sample-every-4, 16 requests kept %d traces, want 4", len(snap))
	}
	for _, tc := range snap {
		if tc.ID%4 != 0 {
			t.Errorf("sampled trace ID %d not a multiple of 4", tc.ID)
		}
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	tr := New(2)
	s := tr.Start("batch")
	s.SetGrid("field")
	s.SetPoints(64)
	s.SetBatchSize(64)
	s.SetStatus(200)
	s.Add(StageEval, 3*time.Millisecond)
	s.Add(StageDecode, time.Millisecond)
	s.Finish()

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("content type = %q", ct)
	}
	// The wire format must expose stages as a named object.
	var raw struct {
		Traces []map[string]any `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatalf("/debug/traces is not valid JSON: %v\n%s", err, rec.Body)
	}
	stages, ok := raw.Traces[0]["stages"].(map[string]any)
	if !ok {
		t.Fatalf("trace has no stages object: %s", rec.Body)
	}
	if v := stages["eval"]; v != 0.003 {
		t.Errorf("stages.eval = %v, want 0.003", v)
	}

	// And ParseTraces must restore the typed view.
	parsed, err := ParseTraces(rec.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 1 || parsed[0].Grid != "field" {
		t.Fatalf("parsed = %+v", parsed)
	}
	if v, ok := parsed[0].StageS(StageEval); !ok || v != 0.003 {
		t.Errorf("parsed eval stage = %v (recorded=%v), want 0.003", v, ok)
	}
	if _, ok := parsed[0].StageS(StageQueueWait); ok {
		t.Error("parsed trace invented a queue_wait stage")
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := New(2)
	s := tr.Start("eval")
	ctx := NewContext(context.Background(), s)
	if got := FromContext(ctx); got != s {
		t.Fatalf("FromContext = %p, want %p", got, s)
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext on bare ctx = %p, want nil", got)
	}
	base := context.Background()
	if got := NewContext(base, nil); got != base {
		t.Fatal("NewContext(nil span) must not wrap the context")
	}
	s.Finish()
}

// TestConcurrentSpans hammers Start/Finish and Snapshot from many
// goroutines; run under -race this proves the ring's lock-freedom is
// sound (immutable traces + atomic slot swaps).
func TestConcurrentSpans(t *testing.T) {
	tr := New(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := tr.Start("eval")
				s.Begin(StageEval)
				s.End(StageEval)
				s.SetGrid(fmt.Sprintf("g%d", w))
				s.SetStatus(200)
				s.Finish()
				if i%16 == 0 {
					for _, tc := range tr.Snapshot() {
						if tc.Status != 200 {
							t.Errorf("trace %d status %d", tc.ID, tc.Status)
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if len(tr.Snapshot()) != 8 {
		t.Fatalf("ring holds %d, want 8", len(tr.Snapshot()))
	}
}

func TestStageNames(t *testing.T) {
	names := StageNames()
	if len(names) != int(NumStages) {
		t.Fatalf("StageNames() has %d entries, want %d", len(names), NumStages)
	}
	seen := map[string]bool{}
	for st := Stage(0); st < NumStages; st++ {
		n := st.Name()
		if n == "" || n == "unknown" || seen[n] {
			t.Fatalf("stage %d has bad name %q", st, n)
		}
		seen[n] = true
	}
	if StageQueueWait.Name() != "queue_wait" || StageEval.Name() != "eval" {
		t.Fatal("stage wire names changed; sgload/sgstress parse these")
	}
}
