package kernels

import (
	"fmt"
	"math/bits"

	"compactsg/internal/core"
	"compactsg/internal/gpusim"
)

// HierarchizeGPU runs the paper's hierarchization kernel (Sec. 5.3):
// one thread block per subspace, one kernel launch per (dimension,
// level group) pair with groups descending — the host-enforced barrier
// that keeps parent reads hazard-free. The grid is uploaded, transformed
// in device memory, and downloaded back into g; results are
// bit-identical to hier.Iterative. The returned report aggregates all
// launches and modeledSec sums the per-launch time estimates.
func HierarchizeGPU(dev *gpusim.Device, g *core.Grid, opt Options) (rep *gpusim.Report, modeledSec float64, err error) {
	desc := g.Desc()
	dg := upload(dev, g)
	total := &gpusim.Report{}
	cfg := dev.Config()
	for t := 0; t < desc.Dim(); t++ {
		for grp := desc.Groups() - 1; grp >= 0; grp-- {
			nsub := desc.Subspaces(grp)
			if nsub > int64(1)<<31 {
				return nil, 0, fmt.Errorf("kernels: group %d has %d subspaces, grid too large to launch", grp, nsub)
			}
			points := 1 << uint(grp)
			blockDim := opt.blockSize()
			if points < blockDim {
				blockDim = points
			}
			if blockDim < 32 {
				blockDim = 32
			}
			r, err := dev.Launch(int(nsub), blockDim, dg.hierKernel(t, grp, opt))
			if err != nil {
				return nil, 0, err
			}
			modeledSec += r.EstimateTime(cfg)
			total.Add(r)
		}
	}
	dg.download(dev, g)
	modeledSec += dev.TransferTime(2 * desc.Size()) // H2D + D2H
	return total, modeledSec, nil
}

// hierKernel builds the per-launch kernel for dimension t, level group
// grp. Each block owns the subspace whose enumeration rank equals its
// block index.
//
// Parent lookups mirror the CPU kernel's stride arithmetic (DESIGN.md
// §8): the block's master thread precomputes the base offsets
// (index2 + index3) of all l[t] ancestor subspaces into shared memory —
// the device-side Descriptor.AncestorStarts — and every thread then
// derives each parent's flat index from its own mixed-radix position p
// with O(1) shifts and masks. The per-point work drops from two O(d)
// gp2idx walks (≈ 6d binmat/constant reads and 9d ops per point) to two
// shared-memory reads and a dozen integer ops.
func (dg *deviceGrid) hierKernel(t, grp int, opt Options) gpusim.Kernel {
	desc := dg.desc
	dim := desc.Dim()
	return func(b *gpusim.Block) func(*gpusim.Thread) {
		binom, prologue := dg.makeBinomReader(b, opt.Binmat)
		var shL *gpusim.SharedI32
		if !opt.PerThreadL {
			shL = b.SharedI32(dim)
		}
		shBases := b.SharedI64(desc.Level()) // ancestor subspace bases, dim t
		return func(th *gpusim.Thread) {
			prologue(th)
			l := make([]int32, dim) // registers
			if opt.PerThreadL {
				// Every thread derives l itself and keeps it in local
				// memory (thread-private, but spilled to device memory
				// on the C1060 — coalesced thanks to the interleaved
				// layout, yet paying global bandwidth and latency).
				subspaceFromIndexDevice(th, binom, grp, int64(b.Idx), l, dim)
				for t2 := 0; t2 < dim; t2++ {
					th.StoreLocal(t2, float64(l[t2]))
				}
				for t2 := 0; t2 < dim; t2++ {
					l[t2] = int32(th.LoadLocal(t2))
				}
			} else {
				// The paper's design: the master thread computes l into
				// shared memory, everyone reads it after the barrier.
				if th.Idx == 0 {
					subspaceFromIndexDevice(th, binom, grp, int64(b.Idx), l, dim)
					for t2 := 0; t2 < dim; t2++ {
						shL.Store(th, t2, l[t2])
					}
				}
				th.Sync()
				for t2 := 0; t2 < dim; t2++ {
					l[t2] = shL.Load(th, t2)
				}
			}
			lt := l[t]
			if lt == 0 {
				// Both ancestors are the boundary: nothing to update in
				// this dimension (uniform early exit, whole block).
				return
			}
			// Master precomputes the lt ancestor bases: for pl < lt, the
			// subspace l − (lt−pl)·e_t starts at groupStart[|l'|] +
			// subspaceidx(l')·2^|l'| with |l'| = grp − (lt−pl).
			if th.Idx == 0 {
				for pl := int32(0); pl < lt; pl++ {
					sacc := int(l[0])
					if t == 0 {
						sacc = int(pl)
					}
					var index2 int64
					for t2 := 1; t2 < dim; t2++ {
						index2 -= binom(th, t2, sacc)
						if t2 == t {
							sacc += int(pl)
						} else {
							sacc += int(l[t2])
						}
						index2 += binom(th, t2, sacc)
					}
					th.Ops(4 * dim)
					base := dg.groupStartConst(th, sacc) + index2<<uint(sacc)
					th.Ops(2)
					shBases.Store(th, int(pl), base)
				}
			}
			th.Sync()
			// Per-thread stride constants: the bit widths of the digit
			// fields below and above dimension t in position p.
			shLow := uint(0)
			for t2 := 0; t2 < t; t2++ {
				shLow += uint(l[t2])
			}
			maskLow := int64(1)<<shLow - 1
			maskT := int64(1)<<uint32(lt) - 1
			th.Ops(t + 2)
			// Subspace start: groupStart[grp] + rank·2^grp.
			start := dg.groupStartConst(th, grp) + int64(b.Idx)<<uint(grp)
			th.Ops(2)
			points := int64(1) << uint(grp)
			for p := int64(th.Idx); p < points; p += int64(b.Dim) {
				// Split p into the digit fields around dimension t.
				low := p & maskLow
				rest := p >> shLow
				dig := rest & maskT
				high := rest >> uint32(lt)
				th.Ops(4)
				lv := dg.loadParentStride(th, shBases, lt, shLow, low, dig, high, dig<<1)
				rv := dg.loadParentStride(th, shBases, lt, shLow, low, dig, high, dig<<1+2)
				idx := dg.base + start + p
				v := th.LoadGlobal(idx)
				th.Ops(3)
				th.StoreGlobal(idx, v-(lv+rv)/2)
			}
		}
	}
}

// loadParentStride loads the value of the hierarchical ancestor in the
// launch dimension whose 1d numerator (over 2^(lt+1)) is num, combining
// the shared ancestor-base table with O(1) bit arithmetic on the
// point's digit fields. The instruction stream is warp-uniform:
// boundary ancestors redirect the load to the device's zero word
// instead of skipping it.
func (dg *deviceGrid) loadParentStride(th *gpusim.Thread, shBases *gpusim.SharedI64, lt int32, shLow uint, low, dig, high, num int64) float64 {
	boundary := num == 0 || num == int64(1)<<uint32(lt+1)
	th.Branch(boundary) // potential divergence point
	var k int32
	if !boundary {
		k = int32(bits.TrailingZeros64(uint64(num)))
	}
	pl := lt - k
	pdig := num >> uint32(k) >> 1 // (pi-1)/2
	th.Ops(4)
	if boundary {
		// Keep the arithmetic uniform with harmless values.
		pl, pdig = 0, 0
	}
	base := shBases.Load(th, int(pl))
	addr := dg.base + base + low + pdig<<shLow + high<<(shLow+uint(pl))
	th.Ops(5)
	if boundary {
		addr = dg.zero
	}
	return th.LoadGlobal(addr)
}

// subspaceFromIndexDevice is the device-side inverse subspace ranking
// (core.SubspaceFromIndex) using binmat reads.
func subspaceFromIndexDevice(th *gpusim.Thread, binom binomReader, grp int, rank int64, l []int32, dim int) {
	n := grp
	rem := rank
	for t2 := dim - 1; t2 >= 1; t2-- {
		k := 0
		for {
			block := binom(th, t2-1, n-k)
			th.Ops(2)
			if rem < block {
				break
			}
			rem -= block
			k++
		}
		l[t2] = int32(k)
		n -= k
	}
	l[0] = int32(n)
	th.Ops(dim)
}
