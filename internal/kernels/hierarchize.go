package kernels

import (
	"fmt"
	"math/bits"

	"compactsg/internal/core"
	"compactsg/internal/gpusim"
)

// HierarchizeGPU runs the paper's hierarchization kernel (Sec. 5.3):
// one thread block per subspace, one kernel launch per (dimension,
// level group) pair with groups descending — the host-enforced barrier
// that keeps parent reads hazard-free. The grid is uploaded, transformed
// in device memory, and downloaded back into g; results are
// bit-identical to hier.Iterative. The returned report aggregates all
// launches and modeledSec sums the per-launch time estimates.
func HierarchizeGPU(dev *gpusim.Device, g *core.Grid, opt Options) (rep *gpusim.Report, modeledSec float64, err error) {
	desc := g.Desc()
	dg := upload(dev, g)
	total := &gpusim.Report{}
	cfg := dev.Config()
	for t := 0; t < desc.Dim(); t++ {
		for grp := desc.Groups() - 1; grp >= 0; grp-- {
			nsub := desc.Subspaces(grp)
			if nsub > int64(1)<<31 {
				return nil, 0, fmt.Errorf("kernels: group %d has %d subspaces, grid too large to launch", grp, nsub)
			}
			points := 1 << uint(grp)
			blockDim := opt.blockSize()
			if points < blockDim {
				blockDim = points
			}
			if blockDim < 32 {
				blockDim = 32
			}
			r, err := dev.Launch(int(nsub), blockDim, dg.hierKernel(t, grp, opt))
			if err != nil {
				return nil, 0, err
			}
			modeledSec += r.EstimateTime(cfg)
			total.Add(r)
		}
	}
	dg.download(dev, g)
	modeledSec += dev.TransferTime(2 * desc.Size()) // H2D + D2H
	return total, modeledSec, nil
}

// hierKernel builds the per-launch kernel for dimension t, level group
// grp. Each block owns the subspace whose enumeration rank equals its
// block index.
func (dg *deviceGrid) hierKernel(t, grp int, opt Options) gpusim.Kernel {
	desc := dg.desc
	dim := desc.Dim()
	return func(b *gpusim.Block) func(*gpusim.Thread) {
		binom, prologue := dg.makeBinomReader(b, opt.Binmat)
		var shL *gpusim.SharedI32
		if !opt.PerThreadL {
			shL = b.SharedI32(dim)
		}
		return func(th *gpusim.Thread) {
			prologue(th)
			l := make([]int32, dim) // registers
			if opt.PerThreadL {
				// Every thread derives l itself and keeps it in local
				// memory (thread-private, but spilled to device memory
				// on the C1060 — coalesced thanks to the interleaved
				// layout, yet paying global bandwidth and latency).
				subspaceFromIndexDevice(th, binom, grp, int64(b.Idx), l, dim)
				for t2 := 0; t2 < dim; t2++ {
					th.StoreLocal(t2, float64(l[t2]))
				}
				for t2 := 0; t2 < dim; t2++ {
					l[t2] = int32(th.LoadLocal(t2))
				}
			} else {
				// The paper's design: the master thread computes l into
				// shared memory, everyone reads it after the barrier.
				if th.Idx == 0 {
					subspaceFromIndexDevice(th, binom, grp, int64(b.Idx), l, dim)
					for t2 := 0; t2 < dim; t2++ {
						shL.Store(th, t2, l[t2])
					}
				}
				th.Sync()
				for t2 := 0; t2 < dim; t2++ {
					l[t2] = shL.Load(th, t2)
				}
			}
			if l[t] == 0 {
				// Both ancestors are the boundary: nothing to update in
				// this dimension (uniform early exit, whole block).
				return
			}
			// Subspace start: groupStart[grp] + rank·2^grp.
			start := dg.groupStartConst(th, grp) + int64(b.Idx)<<uint(grp)
			th.Ops(2)
			points := int64(1) << uint(grp)
			for p := int64(th.Idx); p < points; p += int64(b.Dim) {
				// Decode the mixed-radix digits of p (dimension 0 least
				// significant).
				var dig [core.MaxDim]int64
				pos := p
				for t2 := 0; t2 < dim; t2++ {
					dig[t2] = pos & (int64(1)<<uint32(l[t2]) - 1)
					pos >>= uint32(l[t2])
				}
				th.Ops(3 * dim)
				it := 2*dig[t] + 1
				th.Ops(2)
				lv := dg.loadParent(th, binom, l, dig[:dim], t, it-1, dim)
				rv := dg.loadParent(th, binom, l, dig[:dim], t, it+1, dim)
				idx := dg.base + start + p
				v := th.LoadGlobal(idx)
				th.Ops(3)
				th.StoreGlobal(idx, v-(lv+rv)/2)
			}
		}
	}
}

// loadParent computes gp2idx of the hierarchical ancestor in dimension t
// whose 1d numerator (over 2^(l[t]+1)) is num, and loads its value. The
// instruction stream is warp-uniform: boundary ancestors redirect the
// load to the device's zero word instead of skipping it.
func (dg *deviceGrid) loadParent(th *gpusim.Thread, binom binomReader, l []int32, dig []int64, t int, num int64, dim int) float64 {
	boundary := num == 0 || num == int64(1)<<uint32(l[t]+1)
	th.Branch(boundary) // potential divergence point
	var k int32
	if !boundary {
		k = int32(bits.TrailingZeros64(uint64(num)))
	}
	pl := l[t] - k
	pdig := num >> uint32(k) >> 1 // (pi-1)/2
	th.Ops(4)
	if boundary {
		// Keep the arithmetic uniform with harmless values.
		pl, pdig = 0, 0
	}
	// index1 over the parent's level vector (dim t replaced by pl).
	var index1 int64
	for t2 := dim - 1; t2 >= 0; t2-- {
		lt, d2 := l[t2], dig[t2]
		if t2 == t {
			lt, d2 = pl, pdig
		}
		index1 = index1<<uint32(lt) + d2
	}
	th.Ops(2 * dim)
	// index2 = subspaceidx(l') (Eq. 4) with binmat lookups.
	sum := int(l[0])
	if t == 0 {
		sum = int(pl)
	}
	var index2 int64
	for t2 := 1; t2 < dim; t2++ {
		index2 -= binom(th, t2, sum)
		if t2 == t {
			sum += int(pl)
		} else {
			sum += int(l[t2])
		}
		index2 += binom(th, t2, sum)
	}
	th.Ops(4 * dim)
	// index3 = groupStart[|l'|₁].
	index3 := dg.groupStartConst(th, sum)
	addr := dg.base + index3 + index2<<uint(sum) + index1
	th.Ops(3)
	if boundary {
		addr = dg.zero
	}
	return th.LoadGlobal(addr)
}

// subspaceFromIndexDevice is the device-side inverse subspace ranking
// (core.SubspaceFromIndex) using binmat reads.
func subspaceFromIndexDevice(th *gpusim.Thread, binom binomReader, grp int, rank int64, l []int32, dim int) {
	n := grp
	rem := rank
	for t2 := dim - 1; t2 >= 1; t2-- {
		k := 0
		for {
			block := binom(th, t2-1, n-k)
			th.Ops(2)
			if rem < block {
				break
			}
			rem -= block
			k++
		}
		l[t2] = int32(k)
		n -= k
	}
	l[0] = int32(n)
	th.Ops(dim)
}
