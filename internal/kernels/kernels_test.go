package kernels

import (
	"math"
	"testing"

	"compactsg/internal/core"
	"compactsg/internal/eval"
	"compactsg/internal/gpusim"
	"compactsg/internal/hier"
	"compactsg/internal/workload"
)

func freshDevice() *gpusim.Device {
	return gpusim.NewDevice(gpusim.TeslaC1060())
}

func filledGrid(d, n int) *core.Grid {
	g := core.NewGrid(core.MustDescriptor(d, n))
	g.Fill(workload.Parabola.F)
	return g
}

func TestHierarchizeGPUBitIdentical(t *testing.T) {
	for _, c := range []struct{ d, n int }{{1, 5}, {2, 4}, {3, 4}, {4, 3}} {
		cpu := filledGrid(c.d, c.n)
		gpu := cpu.Clone()
		hier.Iterative(cpu)
		rep, sec, err := HierarchizeGPU(freshDevice(), gpu, Options{})
		if err != nil {
			t.Fatalf("d=%d n=%d: %v", c.d, c.n, err)
		}
		for k := range cpu.Data {
			if cpu.Data[k] != gpu.Data[k] {
				t.Fatalf("d=%d n=%d: GPU result differs at %d: %g vs %g", c.d, c.n, k, gpu.Data[k], cpu.Data[k])
			}
		}
		if sec <= 0 {
			t.Error("modeled time must be positive")
		}
		wantLaunches := c.d * c.n
		if rep.Launches != wantLaunches {
			t.Errorf("d=%d n=%d: %d launches want %d (one per dim × group)", c.d, c.n, rep.Launches, wantLaunches)
		}
	}
}

func TestHierarchizeGPUVariantsBitIdentical(t *testing.T) {
	ref := filledGrid(3, 4)
	hier.Iterative(ref)
	variants := []Options{
		{PerThreadL: true},
		{Binmat: BinmatShared},
		{Binmat: BinmatOnTheFly},
		{PerThreadL: true, Binmat: BinmatShared},
		{BlockSize: 32},
		{BlockSize: 256},
	}
	for _, opt := range variants {
		g := filledGrid(3, 4)
		if _, _, err := HierarchizeGPU(freshDevice(), g, opt); err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
		for k := range ref.Data {
			if g.Data[k] != ref.Data[k] {
				t.Fatalf("%+v: differs at %d", opt, k)
			}
		}
	}
}

func TestEvaluateGPUBitIdentical(t *testing.T) {
	for _, c := range []struct{ d, n int }{{1, 5}, {2, 4}, {4, 3}} {
		g := filledGrid(c.d, c.n)
		hier.Iterative(g)
		xs := workload.Points(3, 100, c.d)
		want := eval.Batch(g, xs, nil, eval.Options{})
		got := make([]float64, len(xs))
		rep, sec, err := EvaluateGPU(freshDevice(), g, xs, got, Options{})
		if err != nil {
			t.Fatalf("d=%d: %v", c.d, err)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("d=%d point %d: GPU %g vs CPU %g", c.d, k, got[k], want[k])
			}
		}
		if sec <= 0 || rep.Launches != 1 {
			t.Errorf("d=%d: sec=%g launches=%d", c.d, sec, rep.Launches)
		}
	}
}

func TestEvaluateGPUVariants(t *testing.T) {
	g := filledGrid(3, 4)
	hier.Iterative(g)
	xs := workload.Points(4, 70, 3) // 70: forces a partial block + clamped tail
	want := eval.Batch(g, xs, nil, eval.Options{})
	for _, opt := range []Options{
		{PerThreadL: true},
		{BlockSize: 64},
		{BlockSize: 32, PerThreadL: true},
		{EvalTables: true},
		{EvalTables: true, PerThreadL: true},
		{EvalTables: true, BlockSize: 64},
	} {
		got := make([]float64, len(xs))
		if _, _, err := EvaluateGPU(freshDevice(), g, xs, got, opt); err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("%+v point %d: %g vs %g", opt, k, got[k], want[k])
			}
		}
	}
}

func TestEvaluateGPUEmptyAndErrors(t *testing.T) {
	g := filledGrid(2, 3)
	if rep, sec, err := EvaluateGPU(freshDevice(), g, nil, nil, Options{}); err != nil || sec != 0 || rep.Launches != 0 {
		t.Errorf("empty input: rep=%v sec=%g err=%v", rep, sec, err)
	}
	xs := workload.Points(5, 10, 2)
	if _, _, err := EvaluateGPU(freshDevice(), g, xs, make([]float64, 3), Options{}); err == nil {
		t.Error("short out slice accepted")
	}
}

func TestAblationSharedLFaster(t *testing.T) {
	// Paper Sec. 5.3: block-shared l beats per-thread l (1.62× hier.,
	// 1.59× eval. on the C1060) because per-thread l spills to global
	// memory. The model must reproduce the ordering.
	g := filledGrid(4, 4)
	_, shared, err := HierarchizeGPU(freshDevice(), g.Clone(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, perThread, err := HierarchizeGPU(freshDevice(), g.Clone(), Options{PerThreadL: true})
	if err != nil {
		t.Fatal(err)
	}
	if perThread <= shared {
		t.Errorf("hierarchization: per-thread l (%g s) not slower than shared l (%g s)", perThread, shared)
	}
	hg := g.Clone()
	hier.Iterative(hg)
	xs := workload.Points(6, 256, 4)
	out := make([]float64, len(xs))
	_, sharedE, err := EvaluateGPU(freshDevice(), hg, xs, out, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, perThreadE, err := EvaluateGPU(freshDevice(), hg, xs, out, Options{PerThreadL: true})
	if err != nil {
		t.Fatal(err)
	}
	if perThreadE <= sharedE {
		t.Errorf("evaluation: per-thread l (%g s) not slower than shared l (%g s)", perThreadE, sharedE)
	}
}

func TestAblationBinmatOrdering(t *testing.T) {
	// Paper Sec. 5.3: on-the-fly binomials make hierarchization several
	// times slower; constant cache is (slightly) fastest. The placement
	// only matters when binomials are read per point — the naive
	// one-thread-per-point decomposition, whose idx2gp/gp2idx walks hit
	// binmat in every loadParent. Compare kernel time net of the fixed
	// launch overhead (at test-scale grids the d·n launches otherwise
	// dominate everything).
	g := filledGrid(5, 6)
	overhead := gpusim.TeslaC1060().LaunchOverheadSec
	times := map[BinmatMode]float64{}
	for _, mode := range []BinmatMode{BinmatConst, BinmatShared, BinmatOnTheFly} {
		rep, sec, err := HierarchizeGPUNaive(freshDevice(), g.Clone(), Options{Binmat: mode})
		if err != nil {
			t.Fatal(err)
		}
		times[mode] = sec - float64(rep.Launches)*overhead
	}
	if times[BinmatOnTheFly] <= times[BinmatConst] || times[BinmatOnTheFly] <= times[BinmatShared] {
		t.Errorf("on-the-fly (%g) must be slowest (const %g, shared %g)",
			times[BinmatOnTheFly], times[BinmatConst], times[BinmatShared])
	}
	if times[BinmatConst] > times[BinmatShared]*1.5 {
		t.Errorf("const (%g) should not be much slower than shared (%g)", times[BinmatConst], times[BinmatShared])
	}
}

func TestStrideKernelAmortizesBinmat(t *testing.T) {
	// In the block-per-subspace kernel the stride-based parent lookups
	// confine binmat reads to the block prologue (master-thread l and
	// ancestor-base precompute), so binmat placement must no longer move
	// the needle: every mode within 25% of constant. This is the payoff
	// of the ancestor-base table — compare TestAblationBinmatOrdering,
	// where the naive per-point walks keep the paper's ordering alive.
	g := filledGrid(5, 6)
	overhead := gpusim.TeslaC1060().LaunchOverheadSec
	times := map[BinmatMode]float64{}
	for _, mode := range []BinmatMode{BinmatConst, BinmatShared, BinmatOnTheFly} {
		rep, sec, err := HierarchizeGPU(freshDevice(), g.Clone(), Options{Binmat: mode})
		if err != nil {
			t.Fatal(err)
		}
		times[mode] = sec - float64(rep.Launches)*overhead
	}
	for _, mode := range []BinmatMode{BinmatShared, BinmatOnTheFly} {
		if times[mode] > times[BinmatConst]*1.25 {
			t.Errorf("%v (%g) should stay within 25%% of constant (%g): binmat reads are amortized over the block",
				mode, times[mode], times[BinmatConst])
		}
	}
}

func TestHierarchizationLessCoalescedThanEvalStores(t *testing.T) {
	// The paper: subspace updates coalesce, parent reads do not — so the
	// hierarchization kernel must show imperfect coalescing.
	g := filledGrid(3, 5)
	rep, _, err := HierarchizeGPU(freshDevice(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if eff := rep.CoalescingEfficiency(); eff >= 0.9 {
		t.Errorf("hierarchization coalescing %.2f suspiciously perfect; parent reads should scatter", eff)
	}
	if rep.DivergentBranches == 0 {
		t.Error("boundary-parent branches should show divergence potential")
	}
}

func TestEvalTablesLoseOnGPU(t *testing.T) {
	// The CPU evaluation rewrite (eval/tables.go) wins by hoisting the
	// float→int chain out of the subspace loop into per-query 1d tables
	// that stay L1-resident. The same transformation loses on the GPU:
	// per-thread tables live in local memory, so each lookup pays device
	// bandwidth that on the cacheless C1060 dwarfs the saved flops, and
	// even Fermi's L1 only narrows the gap. The paper's
	// recompute-in-registers design stays right on both architectures;
	// this test pins the modeled ordering (and that tables do cut
	// arithmetic, so the loss is a memory effect, not a modeling slip).
	g := filledGrid(5, 6)
	hier.Iterative(g)
	xs := workload.Points(9, 2000, 5)
	out := make([]float64, len(xs))
	ratio := func(cfg gpusim.Config) (float64, *gpusim.Report, *gpusim.Report) {
		repR, secR, err := EvaluateGPU(gpusim.NewDevice(cfg), g, xs, out, Options{})
		if err != nil {
			t.Fatal(err)
		}
		repT, secT, err := EvaluateGPU(gpusim.NewDevice(cfg), g, xs, out, Options{EvalTables: true})
		if err != nil {
			t.Fatal(err)
		}
		return secT / secR, repR, repT
	}
	tesla, repR, repT := ratio(gpusim.TeslaC1060())
	if tesla <= 2 {
		t.Errorf("tables on the C1060 should cost well over 2× recompute, got %.2fx", tesla)
	}
	if repT.ArithWarpInstr >= repR.ArithWarpInstr {
		t.Errorf("tables must cut arithmetic: %d vs %d warp instructions",
			repT.ArithWarpInstr, repR.ArithWarpInstr)
	}
	fermi, _, repTF := ratio(gpusim.FermiC2050())
	if fermi >= tesla {
		t.Errorf("Fermi's L1 should narrow the table penalty: %.2fx vs %.2fx on Tesla", fermi, tesla)
	}
	if repTF.L1Hits == 0 {
		t.Error("table lookups should hit Fermi's L1")
	}
}

func TestEvalSharedMemoryPressureGrowsWithDim(t *testing.T) {
	// Paper Sec. 6.2: per-thread shared usage grows linearly with d,
	// reducing occupancy beyond d≈10. Check the modeled shared bytes.
	shared := func(d int) int64 {
		g := filledGrid(d, 3)
		hier.Iterative(g)
		xs := workload.Points(7, 64, d)
		out := make([]float64, len(xs))
		rep, _, err := EvaluateGPU(freshDevice(), g, xs, out, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return rep.SharedBytesPerBlock
	}
	s2, s8 := shared(2), shared(8)
	if s8 <= s2 {
		t.Errorf("shared bytes per block: d=2 %d, d=8 %d — should grow with d", s2, s8)
	}
	cfg := gpusim.TeslaC1060()
	if occ2, occ8 := cfg.Occupancy(128, s2), cfg.Occupancy(128, s8); occ8 >= occ2 {
		t.Errorf("occupancy should fall with d: %g vs %g", occ2, occ8)
	}
}

func TestModeledTimesFinite(t *testing.T) {
	g := filledGrid(2, 4)
	_, sec, err := HierarchizeGPU(freshDevice(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(sec) || math.IsInf(sec, 0) || sec <= 0 {
		t.Errorf("modeled hierarchization time %g", sec)
	}
}

func TestFermiFasterThanTesla(t *testing.T) {
	// Paper §8: the Fermi cache hierarchy benefits both operations; the
	// uncoalesced hierarchization parent reads must show L1 hits.
	g := filledGrid(4, 5)
	_, tesla, err := HierarchizeGPU(gpusim.NewDevice(gpusim.TeslaC1060()), g.Clone(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	repF, fermi, err := HierarchizeGPU(gpusim.NewDevice(gpusim.FermiC2050()), g.Clone(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fermi >= tesla {
		t.Errorf("Fermi (%g s) not faster than C1060 (%g s)", fermi, tesla)
	}
	if repF.L1Hits == 0 {
		t.Error("hierarchization parent reads should hit the Fermi L1")
	}
	// And the Fermi result is still bit-identical.
	ref := filledGrid(4, 5)
	hier.Iterative(ref)
	work := filledGrid(4, 5)
	if _, _, err := HierarchizeGPU(gpusim.NewDevice(gpusim.FermiC2050()), work, Options{}); err != nil {
		t.Fatal(err)
	}
	for k := range ref.Data {
		if work.Data[k] != ref.Data[k] {
			t.Fatalf("Fermi result differs at %d", k)
		}
	}
}

func TestNaiveKernelBitIdentical(t *testing.T) {
	for _, c := range []struct{ d, n int }{{1, 5}, {2, 4}, {3, 4}, {4, 3}} {
		ref := filledGrid(c.d, c.n)
		hier.Iterative(ref)
		g := filledGrid(c.d, c.n)
		if _, _, err := HierarchizeGPUNaive(freshDevice(), g, Options{}); err != nil {
			t.Fatalf("d=%d: %v", c.d, err)
		}
		for k := range ref.Data {
			if g.Data[k] != ref.Data[k] {
				t.Fatalf("d=%d n=%d: naive kernel differs at %d", c.d, c.n, k)
			}
		}
	}
}

func TestNaiveDecompositionMechanisms(t *testing.T) {
	// One-thread-per-point pays the index map per POINT with divergent
	// binmat addresses (constant-cache serializations, more arithmetic),
	// where the paper's block-per-subspace form pays it once per block.
	// Which decomposition is faster overall depends on the subspace
	// sizes relative to the block size (see sgbench ablation-decomp);
	// the per-instruction mechanisms must show regardless.
	g := filledGrid(5, 6)
	repB, _, err := HierarchizeGPU(freshDevice(), g.Clone(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	repN, _, err := HierarchizeGPUNaive(freshDevice(), g.Clone(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if repN.ConstSerializations <= repB.ConstSerializations {
		t.Errorf("naive const serializations %d should exceed blocked %d",
			repN.ConstSerializations, repB.ConstSerializations)
	}
	if repN.ArithWarpInstr <= repB.ArithWarpInstr {
		t.Errorf("naive arithmetic %d should exceed blocked %d (per-point idx2gp)",
			repN.ArithWarpInstr, repB.ArithWarpInstr)
	}
	if repN.LaneOps <= repB.LaneOps {
		t.Errorf("naive lane ops %d should exceed blocked %d", repN.LaneOps, repB.LaneOps)
	}
}
