package kernels

import (
	"fmt"

	"compactsg/internal/core"
	"compactsg/internal/gpusim"
)

// EvaluateGPU runs the paper's evaluation kernel: one thread per query
// point, every thread walking all subspaces with the next-iterator
// (Alg. 7). Query coordinates are staged dimension-major in global
// memory so the per-dimension loads coalesce, then copied into shared
// memory (Sec. 5.3). The level vector lives in shared memory and is
// advanced by the block's master thread between barriers — or, with
// opt.PerThreadL, privately per thread in (global-backed) local memory.
// Results are written into out and are bit-identical to eval.Batch.
func EvaluateGPU(dev *gpusim.Device, g *core.Grid, xs [][]float64, out []float64, opt Options) (rep *gpusim.Report, modeledSec float64, err error) {
	desc := g.Desc()
	dim := desc.Dim()
	npts := len(xs)
	if npts == 0 {
		return &gpusim.Report{}, 0, nil
	}
	if len(out) < npts {
		return nil, 0, fmt.Errorf("kernels: out has %d slots for %d points", len(out), npts)
	}
	dg := upload(dev, g)

	// Dimension-major coordinate layout: coords[t*npts + p].
	coordsBase := dev.AllocGlobal(int64(dim * npts))
	flat := make([]float64, dim*npts)
	for p, x := range xs {
		for t := 0; t < dim; t++ {
			flat[t*npts+p] = x[t]
		}
	}
	dev.CopyToDevice(coordsBase, flat)
	outBase := dev.AllocGlobal(int64(npts))

	blockDim := opt.blockSize()
	gridDim := (npts + blockDim - 1) / blockDim
	rep, err = dev.Launch(gridDim, blockDim, dg.evalKernel(coordsBase, outBase, npts, opt))
	if err != nil {
		return nil, 0, err
	}
	res := make([]float64, npts)
	dev.CopyFromDevice(res, outBase)
	copy(out, res)
	cfg := dev.Config()
	modeledSec = rep.EstimateTime(cfg) + dev.TransferTime(desc.Size()+int64(dim*npts)+int64(npts))
	return rep, modeledSec, nil
}

// evalKernel builds the evaluation kernel body.
func (dg *deviceGrid) evalKernel(coordsBase, outBase int64, npts int, opt Options) gpusim.Kernel {
	desc := dg.desc
	dim := desc.Dim()
	groups := desc.Groups()
	// Local-memory layout for the EvalTables ablation: words
	// [0, dim) hold the PerThreadL level vector (as always); the
	// per-thread 1d tables follow — cell[t][lvl] at dim + t*n + lvl and
	// phi[t][lvl] at dim + dim*n + t*n + lvl, n = desc.Level(). Cell
	// indices are stored as float64 (exact: they are < 2^level).
	n := desc.Level()
	cellOff, phiOff := dim, dim+dim*n
	return func(b *gpusim.Block) func(*gpusim.Thread) {
		shCoords := b.SharedF64(b.Dim * dim)
		var shL *gpusim.SharedI32
		if !opt.PerThreadL {
			shL = b.SharedI32(dim)
		}
		return func(th *gpusim.Thread) {
			gid := th.Global()
			active := gid < npts
			gidc := gid
			if !active {
				gidc = npts - 1 // clamp: uniform loads, discarded result
			}
			th.Ops(2)
			// Stage this thread's coordinates into shared memory; the
			// global reads are coalesced (consecutive lanes, consecutive
			// words in the dimension-major layout).
			for t2 := 0; t2 < dim; t2++ {
				v := th.LoadGlobal(coordsBase + int64(t2*npts+gidc))
				shCoords.Store(th, th.Idx*dim+t2, v)
			}
			if opt.EvalTables {
				// Table prologue: evaluate every (dimension, level) pair
				// once with the exact inner-loop arithmetic — the subspace
				// sweep below then reads the results back bit-identically.
				for t2 := 0; t2 < dim; t2++ {
					x := shCoords.Load(th, th.Idx*dim+t2)
					for lvl := 0; lvl < n; lvl++ {
						c, hat := hat1D(x, int32(lvl))
						th.Ops(12)
						th.StoreLocal(cellOff+t2*n+lvl, float64(c))
						th.StoreLocal(phiOff+t2*n+lvl, hat)
					}
				}
			}
			l := make([]int32, dim) // private copy for PerThreadL mode
			res := 0.0
			var off int64 // running subspace offset (index2+index3)
			for grp := 0; grp < groups; grp++ {
				nsub := dg.subspacesConst(th, grp) // broadcast
				if opt.PerThreadL {
					// Thread-private level vector in local memory:
					// coalesced (interleaved layout) but global-backed.
					core.First(l, grp)
					for t2 := 0; t2 < dim; t2++ {
						th.StoreLocal(t2, float64(l[t2]))
					}
				} else {
					th.Sync()
					if th.Idx == 0 {
						for t2 := 0; t2 < dim; t2++ {
							v := int32(0)
							if t2 == 0 {
								v = int32(grp)
							}
							shL.Store(th, t2, v)
						}
					}
					th.Sync()
				}
				sz := int64(1) << uint(grp)
				for k := int64(0); k < nsub; k++ {
					prod := 1.0
					var index1 int64
					for t2 := dim - 1; t2 >= 0; t2-- {
						var lt int32
						if opt.PerThreadL {
							lt = int32(th.LoadLocal(t2))
						} else {
							lt = shL.Load(th, t2)
						}
						if opt.EvalTables {
							// Pure lookups: two (coalesced) local reads, a
							// shift-add, a multiply.
							c := int64(th.LoadLocal(cellOff + t2*n + int(lt)))
							index1 = index1<<uint32(lt) + c
							prod *= th.LoadLocal(phiOff + t2*n + int(lt))
							th.Ops(3)
							continue
						}
						x := shCoords.Load(th, th.Idx*dim+t2)
						c, hat := hat1D(x, lt)
						index1 = index1<<uint32(lt) + c
						prod *= hat
						th.Ops(12)
					}
					coeff := th.LoadGlobal(dg.base + off + index1)
					res += prod * coeff
					off += sz
					th.Ops(3)
					// Advance l to the next subspace of the group.
					if k < nsub-1 {
						if opt.PerThreadL {
							nextLocal(th, dim)
						} else {
							th.Sync()
							if th.Idx == 0 {
								nextShared(th, shL, dim)
							}
							th.Sync()
						}
					}
				}
			}
			if th.Branch(active) {
				th.StoreGlobal(outBase+int64(gid), res)
			}
		}
	}
}

// hat1D returns the 1d cell index of x at level lt and the hat basis
// value over that cell — the kernel's register-only recompute path
// (Alg. 7 l.13). The EvalTables prologue calls the same function, so
// table entries are bit-identical to recomputed values. Callers account
// the cost (th.Ops(12)).
func hat1D(x float64, lt int32) (int64, float64) {
	cells := int64(1) << uint32(lt)
	c := int64(x * float64(cells))
	if c < 0 {
		c = 0
	} else if c >= cells {
		c = cells - 1
	}
	div := 1.0 / float64(cells)
	left := float64(c) * div
	mid := left + div/2
	v := (x - mid) / (div / 2)
	if v < 0 {
		v = -v
	}
	if v > 1 {
		v = 1
	}
	return c, 1 - v
}

// nextShared advances the block-shared level vector (core.Next on
// shared memory), executed by the master thread.
func nextShared(th *gpusim.Thread, shL *gpusim.SharedI32, dim int) {
	t := 0
	for t < dim && shL.Load(th, t) == 0 {
		t++
	}
	if t >= dim-1 {
		return
	}
	m := shL.Load(th, t)
	mt1 := shL.Load(th, t+1)
	shL.Store(th, t, 0)
	shL.Store(th, 0, m-1)
	shL.Store(th, t+1, mt1+1)
	th.Ops(4)
}

// nextLocal advances a per-thread level vector kept in local (global-
// backed) memory.
func nextLocal(th *gpusim.Thread, dim int) {
	t := 0
	for t < dim && int32(th.LoadLocal(t)) == 0 {
		t++
	}
	if t >= dim-1 {
		return
	}
	m := th.LoadLocal(t)
	mt1 := th.LoadLocal(t + 1)
	th.StoreLocal(t, 0)
	th.StoreLocal(0, m-1)
	th.StoreLocal(t+1, mt1+1)
	th.Ops(4)
}
