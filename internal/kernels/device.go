// Package kernels implements the paper's two CUDA kernels — iterative
// hierarchization (one thread block per subspace, host-side barriers
// between level groups) and iterative evaluation (one thread per query
// point) — on the gpusim SIMT simulator, together with the ablation
// variants Sec. 5.3 discusses: block-shared versus per-thread level
// vectors, and binmat in constant memory versus shared memory versus
// recomputed on the fly.
//
// The kernels are functionally exact: the device arrays hold the real
// coefficients and the results are bit-identical to the CPU algorithms
// in packages hier and eval.
package kernels

import (
	"fmt"

	"compactsg/internal/core"
	"compactsg/internal/gpusim"
)

// BinmatMode selects where the kernels read binomial coefficients from
// (paper Sec. 5.3: constant cache was fastest, shared memory close,
// computing on the fly ≈ 4× slower hierarchization).
type BinmatMode int

// Binmat placements.
const (
	// BinmatConst stages binmat in constant memory (the paper's choice).
	BinmatConst BinmatMode = iota
	// BinmatShared copies binmat into shared memory per block.
	BinmatShared
	// BinmatOnTheFly recomputes each binomial coefficient, O(t) ops.
	BinmatOnTheFly
)

func (m BinmatMode) String() string {
	switch m {
	case BinmatConst:
		return "constant"
	case BinmatShared:
		return "shared"
	case BinmatOnTheFly:
		return "onthefly"
	default:
		return fmt.Sprintf("BinmatMode(%d)", int(m))
	}
}

// Options configures the kernels.
type Options struct {
	// BlockSize is the thread-block size for evaluation (and an upper
	// bound for hierarchization, which also adapts to the subspace
	// size). 0 means the default of 128.
	BlockSize int
	// PerThreadL switches the ablation: instead of the block-shared
	// level vector maintained by the master thread (the paper's final
	// design), every thread keeps its own copy in local memory — which
	// on the C1060 spills to (uncoalesced) global memory.
	PerThreadL bool
	// Binmat selects the binomial table placement.
	Binmat BinmatMode
	// EvalTables switches the evaluation kernel to the table-driven
	// ablation mirroring the CPU rewrite (eval/tables.go): each thread
	// precomputes its per-query 1d cell indices and hat values for every
	// (dimension, level) pair into local memory, and the subspace loop
	// becomes pure lookups. On the C1060 local memory is global-backed,
	// so the tables trade d·n recomputed flops per subspace for two
	// device-memory reads — see EXPERIMENTS.md for how that trade plays
	// out on the two modeled architectures.
	EvalTables bool
}

func (o Options) blockSize() int {
	if o.BlockSize <= 0 {
		return 128
	}
	return o.BlockSize
}

// deviceGrid is a sparse grid resident in simulated device memory with
// the constant-memory image the index maps need.
type deviceGrid struct {
	desc *core.Descriptor
	// base is the rawStorage array; zero is a dedicated word holding 0.0
	// that boundary-parent loads target, keeping the kernel's
	// instruction stream warp-uniform (no divergent skip of the load).
	base, zero int64
	// Constant memory layout (word indices into constI):
	//   binmat[t][s] at t*stride + s, t ≤ dim, s ≤ level+1
	//   groupStart[g] at gsOff + g, g ≤ level
	//   subspaces[g] at subOff + g, g < level
	stride, gsOff, subOff int
}

// upload copies the grid to the device and installs the constant image.
func upload(dev *gpusim.Device, g *core.Grid) *deviceGrid {
	desc := g.Desc()
	dim, level := desc.Dim(), desc.Level()
	dg := &deviceGrid{
		desc:   desc,
		stride: level + 2,
	}
	dg.base = dev.AllocGlobal(desc.Size())
	dev.CopyToDevice(dg.base, g.Data)
	dg.zero = dev.AllocGlobal(1)

	constI := make([]int64, 0, (dim+1)*dg.stride+2*level+1)
	for t := 0; t <= dim; t++ {
		for s := 0; s < dg.stride; s++ {
			constI = append(constI, desc.Binomial(t, s))
		}
	}
	dg.gsOff = len(constI)
	for grp := 0; grp <= level; grp++ {
		constI = append(constI, desc.GroupStart(grp))
	}
	dg.subOff = len(constI)
	for grp := 0; grp < level; grp++ {
		constI = append(constI, desc.Subspaces(grp))
	}
	dev.SetConstI(constI)
	return dg
}

// download copies the device coefficients back into g.
func (dg *deviceGrid) download(dev *gpusim.Device, g *core.Grid) {
	dev.CopyFromDevice(g.Data, dg.base)
}

// binomReader abstracts the binmat placement inside a kernel block. The
// returned function must be called with a warp-uniform instruction
// stream (data-dependent arguments are fine).
type binomReader func(t *gpusim.Thread, tt, s int) int64

// makeBinomReader prepares per-block binmat access for the chosen mode.
// For BinmatShared it allocates and fills the shared copy (the per-thread
// fill loop is part of the modeled cost) and the caller must Sync before
// first use.
func (dg *deviceGrid) makeBinomReader(b *gpusim.Block, mode BinmatMode) (binomReader, func(t *gpusim.Thread)) {
	switch mode {
	case BinmatShared:
		dim := dg.desc.Dim()
		words := (dim + 1) * dg.stride
		sh := b.SharedI64(words)
		prologue := func(t *gpusim.Thread) {
			for w := t.Idx; w < words; w += b.Dim {
				v := t.LoadConstI(w)
				sh.Store(t, w, v)
			}
			t.Sync()
		}
		return func(t *gpusim.Thread, tt, s int) int64 {
			return sh.Load(t, tt*dg.stride+s)
		}, prologue
	case BinmatOnTheFly:
		return func(t *gpusim.Thread, tt, s int) int64 {
			// C(t+s, t) = Π_{j=1..t} (s+j)/j, exact at every step. The
			// 64-bit integer division has no hardware support on the
			// C1060 and expands to a ~16-instruction sequence; the
			// multiply-add pair adds two more.
			r := int64(1)
			for j := 1; j <= tt; j++ {
				r = r * int64(s+j) / int64(j)
			}
			t.Ops(18*tt + 1)
			return r
		}, func(t *gpusim.Thread) {}
	default:
		return func(t *gpusim.Thread, tt, s int) int64 {
			return t.LoadConstI(tt*dg.stride + s)
		}, func(t *gpusim.Thread) {}
	}
}

// groupStartConst reads groupStart[g] from constant memory.
func (dg *deviceGrid) groupStartConst(t *gpusim.Thread, g int) int64 {
	return t.LoadConstI(dg.gsOff + g)
}

// subspacesConst reads the subspace count of level group g.
func (dg *deviceGrid) subspacesConst(t *gpusim.Thread, g int) int64 {
	return t.LoadConstI(dg.subOff + g)
}
