package kernels

import (
	"fmt"

	"compactsg/internal/core"
	"compactsg/internal/gpusim"
)

// HierarchizeGPUNaive is the decomposition the paper implicitly rejects:
// one thread per grid point instead of one block per subspace. Every
// thread must recover its own level vector with a device-side idx2gp —
// a per-thread combinatorial search whose trip counts and binmat
// addresses diverge across the warp — and nothing is shared at block
// scope. Host-side barriers per level group are still required. The
// result is bit-identical to HierarchizeGPU; only the modeled cost
// differs (see the ablation-decomp experiment).
func HierarchizeGPUNaive(dev *gpusim.Device, g *core.Grid, opt Options) (rep *gpusim.Report, modeledSec float64, err error) {
	desc := g.Desc()
	dg := upload(dev, g)
	total := &gpusim.Report{}
	cfg := dev.Config()
	blockDim := opt.blockSize()
	for t := 0; t < desc.Dim(); t++ {
		for grp := desc.Groups() - 1; grp >= 0; grp-- {
			points := desc.GroupSize(grp)
			gridDim := int((points + int64(blockDim) - 1) / int64(blockDim))
			if gridDim > 1<<30 {
				return nil, 0, fmt.Errorf("kernels: group %d too large for the naive launch", grp)
			}
			r, err := dev.Launch(gridDim, blockDim, dg.naiveHierKernel(t, grp, opt))
			if err != nil {
				return nil, 0, err
			}
			modeledSec += r.EstimateTime(cfg)
			total.Add(r)
		}
	}
	dg.download(dev, g)
	modeledSec += dev.TransferTime(2 * desc.Size())
	return total, modeledSec, nil
}

// naiveHierKernel: thread j of the launch owns point GroupStart(grp)+j.
func (dg *deviceGrid) naiveHierKernel(t, grp int, opt Options) gpusim.Kernel {
	desc := dg.desc
	dim := desc.Dim()
	points := desc.GroupSize(grp)
	return func(b *gpusim.Block) func(*gpusim.Thread) {
		binom, prologue := dg.makeBinomReader(b, opt.Binmat)
		return func(th *gpusim.Thread) {
			prologue(th)
			j := int64(th.Global())
			active := j < points
			jc := j
			if !active {
				jc = points - 1 // clamp: uniform instruction stream
			}
			th.Ops(2)
			// Per-thread idx2gp: subspace rank and in-subspace position.
			rank := jc >> uint(grp)
			pos := jc & (int64(1)<<uint(grp) - 1)
			th.Ops(2)
			l := make([]int32, dim)
			subspaceFromIndexDevice(th, binom, grp, rank, l, dim)
			if l[t] == 0 {
				// Both ancestors on the boundary; threads of a warp may
				// disagree here — a real divergence of this decomposition.
				th.Branch(true)
				return
			}
			th.Branch(false)
			var dig [core.MaxDim]int64
			for t2 := 0; t2 < dim; t2++ {
				dig[t2] = pos & (int64(1)<<uint32(l[t2]) - 1)
				pos >>= uint32(l[t2])
			}
			th.Ops(3 * dim)
			it := 2*dig[t] + 1
			th.Ops(2)
			lv := dg.loadParent(th, binom, l, dig[:dim], t, it-1, dim)
			rv := dg.loadParent(th, binom, l, dig[:dim], t, it+1, dim)
			idx := dg.base + dg.groupStartConst(th, grp) + jc
			// The clamped tail threads must not touch the (owned-by-
			// another-thread) coefficient at all — reading it while its
			// owner writes would be an inter-block race by CUDA rules.
			if th.Branch(active) {
				v := th.LoadGlobal(idx)
				th.Ops(3)
				th.StoreGlobal(idx, v-(lv+rv)/2)
			}
		}
	}
}
