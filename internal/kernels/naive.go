package kernels

import (
	"fmt"
	"math/bits"

	"compactsg/internal/core"
	"compactsg/internal/gpusim"
)

// loadParent computes gp2idx of the hierarchical ancestor in dimension t
// whose 1d numerator (over 2^(l[t]+1)) is num, and loads its value — the
// full O(d) per-point walk (index1 rebuild plus Eq. 4 binmat lookups).
// Only the naive one-thread-per-point decomposition still pays this
// price: with no block-scope cooperation it cannot amortize a shared
// ancestor-base table the way hierKernel does (loadParentStride). The
// instruction stream is warp-uniform: boundary ancestors redirect the
// load to the device's zero word instead of skipping it.
func (dg *deviceGrid) loadParent(th *gpusim.Thread, binom binomReader, l []int32, dig []int64, t int, num int64, dim int) float64 {
	boundary := num == 0 || num == int64(1)<<uint32(l[t]+1)
	th.Branch(boundary) // potential divergence point
	var k int32
	if !boundary {
		k = int32(bits.TrailingZeros64(uint64(num)))
	}
	pl := l[t] - k
	pdig := num >> uint32(k) >> 1 // (pi-1)/2
	th.Ops(4)
	if boundary {
		// Keep the arithmetic uniform with harmless values.
		pl, pdig = 0, 0
	}
	// index1 over the parent's level vector (dim t replaced by pl).
	var index1 int64
	for t2 := dim - 1; t2 >= 0; t2-- {
		lt, d2 := l[t2], dig[t2]
		if t2 == t {
			lt, d2 = pl, pdig
		}
		index1 = index1<<uint32(lt) + d2
	}
	th.Ops(2 * dim)
	// index2 = subspaceidx(l') (Eq. 4) with binmat lookups.
	sum := int(l[0])
	if t == 0 {
		sum = int(pl)
	}
	var index2 int64
	for t2 := 1; t2 < dim; t2++ {
		index2 -= binom(th, t2, sum)
		if t2 == t {
			sum += int(pl)
		} else {
			sum += int(l[t2])
		}
		index2 += binom(th, t2, sum)
	}
	th.Ops(4 * dim)
	// index3 = groupStart[|l'|₁].
	index3 := dg.groupStartConst(th, sum)
	addr := dg.base + index3 + index2<<uint(sum) + index1
	th.Ops(3)
	if boundary {
		addr = dg.zero
	}
	return th.LoadGlobal(addr)
}

// HierarchizeGPUNaive is the decomposition the paper implicitly rejects:
// one thread per grid point instead of one block per subspace. Every
// thread must recover its own level vector with a device-side idx2gp —
// a per-thread combinatorial search whose trip counts and binmat
// addresses diverge across the warp — and nothing is shared at block
// scope. Host-side barriers per level group are still required. The
// result is bit-identical to HierarchizeGPU; only the modeled cost
// differs (see the ablation-decomp experiment).
func HierarchizeGPUNaive(dev *gpusim.Device, g *core.Grid, opt Options) (rep *gpusim.Report, modeledSec float64, err error) {
	desc := g.Desc()
	dg := upload(dev, g)
	total := &gpusim.Report{}
	cfg := dev.Config()
	blockDim := opt.blockSize()
	for t := 0; t < desc.Dim(); t++ {
		for grp := desc.Groups() - 1; grp >= 0; grp-- {
			points := desc.GroupSize(grp)
			gridDim := int((points + int64(blockDim) - 1) / int64(blockDim))
			if gridDim > 1<<30 {
				return nil, 0, fmt.Errorf("kernels: group %d too large for the naive launch", grp)
			}
			r, err := dev.Launch(gridDim, blockDim, dg.naiveHierKernel(t, grp, opt))
			if err != nil {
				return nil, 0, err
			}
			modeledSec += r.EstimateTime(cfg)
			total.Add(r)
		}
	}
	dg.download(dev, g)
	modeledSec += dev.TransferTime(2 * desc.Size())
	return total, modeledSec, nil
}

// naiveHierKernel: thread j of the launch owns point GroupStart(grp)+j.
func (dg *deviceGrid) naiveHierKernel(t, grp int, opt Options) gpusim.Kernel {
	desc := dg.desc
	dim := desc.Dim()
	points := desc.GroupSize(grp)
	return func(b *gpusim.Block) func(*gpusim.Thread) {
		binom, prologue := dg.makeBinomReader(b, opt.Binmat)
		return func(th *gpusim.Thread) {
			prologue(th)
			j := int64(th.Global())
			active := j < points
			jc := j
			if !active {
				jc = points - 1 // clamp: uniform instruction stream
			}
			th.Ops(2)
			// Per-thread idx2gp: subspace rank and in-subspace position.
			rank := jc >> uint(grp)
			pos := jc & (int64(1)<<uint(grp) - 1)
			th.Ops(2)
			l := make([]int32, dim)
			subspaceFromIndexDevice(th, binom, grp, rank, l, dim)
			if l[t] == 0 {
				// Both ancestors on the boundary; threads of a warp may
				// disagree here — a real divergence of this decomposition.
				th.Branch(true)
				return
			}
			th.Branch(false)
			var dig [core.MaxDim]int64
			for t2 := 0; t2 < dim; t2++ {
				dig[t2] = pos & (int64(1)<<uint32(l[t2]) - 1)
				pos >>= uint32(l[t2])
			}
			th.Ops(3 * dim)
			it := 2*dig[t] + 1
			th.Ops(2)
			lv := dg.loadParent(th, binom, l, dig[:dim], t, it-1, dim)
			rv := dg.loadParent(th, binom, l, dig[:dim], t, it+1, dim)
			idx := dg.base + dg.groupStartConst(th, grp) + jc
			// The clamped tail threads must not touch the (owned-by-
			// another-thread) coefficient at all — reading it while its
			// owner writes would be an inter-block race by CUDA rules.
			if th.Branch(active) {
				v := th.LoadGlobal(idx)
				th.Ops(3)
				th.StoreGlobal(idx, v-(lv+rv)/2)
			}
		}
	}
}
