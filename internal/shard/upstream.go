package shard

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"compactsg/internal/serve"
	"compactsg/internal/serve/metrics"
)

// An upstream is the proxy's view of one shard: a pool of persistent
// TCP connections speaking HTTP/1.1 binary frames, plus the shard's
// health state (active /healthz verdict and the passive circuit
// breaker fed by request failures).
//
// The round trip is hand-rolled instead of going through net/http
// because the forwarding hot path must not allocate: request headers
// are appended into the caller's pooled buffer, the response head is
// parsed from the connection's bufio window in place, and the body
// lands in another pooled buffer. net/http's client allocates a
// Request, a Response, header maps and body wrappers per call.
type upstream struct {
	shard Shard
	dial  func(addr string) (net.Conn, error)

	mu     sync.Mutex
	idle   []*upConn
	closed bool

	// Passive circuit breaker: consecFails counts consecutive request
	// failures; once it reaches the threshold the breaker opens until
	// openUntil (unixnano). A success closes it again.
	consecFails atomic.Int32
	openUntil   atomic.Int64

	// Active health: the poller's last /healthz verdict. Starts true so
	// a shard is routable before the first poll completes.
	unhealthy atomic.Bool

	// Pre-resolved per-shard metric children so the hot path never
	// takes the metric-vec map lock.
	metReq   *metrics.Counter
	metFail  *metrics.Counter
	metConns *metrics.Gauge // shared gauge counting live upstream conns
}

// maxIdlePerShard bounds the idle pool; extra connections returned
// beyond it are closed rather than hoarded.
const maxIdlePerShard = 64

// idleConnTTL bounds how long a pooled connection may sit idle before
// get refuses to reuse it. Kept well below sgserve's default keep-alive
// IdleTimeout (120s) so the proxy drops idle sockets before the shard
// closes them out from under the pool.
const idleConnTTL = 30 * time.Second

type upConn struct {
	c        net.Conn
	br       *bufio.Reader
	lastUsed time.Time // stamped on put; entries idle past idleConnTTL are discarded
}

func newUpstream(s Shard, dial func(string) (net.Conn, error), conns *metrics.Gauge) *upstream {
	if dial == nil {
		dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 2*time.Second)
		}
	}
	return &upstream{shard: s, dial: dial, metConns: conns}
}

// available reports whether the shard should be offered traffic:
// actively healthy and breaker closed (or cooled off).
func (u *upstream) available(now time.Time) bool {
	return !u.unhealthy.Load() && now.UnixNano() >= u.openUntil.Load()
}

// fail records one request failure toward the breaker.
func (u *upstream) fail(threshold int32, cooloff time.Duration) {
	if u.consecFails.Add(1) >= threshold {
		u.openUntil.Store(time.Now().Add(cooloff).UnixNano())
		// Leave consecFails at the threshold so one more failure after
		// the cooloff re-opens immediately (classic half-open probe:
		// the first request through gets to prove the shard back).
		u.consecFails.Store(threshold)
	}
}

// success closes the breaker.
func (u *upstream) success() {
	u.consecFails.Store(0)
	u.openUntil.Store(0)
}

// get returns a pooled idle connection or dials a fresh one. pooled
// reports whether the connection was reused from the idle pool — a
// reused connection may have been closed by the shard's keep-alive
// idle timeout since its last use, so the caller treats its failures
// differently from a fresh connection's.
func (u *upstream) get() (c *upConn, pooled bool, err error) {
	now := time.Now()
	u.mu.Lock()
	// The pool is LIFO, so the top entry is the most recently used; once
	// it is past the TTL everything below it is too and the loop drains
	// the pool. discard takes no locks and Close does not block.
	for n := len(u.idle); n > 0; n = len(u.idle) {
		c := u.idle[n-1]
		u.idle = u.idle[:n-1]
		if now.Sub(c.lastUsed) <= idleConnTTL {
			u.mu.Unlock()
			return c, true, nil
		}
		u.discard(c)
	}
	closed := u.closed
	u.mu.Unlock()
	if closed {
		return nil, false, errors.New("shard: upstream closed")
	}
	c, err = u.dialFresh()
	return c, false, err
}

// dialFresh opens a new connection to the shard.
func (u *upstream) dialFresh() (*upConn, error) {
	c, err := u.dial(u.shard.Addr)
	if err != nil {
		return nil, err
	}
	u.metConns.Add(1)
	return &upConn{c: c, br: bufio.NewReaderSize(c, 4096)}, nil
}

// put returns a healthy keep-alive connection to the pool.
func (u *upstream) put(c *upConn) {
	c.lastUsed = time.Now()
	u.mu.Lock()
	if !u.closed && len(u.idle) < maxIdlePerShard {
		u.idle = append(u.idle, c)
		u.mu.Unlock()
		return
	}
	u.mu.Unlock()
	u.discard(c)
}

// discard closes a connection that must not be reused.
func (u *upstream) discard(c *upConn) {
	c.c.Close()
	u.metConns.Add(-1)
}

// close drains the idle pool. In-flight connections are discarded as
// they come back (put refuses them once closed).
func (u *upstream) close() {
	u.mu.Lock()
	idle := u.idle
	u.idle = nil
	u.closed = true
	u.mu.Unlock()
	for _, c := range idle {
		u.discard(c)
	}
}

// rtBuf carries the pooled buffers one upstream round trip needs; the
// proxy embeds it in its per-request buffer set.
type rtBuf struct {
	wbuf []byte // request head
	resp []byte // response body
	// respBin reports whether the response body is a binary values
	// frame (Content-Type matched) as opposed to a JSON error body.
	respBin bool
}

var (
	errStatusLine = errors.New("shard: upstream sent a malformed status line")
	errHeaders    = errors.New("shard: upstream sent malformed headers")
	errBodyLen    = errors.New("shard: upstream response has no usable length")
)

// roundTrip POSTs frame to the shard's /v1/eval/bin over a pooled
// persistent connection and reads the full response into b.resp. It
// returns the upstream HTTP status; transport-level problems (dial,
// write, read, parse) come back as errors and the connection is
// discarded. reqID, when non-empty, is propagated as X-Request-Id so
// the request is traceable in the shard's /debug/traces too.
func (u *upstream) roundTrip(b *rtBuf, frame []byte, reqID string, deadline time.Time) (int, error) {
	c, pooled, err := u.get()
	if err != nil {
		return 0, err
	}
	status, reuse, started, err := u.exchange(c, b, frame, reqID, deadline)
	if err != nil && pooled && !started {
		// The pooled connection failed before a single response byte
		// arrived — the classic signature of the shard's keep-alive idle
		// timeout having closed it since its last use. Retry once on a
		// freshly dialed connection before reporting a shard failure
		// (mirrors net/http's idempotent-retry rule for reused
		// connections), so a traffic lull doesn't turn into spurious
		// failovers and breaker trips against healthy shards.
		u.discard(c)
		if c, err = u.dialFresh(); err != nil {
			return 0, err
		}
		status, reuse, _, err = u.exchange(c, b, frame, reqID, deadline)
	}
	if err != nil {
		u.discard(c)
		return 0, err
	}
	if reuse {
		u.put(c)
	} else {
		u.discard(c)
	}
	return status, nil
}

// exchange runs one request/response on c. started reports whether any
// response byte was received before a failure; a reused connection that
// fails with started=false is retried on a fresh dial by roundTrip.
func (u *upstream) exchange(c *upConn, b *rtBuf, frame []byte, reqID string, deadline time.Time) (status int, reuse, started bool, err error) {
	if err := c.c.SetDeadline(deadline); err != nil {
		return 0, false, false, err
	}
	w := b.wbuf[:0]
	w = append(w, "POST /v1/eval/bin HTTP/1.1\r\nHost: "...)
	w = append(w, u.shard.Addr...)
	w = append(w, "\r\nContent-Type: "...)
	w = append(w, serve.BinContentType...)
	w = append(w, "\r\nContent-Length: "...)
	w = strconv.AppendInt(w, int64(len(frame)), 10)
	if reqID != "" {
		w = append(w, "\r\nX-Request-Id: "...)
		w = append(w, reqID...)
	}
	w = append(w, "\r\n\r\n"...)
	b.wbuf = w
	if _, err := c.c.Write(w); err != nil {
		return 0, false, false, err
	}
	if _, err := c.c.Write(frame); err != nil {
		return 0, false, false, err
	}

	// Status line: "HTTP/1.1 200 OK".
	line, err := readLine(c.br)
	if err != nil {
		return 0, false, false, err
	}
	started = true
	if len(line) < 12 || string(line[:7]) != "HTTP/1." {
		return 0, false, true, errStatusLine
	}
	status = 0
	for _, d := range line[9:12] {
		if d < '0' || d > '9' {
			return 0, false, true, errStatusLine
		}
		status = status*10 + int(d-'0')
	}

	// Headers.
	contentLength := int64(-1)
	chunked := false
	connClose := false
	b.respBin = false
	for {
		line, err := readLine(c.br)
		if err != nil {
			return 0, false, true, err
		}
		if len(line) == 0 {
			break
		}
		k, v, ok := splitHeader(line)
		if !ok {
			return 0, false, true, errHeaders
		}
		switch {
		case asciiEqualFold(k, "content-length"):
			// Parsed byte-wise: strconv.ParseInt(string(v), ...) would
			// heap-allocate the string on every response.
			n, ok := parseDecimal(v)
			if !ok {
				return 0, false, true, errHeaders
			}
			contentLength = n
		case asciiEqualFold(k, "transfer-encoding"):
			chunked = asciiEqualFold(v, "chunked")
		case asciiEqualFold(k, "connection"):
			connClose = asciiEqualFold(v, "close")
		case asciiEqualFold(k, "content-type"):
			b.respBin = len(v) >= len(serve.BinContentType) &&
				asciiEqualFold(v[:len(serve.BinContentType)], serve.BinContentType)
		}
	}

	// Body.
	b.resp = b.resp[:0]
	switch {
	case chunked:
		b.resp, err = readChunked(c.br, b.resp)
		if err != nil {
			return 0, false, true, err
		}
	case contentLength >= 0:
		b.resp, err = readN(c.br, b.resp, contentLength)
		if err != nil {
			return 0, false, true, err
		}
	case status == 204 || status == 304:
		// No body by definition.
	default:
		// Identity encoding without a length means read-until-close;
		// sgserve never does that, so treat it as a broken upstream
		// rather than stalling a pooled connection on it.
		return 0, false, true, errBodyLen
	}
	return status, !connClose, true, nil
}

// readLine reads one CRLF- (or LF-) terminated line, returning it
// without the terminator. The returned slice aliases the bufio buffer
// and is valid only until the next read. Lines longer than the buffer
// are an error (sgserve's response heads are far smaller).
func readLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadSlice('\n')
	if err != nil {
		if errors.Is(err, bufio.ErrBufferFull) {
			return nil, errHeaders
		}
		return nil, err
	}
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

// parseDecimal parses a non-negative base-10 integer from b without
// converting it to a string.
func parseDecimal(b []byte) (int64, bool) {
	if len(b) == 0 || len(b) > 18 {
		return 0, false
	}
	var n int64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int64(c-'0')
	}
	return n, true
}

// splitHeader splits "Key: value" with optional whitespace.
func splitHeader(line []byte) (k, v []byte, ok bool) {
	for i, c := range line {
		if c == ':' {
			k = line[:i]
			v = line[i+1:]
			for len(v) > 0 && (v[0] == ' ' || v[0] == '\t') {
				v = v[1:]
			}
			for len(v) > 0 && (v[len(v)-1] == ' ' || v[len(v)-1] == '\t') {
				v = v[:len(v)-1]
			}
			return k, v, true
		}
	}
	return nil, nil, false
}

// asciiEqualFold reports ASCII case-insensitive equality of b and s.
func asciiEqualFold[T []byte | string](b T, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(s); i++ {
		cb, cs := b[i], s[i]
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if 'A' <= cs && cs <= 'Z' {
			cs += 'a' - 'A'
		}
		if cb != cs {
			return false
		}
	}
	return true
}

// maxUpstreamBody bounds one response body; matches the server-side
// request cap order of magnitude so a broken upstream cannot balloon
// the pooled buffers.
const maxUpstreamBody = 16 << 20

// readN appends exactly n bytes from br to dst.
func readN(br *bufio.Reader, dst []byte, n int64) ([]byte, error) {
	if n > maxUpstreamBody {
		return dst, fmt.Errorf("shard: upstream response of %d bytes exceeds the %d cap", n, maxUpstreamBody)
	}
	need := len(dst) + int(n)
	if cap(dst) < need {
		grown := make([]byte, len(dst), need)
		copy(grown, dst)
		dst = grown
	}
	for int64(len(dst)) < int64(need) {
		chunk := dst[len(dst):need]
		m, err := br.Read(chunk)
		dst = dst[:len(dst)+m]
		if err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// readChunked decodes a chunked body into dst. Only error bodies ever
// arrive chunked (success frames carry Content-Length), so this path
// is not allocation-sensitive.
func readChunked(br *bufio.Reader, dst []byte) ([]byte, error) {
	for {
		line, err := readLine(br)
		if err != nil {
			return dst, err
		}
		// Chunk size is hex, possibly followed by extensions.
		size := int64(0)
		for _, c := range line {
			var d int64
			switch {
			case c >= '0' && c <= '9':
				d = int64(c - '0')
			case c >= 'a' && c <= 'f':
				d = int64(c-'a') + 10
			case c >= 'A' && c <= 'F':
				d = int64(c-'A') + 10
			case c == ';':
				goto sized
			default:
				return dst, errHeaders
			}
			size = size*16 + d
			if size > maxUpstreamBody {
				return dst, errBodyLen
			}
		}
	sized:
		// Cap the decoded total, not just each chunk, so many small
		// chunks cannot grow the pooled buffer past what the
		// Content-Length path would allow.
		if size > maxUpstreamBody-int64(len(dst)) {
			return dst, errBodyLen
		}
		if size == 0 {
			// Trailer section: read until the blank line.
			for {
				line, err := readLine(br)
				if err != nil {
					return dst, err
				}
				if len(line) == 0 {
					return dst, nil
				}
			}
		}
		if dst, err = readN(br, dst, size); err != nil {
			return dst, err
		}
		if line, err = readLine(br); err != nil {
			return dst, err
		} else if len(line) != 0 {
			return dst, errHeaders
		}
	}
}
