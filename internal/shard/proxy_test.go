package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"compactsg"
	"compactsg/internal/serve"
	"compactsg/internal/serve/middleware"
)

// testShard is one in-process sgserve behind a real TCP listener, so
// the proxy's persistent upstream connections are real and die for
// real when the shard is killed.
type testShard struct {
	id   string
	addr string
	srv  *serve.Server
	hs   *http.Server
}

func (s *testShard) kill() {
	s.hs.Close()
	s.srv.Close()
}

// startShards writes refGrids grid files once and boots n shards that
// all register them, mirroring a production artifact store. Every
// shard trusts loopback so proxy-propagated X-Request-Id headers
// survive its middleware.
func startShards(t *testing.T, n int) ([]*testShard, map[string]*compactsg.Grid) {
	t.Helper()
	dir := t.TempDir()
	refs := make(map[string]*compactsg.Grid)
	type gridFile struct{ name, path string }
	var files []gridFile
	for k := 0; k < 3; k++ {
		name := fmt.Sprintf("g%d", k)
		g, err := compactsg.New(2, 4)
		if err != nil {
			t.Fatal(err)
		}
		g.Compress(func(x []float64) float64 {
			return float64(k+1) * (x[0] + 2*x[1])
		})
		path := filepath.Join(dir, name+".sg")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Save(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		refs[name] = g
		files = append(files, gridFile{name, path})
	}

	proxies, err := middleware.ParseProxies("127.0.0.0/8")
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]*testShard, n)
	for i := range shards {
		srv := serve.New(serve.Config{ShardID: fmt.Sprintf("s%d", i)})
		for _, gf := range files {
			if err := srv.AddGrid(gf.name, gf.path); err != nil {
				t.Fatal(err)
			}
		}
		if err := srv.Preload(); err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: middleware.Chain(srv.Handler(),
			middleware.RequestID(proxies), middleware.RealIP(proxies))}
		go hs.Serve(ln) //nolint:errcheck
		shards[i] = &testShard{id: fmt.Sprintf("s%d", i), addr: ln.Addr().String(), srv: srv, hs: hs}
		t.Cleanup(shards[i].kill)
	}
	return shards, refs
}

func newTestProxy(t *testing.T, shards []*testShard, cfg Config) *Proxy {
	t.Helper()
	topo := Topology{Epoch: 1}
	for _, s := range shards {
		topo.Shards = append(topo.Shards, Shard{ID: s.id, Addr: s.addr})
	}
	p, err := New(cfg, topo)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func proxyPost(p *Proxy, path, contentType, reqID string, body []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest("POST", path, bytes.NewReader(body))
	req.Header.Set("Content-Type", contentType)
	if reqID != "" {
		req.Header.Set("X-Request-Id", reqID)
	}
	rec := httptest.NewRecorder()
	p.Handler().ServeHTTP(rec, req)
	return rec
}

// TestProxyTerminatesBothProtocols: JSON and binary clients must get
// correct values through the proxy, with the inner hop always binary.
func TestProxyTerminatesBothProtocols(t *testing.T) {
	shards, refs := startShards(t, 3)
	p := newTestProxy(t, shards, Config{})
	x := []float64{0.25, 0.75}
	for name, ref := range refs {
		want, err := ref.Evaluate(x)
		if err != nil {
			t.Fatal(err)
		}

		body, _ := json.Marshal(map[string]any{"grid": name, "point": x})
		rec := proxyPost(p, "/v1/eval", "application/json", "", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("eval %s: status %d body %s", name, rec.Code, rec.Body)
		}
		var single struct {
			Value float64 `json:"value"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &single); err != nil {
			t.Fatal(err)
		}
		if math.Abs(single.Value-want) > 1e-12 {
			t.Fatalf("eval %s: got %g want %g", name, single.Value, want)
		}

		body, _ = json.Marshal(map[string]any{"grid": name, "points": [][]float64{x, x}})
		rec = proxyPost(p, "/v1/eval/batch", "application/json", "", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("batch %s: status %d body %s", name, rec.Code, rec.Body)
		}
		var batch struct {
			Values []float64 `json:"values"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &batch); err != nil {
			t.Fatal(err)
		}
		if len(batch.Values) != 2 || math.Abs(batch.Values[0]-want) > 1e-12 {
			t.Fatalf("batch %s: got %v want two of %g", name, batch.Values, want)
		}

		rec = proxyPost(p, "/v1/eval/bin", serve.BinContentType, "",
			serve.AppendEvalFrame(nil, name, [][]float64{x}))
		if rec.Code != http.StatusOK {
			t.Fatalf("bin %s: status %d body %s", name, rec.Code, rec.Body)
		}
		if ct := rec.Header().Get("Content-Type"); ct != serve.BinContentType {
			t.Fatalf("bin %s: Content-Type %q", name, ct)
		}
		vals, err := serve.ParseValuesFrame(rec.Body.Bytes())
		if err != nil || len(vals) != 1 {
			t.Fatalf("bin %s: vals=%v err=%v", name, vals, err)
		}
		if math.Abs(vals[0]-want) > 1e-12 {
			t.Fatalf("bin %s: got %g want %g", name, vals[0], want)
		}
	}
}

// TestProxyRelaysUpstreamErrors: a shard's 404 for an unknown grid
// must come back through the proxy with the status and JSON error body
// intact, not be mistaken for a shard failure and retried to death.
func TestProxyRelaysUpstreamErrors(t *testing.T) {
	shards, _ := startShards(t, 2)
	p := newTestProxy(t, shards, Config{})
	rec := proxyPost(p, "/v1/eval/bin", serve.BinContentType, "",
		serve.AppendEvalFrame(nil, "nope", [][]float64{{0.5, 0.5}}))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "unknown grid") {
		t.Fatalf("body %q lacks the shard's error", rec.Body)
	}
	if got := p.met.retries.Value(); got != 0 {
		t.Fatalf("a 404 caused %d retries; client errors must not burn the failover budget", got)
	}
	if got := p.met.errors.With("eval_bin").Value(); got != 1 {
		t.Fatalf("sgproxy_errors_total{eval_bin} = %d after a relayed 404, want 1 (relayed errors are client-visible failures)", got)
	}
}

// TestProxyFailover: with one of three shards dead, every request must
// still answer correctly via replica retry, and the retry/failover
// counters must show the proxy actually took that path.
func TestProxyFailover(t *testing.T) {
	shards, refs := startShards(t, 3)
	p := newTestProxy(t, shards, Config{
		UpstreamTimeout: 2 * time.Second,
		BreakerCooloff:  50 * time.Millisecond,
	})
	shards[1].kill()

	x := []float64{0.5, 0.5}
	for name, ref := range refs {
		want, _ := ref.Evaluate(x)
		for k := 0; k < 8; k++ {
			rec := proxyPost(p, "/v1/eval/bin", serve.BinContentType, "",
				serve.AppendEvalFrame(nil, name, [][]float64{x}))
			if rec.Code != http.StatusOK {
				t.Fatalf("%s try %d: status %d body %s (failover must hide one dead shard)", name, k, rec.Code, rec.Body)
			}
			vals, err := serve.ParseValuesFrame(rec.Body.Bytes())
			if err != nil || len(vals) != 1 || math.Abs(vals[0]-want) > 1e-12 {
				t.Fatalf("%s try %d: vals=%v err=%v want %g", name, k, vals, err, want)
			}
		}
	}
	if p.met.failovers.Value() == 0 {
		t.Fatal("no request failed over; the dead shard owned none of the test grids (raise grid count)")
	}
}

// TestProxyTopologySwap: the epoch bump is the rebalance mechanism —
// stale epochs must be refused (409 over HTTP) and a newer epoch must
// route to the replacement shard.
func TestProxyTopologySwap(t *testing.T) {
	shards, refs := startShards(t, 3)
	p := newTestProxy(t, shards, Config{})

	// Same epoch: refused.
	if err := p.SetTopology(p.Topology()); err == nil {
		t.Fatal("SetTopology accepted a non-newer epoch")
	}
	stale, _ := json.Marshal(p.Topology())
	rec := proxyPost(p, "/admin/topology", "application/json", "", stale)
	if rec.Code != http.StatusConflict {
		t.Fatalf("stale epoch POST: status %d, want 409", rec.Code)
	}

	// Kill s1 and swap in a replacement with the same ID on a new port.
	shards[1].kill()
	repl, _ := startShards(t, 1)
	next := p.Topology()
	next.Epoch = 2
	for i := range next.Shards {
		if next.Shards[i].ID == "s1" {
			next.Shards[i].Addr = repl[0].addr
		}
	}
	body, _ := json.Marshal(next)
	rec = proxyPost(p, "/admin/topology", "application/json", "", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("topology bump: status %d body %s", rec.Code, rec.Body)
	}
	if got := p.Topology().Epoch; got != 2 {
		t.Fatalf("epoch %d after bump, want 2", got)
	}

	// Every grid answers; the replacement's serve counter must move for
	// grids it owns (it reuses s1's ring position).
	x := []float64{0.25, 0.5}
	for name, ref := range refs {
		want, _ := ref.Evaluate(x)
		rec := proxyPost(p, "/v1/eval/bin", serve.BinContentType, "",
			serve.AppendEvalFrame(nil, name, [][]float64{x}))
		if rec.Code != http.StatusOK {
			t.Fatalf("%s after swap: status %d body %s", name, rec.Code, rec.Body)
		}
		if vals, err := serve.ParseValuesFrame(rec.Body.Bytes()); err != nil || math.Abs(vals[0]-want) > 1e-12 {
			t.Fatalf("%s after swap: vals=%v err=%v want %g", name, vals, err, want)
		}
	}
}

// TestProxyRequestIDPropagation: one client request must be findable
// under the same external ID in BOTH processes' trace rings — the
// proxy's (via Span.SetExtID) and the shard's (via the forwarded
// X-Request-Id header surviving the shard's trusted-proxy middleware).
func TestProxyRequestIDPropagation(t *testing.T) {
	shards, _ := startShards(t, 2)
	p := newTestProxy(t, shards, Config{})
	const reqID = "trace-me-123"
	rec := proxyPost(p, "/v1/eval/bin", serve.BinContentType, reqID,
		serve.AppendEvalFrame(nil, "g0", [][]float64{{0.5, 0.5}}))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d body %s", rec.Code, rec.Body)
	}

	foundProxy := false
	for _, tr := range p.tracer.Snapshot() {
		if tr.ExtID == reqID {
			foundProxy = true
		}
	}
	if !foundProxy {
		t.Fatal("proxy trace ring has no trace with the client's X-Request-Id")
	}
	foundShard := false
	for _, s := range shards {
		for _, tr := range s.srv.Tracer().Snapshot() {
			if tr.ExtID == reqID {
				foundShard = true
			}
		}
	}
	if !foundShard {
		t.Fatal("no shard trace carries the propagated X-Request-Id; the hop is untraceable")
	}
}

// TestProxyHealthz: the detail endpoint reports per-shard state, and a
// fully-dead backend set turns the proxy 503 once the poller has run.
func TestProxyHealthz(t *testing.T) {
	shards, _ := startShards(t, 2)
	p := newTestProxy(t, shards, Config{HealthInterval: 20 * time.Millisecond, HealthTimeout: 200 * time.Millisecond})
	p.Start()

	rec := httptest.NewRecorder()
	p.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthy cluster: status %d body %s", rec.Code, rec.Body)
	}
	var resp struct {
		Status string `json:"status"`
		Epoch  uint64 `json:"epoch"`
		Shards []struct {
			ID      string `json:"id"`
			Healthy bool   `json:"healthy"`
		} `json:"shards"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Epoch != 1 || len(resp.Shards) != 2 {
		t.Fatalf("healthz = %+v", resp)
	}

	for _, s := range shards {
		s.kill()
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		rec = httptest.NewRecorder()
		p.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		if rec.Code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("proxy still reports %d with every shard dead", rec.Code)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestProxyGrids: the grid listing relays from a live shard even when
// the first shard in topology order is dead.
func TestProxyGrids(t *testing.T) {
	shards, refs := startShards(t, 2)
	p := newTestProxy(t, shards, Config{})
	shards[0].kill()

	rec := httptest.NewRecorder()
	p.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/grids", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d body %s", rec.Code, rec.Body)
	}
	var resp struct {
		Grids []struct {
			Name string `json:"name"`
		} `json:"grids"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Grids) != len(refs) {
		t.Fatalf("%d grids relayed, want %d", len(resp.Grids), len(refs))
	}
}
