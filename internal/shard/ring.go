// Package shard is the horizontal-scale layer over the single-process
// evaluation server: a consistent-hash ring that assigns grid names to
// sgserve shards, a topology snapshot with an epoch counter so routing
// can be swapped atomically when shards join or die, and the routing
// proxy (Proxy, cmd/sgproxy) that terminates client HTTP/JSON and
// binary-frame requests and forwards them upstream over persistent
// connections speaking the binary protocol.
//
// The design leans on two properties earlier PRs bought: SGC2 mmap
// cold loads at ~0.4ms make shard failover cheap (a replacement shard
// pages in its assignment in well under a second), and the binary
// frame protocol makes the extra proxy hop a frame copy instead of a
// JSON round trip.
package shard

import (
	"fmt"
	"sort"
	"strconv"
)

// A Shard is one sgserve backend.
type Shard struct {
	// ID names the shard stably across address changes ("s0", "s1").
	// Ring placement hashes the ID, so a replacement shard that reuses
	// a dead shard's ID inherits its assignment exactly — the cheap
	// failover path — while a fresh ID triggers a 1/n rebalance.
	ID string `json:"id"`
	// Addr is the shard's host:port (no scheme; upstream connections
	// speak HTTP/1.1 over plain TCP).
	Addr string `json:"addr"`
}

// A Topology is an immutable snapshot of the shard set. Epoch orders
// snapshots: the router only ever moves to a strictly newer epoch, so
// a delayed or replayed update can never roll routing back.
type Topology struct {
	Epoch  uint64  `json:"epoch"`
	Shards []Shard `json:"shards"`
}

// Validate checks a topology for structural problems before it is
// allowed to become the routing state.
func (t Topology) Validate() error {
	if len(t.Shards) == 0 {
		return fmt.Errorf("shard: topology %d has no shards", t.Epoch)
	}
	// OwnersInto tracks visited shards in a uint64 bitmask; 64 shards
	// is far beyond what one proxy should front anyway.
	if len(t.Shards) > 64 {
		return fmt.Errorf("shard: topology %d has %d shards, max 64", t.Epoch, len(t.Shards))
	}
	ids := make(map[string]bool, len(t.Shards))
	for _, s := range t.Shards {
		if s.ID == "" || s.Addr == "" {
			return fmt.Errorf("shard: topology %d has a shard with empty id or addr", t.Epoch)
		}
		if ids[s.ID] {
			return fmt.Errorf("shard: topology %d repeats shard id %q", t.Epoch, s.ID)
		}
		ids[s.ID] = true
	}
	return nil
}

// DefaultVirtualNodes is the per-shard vnode count. 128 points per
// shard keeps the keyspace share within a few percent of uniform for
// small clusters while the ring (n·128 entries) stays cache-resident.
const DefaultVirtualNodes = 128

// mix64 is the murmur3 64-bit finalizer. Raw FNV-1a over short,
// nearly-identical keys (vnode labels "s0#0".."s0#127") leaves its
// outputs correlated enough that one shard can end up owning half the
// circle; the avalanche pass makes the arc lengths behave like uniform
// draws (TestRingBalance pins this).
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// fnv1a is finalized FNV-1a 64 over b, inlined so ring lookups hash
// wire-decoded name bytes without converting them to a string (no
// allocation on the forwarding hot path).
func fnv1a(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return mix64(h)
}

// fnv1aString is fnv1a for string keys (vnode labels at build time).
func fnv1aString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return mix64(h)
}

// A Ring maps grid names to shards by consistent hashing: every shard
// contributes vnodes points on a 64-bit circle, a name routes to the
// first point clockwise of its hash, and the replica set is the first
// n distinct shards continuing clockwise. Rings are immutable once
// built; topology changes build a new Ring and swap it in atomically.
type Ring struct {
	topo   Topology
	hashes []uint64 // sorted vnode positions
	owner  []int32  // hashes[i] belongs to topo.Shards[owner[i]]
}

// NewRing builds the ring for t with the given vnodes per shard
// (<=0 takes DefaultVirtualNodes). Vnode positions depend only on
// shard IDs, so every proxy that sees the same topology routes
// identically — the assignment is deterministic, not seeded.
func NewRing(t Topology, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{
		topo:   t,
		hashes: make([]uint64, 0, len(t.Shards)*vnodes),
		owner:  make([]int32, 0, len(t.Shards)*vnodes),
	}
	type point struct {
		h     uint64
		shard int32
	}
	pts := make([]point, 0, len(t.Shards)*vnodes)
	for si, s := range t.Shards {
		for v := 0; v < vnodes; v++ {
			h := fnv1aString(s.ID + "#" + strconv.Itoa(v))
			pts = append(pts, point{h, int32(si)})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].h != pts[j].h {
			return pts[i].h < pts[j].h
		}
		// Ties broken by shard index so the order is fully determined
		// by the topology (hash collisions are astronomically rare but
		// must not make two proxies disagree).
		return pts[i].shard < pts[j].shard
	})
	for _, p := range pts {
		r.hashes = append(r.hashes, p.h)
		r.owner = append(r.owner, p.shard)
	}
	return r
}

// Topology returns the snapshot the ring was built from.
func (r *Ring) Topology() Topology { return r.topo }

// OwnersInto appends the indices (into Topology().Shards) of the first
// n distinct shards owning name, in preference order, to dst and
// returns it. The primary owner comes first; the rest are the failover
// replicas. n is clamped to the shard count. dst is reused so the
// forwarding hot path does not allocate.
func (r *Ring) OwnersInto(dst []int, name []byte, n int) []int {
	if n > len(r.topo.Shards) {
		n = len(r.topo.Shards)
	}
	if n <= 0 || len(r.hashes) == 0 {
		return dst
	}
	h := fnv1a(name)
	// First vnode clockwise of h (wrapping).
	i := sort.Search(len(r.hashes), func(k int) bool { return r.hashes[k] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	var seen uint64 // bitmask over shard indices; topologies are small
	for k := 0; k < len(r.hashes) && n > 0; k++ {
		s := r.owner[(i+k)%len(r.hashes)]
		if seen&(1<<uint(s)) != 0 {
			continue
		}
		seen |= 1 << uint(s)
		dst = append(dst, int(s))
		n--
	}
	return dst
}

// Owner returns the primary shard for name (convenience over
// OwnersInto for callers off the hot path).
func (r *Ring) Owner(name string) Shard {
	var buf [1]int
	out := r.OwnersInto(buf[:0], []byte(name), 1)
	if len(out) == 0 {
		return Shard{}
	}
	return r.topo.Shards[out[0]]
}
