package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"compactsg/internal/obs"
	"compactsg/internal/serve"
	"compactsg/internal/serve/metrics"
)

// Config tunes a Proxy. The zero value is usable; zero fields take the
// listed defaults.
type Config struct {
	// Replicas is how many distinct shards each grid name is assigned
	// to (the primary plus failover candidates). Default 2, clamped to
	// the shard count.
	Replicas int
	// VirtualNodes per shard on the hash ring. Default
	// DefaultVirtualNodes.
	VirtualNodes int
	// Retries is how many additional shards are tried after the first
	// attempt fails (evaluations are idempotent, so replica retry is
	// always safe). Zero means the default, Replicas-1; to disable
	// retries entirely pass a negative value.
	Retries int
	// UpstreamTimeout bounds one upstream attempt. Default 10s.
	UpstreamTimeout time.Duration
	// HealthInterval is the /healthz polling period. Default 250ms.
	HealthInterval time.Duration
	// HealthTimeout bounds one health probe. Default 1s.
	HealthTimeout time.Duration
	// BreakerFails is how many consecutive request failures open a
	// shard's circuit breaker. Default 3.
	BreakerFails int
	// BreakerCooloff is how long an open breaker keeps the shard out
	// of the candidate order before the next probe request. Default
	// 500ms.
	BreakerCooloff time.Duration
	// MaxBodyBytes caps client request bodies. Default 1 MiB.
	MaxBodyBytes int64
	// TraceRing is how many recent request traces are retained for
	// GET /debug/traces. 0 takes the default (256); negative disables.
	TraceRing int
	// ErrorLog receives handler panic reports. Default slog.Default().
	ErrorLog *slog.Logger
	// Dial overrides upstream dialing (tests use it to fail fast or
	// route through pipes). Nil means TCP with a 2s dial timeout.
	Dial func(addr string) (net.Conn, error)
}

func (c *Config) fill() {
	if c.Replicas < 1 {
		c.Replicas = 2
	}
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = DefaultVirtualNodes
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = c.Replicas - 1
	}
	if c.UpstreamTimeout <= 0 {
		c.UpstreamTimeout = 10 * time.Second
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 250 * time.Millisecond
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = time.Second
	}
	if c.BreakerFails < 1 {
		c.BreakerFails = 3
	}
	if c.BreakerCooloff <= 0 {
		c.BreakerCooloff = 500 * time.Millisecond
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.TraceRing == 0 {
		c.TraceRing = 256
	}
	if c.ErrorLog == nil {
		c.ErrorLog = slog.Default()
	}
}

// routeState is one immutable routing epoch: the ring plus the
// upstream handles aligned with its shard indices. Swapped atomically
// on topology change, so the forwarding hot path reads one pointer and
// never takes a lock.
type routeState struct {
	ring *Ring
	ups  []*upstream
}

// Proxy terminates client HTTP/JSON and binary-frame evaluation
// requests, routes each grid name to its owning shard through the
// consistent-hash ring, and forwards upstream over persistent
// connections speaking the binary protocol regardless of the client's
// protocol — the extra hop costs a frame copy, not a JSON round trip.
type Proxy struct {
	cfg    Config
	mu     sync.Mutex // serializes topology swaps
	state  atomic.Pointer[routeState]
	mux    *http.ServeMux
	tracer *obs.Tracer
	httpc  *http.Client // health probes and /v1/grids fan-out (not the hot path)
	writec *http.Client // observe/refine relay; longer timeout than probes

	healthStop chan struct{}
	healthDone chan struct{}
	healthOnce sync.Once
	closeOnce  sync.Once

	met proxyMetrics
}

type proxyMetrics struct {
	registry  *metrics.Registry
	requests  *metrics.CounterVec
	errors    *metrics.CounterVec
	latency   *metrics.HistogramVec
	upReq     *metrics.CounterVec
	upFail    *metrics.CounterVec
	retries   *metrics.Counter
	failovers *metrics.Counter
	upConns   *metrics.Gauge
	healthy   *metrics.Gauge
	epoch     *metrics.Gauge
	points    *metrics.Counter
}

// New creates a Proxy routing over the initial topology. Call Start to
// begin health polling and Close on shutdown.
func New(cfg Config, t Topology) (*Proxy, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	cfg.fill()
	p := &Proxy{
		cfg:        cfg,
		tracer:     obs.New(cfg.TraceRing),
		healthStop: make(chan struct{}),
		healthDone: make(chan struct{}),
		httpc:      &http.Client{Timeout: cfg.HealthTimeout},
		writec:     &http.Client{Timeout: cfg.UpstreamTimeout},
	}

	r := metrics.NewRegistry()
	p.met = proxyMetrics{
		registry:  r,
		requests:  r.NewCounterVec("sgproxy_requests_total", "Client requests received, by handler and wire protocol (json or bin).", "handler", "protocol"),
		errors:    r.NewCounterVec("sgproxy_errors_total", "Client requests answered with a non-2xx status, by handler.", "handler"),
		latency:   r.NewHistogramVec("sgproxy_request_seconds", "Client request latency in seconds, by handler.", "handler", metrics.DefLatencyBuckets),
		upReq:     r.NewCounterVec("sgproxy_upstream_requests_total", "Upstream attempts, by shard ID.", "shard"),
		upFail:    r.NewCounterVec("sgproxy_upstream_failures_total", "Upstream attempts that failed (transport error, 502 or 503), by shard ID.", "shard"),
		retries:   r.NewCounter("sgproxy_retries_total", "Requests retried on a replica after an upstream attempt failed."),
		failovers: r.NewCounter("sgproxy_failovers_total", "Requests answered by a non-primary replica."),
		upConns:   r.NewGauge("sgproxy_upstream_open_connections", "Persistent upstream connections currently open (pooled idle plus in-flight)."),
		healthy:   r.NewGauge("sgproxy_shards_healthy", "Shards currently passing active health checks with a closed breaker."),
		epoch:     r.NewGauge("sgproxy_topology_epoch", "Epoch of the topology currently routing."),
		points:    r.NewCounter("sgproxy_points_forwarded_total", "Evaluation points forwarded upstream."),
	}

	p.state.Store(p.buildState(t, nil))
	p.met.epoch.Set(float64(t.Epoch))
	p.met.healthy.Set(float64(len(t.Shards)))

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", p.handleHealthz)
	mux.Handle("GET /metrics", r.Handler())
	mux.Handle("GET /debug/traces", p.tracer.Handler())
	mux.HandleFunc("GET /v1/grids", p.handleGrids)
	mux.HandleFunc("POST /v1/eval", p.instrument("eval", "json", p.handleEvalJSON))
	mux.HandleFunc("POST /v1/eval/batch", p.instrument("batch", "json", p.handleBatchJSON))
	mux.HandleFunc("POST /v1/eval/bin", p.instrument("eval_bin", "bin", p.handleEvalBin))
	mux.HandleFunc("POST /v1/grids/{name}/observe", p.instrument("observe", "json", p.handleObserveRelay))
	mux.HandleFunc("POST /v1/grids/{name}/refine", p.instrument("refine", "json", p.handleRefineRelay))
	mux.HandleFunc("GET /admin/topology", p.handleTopologyGet)
	mux.HandleFunc("POST /admin/topology", p.handleTopologySet)
	p.mux = mux
	return p, nil
}

// buildState constructs the routing state for t, carrying over the
// upstream handle (connection pool + breaker state) of every shard
// whose ID and address both survive from prev. A replacement shard —
// same ID, new address — gets a fresh handle and a clean breaker.
func (p *Proxy) buildState(t Topology, prev *routeState) *routeState {
	carried := make(map[string]*upstream)
	if prev != nil {
		for _, u := range prev.ups {
			carried[u.shard.ID+"\x00"+u.shard.Addr] = u
		}
	}
	rs := &routeState{ring: NewRing(t, p.cfg.VirtualNodes)}
	rs.ups = make([]*upstream, len(t.Shards))
	for i, s := range t.Shards {
		if u, ok := carried[s.ID+"\x00"+s.Addr]; ok {
			rs.ups[i] = u
			delete(carried, s.ID+"\x00"+s.Addr)
			continue
		}
		u := newUpstream(s, p.cfg.Dial, p.met.upConns)
		u.metReq = p.met.upReq.With(s.ID)
		u.metFail = p.met.upFail.With(s.ID)
		rs.ups[i] = u
	}
	// Shards not carried over are gone; drain their pools.
	for _, u := range carried {
		u.close()
	}
	return rs
}

// Handler returns the routing handler for an http.Server.
func (p *Proxy) Handler() http.Handler { return p.mux }

// Metrics exposes the proxy's metrics registry.
func (p *Proxy) Metrics() *metrics.Registry { return p.met.registry }

// Topology returns the topology currently routing.
func (p *Proxy) Topology() Topology { return p.state.Load().ring.Topology() }

// SetTopology swaps in a strictly newer topology; routing rebalances
// atomically and connection pools of surviving shards are kept warm.
func (p *Proxy) SetTopology(t Topology) error {
	if err := t.Validate(); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	cur := p.state.Load()
	if t.Epoch <= cur.ring.Topology().Epoch {
		return fmt.Errorf("shard: topology epoch %d is not newer than the current %d",
			t.Epoch, cur.ring.Topology().Epoch)
	}
	p.state.Store(p.buildState(t, cur))
	p.met.epoch.Set(float64(t.Epoch))
	return nil
}

// Start launches the health poller. Safe to call once.
func (p *Proxy) Start() {
	p.healthOnce.Do(func() { go p.healthLoop() })
}

// Close stops the poller and drains every upstream connection pool.
func (p *Proxy) Close() {
	p.closeOnce.Do(func() {
		close(p.healthStop)
		p.healthOnce.Do(func() { close(p.healthDone) }) // poller never started
		<-p.healthDone
		for _, u := range p.state.Load().ups {
			u.close()
		}
	})
}

// healthLoop polls every shard's /healthz on the configured interval
// and publishes verdicts into the upstream handles the hot path reads.
func (p *Proxy) healthLoop() {
	defer close(p.healthDone)
	tick := time.NewTicker(p.cfg.HealthInterval)
	defer tick.Stop()
	for {
		p.pollHealth()
		select {
		case <-p.healthStop:
			return
		case <-tick.C:
		}
	}
}

// pollHealth runs one sweep. Probes run sequentially — shard counts
// are small and the probe timeout bounds the sweep.
func (p *Proxy) pollHealth() {
	rs := p.state.Load()
	now := time.Now()
	healthy := 0
	for _, u := range rs.ups {
		ok := p.probe(u)
		u.unhealthy.Store(!ok)
		if ok && u.available(now) {
			healthy++
		}
	}
	p.met.healthy.Set(float64(healthy))
}

func (p *Proxy) probe(u *upstream) bool {
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", "http://"+u.shard.Addr+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := p.httpc.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// ---------------------------------------------------------------------
// forwarding

// proxyBuf owns every buffer one forwarded request needs. Pooled so
// the steady-state binary forward costs no allocations.
type proxyBuf struct {
	raw    []byte // client request body
	frame  []byte // frame built from a JSON request
	owners []int  // replica candidates for this request
	rt     rtBuf  // upstream round-trip buffers
}

var proxyBufPool = sync.Pool{New: func() any { return new(proxyBuf) }}

var errNoShard = errors.New("shard: no shard available")

// forward routes frame by name and tries replicas in candidate order:
// available owners first (healthy, breaker closed), then — only if
// every owner is sidelined — the sidelined ones as a last resort, so
// a fully-tripped candidate set still gets probe traffic instead of
// failing fast forever. Transport errors and 502/503 fail over to the
// next replica (evaluations are idempotent); any other status is the
// shard's answer and is relayed. Returns the upstream status.
func (p *Proxy) forward(rs *routeState, pb *proxyBuf, frame []byte, name []byte, reqID string) (int, error) {
	pb.owners = rs.ring.OwnersInto(pb.owners[:0], name, p.cfg.Replicas)
	if len(pb.owners) == 0 {
		return 0, errNoShard
	}
	now := time.Now()
	// Stable-partition the owner order: available first. The common
	// case (everything up) takes the first branch only.
	avail := 0
	for _, si := range pb.owners {
		if rs.ups[si].available(now) {
			avail++
		}
	}
	if avail > 0 && avail < len(pb.owners) {
		// Rebuild pb.owners in partitioned order using the tail of the
		// same slice as scratch (capacity 2× owners is tiny).
		n := len(pb.owners)
		pb.owners = pb.owners[:n] // re-slice for clarity
		for _, si := range pb.owners[:n] {
			if !rs.ups[si].available(now) {
				pb.owners = append(pb.owners, si)
			}
		}
		k := 0
		for _, si := range pb.owners[:n] {
			if rs.ups[si].available(now) {
				pb.owners[k] = si
				k++
			}
		}
		copy(pb.owners[k:n], pb.owners[n:])
		pb.owners = pb.owners[:n]
	}

	budget := p.cfg.Retries + 1
	var lastErr error
	for i, si := range pb.owners {
		if i >= budget {
			break
		}
		if i > 0 {
			p.met.retries.Inc()
		}
		u := rs.ups[si]
		u.metReq.Inc()
		deadline := time.Now().Add(p.cfg.UpstreamTimeout)
		status, err := u.roundTrip(&pb.rt, frame, reqID, deadline)
		if err != nil {
			u.fail(int32(p.cfg.BreakerFails), p.cfg.BreakerCooloff)
			u.metFail.Inc()
			lastErr = err
			continue
		}
		if status == http.StatusBadGateway || status == http.StatusServiceUnavailable {
			u.fail(int32(p.cfg.BreakerFails), p.cfg.BreakerCooloff)
			u.metFail.Inc()
			lastErr = fmt.Errorf("shard %s answered %d", u.shard.ID, status)
			continue
		}
		u.success()
		if i > 0 {
			p.met.failovers.Inc()
		}
		return status, nil
	}
	if lastErr == nil {
		lastErr = errNoShard
	}
	return 0, lastErr
}

// readClientBody drains r into pb.raw without steady-state allocations.
func readClientBody(pb *proxyBuf, r io.Reader) error {
	buf := pb.raw[:0]
	if cap(buf) == 0 {
		buf = make([]byte, 0, 4096)
	}
	for {
		if len(buf) == cap(buf) {
			grown := make([]byte, len(buf), 2*cap(buf))
			copy(grown, buf)
			buf = grown
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			pb.raw = buf
			return nil
		}
		if err != nil {
			pb.raw = buf
			return err
		}
	}
}

// ---------------------------------------------------------------------
// handlers

type errorResponse struct {
	Error string `json:"error"`
}

type proxyError struct {
	status int
	msg    string
}

func (e *proxyError) Error() string { return e.msg }

func errorf(status int, format string, args ...any) *proxyError {
	return &proxyError{status: status, msg: fmt.Sprintf(format, args...)}
}

func statusFor(err error) int {
	var pe *proxyError
	if errors.As(err, &pe) {
		return pe.status
	}
	return http.StatusBadGateway
}

// instrument wraps a handler with request counting, latency, span
// lifecycle and panic recovery. The handler writes its own success
// response; returned errors render as {"error": ...} JSON.
func (p *Proxy) instrument(name, protocol string, h func(http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	reqs := p.met.requests.With(name, protocol)
	errs := p.met.errors.With(name)
	lat := p.met.latency.With(name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqs.Inc()
		sp := p.tracer.Start(name)
		if sp != nil {
			sp.SetExtID(r.Header.Get("X-Request-Id"))
			r = r.WithContext(obs.NewContext(r.Context(), sp))
		}
		defer func() {
			if pan := recover(); pan != nil {
				errs.Inc()
				p.cfg.ErrorLog.LogAttrs(r.Context(), slog.LevelError, "proxy handler panic",
					slog.String("handler", name),
					slog.String("panic", fmt.Sprint(pan)),
					slog.String("stack", string(debug.Stack())))
				sp.SetStatus(http.StatusInternalServerError)
				writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "internal server error"})
			}
			lat.Observe(time.Since(start).Seconds())
			sp.Finish()
		}()
		if err := h(w, r); err != nil {
			errs.Inc()
			status := statusFor(err)
			sp.SetError(err)
			sp.SetStatus(status)
			writeJSON(w, status, errorResponse{Error: err.Error()})
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// relayUpstream writes the upstream's response (binary values frame or
// JSON error body) to the client verbatim. Relayed error statuses are
// counted toward sgproxy_errors_total here because they return nil from
// the handler and never take instrument's error path.
func (p *Proxy) relayUpstream(w http.ResponseWriter, sp *obs.Span, pb *proxyBuf, handler string, status int) {
	if status >= 400 {
		// Off the 2xx hot path, so the vec lookup's map lock is fine.
		p.met.errors.With(handler).Inc()
	}
	sp.SetStatus(status)
	sp.Begin(obs.StageEncode)
	if pb.rt.respBin {
		w.Header().Set("Content-Type", serve.BinContentType)
	} else {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(pb.rt.resp)))
	w.WriteHeader(status)
	w.Write(pb.rt.resp)
	sp.End(obs.StageEncode)
}

// handleEvalBin forwards a client binary frame verbatim: peek the grid
// name for routing, pick the owner, one upstream round trip, relay the
// response bytes. The steady-state cost is the frame copy — zero
// allocations (asserted by TestForwardBinZeroAlloc).
func (p *Proxy) handleEvalBin(w http.ResponseWriter, r *http.Request) error {
	sp := obs.FromContext(r.Context())
	pb := proxyBufPool.Get().(*proxyBuf)
	defer proxyBufPool.Put(pb)

	sp.Begin(obs.StageDecode)
	r.Body = http.MaxBytesReader(nil, r.Body, p.cfg.MaxBodyBytes)
	err := readClientBody(pb, r.Body)
	var name []byte
	if err == nil {
		name, err = serve.FrameGridName(pb.raw)
	}
	sp.End(obs.StageDecode)
	if err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return errorf(http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", maxErr.Limit)
		}
		return errorf(http.StatusBadRequest, "invalid binary frame: %v", err)
	}

	rs := p.state.Load()
	sp.Begin(obs.StageDispatch)
	status, err := p.forward(rs, pb, pb.raw, name, r.Header.Get("X-Request-Id"))
	sp.End(obs.StageDispatch)
	if err != nil {
		return errorf(http.StatusBadGateway, "no shard answered for grid %q: %v", name, err)
	}
	p.relayUpstream(w, sp, pb, "eval_bin", status)
	return nil
}

type evalRequest struct {
	Grid  string    `json:"grid"`
	Point []float64 `json:"point"`
}

type batchRequest struct {
	Grid   string      `json:"grid"`
	Points [][]float64 `json:"points"`
}

// handleEvalJSON terminates a JSON single-point request and forwards
// it upstream as a binary frame; the response frame is translated back
// to {"value": ...} so clients cannot tell the proxy re-encoded.
func (p *Proxy) handleEvalJSON(w http.ResponseWriter, r *http.Request) error {
	sp := obs.FromContext(r.Context())
	pb := proxyBufPool.Get().(*proxyBuf)
	defer proxyBufPool.Put(pb)

	var req evalRequest
	if err := p.decodeJSON(sp, pb, r, &req); err != nil {
		return err
	}
	pb.frame = serve.AppendEvalFrame(pb.frame[:0], req.Grid, [][]float64{req.Point})
	vals, status, err := p.forwardFrame(sp, pb, req.Grid, r)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		p.relayUpstream(w, sp, pb, "eval", status)
		return nil
	}
	if len(vals) != 1 {
		return errorf(http.StatusBadGateway, "shard answered %d values for a single-point request", len(vals))
	}
	p.met.points.Add(1)
	sp.SetStatus(http.StatusOK)
	sp.Begin(obs.StageEncode)
	writeJSON(w, http.StatusOK, struct {
		Value float64 `json:"value"`
	}{vals[0]})
	sp.End(obs.StageEncode)
	return nil
}

// handleBatchJSON is handleEvalJSON for point batches.
func (p *Proxy) handleBatchJSON(w http.ResponseWriter, r *http.Request) error {
	sp := obs.FromContext(r.Context())
	pb := proxyBufPool.Get().(*proxyBuf)
	defer proxyBufPool.Put(pb)

	var req batchRequest
	if err := p.decodeJSON(sp, pb, r, &req); err != nil {
		return err
	}
	pb.frame = serve.AppendEvalFrame(pb.frame[:0], req.Grid, req.Points)
	vals, status, err := p.forwardFrame(sp, pb, req.Grid, r)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		p.relayUpstream(w, sp, pb, "batch", status)
		return nil
	}
	p.met.points.Add(uint64(len(vals)))
	sp.SetStatus(http.StatusOK)
	sp.Begin(obs.StageEncode)
	if vals == nil {
		vals = []float64{}
	}
	writeJSON(w, http.StatusOK, struct {
		Values []float64 `json:"values"`
	}{vals})
	sp.End(obs.StageEncode)
	return nil
}

func (p *Proxy) decodeJSON(sp *obs.Span, pb *proxyBuf, r *http.Request, dst any) error {
	sp.Begin(obs.StageDecode)
	defer sp.End(obs.StageDecode)
	r.Body = http.MaxBytesReader(nil, r.Body, p.cfg.MaxBodyBytes)
	if err := readClientBody(pb, r.Body); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return errorf(http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", maxErr.Limit)
		}
		return errorf(http.StatusBadRequest, "reading request body: %v", err)
	}
	if len(pb.raw) == 0 {
		return errorf(http.StatusBadRequest, "empty request body")
	}
	if err := json.Unmarshal(pb.raw, dst); err != nil {
		return errorf(http.StatusBadRequest, "invalid JSON request: %v", err)
	}
	return nil
}

// forwardFrame forwards pb.frame for grid and, on a 200, parses the
// values frame. Non-200 upstream answers come back with a nil slice
// and the status for the caller to relay.
func (p *Proxy) forwardFrame(sp *obs.Span, pb *proxyBuf, grid string, r *http.Request) ([]float64, int, error) {
	sp.SetGrid(grid)
	rs := p.state.Load()
	sp.Begin(obs.StageDispatch)
	status, err := p.forward(rs, pb, pb.frame, unsafeNameBytes(pb, grid), r.Header.Get("X-Request-Id"))
	sp.End(obs.StageDispatch)
	if err != nil {
		return nil, 0, errorf(http.StatusBadGateway, "no shard answered for grid %q: %v", grid, err)
	}
	if status != http.StatusOK {
		return nil, status, nil
	}
	vals, err := serve.ParseValuesFrame(pb.rt.resp)
	if err != nil {
		return nil, 0, errorf(http.StatusBadGateway, "shard sent an invalid values frame: %v", err)
	}
	return vals, status, nil
}

// unsafeNameBytes returns the grid name as bytes for ring routing. The
// frame was just built from grid, so its name field is exactly grid's
// bytes — alias them instead of converting the string.
func unsafeNameBytes(pb *proxyBuf, grid string) []byte {
	if len(grid) == 0 {
		return nil
	}
	return pb.frame[2 : 2+len(grid)]
}

// ---------------------------------------------------------------------
// health, grids, admin

type shardHealth struct {
	ID          string `json:"id"`
	Addr        string `json:"addr"`
	Healthy     bool   `json:"healthy"`
	BreakerOpen bool   `json:"breaker_open"`
}

type healthResponse struct {
	Status string        `json:"status"`
	Epoch  uint64        `json:"epoch"`
	Shards []shardHealth `json:"shards"`
}

func (p *Proxy) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rs := p.state.Load()
	now := time.Now()
	resp := healthResponse{Epoch: rs.ring.Topology().Epoch}
	availCount := 0
	for _, u := range rs.ups {
		h := shardHealth{
			ID:          u.shard.ID,
			Addr:        u.shard.Addr,
			Healthy:     !u.unhealthy.Load(),
			BreakerOpen: now.UnixNano() < u.openUntil.Load(),
		}
		if u.available(now) {
			availCount++
		}
		resp.Shards = append(resp.Shards, h)
	}
	status := http.StatusOK
	resp.Status = "ok"
	if availCount == 0 {
		status = http.StatusServiceUnavailable
		resp.Status = "no shards available"
	}
	writeJSON(w, status, resp)
}

// handleGrids relays GET /v1/grids from the first shard that answers
// (every shard registers the same grid files, so any copy is
// authoritative for names and shapes).
func (p *Proxy) handleGrids(w http.ResponseWriter, r *http.Request) {
	rs := p.state.Load()
	now := time.Now()
	// Two passes mirroring forward's candidate order: available
	// shards, then everyone.
	for pass := 0; pass < 2; pass++ {
		for _, u := range rs.ups {
			if pass == 0 && !u.available(now) {
				continue
			}
			ctx, cancel := context.WithTimeout(r.Context(), p.cfg.HealthTimeout)
			req, err := http.NewRequestWithContext(ctx, "GET", "http://"+u.shard.Addr+"/v1/grids", nil)
			if err != nil {
				cancel()
				continue
			}
			resp, err := p.httpc.Do(req)
			if err != nil {
				cancel()
				continue
			}
			if resp.StatusCode != http.StatusOK {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				cancel()
				continue
			}
			w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
			w.WriteHeader(http.StatusOK)
			io.Copy(w, resp.Body)
			resp.Body.Close()
			cancel()
			return
		}
	}
	writeJSON(w, http.StatusBadGateway, errorResponse{Error: "no shard answered /v1/grids"})
}

// ---------------------------------------------------------------------
// online write-path relay

// handleObserveRelay / handleRefineRelay forward online write traffic
// (observations and refine/swap triggers) to the shard that OWNS the
// grid name — the same ring owner evaluations route to, so a model's
// observations, refinement state, and swapped snapshots all live on
// one shard. Unlike evaluations, writes are not idempotent: exactly
// one upstream attempt is made (the first available owner) and its
// answer — success or failure — is relayed verbatim, never retried on
// a replica.
func (p *Proxy) handleObserveRelay(w http.ResponseWriter, r *http.Request) error {
	return p.relayWrite(w, r, "observe")
}

func (p *Proxy) handleRefineRelay(w http.ResponseWriter, r *http.Request) error {
	return p.relayWrite(w, r, "refine")
}

func (p *Proxy) relayWrite(w http.ResponseWriter, r *http.Request, verb string) error {
	sp := obs.FromContext(r.Context())
	name := r.PathValue("name")
	if name == "" {
		return errorf(http.StatusBadRequest, "missing grid name")
	}
	sp.SetGrid(name)

	sp.Begin(obs.StageDecode)
	r.Body = http.MaxBytesReader(nil, r.Body, p.cfg.MaxBodyBytes)
	body, err := io.ReadAll(r.Body)
	sp.End(obs.StageDecode)
	if err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return errorf(http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", maxErr.Limit)
		}
		return errorf(http.StatusBadRequest, "reading request body: %v", err)
	}

	rs := p.state.Load()
	owners := rs.ring.OwnersInto(nil, []byte(name), p.cfg.Replicas)
	if len(owners) == 0 {
		return errorf(http.StatusServiceUnavailable, "no shard available for grid %q", name)
	}
	// The first available owner is the write primary; with every owner
	// sidelined, fall back to the ring primary so the client gets the
	// real upstream error rather than a synthesized one.
	now := time.Now()
	u := rs.ups[owners[0]]
	for _, idx := range owners {
		if rs.ups[idx].available(now) {
			u = rs.ups[idx]
			break
		}
	}

	ctx, cancel := context.WithTimeout(r.Context(), p.cfg.UpstreamTimeout)
	defer cancel()
	url := "http://" + u.shard.Addr + "/v1/grids/" + name + "/" + verb
	req, err := http.NewRequestWithContext(ctx, "POST", url, bytes.NewReader(body))
	if err != nil {
		return errorf(http.StatusInternalServerError, "building upstream request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if id := r.Header.Get("X-Request-Id"); id != "" {
		req.Header.Set("X-Request-Id", id)
	}
	u.metReq.Inc()
	sp.Begin(obs.StageDispatch)
	resp, err := p.writec.Do(req)
	sp.End(obs.StageDispatch)
	if err != nil {
		u.metFail.Inc()
		return errorf(http.StatusBadGateway, "shard %s did not answer %s for grid %q: %v", u.shard.ID, verb, name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		u.metFail.Inc()
	}
	if resp.StatusCode >= 400 {
		// Relayed errors return nil below and skip instrument's error
		// path; count them here like relayUpstream does.
		p.met.errors.With(verb).Inc()
	}
	sp.SetStatus(resp.StatusCode)
	sp.Begin(obs.StageEncode)
	ct := resp.Header.Get("Content-Type")
	if ct == "" {
		ct = "application/json; charset=utf-8"
	}
	w.Header().Set("Content-Type", ct)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	sp.End(obs.StageEncode)
	return nil
}

func (p *Proxy) handleTopologyGet(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, p.Topology())
}

// handleTopologySet swaps the routing topology: POST a Topology JSON
// with a strictly newer epoch. Stale epochs are 409s, so concurrent
// controllers cannot fight routing backwards.
func (p *Proxy) handleTopologySet(w http.ResponseWriter, r *http.Request) {
	var t Topology
	r.Body = http.MaxBytesReader(nil, r.Body, p.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&t); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("invalid topology: %v", err)})
		return
	}
	if err := p.SetTopology(t); err != nil {
		status := http.StatusBadRequest
		if t.Validate() == nil {
			status = http.StatusConflict // structurally fine, stale epoch
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	// Re-poll immediately so a replacement shard turns routable without
	// waiting out a full health interval.
	p.pollHealth()
	writeJSON(w, http.StatusOK, p.Topology())
}
