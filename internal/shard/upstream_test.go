package shard

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"compactsg/internal/serve/metrics"
)

func testConnGauge() *metrics.Gauge {
	return metrics.NewRegistry().NewGauge("test_upstream_conns", "test")
}

// oneShotServer accepts connections, answers exactly one HTTP request
// on each, then closes the connection — the shape of a shard whose
// keep-alive idle timeout fires between the proxy's requests, leaving
// the proxy's pooled connection dead without it knowing.
func oneShotServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				req, err := http.ReadRequest(bufio.NewReader(c))
				if err != nil {
					return
				}
				io.Copy(io.Discard, req.Body)
				req.Body.Close()
				c.Write([]byte("HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok"))
			}(c)
		}
	}()
	return ln
}

// TestRoundTripRetriesStalePooledConn: after a shard closes a pooled
// keep-alive connection, the next roundTrip through that pool must
// transparently redial instead of reporting a shard failure — a
// traffic lull must not burn the failover budget or trip breakers on
// healthy shards.
func TestRoundTripRetriesStalePooledConn(t *testing.T) {
	ln := oneShotServer(t)
	var dials atomic.Int32
	u := newUpstream(Shard{ID: "s0", Addr: ln.Addr().String()}, func(addr string) (net.Conn, error) {
		dials.Add(1)
		return net.DialTimeout("tcp", addr, time.Second)
	}, testConnGauge())
	defer u.close()

	var b rtBuf
	frame := []byte("frame-bytes")
	status, err := u.roundTrip(&b, frame, "", time.Now().Add(2*time.Second))
	if err != nil || status != http.StatusOK {
		t.Fatalf("first roundTrip: status=%d err=%v", status, err)
	}
	if got := dials.Load(); got != 1 {
		t.Fatalf("first roundTrip dialed %d times, want 1", got)
	}
	// The server has closed the pooled connection by now (give its
	// Close a moment to land so the stale path is taken, not a race).
	time.Sleep(50 * time.Millisecond)
	status, err = u.roundTrip(&b, frame, "", time.Now().Add(2*time.Second))
	if err != nil || status != http.StatusOK {
		t.Fatalf("roundTrip on a stale pooled conn: status=%d err=%v; want a silent fresh-dial retry", status, err)
	}
	if got := dials.Load(); got != 2 {
		t.Fatalf("stale retry dialed %d times total, want 2 (one fresh redial)", got)
	}
}

// TestGetDiscardsExpiredIdleConns: pool entries idle past idleConnTTL
// must be closed and skipped, not handed out, so the pool never serves
// sockets the shard's (longer) keep-alive timeout is about to kill.
func TestGetDiscardsExpiredIdleConns(t *testing.T) {
	near, far := net.Pipe()
	defer far.Close()
	var dials atomic.Int32
	u := newUpstream(Shard{ID: "s0", Addr: "unused"}, func(string) (net.Conn, error) {
		dials.Add(1)
		c, _ := net.Pipe()
		return c, nil
	}, testConnGauge())
	defer u.close()

	uc := &upConn{c: near, br: bufio.NewReaderSize(near, 4096)}
	u.metConns.Add(1) // mirror dialFresh's accounting for the hand-made conn
	u.put(uc)
	uc.lastUsed = time.Now().Add(-idleConnTTL - time.Second)

	got, pooled, err := u.get()
	if err != nil {
		t.Fatal(err)
	}
	defer u.discard(got)
	if pooled || got == uc {
		t.Fatalf("get reused an expired idle conn (pooled=%v)", pooled)
	}
	if dials.Load() != 1 {
		t.Fatalf("get dialed %d times, want 1 fresh dial", dials.Load())
	}
	// The expired entry must have been closed, which the peer sees as EOF.
	far.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := far.Read(make([]byte, 1)); err != io.EOF && !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("expired conn not closed: peer read err=%v", err)
	}
}

// TestReadChunkedCapsTotalBody: the body cap must be cumulative across
// chunks — many under-cap chunks must not grow the pooled buffer past
// what the Content-Length path would allow.
func TestReadChunkedCapsTotalBody(t *testing.T) {
	var stream bytes.Buffer
	chunk := bytes.Repeat([]byte{'x'}, 1<<20)
	for i := 0; i < maxUpstreamBody/(1<<20)+1; i++ {
		fmt.Fprintf(&stream, "%x\r\n", len(chunk))
		stream.Write(chunk)
		stream.WriteString("\r\n")
	}
	stream.WriteString("0\r\n\r\n")
	_, err := readChunked(bufio.NewReader(&stream), nil)
	if !errors.Is(err, errBodyLen) {
		t.Fatalf("17 MiB of 1 MiB chunks: err=%v, want errBodyLen", err)
	}
}
