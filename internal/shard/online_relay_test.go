package shard

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"testing"
	"time"

	"compactsg/internal/serve"
)

// startOnlineShards brings up n real sgserve instances with online
// refinement enabled and no static grids.
func startOnlineShards(t *testing.T, n int) []*testShard {
	t.Helper()
	shards := make([]*testShard, n)
	for i := range shards {
		srv := serve.New(serve.Config{
			ShardID: fmt.Sprintf("s%d", i),
			Online: serve.OnlineConfig{
				Enabled:     true,
				InitLevel:   2,
				MaxLevel:    6,
				RefineEps:   1e-6,
				RefineMax:   256,
				SnapshotDir: t.TempDir(),
			},
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln) //nolint:errcheck
		shards[i] = &testShard{id: fmt.Sprintf("s%d", i), addr: ln.Addr().String(), srv: srv, hs: hs}
		t.Cleanup(shards[i].kill)
	}
	return shards
}

// TestProxyRelaysObserveAndRefine: the write path must reach the shard
// that owns the grid name, so observations, the refined model, and the
// swapped snapshot all land where evaluations route.
func TestProxyRelaysObserveAndRefine(t *testing.T) {
	shards := startOnlineShards(t, 3)
	p := newTestProxy(t, shards, Config{})
	f := func(x []float64) float64 { return 3*x[0] + x[1] }

	center := []float64{0.5, 0.5}
	body, _ := json.Marshal(map[string]any{
		"points": [][]float64{center},
		"values": []float64{f(center)},
	})
	rec := proxyPost(p, "/v1/grids/live/observe", "application/json", "", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("observe via proxy: status %d body %s", rec.Code, rec.Body)
	}
	var or struct {
		Applied  int `json:"applied"`
		Awaiting int `json:"awaiting"`
	}
	json.Unmarshal(rec.Body.Bytes(), &or)
	if or.Applied != 1 {
		t.Fatalf("observe applied %d, want 1 (body %s)", or.Applied, rec.Body)
	}

	rec = proxyPost(p, "/v1/grids/live/refine", "application/json", "", []byte("{}"))
	if rec.Code != http.StatusOK {
		t.Fatalf("refine via proxy: status %d body %s", rec.Code, rec.Body)
	}
	var rr struct {
		Swapped bool        `json:"swapped"`
		Version uint64      `json:"version"`
		Need    [][]float64 `json:"need"`
	}
	json.Unmarshal(rec.Body.Bytes(), &rr)
	if !rr.Swapped || rr.Version != 1 {
		t.Fatalf("refine via proxy = %s; want swapped version 1", rec.Body)
	}

	// The eval path routes by the same name → same shard → the swapped
	// snapshot answers.
	body, _ = json.Marshal(map[string]any{"grid": "live", "point": center})
	rec = proxyPost(p, "/v1/eval", "application/json", "", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("eval via proxy: status %d body %s", rec.Code, rec.Body)
	}
	var er struct {
		Value float64 `json:"value"`
	}
	json.Unmarshal(rec.Body.Bytes(), &er)
	if want := f(center); math.Abs(er.Value-want) > 1e-12 {
		t.Fatalf("eval via proxy = %g, want %g", er.Value, want)
	}

	// Second round sticks to the same owner: the steering list answers
	// and the version advances instead of restarting at 1.
	pts, vals := rr.Need, make([]float64, len(rr.Need))
	if len(pts) == 0 {
		t.Fatal("refine answered no steering points")
	}
	for k, x := range pts {
		vals[k] = f(x)
	}
	body, _ = json.Marshal(map[string]any{"points": pts, "values": vals})
	if rec = proxyPost(p, "/v1/grids/live/observe", "application/json", "", body); rec.Code != http.StatusOK {
		t.Fatalf("observe round 2: status %d body %s", rec.Code, rec.Body)
	}
	rec = proxyPost(p, "/v1/grids/live/refine", "application/json", "", []byte("{}"))
	json.Unmarshal(rec.Body.Bytes(), &rr)
	if !rr.Swapped || rr.Version != 2 {
		t.Fatalf("refine round 2 via proxy = %s; want swapped version 2", rec.Body)
	}

	// Exactly one shard holds the model; the owner serves version 2.
	owners := 0
	for _, s := range shards {
		if v := s.srv.Grids().Version("live"); v > 0 {
			owners++
			if v != 2 {
				t.Fatalf("owning shard at version %d, want 2", v)
			}
		}
	}
	if owners != 1 {
		t.Fatalf("%d shards hold the online model, want exactly 1", owners)
	}

	// Upstream errors relay verbatim — a malformed body is the shard's
	// 400, not a proxy 502.
	rec = proxyPost(p, "/v1/grids/live/observe", "application/json", "", []byte("{"))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed observe: status %d, want 400 (body %s)", rec.Code, rec.Body)
	}
}

// TestProxyRelayWriteOwnerDown: a write whose owning shard dies
// must NOT fail over to a replica — the client gets the
// error and decides; retrying non-idempotent traffic is its call.
func TestProxyRelayWriteOwnerDown(t *testing.T) {
	shards := startOnlineShards(t, 2)
	p := newTestProxy(t, shards, Config{UpstreamTimeout: 2 * time.Second})

	// Find which shard owns "live" and kill it before any write.
	rs := p.state.Load()
	owners := rs.ring.OwnersInto(nil, []byte("live"), 1)
	if len(owners) == 0 {
		t.Fatal("no owner for live")
	}
	downID := rs.ups[owners[0]].shard.ID
	for _, s := range shards {
		if s.id == downID {
			s.kill()
		}
	}

	// With the primary dead but not yet marked unhealthy, the single
	// write attempt fails and relays a 502 — no silent replica retry
	// that could double-apply observations.
	body := []byte(`{"points":[[0.5,0.5]],"values":[1]}`)
	rec := proxyPost(p, "/v1/grids/live/observe", "application/json", "", body)
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("observe with dead owner: status %d, want 502 (body %s)", rec.Code, rec.Body)
	}
	// Once health marks the owner down, the next available replica
	// takes the write role and observations land there.
	p.pollHealth()
	rec = proxyPost(p, "/v1/grids/live/observe", "application/json", "", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("observe after failover: status %d body %s", rec.Code, rec.Body)
	}
}
