package shard

import (
	"bytes"
	"encoding/binary"
	"math"
	"net"
	"testing"
	"time"

	"compactsg/internal/serve"
)

// loopConn is a net.Conn whose reads replay a canned HTTP response
// stream forever and whose writes vanish. It lets AllocsPerRun measure
// the proxy's forwarding path alone: a real TCP upstream would put the
// server's handler allocations in the same process-wide malloc count.
type loopConn struct {
	canned []byte
	off    int
}

func (c *loopConn) Read(p []byte) (int, error) {
	n := copy(p, c.canned[c.off:])
	c.off = (c.off + n) % len(c.canned)
	return n, nil
}
func (c *loopConn) Write(p []byte) (int, error)      { return len(p), nil }
func (c *loopConn) Close() error                     { return nil }
func (c *loopConn) LocalAddr() net.Addr              { return &net.TCPAddr{} }
func (c *loopConn) RemoteAddr() net.Addr             { return &net.TCPAddr{} }
func (c *loopConn) SetDeadline(time.Time) error      { return nil }
func (c *loopConn) SetReadDeadline(time.Time) error  { return nil }
func (c *loopConn) SetWriteDeadline(time.Time) error { return nil }

// cannedValuesResponse is one complete upstream reply to a 1-point
// eval: a values frame (u32 n=1, u32 reserved, one f64) behind exact
// framing headers. Each roundTrip consumes exactly one reply through
// the connection's persistent bufio.Reader, so replaying the stream
// keeps every iteration aligned.
func cannedValuesResponse() []byte {
	frame := make([]byte, 16)
	binary.LittleEndian.PutUint32(frame[0:], 1)
	binary.LittleEndian.PutUint64(frame[8:], math.Float64bits(0.75))
	var b bytes.Buffer
	b.WriteString("HTTP/1.1 200 OK\r\n")
	b.WriteString("Content-Type: " + serve.BinContentType + "\r\n")
	b.WriteString("Content-Length: 16\r\n\r\n")
	b.Write(frame)
	return b.Bytes()
}

// TestForwardBinZeroAlloc pins the acceptance criterion that the proxy
// hot path adds zero steady-state heap allocations per forwarded
// binary frame: body read, grid-name parse, ring lookup, upstream
// round trip, and response access all run out of pooled buffers.
func TestForwardBinZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates and randomizes sync.Pool")
	}
	canned := cannedValuesResponse()
	p, err := New(Config{
		Dial: func(string) (net.Conn, error) {
			return &loopConn{canned: canned}, nil
		},
	}, Topology{Epoch: 1, Shards: []Shard{{ID: "s0", Addr: "fake:0"}}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	frame := serve.AppendEvalFrame(nil, "alloc-grid", [][]float64{{0.25, 0.5}})
	body := bytes.NewReader(frame)
	pb := new(proxyBuf)
	iter := func() {
		body.Reset(frame)
		if err := readClientBody(pb, body); err != nil {
			t.Fatal(err)
		}
		name, err := serve.FrameGridName(pb.raw)
		if err != nil {
			t.Fatal(err)
		}
		rs := p.state.Load()
		status, err := p.forward(rs, pb, pb.raw, name, "")
		if err != nil || status != 200 {
			t.Fatalf("forward: status=%d err=%v", status, err)
		}
		// The binary path relays pb.rt.resp verbatim (no decode), so the
		// check stays byte-level too — ParseValuesFrame allocates its
		// output slice and belongs to the JSON termination path.
		if len(pb.rt.resp) != 16 || !pb.rt.respBin ||
			binary.LittleEndian.Uint64(pb.rt.resp[8:]) != math.Float64bits(0.75) {
			t.Fatalf("response: %d bytes, bin=%v", len(pb.rt.resp), pb.rt.respBin)
		}
	}
	// Warm the pooled buffers and the persistent upstream connection.
	for i := 0; i < 10; i++ {
		iter()
	}
	if allocs := testing.AllocsPerRun(200, iter); allocs != 0 {
		t.Fatalf("forwarding a binary frame allocates %.1f times per request; the hot path must be allocation-free", allocs)
	}
}
