//go:build race

package shard

// raceEnabled reports that this binary was built with -race, whose
// instrumentation allocates and makes sync.Pool drop items at random —
// both of which break steady-state allocation accounting.
const raceEnabled = true
