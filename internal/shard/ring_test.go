package shard

import (
	"fmt"
	"math/rand"
	"testing"
)

func topoN(n int) Topology {
	t := Topology{Epoch: 1}
	for i := 0; i < n; i++ {
		t.Shards = append(t.Shards, Shard{ID: fmt.Sprintf("s%d", i), Addr: fmt.Sprintf("127.0.0.1:%d", 9000+i)})
	}
	return t
}

func randNames(seed int64, n int) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	names := make([][]byte, n)
	for i := range names {
		names[i] = []byte(fmt.Sprintf("grid-%d-%d", rng.Int63(), i))
	}
	return names
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		topo Topology
		ok   bool
	}{
		{"good", topoN(3), true},
		{"single shard", topoN(1), true},
		{"max shards", topoN(64), true},
		{"empty", Topology{Epoch: 1}, false},
		{"over the bitmask cap", topoN(65), false},
		{"empty id", Topology{Shards: []Shard{{ID: "", Addr: "a:1"}}}, false},
		{"empty addr", Topology{Shards: []Shard{{ID: "s0", Addr: ""}}}, false},
		{"duplicate id", Topology{Shards: []Shard{{ID: "s0", Addr: "a:1"}, {ID: "s0", Addr: "a:2"}}}, false},
	}
	for _, tc := range cases {
		if err := tc.topo.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// TestRingDeterministicAcrossShardOrder: routing must depend only on
// shard IDs, never on the order shards were listed — two proxies
// handed the same topology in different orders must agree on every
// assignment, or a sharded deployment double-serves grids.
func TestRingDeterministicAcrossShardOrder(t *testing.T) {
	topo := topoN(5)
	reversed := Topology{Epoch: 1, Shards: make([]Shard, len(topo.Shards))}
	for i, s := range topo.Shards {
		reversed.Shards[len(topo.Shards)-1-i] = s
	}
	a := NewRing(topo, 0)
	b := NewRing(reversed, 0)
	for _, name := range randNames(1, 2000) {
		var bufA, bufB [3]int
		oa := a.OwnersInto(bufA[:0], name, 3)
		ob := b.OwnersInto(bufB[:0], name, 3)
		for k := range oa {
			if a.Topology().Shards[oa[k]].ID != b.Topology().Shards[ob[k]].ID {
				t.Fatalf("name %q replica %d: %s vs %s depending on shard order",
					name, k, a.Topology().Shards[oa[k]].ID, b.Topology().Shards[ob[k]].ID)
			}
		}
	}
}

// TestOwnersDistinct: the replica set must be n distinct shards with
// the primary first, clamped at the shard count.
func TestOwnersDistinct(t *testing.T) {
	r := NewRing(topoN(5), 0)
	for _, name := range randNames(2, 1000) {
		var buf [8]int
		owners := r.OwnersInto(buf[:0], name, 3)
		if len(owners) != 3 {
			t.Fatalf("name %q: %d owners, want 3", name, len(owners))
		}
		seen := map[int]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("name %q: duplicate owner %d in %v", name, o, owners)
			}
			seen[o] = true
		}
		if got := r.Owner(string(name)); got.ID != r.Topology().Shards[owners[0]].ID {
			t.Fatalf("name %q: Owner() = %s, OwnersInto primary = %s",
				name, got.ID, r.Topology().Shards[owners[0]].ID)
		}
		// Asking for more replicas than shards clamps.
		if all := r.OwnersInto(buf[:0], name, 99); len(all) != 5 {
			t.Fatalf("name %q: %d owners for n=99 over 5 shards", name, len(all))
		}
	}
}

// TestConsistentHashingMinimalMovement is the property the ring exists
// for: adding a shard to n must move only ~1/(n+1) of the keyspace,
// and every moved name must move TO the new shard — a name whose old
// owner survives must keep it.
func TestConsistentHashingMinimalMovement(t *testing.T) {
	before := NewRing(topoN(4), 0)
	after5 := topoN(5)
	after5.Epoch = 2
	after := NewRing(after5, 0)

	names := randNames(3, 10000)
	moved := 0
	for _, name := range names {
		oldOwner := before.Owner(string(name)).ID
		newOwner := after.Owner(string(name)).ID
		if oldOwner == newOwner {
			continue
		}
		moved++
		if newOwner != "s4" {
			t.Fatalf("name %q moved %s → %s, but only the new shard s4 may gain names", name, oldOwner, newOwner)
		}
	}
	// Expect ~1/5 = 2000 moved; vnode variance keeps it loose.
	frac := float64(moved) / float64(len(names))
	if frac < 0.10 || frac > 0.35 {
		t.Fatalf("%.1f%% of names moved when growing 4 → 5 shards; want ≈20%%", 100*frac)
	}
}

// TestReplacementInheritsAssignment: ring placement hashes shard IDs,
// not addresses, so a replacement shard reusing a dead shard's ID at a
// new address inherits its assignment exactly — the cheap failover
// path the proxy's topology bump relies on.
func TestReplacementInheritsAssignment(t *testing.T) {
	orig := topoN(3)
	repl := topoN(3)
	repl.Epoch = 2
	repl.Shards[1].Addr = "127.0.0.1:19999"
	a, b := NewRing(orig, 0), NewRing(repl, 0)
	for _, name := range randNames(4, 2000) {
		var bufA, bufB [3]int
		oa := a.OwnersInto(bufA[:0], name, 2)
		ob := b.OwnersInto(bufB[:0], name, 2)
		for k := range oa {
			if oa[k] != ob[k] {
				t.Fatalf("name %q: assignment changed when only an address changed: %v vs %v", name, oa, ob)
			}
		}
	}
}

// TestRingBalance: with the default vnode count, no shard's share of a
// large random keyspace should stray wildly from uniform.
func TestRingBalance(t *testing.T) {
	const shards = 4
	r := NewRing(topoN(shards), 0)
	counts := make([]int, shards)
	names := randNames(5, 20000)
	for _, name := range names {
		var buf [1]int
		counts[r.OwnersInto(buf[:0], name, 1)[0]]++
	}
	want := float64(len(names)) / shards
	for i, c := range counts {
		if ratio := float64(c) / want; ratio < 0.5 || ratio > 1.6 {
			t.Fatalf("shard %d owns %d of %d names (%.2f× uniform); ring badly unbalanced: %v",
				i, c, len(names), ratio, counts)
		}
	}
}

func BenchmarkOwnersInto(b *testing.B) {
	r := NewRing(topoN(8), 0)
	name := []byte("benchmark-grid-name")
	var buf [2]int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.OwnersInto(buf[:0], name, 2)
	}
}
