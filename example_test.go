package compactsg_test

import (
	"fmt"
	"math"

	"compactsg"
)

// The canonical round trip: compress a smooth zero-boundary function,
// evaluate it anywhere.
func ExampleNew() {
	f := func(x []float64) float64 {
		return 16 * x[0] * (1 - x[0]) * x[1] * (1 - x[1])
	}
	g, err := compactsg.New(2, 8)
	if err != nil {
		panic(err)
	}
	g.Compress(f)
	y, _ := g.Evaluate([]float64{0.5, 0.5})
	fmt.Printf("points: %d, f(center) = %.4f\n", g.Points(), y)
	// Output:
	// points: 1793, f(center) = 1.0000
}

// Batch evaluation distributes query points over workers and can use
// the paper's cache-blocked traversal.
func ExampleGrid_EvaluateBatch() {
	g, _ := compactsg.New(3, 6, compactsg.WithWorkers(2), compactsg.WithBlockSize(32))
	g.Compress(func(x []float64) float64 {
		return 64 * x[0] * (1 - x[0]) * x[1] * (1 - x[1]) * x[2] * (1 - x[2])
	})
	xs := [][]float64{{0.5, 0.5, 0.5}, {0.25, 0.5, 0.75}}
	ys, _ := g.EvaluateBatch(xs, nil)
	fmt.Printf("%.4f %.4f\n", ys[0], ys[1])
	// Output:
	// 1.0000 0.5625
}

// Functions with non-zero boundary values need the extended context of
// the paper's Sec. 4.4.
func ExampleNewWithBoundary() {
	f := func(x []float64) float64 { return 1 + x[0] + 2*x[1] }
	b, _ := compactsg.NewWithBoundary(2, 5)
	b.Compress(f)
	corner, _ := b.Evaluate([]float64{1, 1})
	integral, _ := b.Integrate()
	fmt.Printf("f(1,1) = %.1f, ∫f = %.1f\n", corner, integral)
	// Output:
	// f(1,1) = 4.0, ∫f = 2.5
}

// Closed-form quadrature over the compressed representation.
func ExampleGrid_Integrate() {
	g, _ := compactsg.New(1, 12)
	g.Compress(func(x []float64) float64 { return 4 * x[0] * (1 - x[0]) })
	v, _ := g.Integrate()
	fmt.Printf("∫ 4x(1-x) ≈ %.5f (exact %.5f)\n", v, 2.0/3.0)
	// Output:
	// ∫ 4x(1-x) ≈ 0.66667 (exact 0.66667)
}

// Adaptive grids spend points where the function is rough.
func ExampleNewAdaptive() {
	peak := func(x []float64) float64 {
		d := x[0] - 0.3
		return 4 * x[0] * (1 - x[0]) * math.Exp(-200*d*d)
	}
	a, _ := compactsg.NewAdaptive(1, 3, 14, peak)
	a.RefineToTolerance(1e-4, 4000)
	y, _ := a.Evaluate([]float64{0.3})
	fmt.Printf("error at the peak below 1e-4: %v\n", math.Abs(y-peak([]float64{0.3})) < 1e-4)
	// Output:
	// error at the peak below 1e-4: true
}
