# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test race bench bench-all bench-coldload experiments examples smoke serve-demo trace-demo proxy-demo swap-demo store-demo staticcheck stress fuzz clean

# Per-target budget for `make fuzz` (go's -fuzztime syntax).
FUZZTIME ?= 30s

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/par/ ./internal/hier/ ./internal/eval/ ./internal/boundary/ ./internal/gpusim/ ./internal/kernels/ ./internal/obs/ ./internal/adaptive/ ./internal/serve/ ./internal/shard/ ./internal/store/ .

# End-to-end smoke of the evaluation server (build, serve, curl, drain).
smoke:
	bash scripts/smoke_serve.sh

# Coalesced vs naive vs client-batch throughput comparison; numbers are
# recorded in EXPERIMENTS.md §"Serving".
serve-demo:
	bash scripts/serve_demo.sh

# Stage-attribution demo: where server-side time goes per request
# (queue_wait vs dispatch vs eval), from /debug/traces and
# sgserve_stage_seconds. Numbers recorded in EXPERIMENTS.md.
trace-demo:
	bash scripts/trace_demo.sh

# Sharded serving end to end with real binaries: 3 sgserve shards
# behind sgproxy, mixed-protocol traffic, one shard hard-killed
# mid-run (failover must hide it), replacement swapped in via an
# epoch-bumped topology POST, recovery asserted.
proxy-demo:
	bash scripts/proxy_demo.sh

# Online refinement end to end with real binaries: an -online sgserve
# behind sgproxy, observations through the write relay, two refine →
# snapshot → hot-swap rounds, monotonic version and snapshot-lifecycle
# assertions.
swap-demo:
	bash scripts/swap_demo.sh

# Tiered snapshot store end to end with real binaries: a blob-tier
# sgserve, six grids published by content address over HTTP, a
# store-backed sgserve with a cache cap smaller than the catalog —
# asserts the miss/hit/eviction counters and zero client errors.
store-demo:
	bash scripts/store_demo.sh

# Race-hunting chaos run of the serving layer: concurrent eval across
# more grids than resident slots, random cancellations, mid-flight
# registry churn, inflated loads, goroutine-leak check. The median
# assertion proves cold loads no longer serialize the hot path.
stress:
	$(GO) run -race ./cmd/sgstress -duration 3s
	$(GO) run -race ./cmd/sgstress -duration 3s -load-delay 25ms -assert-hot-p50 20ms
	$(GO) run -race ./cmd/sgstress -shard-chaos -duration 3s
	$(GO) run -race ./cmd/sgstress -swap-chaos -duration 3s
	$(GO) run -race ./cmd/sgstress -store-chaos -duration 3s

# Optional: requires staticcheck on PATH (honnef.co/go/tools).
staticcheck:
	staticcheck ./...

# Coverage-guided fuzzing of every decoder that eats untrusted bytes:
# the dense v1/v2 readers, the SGC2 snapshot codec, the sparse reader,
# and the format-sniffing LoadAny entry point. Each target gets
# $(FUZZTIME); the committed corpus under testdata/fuzz/ (including the
# nonzero-padding crasher FuzzSnapshot found) always replays in plain
# `go test`.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzReadGrid$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzSnapshot$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzReadSparse$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzLoadAny$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzParallelHierIdentity$$' -fuzztime $(FUZZTIME) ./internal/hier
	$(GO) test -run '^$$' -fuzz '^FuzzBinaryFrame$$' -fuzztime $(FUZZTIME) ./internal/serve
	$(GO) test -run '^$$' -fuzz '^FuzzAdaptiveInvariants$$' -fuzztime $(FUZZTIME) ./internal/adaptive
	$(GO) test -run '^$$' -fuzz '^FuzzStoreCacheIndex$$' -fuzztime $(FUZZTIME) -fuzzminimizetime 20x ./internal/store

# Kernel hot-path benchmarks -> BENCH_kernels.json (baseline vs current;
# see scripts/bench_kernels.sh for BENCHTIME/--as-baseline knobs).
bench:
	bash scripts/bench_kernels.sh

# Cold-load routes (legacy copy vs snapshot copy vs zero-copy mmap) ->
# BENCH_coldload.json with the headline mmap-vs-v1 speedup.
bench-coldload:
	bash scripts/bench_coldload.sh

bench-all:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper (scaled defaults;
# see EXPERIMENTS.md for the recorded level-7 run).
experiments:
	$(GO) run ./cmd/sgbench all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/boundarydemo
	$(GO) run ./examples/uq
	$(GO) run ./examples/finance
	$(GO) run ./examples/explorer
	$(GO) run ./examples/steering

clean:
	$(GO) clean ./...
