# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test race bench bench-all experiments examples smoke serve-demo trace-demo staticcheck stress clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/hier/ ./internal/eval/ ./internal/gpusim/ ./internal/kernels/ ./internal/obs/ ./internal/serve/ .

# End-to-end smoke of the evaluation server (build, serve, curl, drain).
smoke:
	bash scripts/smoke_serve.sh

# Coalesced vs naive vs client-batch throughput comparison; numbers are
# recorded in EXPERIMENTS.md §"Serving".
serve-demo:
	bash scripts/serve_demo.sh

# Stage-attribution demo: where server-side time goes per request
# (queue_wait vs dispatch vs eval), from /debug/traces and
# sgserve_stage_seconds. Numbers recorded in EXPERIMENTS.md.
trace-demo:
	bash scripts/trace_demo.sh

# Race-hunting chaos run of the serving layer: concurrent eval across
# more grids than resident slots, random cancellations, mid-flight
# registry churn, inflated loads, goroutine-leak check. The median
# assertion proves cold loads no longer serialize the hot path.
stress:
	$(GO) run -race ./cmd/sgstress -duration 3s
	$(GO) run -race ./cmd/sgstress -duration 3s -load-delay 25ms -assert-hot-p50 20ms

# Optional: requires staticcheck on PATH (honnef.co/go/tools).
staticcheck:
	staticcheck ./...

# Kernel hot-path benchmarks -> BENCH_kernels.json (baseline vs current;
# see scripts/bench_kernels.sh for BENCHTIME/--as-baseline knobs).
bench:
	bash scripts/bench_kernels.sh

bench-all:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper (scaled defaults;
# see EXPERIMENTS.md for the recorded level-7 run).
experiments:
	$(GO) run ./cmd/sgbench all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/boundarydemo
	$(GO) run ./examples/uq
	$(GO) run ./examples/finance
	$(GO) run ./examples/explorer

clean:
	$(GO) clean ./...
