module compactsg

go 1.22
