package compactsg_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"compactsg"
)

// TestObservedExportRoundTrip drives the public steering API end to
// end: observations in, refinement, export to the compact layout, a
// save/load round trip, and bit-identical evaluation throughout.
func TestObservedExportRoundTrip(t *testing.T) {
	// Boundary-vanishing target: the basis has no boundary points, so
	// only such functions are representable to high accuracy.
	f := func(x []float64) float64 {
		bump := 16 * x[0] * (1 - x[0]) * x[1] * (1 - x[1])
		return bump * math.Exp(-8*(x[0]-0.4)*(x[0]-0.4))
	}
	a, err := compactsg.NewAdaptiveObserved(2, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Observed() {
		t.Fatal("Observed() = false on an observed grid")
	}

	// Steering loop: answer whatever the grid asks for, then refine.
	for round := 0; round < 6; round++ {
		for {
			need := a.NeedValues(256)
			if len(need) == 0 {
				break
			}
			for _, x := range need {
				if err := a.Observe(x, f(x)); err != nil {
					t.Fatal(err)
				}
			}
			a.Commit()
		}
		st := a.RefineDetailed(1e-4, 512)
		if st.Added == 0 && st.Candidates == 0 && round > 0 {
			break
		}
	}

	g, err := a.Export()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := compactsg.LoadAny(&buf)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	for k := 0; k < 100; k++ {
		x := []float64{rng.Float64(), rng.Float64()}
		want, err := a.Evaluate(x)
		if err != nil {
			t.Fatal(err)
		}
		ge, err := g.Evaluate(x)
		if err != nil {
			t.Fatal(err)
		}
		le, err := loaded.Evaluate(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ge-want) > 1e-12 || le != ge {
			t.Fatalf("eval(%v): adaptive %g, exported %g, loaded %g", x, want, ge, le)
		}
		// The interpolant is genuinely useful, not just self-consistent.
		if math.Abs(want-f(x)) > 0.05 {
			t.Fatalf("interpolation error %g at %v after refinement", math.Abs(want-f(x)), x)
		}
	}
}
