// Boundarydemo exercises the paper's extendable context (Sec. 4.4):
// representing a function that does NOT vanish on the domain boundary.
// The extended grid decomposes the boundary into 3^d − 1 lower-
// dimensional sparse grids around the interior grid, each reusing the
// compact gp2idx layout; a multilinear function is then reproduced
// exactly everywhere, including on faces, edges and corners.
//
//	go run ./examples/boundarydemo
package main

import (
	"fmt"
	"log"
	"math"

	"compactsg"
)

func main() {
	// f(x,y,z) = (1+x)(1+2y)(1+3z): multilinear, nowhere zero.
	f := func(x []float64) float64 {
		p := 1.0
		for t, v := range x {
			p *= 1 + float64(t+1)*v
		}
		return p
	}

	g, err := compactsg.NewWithBoundary(3, 5)
	if err != nil {
		log.Fatal(err)
	}
	g.Compress(f)
	fmt.Printf("extended 3-d grid, level 5: %d stored coefficients (%d faces incl. interior)\n",
		g.Points(), 27)

	probes := [][]float64{
		{0, 0, 0},          // corner
		{1, 1, 1},          // corner
		{1, 0.5, 0},        // edge midpoint
		{0.5, 0.5, 1},      // face center
		{0.3, 0.8, 0.6},    // interior
		{0.99, 0.01, 0.37}, // near-boundary interior
	}
	fmt.Println("\npoint                value       exact       error")
	maxErr := 0.0
	for _, x := range probes {
		y, err := g.Evaluate(x)
		if err != nil {
			log.Fatal(err)
		}
		e := math.Abs(y - f(x))
		if e > maxErr {
			maxErr = e
		}
		fmt.Printf("%-20v %-11.6f %-11.6f %.1e\n", x, y, f(x), e)
	}
	if maxErr > 1e-10 {
		log.Fatalf("multilinear function not reproduced exactly (max error %g)", maxErr)
	}
	fmt.Println("\nmultilinear function reproduced exactly — the extended context works.")

	// Contrast: the plain zero-boundary grid cannot represent f near the
	// boundary.
	plain, err := compactsg.New(3, 5)
	if err != nil {
		log.Fatal(err)
	}
	plain.Compress(f)
	x := []float64{0.999, 0.999, 0.999}
	yPlain, _ := plain.Evaluate(x)
	yExt, _ := g.Evaluate(x)
	fmt.Printf("\nnear the corner %v: exact %.4f, extended grid %.4f, zero-boundary grid %.4f\n",
		x, f(x), yExt, yPlain)
}
