// Explorer reproduces the paper's motivating application (Fig. 1):
// interactive visual exploration of a multi-dimensional simulation
// result stored in compressed form. A 5-dimensional "simulation output"
// is compressed once; the viewer then decompresses arbitrary 2d slices
// on demand — the operation whose latency decides whether browsing the
// data feels fluent — and renders them as ASCII heatmaps.
//
//	go run ./examples/explorer
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"compactsg"
	"compactsg/internal/viz"
)

// simulate stands in for the multi-physics simulation: a smooth
// 5-dimensional field with two interacting bumps. Parameters: x0, x1
// spatial, x2 time-like, x3, x4 model parameters.
func simulate(x []float64) float64 {
	window := 1.0
	for _, v := range x {
		window *= 4 * v * (1 - v)
	}
	a := math.Sin(math.Pi*x[0]*(1+x[3])) * math.Sin(math.Pi*x[1])
	b := math.Exp(-8 * ((x[0]-x[2])*(x[0]-x[2]) + (x[1]-0.5)*(x[1]-0.5)))
	return window * (a + 1.5*b*x[4])
}

const (
	dim   = 5
	level = 7
	cols  = 56
	rows  = 24
)

func main() {
	// Compress once (preprocessing).
	start := time.Now()
	g, err := compactsg.New(dim, level, compactsg.WithWorkers(4), compactsg.WithBlockSize(128))
	if err != nil {
		log.Fatal(err)
	}
	g.Compress(simulate)
	fmt.Printf("compressed %d-d field: %d points (%.1f MB) in %v\n",
		dim, g.Points(), float64(g.MemoryBytes())/(1<<20), time.Since(start).Round(time.Millisecond))

	// Interactive phase: sweep the time-like parameter x2 and render the
	// (x0, x1) slice at each step — exactly the decompression workload.
	for _, t := range []float64{0.25, 0.5, 0.75} {
		slice, sec, err := renderSlice(g, t)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nslice x2=%.2f  (x3=0.5, x4=0.5)  — %d evaluations in %v\n%s",
			t, cols*rows, sec.Round(time.Microsecond), slice)
	}
}

// renderSlice decompresses the (x0, x1) plane at the given x2 and fixed
// x3 = x4 = 0.5, and renders it as an ASCII heatmap.
func renderSlice(g *compactsg.Grid, t float64) (string, time.Duration, error) {
	start := time.Now()
	vals, err := g.Slice2D(compactsg.SliceSpec{
		AxisX: 0, AxisY: 1, NX: cols, NY: rows,
		Anchor: []float64{0, 0, t, 0.5, 0.5},
	})
	if err != nil {
		return "", 0, err
	}
	elapsed := time.Since(start)
	// Flip vertically: Slice2D's row 0 is y=0, terminals draw top-down.
	flipped := make([]float64, len(vals))
	for r := 0; r < rows; r++ {
		copy(flipped[r*cols:(r+1)*cols], vals[(rows-1-r)*cols:(rows-r)*cols])
	}
	raster, err := viz.NewRaster(cols, rows, flipped)
	if err != nil {
		return "", 0, err
	}
	return viz.ASCII(raster), elapsed, nil
}
