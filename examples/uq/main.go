// UQ: uncertainty propagation through a model with six uncertain
// parameters. The model response is compressed onto a sparse grid once;
// its mean over the parameter box then comes from the closed-form
// sparse grid quadrature (an O(N) pass over the compact coefficient
// array — no sampling), and variance from a second compressed grid of
// the squared response. A Monte Carlo estimate cross-checks the result.
//
//	go run ./examples/uq
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"compactsg"
)

// response is the model under uncertainty: a damped oscillator's energy
// after one period, parameterized by six normalized inputs (stiffness,
// damping, mass, amplitude, phase, forcing), windowed to zero boundary.
func response(x []float64) float64 {
	k := 0.5 + x[0]
	c := 0.1 + 0.4*x[1]
	m := 0.8 + 0.4*x[2]
	a := 0.5 + x[3]
	phi := math.Pi * x[4]
	f := 0.2 * x[5]
	omega := math.Sqrt(k / m)
	e := a * math.Exp(-c/(2*m)*2*math.Pi/omega) * (1 + f*math.Cos(phi))
	w := 1.0
	for _, v := range x {
		w *= 4 * v * (1 - v)
	}
	return w * e
}

func main() {
	const dim, level = 6, 6

	start := time.Now()
	g, err := compactsg.New(dim, level, compactsg.WithWorkers(4))
	if err != nil {
		log.Fatal(err)
	}
	g.Compress(response)
	g2, err := compactsg.New(dim, level, compactsg.WithWorkers(4))
	if err != nil {
		log.Fatal(err)
	}
	g2.Compress(func(x []float64) float64 { v := response(x); return v * v })
	fmt.Printf("compressed response and response² onto %d-point sparse grids in %v\n",
		g.Points(), time.Since(start).Round(time.Millisecond))

	mean, err := g.Integrate()
	if err != nil {
		log.Fatal(err)
	}
	m2, err := g2.Integrate()
	if err != nil {
		log.Fatal(err)
	}
	variance := m2 - mean*mean
	fmt.Printf("sparse grid quadrature: mean = %.6f, std = %.6f\n", mean, math.Sqrt(variance))

	// Monte Carlo cross-check against the true model.
	rng := rand.New(rand.NewSource(2026))
	const samples = 200000
	var s, ss float64
	x := make([]float64, dim)
	for k := 0; k < samples; k++ {
		for t := range x {
			x[t] = rng.Float64()
		}
		v := response(x)
		s += v
		ss += v * v
	}
	mcMean := s / samples
	mcStd := math.Sqrt(ss/samples - mcMean*mcMean)
	fmt.Printf("Monte Carlo (%d samples): mean = %.6f, std = %.6f\n", samples, mcMean, mcStd)
	fmt.Printf("difference: mean %.2e, std %.2e\n", math.Abs(mean-mcMean), math.Abs(math.Sqrt(variance)-mcStd))
	if math.Abs(mean-mcMean) > 5e-3 {
		log.Fatal("sparse grid mean diverges from Monte Carlo — something is wrong")
	}
	fmt.Println("sparse grid quadrature agrees with Monte Carlo, at a fraction of the model evaluations.")
}
