// Quickstart: compress a 4-dimensional function onto a sparse grid,
// evaluate it at a few points, and inspect the compression factor.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"compactsg"
)

func main() {
	// f(x) = Π 4·x(1-x): smooth, zero on the domain boundary.
	f := func(x []float64) float64 {
		p := 1.0
		for _, v := range x {
			p *= 4 * v * (1 - v)
		}
		return p
	}

	// A 4-dimensional sparse grid of refinement level 8 holds 18,943
	// points; the full grid with the same resolution would hold
	// (2^8-1)^4 ≈ 4.2 · 10^9.
	g, err := compactsg.New(4, 8, compactsg.WithWorkers(4))
	if err != nil {
		log.Fatal(err)
	}
	g.Compress(f)

	full := math.Pow(math.Pow(2, 8)-1, 4)
	fmt.Printf("sparse grid: %d points (%.0f KB); full grid: %.3g points (compression %.0f×)\n",
		g.Points(), float64(g.MemoryBytes())/1024, full, full/float64(g.Points()))

	for _, x := range [][]float64{
		{0.5, 0.5, 0.5, 0.5},
		{0.3, 0.7, 0.2, 0.9},
		{0.1, 0.1, 0.1, 0.1},
	} {
		y, err := g.Evaluate(x)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("f%v = %.6f   (exact %.6f, error %.2e)\n", x, y, f(x), math.Abs(y-f(x)))
	}

	// Batch evaluation with blocking — the paper's cache optimization.
	gb, err := compactsg.New(4, 8, compactsg.WithWorkers(4), compactsg.WithBlockSize(64))
	if err != nil {
		log.Fatal(err)
	}
	gb.Compress(f)
	xs := make([][]float64, 1000)
	for k := range xs {
		t := float64(k) / float64(len(xs)-1)
		xs[k] = []float64{t, 1 - t, 0.5 * t, 0.25 + 0.5*t}
	}
	ys, err := gb.EvaluateBatch(xs, nil)
	if err != nil {
		log.Fatal(err)
	}
	maxErr := 0.0
	for k, x := range xs {
		if e := math.Abs(ys[k] - f(x)); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("batch of %d points: max interpolation error %.2e\n", len(xs), maxErr)
}
