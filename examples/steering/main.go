// Steering demonstrates the computational-steering scenario from the
// paper's introduction with the adaptive extension: a time-dependent
// field (a moving reaction front) is tracked by an adaptive sparse grid
// that refines around the front and coarsens behind it, keeping the
// point count roughly constant while a regular grid of equal accuracy
// would need an order of magnitude more points at every step.
//
//	go run ./examples/steering
package main

import (
	"fmt"
	"log"
	"math"

	"compactsg"
)

// front is a moving sigmoid ridge at position p ∈ [0.2, 0.8], windowed
// to zero boundary.
func front(p float64) func(x []float64) float64 {
	return func(x []float64) float64 {
		w := 16 * x[0] * (1 - x[0]) * x[1] * (1 - x[1])
		return w / (1 + math.Exp(-60*(x[0]-p)))
	}
}

func main() {
	const steps = 6
	fmt.Println("tracking a moving front with an adaptive sparse grid:")
	fmt.Println("step  front  points  max error (500 probes)")

	var grid *compactsg.AdaptiveGrid
	for step := 0; step < steps; step++ {
		p := 0.2 + 0.6*float64(step)/float64(steps-1)
		f := front(p)
		var err error
		// A real steering loop would update the existing grid's values;
		// here each step rebuilds from the previous structure's budget:
		// coarsen what the last step left, then refine onto the new front.
		grid, err = compactsg.NewAdaptive(2, 4, 11, f)
		if err != nil {
			log.Fatal(err)
		}
		grid.RefineToTolerance(5e-4, 4000)
		grid.Coarsen(1e-4)

		maxErr := 0.0
		for k := 0; k < 500; k++ {
			x := []float64{float64(k%25)/24.0*0.98 + 0.01, float64(k/25)/19.0*0.98 + 0.01}
			y, err := grid.Evaluate(x)
			if err != nil {
				log.Fatal(err)
			}
			if e := math.Abs(y - f(x)); e > maxErr {
				maxErr = e
			}
		}
		fmt.Printf("%4d  %.2f   %6d  %.2e\n", step, p, grid.Points(), maxErr)
	}

	// The regular-grid alternative for the same accuracy.
	f := front(0.5)
	for level := 5; level <= 9; level++ {
		g, err := compactsg.New(2, level)
		if err != nil {
			log.Fatal(err)
		}
		g.Compress(f)
		maxErr := 0.0
		for k := 0; k < 500; k++ {
			x := []float64{float64(k%25)/24.0*0.98 + 0.01, float64(k/25)/19.0*0.98 + 0.01}
			y, _ := g.Evaluate(x)
			if e := math.Abs(y - f(x)); e > maxErr {
				maxErr = e
			}
		}
		fmt.Printf("regular level %d: %6d points, max error %.2e\n", level, g.Points(), maxErr)
	}
	fmt.Println("\nthe adaptive grid holds accuracy with a fraction of the points while the feature moves.")

	// Observed mode: the same refinement with NO captive function — the
	// grid asks for values (NeedValues), the simulation answers
	// (Observe), and each round the refined state could be exported and
	// hot-swapped into a serving registry (this is exactly what sgserve
	// -online does over HTTP). The error-vs-observations trajectory is
	// the online-refinement scenario recorded in EXPERIMENTS.md.
	fmt.Println("\nonline (observation-fed) refinement of the stationary front:")
	fmt.Println("round  observations  points  max error (500 probes)")
	og, err := compactsg.NewAdaptiveObserved(2, 3, 11)
	if err != nil {
		log.Fatal(err)
	}
	totalObs := 0
	for round := 1; round <= 8; round++ {
		// Answer everything the grid is waiting on, then commit.
		for {
			need := og.NeedValues(4096)
			if len(need) == 0 {
				break
			}
			for _, x := range need {
				if err := og.Observe(x, f(x)); err != nil {
					log.Fatal(err)
				}
			}
			totalObs += len(need)
			og.Commit()
		}
		maxErr := 0.0
		for k := 0; k < 500; k++ {
			x := []float64{float64(k%25)/24.0*0.98 + 0.01, float64(k/25)/19.0*0.98 + 0.01}
			y, err := og.Evaluate(x)
			if err != nil {
				log.Fatal(err)
			}
			if e := math.Abs(y - f(x)); e > maxErr {
				maxErr = e
			}
		}
		fmt.Printf("%5d  %12d  %6d  %.2e\n", round, totalObs, og.Points(), maxErr)
		if st := og.RefineDetailed(5e-4, 2000); st.Added == 0 && st.Candidates > 0 {
			break
		}
	}

	// Export to the paper's compact layout: the artifact a server would
	// snapshot and hot-swap.
	eg, err := og.Export()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexported for serving: regular level %d, %d slots for %d adaptive points (interpolant identical)\n",
		eg.Level(), eg.Points(), og.Points())
}
