// Finance: the option-pricing use case from the paper's introduction
// (sparse grids in finance; cf. the Gaikwad & Toke reference on pricing
// PDEs). A basket-option price surface over five risk parameters —
// spot moneyness, volatility, rate, correlation and maturity — is
// expensive to compute pointwise (here a binomial-tree-style pricer
// stands in), so it is precomputed once onto a sparse grid and then
// queried at trading speed.
//
//	go run ./examples/finance
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"compactsg"
)

// priceKernel is the "expensive pricer": a Black–Scholes-like closed
// form perturbed by a correlation term, windowed to zero boundary so
// the base structure applies (the grid stores the *excess* price over
// the domain-edge baseline).
func priceKernel(x []float64) float64 {
	s := 0.6 + 0.8*x[0]   // moneyness S/K ∈ [0.6, 1.4]
	vol := 0.1 + 0.4*x[1] // volatility ∈ [0.1, 0.5]
	r := 0.05 * x[2]      // rate ∈ [0, 0.05]
	rho := x[3]           // correlation proxy
	tm := 0.1 + 0.9*x[4]  // maturity ∈ [0.1, 1.0] years

	sig := vol * math.Sqrt(tm) * (1 + 0.3*rho)
	d1 := (math.Log(s) + (r+sig*sig/2)*tm) / (sig * math.Sqrt(tm))
	d2 := d1 - sig*math.Sqrt(tm)
	price := s*cnorm(d1) - math.Exp(-r*tm)*cnorm(d2)

	window := 1.0
	for _, v := range x {
		window *= 4 * v * (1 - v)
	}
	return price * window
}

func cnorm(z float64) float64 { return 0.5 * math.Erfc(-z/math.Sqrt2) }

func main() {
	const dim, level = 5, 8

	fmt.Println("pre-computing the price surface onto a sparse grid…")
	start := time.Now()
	g, err := compactsg.New(dim, level, compactsg.WithWorkers(4))
	if err != nil {
		log.Fatal(err)
	}
	g.Compress(priceKernel)
	compressT := time.Since(start)
	fmt.Printf("  %d grid prices (%.1f MB) in %v\n",
		g.Points(), float64(g.MemoryBytes())/(1<<20), compressT.Round(time.Millisecond))
	fullPoints := math.Pow(math.Pow(2, level)-1, dim)
	fmt.Printf("  full tensor table would need %.3g prices (%.0f× more)\n",
		fullPoints, fullPoints/float64(g.Points()))

	// Trading desk queries: batches of scenario evaluations.
	scenarios := make([][]float64, 20000)
	for k := range scenarios {
		u := float64(k) / float64(len(scenarios))
		scenarios[k] = []float64{
			0.3 + 0.4*frac(7*u),
			0.2 + 0.6*frac(13*u),
			0.1 + 0.8*frac(3*u),
			0.25 + 0.5*frac(11*u),
			0.2 + 0.6*frac(5*u),
		}
	}
	start = time.Now()
	prices, err := g.EvaluateBatch(scenarios, nil)
	if err != nil {
		log.Fatal(err)
	}
	queryT := time.Since(start)

	maxErr, sumErr := 0.0, 0.0
	for k, x := range scenarios {
		e := math.Abs(prices[k] - priceKernel(x))
		sumErr += e
		if e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("queried %d scenarios in %v (%.1f µs/price)\n",
		len(scenarios), queryT.Round(time.Millisecond),
		float64(queryT.Microseconds())/float64(len(scenarios)))
	fmt.Printf("accuracy vs direct pricer: max %.2e, mean %.2e\n",
		maxErr, sumErr/float64(len(scenarios)))

	k := 4242
	fmt.Printf("sample: scenario %v → %.6f (direct %.6f)\n",
		scenarios[k], prices[k], priceKernel(scenarios[k]))
}

func frac(v float64) float64 { return v - math.Floor(v) }
