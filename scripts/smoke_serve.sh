#!/usr/bin/env bash
# Smoke test for cmd/sgserve: compress a small grid, start the server,
# exercise /healthz, /v1/eval, /v1/eval/batch and /metrics, then shut
# it down gracefully and require a clean exit. Used by CI and
# `make smoke`.
set -euo pipefail

workdir=$(mktemp -d)
port=${SGSERVE_PORT:-8177}
base="http://localhost:$port"
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/sgserve" ./cmd/sgserve
go run ./cmd/sgcompress -dim 3 -level 5 -fn gaussian -direct -q -o "$workdir/field.sg"

"$workdir/sgserve" -addr ":$port" "$workdir/field.sg" &
server_pid=$!

for i in $(seq 1 50); do
    if curl -sf "$base/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.2
done

fail() { echo "smoke: $1" >&2; exit 1; }

curl -sf "$base/healthz" | grep -q ok || fail "/healthz"
curl -sf "$base/v1/grids" | grep -q '"name":"field"' || fail "/v1/grids"
curl -sf -d '{"point":[0.5,0.5,0.5]}' "$base/v1/eval" \
    | grep -q '"value":1' || fail "/v1/eval (gaussian peak should be 1)"
curl -sf -d '{"points":[[0.5,0.5,0.5],[0.25,0.25,0.25]]}' "$base/v1/eval/batch" \
    | grep -q '"values":\[1,' || fail "/v1/eval/batch"
# error path: out-of-domain point must 400, not 200
code=$(curl -s -o /dev/null -w '%{http_code}' -d '{"point":[2,0,0]}' "$base/v1/eval")
[ "$code" = 400 ] || fail "out-of-domain returned $code, want 400"
curl -sf "$base/metrics" | grep -q 'sgserve_requests_total{handler="eval"}' || fail "/metrics"

kill -TERM "$server_pid"
wait "$server_pid" || fail "server exited non-zero on SIGTERM"
echo "smoke: ok"
