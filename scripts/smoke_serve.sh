#!/usr/bin/env bash
# Smoke test for cmd/sgserve: compress a small grid, start the server,
# exercise /healthz, /v1/eval, /v1/eval/batch, /metrics, /debug/traces
# and /debug/pprof, then shut it down gracefully and require a clean
# exit. Used by CI and `make smoke`.
set -euo pipefail

workdir=$(mktemp -d)
port=${SGSERVE_PORT:-8177}
base="http://localhost:$port"
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/sgserve" ./cmd/sgserve
go run ./cmd/sgcompress -dim 3 -level 5 -fn gaussian -direct -q -o "$workdir/field.sg"

"$workdir/sgserve" -addr ":$port" -pprof "$workdir/field.sg" &
server_pid=$!

for i in $(seq 1 50); do
    if curl -sf "$base/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.2
done

fail() { echo "smoke: $1" >&2; exit 1; }

curl -sf "$base/healthz" | grep -q ok || fail "/healthz"
curl -sf "$base/v1/grids" | grep -q '"name":"field"' || fail "/v1/grids"
curl -sf -d '{"point":[0.5,0.5,0.5]}' "$base/v1/eval" \
    | grep -q '"value":1' || fail "/v1/eval (gaussian peak should be 1)"
curl -sf -d '{"points":[[0.5,0.5,0.5],[0.25,0.25,0.25]]}' "$base/v1/eval/batch" \
    | grep -q '"values":\[1,' || fail "/v1/eval/batch"
# error path: out-of-domain point must 400, not 200
code=$(curl -s -o /dev/null -w '%{http_code}' -d '{"point":[2,0,0]}' "$base/v1/eval")
[ "$code" = 400 ] || fail "out-of-domain returned $code, want 400"

# binary wire protocol: hand-rolled frame for grid "field", one point
# (0.5, 0.5, 0.5) — u16 nameLen=5 | "field" | 1 pad byte | u32 n=1 |
# u32 d=3 | 3 little-endian float64 0.5. The gaussian peak is exactly
# 1.0, so the 16-byte response must end with f64 1.0 (…f03f).
printf '\x05\x00field\x00\x01\x00\x00\x00\x03\x00\x00\x00' > "$workdir/frame.bin"
printf '\x00\x00\x00\x00\x00\x00\xe0\x3f%.0s' 1 2 3 >> "$workdir/frame.bin"
curl -sf -H 'Content-Type: application/x-compactsg-frame' \
    --data-binary @"$workdir/frame.bin" "$base/v1/eval/bin" -o "$workdir/values.bin" \
    || fail "/v1/eval/bin"
[ "$(wc -c < "$workdir/values.bin")" = 16 ] || fail "/v1/eval/bin response size"
od -An -tx1 "$workdir/values.bin" | tr -d ' \n' | \
    grep -q '^0100000000000000000000000000f03f$' \
    || fail "/v1/eval/bin values frame (want n=1, value=1.0)"
# malformed frame (truncated) must 400
code=$(curl -s -o /dev/null -w '%{http_code}' \
    -H 'Content-Type: application/x-compactsg-frame' \
    --data-binary $'\x05\x00fie' "$base/v1/eval/bin")
[ "$code" = 400 ] || fail "truncated binary frame returned $code, want 400"
# fetch once, grep the file: piping straight into grep -q kills curl
# with SIGPIPE now that the stage histograms make /metrics long.
curl -sf "$base/metrics" -o "$workdir/metrics.txt" || fail "/metrics"
grep -q 'sgserve_requests_total{handler="eval",protocol="json"}' "$workdir/metrics.txt" || fail "/metrics requests_total"
grep -q 'sgserve_requests_total{handler="eval_bin",protocol="bin"}' "$workdir/metrics.txt" || fail "/metrics requests_total bin"
grep -q 'sgserve_stage_seconds_count{stage="eval"}' "$workdir/metrics.txt" || fail "stage metrics"
grep -q 'sgserve_panics_total 0' "$workdir/metrics.txt" || fail "panics counter"

# observability: traces must be well-formed JSON covering the evals above,
# and pprof must serve a heap profile when -pprof is on.
traces=$(curl -sf "$base/debug/traces") || fail "/debug/traces"
if command -v jq >/dev/null 2>&1; then
    echo "$traces" | jq -e '.traces | type == "array" and length >= 2' >/dev/null \
        || fail "/debug/traces is not well-formed JSON with >=2 traces"
    echo "$traces" | jq -e '.traces[0] | has("id") and has("handler") and has("stages")' >/dev/null \
        || fail "/debug/traces entries missing id/handler/stages"
else
    echo "$traces" | grep -q '"traces":\[{' || fail "/debug/traces JSON shape"
    echo "$traces" | grep -q '"stages":{' || fail "/debug/traces missing stage timings"
fi
curl -sf -o "$workdir/heap.pb.gz" "$base/debug/pprof/heap" || fail "/debug/pprof/heap"
[ -s "$workdir/heap.pb.gz" ] || fail "/debug/pprof/heap is empty"

kill -TERM "$server_pid"
wait "$server_pid" || fail "server exited non-zero on SIGTERM"

# middleware: restart with API-key auth + rate limiting and check the
# production chain — 401 without a key, 200 with one, exempt /healthz.
echo "smoke-key:s3cret" > "$workdir/keys.txt"
"$workdir/sgserve" -addr ":$port" -api-keys "$workdir/keys.txt" -rate-limit 1000 \
    "$workdir/field.sg" &
server_pid=$!
for i in $(seq 1 50); do
    if curl -sf "$base/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.2
done
curl -sf "$base/healthz" | grep -q ok || fail "auth server /healthz (must stay exempt)"
code=$(curl -s -o /dev/null -w '%{http_code}' -d '{"point":[0.5,0.5,0.5]}' "$base/v1/eval")
[ "$code" = 401 ] || fail "unauthenticated /v1/eval returned $code, want 401"
curl -sf -H 'Authorization: Bearer s3cret' -d '{"point":[0.5,0.5,0.5]}' "$base/v1/eval" \
    | grep -q '"value":1' || fail "authenticated /v1/eval"
kill -TERM "$server_pid"
wait "$server_pid" || fail "auth server exited non-zero on SIGTERM"
echo "smoke: ok"
