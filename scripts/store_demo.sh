#!/usr/bin/env bash
# Tiered snapshot store, end to end with the real binaries: one sgserve
# runs as a blob server (-blob-dir), six compressed grids are published
# into it over HTTP by content address, and a second sgserve serves all
# six as -grid name=store:KEY through a local cache capped at ~3 files
# — so driving every grid forces remote fetches AND evictions mid-run.
# Asserts: every upload lands (201), sgload sees zero client errors,
# and /metrics shows misses >= 6, evictions >= 1, hits >= 1, with the
# cache size never above the cap. Recorded analysis: EXPERIMENTS.md
# §"Serving: tiered snapshot store".
set -euo pipefail

workdir=$(mktemp -d)
blob_port=${SGBLOB_PORT:-8179}
serve_port=${SGSERVE_PORT:-8180}
blob_base="http://localhost:$blob_port"
serve_base="http://localhost:$serve_port"
grids=6
blob_pid=""
serve_pid=""
trap 'kill "$blob_pid" "$serve_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/sgserve" ./cmd/sgserve
go build -o "$workdir/sgload" ./cmd/sgload
go build -o "$workdir/sginfo" ./cmd/sginfo

wait_http() {
    for i in $(seq 1 50); do
        curl -sf "$1" >/dev/null 2>&1 && return
        sleep 0.2
    done
    echo "store_demo.sh: $1 did not come up" >&2; exit 1
}

echo "compressing $grids demo grids (d=3, level=5)…"
keys=()
for i in $(seq 0 $((grids - 1))); do
    # Distinct (function, level) pairs -> distinct payloads -> distinct
    # content keys.
    fn=gaussian; [ $((i % 2)) -eq 1 ] && fn=parabola
    go run ./cmd/sgcompress -dim 3 -level $((5 + i / 2)) -fn "$fn" -direct -q -o "$workdir/g$i.sg"
    keys+=("$("$workdir/sginfo" -i "$workdir/g$i.sg" -key)")
done
# Same-shape duplicates would collapse to one key; demand 6 distinct.
distinct=$(printf '%s\n' "${keys[@]}" | sort -u | wc -l)
if [ "$distinct" -ne "$grids" ]; then
    echo "store_demo.sh: expected $grids distinct content keys, got $distinct" >&2; exit 1
fi

echo "== blob tier: sgserve -blob-dir on :$blob_port =="
mkdir -p "$workdir/blobs"
"$workdir/sgserve" -addr ":$blob_port" -blob-dir "$workdir/blobs" >/dev/null 2>&1 &
blob_pid=$!
wait_http "$blob_base/healthz"

for i in $(seq 0 $((grids - 1))); do
    code=$(curl -s -o /dev/null -w '%{http_code}' -X PUT --data-binary "@$workdir/g$i.sg" "$blob_base/v1/blobs/${keys[$i]}")
    if [ "$code" != 201 ]; then
        echo "store_demo.sh: PUT g$i -> $code, want 201" >&2; exit 1
    fi
done
echo "published $grids blobs by content address"

echo "== serving tier: store-backed sgserve, cache cap < catalog =="
# Cap sized to hold the last four files of the sweep plus slack: the
# first two must be evicted, the last four must survive as hits.
cap=$(( $(wc -c < "$workdir/g2.sg") + $(wc -c < "$workdir/g3.sg") \
     + $(wc -c < "$workdir/g4.sg") + $(wc -c < "$workdir/g5.sg") \
     + $(wc -c < "$workdir/g0.sg") / 2 ))
grid_flags=()
for i in $(seq 0 $((grids - 1))); do
    grid_flags+=(-grid "g$i=store:${keys[$i]}")
done
# -max-grids 2: the registry's own LRU stays small, so re-loading a
# grid actually exercises the store tier instead of a resident mmap.
"$workdir/sgserve" -addr ":$serve_port" -max-grids 2 \
    -store-dir "$workdir/cache" -store-cap "$cap" \
    -remote "$blob_base/v1/blobs" \
    "${grid_flags[@]}" >/dev/null 2>&1 &
serve_pid=$!
wait_http "$serve_base/healthz"

# prime forces a cold load (sgload needs the shape advertised on
# /v1/grids, which the server only knows once loaded) and asserts the
# store-backed load path answered 200.
prime() {
    code=$(curl -s -o /dev/null -w '%{http_code}' -H 'Content-Type: application/json' \
        -d "{\"grid\":\"g$1\",\"point\":[0.5,0.5,0.5]}" "$serve_base/v1/eval")
    [ "$code" = 200 ] || { echo "store_demo.sh: cold eval of g$1 -> $code" >&2; exit 1; }
}

echo "== cold sweep: every grid once (fetch + verify + fill + evict) =="
for i in $(seq 0 $((grids - 1))); do
    prime "$i"
    out=$("$workdir/sgload" -url "$serve_base" -grid "g$i" -c 4 -n 200)
    echo "$out" | grep -q " 0 errors " || { echo "store_demo.sh: client errors on g$i:"; echo "$out"; exit 1; }
done
echo "== re-loads: recently filled grids come back from the local cache =="
for i in 3 2; do
    prime "$i"
    out=$("$workdir/sgload" -url "$serve_base" -grid "g$i" -c 4 -n 200)
    echo "$out" | grep -q " 0 errors " || { echo "store_demo.sh: client errors on rehit g$i:"; echo "$out"; exit 1; }
done

metrics=$(curl -sf "$serve_base/metrics")
metric() { awk -v m="$1" '$1 == m { print int($2); exit }' <<<"$metrics"; }
misses=$(metric sgserve_store_misses)
hits=$(metric sgserve_store_hits)
evictions=$(metric sgserve_store_evictions)
size=$(metric sgserve_store_size_bytes)
cap_seen=$(metric sgserve_store_cap_bytes)
echo "store counters: misses=$misses hits=$hits evictions=$evictions size=$size cap=$cap_seen"

[ "$misses" -ge "$grids" ] || { echo "store_demo.sh: expected >= $grids misses, got $misses" >&2; exit 1; }
[ "$evictions" -ge 1 ] || { echo "store_demo.sh: expected evictions under a $cap-byte cap, got $evictions" >&2; exit 1; }
[ "$hits" -ge 1 ] || { echo "store_demo.sh: expected cache hits on the re-loads, got $hits" >&2; exit 1; }
[ "$size" -le "$cap" ] || { echo "store_demo.sh: cache size $size exceeds cap $cap" >&2; exit 1; }
[ "$cap_seen" -eq "$cap" ] || { echo "store_demo.sh: /metrics cap $cap_seen != configured $cap" >&2; exit 1; }

echo "store demo PASS: $grids grids through a $cap-byte cache, $misses misses / $hits hits / $evictions evictions, zero client errors"
