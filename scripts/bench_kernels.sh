#!/usr/bin/env bash
set -euo pipefail

# scripts/bench_kernels.sh — run the kernel hot-path benchmarks and emit
# BENCH_kernels.json: a machine-readable record of {name, ns/op,
# allocs/op, ns/point, points/s} for the compact-layout evaluation and
# hierarchization kernels, so the perf trajectory is diffable across PRs.
#
# Usage:
#   scripts/bench_kernels.sh                  # refresh the "current" run
#   scripts/bench_kernels.sh --as-baseline    # also stamp the run as the stored baseline
#   BENCHTIME=1s  scripts/bench_kernels.sh    # longer per-bench time (steadier numbers)
#   BENCHTIME=1x  scripts/bench_kernels.sh    # CI smoke: one iteration per bench
#   PAPERSCALE=1  scripts/bench_kernels.sh    # include the d=10 level-11 127.5M-point
#                                             # hierarchization (per worker count; minutes)
#
# The *Scaling benches record per-worker-count ns/pt (w1, w2, w4, w8)
# so the trajectory captures how the static decomposition scales; the
# run's "cpus" field says how many cores those numbers had to work with.
#
# The output keeps two runs side by side: "baseline" (the run last
# stamped with --as-baseline — for this repo, the pre-table-driven
# kernels) and "current". Requires jq.

cd "$(dirname "$0")/.."

OUT=${OUT:-BENCH_kernels.json}
BENCHTIME=${BENCHTIME:-500ms}
PATTERN=${PATTERN:-'^(BenchmarkKernelEval|BenchmarkKernelHier|BenchmarkKernelHierScaling|BenchmarkKernelEvalScaling|BenchmarkPaperscaleHier|BenchmarkFig9Hierarchization|BenchmarkFig9Evaluation)$'}
# PAPERSCALE=1 un-skips BenchmarkPaperscaleHier (it is gated behind
# SG_PAPERSCALE in bench_test.go; a skipped bench emits no lines).
if [ "${PAPERSCALE:-0}" = 1 ]; then
    export SG_PAPERSCALE=1
fi
AS_BASELINE=0
if [ "${1:-}" = "--as-baseline" ]; then
    AS_BASELINE=1
fi

command -v jq >/dev/null || { echo "bench_kernels.sh: jq is required" >&2; exit 1; }

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" -timeout 60m . | tee "$raw"

# Each bench line is: Name N  v1 unit1  v2 unit2 ...; units become JSON
# keys (ns/op -> ns_per_op, points/s -> points_per_s, ...).
results=$(awk '
    /^Benchmark/ {
        printf "{\"name\":\"%s\",\"iters\":%s", $1, $2
        for (i = 3; i + 1 <= NF; i += 2) {
            key = $(i + 1)
            gsub(/\//, "_per_", key)
            gsub(/[^A-Za-z0-9_]/, "_", key)
            printf ",\"%s\":%s", key, $i
        }
        print "}"
    }
' "$raw" | jq -s .)

if [ "$(jq 'length' <<<"$results")" -eq 0 ]; then
    echo "bench_kernels.sh: no benchmark lines parsed (pattern \"$PATTERN\")" >&2
    exit 1
fi

run=$(jq -n \
    --arg go "$(go env GOVERSION)" \
    --arg platform "$(go env GOOS)/$(go env GOARCH)" \
    --arg benchtime "$BENCHTIME" \
    --arg date "$(date -u +%FT%TZ)" \
    --argjson cpus "$(nproc)" \
    --argjson results "$results" \
    '{go: $go, platform: $platform, benchtime: $benchtime, date: $date, cpus: $cpus, results: $results}')

if [ "$AS_BASELINE" = 1 ] || [ ! -s "$OUT" ] || ! jq -e '.baseline' "$OUT" >/dev/null 2>&1; then
    baseline=$run
else
    baseline=$(jq '.baseline' "$OUT")
fi

jq -n --argjson baseline "$baseline" --argjson current "$run" \
    '{schema: 1, baseline: $baseline, current: $current}' > "$OUT"
echo "wrote $OUT ($(jq '.current.results | length' "$OUT") benchmarks)"
