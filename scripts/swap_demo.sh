#!/usr/bin/env bash
# Online-refinement demo with real binaries: boot an sgserve in -online
# mode (no static grids) behind an sgproxy, feed observations through
# the proxy's write relay, trigger refine → snapshot → hot-swap twice,
# and assert the served values, the monotonic version, and the snapshot
# lifecycle (only the current version's file survives). Used by CI and
# `make swap-demo`.
set -euo pipefail

workdir=$(mktemp -d)
pport=${SGSWAP_PROXY_PORT:-8270}
sport=${SGSWAP_SHARD_PORT:-8280}
base="http://localhost:$pport"
shard="http://127.0.0.1:$sport"
pids=()
trap 'kill "${pids[@]}" 2>/dev/null || true; rm -rf "$workdir"' EXIT

fail() { echo "swap-demo: $1" >&2; exit 1; }

go build -o "$workdir/sgserve" ./cmd/sgserve
go build -o "$workdir/sgproxy" ./cmd/sgproxy

"$workdir/sgserve" -addr "127.0.0.1:$sport" -shard-id s0 \
    -trusted-proxies 127.0.0.0/8 \
    -online -online-init-level 2 -online-max-level 6 \
    -online-refine-eps 1e-6 -snapshot-dir "$workdir/snaps" &
pids+=($!)
"$workdir/sgproxy" -addr ":$pport" -epoch 1 -shard "s0=127.0.0.1:$sport" &
proxy_pid=$!
pids+=("$proxy_pid")

wait_http() { # $1 = url, $2 = what
    for i in $(seq 1 50); do
        if curl -sf "$1" >/dev/null 2>&1; then return 0; fi
        sleep 0.2
    done
    fail "$2 never became healthy"
}
wait_http "$shard/healthz" "shard"
wait_http "$base/healthz" "proxy"

# Observe f(x,y) = x + 2y at the full level-2 grid, through the
# proxy's write relay: the center plus its four level-1 children.
curl -sf -d '{"points":[[0.5,0.5],[0.25,0.5],[0.75,0.5],[0.5,0.25],[0.5,0.75]],
              "values":[1.5,1.25,1.75,1.0,2.0]}' \
    "$base/v1/grids/live/observe" | grep -q '"applied":5' \
    || fail "observe through the proxy relay"

# Refine: commits the surpluses, exports a snapshot, hot-swaps it in
# as version 1.
refine=$(curl -sf -d '{}' "$base/v1/grids/live/refine")
echo "$refine" | grep -q '"swapped":true' || fail "first refine did not swap: $refine"
echo "$refine" | grep -q '"version":1' || fail "first refine version: $refine"

# The swapped grid serves through the normal (sharded, binary inner
# hop) eval path, exact at the observed points.
curl -sf -d '{"grid":"live","point":[0.25,0.5]}' "$base/v1/eval" \
    | grep -q '"value":1.25' || fail "eval of the refined grid through the proxy"

# An idle refine (no new observations) must not burn a version.
curl -sf -d '{}' "$base/v1/grids/live/refine" | grep -q '"swapped":false' \
    || fail "idle refine swapped anyway"

# Re-observe the center with a changed value: the next refine installs
# version 2 and the served interpolant follows.
curl -sf -d '{"points":[[0.5,0.5]],"values":[9]}' "$base/v1/grids/live/observe" \
    | grep -q '"applied":1' || fail "re-observe through the proxy relay"
refine=$(curl -sf -d '{}' "$base/v1/grids/live/refine")
echo "$refine" | grep -q '"version":2' || fail "second refine version: $refine"
curl -sf -d '{"grid":"live","point":[0.5,0.5]}' "$base/v1/eval" \
    | grep -q '"value":9' || fail "eval after the second hot-swap"

# The version surfaces everywhere it should.
curl -sf "$base/v1/grids" | grep -q '"version":2' || fail "version in /v1/grids"
curl -sf "$shard/healthz?detail=1" | grep -q '"live":2' || fail "version in healthz detail"
metrics=$(curl -sf "$shard/metrics")
echo "$metrics" | grep -q '^sgserve_grid_swaps_total 2' || fail "sgserve_grid_swaps_total"
echo "$metrics" | grep -q '^sgserve_grid_version{grid="live"} 2' || fail "sgserve_grid_version"

# Snapshot lifecycle: displaced versions are unlinked after their swap
# (the registry's mapping keeps the bytes alive until the last lease),
# so exactly the current version's file remains.
snaps=$(ls "$workdir/snaps")
[ "$snaps" = "live.v2.sg" ] || fail "snapshot dir holds [$snaps], want [live.v2.sg]"

kill -TERM "$proxy_pid"
wait "$proxy_pid" || fail "proxy exited non-zero on SIGTERM"
echo "swap-demo: ok (observed, refined, hot-swapped twice, version monotonic)"
