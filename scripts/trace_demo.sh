#!/usr/bin/env bash
# Stage-attribution demo for the observability layer: serve one grid,
# drive it with sgload in both modes, and show where server-side time
# goes — the per-stage percentiles sgload derives from /debug/traces
# (queue_wait vs dispatch vs eval vs encode), the raw trace JSON, and
# the sgserve_stage_seconds split from /metrics.
# Recorded results and analysis: EXPERIMENTS.md §"Stage attribution".
set -euo pipefail

workdir=$(mktemp -d)
port=${SGSERVE_PORT:-8177}
base="http://localhost:$port"
conc=${SGLOAD_C:-32}
n=${SGLOAD_N:-4000}
server_pid=""
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/sgserve" ./cmd/sgserve
go build -o "$workdir/sgload" ./cmd/sgload
echo "compressing demo grid (d=5, level=7, gaussian)…"
go run ./cmd/sgcompress -dim 5 -level 7 -fn gaussian -direct -q -o "$workdir/field.sg"

"$workdir/sgserve" -addr ":$port" -pprof -trace-ring 1024 "$workdir/field.sg" >/dev/null 2>&1 &
server_pid=$!
for i in $(seq 1 50); do
    curl -sf "$base/healthz" >/dev/null 2>&1 && break
    sleep 0.2
done

echo; echo "== coalesced /v1/eval: latency dominated by the micro-batch linger (queue_wait) =="
"$workdir/sgload" -url "$base" -c "$conc" -n "$n"

echo; echo "== /v1/eval/batch (64 points/request): latency dominated by kernel time (eval) =="
"$workdir/sgload" -url "$base" -c "$conc" -n $((n / 16)) -mode batch -points 64

echo; echo "== one raw trace from /debug/traces =="
if command -v jq >/dev/null 2>&1; then
    curl -sf "$base/debug/traces" | jq '.traces[0]'
else
    curl -sf "$base/debug/traces" | head -c 600; echo
fi

echo; echo "== sgserve_stage_seconds sums (seconds spent per stage, all requests) =="
curl -sf "$base/metrics" | grep -E '^sgserve_stage_seconds_(sum|count)' || true

kill -TERM "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""
