#!/usr/bin/env bash
# Throughput comparison for the evaluation server: the same level-6
# d=5 grid served three ways — naive (one evaluation per request
# goroutine), coalesced (server-side micro-batching), and client-side
# batching — measured with the closed-loop sgload generator.
# Recorded results and analysis: EXPERIMENTS.md §"Serving".
set -euo pipefail

workdir=$(mktemp -d)
port=${SGSERVE_PORT:-8177}
base="http://localhost:$port"
conc=${SGLOAD_C:-64}
n=${SGLOAD_N:-8000}
server_pid=""
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/sgserve" ./cmd/sgserve
go build -o "$workdir/sgload" ./cmd/sgload
echo "compressing demo grid (d=5, level=6, gaussian)…"
go run ./cmd/sgcompress -dim 5 -level 6 -fn gaussian -direct -q -o "$workdir/field.sg"

serve() {
    "$workdir/sgserve" -addr ":$port" "$@" "$workdir/field.sg" >/dev/null 2>&1 &
    server_pid=$!
    for i in $(seq 1 50); do
        curl -sf "$base/healthz" >/dev/null 2>&1 && return
        sleep 0.2
    done
    echo "server did not come up" >&2; exit 1
}
stop() { kill -TERM "$server_pid"; wait "$server_pid" 2>/dev/null || true; server_pid=""; }

echo; echo "== naive: one evaluation per request goroutine =="
serve -no-coalesce
"$workdir/sgload" -url "$base" -c "$conc" -n "$n"
stop

echo; echo "== coalesced: micro-batched /v1/eval =="
serve
"$workdir/sgload" -url "$base" -c "$conc" -n "$n"
stop

echo; echo "== client batch: 64 points per /v1/eval/batch request =="
serve
"$workdir/sgload" -url "$base" -c "$conc" -n $((n / 16)) -mode batch -points 64
stop
