#!/usr/bin/env bash
# Sharded-serving demo with real binaries: boot 3 sgserve shards and an
# sgproxy in front, drive traffic through the proxy over both
# protocols, hard-kill one shard mid-run (traffic must keep answering
# via replica failover), swap in a replacement under the same shard ID
# with an epoch-bumped topology POST, and assert the proxy reports a
# fully healthy fleet again. Used by CI and `make proxy-demo`.
set -euo pipefail

workdir=$(mktemp -d)
pport=${SGPROXY_PORT:-8170}
sport=${SGPROXY_SHARD_BASE_PORT:-8180}
base="http://localhost:$pport"
pids=()
trap 'kill "${pids[@]}" 2>/dev/null || true; rm -rf "$workdir"' EXIT

fail() { echo "proxy-demo: $1" >&2; exit 1; }

go build -o "$workdir/sgserve" ./cmd/sgserve
go build -o "$workdir/sgproxy" ./cmd/sgproxy
go build -o "$workdir/sgload" ./cmd/sgload
# Three grids so the keyspace actually spreads across shards.
for fn in gaussian parabola sinprod; do
    go run ./cmd/sgcompress -dim 3 -level 5 -fn "$fn" -direct -q -o "$workdir/$fn.sg"
done

start_shard() { # $1 = shard index, $2 = port
    "$workdir/sgserve" -addr "127.0.0.1:$2" -shard-id "s$1" \
        -trusted-proxies 127.0.0.0/8 \
        -grid "gaussian=$workdir/gaussian.sg" \
        -grid "parabola=$workdir/parabola.sg" \
        -grid "sinprod=$workdir/sinprod.sg" &
    pids+=($!)
}

wait_http() { # $1 = url, $2 = what
    for i in $(seq 1 50); do
        if curl -sf "$1" >/dev/null 2>&1; then return 0; fi
        sleep 0.2
    done
    fail "$2 never became healthy"
}

for i in 0 1 2; do start_shard "$i" $((sport + i)); done
for i in 0 1 2; do wait_http "http://127.0.0.1:$((sport + i))/healthz" "shard s$i"; done

"$workdir/sgproxy" -addr ":$pport" -epoch 1 \
    -shard "s0=127.0.0.1:$sport" \
    -shard "s1=127.0.0.1:$((sport + 1))" \
    -shard "s2=127.0.0.1:$((sport + 2))" &
proxy_pid=$!
pids+=("$proxy_pid")
wait_http "$base/healthz" "proxy"

# Basic routing: every grid answers through the proxy, both protocols.
curl -sf -d '{"grid":"gaussian","point":[0.5,0.5,0.5]}' "$base/v1/eval" \
    | grep -q '"value":1' || fail "routed /v1/eval (gaussian peak should be 1)"
curl -sf -d '{"grid":"parabola","points":[[0.5,0.5,0.5],[0.25,0.25,0.25]]}' \
    "$base/v1/eval/batch" | grep -q '"values":\[' || fail "routed /v1/eval/batch"
# u16 nameLen=8 | "gaussian" | 6 pad bytes (to frame offset 16) |
# u32 n=1 | u32 d=3 | 3 little-endian float64 0.5
printf '\x08\x00gaussian\x00\x00\x00\x00\x00\x00\x01\x00\x00\x00\x03\x00\x00\x00' > "$workdir/frame.bin"
printf '\x00\x00\x00\x00\x00\x00\xe0\x3f%.0s' 1 2 3 >> "$workdir/frame.bin"
curl -sf -H 'Content-Type: application/x-compactsg-frame' \
    --data-binary @"$workdir/frame.bin" "$base/v1/eval/bin" -o "$workdir/values.bin" \
    || fail "routed /v1/eval/bin"
od -An -tx1 "$workdir/values.bin" | tr -d ' \n' | \
    grep -q '^0100000000000000000000000000f03f$' \
    || fail "/v1/eval/bin values frame through the proxy"
curl -sf "$base/v1/grids" | grep -q '"name":"gaussian"' || fail "relayed /v1/grids"

# Load through the proxy in mixed-protocol mode while we run the chaos.
"$workdir/sgload" -url "$base" -c 8 -n 4000 -protocol mix -grid gaussian \
    -traces=false > "$workdir/load1.txt" 2>&1 &
load_pid=$!

# Kill shard s1 mid-traffic. Requests it owned must fail over.
sleep 0.5
kill -9 "${pids[1]}" 2>/dev/null || true
sleep 0.5
curl -sf -d '{"grid":"gaussian","point":[0.5,0.5,0.5]}' "$base/v1/eval" >/dev/null \
    || fail "eval with a dead shard (failover should hide it)"
curl -sf -d '{"grid":"parabola","point":[0.5,0.5,0.5]}' "$base/v1/eval" >/dev/null \
    || fail "eval of second grid with a dead shard"
curl -sf -d '{"grid":"sinprod","point":[0.5,0.5,0.5]}' "$base/v1/eval" >/dev/null \
    || fail "eval of third grid with a dead shard"

wait "$load_pid" || fail "load run with a dead shard exited non-zero (see $workdir/load1.txt)"

# Replace s1: same shard ID, new port, epoch-bumped topology POST.
rport=$((sport + 9))
start_shard 1 "$rport"
wait_http "http://127.0.0.1:$rport/healthz" "replacement shard s1"
code=$(curl -s -o /dev/null -w '%{http_code}' -H 'Content-Type: application/json' \
    -d "{\"epoch\":2,\"shards\":[
          {\"id\":\"s0\",\"addr\":\"127.0.0.1:$sport\"},
          {\"id\":\"s1\",\"addr\":\"127.0.0.1:$rport\"},
          {\"id\":\"s2\",\"addr\":\"127.0.0.1:$((sport + 2))\"}]}" \
    "$base/admin/topology")
[ "$code" = 200 ] || fail "topology bump returned $code, want 200"
# A stale epoch must be refused.
code=$(curl -s -o /dev/null -w '%{http_code}' -H 'Content-Type: application/json' \
    -d "{\"epoch\":2,\"shards\":[{\"id\":\"s0\",\"addr\":\"127.0.0.1:$sport\"}]}" \
    "$base/admin/topology")
[ "$code" = 409 ] || fail "stale topology epoch returned $code, want 409"

# Recovery: the proxy must report epoch 2 and every shard healthy with
# its breaker closed (the topology handler polls immediately, so this
# converges in milliseconds; give it 2s to be safe).
ok=
for i in $(seq 1 20); do
    health=$(curl -s "$base/healthz")
    if echo "$health" | grep -q '"epoch":2' && \
       ! echo "$health" | grep -q '"healthy":false' && \
       ! echo "$health" | grep -q '"breaker_open":true'; then
        ok=1; break
    fi
    sleep 0.1
done
[ -n "$ok" ] || fail "fleet did not recover after the topology bump: $(curl -s "$base/healthz")"

# Post-recovery traffic: a clean load run, plus proof the replacement
# is back in rotation. Requests route by grid *name* whether or not the
# grid exists (unknown names draw the owning shard's 404), so probing
# 32 distinct names guarantees s1 owns several — its upstream request
# counter must move.
before=$(curl -s "$base/metrics" | sed -n 's/^sgproxy_upstream_requests_total{shard="s1"} //p')
"$workdir/sgload" -url "$base" -c 8 -n 4000 -protocol mix -grid gaussian \
    -traces=false > "$workdir/load2.txt" 2>&1 \
    || fail "post-recovery load run exited non-zero (see $workdir/load2.txt)"
for i in $(seq 1 32); do
    curl -s -o /dev/null -d "{\"grid\":\"probe-$i\",\"point\":[0.5,0.5,0.5]}" "$base/v1/eval"
done
after=$(curl -s "$base/metrics" | sed -n 's/^sgproxy_upstream_requests_total{shard="s1"} //p')
[ "${after:-0}" != "${before:-0}" ] || fail "replacement shard s1 received no traffic after recovery"

grep -E 'req/s|throughput' "$workdir/load2.txt" | head -2 || true
kill -TERM "$proxy_pid"
wait "$proxy_pid" || fail "proxy exited non-zero on SIGTERM"
echo "proxy-demo: ok (shard killed, replaced, fleet recovered)"
