#!/usr/bin/env bash
set -euo pipefail

# scripts/bench_coldload.sh — measure the cold-load path (file on disk →
# first evaluation) for the three dense-container routes and emit
# BENCH_coldload.json:
#
#   V1Copy     legacy SGC1 stream, decoded and copied into fresh arrays
#   V2Copy     SGC2 snapshot read through the copying decoder
#   V2Mmap     SGC2 snapshot mapped read-only in place (zero copy)
#   StoreHit   tiered store, local cache hit (lookup + pin + mmap)
#   StoreMiss  tiered store, remote fetch + verify + cache fill + mmap
#
# plus the headline "speedup_mmap_vs_v1" ratio the serving layer banks
# on and the store's hit-vs-miss spread ("speedup_storehit_vs_miss"),
# which is what the local cache tier buys on every re-load. The grid is the level-10 d=5 compressed snapshot (~554k points,
# ~4.4 MB) — big enough that payload I/O dominates the header work.
#
# Usage:
#   scripts/bench_coldload.sh                 # refresh BENCH_coldload.json
#   BENCHTIME=1s scripts/bench_coldload.sh    # steadier numbers
#   BENCHTIME=1x scripts/bench_coldload.sh    # CI smoke: one iteration
#
# Requires jq. Note: with BENCHTIME=1x the first iteration pays the page
# cache warm-up, so the ratio is only meaningful at >=100ms benchtimes.

cd "$(dirname "$0")/.."

OUT=${OUT:-BENCH_coldload.json}
BENCHTIME=${BENCHTIME:-500ms}
PATTERN=${PATTERN:-'^BenchmarkColdLoad$'}

command -v jq >/dev/null || { echo "bench_coldload.sh: jq is required" >&2; exit 1; }

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" -timeout 30m . | tee "$raw"

results=$(awk '
    /^BenchmarkColdLoad\// {
        printf "{\"name\":\"%s\",\"iters\":%s", $1, $2
        for (i = 3; i + 1 <= NF; i += 2) {
            key = $(i + 1)
            gsub(/\//, "_per_", key)
            gsub(/[^A-Za-z0-9_]/, "_", key)
            printf ",\"%s\":%s", key, $i
        }
        print "}"
    }
' "$raw" | jq -s .)

if [ "$(jq 'length' <<<"$results")" -lt 5 ]; then
    echo "bench_coldload.sh: expected the V1Copy/V2Copy/V2Mmap/StoreHit/StoreMiss sub-benchmarks, parsed $(jq 'length' <<<"$results")" >&2
    exit 1
fi

# ns/op for a named route (sub-bench names may carry a -GOMAXPROCS suffix).
ns_of() {
    jq --arg route "$1" '[.[] | select(.name | test("/" + $route + "(-[0-9]+)?$"))][0].ns_per_op' <<<"$results"
}

v1=$(ns_of V1Copy)
v2copy=$(ns_of V2Copy)
v2mmap=$(ns_of V2Mmap)
storehit=$(ns_of StoreHit)
storemiss=$(ns_of StoreMiss)

jq -n \
    --arg go "$(go env GOVERSION)" \
    --arg platform "$(go env GOOS)/$(go env GOARCH)" \
    --arg benchtime "$BENCHTIME" \
    --arg date "$(date -u +%FT%TZ)" \
    --argjson cpus "$(nproc)" \
    --argjson results "$results" \
    --argjson v1 "$v1" --argjson v2copy "$v2copy" --argjson v2mmap "$v2mmap" \
    --argjson storehit "$storehit" --argjson storemiss "$storemiss" \
    '{schema: 1, go: $go, platform: $platform, benchtime: $benchtime, date: $date, cpus: $cpus,
      grid: {dim: 5, level: 10},
      results: $results,
      speedup_mmap_vs_v1: (if $v2mmap > 0 then ($v1 / $v2mmap * 100 | round / 100) else null end),
      speedup_mmap_vs_v2copy: (if $v2mmap > 0 then ($v2copy / $v2mmap * 100 | round / 100) else null end),
      overhead_storehit_vs_mmap: (if $v2mmap > 0 then ($storehit / $v2mmap * 100 | round / 100) else null end),
      speedup_storehit_vs_miss: (if $storehit > 0 then ($storemiss / $storehit * 100 | round / 100) else null end)}' > "$OUT"

echo "wrote $OUT (mmap vs v1 copy: $(jq '.speedup_mmap_vs_v1' "$OUT")x, vs v2 copy: $(jq '.speedup_mmap_vs_v2copy' "$OUT")x, store hit vs miss: $(jq '.speedup_storehit_vs_miss' "$OUT")x)"
