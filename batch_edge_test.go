package compactsg

import (
	"math"
	"testing"

	"compactsg/internal/workload"
)

// Edge-case behavior of the public EvaluateBatch contract: empty
// batches, caller-provided and nil out slices, out-of-domain points
// (clamped, matching Evaluate), and dimension mismatches.

func newCompressed(t *testing.T, dim, level int, opts ...Option) *Grid {
	t.Helper()
	g, err := New(dim, level, opts...)
	if err != nil {
		t.Fatal(err)
	}
	g.Compress(workload.Parabola.F)
	return g
}

func TestEvaluateBatchEmpty(t *testing.T) {
	g := newCompressed(t, 3, 4)
	out, err := g.EvaluateBatch(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("nil batch returned %d values", len(out))
	}
	out, err = g.EvaluateBatch([][]float64{}, nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: out %v err %v", out, err)
	}
	// Blocked + parallel configurations must handle empty input too.
	gb := newCompressed(t, 3, 4, WithWorkers(4), WithBlockSize(8))
	if out, err := gb.EvaluateBatch(nil, nil); err != nil || len(out) != 0 {
		t.Fatalf("blocked empty batch: out %v err %v", out, err)
	}
}

func TestEvaluateBatchNilAndProvidedOut(t *testing.T) {
	g := newCompressed(t, 2, 5)
	xs := workload.Points(3, 17, 2)

	fresh, err := g.EvaluateBatch(xs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != len(xs) {
		t.Fatalf("nil out: got %d values, want %d", len(fresh), len(xs))
	}

	buf := make([]float64, len(xs))
	reused, err := g.EvaluateBatch(xs, buf)
	if err != nil {
		t.Fatal(err)
	}
	if &reused[0] != &buf[0] {
		t.Error("provided out slice was not reused")
	}
	for k := range xs {
		if fresh[k] != reused[k] {
			t.Fatalf("point %d: nil-out %g != provided-out %g", k, fresh[k], reused[k])
		}
		want, _ := g.Evaluate(xs[k])
		if math.Abs(fresh[k]-want) > 1e-12 {
			t.Fatalf("point %d: batch %g != single %g", k, fresh[k], want)
		}
	}
}

func TestEvaluateBatchOutOfDomainClamps(t *testing.T) {
	g := newCompressed(t, 2, 5)
	// Coordinates outside [0,1] are clamped into the boundary cell by
	// the iterative kernel; batch and single-point paths must agree,
	// in every execution configuration.
	xs := [][]float64{
		{-0.5, 0.5},
		{0.5, 1.5},
		{2, -3},
		{1, 0}, // exactly on the boundary: interpolant vanishes
	}
	want := make([]float64, len(xs))
	for k, x := range xs {
		want[k], _ = g.Evaluate(x)
	}
	if v := want[3]; v != 0 {
		t.Fatalf("boundary value = %g, want 0 (zero-boundary grid)", v)
	}
	for _, opts := range [][]Option{
		nil,
		{WithWorkers(3)},
		{WithBlockSize(2)},
		{WithWorkers(2), WithBlockSize(2)},
	} {
		gc := newCompressed(t, 2, 5, opts...)
		out, err := gc.EvaluateBatch(xs, nil)
		if err != nil {
			t.Fatal(err)
		}
		for k := range xs {
			if math.Abs(out[k]-want[k]) > 1e-12 {
				t.Fatalf("opts %v point %d: %g, want %g", opts, k, out[k], want[k])
			}
		}
	}
}

func TestEvaluateBatchDimMismatch(t *testing.T) {
	g := newCompressed(t, 3, 4)
	xs := [][]float64{
		{0.5, 0.5, 0.5},
		{0.5, 0.5}, // short point in the middle of the batch
		{0.5, 0.5, 0.5},
	}
	if _, err := g.EvaluateBatch(xs, nil); err == nil {
		t.Fatal("dim mismatch not rejected")
	}
	if _, err := g.EvaluateBatch([][]float64{{0.1, 0.2, 0.3, 0.4}}, nil); err == nil {
		t.Fatal("oversized point not rejected")
	}
	if _, err := g.EvaluateBatch([][]float64{nil}, nil); err == nil {
		t.Fatal("nil point not rejected")
	}
}

func TestEvaluateBatchRequiresCompressed(t *testing.T) {
	g, err := New(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.EvaluateBatch(workload.Points(1, 3, 2), nil); err == nil {
		t.Fatal("EvaluateBatch on a nodal grid not rejected")
	}
}
