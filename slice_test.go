package compactsg

import (
	"math"
	"testing"

	"compactsg/internal/workload"
)

func TestSlice2D(t *testing.T) {
	f := workload.Parabola.F
	g, err := New(4, 6, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	g.Compress(f)
	spec := SliceSpec{AxisX: 0, AxisY: 2, NX: 8, NY: 6, Anchor: []float64{0, 0.5, 0, 0.25}}
	img, err := g.Slice2D(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(img) != 48 {
		t.Fatalf("raster size %d want 48", len(img))
	}
	// Spot-check values against direct evaluation.
	for y := 0; y < spec.NY; y++ {
		for x := 0; x < spec.NX; x++ {
			p := []float64{(float64(x) + 0.5) / 8, 0.5, (float64(y) + 0.5) / 6, 0.25}
			want, _ := g.Evaluate(p)
			got := img[y*spec.NX+x]
			if got != want {
				t.Fatalf("pixel (%d,%d): %g want %g", x, y, got, want)
			}
			if math.Abs(got-f(p)) > 0.05 {
				t.Fatalf("pixel (%d,%d) far from f: %g vs %g", x, y, got, f(p))
			}
		}
	}
}

func TestSlice2DValidation(t *testing.T) {
	g, _ := New(3, 4)
	anchor := []float64{0.5, 0.5, 0.5}
	if _, err := g.Slice2D(SliceSpec{AxisX: 0, AxisY: 1, NX: 4, NY: 4, Anchor: anchor}); err == nil {
		t.Error("uncompressed grid accepted")
	}
	g.Compress(workload.Parabola.F)
	bad := []SliceSpec{
		{AxisX: 0, AxisY: 0, NX: 4, NY: 4, Anchor: anchor},  // same axis
		{AxisX: -1, AxisY: 1, NX: 4, NY: 4, Anchor: anchor}, // out of range
		{AxisX: 0, AxisY: 3, NX: 4, NY: 4, Anchor: anchor},  // out of range
		{AxisX: 0, AxisY: 1, NX: 1, NY: 4, Anchor: anchor},  // raster too small
		{AxisX: 0, AxisY: 1, NX: 4, NY: 4, Anchor: anchor[:2]},
	}
	for k, spec := range bad {
		if _, err := g.Slice2D(spec); err == nil {
			t.Errorf("bad spec %d accepted", k)
		}
	}
}

func TestAdaptiveGridPublicAPI(t *testing.T) {
	peak := func(x []float64) float64 {
		w := 1.0
		for _, v := range x {
			w *= 4 * v * (1 - v)
		}
		d0 := x[0] - 0.25
		d1 := x[1] - 0.25
		return w * math.Exp(-80*(d0*d0+d1*d1))
	}
	a, err := NewAdaptive(2, 3, 10, peak)
	if err != nil {
		t.Fatal(err)
	}
	if a.Dim() != 2 || a.Points() <= 0 || a.MemoryBytes() <= 0 {
		t.Fatal("accessors inconsistent")
	}
	start := a.Points()
	final := a.RefineToTolerance(1e-3, 3000)
	if final <= start {
		t.Fatalf("refinement added nothing: %d -> %d", start, final)
	}
	if final > 3000+50 {
		t.Fatalf("point budget exceeded: %d", final)
	}
	// Accuracy at the peak.
	for _, x := range [][]float64{{0.25, 0.25}, {0.3, 0.2}, {0.7, 0.7}} {
		got, err := a.Evaluate(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-peak(x)) > 5e-3 {
			t.Errorf("at %v: %g want %g", x, got, peak(x))
		}
	}
	if _, err := a.Evaluate([]float64{0.5}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := NewAdaptive(2, 9, 4, peak); err == nil {
		t.Error("initial > max accepted")
	}
}

func TestBoundaryGridWorkersAndCoarsen(t *testing.T) {
	f := workload.Multilinear.F
	seq, err := NewWithBoundary(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	seq.Compress(f)
	par, err := NewWithBoundary(3, 4, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	par.Compress(f)
	for _, x := range workload.Points(5, 30, 3) {
		a, _ := seq.Evaluate(x)
		b, _ := par.Evaluate(x)
		if a != b {
			t.Fatalf("parallel boundary compress differs at %v", x)
		}
	}
	if _, err := NewWithBoundary(3, 4, WithWorkers(0)); err != nil {
		t.Errorf("workers 0 (auto) rejected: %v", err)
	}
	if _, err := NewWithBoundary(3, 4, WithWorkers(-1)); err == nil {
		t.Error("workers -1 accepted")
	}

	// Public adaptive coarsening.
	a, err := NewAdaptive(2, 4, 8, workload.Parabola.F)
	if err != nil {
		t.Fatal(err)
	}
	before := a.Points()
	removed, bound := a.Coarsen(0.02)
	if removed <= 0 || bound <= 0 || a.Points() != before-removed {
		t.Errorf("Coarsen: removed=%d bound=%g points %d->%d", removed, bound, before, a.Points())
	}
}
