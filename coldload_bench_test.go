// Cold-load benchmarks for the SGC2 snapshot format: how fast a
// compressed grid goes from a file on disk to answering its first
// query. V2Mmap is the zero-copy path (payload stays in the page
// cache); V1Copy and V2Copy decode the payload into the heap;
// StoreHit/StoreMiss route the load through the tiered snapshot store
// (cache hit vs full remote fetch + verify + fill).
// scripts/bench_coldload.sh turns these into BENCH_coldload.json.
package compactsg_test

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"testing"

	"compactsg"
	"compactsg/internal/store"
	"compactsg/internal/workload"
)

const (
	coldDim   = 5
	coldLevel = 10
)

func coldLoadFile(b *testing.B, save func(*compactsg.Grid, io.Writer) error) string {
	b.Helper()
	g, err := compactsg.New(coldDim, coldLevel)
	if err != nil {
		b.Fatal(err)
	}
	g.Compress(workload.Parabola.F)
	path := filepath.Join(b.TempDir(), "cold.sg")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := save(g, f); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(st.Size())
	return path
}

func benchColdLoad(b *testing.B, path string, wantMode compactsg.LoadMode) {
	x := workload.Points(11, 1, coldDim)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		og, err := compactsg.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		if og.Mode != wantMode {
			b.Fatalf("load mode %v, want %v", og.Mode, wantMode)
		}
		if _, err := og.Evaluate(x); err != nil {
			b.Fatal(err)
		}
		if err := og.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColdLoad(b *testing.B) {
	b.Run("V1Copy", func(b *testing.B) {
		path := coldLoadFile(b, (*compactsg.Grid).SaveV1)
		benchColdLoad(b, path, compactsg.LoadCopy)
	})
	b.Run("V2Copy", func(b *testing.B) {
		// The copying v2 decoder, benchmarked directly: what every
		// non-linux or big-endian host pays for the same file.
		path := coldLoadFile(b, (*compactsg.Grid).Save)
		g, err := compactsg.New(coldDim, coldLevel)
		if err != nil {
			b.Fatal(err)
		}
		g.Compress(workload.Parabola.F)
		x := workload.Points(11, 1, coldDim)[0]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f, err := os.Open(path)
			if err != nil {
				b.Fatal(err)
			}
			got, err := compactsg.Load(f)
			if err != nil {
				b.Fatal(err)
			}
			f.Close()
			if _, err := got.Evaluate(x); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("V2Mmap", func(b *testing.B) {
		path := coldLoadFile(b, (*compactsg.Grid).Save)
		benchColdLoad(b, path, compactsg.LoadMmap)
	})
	// The tiered-store routes: what a store-backed cold load adds on
	// top of the raw mmap. StoreHit opens the already-cached object
	// (key lookup + pin + mmap); StoreMiss pays the full fetch →
	// verify → cache fill from a local-filesystem remote each
	// iteration — an upper bound on the cache's benefit, since a real
	// remote adds network latency on top.
	b.Run("StoreHit", func(b *testing.B) {
		path := coldLoadFile(b, (*compactsg.Grid).Save)
		st, key := benchStore(b, path)
		obj, err := st.Get(context.Background(), key) // warm the cache
		if err != nil {
			b.Fatal(err)
		}
		obj.Release()
		x := workload.Points(11, 1, coldDim)[0]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchStoreLoad(b, st, key, x)
		}
	})
	b.Run("StoreMiss", func(b *testing.B) {
		path := coldLoadFile(b, (*compactsg.Grid).Save)
		st, key := benchStore(b, path)
		x := workload.Points(11, 1, coldDim)[0]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if err := st.Drop(key); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			benchStoreLoad(b, st, key, x)
		}
	})
}

// benchStore builds a store over a filesystem remote seeded with the
// snapshot at path and returns it with the snapshot's content address.
func benchStore(b *testing.B, path string) (*store.Store, string) {
	b.Helper()
	key, err := store.KeyOfFile(path)
	if err != nil {
		b.Fatal(err)
	}
	remoteDir := b.TempDir()
	raw, err := os.ReadFile(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(remoteDir, key+".sg"), raw, 0o644); err != nil {
		b.Fatal(err)
	}
	st, err := store.Open(store.Config{Dir: b.TempDir(), Remote: &store.FSRemote{Dir: remoteDir}})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })
	return st, key
}

func benchStoreLoad(b *testing.B, st *store.Store, key string, x []float64) {
	obj, err := st.Get(context.Background(), key)
	if err != nil {
		b.Fatal(err)
	}
	og, err := compactsg.Open(obj.Path())
	obj.Release()
	if err != nil {
		b.Fatal(err)
	}
	if og.Mode != compactsg.LoadMmap {
		b.Fatalf("load mode %v, want mmap", og.Mode)
	}
	if _, err := og.Evaluate(x); err != nil {
		b.Fatal(err)
	}
	if err := og.Close(); err != nil {
		b.Fatal(err)
	}
}
