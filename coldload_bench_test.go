// Cold-load benchmarks for the SGC2 snapshot format: how fast a
// compressed grid goes from a file on disk to answering its first
// query. V2Mmap is the zero-copy path (payload stays in the page
// cache); V1Copy and V2Copy decode the payload into the heap.
// scripts/bench_coldload.sh turns these into BENCH_coldload.json.
package compactsg_test

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"compactsg"
	"compactsg/internal/workload"
)

const (
	coldDim   = 5
	coldLevel = 10
)

func coldLoadFile(b *testing.B, save func(*compactsg.Grid, io.Writer) error) string {
	b.Helper()
	g, err := compactsg.New(coldDim, coldLevel)
	if err != nil {
		b.Fatal(err)
	}
	g.Compress(workload.Parabola.F)
	path := filepath.Join(b.TempDir(), "cold.sg")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := save(g, f); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(st.Size())
	return path
}

func benchColdLoad(b *testing.B, path string, wantMode compactsg.LoadMode) {
	x := workload.Points(11, 1, coldDim)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		og, err := compactsg.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		if og.Mode != wantMode {
			b.Fatalf("load mode %v, want %v", og.Mode, wantMode)
		}
		if _, err := og.Evaluate(x); err != nil {
			b.Fatal(err)
		}
		if err := og.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColdLoad(b *testing.B) {
	b.Run("V1Copy", func(b *testing.B) {
		path := coldLoadFile(b, (*compactsg.Grid).SaveV1)
		benchColdLoad(b, path, compactsg.LoadCopy)
	})
	b.Run("V2Copy", func(b *testing.B) {
		// The copying v2 decoder, benchmarked directly: what every
		// non-linux or big-endian host pays for the same file.
		path := coldLoadFile(b, (*compactsg.Grid).Save)
		g, err := compactsg.New(coldDim, coldLevel)
		if err != nil {
			b.Fatal(err)
		}
		g.Compress(workload.Parabola.F)
		x := workload.Points(11, 1, coldDim)[0]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f, err := os.Open(path)
			if err != nil {
				b.Fatal(err)
			}
			got, err := compactsg.Load(f)
			if err != nil {
				b.Fatal(err)
			}
			f.Close()
			if _, err := got.Evaluate(x); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("V2Mmap", func(b *testing.B) {
		path := coldLoadFile(b, (*compactsg.Grid).Save)
		benchColdLoad(b, path, compactsg.LoadMmap)
	})
}
