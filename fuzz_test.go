package compactsg

import (
	"bytes"
	"math"
	"testing"

	"compactsg/internal/workload"
)

// FuzzLoadAny drives the public artifact loader — the one untrusted
// bytes from disk or the network actually reach — with all three
// container generations seeded. It must never panic, never allocate
// unboundedly, and anything it accepts must round-trip through Save
// bit-identically.
func FuzzLoadAny(f *testing.F) {
	g, err := New(2, 3)
	if err != nil {
		f.Fatal(err)
	}
	g.Compress(workload.Parabola.F)
	var v2, v1, sparse bytes.Buffer
	if err := g.Save(&v2); err != nil {
		f.Fatal(err)
	}
	if err := g.SaveV1(&v1); err != nil {
		f.Fatal(err)
	}
	if err := g.SaveSparse(&sparse); err != nil {
		f.Fatal(err)
	}
	for _, seed := range [][]byte{v2.Bytes(), v1.Bytes(), sparse.Bytes()} {
		f.Add(seed)
		f.Add(seed[:len(seed)-1])
	}
	f.Add([]byte{})
	f.Add([]byte("SGS1"))
	f.Add([]byte("SGC2"))
	f.Add([]byte{1, 'S', 'G', 'C', '1'})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := LoadAny(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := got.Save(&buf); err != nil {
			t.Fatalf("re-save of accepted grid failed: %v", err)
		}
		back, err := LoadAny(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-load of accepted grid failed: %v", err)
		}
		if back.Compressed() != got.Compressed() {
			t.Fatal("compressed state lost in round trip")
		}
		a, b := got.Raw().Data, back.Raw().Data
		if len(a) != len(b) {
			t.Fatalf("round trip changed size %d → %d", len(a), len(b))
		}
		for k := range a {
			if math.Float64bits(a[k]) != math.Float64bits(b[k]) {
				t.Fatalf("round trip not bit-identical at %d", k)
			}
		}
	})
}
