package compactsg_test

// Cross-module integration tests: every path from function to value —
// CPU iterative, CPU recursive on each comparison store, the GPU
// simulator kernels, the combination technique, and the adaptive grid —
// must agree on the same interpolant; and the full Fig. 1 pipeline
// (simulate → compress → store → load → decompress) must round-trip.

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"compactsg"
	"compactsg/internal/adaptive"
	"compactsg/internal/combi"
	"compactsg/internal/core"
	"compactsg/internal/eval"
	"compactsg/internal/fullgrid"
	"compactsg/internal/gpusim"
	"compactsg/internal/grids"
	"compactsg/internal/hier"
	"compactsg/internal/kernels"
	"compactsg/internal/workload"
)

func TestAllEvaluationPathsAgree(t *testing.T) {
	const dim, level = 3, 5
	f := workload.Gaussian.F
	xs := workload.Points(101, 40, dim)

	// Reference: compact grid, iterative algorithms.
	desc := core.MustDescriptor(dim, level)
	ref := core.NewGrid(desc)
	ref.Fill(f)
	hier.Iterative(ref)
	want := eval.Batch(ref, xs, nil, eval.Options{})

	// Path 2: every comparison store with the recursive algorithms.
	for _, kind := range grids.Kinds {
		s := grids.New(kind, desc)
		grids.Fill(s, f)
		hier.Recursive(s)
		for k, x := range xs {
			if got := eval.Recursive(s, x); math.Abs(got-want[k]) > 1e-12 {
				t.Fatalf("%v at %v: %g want %g", kind, x, got, want[k])
			}
		}
	}

	// Path 3: GPU-simulated hierarchization + evaluation.
	gg := core.NewGrid(desc)
	gg.Fill(f)
	if _, _, err := kernels.HierarchizeGPU(gpusim.NewDevice(gpusim.TeslaC1060()), gg, kernels.Options{}); err != nil {
		t.Fatal(err)
	}
	gpuOut := make([]float64, len(xs))
	if _, _, err := kernels.EvaluateGPU(gpusim.NewDevice(gpusim.TeslaC1060()), gg, xs, gpuOut, kernels.Options{}); err != nil {
		t.Fatal(err)
	}
	for k := range xs {
		if gpuOut[k] != want[k] {
			t.Fatalf("GPU at %v: %g want %g (must be bit-identical)", xs[k], gpuOut[k], want[k])
		}
	}

	// Path 4: Fermi device — caches must not change results.
	gf := core.NewGrid(desc)
	gf.Fill(f)
	if _, _, err := kernels.HierarchizeGPU(gpusim.NewDevice(gpusim.FermiC2050()), gf, kernels.Options{BlockSize: 192}); err != nil {
		t.Fatal(err)
	}
	for k := range gf.Data {
		if gf.Data[k] != ref.Data[k] {
			t.Fatalf("Fermi hierarchization differs at %d", k)
		}
	}

	// Path 5: combination technique (equal up to roundoff).
	sol, err := combi.New(dim, level)
	if err != nil {
		t.Fatal(err)
	}
	sol.Fill(f, 2)
	for k, x := range xs {
		if got := sol.Evaluate(x); math.Abs(got-want[k]) > 1e-10 {
			t.Fatalf("combination at %v: %g want %g", x, got, want[k])
		}
	}

	// Path 6: unrefined adaptive grid equals the regular grid.
	ag, err := adaptive.New(dim, level, level+2, f)
	if err != nil {
		t.Fatal(err)
	}
	for k, x := range xs {
		if got := ag.Evaluate(x); math.Abs(got-want[k]) > 1e-10 {
			t.Fatalf("adaptive at %v: %g want %g", x, got, want[k])
		}
	}
}

func TestFig1PipelineEndToEnd(t *testing.T) {
	// Simulation: a full grid holds the raw field.
	const dim, level = 3, 5
	f := workload.SineProduct.F
	full, err := fullgrid.NewIsotropic(dim, level)
	if err != nil {
		t.Fatal(err)
	}
	full.Fill(f)

	// Compress: select sparse points, hierarchize via the public API.
	g, err := compactsg.New(dim, level, compactsg.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	sg, err := full.ToSparse(g.Raw().Desc())
	if err != nil {
		t.Fatal(err)
	}
	copy(g.Raw().Data, sg.Data)
	if err := g.CompressValues(); err != nil {
		t.Fatal(err)
	}

	// Storage: serialize and reload.
	var store bytes.Buffer
	if err := g.Save(&store); err != nil {
		t.Fatal(err)
	}
	if int64(store.Len()) > full.MemoryBytes()/4 {
		t.Errorf("compressed artifact (%d B) not much smaller than the full grid (%d B)", store.Len(), full.MemoryBytes())
	}
	loaded, err := compactsg.Load(&store, compactsg.WithBlockSize(32))
	if err != nil {
		t.Fatal(err)
	}

	// Visualization: decompress a slice; values match the simulation at
	// grid points exactly and approximately in between.
	xs := workload.GridLine(dim, 0, 33, 0.5)
	vals, err := loaded.EvaluateBatch(xs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, x := range xs {
		if math.Abs(vals[k]-f(x)) > 0.05 {
			t.Errorf("slice point %v: %g want ≈ %g", x, vals[k], f(x))
		}
	}
	// Decompress fully: nodal values restored.
	if err := loaded.Decompress(); err != nil {
		t.Fatal(err)
	}
	v, err := loaded.At([]int32{0, 0, 0}, []int32{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-f([]float64{0.5, 0.5, 0.5})) > 1e-12 {
		t.Errorf("restored center value %g", v)
	}
}

func TestQuickCompressEvaluateIsProjection(t *testing.T) {
	// Property: compressing the interpolant's own nodal values is
	// idempotent — interpolation is a projection. Randomized over
	// coefficients via testing/quick.
	desc := core.MustDescriptor(2, 4)
	check := func(seed int64) bool {
		g := core.NewGrid(desc)
		rng := newRand(seed)
		for k := range g.Data {
			g.Data[k] = rng() // random surpluses
		}
		// Sample the interpolant at grid points, re-hierarchize.
		nodal := core.NewGrid(desc)
		x := make([]float64, 2)
		desc.VisitPoints(func(idx int64, l, i []int32) {
			core.Coords(l, i, x)
			nodal.Data[idx] = eval.Iterative(g, x)
		})
		hier.Iterative(nodal)
		for k := range nodal.Data {
			if math.Abs(nodal.Data[k]-g.Data[k]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// newRand is a tiny deterministic generator for quick properties.
func newRand(seed int64) func() float64 {
	s := uint64(seed)*2654435761 + 1
	return func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(int64(s%2000)-1000) / 250
	}
}

func TestPublicAPIAgainstInternalReference(t *testing.T) {
	f := workload.Parabola.F
	g, err := compactsg.New(4, 5, compactsg.WithWorkers(2), compactsg.WithBlockSize(16))
	if err != nil {
		t.Fatal(err)
	}
	g.Compress(f)
	ref := core.NewGrid(core.MustDescriptor(4, 5))
	ref.Fill(f)
	hier.Iterative(ref)
	for k := range ref.Data {
		if g.Raw().Data[k] != ref.Data[k] {
			t.Fatalf("public API coefficients differ at %d", k)
		}
	}
}

func TestBoundaryAndInteriorConsistency(t *testing.T) {
	// For a zero-boundary function the extended grid and the plain grid
	// interpolate identically.
	f := workload.Parabola.F
	plain, err := compactsg.New(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	plain.Compress(f)
	ext, err := compactsg.NewWithBoundary(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	ext.Compress(f)
	for _, x := range workload.Points(7, 50, 2) {
		a, _ := plain.Evaluate(x)
		b, _ := ext.Evaluate(x)
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("at %v: plain %g vs extended %g", x, a, b)
		}
	}
}
